package vulnstack

import (
	"testing"

	"vulnstack/internal/arch"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/llfi"
	"vulnstack/internal/micro"
)

// shaSystem builds the sha/A72 system the determinism tests share.
func shaSystem(t *testing.T) *System {
	t.Helper()
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCampaignRegression pins the exact tallies the serial, pre-parallel
// engine produced for each layer. A change here means injection results
// moved — not just performance — and must be deliberate.
func TestCampaignRegression(t *testing.T) {
	sys := shaSystem(t)
	sys.Workers = 1
	mc, err := sys.MicroCampaign(micro.ConfigA72())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mc.RunCampaign(micro.StructRF, 30, 2021, nil), (inject.Tally{
		N: 30, Outcomes: [inject.NumOutcomes]int{29, 0, 1, 0},
		FPM: [micro.NumFPM]int{0, 2, 0, 0, 0}, Visible: 2,
	}); got != want {
		t.Errorf("micro RF tally %+v, want pre-change %+v", got, want)
	}
	if got, want := mc.RunCampaign(micro.StructL1D, 30, 2021, nil), (inject.Tally{
		N: 30, Outcomes: [inject.NumOutcomes]int{29, 1, 0, 0},
		FPM: [micro.NumFPM]int{0, 1, 0, 0, 0}, Visible: 1,
	}); got != want {
		t.Errorf("micro L1D tally %+v, want pre-change %+v", got, want)
	}

	ac, err := sys.ArchCampaign()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ac.RunCampaign(micro.FPMWD, 30, 7, nil), (arch.Tally{
		N: 30, Outcomes: [inject.NumOutcomes]int{15, 5, 10, 0},
	}); got != want {
		t.Errorf("arch WD tally %+v, want pre-change %+v", got, want)
	}

	lc, err := sys.LLFICampaign()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lc.RunCampaign(60, 7, nil), (llfi.Tally{
		N: 60, Outcomes: [inject.NumOutcomes]int{31, 21, 8, 0},
	}); got != want {
		t.Errorf("llfi tally %+v, want pre-change %+v", got, want)
	}
}

// TestWorkerCountInvariance runs every layer at several worker counts
// and demands bit-identical tallies: the engine's core guarantee.
func TestWorkerCountInvariance(t *testing.T) {
	sys := shaSystem(t)
	mc, err := sys.MicroCampaign(micro.ConfigA72())
	if err != nil {
		t.Fatal(err)
	}
	ac, err := sys.ArchCampaign()
	if err != nil {
		t.Fatal(err)
	}
	lc, err := sys.LLFICampaign()
	if err != nil {
		t.Fatal(err)
	}
	mc.Workers, ac.Workers, lc.Workers = 1, 1, 1
	rf := mc.RunCampaign(micro.StructRF, 30, 2021, nil)
	wd := ac.RunCampaign(micro.FPMWD, 30, 7, nil)
	sv := lc.RunCampaign(60, 7, nil)
	for _, workers := range []int{2, 8} {
		mc.Workers, ac.Workers, lc.Workers = workers, workers, workers
		if got := mc.RunCampaign(micro.StructRF, 30, 2021, nil); got != rf {
			t.Errorf("micro: workers=%d tally %+v != workers=1 %+v", workers, got, rf)
		}
		if got := ac.RunCampaign(micro.FPMWD, 30, 7, nil); got != wd {
			t.Errorf("arch: workers=%d tally %+v != workers=1 %+v", workers, got, wd)
		}
		if got := lc.RunCampaign(60, 7, nil); got != sv {
			t.Errorf("llfi: workers=%d tally %+v != workers=1 %+v", workers, got, sv)
		}
	}
}
