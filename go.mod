module vulnstack

go 1.22
