package vulnstack

import (
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// TestColumnarEquivalenceAllBenchmarks is the acceptance gate of the
// columnar record plane: on every seed benchmark, at every layer, the
// tally served from the columnar store (fresh run -> segment write ->
// streamed re-read) and the tally of the same campaign migrated
// through the JSONL interchange format must be bit-identical to the
// direct in-memory run. Small per-layer counts — the point is breadth
// across benchmarks (different record shapes: targets, coordinates,
// outcomes, early-stop mixes), not statistical depth.
func TestColumnarEquivalenceAllBenchmarks(t *testing.T) {
	const (
		nMicro = 10
		nArch  = 16
		nSoft  = 30
		seed   = 2021
	)
	cfg := micro.ConfigA72()
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			mk := func(st *results.Store) *System {
				sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
				if err != nil {
					t.Fatal(err)
				}
				sys.Snapshots = 6
				sys.Workers = 1
				sys.Store = st
				return sys
			}

			// Direct in-memory reference, no store.
			ref := mk(nil)
			refMicro, err := ref.MicroTally(cfg, micro.StructRF, nMicro, seed)
			if err != nil {
				t.Fatal(err)
			}
			refArch, err := ref.PVF(micro.FPMWD, nArch, seed)
			if err != nil {
				t.Fatal(err)
			}
			refSoft, err := ref.SVF(nSoft, seed)
			if err != nil {
				t.Fatal(err)
			}

			// Fresh run against a store writes columnar segments; a second
			// system re-reads them through the streaming cursor.
			st, err := results.OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			first := mk(st)
			if _, err := first.MicroTally(cfg, micro.StructRF, nMicro, seed); err != nil {
				t.Fatal(err)
			}
			if _, err := first.PVF(micro.FPMWD, nArch, seed); err != nil {
				t.Fatal(err)
			}
			if _, err := first.SVF(nSoft, seed); err != nil {
				t.Fatal(err)
			}
			reread := mk(st)
			gotMicro, err := reread.MicroTally(cfg, micro.StructRF, nMicro, seed)
			if err != nil {
				t.Fatal(err)
			}
			if gotMicro != refMicro {
				t.Errorf("micro store tally %+v != direct %+v", gotMicro, refMicro)
			}
			gotArch, err := reread.PVF(micro.FPMWD, nArch, seed)
			if err != nil {
				t.Fatal(err)
			}
			if gotArch != refArch {
				t.Errorf("arch store split %+v != direct %+v", gotArch, refArch)
			}
			gotSoft, err := reread.SVF(nSoft, seed)
			if err != nil {
				t.Fatal(err)
			}
			if gotSoft != refSoft {
				t.Errorf("soft store split %+v != direct %+v", gotSoft, refSoft)
			}

			// JSONL round trip: re-save each stored campaign as legacy
			// interchange JSONL in a second store, then aggregate — the
			// first touch migrates back to columnar and the tally must
			// still be bit-identical.
			legacy, err := results.OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []results.Key{
				reread.MicroKey(cfg, micro.StructRF, seed),
				reread.ArchKey(micro.FPMWD, seed),
				reread.SoftKey(seed),
			} {
				recs, ok, err := st.Load(k)
				if err != nil || !ok {
					t.Fatalf("%s: load ok=%v err=%v", k.ID(), ok, err)
				}
				if err := legacy.SaveJSONL(k, recs); err != nil {
					t.Fatal(err)
				}
				tl, err := legacy.TallyPrefix(k, len(recs))
				if err != nil {
					t.Fatal(err)
				}
				if want := results.TallyOf(recs); tl != want {
					t.Errorf("%s: migrated tally %+v != %+v", k.ID(), tl, want)
				}
				m, ok, err := legacy.Manifest(k)
				if err != nil || !ok || m.Format != results.FormatColumnar {
					t.Errorf("%s: post-migration manifest %+v ok=%v err=%v", k.ID(), m, ok, err)
				}
				back, ok, err := legacy.Load(k)
				if err != nil || !ok || len(back) != len(recs) {
					t.Fatalf("%s: reload %d ok=%v err=%v", k.ID(), len(back), ok, err)
				}
				for i := range back {
					if back[i] != recs[i] {
						t.Fatalf("%s: record %d mutated through JSONL round trip", k.ID(), i)
					}
				}
			}
		})
	}
}
