GO ?= go

.PHONY: all build test vet lint race check cover bench bench-short bench-agg gobench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's determinism linter over the injection and
# results packages (see tools/lint): no wall-clock reads, no global
# math/rand source, no unannotated map iteration.
lint:
	$(GO) run ./tools/lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cover writes a coverage profile and prints the per-package and total
# coverage summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# check is the full gate: build, vet, the determinism linter, and the
# race-enabled test suite with per-package coverage in the output.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./tools/lint
	$(GO) test -race -cover ./...

# bench measures per-injection cost per layer per benchmark (with the
# early-stop and decode-cache accelerations on vs off, asserting
# bit-identical tallies) and writes BENCH_<date>.json. bench-short is
# the three-benchmark small-n CI variant (separate output file, so
# it never clobbers a committed full-run artifact); it also runs the
# delta-checkpoint benchmark (cold vs warm Prepare, full-restore vs
# delta-walk, chain memory vs 12 full snapshots — tallies asserted
# bit-identical across all paths). gobench keeps the raw Go testing
# benchmarks.
bench:
	$(GO) run ./cmd/vulnstack bench -ckpt -bench all

bench-short:
	$(GO) run ./cmd/vulnstack bench -short -ckpt -bench all -out BENCH_short.json

# bench-agg measures record re-aggregation throughput (JSONL re-parse
# vs the streaming columnar cursor) on a small synthetic campaign,
# asserting bit-identical tallies and a speedup floor.
bench-agg:
	$(GO) run ./cmd/vulnstack bench -agg -aggrows 150000 -out BENCH_agg.json

gobench:
	$(GO) test -bench=. -benchmem -run=^$$ .
