GO ?= go

.PHONY: all build test vet lint vet-analyzers race check cover bench bench-short bench-agg bench-strat bench-strat-short bench-tb bench-tb-short gobench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's determinism linter over the injection and
# results packages (see tools/lint): no wall-clock reads, no global
# math/rand source, no unannotated map iteration.
lint:
	$(GO) run ./tools/lint

# vet-analyzers is the CI static-analysis gate: go vet with its full
# standard analyzer suite across every package, then the determinism
# linter. Both reuse the Go build cache, so a warm run is seconds.
vet-analyzers:
	$(GO) vet ./...
	$(GO) run ./tools/lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cover writes a coverage profile and prints the per-package and total
# coverage summary.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# check is the full gate: build, vet, the determinism linter, and the
# race-enabled test suite with per-package coverage in the output.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./tools/lint
	$(GO) test -race -cover ./...

# bench measures per-injection cost per layer per benchmark (with the
# early-stop and decode-cache accelerations on vs off, asserting
# bit-identical tallies) and writes BENCH_<date>.json. bench-short is
# the three-benchmark small-n CI variant (separate output file, so
# it never clobbers a committed full-run artifact); it also runs the
# delta-checkpoint benchmark (cold vs warm Prepare, full-restore vs
# delta-walk, chain memory vs 12 full snapshots — tallies asserted
# bit-identical across all paths). gobench keeps the raw Go testing
# benchmarks.
bench: bench-strat bench-tb
	$(GO) run ./cmd/vulnstack bench -ckpt -bench all

bench-short: bench-strat-short bench-tb-short
	$(GO) run ./cmd/vulnstack bench -short -ckpt -bench all -out BENCH_short.json -force

# bench-strat compares injections-to-target-CI for the stratified
# campaign mode against uniform worst-case sampling on every benchmark
# at the paper's 2.88% margin. The command itself asserts the gates: a
# majority of benchmarks must need >= 3x fewer injections (1.5x in the
# small short variant, where the per-stratum pilot dominates), and every
# stratified estimate must land inside the uniform run's 99% CI.
bench-strat:
	$(GO) run ./cmd/vulnstack bench -strat -out BENCH_strat.json -force

bench-strat-short:
	$(GO) run ./cmd/vulnstack bench -strat -short -out BENCH_strat_short.json -force

# bench-tb measures per-injection cost with the translation-block
# engines on vs off (arch superblock dispatch, soft compiled IR) on
# every benchmark, asserting bit-identical tallies on every attempt and
# speedup floors on the medians (2x arch, 1.5x soft). bench-tb-short is
# the three-benchmark small-n CI variant.
bench-tb:
	$(GO) run ./cmd/vulnstack bench -tb -out BENCH_tb.json -force

bench-tb-short:
	$(GO) run ./cmd/vulnstack bench -tb -short -out BENCH_tb_short.json -force

# bench-agg measures record re-aggregation throughput (JSONL re-parse
# vs the streaming columnar cursor) on a small synthetic campaign,
# asserting bit-identical tallies and a speedup floor.
bench-agg:
	$(GO) run ./cmd/vulnstack bench -agg -aggrows 150000 -out BENCH_agg.json -force

gobench:
	$(GO) test -bench=. -benchmem -run=^$$ .
