GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the full gate: build, vet, and the race-enabled test suite.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
