package vulnstack

import (
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// TestAccelerationEquivalenceAllBenchmarks is the acceptance gate of
// the early-stop + decode-cache work: on every seed benchmark, at every
// layer, for one and several workers, the accelerated engines must
// produce tallies bit-identical to the run-to-completion engines. The
// per-layer sample counts are small — the point is breadth (every
// benchmark exercises different convergence and decode patterns), not
// statistical depth.
func TestAccelerationEquivalenceAllBenchmarks(t *testing.T) {
	const (
		nMicro = 10
		nArch  = 16
		nSoft  = 30
		seed   = 2021
	)
	cfg := micro.ConfigA72()
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			// Two systems: the decode-cache switch is baked into campaign
			// snapshots, so accelerated and baseline campaigns cannot
			// share one.
			mk := func(off bool) *System {
				sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
				if err != nil {
					t.Fatal(err)
				}
				sys.Snapshots = 6
				sys.NoEarlyStop = off
				sys.NoDecodeCache = off
				return sys
			}
			accel, base := mk(false), mk(true)

			layer := func(sys *System, name string, workers int) results.Tally {
				sys.Workers = workers
				switch name {
				case "micro":
					cp, err := sys.MicroCampaign(cfg)
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(micro.StructRF, nMicro, 0, seed, nil))
				case "arch":
					cp, err := sys.ArchCampaign()
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(micro.FPMWD, nArch, 0, seed, nil))
				default:
					cp, err := sys.LLFICampaign()
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(nSoft, 0, seed, nil))
				}
			}
			for _, name := range []string{"micro", "arch", "soft"} {
				ref := layer(base, name, 1)
				for _, workers := range []int{1, 3} {
					if got := layer(accel, name, workers); got != ref {
						t.Errorf("%s layer, %d workers: accelerated tally %+v, baseline %+v",
							name, workers, got, ref)
					}
				}
			}
		})
	}
}
