package vulnstack

import (
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// TestAccelerationEquivalenceAllBenchmarks is the acceptance gate of
// the early-stop + decode-cache work: on every seed benchmark, at every
// layer, for one and several workers, the accelerated engines must
// produce tallies bit-identical to the run-to-completion engines. The
// per-layer sample counts are small — the point is breadth (every
// benchmark exercises different convergence and decode patterns), not
// statistical depth.
func TestAccelerationEquivalenceAllBenchmarks(t *testing.T) {
	const (
		nMicro = 10
		nArch  = 16
		nSoft  = 30
		seed   = 2021
	)
	cfg := micro.ConfigA72()
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			// Two systems: the decode-cache switch is baked into campaign
			// snapshots, so accelerated and baseline campaigns cannot
			// share one.
			mk := func(off bool) *System {
				sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
				if err != nil {
					t.Fatal(err)
				}
				sys.Snapshots = 6
				sys.NoEarlyStop = off
				sys.NoDecodeCache = off
				return sys
			}
			accel, base := mk(false), mk(true)

			layer := func(sys *System, name string, workers int) results.Tally {
				sys.Workers = workers
				switch name {
				case "micro":
					cp, err := sys.MicroCampaign(cfg)
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(micro.StructRF, nMicro, 0, seed, nil))
				case "arch":
					cp, err := sys.ArchCampaign()
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(micro.FPMWD, nArch, 0, seed, nil))
				default:
					cp, err := sys.LLFICampaign()
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(nSoft, 0, seed, nil))
				}
			}
			for _, name := range []string{"micro", "arch", "soft"} {
				ref := layer(base, name, 1)
				for _, workers := range []int{1, 3} {
					if got := layer(accel, name, workers); got != ref {
						t.Errorf("%s layer, %d workers: accelerated tally %+v, baseline %+v",
							name, workers, got, ref)
					}
				}
			}
		})
	}
}

// TestCheckpointChainEquivalenceAllBenchmarks is the acceptance gate of
// the delta-checkpoint work: on every benchmark, at both hardware
// injection layers, tallies must be bit-identical across
// (boot-only full snapshot × dense delta chain) ×
// (cold golden-run Prepare × persisted-chain resume) × worker counts.
// The boot-only configuration degenerates the chain to one full
// snapshot — exactly the pre-chain run-from-reset semantics — so it
// doubles as the full-restore baseline for the delta-walk restores the
// dense chain performs.
func TestCheckpointChainEquivalenceAllBenchmarks(t *testing.T) {
	const (
		nMicro = 8
		nArch  = 12
		dense  = 48
		seed   = 2021
	)
	cfg := micro.ConfigA72()
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			mk := func(snapshots int, withStore bool) *System {
				sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
				if err != nil {
					t.Fatal(err)
				}
				sys.Snapshots = snapshots
				if withStore {
					st, err := results.OpenStore(dir)
					if err != nil {
						t.Fatal(err)
					}
					sys.Store = st
				}
				return sys
			}
			// cold captures and persists its chain into dir; warm is an
			// otherwise-identical fresh system and must resume from it.
			full, cold, warm := mk(1, false), mk(dense, true), mk(dense, true)

			layer := func(sys *System, name string, workers int) results.Tally {
				switch name {
				case "micro":
					cp, err := sys.MicroCampaign(cfg)
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(micro.StructRF, nMicro, 0, seed, nil))
				default:
					cp, err := sys.ArchCampaign()
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(micro.FPMWD, nArch, 0, seed, nil))
				}
			}
			for _, name := range []string{"micro", "arch"} {
				ref := layer(full, name, 1)
				for _, workers := range []int{1, 3} {
					if got := layer(cold, name, workers); got != ref {
						t.Errorf("%s layer, %d workers: dense-chain tally %+v, full-snapshot %+v",
							name, workers, got, ref)
					}
					if got := layer(warm, name, workers); got != ref {
						t.Errorf("%s layer, %d workers: resumed tally %+v, full-snapshot %+v",
							name, workers, got, ref)
					}
				}
			}
			// The warm campaigns must actually have skipped their golden
			// runs (layer() above forced them to exist).
			if cp, err := warm.MicroCampaign(cfg); err != nil || !cp.Resumed {
				t.Errorf("micro warm campaign not resumed from persisted chain (err=%v)", err)
			}
			if cp, err := warm.ArchCampaign(); err != nil || !cp.Resumed {
				t.Errorf("arch warm campaign not resumed from persisted chain (err=%v)", err)
			}
			if cp, err := cold.MicroCampaign(cfg); err != nil || cp.Resumed {
				t.Errorf("cold campaign unexpectedly resumed (err=%v)", err)
			}
		})
	}
}

// TestChainDenseMemoryBudget pins the memory criterion of the delta
// refactor: at the dense default (192 checkpoints) a chain must hold at
// least 128 restore points while storing less than 12 full snapshots
// would (12 × the chain's own base cost), i.e. checkpoint memory is no
// longer O(snapshots × RAM).
func TestChainDenseMemoryBudget(t *testing.T) {
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Snapshots != DefaultSnapshots {
		t.Fatalf("default snapshots = %d, want %d", sys.Snapshots, DefaultSnapshots)
	}
	cp, err := sys.MicroCampaign(micro.ConfigA72())
	if err != nil {
		t.Fatal(err)
	}
	st := cp.Chain().Stats()
	if st.Checkpoints < 128 {
		t.Fatalf("dense chain has %d checkpoints, want >= 128", st.Checkpoints)
	}
	stored := st.BaseBytes + st.DeltaBytes + st.AuxBytes
	// One full snapshot under the old scheme was a RAM image plus a
	// complete machine-state blob; the chain reconstructs the latter, so
	// measure it rather than estimate it.
	full := RAMSize + len(cp.Chain().StateAt(st.Checkpoints-1, nil, -1))
	budget := 12 * full
	if stored > budget {
		t.Fatalf("chain stores %d bytes for %d checkpoints, above the 12-full-snapshot budget %d (full snapshot = %d)",
			stored, st.Checkpoints, budget, full)
	}
	t.Logf("%d checkpoints in %d bytes (base %d, deltas %d, aux %d) vs 12-full-snapshot budget %d (%.1fx headroom)",
		st.Checkpoints, stored, st.BaseBytes, st.DeltaBytes, st.AuxBytes, budget,
		float64(budget)/float64(stored))
}
