package vulnstack

import (
	"strings"
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
	"vulnstack/internal/vuln"
)

func openStore(t *testing.T) *results.Store {
	t.Helper()
	st, err := results.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// storedSystem builds a fresh sha/VSA64 system attached to the store
// (fresh per call, so campaign caches never leak between phases).
func storedSystem(t *testing.T, st *results.Store) *System {
	t.Helper()
	sys := shaSystem(t)
	sys.Workers = 1
	sys.Store = st
	return sys
}

// TestTopUpDeterminism is the resume guarantee across all three layers:
// a stored n-injection campaign topped up to 2n must produce tallies
// bit-identical to a one-shot 2n campaign, because the fault sequence
// is pre-drawn from the seed and the store holds a strict prefix.
func TestTopUpDeterminism(t *testing.T) {
	cfg := micro.ConfigA72()

	// One-shot references, no store.
	ref := shaSystem(t)
	ref.Workers = 1
	refMicro, err := ref.MicroTally(cfg, micro.StructRF, 40, 2021)
	if err != nil {
		t.Fatal(err)
	}
	refPVF, err := ref.PVF(micro.FPMWD, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	refSVF, err := ref.SVF(60, 7)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: store the first half.
	st := openStore(t)
	a := storedSystem(t, st)
	if _, err := a.MicroTally(cfg, micro.StructRF, 20, 2021); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PVF(micro.FPMWD, 20, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SVF(30, 7); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a fresh system tops up to the full n.
	b := storedSystem(t, st)
	gotMicro, err := b.MicroTally(cfg, micro.StructRF, 40, 2021)
	if err != nil {
		t.Fatal(err)
	}
	if gotMicro != refMicro {
		t.Errorf("micro top-up tally %+v != one-shot %+v", gotMicro, refMicro)
	}
	gotPVF, err := b.PVF(micro.FPMWD, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if gotPVF != refPVF {
		t.Errorf("arch top-up split %+v != one-shot %+v", gotPVF, refPVF)
	}
	gotSVF, err := b.SVF(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if gotSVF != refSVF {
		t.Errorf("llfi top-up split %+v != one-shot %+v", gotSVF, refSVF)
	}

	// The stored record sets grew to exactly the one-shot lengths.
	for _, want := range []struct {
		key results.Key
		n   int
	}{
		{b.MicroKey(cfg, micro.StructRF, 2021), 40},
		{b.ArchKey(micro.FPMWD, 7), 40},
		{b.SoftKey(7), 60},
	} {
		m, ok, err := st.Manifest(want.key)
		if err != nil || !ok {
			t.Fatalf("manifest %v: ok=%v err=%v", want.key, ok, err)
		}
		if m.N != want.n {
			t.Errorf("manifest %v has n=%d, want %d", want.key, m.N, want.n)
		}
	}
}

// TestStoreReuseNoReinjection: a repeat measurement against a warm
// store must be served entirely from disk — the fresh system never
// prepares an injector (no golden run) and never executes an injection.
func TestStoreReuseNoReinjection(t *testing.T) {
	cfg := micro.ConfigA72()
	st := openStore(t)

	a := storedSystem(t, st)
	wantRes, wantAVF, err := a.AVFAll(cfg, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantPVF, err := a.PVF(micro.FPMWD, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantSVF, err := a.SVF(20, 5)
	if err != nil {
		t.Fatal(err)
	}

	b := storedSystem(t, st)
	gotRes, gotAVF, err := b.AVFAll(cfg, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotPVF, err := b.PVF(micro.FPMWD, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotSVF, err := b.SVF(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if gotAVF != wantAVF || gotPVF != wantPVF || gotSVF != wantSVF {
		t.Errorf("store replay differs: AVF %+v/%+v PVF %+v/%+v SVF %+v/%+v",
			gotAVF, wantAVF, gotPVF, wantPVF, gotSVF, wantSVF)
	}
	for i := range wantRes {
		if gotRes[i].Tally != wantRes[i].Tally {
			t.Errorf("%v tally differs on replay", wantRes[i].Struct)
		}
	}
	// The decisive check: the replay system never built an injector.
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.microC) != 0 || b.archC != nil || b.llfiC != nil {
		t.Fatalf("store replay prepared injectors (micro=%d arch=%v llfi=%v): injections were re-executed",
			len(b.microC), b.archC != nil, b.llfiC != nil)
	}
}

// TestExperimentStoreReuse: a second lab over the same store
// regenerates an experiment byte-identically without preparing any
// injection campaign in any of its systems.
func TestExperimentStoreReuse(t *testing.T) {
	o := tinyOpts()
	o.StoreDir = t.TempDir()
	o.Workers = 1

	first, err := NewLab(o).Run("fig1")
	if err != nil {
		t.Fatal(err)
	}
	lab2 := NewLab(o)
	second, err := lab2.Run("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("stored rerun differs:\n%s\nvs\n%s", first.String(), second.String())
	}
	if !strings.Contains(second.String(), "provenance:") {
		t.Error("report must stamp provenance")
	}
	if !strings.Contains(second.String(), "results store:") {
		t.Error("report must stamp the store state")
	}
	lab2.mu.Lock()
	defer lab2.mu.Unlock()
	for key, s := range lab2.systems {
		s.mu.Lock()
		if len(s.microC) != 0 || s.archC != nil || s.llfiC != nil {
			t.Errorf("system %s prepared injectors on a warm store", key)
		}
		s.mu.Unlock()
	}
}

// TestStoreRPVFPostHoc: per-FPM re-weighting (the rPVF combination) is
// derivable purely from stored records, after the fact — the
// record-plane property the refactor exists for.
func TestStoreRPVFPostHoc(t *testing.T) {
	cfg := micro.ConfigA72()
	st := openStore(t)
	sys := storedSystem(t, st)

	res, _, err := sys.AVFAll(cfg, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	pvfs := map[micro.FPM]vuln.Split{}
	for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
		sp, err := sys.PVF(m, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		pvfs[m] = sp
	}
	live := vuln.RPVF(pvfs, FPMDist(cfg, res))

	// Recompute everything from disk alone, via a fresh system.
	replay := storedSystem(t, st)
	res2, _, err := replay.AVFAll(cfg, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	pvfs2 := map[micro.FPM]vuln.Split{}
	for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
		sp, err := replay.PVF(m, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		pvfs2[m] = sp
	}
	if got := vuln.RPVF(pvfs2, FPMDist(cfg, res2)); got != live {
		t.Errorf("post-hoc rPVF %+v != live %+v", got, live)
	}
}

func TestSVFISAGuardWithStore(t *testing.T) {
	// The 64-bit-only LLFI restriction must hold even on the
	// store-backed path (before any store lookup).
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA32)
	if err != nil {
		t.Fatal(err)
	}
	sys.Store = openStore(t)
	if _, err := sys.SVF(5, 1); err == nil {
		t.Fatal("SVF on VSA32 must error with a store attached")
	}
}
