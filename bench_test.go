package vulnstack

// The benchmark harness regenerates every table and figure of the
// paper's evaluation:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN/BenchmarkTableN prints the regenerated artifact
// once (they share a lab, so golden runs and campaigns are reused) and
// reports wall time. Campaign sizes are scaled for a single-core host;
// EXPERIMENTS.md records the margins and compares against the paper.
// Use `go run ./cmd/vulnstack experiment <id> -navf N ...` for larger
// sample counts.

import (
	"fmt"
	"sync"
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
	"vulnstack/internal/micro"
	"vulnstack/internal/minic"
	"vulnstack/internal/workload"
)

// benchOpts sizes the harness campaigns. n=24 per structure (x3/x6 on
// caches), 48 per PVF model, 96 SVF samples.
func benchOpts() Options {
	return Options{NAVF: 24, NPVF: 48, NSVF: 96, Seed: 2021, Snapshots: 12}
}

var (
	labOnce   sync.Once
	sharedLab *Lab
)

func lab() *Lab {
	labOnce.Do(func() { sharedLab = NewLab(benchOpts()) })
	return sharedLab
}

// artifact runs one experiment and prints it (once per benchmark run).
func artifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := lab().Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(r.String())
		}
	}
}

func BenchmarkTable2(b *testing.B) { artifact(b, "table2") }
func BenchmarkFig1(b *testing.B)   { artifact(b, "fig1") }
func BenchmarkFig4(b *testing.B)   { artifact(b, "fig4") }
func BenchmarkTable3(b *testing.B) { artifact(b, "table3") }
func BenchmarkFig5(b *testing.B)   { artifact(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { artifact(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { artifact(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { artifact(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { artifact(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { artifact(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { artifact(b, "fig11") }

// --- substrate performance benchmarks ---

// BenchmarkCompile measures the full MiniC -> machine-code pipeline.
func BenchmarkCompile(b *testing.B) {
	spec, _ := workload.Get("sha")
	src := spec.Gen(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := minic.Compile(src, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codegen.Build(m, isa.VSA64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOoOSimulator measures the cycle-level model's throughput.
func BenchmarkOoOSimulator(b *testing.B) {
	sys, err := Build(Target{Bench: "crc32", Seed: 1}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := micro.ConfigA72()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		core := micro.New(cfg, sys.Image.NewMemory(), sys.Image.Entry)
		if !core.Run(1 << 30) {
			b.Fatal("did not halt")
		}
		cycles += core.Cycle
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkEmulator measures the functional reference model.
func BenchmarkEmulator(b *testing.B) {
	sys, err := Build(Target{Bench: "crc32", Seed: 1}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		bus := dev.NewBus(sys.Image.NewMemory())
		c := emu.New(sys.ISA, bus, sys.Image.Entry)
		if !c.Run(1 << 30) {
			b.Fatal("did not halt")
		}
		instrs += c.Instret
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkInjectionRF measures microarchitectural injection throughput
// (snapshot restore + faulty run + classification) on the serial path
// (Workers=1), the baseline for BenchmarkCampaignParallel.
func BenchmarkInjectionRF(b *testing.B) {
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	sys.Workers = 1
	cp, err := sys.MicroCampaign(micro.ConfigA72())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cp.RunCampaign(micro.StructRF, b.N, 1, nil)
}

// BenchmarkCampaignSerial and BenchmarkCampaignParallel compare the
// same RF campaign on one worker vs all CPUs; both produce bit-identical
// tallies, so the delta is pure wall clock.
func benchmarkCampaignWorkers(b *testing.B, workers int) {
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	sys.Workers = workers
	cp, err := sys.MicroCampaign(micro.ConfigA72())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cp.RunCampaign(micro.StructRF, b.N, 1, nil)
}

func BenchmarkCampaignSerial(b *testing.B)   { benchmarkCampaignWorkers(b, 1) }
func BenchmarkCampaignParallel(b *testing.B) { benchmarkCampaignWorkers(b, 0) }

// BenchmarkMemRestoreFull measures the pre-change restore path: a full
// RAM copy per injection.
func BenchmarkMemRestoreFull(b *testing.B) {
	golden := mem.New(RAMSize)
	arena := golden.Clone()
	b.SetBytes(RAMSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Write(0x11000, 8, uint64(i)) // a typical injection dirties a few pages
		arena.CopyFrom(golden)
	}
}

// BenchmarkMemRestoreDirty measures the dirty-page restore path used by
// the campaign worker arenas: only touched pages are copied back.
func BenchmarkMemRestoreDirty(b *testing.B) {
	golden := mem.New(RAMSize)
	arena := golden.Clone()
	arena.EnableTracking()
	arena.CopyFrom(golden) // baseline against the restore source
	b.SetBytes(RAMSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Write(0x11000, 8, uint64(i))
		arena.RestoreDirty(golden)
	}
}

// BenchmarkInjectionL2 measures the (mostly provably-masked) cache path.
func BenchmarkInjectionL2(b *testing.B) {
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	sys.Workers = 1
	cp, err := sys.MicroCampaign(micro.ConfigA72())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cp.RunCampaign(micro.StructL2, b.N, 1, nil)
}

// BenchmarkSVFInjection measures LLFI-style IR injection throughput.
func BenchmarkSVFInjection(b *testing.B) {
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	sys.Workers = 1
	cp, err := sys.LLFICampaign()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cp.RunCampaign(b.N, 1, nil)
}

// BenchmarkPVFInjection measures architecture-level injection.
func BenchmarkPVFInjection(b *testing.B) {
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	sys.Workers = 1
	cp, err := sys.ArchCampaign()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cp.RunCampaign(micro.FPMWD, b.N, 1, nil)
}
