// Package vulnstack is the public API of the system-vulnerability-stack
// reproduction: it composes the MiniC compiler, the VSA machine models,
// the in-simulation kernel and the three fault injectors (micro-
// architectural AVF/HVF, architectural PVF, software-level SVF) into
// benchmark-level vulnerability measurements, and regenerates every
// table and figure of the paper's evaluation (see experiments.go).
package vulnstack

import (
	"fmt"
	"sync"

	"vulnstack/internal/arch"
	"vulnstack/internal/ckpt"
	"vulnstack/internal/codegen"
	"vulnstack/internal/harden"
	"vulnstack/internal/inject"
	"vulnstack/internal/ir"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/llfi"
	"vulnstack/internal/micro"
	"vulnstack/internal/minic"
	"vulnstack/internal/results"
	"vulnstack/internal/static"
	"vulnstack/internal/vuln"
	"vulnstack/internal/workload"
)

// RAMSize is the simulated machine memory for study runs.
const RAMSize = 1 << 21

// Target names one program under study.
type Target struct {
	// Bench is a workload name (see Benchmarks()).
	Bench string
	// Seed selects the generated input; Scale grows it (1 = default).
	Seed  int64
	Scale int
	// Harden applies the software fault-tolerance transform of the
	// case study (duplication + detection checks).
	Harden bool
}

func (t Target) key() string {
	return fmt.Sprintf("%s/%d/%d/%v", t.Bench, t.Seed, t.Scale, t.Harden)
}

// Benchmarks returns the ten workload names in the paper's order.
func Benchmarks() []string { return workload.Names() }

// Configs returns the four study microarchitectures (A9, A15: VSA32;
// A57, A72: VSA64).
func Configs() []micro.Config { return micro.Configs() }

// System is a target compiled for one ISA: the IR module (SVF and PVF
// substrate) plus the bootable machine image (AVF/HVF substrate).
type System struct {
	Target Target
	ISA    isa.ISA
	IR     *ir.Module
	Image  *kernel.Image

	mu     sync.Mutex
	microC map[string]*inject.Campaign
	archC  *arch.Campaign
	llfiC  *llfi.Campaign
	// staticG caches the liveness-solved static CFG of the image
	// (stratified sampling's liveness-bucket feature; see strat.go).
	staticG *static.CFG
	// staticB caches the bit-precise known-bits/demanded-bits solution
	// over staticG (the demanded-bits stratification feature and the
	// analyze -bits tables).
	staticB *static.BitFlow
	// Snapshots controls golden-run snapshot counts for campaign
	// acceleration.
	Snapshots int
	// Workers is the injection-campaign fan-out (<= 0: all CPUs).
	// Tallies are bit-identical for every worker count.
	Workers int
	// NoEarlyStop disables golden-trace convergence early-stop (micro
	// and arch layers) and the dead-definition filter (soft layer). The
	// accelerations are provably outcome-preserving — tallies are
	// bit-identical either way — so the zero value keeps them on; the
	// switch exists for benchmarking and verification.
	NoEarlyStop bool
	// NoDecodeCache disables the predecoded fetch cache in the micro and
	// arch execution models. Same contract as NoEarlyStop: provably
	// result-neutral, off-switch for measurement only. Set before the
	// first campaign use — the flag is baked into campaign snapshots.
	NoDecodeCache bool
	// NoTB disables the translation-block execution engines: the arch
	// layer's predecoded superblock dispatch and the soft layer's
	// compiled direct-threaded IR. Same contract as NoEarlyStop:
	// provably result-neutral (the equivalence gate asserts bit-identical
	// tallies), off-switch for measurement and verification only. Set
	// before the first campaign use — the engine choice is stamped into
	// store keys and chain fingerprints, so tb-on and tb-off runs never
	// share persisted state.
	NoTB bool
	// Static enables the bit-precise static resolution pass: at the soft
	// layer, faults the interprocedural demanded-bits analysis proves
	// Masked are classified without running (provenance-flagged records,
	// tallies bit-identical to the dynamic baseline — the EarlyStop
	// contract); at every layer, stratified campaigns gain the
	// demanded-bits stratum key level. Set before the first campaign use.
	Static bool
	// Store, when set, persists per-injection records on disk and
	// serves repeat measurements from them: a fully stored campaign is
	// answered without preparing the injector (no golden run, no
	// injections), and a larger n tops up only the missing tail of the
	// pre-drawn fault sequence (bit-identical to a one-shot run).
	Store *results.Store
}

// Build compiles a target for the given ISA variant.
func Build(t Target, is isa.ISA) (*System, error) {
	spec, err := workload.Get(t.Bench)
	if err != nil {
		return nil, err
	}
	scale := t.Scale
	if scale < 1 {
		scale = 1
	}
	src := spec.Gen(t.Seed, scale)
	m, err := minic.Compile(src, is.XLen())
	if err != nil {
		return nil, fmt.Errorf("vulnstack: compiling %s: %w", t.Bench, err)
	}
	if t.Harden {
		m, err = harden.Transform(m, harden.DefaultOptions())
		if err != nil {
			return nil, err
		}
	}
	prog, err := codegen.Build(m, is)
	if err != nil {
		return nil, fmt.Errorf("vulnstack: code generation for %s: %w", t.Bench, err)
	}
	img, err := kernel.BuildImage(prog, RAMSize)
	if err != nil {
		return nil, err
	}
	return &System{
		Target:    t,
		ISA:       is,
		IR:        m,
		Image:     img,
		microC:    make(map[string]*inject.Campaign),
		Snapshots: DefaultSnapshots,
	}, nil
}

// DefaultSnapshots is the default golden-run checkpoint count. Since
// checkpoints became chunk-granular deltas (internal/ckpt) their memory
// no longer scales O(snapshots × RAM), so the default is dense — the
// old full-snapshot default was 12 — which shortens the average
// restore-and-advance distance per injection and gives convergence
// early-stop far more boundaries to cut runs at.
const DefaultSnapshots = 192

// chainFingerprint identifies the checkpoint chain a campaign would
// capture: every input that shapes the golden run, its checkpoints, or
// how they are consumed. A persisted chain is only ever reused on an
// exact fingerprint match — a store written under different flags (or
// a different format version) triggers a fresh golden run instead of a
// silent mismatch.
func (s *System) chainFingerprint(engine, config string) string {
	return ckpt.Fingerprint(
		engine,
		fmt.Sprintf("v%d", ckpt.ChainVersion),
		s.targetKey(),
		config,
		fmt.Sprintf("snapshots=%d", s.Snapshots),
		fmt.Sprintf("ram=%d", RAMSize),
		fmt.Sprintf("earlystop=%v", !s.NoEarlyStop),
		fmt.Sprintf("decodecache=%v", !s.NoDecodeCache),
		fmt.Sprintf("tb=%v", !s.NoTB),
	)
}

// loadChain fetches and decodes a persisted checkpoint chain by
// fingerprint, returning nil on any failure: absent file, truncation,
// bit flips (ckpt.Decode digest-checks everything after the header), or
// a fingerprint mismatch inside the file. nil sends the caller down the
// cold Prepare path, so a damaged store costs a golden run, never
// wrong results.
func (s *System) loadChain(fp string) *ckpt.Chain {
	if s.Store == nil {
		return nil
	}
	data, ok, err := s.Store.LoadChain(fp)
	if err != nil || !ok {
		return nil
	}
	ch, err := ckpt.Decode(data)
	if err != nil || ch.Meta.Fingerprint != fp {
		return nil
	}
	return ch
}

// saveChain persists a freshly captured chain under its fingerprint,
// best-effort: campaigns proceed identically whether or not the write
// lands.
func (s *System) saveChain(fp string, ch *ckpt.Chain) {
	if s.Store == nil {
		return
	}
	ch.Meta.Fingerprint = fp
	ch.Meta.Target = s.targetKey()
	_ = s.Store.SaveChain(fp, ch.Encode())
}

// MicroCampaign returns (building and caching on first use) the
// microarchitectural fault-injection campaign for cfg.
func (s *System) MicroCampaign(cfg micro.Config) (*inject.Campaign, error) {
	if cfg.ISA != s.ISA {
		return nil, fmt.Errorf("vulnstack: config %s (%v) does not match system ISA %v", cfg.Name, cfg.ISA, s.ISA)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cp, ok := s.microC[cfg.Name]; ok {
		return cp, nil
	}
	// The decode-cache switch is part of the core configuration (baked
	// into the golden snapshots), so it must be set before Prepare.
	cfg.NoDecodeCache = s.NoDecodeCache
	fp := s.chainFingerprint(inject.Engine, cfg.Name)
	cp, err := (*inject.Campaign)(nil), error(nil)
	if ch := s.loadChain(fp); ch != nil {
		// Warm path: the persisted chain carries the golden summary and
		// every restore point — Prepare executes zero instructions.
		cp, _ = inject.PrepareFromChain(s.Image, cfg, ch)
	}
	if cp == nil {
		if cp, err = inject.Prepare(s.Image, cfg, s.Snapshots, 0); err != nil {
			return nil, err
		}
		s.saveChain(fp, cp.Chain())
	}
	cp.Workers = s.Workers
	cp.NoEarlyStop = s.NoEarlyStop
	s.microC[cfg.Name] = cp
	return cp, nil
}

// ArchCampaign returns the PVF campaign (cached).
func (s *System) ArchCampaign() (*arch.Campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.archC == nil {
		fp := s.chainFingerprint(arch.Engine, "")
		var cp *arch.Campaign
		var err error
		if ch := s.loadChain(fp); ch != nil {
			cp, _ = arch.PrepareFromChain(s.Image, ch)
		}
		if cp == nil {
			if cp, err = arch.PrepareWith(s.Image, s.Snapshots, arch.PrepareOptions{NoTB: s.NoTB}); err != nil {
				return nil, err
			}
			s.saveChain(fp, cp.Chain())
		}
		cp.Workers = s.Workers
		cp.NoEarlyStop = s.NoEarlyStop
		cp.NoDecodeCache = s.NoDecodeCache
		cp.NoTB = s.NoTB
		s.archC = cp
	}
	return s.archC, nil
}

// LLFICampaign returns the SVF campaign. Like the real LLFI tool, it
// only exists for the 64-bit variant.
func (s *System) LLFICampaign() (*llfi.Campaign, error) {
	if s.ISA != isa.VSA64 {
		return nil, fmt.Errorf("vulnstack: SVF (LLFI) supports only the 64-bit ISA")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.llfiC == nil {
		// With the dead-def filter disabled there is no point paying the
		// golden-run def-use tracking that feeds it.
		cp, err := llfi.PrepareWith(s.IR, RAMSize, llfi.PrepareOptions{NoDeadDefFilter: s.NoEarlyStop})
		if err != nil {
			return nil, err
		}
		cp.Workers = s.Workers
		cp.NoEarlyStop = s.NoEarlyStop
		cp.Static = s.Static
		cp.NoTB = s.NoTB
		s.llfiC = cp
	}
	return s.llfiC, nil
}

// StructResult is one structure's AVF/HVF measurement.
type StructResult struct {
	Struct micro.Structure
	Bits   int
	N      int
	Split  vuln.Split
	HVF    float64
	// FPM holds per-model counts among visible faults.
	FPM [micro.NumFPM]int
	// Visible is the HVF numerator.
	Visible int
	// Tally is the underlying record-stream aggregate every field
	// above derives from.
	Tally results.Tally
}

// targetKey is the store identity of this system's program: build
// inputs plus ISA.
func (s *System) targetKey() string {
	return s.Target.key() + "/" + s.ISA.String()
}

// MicroKey is the store key of one microarchitectural campaign.
func (s *System) MicroKey(cfg micro.Config, st micro.Structure, seed int64) results.Key {
	return results.Key{Layer: results.LayerMicro.String(), Target: s.targetKey(),
		Config: cfg.Name, Struct: st.String(), Seed: seed}
}

// tbMode stamps the execution-engine provenance into a store key Mode:
// records produced under the translation-block engine are never mixed
// with step-engine records in a warm store — even though the tallies
// are provably identical, reuse across engines would make the
// equivalence gate vacuous for anything already persisted.
func (s *System) tbMode(base string) string {
	if s.NoTB {
		return base
	}
	if base == "" {
		return "tb"
	}
	return base + ",tb"
}

// ArchKey is the store key of one architecture-level (PVF) campaign.
func (s *System) ArchKey(fpm micro.FPM, seed int64) results.Key {
	return results.Key{Layer: results.LayerArch.String(), Target: s.targetKey(),
		Struct: fpm.String(), Seed: seed, Mode: s.tbMode("")}
}

// UniformKey is the store key of the register-uniform PVF campaign.
func (s *System) UniformKey(seed int64) results.Key {
	return results.Key{Layer: results.LayerArch.String(), Target: s.targetKey(),
		Struct: arch.UniformTarget, Seed: seed, Mode: s.tbMode("")}
}

// SoftKey is the store key of the software-level (SVF) campaign.
func (s *System) SoftKey(seed int64) results.Key {
	return results.Key{Layer: results.LayerSoft.String(), Target: s.targetKey(),
		Seed: seed, Mode: s.tbMode("")}
}

// storeTally returns the n-injection tally for campaign key k, serving
// as much as possible from the store through the streaming columnar
// path: a fully stored campaign never prepares an injector and never
// materializes its records — the store's cursor aggregates the first n
// of them in o(n) memory. run(from) must execute injections [from, n)
// of the key's pre-drawn fault sequence; it is only invoked when the
// store is missing records, and fresh records are persisted before
// returning. Tallies are integer sums, so prefix-tally + fresh-tally is
// bit-identical to a one-shot n-injection tally.
func (s *System) storeTally(k results.Key, n int, run func(from int) ([]results.Record, error)) (results.Tally, error) {
	if s.Store == nil {
		recs, err := run(0)
		if err != nil {
			return results.Tally{}, err
		}
		return results.TallyOf(recs), nil
	}
	m, ok, err := s.Store.Manifest(k)
	if err != nil {
		return results.Tally{}, err
	}
	if ok && m.N >= n {
		return s.Store.TallyPrefix(k, n)
	}
	var tally results.Tally
	from := 0
	if ok {
		if tally, err = s.Store.TallyPrefix(k, m.N); err != nil {
			return results.Tally{}, err
		}
		from = m.N
	}
	fresh, err := run(from)
	if err != nil {
		return results.Tally{}, err
	}
	if !ok {
		err = s.Store.Save(k, fresh)
	} else {
		err = s.Store.Append(k, fresh)
	}
	if err != nil {
		return results.Tally{}, err
	}
	for _, r := range fresh {
		tally.Add(r)
	}
	return tally, nil
}

// MicroTally measures one structure's AVF/HVF tally with n sampled
// injections, store-aware: stored records are reused and topped up.
func (s *System) MicroTally(cfg micro.Config, st micro.Structure, n int, seed int64) (results.Tally, error) {
	if cfg.ISA != s.ISA {
		return results.Tally{}, fmt.Errorf("vulnstack: config %s (%v) does not match system ISA %v", cfg.Name, cfg.ISA, s.ISA)
	}
	return s.storeTally(s.MicroKey(cfg, st, seed), n, func(from int) ([]results.Record, error) {
		cp, err := s.MicroCampaign(cfg)
		if err != nil {
			return nil, err
		}
		return cp.Records(st, n, from, seed, nil), nil
	})
}

// CacheSampleBoost multiplies the per-structure sample count for the
// cache structures. Most cache faults land in invalid lines and are
// classified without running (cheap), so spending extra samples there
// sharpens the small cache AVFs that dominate the bit-weighted total.
var CacheSampleBoost = map[micro.Structure]int{
	micro.StructL1I: 3, micro.StructL1D: 3, micro.StructL2: 6,
}

// AVFAll runs injection campaigns over all five structures and returns
// per-structure results plus the bit-weighted full-system split. With a
// store attached, fully stored structures are tallied from disk without
// preparing the campaign.
func (s *System) AVFAll(cfg micro.Config, nPerStruct int, seed int64) ([]StructResult, vuln.Split, error) {
	var srs []StructResult
	var parts []vuln.Split
	var bits []int
	for st := micro.Structure(0); st < micro.NumStructures; st++ {
		n := nPerStruct
		if b := CacheSampleBoost[st]; b > 1 {
			n *= b
		}
		tally, err := s.MicroTally(cfg, st, n, seed+int64(st)*7919)
		if err != nil {
			return nil, vuln.Split{}, err
		}
		r := StructResult{
			Struct:  st,
			Bits:    cfg.Bits(st),
			N:       tally.N,
			Split:   vuln.SplitOf(tally),
			HVF:     tally.HVF(),
			FPM:     tally.FPM,
			Visible: tally.Visible,
			Tally:   tally,
		}
		srs = append(srs, r)
		parts = append(parts, r.Split)
		bits = append(bits, r.Bits)
	}
	return srs, vuln.Weighted(parts, bits), nil
}

// PVF measures the architecture-level vulnerability for one FPM,
// store-aware like MicroTally.
func (s *System) PVF(fpm micro.FPM, n int, seed int64) (vuln.Split, error) {
	tally, err := s.storeTally(s.ArchKey(fpm, seed), n, func(from int) ([]results.Record, error) {
		cp, err := s.ArchCampaign()
		if err != nil {
			return nil, err
		}
		return cp.Records(fpm, n, from, seed, nil), nil
	})
	if err != nil {
		return vuln.Split{}, err
	}
	return vuln.SplitOf(tally), nil
}

// UniformPVF measures the register-uniform architecture-level
// vulnerability: bit flips uniform over (register, bit, dynamic
// instant), the quantity that dynamic ACE — and therefore the static
// bound — provably dominates. Store-aware like PVF.
func (s *System) UniformPVF(n int, seed int64) (vuln.Split, error) {
	tally, err := s.storeTally(s.UniformKey(seed), n, func(from int) ([]results.Record, error) {
		cp, err := s.ArchCampaign()
		if err != nil {
			return nil, err
		}
		return cp.UniformRecords(n, from, seed, nil), nil
	})
	if err != nil {
		return vuln.Split{}, err
	}
	return vuln.SplitOf(tally), nil
}

// SVF measures the software-level (LLFI-style) vulnerability,
// store-aware like MicroTally.
func (s *System) SVF(n int, seed int64) (vuln.Split, error) {
	if s.ISA != isa.VSA64 {
		return vuln.Split{}, fmt.Errorf("vulnstack: SVF (LLFI) supports only the 64-bit ISA")
	}
	tally, err := s.storeTally(s.SoftKey(seed), n, func(from int) ([]results.Record, error) {
		cp, err := s.LLFICampaign()
		if err != nil {
			return nil, err
		}
		return cp.Records(n, from, seed, nil), nil
	})
	if err != nil {
		return vuln.Split{}, err
	}
	return vuln.SplitOf(tally), nil
}

// FPMDist computes the bit-weighted fault-propagation-model
// distribution across the five structures (the paper's Fig. 6): the
// probability that a visible hardware fault manifests as each model,
// ESC included. It is a pure function of the per-structure record
// tallies (vuln.FPMDist does the arithmetic).
func FPMDist(cfg micro.Config, srs []StructResult) map[micro.FPM]float64 {
	tallies := make([]results.Tally, len(srs))
	bits := make([]int, len(srs))
	for i, r := range srs {
		tallies[i] = r.Tally
		bits[i] = r.Bits
	}
	return vuln.FPMDist(tallies, bits)
}

// Margin reports the sampling error margin of an n-sample campaign at
// 99% confidence (the paper's convention).
func Margin(n int) float64 { return vuln.Margin(n, 0.99) }

// UniformSamplesFor is the uniform worst-case sample count that
// guarantees margin e at the given confidence — the fixed budget a
// non-stratified campaign needs, and therefore the comparator a
// stratified run's injection count is judged against.
func UniformSamplesFor(e, confidence float64) int { return vuln.SamplesFor(e, confidence) }
