// Command lint enforces determinism invariants on the injection and
// results packages. Campaign tallies must be bit-identical for any
// worker count and reproducible from their seeds (the store's top-up
// resume depends on it), so sources of run-to-run variation are
// forbidden there:
//
//   - wall-clock reads: time.Now, time.Since, time.Until, time.Tick
//   - the global math/rand source (package-level rand.Intn, rand.Seed,
//     ...); explicitly seeded rand.New(rand.NewSource(seed)) instances
//     are fine, as are the constructors themselves
//   - range over a map, whose iteration order is randomized per run —
//     a loop whose effect is genuinely order-free may carry a
//     `//lint:ordered <why>` comment on the range line or the line
//     above to state that and suppress the diagnostic
//   - range over a map keyed by strata.Key, which the annotation can
//     NOT suppress: stratum order is part of the stratified record
//     stream's identity (pilot and round allocations are emitted in
//     partition order), so stratum maps must be walked through the
//     Partition's stable ordering, never through map iteration
//   - float accumulation inside a map-range body (`sum += x`, or
//     `sum = sum + x`, with a float-typed accumulator), which the
//     annotation can NOT suppress either: float addition is not
//     associative, so even a loop whose logical effect is order-free
//     produces run-to-run bit differences when the iteration order
//     feeds a float sum — sort the keys instead
//
// Test files are exempt. The linter is stdlib-only: it typechecks the
// audited packages from source (go/parser + go/types), resolving
// module-internal imports from the repo tree and standard-library
// imports from GOROOT source.
//
// Usage:
//
//	go run ./tools/lint [import-path ...]
//
// With no arguments it audits the determinism-critical set.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const module = "vulnstack"

// defaultPackages is the determinism-critical set: every package whose
// output feeds the persistent results store — the injectors, the
// execution models and convergence comparators they classify with
// (micro, emu, ir, mem, dev), and the campaign/record plumbing.
var defaultPackages = []string{
	module + "/internal/inject",
	module + "/internal/arch",
	module + "/internal/ckpt",
	module + "/internal/llfi",
	module + "/internal/results",
	module + "/internal/colseg",
	module + "/internal/micro",
	module + "/internal/emu",
	module + "/internal/tb",
	module + "/internal/ir",
	module + "/internal/mem",
	module + "/internal/dev",
	module + "/internal/campaign",
	module + "/internal/strata",
	module + "/internal/vuln",
	module + "/internal/report",
}

// clockFuncs are the time package's wall-clock reads. Duration
// arithmetic and formatting remain allowed.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
}

// randConstructors build explicitly seeded generators and are the only
// package-level math/rand functions allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func main() {
	paths := os.Args[1:]
	if len(paths) == 0 {
		paths = defaultPackages
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	l := &loader{
		fset: token.NewFileSet(),
		std:  importer.ForCompiler(token.NewFileSet(), "source", nil),
		pkgs: make(map[string]*loaded),
		root: root,
	}
	var bad []string
	for _, path := range paths {
		v, err := l.lint(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: %s: %v\n", path, err)
			os.Exit(2)
		}
		bad = append(bad, v...)
	}
	sort.Strings(bad)
	for _, v := range bad {
		fmt.Println(v)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d determinism violations\n", len(bad))
		os.Exit(1)
	}
	fmt.Printf("lint: %d packages clean\n", len(paths))
}

// moduleRoot ascends from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// loader typechecks module packages from source, memoizing results.
// It is itself the types.Importer for module-internal imports;
// standard-library imports go through the GOROOT source importer.
// Syntax and type info are memoized alongside the package so that a
// package which is both audited and imported by a later audited
// package resolves to one *types.Package instance — two instances
// would make identical types non-identical to the checker.
type loader struct {
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loaded
	root string
}

// loaded is one typechecked module package with its audit inputs.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == module || strings.HasPrefix(path, module+"/") {
		ld, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return ld.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) dir(path string) string {
	if path == module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, module+"/")))
}

// load parses and typechecks one module package (non-test files only),
// returning its syntax and type info alongside the package. Each path
// is loaded at most once per process.
func (l *loader) load(path string) (*loaded, error) {
	if ld, ok := l.pkgs[path]; ok {
		return ld, nil
	}
	dir := l.dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	ld := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = ld
	return ld, nil
}

// lint audits one package and returns its violations.
func (l *loader) lint(path string) ([]string, error) {
	ld, err := l.load(path)
	if err != nil {
		return nil, err
	}
	files, info := ld.files, ld.info
	var bad []string
	for _, f := range files {
		// Lines whose comments carry the order-free annotation.
		ordered := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "lint:ordered") {
					ordered[l.fset.Position(c.Pos()).Line] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Methods (e.g. (*rand.Rand).Intn) carry a receiver
				// and are fine; only package-level calls are global
				// state.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if clockFuncs[fn.Name()] {
						bad = append(bad, l.violation(n.Pos(), "wall-clock read time.%s breaks run-to-run reproducibility", fn.Name()))
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[fn.Name()] {
						bad = append(bad, l.violation(n.Pos(), "global math/rand source rand.%s is not seed-reproducible; use rand.New(rand.NewSource(seed))", fn.Name()))
					}
				}
			case *ast.RangeStmt:
				t := info.Types[n.X].Type
				if t == nil {
					return true
				}
				m, isMap := t.Underlying().(*types.Map)
				if !isMap {
					return true
				}
				if stratumKeyed(m) {
					// Unsuppressable: stratum order is stream identity.
					bad = append(bad, l.violation(n.Pos(), "range over a stratum map (strata.Key); walk the Partition's stable order instead — //lint:ordered does not apply"))
					return true
				}
				if pos, ok := floatAccum(n.Body, info); ok {
					// Unsuppressable: float addition is not associative,
					// so map order reaches the sum's bits even when the
					// contribution set is order-free.
					bad = append(bad, l.violation(pos, "float accumulation inside a map-range body is order-sensitive (float addition is not associative); sort the keys — //lint:ordered does not apply"))
					return true
				}
				line := l.fset.Position(n.Pos()).Line
				if ordered[line] || ordered[line-1] {
					return true
				}
				bad = append(bad, l.violation(n.Pos(), "map iteration order is randomized per run; sort keys, or annotate an order-free loop with //lint:ordered <why>"))
			}
			return true
		})
	}
	return bad, nil
}

// floatAccum reports the first float accumulation in a range body: a
// `sum += x` / `sum -= x` compound assign, or a `sum = sum + x` /
// `sum = x + sum` self-referencing assign, whose accumulator is a plain
// float-typed variable (index expressions are per-key updates, not
// cross-iteration accumulation, and stay with the general map-range
// rule).
func floatAccum(body *ast.BlockStmt, info *types.Info) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || !floatVar(id, info) {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			pos, found = as.Pos(), true
		case token.ASSIGN:
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				if sid, ok := side.(*ast.Ident); ok && info.Uses[sid] == obj {
					pos, found = as.Pos(), true
				}
			}
		}
		return true
	})
	return pos, found
}

// floatVar reports whether an identifier names a float-typed variable.
func floatVar(id *ast.Ident, info *types.Info) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// stratumKeyed reports whether a map's key type is strata.Key — the
// equivalence-class identity of stratified campaigns, whose ordering is
// part of the record-stream contract.
func stratumKeyed(m *types.Map) bool {
	named, ok := m.Key().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == module+"/internal/strata" && obj.Name() == "Key"
}

func (l *loader) violation(pos token.Pos, format string, args ...any) string {
	p := l.fset.Position(pos)
	rel, err := filepath.Rel(l.root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return fmt.Sprintf("%s:%d: %s", rel, p.Line, fmt.Sprintf(format, args...))
}
