package vulnstack

import (
	"reflect"
	"sync"
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
	"vulnstack/internal/vuln"
)

// stratTestOpts are the scaled-down plan parameters the gates below
// share: a loose 9% bound keeps the uniform comparator (and the
// stratified runs) small enough for breadth across all benchmarks.
var stratTestOpts = StratOptions{CI: 0.09, Confidence: 0.99, Pool: 2000, N0: 8}

// TestStratifiedEstimateWithinCI is the acceptance gate of the
// stratified-sampling work: on every seed benchmark, at every layer,
// the stratified estimate must land inside the uniform run's 99% CI
// around the uniform estimate. The injections saved follow the
// statistics: the micro layer (masked-heavy outcomes, far from the
// worst-case p=0.5) must always use fewer injections than the uniform
// worst-case count, while the arch/soft layers — whose failure rates
// sit near 0.5, where uniform worst-case sampling is already optimal —
// must never exceed it by more than the adaptive-round and pool-term
// overhead (the full-scale >= 3x claim is bench territory; this gate
// is breadth plus unbiasedness).
func TestStratifiedEstimateWithinCI(t *testing.T) {
	nUniform := vuln.SamplesFor(stratTestOpts.CI, stratTestOpts.Confidence)
	margin := vuln.Margin(nUniform, stratTestOpts.Confidence)
	cfg := micro.ConfigA72()

	var countMu sync.Mutex
	var fewer, total int
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
			if err != nil {
				t.Fatal(err)
			}
			sys.Snapshots = 6

			check := func(layer string, uniform vuln.Split, res StratResult, err error) {
				if err != nil {
					t.Fatalf("%s: %v", layer, err)
				}
				if d := res.Split.Total() - uniform.Total(); d < -margin || d > margin {
					t.Errorf("%s: stratified estimate %.4f outside uniform CI %.4f +- %.4f",
						layer, res.Split.Total(), uniform.Total(), margin)
				}
				if res.N >= res.Pool {
					t.Errorf("%s: stratified run exhausted its pool (%d)", layer, res.N)
				}
				if res.HalfWidth > stratTestOpts.CI && res.N < res.Pool {
					t.Errorf("%s: stopped at half-width %.4f > target %.4f with pool remaining",
						layer, res.HalfWidth, stratTestOpts.CI)
				}
				if layer == "micro" && res.N >= nUniform {
					t.Errorf("micro: stratified run used %d injections, uniform worst case is %d", res.N, nUniform)
				}
				if res.N > nUniform+nUniform/4 {
					t.Errorf("%s: stratified run used %d injections, over 1.25x the uniform worst case %d",
						layer, res.N, nUniform)
				}
				countMu.Lock()
				total++
				if res.N < nUniform {
					fewer++
				}
				countMu.Unlock()
				t.Logf("%s: stratified n=%d (uniform %d), estimate %.4f vs %.4f, half-width %.4f, %d strata",
					layer, res.N, nUniform, res.Split.Total(), uniform.Total(), res.HalfWidth, len(res.Strata))
			}

			// Micro (AVF, RF structure).
			tally, err := sys.MicroTally(cfg, micro.StructRF, nUniform, 2021)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.StratMicro(cfg, micro.StructRF, stratTestOpts, 2021)
			check("micro", vuln.SplitOf(tally), res, err)

			// Arch (PVF, WD model).
			u, err := sys.PVF(micro.FPMWD, nUniform, 2021)
			if err != nil {
				t.Fatal(err)
			}
			res, err = sys.StratPVF(micro.FPMWD, stratTestOpts, 2021)
			check("arch", u, res, err)

			// Soft (SVF).
			u, err = sys.SVF(nUniform, 2021)
			if err != nil {
				t.Fatal(err)
			}
			res, err = sys.StratSVF(stratTestOpts, 2021)
			check("soft", u, res, err)
		})
	}
	t.Cleanup(func() {
		t.Logf("stratified used fewer injections on %d/%d benchmark x layer cells", fewer, total)
	})
}

// TestStratifiedResumeBitIdentical pins the determinism contract: a
// budget-truncated stratified run resumed from the store must finish
// bit-identical to a one-shot run — same estimate, same half-width,
// same per-stratum tallies, same stored record stream — and the stream
// must not depend on the worker count.
func TestStratifiedResumeBitIdentical(t *testing.T) {
	const seed = 2021
	cfg := micro.ConfigA72()
	mk := func(workers int) *System {
		sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
		if err != nil {
			t.Fatal(err)
		}
		sys.Snapshots = 6
		sys.Workers = workers
		st, err := results.OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		sys.Store = st
		return sys
	}

	oneShot := mk(1)
	ref, err := oneShot.StratMicro(cfg, micro.StructRF, stratTestOpts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Fresh != ref.N {
		t.Fatalf("one-shot run served %d of %d records from an empty store", ref.N-ref.Fresh, ref.N)
	}

	// Budgeted: repeat with a small fresh-injection budget until done.
	budgeted := mk(1)
	opts := stratTestOpts
	opts.MaxNew = 40
	var res StratResult
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("budgeted run did not converge in 100 resumes")
		}
		res, err = budgeted.StratMicro(cfg, micro.StructRF, opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fresh == 0 {
			break
		}
	}
	// Fresh counts per-call injections, so it legitimately differs
	// between a one-shot run and the final resumed call; everything
	// else must be bit-identical.
	sameButFresh := func(a, b StratResult) bool {
		a.Fresh, b.Fresh = 0, 0
		return reflect.DeepEqual(a, b)
	}
	if !sameButFresh(res, ref) {
		t.Errorf("resumed result differs from one-shot:\n got %+v\nwant %+v", res, ref)
	}

	// Parallel workers: same stream, fresh store.
	par := mk(3)
	resPar, err := par.StratMicro(cfg, micro.StructRF, stratTestOpts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resPar, ref) {
		t.Errorf("3-worker result differs from 1-worker:\n got %+v\nwant %+v", resPar, ref)
	}
	if resPar.Fresh != resPar.N {
		t.Errorf("3-worker run on a fresh store served %d stored records", resPar.N-resPar.Fresh)
	}

	// The stored record streams must be byte-for-byte the same records.
	load := func(sys *System, k results.Key) []results.Record {
		recs, ok, err := sys.Store.Load(k)
		if err != nil || !ok {
			t.Fatalf("stored stratified campaign missing: ok=%v err=%v", ok, err)
		}
		return recs
	}
	refRecs := load(oneShot, ref.Key)
	if got := load(budgeted, res.Key); !reflect.DeepEqual(got, refRecs) {
		t.Error("resumed record stream differs from one-shot stream")
	}
	if got := load(par, resPar.Key); !reflect.DeepEqual(got, refRecs) {
		t.Error("3-worker record stream differs from 1-worker stream")
	}
	// Every stored record carries its stratum label (schema v2 column).
	for i, r := range refRecs {
		if r.Stratum == "" {
			t.Fatalf("record %d has no stratum label", i)
		}
	}

	// A repeat call on the fully stored campaign must inject nothing.
	again, err := oneShot.StratMicro(cfg, micro.StructRF, stratTestOpts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if again.Fresh != 0 {
		t.Errorf("repeat call injected %d fresh records on a complete store", again.Fresh)
	}
	if !sameButFresh(again, ref) {
		t.Errorf("repeat call result differs from original")
	}
}
