package vulnstack

import (
	"reflect"
	"testing"

	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// TestStaticSoundnessGate is the machine-checked soundness gate of the
// bit-precise static analysis: across every seed benchmark, every fault
// the demanded-bits pass classifies as provably Masked must dynamically
// run to Masked on a campaign with every filter off (no dead-def
// filter, no static resolution — the interpreter executes each fault to
// completion). One statically-masked site observed as SDC, Crash, or
// Detected fails the build: the analysis claims a proof, not a
// heuristic.
func TestStaticSoundnessGate(t *testing.T) {
	const pool = 2000
	const maxVerify = 200 // dynamic runs per benchmark; the pool scan is full
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
			if err != nil {
				t.Fatal(err)
			}
			sys.Static = true
			cp, err := sys.LLFICampaign()
			if err != nil {
				t.Fatal(err)
			}
			if cp.IRBits() == nil {
				t.Fatal("static campaign has no demanded-bits result")
			}

			// Dynamic oracle: same module, every shortcut disabled.
			oracle, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
			if err != nil {
				t.Fatal(err)
			}
			oracle.NoEarlyStop = true
			ocp, err := oracle.LLFICampaign()
			if err != nil {
				t.Fatal(err)
			}

			resolved, verified := 0, 0
			for _, f := range cp.Pool(pool, 2021) {
				if !cp.StaticMasked(f) {
					continue
				}
				resolved++
				if verified >= maxVerify {
					continue
				}
				verified++
				if o := ocp.Run(f); o != inject.Masked {
					t.Fatalf("statically-masked fault seq=%d bit=%d dynamically ran to %v — soundness violated",
						f.Seq, f.Bit, o)
				}
			}
			if resolved == 0 {
				t.Errorf("static analysis resolved nothing in a %d-site pool", pool)
			}
			t.Logf("%d/%d pool sites statically resolved, %d verified dynamically Masked",
				resolved, pool, verified)
		})
	}
}

// TestStaticHardwareLayersNeverResolve pins the layer-resolvability
// boundary: the hardware layers have no sound per-site verdict (the
// architectural target of a fault is dynamic state there), so even with
// Static on their stratified campaigns must classify zero sites
// statically — demanded-bits reaches them only as a stratification
// feature, visible as /d-suffixed stratum labels.
func TestStaticHardwareLayersNeverResolve(t *testing.T) {
	sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	sys.Snapshots = 6
	sys.Static = true

	res, err := sys.StratMicro(micro.ConfigA72(), micro.StructRF, stratTestOpts, 2021)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved != 0 {
		t.Errorf("micro layer statically resolved %d sites; no sound verdict exists there", res.Resolved)
	}
	for _, s := range res.Strata {
		if s.Resolved {
			t.Errorf("micro stratum %q marked resolved", s.Label)
		}
	}

	resA, err := sys.StratPVF(micro.FPMWD, stratTestOpts, 2021)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Resolved != 0 {
		t.Errorf("arch layer statically resolved %d sites", resA.Resolved)
	}
}

// TestStaticCampaignTallyEquivalence pins the acceptance contract of
// `campaign -static`: with static resolution on, the uniform soft
// campaign's tally is bit-identical to the dynamic baseline — resolved
// faults are Masked either way; only how the verdict was reached
// differs — and the record stream does not depend on the worker count.
func TestStaticCampaignTallyEquivalence(t *testing.T) {
	const n, seed = 400, 2021
	for _, bench := range []string{"sha", "crc32"} {
		mk := func(static bool, workers int) []results.Record {
			sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
			if err != nil {
				t.Fatal(err)
			}
			sys.Static = static
			cp, err := sys.LLFICampaign()
			if err != nil {
				t.Fatal(err)
			}
			cp.Workers = workers
			return cp.Records(n, 0, seed, nil)
		}
		base := mk(false, 1)
		static1 := mk(true, 1)
		staticN := mk(true, 4)

		if !reflect.DeepEqual(static1, staticN) {
			t.Errorf("%s: static record stream differs between 1 and 4 workers", bench)
		}
		bt, st := results.TallyOf(base), results.TallyOf(static1)
		if bt != st {
			t.Errorf("%s: static tally %+v differs from dynamic baseline %+v", bench, st, bt)
		}
		resolved := 0
		for i, r := range static1 {
			if r.StaticResolved {
				resolved++
				if r.Outcome != results.Masked {
					t.Fatalf("%s: statically-resolved record %d has outcome %v", bench, i, r.Outcome)
				}
			}
			if base[i].StaticResolved {
				t.Fatalf("%s: baseline record %d carries the static provenance flag", bench, i)
			}
		}
		if resolved == 0 {
			t.Errorf("%s: no record statically resolved in %d injections", bench, n)
		}
		t.Logf("%s: %d/%d records statically resolved, tally %+v", bench, resolved, n, st)
	}
}

// TestStratStaticFewerLiveInjections pins the efficiency claim: at the
// same CI bound, the soft-layer stratified campaign with static
// resolution performs strictly fewer live injections than the
// stratified baseline, stays within the combined CIs, and reports its
// resolved strata as exhaustive all-Masked mass.
func TestStratStaticFewerLiveInjections(t *testing.T) {
	mk := func(static bool) StratResult {
		sys, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
		if err != nil {
			t.Fatal(err)
		}
		sys.Static = static
		res, err := sys.StratSVF(stratTestOpts, 2021)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(false)
	stat := mk(true)

	if stat.N >= base.N {
		t.Errorf("static run used %d live injections, baseline %d — no savings", stat.N, base.N)
	}
	if stat.Resolved == 0 {
		t.Error("static run resolved no pool sites")
	}
	if d := stat.Split.Total() - base.Split.Total(); d < -(base.HalfWidth+stat.HalfWidth) || d > base.HalfWidth+stat.HalfWidth {
		t.Errorf("static estimate %.4f vs baseline %.4f differ beyond combined half-widths ±%.4f",
			stat.Split.Total(), base.Split.Total(), base.HalfWidth+stat.HalfWidth)
	}
	sawResolved := false
	for _, s := range stat.Strata {
		if !s.Resolved {
			continue
		}
		sawResolved = true
		if s.Tally.N != s.Size || s.Tally.Outcomes[results.Masked] != s.Size {
			t.Errorf("resolved stratum %q tally %+v is not exhaustive all-Masked over %d sites",
				s.Label, s.Tally, s.Size)
		}
	}
	if !sawResolved {
		t.Error("no stratum marked resolved")
	}
	t.Logf("live injections %d -> %d, %d/%d pool sites resolved",
		base.N, stat.N, stat.Resolved, stat.Pool)
}
