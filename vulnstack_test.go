package vulnstack

import (
	"strings"
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
)

// tinyOpts keeps facade tests fast; statistical assertions stay loose.
func tinyOpts() Options {
	return Options{NAVF: 8, NPVF: 12, NSVF: 25, Seed: 5, Snapshots: 8,
		Benches: []string{"sha", "qsort"}}
}

func TestBuildSystem(t *testing.T) {
	s, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	if s.IR == nil || s.Image == nil {
		t.Fatal("incomplete system")
	}
	if _, err := Build(Target{Bench: "nosuch"}, isa.VSA64); err == nil {
		t.Fatal("unknown bench must error")
	}
	// ISA mismatch paths.
	if _, err := s.MicroCampaign(micro.ConfigA9()); err == nil {
		t.Fatal("A9 (VSA32) campaign on a VSA64 system must error")
	}
	s32, err := Build(Target{Bench: "sha", Seed: 1}, isa.VSA32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s32.SVF(5, 1); err == nil {
		t.Fatal("SVF on VSA32 must error (LLFI is 64-bit only)")
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 12 {
		t.Fatalf("experiment count %d", len(Experiments()))
	}
	if _, err := RunExperiment("fig99", tinyOpts()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTable2Static(t *testing.T) {
	r, err := RunExperiment("table2", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"A9", "A72", "ROB", "L2", "VSA32", "VSA64"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	lab := NewLab(tinyOpts())
	r, err := lab.Run("fig1")
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	if !strings.Contains(out, "sha") || !strings.Contains(out, "qsort") {
		t.Fatalf("fig1 output:\n%s", out)
	}
	if !strings.Contains(out, "margins") {
		t.Error("fig1 must report sampling margins")
	}
	t.Logf("\n%s", out)
}

func TestCaseStudySmoke(t *testing.T) {
	o := tinyOpts()
	o.Benches = nil
	lab := NewLab(o)
	r, err := lab.Run("fig10")
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"(a)", "(b)", "(c)", "(d)", "execution time", "kernel share"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 missing %q\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

func TestLabCaching(t *testing.T) {
	lab := NewLab(tinyOpts())
	s1, err := lab.System(Target{Bench: "sha"}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lab.System(Target{Bench: "sha"}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("lab must cache systems")
	}
}

func TestFPMDistSums(t *testing.T) {
	lab := NewLab(tinyOpts())
	s, err := lab.System(Target{Bench: "sha"}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := micro.ConfigA72()
	res, weighted, err := s.AVFAll(cfg, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != int(micro.NumStructures) {
		t.Fatal("structure count")
	}
	total := weighted.SDC + weighted.Crash + weighted.Detected + weighted.Masked
	if total < 0.999 || total > 1.001 {
		t.Fatalf("weighted split must sum to 1: %f", total)
	}
	dist := FPMDist(cfg, res)
	var sum float64
	for _, v := range dist {
		sum += v
	}
	if sum != 0 && (sum < 0.999 || sum > 1.001) {
		t.Fatalf("FPM distribution must sum to 1: %f", sum)
	}
}
