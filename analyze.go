package vulnstack

import (
	"fmt"
	"math/bits"

	"vulnstack/internal/ace"
	"vulnstack/internal/harden"
	"vulnstack/internal/isa"
	"vulnstack/internal/llfi"
	"vulnstack/internal/micro"
	"vulnstack/internal/report"
	"vulnstack/internal/results"
	"vulnstack/internal/static"
	"vulnstack/internal/vuln"
)

// AnalyzeOptions tunes the static analysis report.
type AnalyzeOptions struct {
	// WithACE adds the dynamic-trace ACE column to the dominance
	// table. It runs the functional emulator (a golden execution) but
	// never an injector; disable it for a strictly no-execution pass.
	WithACE bool
}

// DefaultAnalyzeOptions enables the dynamic ACE comparison.
func DefaultAnalyzeOptions() AnalyzeOptions { return AnalyzeOptions{WithACE: true} }

// Analyze produces the static-analysis report: no-execution PVF/ACE
// bounds, the static FPM bit distribution, the dominance diff against
// dynamic ACE and stored injection campaigns, and hardening-coverage
// verification. It prepares no injector and runs no fault injection —
// stored PVF numbers are read from the lab's results store when one is
// attached, and shown as "-" otherwise.
func (l *Lab) Analyze(ao AnalyzeOptions) (*report.Report, error) {
	r := &report.Report{
		ID:    "Static",
		Title: "Static vulnerability analysis: no-execution bounds vs dynamic ACE vs injection",
	}
	benches := l.Opts.benches()
	seed := l.Opts.Seed

	// Build (or reuse) the systems and their static results up front.
	type entry struct {
		res map[isa.ISA]*static.Result
		dyn *ace.Result
	}
	entries := make([]entry, len(benches))
	fns := make([]func() error, len(benches))
	for i, b := range benches {
		fns[i] = func() error {
			e := entry{res: make(map[isa.ISA]*static.Result)}
			for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
				s, err := l.System(Target{Bench: b}, is)
				if err != nil {
					return err
				}
				st, err := static.Analyze(s.Image)
				if err != nil {
					return fmt.Errorf("static analysis of %s/%v: %w", b, is, err)
				}
				e.res[is] = st
			}
			if ao.WithACE {
				s, err := l.System(Target{Bench: b}, isa.VSA64)
				if err != nil {
					return err
				}
				dyn, err := ace.Analyze(s.Image, 0)
				if err != nil {
					return fmt.Errorf("ace analysis of %s: %w", b, err)
				}
				e.dyn = dyn
			}
			entries[i] = e
			return nil
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}

	// (a) static bounds and dataflow statistics.
	for _, is := range []isa.ISA{isa.VSA64, isa.VSA32} {
		t := r.NewTable(fmt.Sprintf("(a) static bounds and dataflow statistics (%v)", is),
			"Benchmark", "Instrs", "RegBound", "MeanLive", "EverLive",
			"DeadDefs", "BoundaryUses", "StackSlots", "DeadStkSt")
		for i, b := range benches {
			st := entries[i].res[is]
			t.AddRow(b, fmt.Sprint(st.Instrs), report.Pct(st.RegBound),
				report.Pct(st.MeanLive), fmt.Sprintf("%d/%d", st.EverLive, is.NumRegs()),
				fmt.Sprint(st.DeadDefs), fmt.Sprint(st.BoundaryUses),
				fmt.Sprint(st.StackSlots), fmt.Sprintf("%d/%d", st.DeadStackStores, st.StackStores))
		}
	}
	r.Notef("RegBound is the provable no-execution upper bound on register ACE/PVF (max live-out fraction over all program points); MemBound is trivially 100%% without execution knowledge")

	// (b) static FPM bit distribution.
	tf := r.NewTable("(b) static FPM bit classification (VSA64, all text bits)",
		"Benchmark", "masked", "WD", "WI", "WOI", "trap", "WD*", "WI*", "WOI*")
	for i, b := range benches {
		d := entries[i].res[isa.VSA64].FPM
		tf.AddRow(b,
			report.Pct(d.Share(isa.BitMasked)), report.Pct(d.Share(isa.BitWD)),
			report.Pct(d.Share(isa.BitWI)), report.Pct(d.Share(isa.BitWOI)),
			report.Pct(d.Share(isa.BitTrap)),
			report.Pct(d.ModelShare(isa.BitWD)), report.Pct(d.ModelShare(isa.BitWI)),
			report.Pct(d.ModelShare(isa.BitWOI)))
	}
	r.Notef("starred columns renormalize over the manifest models (WD+WI+WOI) for comparison with the measured FPM split of visible faults (fig5/fig6); the static view is execution-frequency-blind and cannot see ESC")

	// (c) dominance: static bound >= dynamic ACE >= register-uniform
	// injected PVF. Operand-targeted WD-PVF is shown for reference only:
	// it conditions on the corrupted value being consumed, a probability
	// ACE does not (and should not) bound.
	hdr := []string{"Benchmark", "Static bound"}
	if ao.WithACE {
		hdr = append(hdr, "Dynamic ACE", "Static/Dyn")
	}
	hdr = append(hdr, "Uniform PVF", "WD PVF (ref)", "Chain")
	td := r.NewTable("(c) dominance chain (VSA64, register file)", hdr...)
	store, err := l.Store()
	if err != nil {
		return nil, err
	}
	// loadPVF reads one stored campaign without ever preparing an
	// injector; absent campaigns stay "-".
	loadPVF := func(b string, key func(s *System) results.Key) (float64, string, error) {
		if store == nil {
			return 0, "-", nil
		}
		s, err := l.System(Target{Bench: b}, isa.VSA64)
		if err != nil {
			return 0, "-", err
		}
		recs, ok, err := store.Load(key(s))
		if err != nil || !ok || len(recs) == 0 {
			return 0, "-", err
		}
		pvf := vuln.SplitRecords(recs).Total()
		return pvf, fmt.Sprintf("%s (n=%d)", report.Pct(pvf), len(recs)), nil
	}
	stored := 0
	for i, b := range benches {
		e := entries[i]
		bound := e.res[isa.VSA64].RegBound
		row := []string{b, report.Pct(bound)}
		chainOK := true
		if ao.WithACE {
			row = append(row, report.Pct(e.dyn.RegACE))
			ratio := "-"
			if e.dyn.RegACE > 0 {
				ratio = fmt.Sprintf("%.1fx", bound/e.dyn.RegACE)
			}
			row = append(row, ratio)
			chainOK = chainOK && bound >= e.dyn.RegACE
		}
		upvf, ucell, err := loadPVF(b, func(s *System) results.Key { return s.UniformKey(seed) })
		if err != nil {
			return nil, err
		}
		if ucell != "-" {
			stored++
			chainOK = chainOK && bound >= upvf
			if ao.WithACE {
				chainOK = chainOK && e.dyn.RegACE >= upvf
			}
		}
		_, wcell, err := loadPVF(b, func(s *System) results.Key { return s.ArchKey(micro.FPMWD, seed) })
		if err != nil {
			return nil, err
		}
		check := "static >= dynamic"
		if !chainOK {
			check = "VIOLATED"
		}
		td.AddRow(append(row, ucell, wcell, check)...)
	}
	if store == nil {
		r.Notef("no results store attached: injected PVF columns empty — run experiments with -store DIR first, then analyze with the same -store to diff against stored campaigns")
	} else if stored < len(benches) {
		r.Notef("stored uniform-PVF campaigns found for %d of %d benchmarks; missing ones are never injected by analyze (it prepares no injector)", stored, len(benches))
	}
	r.Notef("the chain static bound >= dynamic ACE >= uniform PVF quantifies analysis pessimism: the static maximum saturates at the kernel trap-entry register save, dynamic ACE averages actual lifetimes, uniform injection measures end-to-end corruption under (register, bit, instant)-uniform sampling")
	r.Notef("WD PVF targets a *consumed* operand (liveness-conditioned), so it may legitimately exceed dynamic ACE; it is reported for reference, not checked against the chain")

	// (d) hardening coverage.
	tcv := r.NewTable("(d) hardening-coverage verification (VSA64 IR)",
		"Benchmark", "Funcs", "Obligations", "Covered", "Coverage", "Holes", "Unhardened cov.")
	for _, b := range benches {
		hs, err := l.System(Target{Bench: b, Harden: true}, isa.VSA64)
		if err != nil {
			return nil, err
		}
		bs, err := l.System(Target{Bench: b}, isa.VSA64)
		if err != nil {
			return nil, err
		}
		opts := harden.DefaultOptions()
		cov := static.VerifyHardening(hs.IR, opts)
		base := static.VerifyHardening(bs.IR, opts)
		tcv.AddRow(b, fmt.Sprint(cov.Funcs), fmt.Sprint(cov.Obligations),
			fmt.Sprint(cov.Covered), report.Pct(cov.Frac()),
			fmt.Sprint(len(cov.Holes)), report.Pct(base.Frac()))
		for _, h := range cov.Holes {
			r.Notef("coverage hole in %s: %s", b, h)
		}
	}
	r.Notef("the verifier re-derives every duplication and guard obligation from the IR (it does not trust the transform); the unhardened column shows the same verdict on unprotected code")
	r.Notef("analysis provenance: seed %d; zero fault injections performed (no injector prepared)", seed)
	return r, nil
}

// AnalyzeBits produces the bit-precise static-resolution report: per
// benchmark, how many fault-site bits the known-bits/demanded-bits
// analysis proves masked — at the hardware text level (both ISAs, a
// stratification feature) and at the software IR level (a sound
// per-site verdict consumed by `campaign -static`). It runs golden
// executions (to weight the soft verdict by the dynamic fault pool) but
// performs zero fault injections.
func (l *Lab) AnalyzeBits() (*report.Report, error) {
	r := &report.Report{
		ID:    "StaticBits",
		Title: "Bit-precise static resolution: provably-masked fault-site bits by layer",
	}
	benches := l.Opts.benches()
	seed := l.Opts.Seed

	type entry struct {
		hw     map[isa.ISA]static.BitStats
		hwDom  map[isa.ISA]bool
		defs   int
		demand int64
		frac   float64
		// pool resolution: of a DefaultStratPool-site dynamic fault
		// pool, the share the static verdict resolves without injection.
		poolResolved int
		poolSize     int
	}
	entries := make([]entry, len(benches))
	fns := make([]func() error, len(benches))
	for i, b := range benches {
		fns[i] = func() error {
			e := entry{hw: make(map[isa.ISA]static.BitStats), hwDom: make(map[isa.ISA]bool)}
			for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
				s, err := l.System(Target{Bench: b}, is)
				if err != nil {
					return err
				}
				bf := s.bitFlow()
				e.hw[is] = bf.Stats()
				e.hwDom[is] = bf.DemandWithinLiveness()
			}
			s, err := l.System(Target{Bench: b}, isa.VSA64)
			if err != nil {
				return err
			}
			s.Static = true
			cp, err := s.LLFICampaign()
			if err != nil {
				return err
			}
			ib := cp.IRBits()
			if ib == nil {
				return fmt.Errorf("analyze -bits: %s: no IR demanded-bits analysis (campaign prepared without site tracking)", b)
			}
			e.defs = ib.Defs
			for _, d := range ib.Demanded {
				e.demand += int64(bits.OnesCount64(d))
			}
			e.frac = ib.ResolvedFrac()
			pool := cp.Pool(DefaultStratPool, seed)
			e.poolSize = len(pool)
			for _, f := range pool {
				if cp.StaticMasked(f) {
					e.poolResolved++
				}
			}
			entries[i] = e
			return nil
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}

	for _, is := range []isa.ISA{isa.VSA64, isa.VSA32} {
		t := r.NewTable(fmt.Sprintf("(a) hardware text demanded-bits (%v)", is),
			"Benchmark", "Instrs", "LiveBits", "Demanded", "Resolved", "Dem⊆Live")
		for i, b := range benches {
			st := entries[i].hw[is]
			chain := "ok"
			if !entries[i].hwDom[is] {
				chain = "VIOLATED"
			}
			t.AddRow(b, fmt.Sprint(st.Instrs), fmt.Sprint(st.LiveBits),
				fmt.Sprint(st.DemandedBits), report.Pct(st.ResolvedFrac()), chain)
		}
	}
	r.Notef("hardware resolved bits are live-out register bits the backward pass proves undemanded at that program point: a stratification feature only — the architectural target of a hardware fault is dynamic state (renamed physical registers, forward-walked instants), so no per-site verdict exists at the micro/arch layers")

	t := r.NewTable("(b) software IR demanded-bits (VSA64, sound per-site verdict)",
		"Benchmark", "Defs", "SiteBits", "Demanded", "Resolved", "PoolResolved")
	for i, b := range benches {
		e := entries[i]
		t.AddRow(b, fmt.Sprint(e.defs), fmt.Sprint(int64(e.defs)*int64(llfi.Width)),
			fmt.Sprint(e.demand), report.Pct(e.frac),
			fmt.Sprintf("%s (%d/%d)", report.Pct(float64(e.poolResolved)/float64(e.poolSize)), e.poolResolved, e.poolSize))
	}
	r.Notef("Resolved is the static per-site-bit fraction proven masked; PoolResolved weights it by the dynamic fault pool (%d sites drawn as `campaign -strat` draws them) — exactly the injections `campaign -static` never performs", DefaultStratPool)
	r.Notef("dominance chain: demanded-bits ⊆ register liveness ⊆ dynamic ACE ⊆ injected PVF (see DESIGN.md); the Dem⊆Live column machine-checks the first containment")
	r.Notef("analysis provenance: seed %d; golden executions only, zero fault injections performed", seed)
	return r, nil
}
