// Stratified campaign mode: same confidence bounds, order-of-magnitude
// fewer injections. All three layers share one driver: the pre-drawn
// fault-site pool is partitioned into deterministic equivalence classes
// (internal/strata), a pilot round estimates per-stratum variance, and
// Neyman-style rounds (internal/campaign.StratPlan) top up the
// highest-variance strata until the reweighted estimator's CI
// half-width (internal/vuln) meets the target. The record stream is a
// pure function of (seed, pool, partition, plan parameters): rounds are
// planned only from completed-round tallies, records are ordered
// stratum-major within each round, and stored records replay through
// the same planner — so stratified runs are bit-reproducible at any
// worker count and resumable from the columnar store mid-campaign.
package vulnstack

import (
	"fmt"
	"math/bits"

	"vulnstack/internal/arch"
	"vulnstack/internal/campaign"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/llfi"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
	"vulnstack/internal/static"
	"vulnstack/internal/strata"
	"vulnstack/internal/vuln"
)

// DefaultStratCI is the default target CI half-width: the paper's
// worst-case margin for 2000 uniform samples at 99% confidence (2.88%),
// so a default stratified run promises exactly the bound the paper's
// campaigns promise.
const DefaultStratCI = 0.0288

// DefaultStratPool is the default fault-site pool size: 10x the uniform
// sample count behind DefaultStratCI, so pool granularity never binds
// the adaptive allocator. Drawing pool sites is free — only injections
// cost time.
const DefaultStratPool = 20000

// StratOptions configure a stratified campaign. The zero value selects
// the paper-equivalent defaults.
type StratOptions struct {
	// CI is the target half-width of the reweighted estimator's
	// confidence interval (DefaultStratCI when <= 0).
	CI float64
	// Confidence is the CI level (0.99 when <= 0).
	Confidence float64
	// Pool is the fault-site pool size (DefaultStratPool when <= 0).
	Pool int
	// N0 is the pilot sample count per stratum
	// (campaign.DefaultPilot when <= 0).
	N0 int
	// MaxNew bounds the fresh injections this call may perform (0 = no
	// bound): the resume budget. A budget-truncated run persists what it
	// injected; a later call with the same options continues the exact
	// stream and finishes bit-identical to an unbudgeted one-shot run.
	MaxNew int
}

func (o StratOptions) ci() float64 {
	if o.CI <= 0 {
		return DefaultStratCI
	}
	return o.CI
}

func (o StratOptions) conf() float64 {
	if o.Confidence <= 0 {
		return 0.99
	}
	return o.Confidence
}

func (o StratOptions) pool() int {
	if o.Pool <= 0 {
		return DefaultStratPool
	}
	return o.Pool
}

func (o StratOptions) n0() int {
	if o.N0 <= 0 {
		return campaign.DefaultPilot
	}
	return o.N0
}

// mode is the sampling-regime component of the store key: every plan
// parameter that shapes the record stream, plus the partition
// fingerprint — partitions depend on derived campaign state (checkpoint
// PCs, def-use availability), so streams built from incompatible
// partitions can never collide in the store.
func (o StratOptions) mode(part *strata.Partition) string {
	return fmt.Sprintf("strat,pool=%d,n0=%d,ci=%g,conf=%g,part=%s",
		o.pool(), o.n0(), o.ci(), o.conf(), part.Fingerprint())
}

// StratumReport is one stratum's contribution to a stratified result.
type StratumReport struct {
	// Label is the equivalence-class provenance label (also stored per
	// record).
	Label string
	// Size is the stratum's pool site count (the reweighting weight
	// numerator).
	Size int
	// Tally aggregates the injections performed inside the stratum —
	// or, for a Resolved stratum, the synthesized exhaustive tally.
	Tally results.Tally
	// Resolved marks a stratum classified entirely by the static
	// demanded-bits analysis: all Size sites are provably Masked and
	// zero injections were performed in it.
	Resolved bool
}

// StratResult is the outcome of a stratified campaign.
type StratResult struct {
	// Split is the unbiased reweighted outcome estimate.
	Split vuln.Split
	// HalfWidth is the achieved CI half-width at the requested
	// confidence (<= the CI target unless the run was budget-truncated
	// or the pool was exhausted).
	HalfWidth float64
	// N is the total injections in the stream (stored + fresh); Fresh
	// is how many this call executed.
	N     int
	Fresh int
	// Resolved is the number of pool sites classified statically
	// (zero-injection certain mass in the estimate).
	Resolved int
	// Pool is the fault-site pool size.
	Pool int
	// Strata reports the per-stratum sizes and tallies in stable
	// partition order.
	Strata []StratumReport
	// Key is the full store identity (provenance stamp: the Mode field
	// carries plan parameters and the partition fingerprint).
	Key results.Key
}

// liveCFG returns the image's liveness-solved static CFG, built once
// per system.
func (s *System) liveCFG() *static.CFG {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.staticG == nil {
		g := static.BuildCFG(s.ISA, static.ImageSegs(s.Image))
		g.Liveness()
		s.staticG = g
	}
	return s.staticG
}

// liveBucketAt is the static-liveness stratification feature: the
// bucketed live-out register count at a program point, -1 when the
// address is outside the analyzed text (an unknown-liveness stratum).
func (s *System) liveBucketAt(g *static.CFG, pc uint64) int {
	mask, ok := g.LiveOutAt(pc)
	if !ok {
		return -1
	}
	return strata.LiveBucket(bits.OnesCount32(mask), s.ISA.NumRegs())
}

// bitFlow returns the image's bit-precise known/demanded-bits solution,
// built once per system on top of the liveness-solved CFG.
func (s *System) bitFlow() *static.BitFlow {
	g := s.liveCFG()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.staticB == nil {
		s.staticB = g.SolveBits()
	}
	return s.staticB
}

// demBucketAt is the hardware layers' demanded-bits stratification
// feature: whether the fault's bit position is inside the union of
// statically demanded register bits at the governing program point.
// A proxy only — the architectural target of a hardware fault is
// dynamic state (physical registers, forward-walked instants), so
// undemanded here never means resolved, just a colder stratum.
// Misclassification costs efficiency, never bias.
func (s *System) demBucketAt(bf *static.BitFlow, pc uint64, bit int) int {
	d, ok := bf.DemandedUnionAt(pc)
	if !ok {
		return strata.DemDemanded
	}
	if d&(1<<uint(bit%s.ISA.XLen())) == 0 {
		return strata.DemUndemanded
	}
	return strata.DemDemanded
}

// StratMicro measures one structure's AVF with stratified sampling:
// pool sites are partitioned by (structure, bit bucket, liveness bucket
// at the governing checkpoint's fetch PC) and the allocator samples
// strata adaptively until the reweighted estimate meets opt's bound.
func (s *System) StratMicro(cfg micro.Config, st micro.Structure, opt StratOptions, seed int64) (StratResult, error) {
	if cfg.ISA != s.ISA {
		return StratResult{}, fmt.Errorf("vulnstack: config %s (%v) does not match system ISA %v", cfg.Name, cfg.ISA, s.ISA)
	}
	cp, err := s.MicroCampaign(cfg)
	if err != nil {
		return StratResult{}, err
	}
	pool := cp.Pool(st, opt.pool(), seed)
	pcs := cp.CheckpointPCs()
	g := s.liveCFG()
	var bf *static.BitFlow
	if s.Static {
		bf = s.bitFlow()
	}
	part := strata.New(len(pool), func(i int) strata.Key {
		f := pool[i]
		pc := pcs[cp.CkptFor(f.Cycle)]
		key := strata.Key{
			Class: st.String(),
			Bit:   strata.BitBucket(f.Bit),
			Live:  s.liveBucketAt(g, pc),
		}
		if bf != nil {
			key.Dem = s.demBucketAt(bf, pc, f.Bit)
		}
		return key
	})
	k := s.MicroKey(cfg, st, seed)
	k.Mode = opt.mode(part)
	return s.runStratified(k, part, nil, opt, func(sites []int, base int) []results.Record {
		faults := make([]inject.Fault, len(sites))
		for i, site := range sites {
			faults[i] = pool[site]
		}
		return cp.RecordsAt(faults, base, nil)
	})
}

// StratPVF measures one FPM's PVF with stratified sampling. WD faults
// corrupt operand data, so their class is the model itself; WI/WOI
// faults corrupt instruction encodings, so their class is the
// isa.FlipClass of flipping the sampled bit in the instruction word at
// the governing checkpoint's PC — a static proxy for the dynamic fault
// site that separates encoding-sensitivity regimes. Misclassification
// costs efficiency, never bias.
func (s *System) StratPVF(fpm micro.FPM, opt StratOptions, seed int64) (StratResult, error) {
	cp, err := s.ArchCampaign()
	if err != nil {
		return StratResult{}, err
	}
	pool := cp.Pool(fpm, opt.pool(), seed)
	pcs := cp.CheckpointPCs()
	g := s.liveCFG()
	var bf *static.BitFlow
	if s.Static {
		bf = s.bitFlow()
	}
	part := strata.New(len(pool), func(i int) strata.Key {
		f := pool[i]
		pc := pcs[cp.CkptFor(f.K)]
		class := fpm.String()
		if fpm != micro.FPMWD {
			if w, ok := s.Image.RAM.Word32(pc); ok {
				class = isa.FlipClass(w, f.Bit%32, s.ISA).String()
			} else {
				class = "nofetch"
			}
		}
		key := strata.Key{
			Class: class,
			Bit:   strata.BitBucket(f.Bit),
			Live:  s.liveBucketAt(g, pc),
		}
		if bf != nil {
			key.Dem = s.demBucketAt(bf, pc, f.Bit)
		}
		return key
	})
	k := s.ArchKey(fpm, seed)
	k.Mode = s.tbMode(opt.mode(part))
	return s.runStratified(k, part, nil, opt, func(sites []int, base int) []results.Record {
		faults := make([]arch.Fault, len(sites))
		for i, site := range sites {
			faults[i] = pool[site]
		}
		return cp.RecordsAt(faults, base, nil)
	})
}

// StratSVF measures the software-level vulnerability with stratified
// sampling: pool sites are partitioned by whether the golden run ever
// read the targeted definition (dead defs are provably Masked, so that
// stratum's variance collapses immediately) and by bit bucket.
func (s *System) StratSVF(opt StratOptions, seed int64) (StratResult, error) {
	if s.ISA != isa.VSA64 {
		return StratResult{}, fmt.Errorf("vulnstack: SVF (LLFI) supports only the 64-bit ISA")
	}
	cp, err := s.LLFICampaign()
	if err != nil {
		return StratResult{}, err
	}
	pool := cp.Pool(opt.pool(), seed)
	useStatic := s.Static && cp.IRBits() != nil
	part := strata.New(len(pool), func(i int) strata.Key {
		f := pool[i]
		class := "dead"
		if cp.UsedDef(f.Seq) {
			class = "live"
		}
		key := strata.Key{Class: class, Bit: strata.BitBucket(int(f.Bit)), Live: -1}
		if useStatic {
			// The soft layer has a sound per-site verdict: a
			// DemResolved stratum holds only provably-Masked faults, so
			// the driver counts its whole mass without injecting.
			key.Dem = strata.DemDemanded
			if cp.StaticMasked(f) {
				key.Dem = strata.DemResolved
			}
		}
		return key
	})
	var resolved []bool
	if useStatic {
		resolved = make([]bool, part.NumStrata())
		for h := range resolved {
			resolved[h] = part.Key(h).Dem == strata.DemResolved
		}
	}
	k := s.SoftKey(seed)
	k.Mode = s.tbMode(opt.mode(part))
	return s.runStratified(k, part, resolved, opt, func(sites []int, base int) []results.Record {
		faults := make([]llfi.Fault, len(sites))
		for i, site := range sites {
			faults[i] = pool[site]
		}
		return cp.RecordsAt(faults, base, nil)
	})
}

// runStratified is the layer-agnostic stratified driver. injectAt must
// inject the pool sites (by pool index, in the given order) and return
// their records indexed base+i; the driver stamps stratum labels,
// persists each round, and replays any stored prefix instead of
// re-injecting it. Stored records are verified against the planned
// stream (index and stratum label) — the partition fingerprint in the
// key makes a mismatch unreachable short of store corruption.
//
// resolved (nil when no static pass ran) marks strata whose every site
// is provably Masked by static analysis: the driver synthesizes their
// exhaustive all-Masked tallies up front, the planner allocates them
// zero samples, and no record for them ever enters the stream — their
// mass reaches the estimate as zero-variance certainty.
func (s *System) runStratified(k results.Key, part *strata.Partition, resolved []bool, opt StratOptions, injectAt func(sites []int, base int) []results.Record) (StratResult, error) {
	sizes := part.Sizes()
	labels := part.Labels()
	byStratum := make([][]int, part.NumStrata())
	for h := range byStratum {
		byStratum[h] = part.Sites(h)
	}
	plan := campaign.StratPlan{Sizes: sizes, N0: opt.n0(), CI: opt.ci(), Confidence: opt.conf(), Resolved: resolved}

	var stored []results.Record
	haveStored := false
	if s.Store != nil {
		recs, ok, err := s.Store.Load(k)
		if err != nil {
			return StratResult{}, err
		}
		stored, haveStored = recs, ok
	}

	sampled := make([]int, len(sizes))
	tallies := make([]results.Tally, len(sizes))
	nResolved := 0
	for h := range resolved {
		if !resolved[h] {
			continue
		}
		// Synthesized exhaustive tally: every site Masked, no records.
		tallies[h].N = sizes[h]
		tallies[h].Outcomes[results.Masked] = sizes[h]
		sampled[h] = sizes[h]
		nResolved += sizes[h]
	}
	storedPos, total, fresh := 0, 0, 0

	for counts := plan.Pilot(); counts != nil; counts = plan.Next(tallies) {
		// Materialize the round stratum-major: within a stratum, pool
		// order (an i.i.d. prefix of the stratum).
		var sites, strat []int
		for h, c := range counts {
			for _, site := range byStratum[h][sampled[h] : sampled[h]+c] {
				sites = append(sites, site)
				strat = append(strat, h)
			}
			sampled[h] += c
		}
		// Serve the stored prefix of the round.
		served := 0
		for served < len(sites) && storedPos < len(stored) {
			rec := stored[storedPos]
			if rec.Index != total || rec.Stratum != labels[strat[served]] {
				return StratResult{}, fmt.Errorf("vulnstack: stored stratified campaign %q diverges at record %d (stored index %d stratum %q, want %q)",
					k, total, rec.Index, rec.Stratum, labels[strat[served]])
			}
			tallies[strat[served]].Add(rec)
			storedPos++
			total++
			served++
		}
		// Inject the rest, bounded by the fresh-injection budget.
		truncated := false
		todoSites, todoStrat := sites[served:], strat[served:]
		if opt.MaxNew > 0 && fresh+len(todoSites) > opt.MaxNew {
			todoSites, todoStrat = todoSites[:opt.MaxNew-fresh], todoStrat[:opt.MaxNew-fresh]
			truncated = true
		}
		if len(todoSites) > 0 {
			recs := injectAt(todoSites, total)
			for i := range recs {
				recs[i].Stratum = labels[todoStrat[i]]
				tallies[todoStrat[i]].Add(recs[i])
			}
			if s.Store != nil {
				var err error
				if !haveStored {
					err = s.Store.Save(k, recs)
					haveStored = true
				} else {
					err = s.Store.Append(k, recs)
				}
				if err != nil {
					return StratResult{}, err
				}
			}
			total += len(recs)
			fresh += len(recs)
		}
		if truncated {
			// Partial rounds stay unbiased (within-stratum prefixes of
			// an i.i.d. sample) but must not feed the planner: stop
			// here; a resumed call replays the stream and finishes the
			// round first.
			break
		}
	}

	poolSize := 0
	for _, m := range sizes {
		poolSize += m
	}
	strataState := campaign.StrataResolved(sizes, tallies, resolved)
	res := StratResult{
		Split:     vuln.StratifiedSplit(strataState),
		HalfWidth: vuln.StratifiedHalfWidth(strataState, opt.conf()),
		N:         total,
		Fresh:     fresh,
		Resolved:  nResolved,
		Pool:      poolSize,
		Strata:    make([]StratumReport, len(sizes)),
		Key:       k,
	}
	for h := range sizes {
		res.Strata[h] = StratumReport{Label: labels[h], Size: sizes[h], Tally: tallies[h],
			Resolved: h < len(resolved) && resolved[h]}
	}
	return res, nil
}
