// Command vulnstack regenerates the paper's tables and figures and runs
// ad-hoc vulnerability measurements.
//
// Usage:
//
//	vulnstack list
//	vulnstack experiment fig4 [-navf N] [-npvf N] [-nsvf N] [-bench a,b] [-seed S] [-store DIR]
//	vulnstack analyze [-bench a,b] [-seed S] [-store DIR] [-ace=false] [-bits]
//	vulnstack run -bench sha [-config A72] [-harden]
//	vulnstack campaign -bench sha -config A72 -struct L2 -n 200 [-store DIR] [-cpuprofile F] [-memprofile F]
//	vulnstack campaign -layer soft -bench sha -n 200 [-static] [-store DIR]
//	vulnstack campaign -strat [-layer micro|arch|soft] [-static] [-ci 0.0288] [-conf 0.99] [-pool 20000] [-n0 N] [-maxnew N] [-store DIR]
//	vulnstack bench [-bench a,b] [-n N] [-out FILE]
//	vulnstack results [list|show|export|compact] -store DIR [-id ID] [filters]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"vulnstack"
	"vulnstack/internal/ckpt"
	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/report"
	"vulnstack/internal/results"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "experiment", "exp":
		err = cmdExperiment(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "results":
		err = cmdResults(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vulnstack:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vulnstack list                          benchmarks, configs, experiments
  vulnstack experiment <id> [flags]       regenerate a paper table/figure
  vulnstack analyze [flags]               static no-execution analysis report
  vulnstack run [flags]                   run one benchmark on a core model
  vulnstack campaign [flags]              one fault-injection campaign
  vulnstack bench [flags]                 per-injection cost benchmark -> BENCH_<date>.json
  vulnstack results <verb> [flags]        list / show / export / compact stored campaigns`)
}

func cmdList() error {
	fmt.Println("benchmarks:")
	for _, b := range vulnstack.Benchmarks() {
		fmt.Printf("  %s\n", b)
	}
	fmt.Println("microarchitectures:")
	for _, c := range vulnstack.Configs() {
		fmt.Printf("  %-4s (%v)\n", c.Name, c.ISA)
	}
	fmt.Println("experiments:")
	fmt.Printf("  %s\n", strings.Join(vulnstack.Experiments(), " "))
	return nil
}

func expFlags(args []string) (*flag.FlagSet, *vulnstack.Options) {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	o := vulnstack.DefaultOptions()
	fs.IntVar(&o.NAVF, "navf", o.NAVF, "microarchitectural injections per structure")
	fs.IntVar(&o.NPVF, "npvf", o.NPVF, "architecture-level injections per FPM")
	fs.IntVar(&o.NSVF, "nsvf", o.NSVF, "software-level injections")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "input and sampling seed")
	fs.IntVar(&o.Snapshots, "snapshots", o.Snapshots, "golden-run snapshots")
	fs.IntVar(&o.Workers, "workers", o.Workers, "campaign worker goroutines (0 = all CPUs; tallies are identical for any value)")
	fs.StringVar(&o.StoreDir, "store", o.StoreDir, "persistent results store directory (reuse + top-up of stored records)")
	benches := fs.String("bench", "", "comma-separated benchmark subset")
	fs.Parse(args)
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}
	return fs, &o
}

func cmdExperiment(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("experiment id required (one of %s)", strings.Join(vulnstack.Experiments(), ", "))
	}
	id := args[0]
	_, o := expFlags(args[1:])
	start := time.Now()
	r, err := vulnstack.RunExperiment(id, *o)
	if err != nil {
		return err
	}
	fmt.Print(r.String())
	fmt.Printf("\n[%s regenerated in %v]\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}

// cmdAnalyze emits the static-analysis report: no-execution PVF/FPM
// bounds, hardening-coverage verification, and — when a store is
// attached — the diff against stored injection campaigns. It performs
// zero fault injections.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	o := vulnstack.DefaultOptions()
	fs.Int64Var(&o.Seed, "seed", o.Seed, "input and sampling seed (also selects stored campaigns)")
	fs.IntVar(&o.Workers, "workers", o.Workers, "analysis fan-out across benchmarks (0 = all CPUs)")
	fs.StringVar(&o.StoreDir, "store", o.StoreDir, "results store to diff static bounds against stored injection campaigns")
	benches := fs.String("bench", "", "comma-separated benchmark subset")
	withACE := fs.Bool("ace", true, "include the dynamic-trace ACE column (runs a golden execution, still no injections)")
	bitsRep := fs.Bool("bits", false, "bit-precise resolution report: per-benchmark statically-resolved fault-site fractions at every layer")
	fs.Parse(args)
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}
	// A store named on the command line must exist and hold campaigns:
	// silently rendering an all-dash diff table against a store that was
	// mistyped or never populated looks like a real (empty) result.
	if o.StoreDir != "" {
		if err := checkStore(o.StoreDir); err != nil {
			return fmt.Errorf("analyze: %w", err)
		}
	}
	start := time.Now()
	lab := vulnstack.NewLab(o)
	var r *report.Report
	var err error
	if *bitsRep {
		r, err = lab.AnalyzeBits()
	} else {
		r, err = lab.Analyze(vulnstack.AnalyzeOptions{WithACE: *withACE})
	}
	if err != nil {
		return err
	}
	fmt.Print(r.String())
	fmt.Printf("\n[static analysis in %v]\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// checkStore rejects a -store argument naming a missing directory or a
// store with no campaigns in it, so analyze fails loudly instead of
// printing a zero-row diff.
func checkStore(dir string) error {
	fi, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("store directory %q does not exist (run a campaign or experiment with -store %s first)", dir, dir)
	}
	if !fi.IsDir() {
		return fmt.Errorf("store path %q is not a directory", dir)
	}
	store, err := results.OpenStore(dir)
	if err != nil {
		return err
	}
	ms, err := store.List()
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		return fmt.Errorf("store %q holds no campaigns (run a campaign or experiment with -store %s first)", dir, dir)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", "sha", "benchmark name")
	cfgName := fs.String("config", "A72", "microarchitecture (A9, A15, A57, A72)")
	seed := fs.Int64("seed", 1, "input seed")
	hard := fs.Bool("harden", false, "apply the fault-tolerance transform")
	fs.Parse(args)

	cfg, err := micro.ConfigByName(*cfgName)
	if err != nil {
		return err
	}
	sys, err := vulnstack.Build(vulnstack.Target{Bench: *bench, Seed: *seed, Harden: *hard}, cfg.ISA)
	if err != nil {
		return err
	}
	core := micro.New(cfg, sys.Image.NewMemory(), sys.Image.Entry)
	start := time.Now()
	if !core.Run(1 << 30) {
		return fmt.Errorf("did not halt: %v", core)
	}
	fmt.Printf("benchmark  %s (seed %d, harden=%v) on %s (%v)\n", *bench, *seed, *hard, cfg.Name, cfg.ISA)
	fmt.Printf("halt       %v (exit %d)\n", core.Bus.Halt, core.Bus.ExitCode)
	fmt.Printf("instrs     %d (kernel %d, %.2f%%)\n", core.Instret, core.KInstr,
		100*float64(core.KInstr)/float64(core.Instret))
	fmt.Printf("cycles     %d (IPC %.2f)\n", core.Cycle, float64(core.Instret)/float64(core.Cycle))
	fmt.Printf("output     %d bytes\n", len(core.Bus.Out))
	fmt.Printf("simulated in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	bench := fs.String("bench", "sha", "benchmark name")
	cfgName := fs.String("config", "A72", "microarchitecture")
	stName := fs.String("struct", "RF", "structure (RF, LSQ, L1i, L1d, L2)")
	layer := fs.String("layer", "micro", "injection layer: micro (structure faults), uniform (register-uniform PVF, the quantity the static/ACE bounds dominate), or — with -strat — arch / soft")
	n := fs.Int("n", 200, "number of injections")
	strat := fs.Bool("strat", false, "two-level stratified campaign: adaptive per-stratum injection until the reweighted CI meets -ci (replaces -n)")
	ci := fs.Float64("ci", vulnstack.DefaultStratCI, "stratified target CI half-width (default: the paper's 2.88% margin for 2000 uniform samples)")
	conf := fs.Float64("conf", 0.99, "stratified CI confidence level")
	pool := fs.Int("pool", vulnstack.DefaultStratPool, "stratified fault-site pool size")
	n0 := fs.Int("n0", 0, "stratified pilot injections per stratum (0 = default)")
	maxNew := fs.Int("maxnew", 0, "stratified fresh-injection budget for this invocation (0 = unbounded; a truncated run resumes from -store bit-identically)")
	fpmName := fs.String("fpm", "WD", "arch-layer fault model for -strat -layer arch (WD, WI, WOI)")
	static := fs.Bool("static", false, "bit-precise static resolution: classify provably-masked soft-layer sites without injecting (tallies stay bit-identical); with -strat, adds the demanded-bits stratum level at every layer")
	seed := fs.Int64("seed", 1, "sampling seed")
	hard := fs.Bool("harden", false, "apply the fault-tolerance transform")
	workers := fs.Int("workers", 0, "campaign worker goroutines (0 = all CPUs; tallies are identical for any value)")
	storeDir := fs.String("store", "", "persistent results store directory (reuse + top-up of stored records)")
	earlyStop := fs.Bool("earlystop", true, "golden-trace convergence early-stop (provably outcome-preserving; off-switch for measurement)")
	decodeCache := fs.Bool("decodecache", true, "predecoded fetch cache (provably result-neutral; off-switch for measurement)")
	tbEng := fs.Bool("tb", true, "translation-block execution engines: arch-layer superblock dispatch and soft-layer compiled IR (provably result-neutral; off-switch for measurement)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (runtime/pprof) to this file")
	fs.Parse(args)

	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProf()

	if *strat {
		opt := vulnstack.StratOptions{CI: *ci, Confidence: *conf, Pool: *pool, N0: *n0, MaxNew: *maxNew}
		return stratCampaign(*layer, *bench, *cfgName, *stName, *fpmName, *seed, *hard, *workers, *storeDir, *static, !*tbEng, opt)
	}
	if *layer == "uniform" {
		return uniformCampaign(*bench, *n, *seed, *hard, *workers, *storeDir, !*earlyStop, !*decodeCache, !*tbEng)
	}
	if *layer == "soft" {
		return softCampaign(*bench, *n, *seed, *hard, *workers, *storeDir, !*earlyStop, *static, !*tbEng)
	}
	if *layer != "micro" {
		return fmt.Errorf("campaign: unknown -layer %q (micro, uniform, or soft)", *layer)
	}
	cfg, err := micro.ConfigByName(*cfgName)
	if err != nil {
		return err
	}
	st, err := micro.ParseStructure(*stName)
	if err != nil {
		return err
	}
	sys, err := vulnstack.Build(vulnstack.Target{Bench: *bench, Seed: 1, Harden: *hard}, cfg.ISA)
	if err != nil {
		return err
	}
	sys.Workers = *workers
	sys.NoEarlyStop = !*earlyStop
	sys.NoDecodeCache = !*decodeCache
	sys.NoTB = !*tbEng
	stored := 0
	if *storeDir != "" {
		store, err := results.OpenStore(*storeDir)
		if err != nil {
			return err
		}
		sys.Store = store
		if m, ok, err := store.Manifest(sys.MicroKey(cfg, st, *seed)); err != nil {
			return err
		} else if ok {
			stored = m.N
		}
	}
	start := time.Now()
	tally, err := sys.MicroTally(cfg, st, *n, *seed)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("%s on %s, %d faults into %s\n", *bench, cfg.Name, tally.N, st)
	fmt.Printf("  Masked   %6.2f%%\n", 100*tally.Frac(0))
	fmt.Printf("  SDC      %6.2f%%\n", 100*tally.Frac(1))
	fmt.Printf("  Crash    %6.2f%%\n", 100*tally.Frac(2))
	fmt.Printf("  Detected %6.2f%%\n", 100*tally.Frac(3))
	fmt.Printf("  AVF %.2f%%  HVF %.2f%%  (±%.2f%% at 99%%)\n",
		100*tally.AVF(), 100*tally.HVF(), 100*vulnstackMargin(tally.N))
	fmt.Printf("  FPM of visible: WD %.0f%% WI %.0f%% WOI %.0f%% ESC %.0f%%\n",
		100*tally.FPMShare(micro.FPMWD), 100*tally.FPMShare(micro.FPMWI),
		100*tally.FPMShare(micro.FPMWOI), 100*tally.FPMShare(micro.FPMESC))
	if sys.Store != nil {
		reused := min(stored, *n)
		fmt.Printf("  store: reused %d records, ran %d new (id %s)\n",
			reused, *n-reused, sys.MicroKey(cfg, st, *seed).ID())
	}
	fmt.Printf("  %d injections in %v (%.1f/s)\n", tally.N, elapsed.Round(time.Millisecond),
		float64(tally.N)/elapsed.Seconds())
	return nil
}

// uniformCampaign runs a register-uniform PVF campaign: bit flips
// uniform over (register, bit, dynamic instant). Its failure rate is
// the measured quantity that the dynamic ACE bound — and transitively
// the static bound of `vulnstack analyze` — provably dominates.
func uniformCampaign(bench string, n int, seed int64, hard bool, workers int, storeDir string, noEarlyStop, noDecodeCache, noTB bool) error {
	// The input seed doubles as the sampling seed, matching the lab's
	// convention so `analyze -seed S -store DIR` finds these records.
	sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: seed, Harden: hard}, isa.VSA64)
	if err != nil {
		return err
	}
	sys.Workers = workers
	sys.NoEarlyStop = noEarlyStop
	sys.NoDecodeCache = noDecodeCache
	sys.NoTB = noTB
	stored := 0
	if storeDir != "" {
		store, err := results.OpenStore(storeDir)
		if err != nil {
			return err
		}
		sys.Store = store
		if m, ok, err := store.Manifest(sys.UniformKey(seed)); err != nil {
			return err
		} else if ok {
			stored = m.N
		}
	}
	start := time.Now()
	sp, err := sys.UniformPVF(n, seed)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%s (harden=%v), %d register-uniform injections\n", bench, hard, n)
	fmt.Printf("  SDC      %6.2f%%\n", 100*sp.SDC)
	fmt.Printf("  Crash    %6.2f%%\n", 100*sp.Crash)
	fmt.Printf("  Detected %6.2f%%\n", 100*sp.Detected)
	fmt.Printf("  uniform PVF %.2f%%  (±%.2f%% at 99%%)\n", 100*sp.Total(), 100*vulnstackMargin(n))
	if sys.Store != nil {
		reused := min(stored, n)
		fmt.Printf("  store: reused %d records, ran %d new (id %s)\n",
			reused, n-reused, sys.UniformKey(seed).ID())
	}
	fmt.Printf("  %d injections in %v (%.1f/s)\n", n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	return nil
}

// softCampaign runs a software-level (LLFI-style) uniform campaign,
// optionally with the bit-precise static resolution pass: faults the
// demanded-bits analysis proves masked are classified without running,
// with tallies bit-identical to the uninstrumented dynamic baseline.
func softCampaign(bench string, n int, seed int64, hard bool, workers int, storeDir string, noEarlyStop, static, noTB bool) error {
	sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: seed, Harden: hard}, isa.VSA64)
	if err != nil {
		return err
	}
	sys.Workers = workers
	sys.NoEarlyStop = noEarlyStop
	sys.Static = static
	sys.NoTB = noTB
	stored := 0
	if storeDir != "" {
		store, err := results.OpenStore(storeDir)
		if err != nil {
			return err
		}
		sys.Store = store
		if m, ok, err := store.Manifest(sys.SoftKey(seed)); err != nil {
			return err
		} else if ok {
			stored = m.N
		}
	}
	start := time.Now()
	sp, err := sys.SVF(n, seed)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%s (harden=%v), %d software-level IR injections (static=%v)\n", bench, hard, n, static)
	fmt.Printf("  SDC      %6.2f%%\n", 100*sp.SDC)
	fmt.Printf("  Crash    %6.2f%%\n", 100*sp.Crash)
	fmt.Printf("  Detected %6.2f%%\n", 100*sp.Detected)
	fmt.Printf("  SVF %.2f%%  (±%.2f%% at 99%%)\n", 100*sp.Total(), 100*vulnstackMargin(n))
	if sys.Store != nil {
		reused := min(stored, n)
		fmt.Printf("  store: reused %d records, ran %d new (id %s)\n",
			reused, n-reused, sys.SoftKey(seed).ID())
	}
	fmt.Printf("  %d injections in %v (%.1f/s)\n", n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	return nil
}

// stratCampaign runs one adaptive two-level stratified campaign at the
// requested layer and prints the unbiased reweighted estimate with the
// per-stratum breakdown and the provenance stamp (plan parameters +
// partition fingerprint) that identifies the record stream in a store.
func stratCampaign(layer, bench, cfgName, stName, fpmName string, seed int64, hard bool, workers int, storeDir string, static, noTB bool, opt vulnstack.StratOptions) error {
	cfg, err := micro.ConfigByName(cfgName)
	if err != nil {
		return err
	}
	is := cfg.ISA
	if layer != "micro" {
		// The arch and soft injectors run the 64-bit ISA exclusively.
		is = isa.VSA64
	}
	sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 1, Harden: hard}, is)
	if err != nil {
		return err
	}
	sys.Workers = workers
	sys.Static = static
	sys.NoTB = noTB
	if storeDir != "" {
		store, err := results.OpenStore(storeDir)
		if err != nil {
			return err
		}
		sys.Store = store
	}

	start := time.Now()
	var res vulnstack.StratResult
	var what string
	switch layer {
	case "micro":
		st, perr := micro.ParseStructure(stName)
		if perr != nil {
			return perr
		}
		what = fmt.Sprintf("%s structure faults on %s", st, cfg.Name)
		res, err = sys.StratMicro(cfg, st, opt, seed)
	case "arch":
		fpm, perr := results.ParseFPM(fpmName)
		if perr != nil {
			return perr
		}
		what = fmt.Sprintf("architectural %s faults", fpm)
		res, err = sys.StratPVF(fpm, opt, seed)
	case "soft":
		what = "software-level IR faults"
		res, err = sys.StratSVF(opt, seed)
	default:
		return fmt.Errorf("campaign -strat: unknown -layer %q (micro, arch, soft)", layer)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	target := opt.CI
	level := opt.Confidence
	nUniform := vulnstack.UniformSamplesFor(target, level)
	fmt.Printf("%s, stratified: %s\n", bench, what)
	fmt.Printf("  failures (SDC+Crash) %6.2f%%  ±%.2f%% achieved at %.0f%% (target ±%.2f%%)\n",
		100*res.Split.Total(), 100*res.HalfWidth, 100*level, 100*target)
	fmt.Printf("  SDC %5.2f%%  Crash %5.2f%%  Detected %5.2f%%  Masked %5.2f%%\n",
		100*res.Split.SDC, 100*res.Split.Crash, 100*res.Split.Detected, 100*res.Split.Masked)
	ratio := "more"
	if res.N <= nUniform {
		ratio = "fewer"
	}
	fmt.Printf("  injections %d (%d fresh) from a %d-site pool; uniform worst case %d (%.1fx %s)\n",
		res.N, res.Fresh, res.Pool, nUniform,
		max(float64(nUniform)/float64(res.N), float64(res.N)/float64(nUniform)), ratio)
	if res.Resolved > 0 {
		fmt.Printf("  statically resolved %d of %d pool sites (%.1f%%): zero-injection certain mass\n",
			res.Resolved, res.Pool, 100*float64(res.Resolved)/float64(res.Pool))
	}
	fmt.Printf("  %-28s %7s %6s %7s %6s %6s %6s\n", "STRATUM", "SIZE", "N", "MASK", "SDC", "CRASH", "DET")
	for _, sr := range res.Strata {
		t := sr.Tally
		mark := ""
		if sr.Resolved {
			mark = " *static"
		}
		fmt.Printf("  %-28s %7d %6d %7d %6d %6d %6d%s\n", sr.Label, sr.Size, t.N,
			t.Outcomes[0], t.Outcomes[1], t.Outcomes[2], t.Outcomes[3], mark)
	}
	fmt.Printf("  provenance %s\n", res.Key)
	if sys.Store != nil {
		fmt.Printf("  store: served %d stored records, ran %d new (id %s)\n",
			res.N-res.Fresh, res.Fresh, res.Key.ID())
	}
	fmt.Printf("  %d fresh injections in %v (%.1f/s)\n", res.Fresh, elapsed.Round(time.Millisecond),
		float64(res.Fresh)/elapsed.Seconds())
	return nil
}

// cmdResults lists, inspects, exports or compacts the campaigns of a
// persistent store. Tallies are re-aggregated through the streaming
// columnar cursor with filters pushed down, so a show touches only the
// columns it reads. Verbs:
//
//	list     every stored campaign manifest (the default)
//	show     one campaign's tally, filterable (default with -id)
//	export   one campaign's records as JSONL on stdout, filterable
//	compact  migrate every legacy JSONL campaign to columnar segments
func cmdResults(args []string) error {
	verb := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb, args = args[0], args[1:]
	}
	fs := flag.NewFlagSet("results", flag.ExitOnError)
	storeDir := fs.String("store", "", "persistent results store directory")
	id := fs.String("id", "", "campaign id to inspect (default: list all)")
	outcomes := fs.String("outcome", "", "comma-separated outcome filter (Masked,SDC,Crash,Detected)")
	fpms := fs.String("fpm", "", "comma-separated FPM filter (WD,WOI,WI,ESC)")
	targets := fs.String("target", "", "comma-separated record-target filter (structure or FPM names)")
	bits := fs.String("bits", "", "bit-range filter LO:HI (inclusive)")
	fs.Parse(args)
	if *storeDir == "" {
		return fmt.Errorf("results: -store DIR is required")
	}
	store, err := results.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	filter, err := parseFilter(*outcomes, *fpms, *targets, *bits)
	if err != nil {
		return err
	}
	if verb == "" {
		verb = "list"
		if *id != "" {
			verb = "show"
		}
	}
	switch verb {
	case "list":
		return listCampaigns(store)
	case "show":
		if *id == "" {
			return fmt.Errorf("results show: -id ID is required")
		}
		return showCampaign(store, *id, filter)
	case "export":
		if *id == "" {
			return fmt.Errorf("results export: -id ID is required")
		}
		return exportCampaign(store, *id, filter)
	case "compact":
		st, err := store.Compact()
		if err != nil {
			return err
		}
		fmt.Printf("%d campaigns, %d migrated jsonl -> columnar", st.Campaigns, st.Migrated)
		if st.Migrated > 0 {
			fmt.Printf(" (%d -> %d bytes, %.1fx)", st.JSONLBytes, st.SegBytes,
				float64(st.JSONLBytes)/float64(st.SegBytes))
		}
		fmt.Println()
		return nil
	default:
		return fmt.Errorf("results: unknown verb %q (list, show, export, compact)", verb)
	}
}

// parseFilter builds the pushed-down record filter from the CLI flags.
func parseFilter(outcomes, fpms, targets, bits string) (results.Filter, error) {
	var f results.Filter
	if outcomes != "" {
		for _, s := range strings.Split(outcomes, ",") {
			o, err := results.ParseOutcome(strings.TrimSpace(s))
			if err != nil {
				return f, err
			}
			f.Outcomes = append(f.Outcomes, o)
		}
	}
	if fpms != "" {
		for _, s := range strings.Split(fpms, ",") {
			m, err := results.ParseFPM(strings.TrimSpace(s))
			if err != nil {
				return f, err
			}
			f.FPMs = append(f.FPMs, m)
		}
	}
	if targets != "" {
		for _, s := range strings.Split(targets, ",") {
			f.Targets = append(f.Targets, strings.TrimSpace(s))
		}
	}
	if bits != "" {
		lo, hi, ok := strings.Cut(bits, ":")
		if !ok {
			return f, fmt.Errorf("results: -bits wants LO:HI, got %q", bits)
		}
		if _, err := fmt.Sscanf(lo+" "+hi, "%d %d", &f.BitLo, &f.BitHi); err != nil {
			return f, fmt.Errorf("results: -bits wants LO:HI, got %q", bits)
		}
		f.BitRange = true
	}
	return f, nil
}

func listCampaigns(store *results.Store) error {
	ms, err := store.List()
	if err != nil {
		return err
	}
	chains := loadChains(store)
	if len(ms) == 0 && len(chains) == 0 {
		fmt.Println("store is empty")
		return nil
	}
	if len(ms) > 0 {
		fmt.Printf("%-16s  %-5s  %-6s  %-5s  %6s  %8s  %-8s  %-5s  %s\n",
			"ID", "LAYER", "CONFIG", "WHERE", "N", "MARGIN", "FORMAT", "CHAIN", "TARGET/SEED")
		for _, m := range ms {
			chain := "-"
			if chainFor(chains, m.Key) != nil {
				chain = "yes"
			}
			fmt.Printf("%-16s  %-5s  %-6s  %-5s  %6d  ±%6.2f%%  %-8s  %-5s  %s seed=%d\n",
				m.Key.ID(), m.Key.Layer, orDash(m.Key.Config), orDash(m.Key.Struct),
				m.N, 100*vulnstackMargin(m.N), m.Format, chain, m.Key.Target, m.Key.Seed)
		}
		fmt.Printf("%d campaigns; inspect one with -id ID\n", len(ms))
	}
	if len(chains) > 0 {
		fmt.Printf("\npersisted checkpoint chains (campaign Prepare skips the golden run):\n")
		fmt.Printf("%-32s  %-5s  %-6s  %6s  %10s  %s\n",
			"FINGERPRINT", "LAYER", "CONFIG", "CKPTS", "BYTES", "TARGET")
		for _, ci := range chains {
			st := ci.chain.Stats()
			fmt.Printf("%-32s  %-5s  %-6s  %6d  %10d  %s\n",
				ci.fp, ci.chain.Meta.Engine, orDash(ci.chain.Meta.Config),
				st.Checkpoints, ci.size, ci.chain.Meta.Target)
		}
	}
	return nil
}

// chainInfo pairs a decoded persisted chain with its store identity.
type chainInfo struct {
	fp    string
	size  int
	chain *ckpt.Chain
}

// loadChains decodes every persisted chain in the store, silently
// skipping unusable ones (exactly as campaign loading does).
func loadChains(store *results.Store) []chainInfo {
	fps, err := store.ListChains()
	if err != nil {
		return nil
	}
	var cis []chainInfo
	for _, fp := range fps {
		data, ok, err := store.LoadChain(fp)
		if err != nil || !ok {
			continue
		}
		ch, err := ckpt.Decode(data)
		if err != nil {
			continue
		}
		cis = append(cis, chainInfo{fp: fp, size: len(data), chain: ch})
	}
	return cis
}

// chainFor matches a persisted chain to a campaign key: same injector,
// same program target, same microarchitecture config.
func chainFor(chains []chainInfo, k results.Key) *ckpt.Chain {
	for _, ci := range chains {
		if ci.chain.Meta.Engine == k.Layer && ci.chain.Meta.Target == k.Target &&
			ci.chain.Meta.Config == k.Config {
			return ci.chain
		}
	}
	return nil
}

func showCampaign(store *results.Store, id string, f results.Filter) error {
	m, c, err := store.CursorID(id, f)
	if err != nil {
		return err
	}
	defer c.Close()
	tally, err := c.Tally()
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s (schema v%d, %s)\n", id, m.Schema, m.Format)
	fmt.Printf("  key     %s\n", m.Key)
	if f.Empty() {
		fmt.Printf("  records %d (±%.2f%% at 99%%)\n", m.N, 100*vulnstackMargin(m.N))
	} else {
		fmt.Printf("  records %d of %d matching the filter\n", tally.N, m.N)
	}
	for o := results.Outcome(0); o < results.NumOutcomes; o++ {
		fmt.Printf("  %-8s %6.2f%%  (%d)\n", o, 100*tally.Frac(o), tally.Outcomes[o])
	}
	fmt.Printf("  failures (SDC+Crash) %.2f%%\n", 100*tally.Failures())
	if tally.Visible > 0 {
		fmt.Printf("  HVF %.2f%%  FPM of visible: WD %.0f%% WI %.0f%% WOI %.0f%% ESC %.0f%%\n",
			100*tally.HVF(), 100*tally.FPMShare(micro.FPMWD), 100*tally.FPMShare(micro.FPMWI),
			100*tally.FPMShare(micro.FPMWOI), 100*tally.FPMShare(micro.FPMESC))
	}
	if tallies, labels := stratumTallies(store, id, f); len(labels) > 0 {
		fmt.Printf("  strata (%d, label = class/bit-bucket/liveness-bucket):\n", len(labels))
		fmt.Printf("    %-28s %6s %7s %6s %6s %6s\n", "STRATUM", "N", "MASK", "SDC", "CRASH", "DET")
		for _, l := range labels {
			t := tallies[l]
			fmt.Printf("    %-28s %6d %7d %6d %6d %6d\n", l, t.N,
				t.Outcomes[0], t.Outcomes[1], t.Outcomes[2], t.Outcomes[3])
		}
	}
	if ch := chainFor(loadChains(store), m.Key); ch != nil {
		st := ch.Stats()
		coordName := "instrs"
		if ch.Meta.Engine == results.LayerMicro.String() {
			coordName = "cycles"
		}
		fmt.Printf("  checkpoint chain: %d checkpoints over %s %d..%d\n",
			st.Checkpoints, coordName, st.FirstCoord, st.LastCoord)
		fmt.Printf("    base %d bytes, deltas %d bytes, aux %d bytes (RAM image %d bytes)\n",
			st.BaseBytes, st.DeltaBytes, st.AuxBytes, ch.Meta.RAMBytes)
	}
	return nil
}

// stratumTallies re-reads a campaign grouping its records by their
// stored stratum label (the schema-v2 provenance column of stratified
// campaigns). Uniform campaigns carry no labels and yield nothing; so
// do legacy segments written before the column existed.
func stratumTallies(store *results.Store, id string, f results.Filter) (map[string]results.Tally, []string) {
	_, c, err := store.CursorID(id, f)
	if err != nil {
		return nil, nil
	}
	defer c.Close()
	tallies := map[string]results.Tally{}
	var labels []string
	err = c.Each(func(r results.Record) error {
		if r.Stratum == "" {
			return nil
		}
		t, seen := tallies[r.Stratum]
		if !seen {
			labels = append(labels, r.Stratum)
		}
		t.Add(r)
		tallies[r.Stratum] = t
		return nil
	})
	if err != nil {
		return nil, nil
	}
	sort.Strings(labels)
	return tallies, labels
}

// exportCampaign streams a campaign's (filtered) records to stdout in
// the JSONL interchange format, one block in memory at a time.
func exportCampaign(store *results.Store, id string, f results.Filter) error {
	if f.Empty() {
		return store.ExportJSONL(id, os.Stdout)
	}
	_, c, err := store.CursorID(id, f)
	if err != nil {
		return err
	}
	defer c.Close()
	w := bufio.NewWriter(os.Stdout)
	err = c.Each(func(r results.Record) error {
		data, err := json.Marshal(r)
		if err != nil {
			return err
		}
		w.Write(data)
		return w.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return w.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func vulnstackMargin(n int) float64 { return vulnstack.Margin(n) }

// startProfiles turns on the requested runtime/pprof collectors and
// returns the function that finalizes them: CPU sampling stops and the
// heap is snapshotted (after a GC, so only live allocations show) when
// the profiled command finishes.
func startProfiles(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vulnstack: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vulnstack: memprofile:", err)
			}
		}
	}, nil
}
