package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"vulnstack"
	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// LayerBench is the per-injection cost of one layer on one benchmark,
// measured with the accelerations (convergence early-stop + predecoded
// fetch cache) on and off. Tallies are bit-identical in both modes —
// the benchmark asserts it — so Speedup is pure cost, not a tradeoff.
type LayerBench struct {
	// NsPerInjection is the accelerated per-injection cost.
	NsPerInjection int64 `json:"ns_per_injection"`
	// NsPerInjectionBase is the run-to-completion (accelerations off)
	// per-injection cost.
	NsPerInjectionBase int64 `json:"ns_per_injection_base"`
	// Speedup is Base/Accelerated.
	Speedup float64 `json:"speedup"`
	// EarlyStopRate is the fraction of injections classified by
	// convergence (or, at the soft layer, by the dead-definition
	// filter) instead of running to completion.
	EarlyStopRate float64 `json:"early_stop_rate"`
}

// BenchReport is the schema of BENCH_<date>.json.
type BenchReport struct {
	Date       string                           `json:"date"`
	Config     string                           `json:"config"`
	Struct     string                           `json:"struct"`
	N          int                              `json:"n"`
	Seed       int64                            `json:"seed"`
	Benchmarks map[string]map[string]LayerBench `json:"benchmarks"`
	// MedianMicroSpeedup is the headline number: the median across
	// benchmarks of the micro-layer per-injection speedup.
	MedianMicroSpeedup float64 `json:"median_micro_speedup"`
}

// cmdBench measures per-injection cost per layer per benchmark, with
// the accelerations on and off, and writes the result as JSON. It also
// verifies, on every benchmark and layer it touches, that the two modes
// produce bit-identical tallies (the equivalence gate).
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: all)")
	cfgName := fs.String("config", "A72", "microarchitecture for the micro layer")
	stName := fs.String("struct", "RF", "micro-layer structure to inject into")
	n := fs.Int("n", 150, "injections per layer per benchmark per mode")
	seed := fs.Int64("seed", 2021, "sampling seed")
	short := fs.Bool("short", false, "CI mode: three benchmarks, small n")
	out := fs.String("out", "", "output file (default BENCH_<date>.json)")
	fs.Parse(args)

	cfg, err := micro.ConfigByName(*cfgName)
	if err != nil {
		return err
	}
	st, err := micro.ParseStructure(*stName)
	if err != nil {
		return err
	}
	names := vulnstack.Benchmarks()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	if *short {
		if *benches == "" && len(names) > 3 {
			names = names[:3]
		}
		if *n > 30 {
			*n = 30
		}
	}
	file := *out
	if file == "" {
		file = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}

	rep := BenchReport{
		Date:       time.Now().Format(time.RFC3339),
		Config:     cfg.Name,
		Struct:     st.String(),
		N:          *n,
		Seed:       *seed,
		Benchmarks: make(map[string]map[string]LayerBench),
	}
	var microSpeedups []float64
	for _, bench := range names {
		lb, err := benchOne(bench, cfg, st, *n, *seed)
		if err != nil {
			return fmt.Errorf("bench %s: %w", bench, err)
		}
		rep.Benchmarks[bench] = lb
		microSpeedups = append(microSpeedups, lb["micro"].Speedup)
		fmt.Printf("%-10s micro %7.2fus -> %7.2fus (%4.2fx, es %3.0f%%)  arch %7.2fus -> %7.2fus (%4.2fx)  soft %7.2fus -> %7.2fus (%4.2fx)\n",
			bench,
			float64(lb["micro"].NsPerInjectionBase)/1e3, float64(lb["micro"].NsPerInjection)/1e3,
			lb["micro"].Speedup, 100*lb["micro"].EarlyStopRate,
			float64(lb["arch"].NsPerInjectionBase)/1e3, float64(lb["arch"].NsPerInjection)/1e3, lb["arch"].Speedup,
			float64(lb["soft"].NsPerInjectionBase)/1e3, float64(lb["soft"].NsPerInjection)/1e3, lb["soft"].Speedup)
	}
	rep.MedianMicroSpeedup = median(microSpeedups)

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(file, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("median micro-layer speedup %.2fx; wrote %s\n", rep.MedianMicroSpeedup, file)
	return nil
}

// benchOne times one benchmark across the three layers. Two systems are
// built — the decode-cache switch is baked into campaign snapshots, so
// accelerated and baseline campaigns cannot share one — and golden-run
// preparation happens before the clock starts: the measured quantity is
// per-injection cost only.
func benchOne(bench string, cfg micro.Config, st micro.Structure, n int, seed int64) (map[string]LayerBench, error) {
	mk := func(off bool) (*vulnstack.System, error) {
		sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 1}, isa.VSA64)
		if err != nil {
			return nil, err
		}
		sys.Workers = 1 // single-threaded: stable per-injection cost
		sys.NoEarlyStop = off
		sys.NoDecodeCache = off
		return sys, nil
	}
	accel, err := mk(false)
	if err != nil {
		return nil, err
	}
	base, err := mk(true)
	if err != nil {
		return nil, err
	}

	run := func(sys *vulnstack.System, layer string) ([]results.Record, int64, error) {
		var recs []results.Record
		switch layer {
		case "micro":
			cp, err := sys.MicroCampaign(cfg)
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			recs = cp.Records(st, n, 0, seed, nil)
			return recs, time.Since(start).Nanoseconds(), nil
		case "arch":
			cp, err := sys.ArchCampaign()
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			recs = cp.Records(micro.FPMWD, n, 0, seed, nil)
			return recs, time.Since(start).Nanoseconds(), nil
		default:
			cp, err := sys.LLFICampaign()
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			recs = cp.Records(n, 0, seed, nil)
			return recs, time.Since(start).Nanoseconds(), nil
		}
	}

	out := make(map[string]LayerBench)
	for _, layer := range []string{"micro", "arch", "soft"} {
		fast, fastNs, err := run(accel, layer)
		if err != nil {
			return nil, err
		}
		slow, slowNs, err := run(base, layer)
		if err != nil {
			return nil, err
		}
		if results.TallyOf(fast) != results.TallyOf(slow) {
			return nil, fmt.Errorf("%s layer: accelerated tally differs from baseline — equivalence violated", layer)
		}
		es := 0
		for _, r := range fast {
			if r.EarlyStop {
				es++
			}
		}
		lb := LayerBench{
			NsPerInjection:     fastNs / int64(n),
			NsPerInjectionBase: slowNs / int64(n),
			EarlyStopRate:      float64(es) / float64(n),
		}
		if fastNs > 0 {
			lb.Speedup = float64(slowNs) / float64(fastNs)
		}
		out[layer] = lb
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
