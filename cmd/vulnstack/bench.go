package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"vulnstack"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// LayerBench is the per-injection cost of one layer on one benchmark,
// measured with the accelerations (convergence early-stop + predecoded
// fetch cache) on and off. Tallies are bit-identical in both modes —
// the benchmark asserts it — so Speedup is pure cost, not a tradeoff.
type LayerBench struct {
	// NsPerInjection is the accelerated per-injection cost.
	NsPerInjection int64 `json:"ns_per_injection"`
	// NsPerInjectionBase is the run-to-completion (accelerations off)
	// per-injection cost.
	NsPerInjectionBase int64 `json:"ns_per_injection_base"`
	// Speedup is Base/Accelerated.
	Speedup float64 `json:"speedup"`
	// EarlyStopRate is the fraction of injections classified by
	// convergence (or, at the soft layer, by the dead-definition
	// filter) instead of running to completion.
	EarlyStopRate float64 `json:"early_stop_rate"`
}

// AggBench is the re-aggregation throughput benchmark: one synthetic
// stored campaign tallied through the JSONL re-parse baseline and
// through the streaming columnar cursor. Tallies are bit-identical —
// the benchmark asserts it — so Speedup is pure cost.
type AggBench struct {
	Rows       int   `json:"rows"`
	JSONLBytes int64 `json:"jsonl_bytes"`
	SegBytes   int64 `json:"seg_bytes"`
	// NsJSONL / NsColumnar are full-campaign tally times (best of 3).
	NsJSONL    int64 `json:"ns_jsonl"`
	NsColumnar int64 `json:"ns_columnar"`
	// NsColumnarFiltered tallies only SDC records through the pushed-down
	// filter (still a full scan of the filter columns).
	NsColumnarFiltered int64   `json:"ns_columnar_filtered"`
	RowsPerSecJSONL    float64 `json:"rows_per_sec_jsonl"`
	RowsPerSecColumnar float64 `json:"rows_per_sec_columnar"`
	// Speedup is NsJSONL/NsColumnar.
	Speedup float64 `json:"speedup"`
}

// CkptBench is the delta-checkpoint benchmark: one benchmark's campaign
// prepared cold (golden run + chain capture) and warm (decode of the
// persisted chain, zero golden instructions), plus per-injection cost
// with a boot-only full snapshot (every injection restores from reset)
// against the dense delta chain (delta-walk restore to the nearest
// checkpoint). All four paths must produce bit-identical tallies — the
// benchmark asserts it — so every ratio is pure cost.
type CkptBench struct {
	Bench       string `json:"bench"`
	Snapshots   int    `json:"snapshots"`
	Checkpoints int    `json:"checkpoints"`
	// ChainBytes is the chain's stored size (base + deltas + aux);
	// FullSnapshotBytes one full snapshot (RAM image + machine-state
	// blob) under the old scheme.
	ChainBytes        int64 `json:"chain_bytes"`
	FullSnapshotBytes int64 `json:"full_snapshot_bytes"`
	// MemoryVsTwelveFull is ChainBytes over twelve full snapshots (the
	// old default); < 1 means the dense chain undercuts the old memory
	// footprint.
	MemoryVsTwelveFull float64 `json:"memory_vs_twelve_full"`
	NsPrepareCold      int64   `json:"ns_prepare_cold"`
	NsPrepareWarm      int64   `json:"ns_prepare_warm"`
	// PrepareSpeedup is cold/warm.
	PrepareSpeedup float64 `json:"prepare_speedup"`
	// NsPerInjectionFullRestore runs each injection from a boot-only
	// snapshot; NsPerInjectionDeltaWalk from the dense chain.
	NsPerInjectionFullRestore int64 `json:"ns_per_injection_full_restore"`
	NsPerInjectionDeltaWalk   int64 `json:"ns_per_injection_delta_walk"`
	// RestoreSpeedup is full-restore/delta-walk.
	RestoreSpeedup float64 `json:"restore_speedup"`
}

// StratRow is one benchmark's stratified-vs-uniform comparison at the
// micro layer: the injections each sampling regime needs to promise the
// same CI half-width. The uniform side is the fixed worst-case budget
// (it cannot adapt — its margin claim assumes p = 0.5); the stratified
// side is what the adaptive allocator actually spent before its
// reweighted CI met the same target. WithinCI is the unbiasedness
// check: the stratified estimate must land inside the uniform run's CI.
type StratRow struct {
	Bench     string `json:"bench"`
	NUniform  int    `json:"n_uniform"`
	NStrat    int    `json:"n_strat"`
	Strata    int    `json:"strata"`
	// Reduction is NUniform/NStrat — injections saved to the same bound.
	Reduction  float64 `json:"reduction"`
	EstUniform float64 `json:"est_uniform"`
	EstStrat   float64 `json:"est_strat"`
	HalfWidth  float64 `json:"half_width"`
	WithinCI   bool    `json:"within_ci"`
	NsUniform  int64   `json:"ns_uniform"`
	NsStrat    int64   `json:"ns_strat"`
}

// StratBench is the stratified-sampling benchmark section: per-bench
// rows plus the aggregate the Makefile gates on.
type StratBench struct {
	CI         float64 `json:"ci"`
	Confidence float64 `json:"confidence"`
	Pool       int     `json:"pool"`
	Struct     string  `json:"struct"`
	// ReductionFloor is the gate: a majority of benchmarks must reach
	// this many times fewer injections than uniform.
	ReductionFloor  float64    `json:"reduction_floor"`
	Rows            []StratRow `json:"rows"`
	MedianReduction float64    `json:"median_reduction"`
}

// StaticRow is one benchmark's static-resolution comparison at the soft
// layer: the live injections a stratified campaign needs to promise the
// same CI bound with and without the bit-precise demanded-bits pass.
// Fewer is the per-benchmark gate (strictly fewer live injections);
// WithinCI is the unbiasedness check (the two reweighted estimates must
// agree within their combined half-widths).
type StaticRow struct {
	Bench string `json:"bench"`
	// NBase / NStatic are the live (actually executed) injections of the
	// stratified baseline and the static-resolution run.
	NBase   int `json:"n_base"`
	NStatic int `json:"n_static"`
	// Resolved is the pool sites the static analysis classified without
	// injection; ResolvedFrac its share of the pool.
	Resolved     int     `json:"resolved"`
	ResolvedFrac float64 `json:"resolved_frac"`
	EstBase      float64 `json:"est_base"`
	EstStatic    float64 `json:"est_static"`
	HWBase       float64 `json:"half_width_base"`
	HWStatic     float64 `json:"half_width_static"`
	Fewer        bool    `json:"fewer"`
	WithinCI     bool    `json:"within_ci"`
	NsBase       int64   `json:"ns_base"`
	NsStatic     int64   `json:"ns_static"`
}

// StaticBench is the static-resolution benchmark section (the schema of
// BENCH_static.json): per-benchmark rows plus the majority gate.
type StaticBench struct {
	CI         float64     `json:"ci"`
	Confidence float64     `json:"confidence"`
	Pool       int         `json:"pool"`
	Rows       []StaticRow `json:"rows"`
	// FewerCount benchmarks performed strictly fewer live injections
	// than the stratified baseline; the gate requires a majority.
	FewerCount      int     `json:"fewer_count"`
	MedianReduction float64 `json:"median_reduction"`
}

// TBRow is one benchmark's translation-block engine comparison: the
// per-injection cost of the arch layer (predecoded superblock dispatch
// vs instruction-at-a-time stepping) and the soft layer (compiled
// direct-threaded IR vs the hooked interpreter), tb-on tallies asserted
// bit-identical to tb-off.
type TBRow struct {
	Bench string `json:"bench"`
	// NsArchTB / NsArchStep are arch-layer per-injection costs with the
	// superblock engine on and off.
	NsArchTB    int64   `json:"ns_arch_tb"`
	NsArchStep  int64   `json:"ns_arch_step"`
	ArchSpeedup float64 `json:"arch_speedup"`
	// NsSoftTB / NsSoftStep are soft-layer per-injection costs with the
	// compiled IR engine on and off.
	NsSoftTB    int64   `json:"ns_soft_tb"`
	NsSoftStep  int64   `json:"ns_soft_step"`
	SoftSpeedup float64 `json:"soft_speedup"`
}

// TBBench is the translation-block benchmark section (the schema of
// BENCH_tb.json): per-benchmark rows plus the median gates.
type TBBench struct {
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// ArchFloor / SoftFloor are the asserted median-speedup gates.
	ArchFloor         float64 `json:"arch_floor"`
	SoftFloor         float64 `json:"soft_floor"`
	Rows              []TBRow `json:"rows"`
	MedianArchSpeedup float64 `json:"median_arch_speedup"`
	MedianSoftSpeedup float64 `json:"median_soft_speedup"`
}

// BenchReport is the schema of BENCH_<date>.json.
type BenchReport struct {
	Date       string                           `json:"date"`
	Config     string                           `json:"config"`
	Struct     string                           `json:"struct"`
	N          int                              `json:"n"`
	Seed       int64                            `json:"seed"`
	Benchmarks map[string]map[string]LayerBench `json:"benchmarks"`
	// MedianMicroSpeedup is the headline number: the median across
	// benchmarks of the micro-layer per-injection speedup.
	MedianMicroSpeedup float64 `json:"median_micro_speedup"`
	// Aggregation is present when the run included -agg.
	Aggregation *AggBench `json:"aggregation,omitempty"`
	// Checkpoint is present when the run included -ckpt.
	Checkpoint *CkptBench `json:"checkpoint,omitempty"`
	// Stratified is present when the run included -strat.
	Stratified *StratBench `json:"stratified,omitempty"`
	// Static is present when the run included -static.
	Static *StaticBench `json:"static,omitempty"`
	// TB is present when the run included -tb.
	TB *TBBench `json:"tb,omitempty"`
}

// cmdBench measures per-injection cost per layer per benchmark, with
// the accelerations on and off, and writes the result as JSON. It also
// verifies, on every benchmark and layer it touches, that the two modes
// produce bit-identical tallies (the equivalence gate).
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: all)")
	cfgName := fs.String("config", "A72", "microarchitecture for the micro layer")
	stName := fs.String("struct", "RF", "micro-layer structure to inject into")
	n := fs.Int("n", 150, "injections per layer per benchmark per mode")
	seed := fs.Int64("seed", 2021, "sampling seed")
	short := fs.Bool("short", false, "CI mode: three benchmarks, small n")
	agg := fs.Bool("agg", false, "run the re-aggregation benchmark (JSONL vs columnar); alone, skips the per-layer benches")
	aggRows := fs.Int("aggrows", 1_000_000, "synthetic campaign size for -agg")
	ckpt := fs.Bool("ckpt", false, "run the delta-checkpoint benchmark (cold vs warm Prepare, full-restore vs delta-walk); alone, skips the per-layer benches")
	stratB := fs.Bool("strat", false, "run the stratified-sampling benchmark (injections to target CI, stratified vs uniform, every benchmark); alone, skips the per-layer benches")
	staticB := fs.Bool("static", false, "run the static-resolution benchmark (soft-layer stratified live injections to target CI, demanded-bits on vs off, every benchmark) -> BENCH_static.json; alone, skips the per-layer benches")
	tbB := fs.Bool("tb", false, "run the translation-block engine benchmark (arch superblock dispatch and soft compiled IR, per-injection cost vs the step engines, every benchmark, tallies asserted bit-identical) -> BENCH_tb.json; alone, skips the per-layer benches")
	stratCI := fs.Float64("stratci", 0, "target CI half-width for -strat/-static (0 = the paper's 2.88% margin, or 9% in -short)")
	var out string
	fs.StringVar(&out, "out", "", "output file (default BENCH_<date>.json)")
	fs.StringVar(&out, "o", "", "alias for -out")
	force := fs.Bool("force", false, "overwrite an existing output file instead of refusing")
	fs.Parse(args)

	cfg, err := micro.ConfigByName(*cfgName)
	if err != nil {
		return err
	}
	st, err := micro.ParseStructure(*stName)
	if err != nil {
		return err
	}
	names := vulnstack.Benchmarks()
	switch {
	case *benches == "all":
	case *benches != "":
		names = strings.Split(*benches, ",")
	case *agg, *ckpt, *stratB, *staticB, *tbB:
		// -agg/-ckpt/-strat/-static/-tb with no explicit benchmark list
		// measure only their own subject (-strat, -static and -tb iterate
		// benchmarks on their own).
		names = nil
	}
	stratNames := vulnstack.Benchmarks()
	if *benches != "" && *benches != "all" {
		stratNames = strings.Split(*benches, ",")
	}
	if *short {
		if (*benches == "" || *benches == "all") && len(names) > 3 {
			names = names[:3]
		}
		if (*benches == "" || *benches == "all") && len(stratNames) > 3 {
			stratNames = stratNames[:3]
		}
		if *n > 30 {
			*n = 30
		}
		if *aggRows > 150_000 {
			*aggRows = 150_000
		}
	}
	file := out
	if file == "" {
		file = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
		if *staticB && len(names) == 0 && !*agg && !*ckpt && !*stratB && !*tbB {
			file = "BENCH_static.json"
		}
		if *tbB && len(names) == 0 && !*agg && !*ckpt && !*stratB && !*staticB {
			file = "BENCH_tb.json"
		}
	}
	if !*force {
		// Refuse to clobber an existing report: a dated default collides
		// with a same-day run, a fixed -out with any earlier one.
		if _, err := os.Stat(file); err == nil {
			return fmt.Errorf("bench: output file %s already exists (pass -force to overwrite, or -o FILE for a different name)", file)
		}
	}

	rep := BenchReport{
		Date:       time.Now().Format(time.RFC3339),
		Config:     cfg.Name,
		Struct:     st.String(),
		N:          *n,
		Seed:       *seed,
		Benchmarks: make(map[string]map[string]LayerBench),
	}
	var microSpeedups []float64
	for _, bench := range names {
		lb, err := benchOne(bench, cfg, st, *n, *seed)
		if err != nil {
			return fmt.Errorf("bench %s: %w", bench, err)
		}
		rep.Benchmarks[bench] = lb
		microSpeedups = append(microSpeedups, lb["micro"].Speedup)
		fmt.Printf("%-10s micro %7.2fus -> %7.2fus (%4.2fx, es %3.0f%%)  arch %7.2fus -> %7.2fus (%4.2fx)  soft %7.2fus -> %7.2fus (%4.2fx)\n",
			bench,
			float64(lb["micro"].NsPerInjectionBase)/1e3, float64(lb["micro"].NsPerInjection)/1e3,
			lb["micro"].Speedup, 100*lb["micro"].EarlyStopRate,
			float64(lb["arch"].NsPerInjectionBase)/1e3, float64(lb["arch"].NsPerInjection)/1e3, lb["arch"].Speedup,
			float64(lb["soft"].NsPerInjectionBase)/1e3, float64(lb["soft"].NsPerInjection)/1e3, lb["soft"].Speedup)
	}
	rep.MedianMicroSpeedup = median(microSpeedups)

	if *agg {
		ab, err := benchAgg(*aggRows, *seed)
		if err != nil {
			return fmt.Errorf("bench agg: %w", err)
		}
		rep.Aggregation = ab
		fmt.Printf("aggregation %d rows: jsonl %.1f Mrows/s (%d bytes) -> columnar %.1f Mrows/s (%d bytes), %.0fx; filtered %.2fms\n",
			ab.Rows, ab.RowsPerSecJSONL/1e6, ab.JSONLBytes, ab.RowsPerSecColumnar/1e6, ab.SegBytes,
			ab.Speedup, float64(ab.NsColumnarFiltered)/1e6)
	}

	if *ckpt {
		cb, err := benchCkpt(cfg, st, *n, *seed)
		if err != nil {
			return fmt.Errorf("bench ckpt: %w", err)
		}
		rep.Checkpoint = cb
		fmt.Printf("checkpoint %s: prepare cold %.1fms -> warm %.2fms (%.0fx); per-injection full-restore %.2fus -> delta-walk %.2fus (%.2fx); %d ckpts in %d bytes = %.2fx of 12 full snapshots\n",
			cb.Bench, float64(cb.NsPrepareCold)/1e6, float64(cb.NsPrepareWarm)/1e6, cb.PrepareSpeedup,
			float64(cb.NsPerInjectionFullRestore)/1e3, float64(cb.NsPerInjectionDeltaWalk)/1e3, cb.RestoreSpeedup,
			cb.Checkpoints, cb.ChainBytes, cb.MemoryVsTwelveFull)
	}

	if *stratB {
		sb, err := benchStrat(stratNames, cfg, st, *stratCI, *seed, *short)
		if err != nil {
			return fmt.Errorf("bench strat: %w", err)
		}
		rep.Stratified = sb
		fmt.Printf("stratified (±%.2f%% at %.0f%%): median %.1fx fewer injections than the uniform worst case across %d benchmarks\n",
			100*sb.CI, 100*sb.Confidence, sb.MedianReduction, len(sb.Rows))
	}

	if *staticB {
		sb, err := benchStatic(stratNames, *stratCI, *seed, *short)
		if err != nil {
			return fmt.Errorf("bench static: %w", err)
		}
		rep.Static = sb
		fmt.Printf("static resolution (±%.2f%% at %.0f%%): %d/%d benchmarks strictly fewer live injections than the stratified baseline (median %.2fx)\n",
			100*sb.CI, 100*sb.Confidence, sb.FewerCount, len(sb.Rows), sb.MedianReduction)
	}

	if *tbB {
		tb, err := benchTB(stratNames, *n, *seed)
		if err != nil {
			return fmt.Errorf("bench tb: %w", err)
		}
		rep.TB = tb
		fmt.Printf("translation blocks: median arch speedup %.2fx (floor %.1fx), median soft speedup %.2fx (floor %.1fx) across %d benchmarks\n",
			tb.MedianArchSpeedup, tb.ArchFloor, tb.MedianSoftSpeedup, tb.SoftFloor, len(tb.Rows))
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(file, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if len(names) > 0 {
		fmt.Printf("median micro-layer speedup %.2fx; ", rep.MedianMicroSpeedup)
	}
	fmt.Printf("wrote %s\n", file)
	return nil
}

// benchAgg measures re-aggregation throughput over one synthetic stored
// campaign: the JSONL re-parse baseline (what every load paid before
// the columnar plane) against the streaming columnar cursor. Both paths
// must produce the exact same Tally, and the columnar path must clear a
// speedup floor — 20x at full scale (>= 10^6 rows), 5x on the small CI
// sizes where constant costs weigh more.
func benchAgg(rows int, seed int64) (*AggBench, error) {
	dir, err := os.MkdirTemp("", "vulnstack-agg")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := results.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	recs := syntheticRecords(rows, seed)
	k := results.Key{Layer: "micro", Target: "synthetic/agg", Config: "A72", Struct: "mix", Seed: seed}

	// JSONL baseline: re-parse the interchange file and tally, exactly
	// the pre-columnar load path.
	if err := store.SaveJSONL(k, recs); err != nil {
		return nil, err
	}
	jsonlFile := filepath.Join(dir, k.ID()+results.JSONLExt)
	jst, err := os.Stat(jsonlFile)
	if err != nil {
		return nil, err
	}
	var jsonlTally results.Tally
	nsJSONL, err := bestOf(3, func() error {
		f, err := os.Open(jsonlFile)
		if err != nil {
			return err
		}
		defer f.Close()
		got, err := results.ReadJSONL(f, rows)
		if err != nil {
			return err
		}
		jsonlTally = results.TallyOf(got)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Columnar path: native segment, streaming cursor tally.
	if err := store.Save(k, recs); err != nil {
		return nil, err
	}
	sst, err := os.Stat(filepath.Join(dir, k.ID()+results.SegExt))
	if err != nil {
		return nil, err
	}
	var colTally results.Tally
	nsCol, err := bestOf(3, func() error {
		t, err := store.TallyPrefix(k, rows)
		if err != nil {
			return err
		}
		colTally = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	if colTally != jsonlTally {
		return nil, fmt.Errorf("columnar tally differs from JSONL tally — losslessness violated")
	}

	// Filtered query: pushed-down outcome filter, SDC only.
	var filteredTally results.Tally
	nsFiltered, err := bestOf(3, func() error {
		c, ok, err := store.Cursor(k, results.Filter{Outcomes: []results.Outcome{results.SDC}})
		if err != nil || !ok {
			return fmt.Errorf("filtered cursor: ok=%v err=%v", ok, err)
		}
		defer c.Close()
		filteredTally, err = c.Tally()
		return err
	})
	if err != nil {
		return nil, err
	}
	if filteredTally.N != jsonlTally.Outcomes[results.SDC] {
		return nil, fmt.Errorf("filtered tally has %d records, want %d SDC", filteredTally.N, jsonlTally.Outcomes[results.SDC])
	}

	ab := &AggBench{
		Rows:               rows,
		JSONLBytes:         jst.Size(),
		SegBytes:           sst.Size(),
		NsJSONL:            nsJSONL,
		NsColumnar:         nsCol,
		NsColumnarFiltered: nsFiltered,
		RowsPerSecJSONL:    float64(rows) / (float64(nsJSONL) / 1e9),
		RowsPerSecColumnar: float64(rows) / (float64(nsCol) / 1e9),
	}
	if nsCol > 0 {
		ab.Speedup = float64(nsJSONL) / float64(nsCol)
	}
	floor := 5.0
	if rows >= 1_000_000 {
		floor = 20.0
	}
	if ab.Speedup < floor {
		return nil, fmt.Errorf("columnar re-aggregation speedup %.1fx is below the %.0fx floor", ab.Speedup, floor)
	}
	return ab, nil
}

// benchCkpt measures what the delta-checkpoint chain buys on one
// representative benchmark: Prepare cost cold (golden run, chain
// capture, persist) against warm (decode the persisted chain — zero
// golden instructions), and per-injection cost with a boot-only full
// snapshot against the dense delta chain. All paths must produce
// bit-identical tallies.
func benchCkpt(cfg micro.Config, st micro.Structure, n int, seed int64) (*CkptBench, error) {
	const bench = "sha"
	dir, err := os.MkdirTemp("", "vulnstack-ckpt")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	mk := func(snapshots int, withStore bool) (*vulnstack.System, error) {
		sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 1}, isa.VSA64)
		if err != nil {
			return nil, err
		}
		sys.Workers = 1
		if snapshots > 0 {
			sys.Snapshots = snapshots
		}
		if withStore {
			store, err := results.OpenStore(dir)
			if err != nil {
				return nil, err
			}
			sys.Store = store
		}
		return sys, nil
	}
	prepare := func(snapshots int, withStore bool) (*inject.Campaign, int64, error) {
		sys, err := mk(snapshots, withStore)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		cp, err := sys.MicroCampaign(cfg)
		return cp, time.Since(start).Nanoseconds(), err
	}

	cold, nsCold, err := prepare(0, true)
	if err != nil {
		return nil, err
	}
	if cold.Resumed {
		return nil, fmt.Errorf("cold Prepare on an empty store claims to have resumed")
	}
	warm, nsWarm, err := prepare(0, true)
	if err != nil {
		return nil, err
	}
	if !warm.Resumed {
		return nil, fmt.Errorf("warm Prepare did not resume from the persisted chain")
	}
	full, _, err := prepare(1, false)
	if err != nil {
		return nil, err
	}

	run := func(cp *inject.Campaign) (results.Tally, int64) {
		start := time.Now()
		recs := cp.Records(st, n, 0, seed, nil)
		return results.TallyOf(recs), time.Since(start).Nanoseconds()
	}
	deltaTally, nsDelta := run(cold)
	warmTally, _ := run(warm)
	fullTally, nsFull := run(full)
	if deltaTally != fullTally || warmTally != fullTally {
		return nil, fmt.Errorf("checkpoint paths disagree: full %+v, delta %+v, warm %+v — equivalence violated",
			fullTally, deltaTally, warmTally)
	}

	stats := cold.Chain().Stats()
	chainBytes := int64(stats.BaseBytes + stats.DeltaBytes + stats.AuxBytes)
	fullBytes := int64(vulnstack.RAMSize + len(cold.Chain().StateAt(stats.Checkpoints-1, nil, -1)))
	cb := &CkptBench{
		Bench:                     bench,
		Snapshots:                 vulnstack.DefaultSnapshots,
		Checkpoints:               stats.Checkpoints,
		ChainBytes:                chainBytes,
		FullSnapshotBytes:         fullBytes,
		MemoryVsTwelveFull:        float64(chainBytes) / float64(12*fullBytes),
		NsPrepareCold:             nsCold,
		NsPrepareWarm:             nsWarm,
		NsPerInjectionFullRestore: nsFull / int64(n),
		NsPerInjectionDeltaWalk:   nsDelta / int64(n),
	}
	if nsWarm > 0 {
		cb.PrepareSpeedup = float64(nsCold) / float64(nsWarm)
	}
	if nsDelta > 0 {
		cb.RestoreSpeedup = float64(nsFull) / float64(nsDelta)
	}
	return cb, nil
}

// benchStrat compares injections-to-target-CI for stratified against
// uniform sampling at the micro layer on every benchmark. The micro
// layer is where adaptive stratification pays: its outcomes are
// masked-heavy (far from the p = 0.5 the uniform worst-case budget
// assumes), so the per-stratum variance estimates let the allocator
// stop early while promising the same bound. Two gates are asserted:
// every stratified estimate must land inside the uniform run's CI
// (unbiasedness), and a majority of benchmarks must clear the reduction
// floor — 3x at the paper's full-scale margin, 1.5x at the small -short
// scale where the per-stratum pilot is a larger share of the budget.
func benchStrat(names []string, cfg micro.Config, st micro.Structure, ci float64, seed int64, short bool) (*StratBench, error) {
	opt := vulnstack.StratOptions{CI: ci}
	floor := 3.0
	if short {
		floor = 1.5
		if opt.CI <= 0 {
			opt.CI = 0.09
		}
		opt.Pool = 2000
		opt.N0 = 8
	}
	if opt.CI <= 0 {
		opt.CI = vulnstack.DefaultStratCI
	}
	sb := &StratBench{
		CI:             opt.CI,
		Confidence:     0.99,
		Pool:           vulnstack.DefaultStratPool,
		Struct:         st.String(),
		ReductionFloor: floor,
	}
	if opt.Pool > 0 {
		sb.Pool = opt.Pool
	}
	nUniform := vulnstack.UniformSamplesFor(opt.CI, sb.Confidence)
	margin := vulnstack.Margin(nUniform)

	var reductions []float64
	cleared := 0
	for _, bench := range names {
		sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 1}, isa.VSA64)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		tally, err := sys.MicroTally(cfg, st, nUniform, seed)
		if err != nil {
			return nil, fmt.Errorf("%s uniform: %w", bench, err)
		}
		nsUniform := time.Since(start).Nanoseconds()
		start = time.Now()
		res, err := sys.StratMicro(cfg, st, opt, seed)
		if err != nil {
			return nil, fmt.Errorf("%s stratified: %w", bench, err)
		}
		nsStrat := time.Since(start).Nanoseconds()

		row := StratRow{
			Bench:      bench,
			NUniform:   nUniform,
			NStrat:     res.N,
			Strata:     len(res.Strata),
			Reduction:  float64(nUniform) / float64(res.N),
			EstUniform: tally.AVF(),
			EstStrat:   res.Split.Total(),
			HalfWidth:  res.HalfWidth,
			NsUniform:  nsUniform,
			NsStrat:    nsStrat,
		}
		d := row.EstStrat - row.EstUniform
		row.WithinCI = d >= -margin && d <= margin
		if !row.WithinCI {
			return nil, fmt.Errorf("%s: stratified estimate %.4f outside the uniform CI %.4f ± %.4f — unbiasedness violated",
				bench, row.EstStrat, row.EstUniform, margin)
		}
		if row.Reduction >= floor {
			cleared++
		}
		reductions = append(reductions, row.Reduction)
		sb.Rows = append(sb.Rows, row)
		fmt.Printf("stratified %-10s uniform %4d -> strat %4d (%4.1fx, %2d strata)  est %5.2f%% vs %5.2f%% (hw ±%.2f%%)  %.1fs -> %.1fs\n",
			bench, nUniform, res.N, row.Reduction, row.Strata,
			100*row.EstUniform, 100*row.EstStrat, 100*row.HalfWidth,
			float64(nsUniform)/1e9, float64(nsStrat)/1e9)
	}
	sb.MedianReduction = median(reductions)
	if len(sb.Rows) > 0 && cleared*2 <= len(sb.Rows) {
		return nil, fmt.Errorf("only %d/%d benchmarks reached the %.1fx injection-reduction floor (median %.1fx)",
			cleared, len(sb.Rows), floor, sb.MedianReduction)
	}
	return sb, nil
}

// benchStatic compares live-injections-to-target-CI for a soft-layer
// stratified campaign with and without the bit-precise demanded-bits
// pass on every benchmark. The soft layer is the one with a sound
// per-site verdict (the IR definition a fault targets is static), so
// every provably-Masked stratum contributes its whole mass to the
// estimate with zero injections. Two gates are asserted: the two
// reweighted estimates must agree within their combined CI half-widths
// (unbiasedness — the resolved mass replaces sampling, it must not move
// the estimate), and a strict majority of benchmarks must perform
// strictly fewer live injections than the stratified baseline at the
// same bound.
func benchStatic(names []string, ci float64, seed int64, short bool) (*StaticBench, error) {
	opt := vulnstack.StratOptions{CI: ci}
	if short {
		if opt.CI <= 0 {
			opt.CI = 0.09
		}
		opt.Pool = 2000
		opt.N0 = 8
	}
	if opt.CI <= 0 {
		opt.CI = vulnstack.DefaultStratCI
	}
	sb := &StaticBench{
		CI:         opt.CI,
		Confidence: 0.99,
		Pool:       vulnstack.DefaultStratPool,
	}
	if opt.Pool > 0 {
		sb.Pool = opt.Pool
	}

	run := func(bench string, static bool) (vulnstack.StratResult, int64, error) {
		// Two systems per benchmark: the static flag is baked into the
		// cached soft campaign at first use, so the modes cannot share one.
		sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 1}, isa.VSA64)
		if err != nil {
			return vulnstack.StratResult{}, 0, err
		}
		sys.Static = static
		start := time.Now()
		res, err := sys.StratSVF(opt, seed)
		return res, time.Since(start).Nanoseconds(), err
	}

	var reductions []float64
	for _, bench := range names {
		base, nsBase, err := run(bench, false)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", bench, err)
		}
		stat, nsStatic, err := run(bench, true)
		if err != nil {
			return nil, fmt.Errorf("%s static: %w", bench, err)
		}
		row := StaticRow{
			Bench:        bench,
			NBase:        base.N,
			NStatic:      stat.N,
			Resolved:     stat.Resolved,
			ResolvedFrac: float64(stat.Resolved) / float64(stat.Pool),
			EstBase:      base.Split.Total(),
			EstStatic:    stat.Split.Total(),
			HWBase:       base.HalfWidth,
			HWStatic:     stat.HalfWidth,
			Fewer:        stat.N < base.N,
			NsBase:       nsBase,
			NsStatic:     nsStatic,
		}
		d := row.EstStatic - row.EstBase
		bound := row.HWBase + row.HWStatic
		row.WithinCI = d >= -bound && d <= bound
		if !row.WithinCI {
			return nil, fmt.Errorf("%s: static estimate %.4f differs from baseline %.4f by more than the combined half-widths ±%.4f — unbiasedness violated",
				bench, row.EstStatic, row.EstBase, bound)
		}
		if row.Fewer {
			sb.FewerCount++
		}
		if stat.N > 0 {
			reductions = append(reductions, float64(base.N)/float64(stat.N))
		}
		sb.Rows = append(sb.Rows, row)
		fmt.Printf("static %-10s live %4d -> %4d (%4.2fx, %4.1f%% resolved)  est %5.2f%% vs %5.2f%% (hw ±%.2f%% / ±%.2f%%)  %.1fs -> %.1fs\n",
			bench, base.N, stat.N, float64(base.N)/float64(stat.N), 100*row.ResolvedFrac,
			100*row.EstBase, 100*row.EstStatic, 100*row.HWBase, 100*row.HWStatic,
			float64(nsBase)/1e9, float64(nsStatic)/1e9)
	}
	sb.MedianReduction = median(reductions)
	if len(sb.Rows) > 0 && sb.FewerCount*2 <= len(sb.Rows) {
		return nil, fmt.Errorf("only %d/%d benchmarks performed strictly fewer live injections with static resolution (median %.2fx)",
			sb.FewerCount, len(sb.Rows), sb.MedianReduction)
	}
	return sb, nil
}

// benchTB measures what the translation-block engines buy per
// injection on every benchmark: the arch layer with predecoded
// superblock dispatch against instruction-at-a-time stepping, and the
// soft layer with the compiled direct-threaded IR against the hooked
// interpreter. Both sides keep the default accelerations (early-stop,
// decode cache) on, so the ratio isolates the engine itself against
// the best previous configuration. Two gates are asserted: tb-on and
// tb-off tallies must be bit-identical on every benchmark and layer
// (the equivalence gate), and the median speedups must clear the
// floors. Per-mode times keep the minimum of three runs — the two
// modes share every other cost, so one descheduled slice would
// otherwise flip the ratio.
func benchTB(names []string, n int, seed int64) (*TBBench, error) {
	tbb := &TBBench{N: n, Seed: seed, ArchFloor: 2.0, SoftFloor: 1.5}
	mk := func(noTB bool) func(bench string) (*vulnstack.System, error) {
		return func(bench string) (*vulnstack.System, error) {
			sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 1}, isa.VSA64)
			if err != nil {
				return nil, err
			}
			sys.Workers = 1 // single-threaded: stable per-injection cost
			sys.NoTB = noTB
			return sys, nil
		}
	}
	const attempts = 3
	var archSp, softSp []float64
	for _, bench := range names {
		on, err := mk(false)(bench)
		if err != nil {
			return nil, err
		}
		off, err := mk(true)(bench)
		if err != nil {
			return nil, err
		}
		row := TBRow{Bench: bench}

		measure := func(layer string, run func(sys *vulnstack.System) ([]results.Record, error)) (int64, int64, error) {
			var nsOn, nsOff int64
			for try := 0; try < attempts; try++ {
				start := time.Now()
				fast, err := run(on)
				if err != nil {
					return 0, 0, err
				}
				fNs := time.Since(start).Nanoseconds()
				start = time.Now()
				slow, err := run(off)
				if err != nil {
					return 0, 0, err
				}
				sNs := time.Since(start).Nanoseconds()
				if results.TallyOf(fast) != results.TallyOf(slow) {
					return 0, 0, fmt.Errorf("%s %s layer: tb-on tally differs from tb-off — equivalence violated", bench, layer)
				}
				if nsOn == 0 || fNs < nsOn {
					nsOn = fNs
				}
				if nsOff == 0 || sNs < nsOff {
					nsOff = sNs
				}
			}
			return nsOn, nsOff, nil
		}

		nsOn, nsOff, err := measure("arch", func(sys *vulnstack.System) ([]results.Record, error) {
			cp, err := sys.ArchCampaign()
			if err != nil {
				return nil, err
			}
			return cp.Records(micro.FPMWD, n, 0, seed, nil), nil
		})
		if err != nil {
			return nil, err
		}
		row.NsArchTB, row.NsArchStep = nsOn/int64(n), nsOff/int64(n)
		if nsOn > 0 {
			row.ArchSpeedup = float64(nsOff) / float64(nsOn)
		}

		nsOn, nsOff, err = measure("soft", func(sys *vulnstack.System) ([]results.Record, error) {
			cp, err := sys.LLFICampaign()
			if err != nil {
				return nil, err
			}
			return cp.Records(n, 0, seed, nil), nil
		})
		if err != nil {
			return nil, err
		}
		row.NsSoftTB, row.NsSoftStep = nsOn/int64(n), nsOff/int64(n)
		if nsOn > 0 {
			row.SoftSpeedup = float64(nsOff) / float64(nsOn)
		}

		archSp = append(archSp, row.ArchSpeedup)
		softSp = append(softSp, row.SoftSpeedup)
		tbb.Rows = append(tbb.Rows, row)
		fmt.Printf("tb %-10s arch %7.2fus -> %7.2fus (%4.2fx)  soft %7.2fus -> %7.2fus (%4.2fx)\n",
			bench, float64(row.NsArchStep)/1e3, float64(row.NsArchTB)/1e3, row.ArchSpeedup,
			float64(row.NsSoftStep)/1e3, float64(row.NsSoftTB)/1e3, row.SoftSpeedup)
	}
	tbb.MedianArchSpeedup = median(archSp)
	tbb.MedianSoftSpeedup = median(softSp)
	if len(tbb.Rows) > 0 && tbb.MedianArchSpeedup < tbb.ArchFloor {
		return nil, fmt.Errorf("median arch-layer speedup %.2fx is below the %.1fx floor", tbb.MedianArchSpeedup, tbb.ArchFloor)
	}
	if len(tbb.Rows) > 0 && tbb.MedianSoftSpeedup < tbb.SoftFloor {
		return nil, fmt.Errorf("median soft-layer speedup %.2fx is below the %.1fx floor", tbb.MedianSoftSpeedup, tbb.SoftFloor)
	}
	return tbb, nil
}

// syntheticRecords draws a deterministic mixed campaign shaped like a
// real micro-layer store: skewed outcomes, ~30%% visibility, rotating
// structure targets.
func syntheticRecords(rows int, seed int64) []results.Record {
	r := rand.New(rand.NewSource(seed))
	targets := []string{"RF", "LSQ", "L1i", "L1d", "L2"}
	recs := make([]results.Record, rows)
	coord := uint64(0)
	for i := range recs {
		coord += uint64(1 + r.Intn(2000))
		rec := results.Record{
			Index:  i,
			Layer:  results.LayerMicro,
			Target: targets[r.Intn(len(targets))],
			Coord:  coord,
			Entry:  r.Intn(4096),
			Bit:    r.Intn(64),
			Slot:   r.Intn(4),
		}
		switch p := r.Intn(100); {
		case p < 62:
			rec.Outcome = results.Masked
		case p < 80:
			rec.Outcome = results.SDC
		case p < 94:
			rec.Outcome = results.Crash
		default:
			rec.Outcome = results.Detected
		}
		if r.Intn(100) < 30 {
			rec.Visible = true
			rec.Live = true
			rec.FPM = micro.FPM(1 + r.Intn(int(micro.NumFPM)-1))
			rec.Contact = rec.Coord + uint64(r.Intn(500))
		}
		rec.EarlyStop = r.Intn(100) < 20
		recs[i] = rec
	}
	return recs
}

// bestOf runs f reps times and returns the fastest wall-clock run.
func bestOf(reps int, f func() error) (int64, error) {
	best := int64(-1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// benchOne times one benchmark across the three layers. Two systems are
// built — the decode-cache switch is baked into campaign snapshots, so
// accelerated and baseline campaigns cannot share one — and golden-run
// preparation happens before the clock starts: the measured quantity is
// per-injection cost only.
func benchOne(bench string, cfg micro.Config, st micro.Structure, n int, seed int64) (map[string]LayerBench, error) {
	mk := func(off bool) (*vulnstack.System, error) {
		sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 1}, isa.VSA64)
		if err != nil {
			return nil, err
		}
		sys.Workers = 1 // single-threaded: stable per-injection cost
		sys.NoEarlyStop = off
		sys.NoDecodeCache = off
		return sys, nil
	}
	accel, err := mk(false)
	if err != nil {
		return nil, err
	}
	base, err := mk(true)
	if err != nil {
		return nil, err
	}

	run := func(sys *vulnstack.System, layer string) ([]results.Record, int64, error) {
		var recs []results.Record
		switch layer {
		case "micro":
			cp, err := sys.MicroCampaign(cfg)
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			recs = cp.Records(st, n, 0, seed, nil)
			return recs, time.Since(start).Nanoseconds(), nil
		case "arch":
			cp, err := sys.ArchCampaign()
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			recs = cp.Records(micro.FPMWD, n, 0, seed, nil)
			return recs, time.Since(start).Nanoseconds(), nil
		default:
			cp, err := sys.LLFICampaign()
			if err != nil {
				return nil, 0, err
			}
			start := time.Now()
			recs = cp.Records(n, 0, seed, nil)
			return recs, time.Since(start).Nanoseconds(), nil
		}
	}

	// softSpeedupFloor guards the soft layer against real regressions.
	// The accelerated soft path only adds a trivial dead-def bitset
	// check per injection, so its speedup can never legitimately fall
	// below ~1.0; measured dips are timing noise, retried away below,
	// and anything persistent is an actual slowdown worth failing on.
	const softSpeedupFloor = 0.98

	out := make(map[string]LayerBench)
	for _, layer := range []string{"micro", "arch", "soft"} {
		var fastNs, slowNs int64
		var es int
		// The soft layer re-measures on a noisy result (keeping the
		// per-mode minimum): its two modes are nearly identical per
		// injection, so one descheduled slice flips the ratio.
		attempts := 1
		if layer == "soft" {
			attempts = 3
		}
		for try := 0; try < attempts; try++ {
			fast, fNs, err := run(accel, layer)
			if err != nil {
				return nil, err
			}
			slow, sNs, err := run(base, layer)
			if err != nil {
				return nil, err
			}
			if results.TallyOf(fast) != results.TallyOf(slow) {
				return nil, fmt.Errorf("%s layer: accelerated tally differs from baseline — equivalence violated", layer)
			}
			if fastNs == 0 || fNs < fastNs {
				fastNs = fNs
			}
			if slowNs == 0 || sNs < slowNs {
				slowNs = sNs
			}
			es = 0
			for _, r := range fast {
				if r.EarlyStop {
					es++
				}
			}
			if layer == "soft" && fastNs > 0 && float64(slowNs)/float64(fastNs) >= softSpeedupFloor {
				break
			}
		}
		lb := LayerBench{
			NsPerInjection:     fastNs / int64(n),
			NsPerInjectionBase: slowNs / int64(n),
			EarlyStopRate:      float64(es) / float64(n),
		}
		if fastNs > 0 {
			lb.Speedup = float64(slowNs) / float64(fastNs)
		}
		if layer == "soft" && lb.Speedup < softSpeedupFloor {
			return nil, fmt.Errorf("soft layer speedup %.2fx persists below the %.2fx floor — the accelerated path has regressed", lb.Speedup, softSpeedupFloor)
		}
		out[layer] = lb
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
