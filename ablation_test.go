package vulnstack

// Ablation benchmarks beyond the paper's figures (DESIGN.md §4):
//
//	go test -bench Ablation -benchtime 1x
//
// They examine design choices the study depends on: ACE pessimism vs
// injection, LSQ field sensitivity (address vs data bits), and campaign
// size convergence.

import (
	"fmt"
	"math/rand"
	"testing"

	"vulnstack/internal/ace"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/report"
	"vulnstack/internal/static"
	"vulnstack/internal/vuln"
)

// TestAblationDominanceChain asserts the provable dominance chain on
// every seed benchmark: the no-execution static bound dominates the
// dynamic-trace ACE bound, which dominates the register-uniform
// injected PVF (bit flips uniform over (register, bit, instant) — the
// sampling model the ACE argument covers; see static's package doc).
func TestAblationDominanceChain(t *testing.T) {
	for _, bench := range []string{"sha", "crc32", "qsort", "fft"} {
		sys, err := Build(Target{Bench: bench, Seed: 2021}, isa.VSA64)
		if err != nil {
			t.Fatal(err)
		}
		st, err := static.Analyze(sys.Image)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := ace.Analyze(sys.Image, 0)
		if err != nil {
			t.Fatal(err)
		}
		pvf, err := sys.UniformPVF(60, 3)
		if err != nil {
			t.Fatal(err)
		}
		if st.RegBound < dyn.RegACE {
			t.Errorf("%s: static RegBound %.4f < dynamic RegACE %.4f", bench, st.RegBound, dyn.RegACE)
		}
		if dyn.RegACE < pvf.Total() {
			t.Errorf("%s: dynamic RegACE %.4f < uniform PVF %.4f", bench, dyn.RegACE, pvf.Total())
		}
		if st.MemBound < dyn.MemACE {
			t.Errorf("%s: static MemBound %.4f < dynamic MemACE %.4f", bench, st.MemBound, dyn.MemACE)
		}
	}
}

// BenchmarkAblationACE compares the analytical ACE upper bound with
// injection-measured architecture-level vulnerability: the paper's
// "ACE is pessimistic" argument, quantified.
func BenchmarkAblationACE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &report.Report{ID: "Ablation A", Title: "ACE lifetime bound vs injected WD PVF (VSA64)"}
		t := r.NewTable("", "Benchmark", "reg ACE", "mem ACE", "PVF(WD)", "pessimism")
		for _, bench := range []string{"sha", "crc32", "qsort", "fft"} {
			sys, err := Build(Target{Bench: bench, Seed: 2021}, isa.VSA64)
			if err != nil {
				b.Fatal(err)
			}
			res, err := ace.Analyze(sys.Image, 0)
			if err != nil {
				b.Fatal(err)
			}
			pvf, err := sys.PVF(micro.FPMWD, 60, 3)
			if err != nil {
				b.Fatal(err)
			}
			pess := "n/a"
			if pvf.Total() > 0 {
				pess = fmt.Sprintf("%.2fx", res.RegACE/pvf.Total())
			}
			t.AddRow(bench, report.Pct(res.RegACE), report.Pct(res.MemACE),
				report.Pct(pvf.Total()), pess)
		}
		r.Notef("ACE counts every def-to-last-use interval as vulnerable; injection observes the software masking ACE cannot see")
		if i == 0 {
			fmt.Println(r.String())
		}
	}
}

// BenchmarkAblationLSQFields splits LSQ injections into address-field
// and data-field bits: address corruption is the Crash/WOI engine,
// data corruption the WD/SDC engine.
func BenchmarkAblationLSQFields(b *testing.B) {
	sys, err := Build(Target{Bench: "qsort", Seed: 2021}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := micro.ConfigA72()
	cp, err := sys.MicroCampaign(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := cfg.ISA.XLen()
	entries, _ := cfg.StructDims(micro.StructLSQ)
	for i := 0; i < b.N; i++ {
		run := func(dataField bool, n int, seed int64) inject.Tally {
			r := rand.New(rand.NewSource(seed))
			var t inject.Tally
			for k := 0; k < n; k++ {
				f := cp.Sample(r, micro.StructLSQ)
				f.Entry = r.Intn(entries)
				bit := r.Intn(x)
				if dataField {
					bit += x
				}
				f.Bit = bit
				t.Add(cp.Run(f).Record())
			}
			return t
		}
		addr := run(false, 60, 5)
		data := run(true, 60, 6)
		if i == 0 {
			rep := &report.Report{ID: "Ablation B", Title: "LSQ field sensitivity (qsort, A72-like)"}
			t := rep.NewTable("", "Field", "Masked", "SDC", "Crash", "AVF",
				"WOI share", "WD share")
			row := func(name string, tl inject.Tally) {
				t.AddRow(name, report.Pct(tl.Frac(inject.Masked)), report.Pct(tl.Frac(inject.SDC)),
					report.Pct(tl.Frac(inject.Crash)), report.Pct(tl.AVF()),
					report.Pct(tl.FPMShare(micro.FPMWOI)), report.Pct(tl.FPMShare(micro.FPMWD)))
			}
			row("address", addr)
			row("data", data)
			rep.Notef("address bits manifest as Wrong Operand (WOI) and skew toward Crash; data bits as Wrong Data (WD)")
			fmt.Println(rep.String())
		}
	}
}

// BenchmarkAblationConvergence shows how the AVF estimate and its
// Leveugle margin tighten with campaign size.
func BenchmarkAblationConvergence(b *testing.B) {
	sys, err := Build(Target{Bench: "sha", Seed: 2021}, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := sys.MicroCampaign(micro.ConfigA72())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep := &report.Report{ID: "Ablation C", Title: "campaign-size convergence (sha RF, A72-like)"}
		t := rep.NewTable("", "n", "AVF", "HVF", "margin @99%")
		for _, n := range []int{25, 50, 100, 200} {
			tl := cp.RunCampaign(micro.StructRF, n, 9, nil)
			t.AddRow(fmt.Sprint(n), report.Pct(tl.AVF()), report.Pct(tl.HVF()),
				report.Pct(vuln.Margin(n, 0.99)))
		}
		rep.Notef("the paper's 2,000-sample cells correspond to a ±2.88%% margin")
		if i == 0 {
			fmt.Println(rep.String())
		}
	}
}
