package vulnstack

import (
	"sync/atomic"
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// TestTranslationBlockEquivalenceAllBenchmarks is the acceptance gate
// of the translation-block engine: on every seed benchmark, at both
// layers that execute through it (arch emulator, IR interpreter), for
// one and several workers, block-at-a-time dispatch must produce
// tallies bit-identical to the step-by-step engines. The tb-on and
// tb-off systems build their golden chains independently through their
// respective engines, so an engine bug cannot corrupt both sides of
// the comparison.
func TestTranslationBlockEquivalenceAllBenchmarks(t *testing.T) {
	const (
		nArch = 16
		nSoft = 30
		seed  = 2021
	)
	for _, bench := range Benchmarks() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			mk := func(off bool) *System {
				sys, err := Build(Target{Bench: bench, Seed: 1}, isa.VSA64)
				if err != nil {
					t.Fatal(err)
				}
				sys.Snapshots = 6
				sys.NoTB = off
				return sys
			}
			tbOn, tbOff := mk(false), mk(true)

			layer := func(sys *System, name string, workers int) results.Tally {
				sys.Workers = workers
				switch name {
				case "arch":
					cp, err := sys.ArchCampaign()
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(micro.FPMWD, nArch, 0, seed, nil))
				default:
					cp, err := sys.LLFICampaign()
					if err != nil {
						t.Fatal(err)
					}
					cp.Workers = workers
					return results.TallyOf(cp.Records(nSoft, 0, seed, nil))
				}
			}
			for _, name := range []string{"arch", "soft"} {
				ref := layer(tbOff, name, 1)
				for _, workers := range []int{1, 3} {
					if got := layer(tbOn, name, workers); got != ref {
						t.Errorf("%s layer, %d workers: tb tally %+v, step-by-step %+v",
							name, workers, got, ref)
					}
				}
			}
		})
	}
}

// TestTranslationBlockSMCInvalidation drives the code-corruption path
// that makes translation caching unsound if invalidation misses: WI and
// WOI arch faults flip instruction-word bits in memory, exactly where
// predecoded blocks could go stale. The tb-on campaign runs in Paranoid
// mode — every dispatched op is refetched from memory and compared to
// its predecoded copy, and executing a stale op panics — so this test
// passing means (a) tallies match the step-by-step engine and (b) no
// stale block was ever dispatched while the checks were demonstrably
// exercised.
func TestTranslationBlockSMCInvalidation(t *testing.T) {
	const (
		n    = 24
		seed = 99
	)
	for _, fpm := range []micro.FPM{micro.FPMWI, micro.FPMWOI} {
		fpm := fpm
		t.Run(fpm.String(), func(t *testing.T) {
			t.Parallel()
			mk := func(off bool) *System {
				sys := shaSystem(t)
				sys.Workers = 2
				sys.Snapshots = 6
				sys.NoTB = off
				return sys
			}
			on, off := mk(false), mk(true)
			cpOff, err := off.ArchCampaign()
			if err != nil {
				t.Fatal(err)
			}
			ref := results.TallyOf(cpOff.Records(fpm, n, 0, seed, nil))

			var checks atomic.Uint64
			cpOn, err := on.ArchCampaign()
			if err != nil {
				t.Fatal(err)
			}
			cpOn.TBParanoid = &checks
			got := results.TallyOf(cpOn.Records(fpm, n, 0, seed, nil))
			if got != ref {
				t.Errorf("%v code-corruption tally under tb %+v, step-by-step %+v", fpm, got, ref)
			}
			if checks.Load() == 0 {
				t.Error("paranoid dispatch verified zero ops: the SMC path never ran through the engine")
			}
		})
	}
}

// TestStoreTBProvenanceKeys guards record provenance: measurements made
// through the translation-block engine are stamped with a distinct
// store-key Mode, so a tb-off campaign over the same store can never be
// served records a different engine produced (and vice versa).
func TestStoreTBProvenanceKeys(t *testing.T) {
	st := openStore(t)

	a := storedSystem(t, st)
	if got := a.ArchKey(micro.FPMWD, 7).Mode; got != "tb" {
		t.Fatalf("tb-on arch key Mode = %q, want \"tb\"", got)
	}
	if got := a.SoftKey(7).Mode; got != "tb" {
		t.Fatalf("tb-on soft key Mode = %q, want \"tb\"", got)
	}
	if _, err := a.PVF(micro.FPMWD, 12, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SVF(20, 7); err != nil {
		t.Fatal(err)
	}

	b := storedSystem(t, st)
	b.NoTB = true
	if got := b.ArchKey(micro.FPMWD, 7).Mode; got != "" {
		t.Fatalf("tb-off arch key Mode = %q, want \"\"", got)
	}
	if got := b.SoftKey(7).Mode; got != "" {
		t.Fatalf("tb-off soft key Mode = %q, want \"\"", got)
	}
	// The tb-on run must not have populated the tb-off keys.
	for _, k := range []results.Key{b.ArchKey(micro.FPMWD, 7), b.SoftKey(7)} {
		if _, ok, err := st.Manifest(k); err != nil || ok {
			t.Fatalf("manifest for tb-off key %v: ok=%v err=%v (tb records leaked across engines)", k, ok, err)
		}
	}
	// A tb-off measurement over the warm store therefore re-injects
	// (builds injectors) instead of replaying the tb records.
	if _, err := b.PVF(micro.FPMWD, 12, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SVF(20, 7); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.archC == nil || b.llfiC == nil {
		t.Fatalf("tb-off system served from tb manifests without re-injecting (arch=%v llfi=%v)",
			b.archC != nil, b.llfiC != nil)
	}
}
