package vulnstack

import (
	"os"
	"path/filepath"
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// ckptSystem builds a crc32 system over a store in dir, with mut
// applied before any campaign exists.
func ckptSystem(t *testing.T, dir string, mut func(*System)) *System {
	t.Helper()
	sys, err := Build(Target{Bench: "crc32", Seed: 1}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	sys.Snapshots = 32
	st, err := results.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys.Store = st
	if mut != nil {
		mut(sys)
	}
	return sys
}

// TestChainFingerprintGuard: a persisted checkpoint chain must only be
// resumed by a system whose configuration fingerprint matches exactly.
// Any flag baked into the golden run or its consumption — early-stop,
// decode cache, snapshot density, the target seed — must send the
// campaign down the fresh golden-run path, never silently reuse the
// stale chain.
func TestChainFingerprintGuard(t *testing.T) {
	dir := t.TempDir()
	cfg := micro.ConfigA72()

	cp, err := ckptSystem(t, dir, nil).MicroCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Resumed {
		t.Fatal("first campaign on an empty store claims to have resumed")
	}
	if acp, err := ckptSystem(t, dir, nil).ArchCampaign(); err != nil || acp.Resumed {
		t.Fatalf("arch seeding campaign: resumed=%v err=%v", acp != nil && acp.Resumed, err)
	}

	// An exact match must resume (otherwise the variants below prove
	// nothing).
	if cp, err := ckptSystem(t, dir, nil).MicroCampaign(cfg); err != nil || !cp.Resumed {
		t.Fatalf("identical configuration did not resume (err=%v)", err)
	}

	variants := []struct {
		name string
		mut  func(*System)
	}{
		{"earlystop", func(s *System) { s.NoEarlyStop = true }},
		{"decodecache", func(s *System) { s.NoDecodeCache = true }},
		{"snapshots", func(s *System) { s.Snapshots = 33 }},
	}
	for _, v := range variants {
		cp, err := ckptSystem(t, dir, v.mut).MicroCampaign(cfg)
		if err != nil {
			t.Fatalf("%s variant: %v", v.name, err)
		}
		if cp.Resumed {
			t.Errorf("micro campaign with different %s flag reused the persisted chain", v.name)
		}
		acp, err := ckptSystem(t, dir, v.mut).ArchCampaign()
		if err != nil {
			t.Fatalf("%s variant (arch): %v", v.name, err)
		}
		if acp.Resumed {
			t.Errorf("arch campaign with different %s flag reused the persisted chain", v.name)
		}
	}

	// A different workload seed is a different target entirely.
	seedSys, err := Build(Target{Bench: "crc32", Seed: 2}, isa.VSA64)
	if err != nil {
		t.Fatal(err)
	}
	seedSys.Snapshots = 32
	st, err := results.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedSys.Store = st
	if cp, err := seedSys.MicroCampaign(cfg); err != nil || cp.Resumed {
		t.Fatalf("campaign for a different target seed reused the persisted chain (err=%v)", err)
	}
}

// TestChainCorruptionFallback: a truncated or bit-flipped persisted
// chain file must never crash or skew a campaign — the loader rejects
// it (the codec digest-checks the payload) and Prepare falls back to a
// full golden run with bit-identical tallies.
func TestChainCorruptionFallback(t *testing.T) {
	const (
		n    = 6
		seed = 4242
	)
	dir := t.TempDir()
	cfg := micro.ConfigA72()

	cold, err := ckptSystem(t, dir, nil).MicroCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := results.TallyOf(cold.Records(micro.StructRF, n, 0, seed, nil))

	store, err := results.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fps, err := store.ListChains()
	if err != nil || len(fps) != 1 {
		t.Fatalf("want exactly one persisted chain, got %d (err=%v)", len(fps), err)
	}
	path := filepath.Join(dir, fps[0]+results.ChainExt)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := ckptSystem(t, dir, nil).MicroCampaign(cfg)
		if err != nil {
			t.Fatalf("%s chain: campaign failed instead of falling back: %v", name, err)
		}
		if cp.Resumed {
			t.Fatalf("%s chain was accepted as a resume source", name)
		}
		if got := results.TallyOf(cp.Records(micro.StructRF, n, 0, seed, nil)); got != ref {
			t.Errorf("%s chain fallback tally %+v, want %+v", name, got, ref)
		}
	}

	check("truncated", pristine[:len(pristine)/2])

	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)*3/4] ^= 0x10
	check("bit-flipped", flipped)

	// And a sanity pass: restoring the pristine bytes resumes again.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := ckptSystem(t, dir, nil).MicroCampaign(cfg)
	if err != nil || !cp.Resumed {
		t.Fatalf("pristine chain no longer resumes (err=%v)", err)
	}
	if got := results.TallyOf(cp.Records(micro.StructRF, n, 0, seed, nil)); got != ref {
		t.Errorf("resumed tally %+v, want %+v", got, ref)
	}
}
