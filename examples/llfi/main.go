// LLFI-style tool: a standalone software-level fault injector over any
// MiniC program, demonstrating the compiler + IR interpreter substrate
// directly (the layer the paper's SVF studies operate at).
package main

import (
	"fmt"
	"log"

	"vulnstack/internal/inject"
	"vulnstack/internal/llfi"
	"vulnstack/internal/minic"
)

// A small checksum utility written in MiniC.
const src = `
const N = 64

var data [N]int

func main() int {
	var i int
	for i = 0; i < N; i = i + 1 {
		data[i] = (i * 2654435761) & 0xFFFFFFFF
	}
	var h int = 0
	for i = 0; i < N; i = i + 1 {
		h = (h ^ data[i]) * 16777619
		h = h & 0xFFFFFFFF
	}
	out32(h)
	return 0
}
`

func main() {
	module, err := minic.Compile(src, llfi.Width)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := llfi.Prepare(module, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d dynamic IR instructions, %d value definitions, output %x\n",
		cp.GoldenSteps, cp.GoldenDefs, cp.GoldenOut)

	const n = 400
	tally := cp.RunCampaign(n, 1, nil)
	fmt.Printf("\n%d single-bit IR-level injections:\n", n)
	for o := inject.Outcome(0); o < inject.NumOutcomes; o++ {
		fmt.Printf("  %-8s %6.1f%%\n", o, 100*tally.Frac(o))
	}
	fmt.Printf("SVF = %.1f%%\n", 100*tally.SVF())
	fmt.Println("\nnote what this number cannot see: kernel activity, cache and")
	fmt.Println("register residency, and output that escapes via DMA — the gaps")
	fmt.Println("the cross-layer AVF measurement exposes (see ../crosslayer).")
}
