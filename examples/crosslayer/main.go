// Crosslayer: a compact version of the paper's Fig. 4 study — rank a
// set of benchmarks by software-level (SVF) and by cross-layer (AVF)
// vulnerability and show how the two orderings disagree.
package main

import (
	"fmt"
	"log"

	"vulnstack"
	"vulnstack/internal/micro"
	"vulnstack/internal/vuln"
)

func main() {
	benches := []string{"fft", "qsort", "sha", "crc32", "smooth"}
	cfg := micro.ConfigA72()

	var svfT, avfT []float64
	fmt.Printf("%-8s  %10s  %10s\n", "bench", "SVF", "AVF(weighted)")
	for _, b := range benches {
		sys, err := vulnstack.Build(vulnstack.Target{Bench: b, Seed: 2021}, cfg.ISA)
		if err != nil {
			log.Fatal(err)
		}
		svf, err := sys.SVF(120, 7)
		if err != nil {
			log.Fatal(err)
		}
		_, avf, err := sys.AVFAll(cfg, 25, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %9.2f%%  %9.3f%%\n", b, 100*svf.Total(), 100*avf.Total())
		svfT = append(svfT, svf.Total())
		avfT = append(avfT, avf.Total())
	}

	fmt.Println("\nranking by SVF: ", names(benches, vuln.RankOrder(svfT)))
	fmt.Println("ranking by AVF: ", names(benches, vuln.RankOrder(avfT)))
	fmt.Printf("\nopposite-ranked pairs: %d of %d — a software-level tool would\n",
		vuln.OppositePairs(svfT, avfT), vuln.TotalPairs(len(benches)))
	fmt.Println("prioritize protection for the wrong programs (the paper's core claim).")
}

func names(benches []string, order []int) []string {
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = benches[idx]
	}
	return out
}
