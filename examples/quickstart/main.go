// Quickstart: build one benchmark, run it on a simulated core, and
// measure its register-file vulnerability at the three layers of the
// system vulnerability stack.
package main

import (
	"fmt"
	"log"

	"vulnstack"
	"vulnstack/internal/micro"
)

func main() {
	// 1. Build the sha benchmark for the 64-bit ISA (the A72-like
	//    core's architecture).
	cfg := micro.ConfigA72()
	sys, err := vulnstack.Build(vulnstack.Target{Bench: "sha", Seed: 42}, cfg.ISA)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Execute it on the out-of-order core model.
	core := micro.New(cfg, sys.Image.NewMemory(), sys.Image.Entry)
	if !core.Run(1 << 30) {
		log.Fatal("did not halt")
	}
	fmt.Printf("sha on %s: %d instructions, %d cycles, digest %x\n",
		cfg.Name, core.Instret, core.Cycle, core.Bus.Out)

	// 3. Measure the same program's vulnerability at each layer.
	const n = 150
	cp, err := sys.MicroCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	avf := cp.RunCampaign(micro.StructRF, n, 1, nil)
	pvf, err := sys.PVF(micro.FPMWD, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	svf, err := sys.SVF(n, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nvulnerability of sha (n=%d per layer, ±%.1f%% at 99%%):\n",
		n, 100*vulnstack.Margin(n))
	fmt.Printf("  AVF (register file, cross-layer): %5.1f%%  (HVF %.1f%%)\n",
		100*avf.AVF(), 100*avf.HVF())
	fmt.Printf("  PVF (architecture level):         %5.1f%%\n", 100*pvf.Total())
	fmt.Printf("  SVF (software/IR level):          %5.1f%%\n", 100*svf.Total())
	fmt.Println("\nThe higher the layer, the larger the number — and, as the paper")
	fmt.Println("shows, the less it says about the real machine. Run the full")
	fmt.Println("experiments with: go run ./cmd/vulnstack experiment fig4")
}
