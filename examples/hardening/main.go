// Hardening: the paper's Section VI case study in miniature. Apply the
// duplication+detection fault-tolerance transform to a benchmark and
// compare what the software-level view reports against what the
// machine actually experiences.
package main

import (
	"fmt"
	"log"

	"vulnstack"
	"vulnstack/internal/micro"
)

func main() {
	const bench = "sha"
	cfg := micro.ConfigA72()

	measure := func(harden bool) (svf, avf, detected float64, cycles uint64) {
		sys, err := vulnstack.Build(vulnstack.Target{Bench: bench, Seed: 2021, Harden: harden}, cfg.ISA)
		if err != nil {
			log.Fatal(err)
		}
		sv, err := sys.SVF(150, 3)
		if err != nil {
			log.Fatal(err)
		}
		_, av, err := sys.AVFAll(cfg, 30, 3)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := sys.MicroCampaign(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return sv.Total(), av.Total(), sv.Detected, cp.Golden.Cycles
	}

	svf0, avf0, _, cyc0 := measure(false)
	svf1, avf1, det1, cyc1 := measure(true)

	fmt.Printf("case study: %s with duplication+detection hardening (%s-like core)\n\n", bench, cfg.Name)
	fmt.Printf("%-22s %12s %12s\n", "", "unprotected", "protected")
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "SVF (software view)", 100*svf0, 100*svf1)
	fmt.Printf("%-22s %11.3f%% %11.3f%%\n", "AVF (ground truth)", 100*avf0, 100*avf1)
	fmt.Printf("%-22s %12s %11.1f%%\n", "SVF faults detected", "-", 100*det1)
	fmt.Printf("%-22s %12d %12d\n", "execution cycles", cyc0, cyc1)
	fmt.Printf("\nthe software-level view celebrates (SVF down %.1fx); the machine pays\n",
		ratio(svf0, svf1))
	fmt.Printf("%.1fx more cycles of exposure, and the cross-layer AVF moves %+0.1f%%.\n",
		float64(cyc1)/float64(cyc0), relChange(avf0, avf1))
	fmt.Println("only the full-stack measurement can tell whether protection helped.")
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 99
	}
	return a / b
}

func relChange(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	return 100 * (b - a) / a
}
