package vulnstack

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vulnstack/internal/isa"
	"vulnstack/internal/micro"
	"vulnstack/internal/report"
	"vulnstack/internal/results"
	"vulnstack/internal/vuln"
)

// Options scales the experiment campaigns. The paper uses 2,000
// injections per cell (2.88% margin); the defaults here are sized for a
// single-core host — every report prints the margin actually achieved.
type Options struct {
	// NAVF is the microarchitectural injection count per structure.
	NAVF int
	// NPVF is the architecture-level injection count per FPM.
	NPVF int
	// NSVF is the software-level injection count.
	NSVF int
	// Seed drives both workload generation and fault sampling.
	Seed int64
	// Benches restricts the workload set (nil = all ten).
	Benches []string
	// Snapshots tunes golden-run snapshot counts.
	Snapshots int
	// Workers is the campaign fan-out: 0 (the default) uses all CPUs,
	// 1 forces the serial path. Every tally is bit-identical for every
	// worker count, so this trades wall clock only. It also gates
	// cross-benchmark parallelism inside the lab.
	Workers int
	// StoreDir, when non-empty, persists per-injection records under
	// this directory and serves repeat runs from them: fully stored
	// campaigns re-run as cache hits (no golden run, no injections),
	// and larger n values top up only the missing tail.
	StoreDir string
}

// DefaultOptions returns the scaled-down study defaults.
func DefaultOptions() Options {
	return Options{NAVF: 30, NPVF: 60, NSVF: 120, Seed: 2021, Snapshots: 12}
}

func (o Options) benches() []string {
	if len(o.Benches) > 0 {
		return o.Benches
	}
	return Benchmarks()
}

// Lab caches built systems and measurement results across experiments,
// so regenerating several figures shares golden runs and campaigns.
type Lab struct {
	Opts Options

	mu      sync.Mutex
	systems map[string]*System
	memoAVF map[string]avfMemo
	memoPVF map[string]vuln.Split
	memoSVF map[string]vuln.Split
	// flights deduplicates concurrent fills of the same memo key
	// (single-flight), so cross-bench parallel figure generation never
	// builds a system or runs a campaign twice.
	flights map[string]*flight

	// store backs memo fills with on-disk records when
	// Options.StoreDir is set (opened lazily, once).
	storeOnce sync.Once
	store     *results.Store
	storeErr  error
}

type avfMemo struct {
	results  []StructResult
	weighted vuln.Split
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// once runs fn exactly once per key across concurrent callers; later
// callers block until the first finishes and share its result. The
// durable memo maps remain the long-term cache — once only serializes
// the in-flight window.
func (l *Lab) once(key string, fn func() (any, error)) (any, error) {
	l.mu.Lock()
	if f, ok := l.flights[key]; ok {
		l.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	l.flights[key] = f
	l.mu.Unlock()
	f.val, f.err = fn()
	close(f.done)
	return f.val, f.err
}

// fill runs the given memo-filling closures, fanning them out when the
// lab is parallel (Options.Workers != 1). Campaign results are
// memoized and deterministic, so parallel filling never changes any
// figure — it only overlaps golden runs and campaigns across
// benchmarks. The first error wins; all closures finish either way.
func (l *Lab) fill(fns ...func() error) error {
	if len(fns) <= 1 || l.Opts.Workers == 1 {
		for _, fn := range fns {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// NewLab creates a lab with the given options.
func NewLab(o Options) *Lab {
	if o.NAVF <= 0 || o.NPVF <= 0 || o.NSVF <= 0 {
		d := DefaultOptions()
		if o.NAVF <= 0 {
			o.NAVF = d.NAVF
		}
		if o.NPVF <= 0 {
			o.NPVF = d.NPVF
		}
		if o.NSVF <= 0 {
			o.NSVF = d.NSVF
		}
	}
	if o.Snapshots <= 0 {
		o.Snapshots = 12
	}
	return &Lab{
		Opts:    o,
		systems: make(map[string]*System),
		memoAVF: make(map[string]avfMemo),
		memoPVF: make(map[string]vuln.Split),
		memoSVF: make(map[string]vuln.Split),
		flights: make(map[string]*flight),
	}
}

// Store returns the lab's persistent record store (nil when
// Options.StoreDir is unset), opening it on first use.
func (l *Lab) Store() (*results.Store, error) {
	if l.Opts.StoreDir == "" {
		return nil, nil
	}
	l.storeOnce.Do(func() {
		l.store, l.storeErr = results.OpenStore(l.Opts.StoreDir)
	})
	return l.store, l.storeErr
}

// System builds (or returns cached) a target for an ISA. Concurrent
// callers for the same target share one build; the lab lock is never
// held across compilation.
func (l *Lab) System(t Target, is isa.ISA) (*System, error) {
	if t.Seed == 0 {
		t.Seed = l.Opts.Seed
	}
	key := t.key() + "/" + is.String()
	l.mu.Lock()
	if s, ok := l.systems[key]; ok {
		l.mu.Unlock()
		return s, nil
	}
	l.mu.Unlock()
	v, err := l.once("sys/"+key, func() (any, error) {
		st, err := l.Store()
		if err != nil {
			return nil, err
		}
		s, err := Build(t, is)
		if err != nil {
			return nil, err
		}
		s.Snapshots = l.Opts.Snapshots
		s.Workers = l.Opts.Workers
		s.Store = st
		l.mu.Lock()
		l.systems[key] = s
		l.mu.Unlock()
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*System), nil
}

func (l *Lab) avf(t Target, cfg micro.Config) ([]StructResult, vuln.Split, error) {
	if t.Seed == 0 {
		t.Seed = l.Opts.Seed
	}
	key := fmt.Sprintf("%s/%s/%d", t.key(), cfg.Name, l.Opts.NAVF)
	l.mu.Lock()
	if m, ok := l.memoAVF[key]; ok {
		l.mu.Unlock()
		return m.results, m.weighted, nil
	}
	l.mu.Unlock()
	v, err := l.once("avf/"+key, func() (any, error) {
		s, err := l.System(t, cfg.ISA)
		if err != nil {
			return nil, err
		}
		res, w, err := s.AVFAll(cfg, l.Opts.NAVF, l.Opts.Seed)
		if err != nil {
			return nil, err
		}
		m := avfMemo{res, w}
		l.mu.Lock()
		l.memoAVF[key] = m
		l.mu.Unlock()
		return m, nil
	})
	if err != nil {
		return nil, vuln.Split{}, err
	}
	m := v.(avfMemo)
	return m.results, m.weighted, nil
}

func (l *Lab) pvf(t Target, is isa.ISA, fpm micro.FPM) (vuln.Split, error) {
	if t.Seed == 0 {
		t.Seed = l.Opts.Seed
	}
	key := fmt.Sprintf("%s/%v/%v/%d", t.key(), is, fpm, l.Opts.NPVF)
	l.mu.Lock()
	if m, ok := l.memoPVF[key]; ok {
		l.mu.Unlock()
		return m, nil
	}
	l.mu.Unlock()
	v, err := l.once("pvf/"+key, func() (any, error) {
		s, err := l.System(t, is)
		if err != nil {
			return nil, err
		}
		sp, err := s.PVF(fpm, l.Opts.NPVF, l.Opts.Seed)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		l.memoPVF[key] = sp
		l.mu.Unlock()
		return sp, nil
	})
	if err != nil {
		return vuln.Split{}, err
	}
	return v.(vuln.Split), nil
}

func (l *Lab) svf(t Target) (vuln.Split, error) {
	if t.Seed == 0 {
		t.Seed = l.Opts.Seed
	}
	key := fmt.Sprintf("%s/%d", t.key(), l.Opts.NSVF)
	l.mu.Lock()
	if m, ok := l.memoSVF[key]; ok {
		l.mu.Unlock()
		return m, nil
	}
	l.mu.Unlock()
	v, err := l.once("svf/"+key, func() (any, error) {
		s, err := l.System(t, isa.VSA64)
		if err != nil {
			return nil, err
		}
		sp, err := s.SVF(l.Opts.NSVF, l.Opts.Seed)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		l.memoSVF[key] = sp
		l.mu.Unlock()
		return sp, nil
	})
	if err != nil {
		return vuln.Split{}, err
	}
	return v.(vuln.Split), nil
}

// Experiments lists the reproducible artifacts. "static" is the
// no-execution analysis report (vulnstack analyze).
func Experiments() []string {
	return []string{"table2", "fig1", "fig4", "table3", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "static"}
}

// RunExperiment regenerates one paper artifact with fresh campaigns.
func RunExperiment(id string, o Options) (*report.Report, error) {
	return NewLab(o).Run(id)
}

// Run regenerates one paper artifact, reusing this lab's caches, and
// stamps its provenance (seed, per-cell n, margins, store state).
func (l *Lab) Run(id string) (*report.Report, error) {
	r, err := l.run(id)
	if err != nil {
		return nil, err
	}
	l.stamp(r)
	return r, nil
}

// stamp appends the provenance note: everything needed to reproduce
// the artifact's campaigns, pulled from the options and — when a store
// is attached — the stored campaign manifests.
func (l *Lab) stamp(r *report.Report) {
	if r.ID == "Table II" || r.ID == "Static" {
		return // no campaigns behind these (hardware parameters / no-execution analysis)
	}
	r.Notef("provenance: seed %d; injections per cell AVF=%d PVF=%d SVF=%d; margins at 99%%: ±%s / ±%s / ±%s",
		l.Opts.Seed, l.Opts.NAVF, l.Opts.NPVF, l.Opts.NSVF,
		report.Pct(Margin(l.Opts.NAVF)), report.Pct(Margin(l.Opts.NPVF)), report.Pct(Margin(l.Opts.NSVF)))
	st, err := l.Store()
	if err != nil || st == nil {
		return
	}
	if ms, err := st.List(); err == nil {
		var records, strat int
		for _, m := range ms {
			records += m.N
			if m.Key.Mode != "" {
				strat++
			}
		}
		note := fmt.Sprintf("results store: %s — %d campaigns, %d records", st.Dir(), len(ms), records)
		if strat > 0 {
			// Stratified streams carry their full sampling provenance
			// (plan parameters + partition fingerprint) in the key's
			// mode component, so the stamp needs only the count.
			note += fmt.Sprintf(", %d stratified (plan + partition fingerprint in each key's mode)", strat)
		}
		r.Notef("%s (inspect with: vulnstack results -store %s)", note, st.Dir())
	}
}

func (l *Lab) run(id string) (*report.Report, error) {
	switch strings.ToLower(id) {
	case "table2", "tab2":
		return l.table2()
	case "fig1":
		return l.fig1()
	case "fig4":
		return l.fig4()
	case "table3", "tab3":
		return l.table3()
	case "fig5":
		return l.fig5()
	case "fig6":
		return l.fig6()
	case "fig7":
		return l.fig7()
	case "fig8":
		return l.fig8()
	case "fig9":
		return l.fig9()
	case "fig10":
		return l.caseStudy("fig10", "sha")
	case "fig11":
		return l.caseStudy("fig11", "smooth")
	case "static", "analyze":
		return l.Analyze(DefaultAnalyzeOptions())
	}
	return nil, fmt.Errorf("vulnstack: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
}

// --- Table II ---

func (l *Lab) table2() (*report.Report, error) {
	r := &report.Report{ID: "Table II", Title: "Simulated microarchitecture parameters"}
	t := r.NewTable("", "Parameter", "A9", "A15", "A57", "A72")
	cfgs := Configs()
	row := func(name string, f func(c micro.Config) string) {
		cells := []string{name}
		for _, c := range cfgs {
			cells = append(cells, f(c))
		}
		t.AddRow(cells...)
	}
	row("ISA", func(c micro.Config) string { return c.ISA.String() })
	row("Issue width", func(c micro.Config) string { return fmt.Sprint(c.IssueWidth) })
	row("Front-end depth", func(c micro.Config) string { return fmt.Sprint(c.FrontLatency) })
	row("ROB", func(c micro.Config) string { return fmt.Sprint(c.ROBSize) })
	row("IQ", func(c micro.Config) string { return fmt.Sprint(c.IQSize) })
	row("LQ/SQ", func(c micro.Config) string { return fmt.Sprintf("%d/%d", c.LQSize, c.SQSize) })
	row("Phys regs", func(c micro.Config) string { return fmt.Sprint(c.PhysRegs) })
	row("L1I", func(c micro.Config) string { return fmt.Sprintf("%dKB", c.L1I.SizeBytes>>10) })
	row("L1D", func(c micro.Config) string { return fmt.Sprintf("%dKB", c.L1D.SizeBytes>>10) })
	row("L2", func(c micro.Config) string { return fmt.Sprintf("%dKB", c.L2.SizeBytes>>10) })
	row("Injectable bits", func(c micro.Config) string { return fmt.Sprint(c.TotalBits()) })
	return r, nil
}

// --- Fig. 1 ---

func (l *Lab) fig1() (*report.Report, error) {
	r := &report.Report{ID: "Fig. 1", Title: "Software-level (SVF) vs cross-layer (AVF) vulnerability: sha and qsort"}
	cfg := micro.ConfigA72()
	t := r.NewTable("", "Benchmark", "SVF SDC", "SVF Crash", "SVF total",
		"AVF SDC", "AVF Crash", "AVF total")
	benches := []string{"sha", "qsort"}
	var fns []func() error
	for _, b := range benches {
		tgt := Target{Bench: b}
		fns = append(fns,
			func() error { _, err := l.svf(tgt); return err },
			func() error { _, _, err := l.avf(tgt, cfg); return err })
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}
	var svfT, avfT []float64
	for _, b := range benches {
		tgt := Target{Bench: b}
		sv, err := l.svf(tgt)
		if err != nil {
			return nil, err
		}
		_, av, err := l.avf(tgt, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(b, report.Pct(sv.SDC), report.Pct(sv.Crash), report.Pct(sv.Total()),
			report.Pct(av.SDC), report.Pct(av.Crash), report.Pct(av.Total()))
		svfT = append(svfT, sv.Total())
		avfT = append(avfT, av.Total())
	}
	if len(svfT) == 2 && svfT[1] > 0 && avfT[1] > 0 {
		r.Notef("relative vulnerability sha/qsort: SVF %.2fx, AVF %.2fx (the paper finds these on opposite sides of 1)",
			svfT[0]/svfT[1], avfT[0]/avfT[1])
	}
	r.Notef("margins at 99%% confidence: SVF ±%s (n=%d), AVF ±%s per structure (n=%d)",
		report.Pct(Margin(l.Opts.NSVF)), l.Opts.NSVF, report.Pct(Margin(l.Opts.NAVF)), l.Opts.NAVF)
	r.Notef("note the scale difference: full-system AVF values are far below software-only SVF values (Fig. 1's dual axes)")
	return r, nil
}

// --- Fig. 4 ---

type layerRow struct {
	bench string
	pvf   vuln.Split
	svf   vuln.Split
	avf   vuln.Split
}

func (l *Lab) layerData(benches []string, cfg micro.Config) ([]layerRow, error) {
	rows := make([]layerRow, len(benches))
	fns := make([]func() error, len(benches))
	for i, b := range benches {
		fns[i] = func() error {
			tgt := Target{Bench: b}
			pv, err := l.pvf(tgt, cfg.ISA, micro.FPMWD)
			if err != nil {
				return err
			}
			sv, err := l.svf(tgt)
			if err != nil {
				return err
			}
			_, av, err := l.avf(tgt, cfg)
			if err != nil {
				return err
			}
			rows[i] = layerRow{b, pv, sv, av}
			return nil
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}
	return rows, nil
}

func (l *Lab) fig4() (*report.Report, error) {
	r := &report.Report{ID: "Fig. 4", Title: "PVF, SVF and weighted AVF per benchmark (A72-like, VSA64)"}
	rows, err := l.layerData(l.Opts.benches(), micro.ConfigA72())
	if err != nil {
		return nil, err
	}
	t := r.NewTable("", "Benchmark",
		"PVF SDC", "PVF Crash", "PVF tot",
		"SVF SDC", "SVF Crash", "SVF tot",
		"AVF SDC", "AVF Crash", "AVF tot")
	var pvfT, svfT, avfT []float64
	var pvfS, svfS, avfS []vuln.Split
	for _, row := range rows {
		t.AddRow(row.bench,
			report.Pct(row.pvf.SDC), report.Pct(row.pvf.Crash), report.Pct(row.pvf.Total()),
			report.Pct(row.svf.SDC), report.Pct(row.svf.Crash), report.Pct(row.svf.Total()),
			report.Pct(row.avf.SDC), report.Pct(row.avf.Crash), report.Pct(row.avf.Total()))
		pvfT = append(pvfT, row.pvf.Total())
		svfT = append(svfT, row.svf.Total())
		avfT = append(avfT, row.avf.Total())
		pvfS = append(pvfS, row.pvf)
		svfS = append(svfS, row.svf)
		avfS = append(avfS, row.avf)
	}
	n := len(rows)
	r.Notef("opposite-ranked pairs vs AVF (of %d): PVF %d, SVF %d; SVF vs PVF %d",
		vuln.TotalPairs(n), vuln.OppositePairs(pvfT, avfT), vuln.OppositePairs(svfT, avfT),
		vuln.OppositePairs(svfT, pvfT))
	r.Notef("dominant-effect (SDC vs Crash) flips vs AVF: PVF %d, SVF %d of %d benchmarks",
		vuln.DominantEffectFlips(pvfS, avfS), vuln.DominantEffectFlips(svfS, avfS), n)
	r.Notef("rank correlation proxies (Pearson): PVF/AVF %.2f, SVF/AVF %.2f, SVF/PVF %.2f",
		vuln.Correlation(pvfT, avfT), vuln.Correlation(svfT, avfT), vuln.Correlation(svfT, pvfT))
	return r, nil
}

// --- Table III ---

func (l *Lab) table3() (*report.Report, error) {
	r := &report.Report{ID: "Table III", Title: "Opposite relative vulnerability comparisons per microarchitecture"}
	t := r.NewTable("", "Config", "Pair", "Total (opposite pairs)", "Effect (dominance flips)")
	benches := l.Opts.benches()
	var fns []func() error
	for _, cfg := range Configs() {
		for _, b := range benches {
			tgt := Target{Bench: b}
			fns = append(fns,
				func() error { _, err := l.pvf(tgt, cfg.ISA, micro.FPMWD); return err },
				func() error { _, _, err := l.avf(tgt, cfg); return err })
			if cfg.ISA == isa.VSA64 {
				fns = append(fns, func() error { _, err := l.svf(tgt); return err })
			}
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}
	for _, cfg := range Configs() {
		var pvfT, svfT, avfT []float64
		var pvfS, svfS, avfS []vuln.Split
		withSVF := cfg.ISA == isa.VSA64
		for _, b := range benches {
			tgt := Target{Bench: b}
			pv, err := l.pvf(tgt, cfg.ISA, micro.FPMWD)
			if err != nil {
				return nil, err
			}
			_, av, err := l.avf(tgt, cfg)
			if err != nil {
				return nil, err
			}
			pvfT = append(pvfT, pv.Total())
			avfT = append(avfT, av.Total())
			pvfS = append(pvfS, pv)
			avfS = append(avfS, av)
			if withSVF {
				sv, err := l.svf(tgt)
				if err != nil {
					return nil, err
				}
				svfT = append(svfT, sv.Total())
				svfS = append(svfS, sv)
			}
		}
		pairs := vuln.TotalPairs(len(benches))
		t.AddRow(cfg.Name, "PVF vs AVF",
			fmt.Sprintf("%d/%d", vuln.OppositePairs(pvfT, avfT), pairs),
			fmt.Sprintf("%d/%d", vuln.DominantEffectFlips(pvfS, avfS), len(benches)))
		if withSVF {
			t.AddRow(cfg.Name, "SVF vs AVF",
				fmt.Sprintf("%d/%d", vuln.OppositePairs(svfT, avfT), pairs),
				fmt.Sprintf("%d/%d", vuln.DominantEffectFlips(svfS, avfS), len(benches)))
			t.AddRow(cfg.Name, "SVF vs PVF",
				fmt.Sprintf("%d/%d", vuln.OppositePairs(svfT, pvfT), pairs),
				fmt.Sprintf("%d/%d", vuln.DominantEffectFlips(svfS, pvfS), len(benches)))
		}
	}
	r.Notef("SVF rows exist only for VSA64 configurations: LLFI-style injection supports only 64-bit ISAs (paper, Sec. III.C)")
	return r, nil
}

// --- Fig. 5 ---

func (l *Lab) fig5() (*report.Report, error) {
	r := &report.Report{ID: "Fig. 5", Title: "HVF per hardware structure with FPM breakdown (A9-like, A15-like)"}
	structs := []micro.Structure{micro.StructRF, micro.StructL1I, micro.StructL1D, micro.StructL2}
	cfgs := []micro.Config{micro.ConfigA9(), micro.ConfigA15()}
	var fns []func() error
	for _, cfg := range cfgs {
		for _, b := range l.Opts.benches() {
			tgt := Target{Bench: b}
			fns = append(fns, func() error { _, _, err := l.avf(tgt, cfg); return err })
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}
	for _, cfg := range cfgs {
		for _, st := range structs {
			t := r.NewTable(fmt.Sprintf("%s / %s", cfg.Name, st),
				"Benchmark", "HVF", "WD", "WI", "WOI", "ESC")
			for _, b := range l.Opts.benches() {
				res, _, err := l.avf(Target{Bench: b}, cfg)
				if err != nil {
					return nil, err
				}
				sr := res[st]
				share := func(m micro.FPM) string {
					if sr.Visible == 0 {
						return "-"
					}
					return report.Pct(float64(sr.FPM[m]) / float64(sr.Visible))
				}
				t.AddRow(b, report.Pct(sr.HVF), share(micro.FPMWD), share(micro.FPMWI),
					share(micro.FPMWOI), share(micro.FPMESC))
			}
		}
	}
	r.Notef("RF and L1d faults manifest dominantly as WD; L1i as WI/WOI — the models typical PVF/SVF studies ignore")
	return r, nil
}

// --- Fig. 6 ---

func (l *Lab) fig6() (*report.Report, error) {
	r := &report.Report{ID: "Fig. 6", Title: "Bit-weighted FPM distribution (ESC included) per benchmark and microarchitecture"}
	maxESC, sumESC, cells := 0.0, 0.0, 0
	var fns []func() error
	for _, cfg := range Configs() {
		for _, b := range l.Opts.benches() {
			tgt := Target{Bench: b}
			fns = append(fns, func() error { _, _, err := l.avf(tgt, cfg); return err })
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}
	for _, cfg := range Configs() {
		t := r.NewTable(cfg.Name, "Benchmark", "WD", "WI", "WOI", "ESC")
		for _, b := range l.Opts.benches() {
			res, _, err := l.avf(Target{Bench: b}, cfg)
			if err != nil {
				return nil, err
			}
			dist := FPMDist(cfg, res)
			t.AddRow(b, report.Pct(dist[micro.FPMWD]), report.Pct(dist[micro.FPMWI]),
				report.Pct(dist[micro.FPMWOI]), report.Pct(dist[micro.FPMESC]))
			if dist[micro.FPMESC] > maxESC {
				maxESC = dist[micro.FPMESC]
			}
			sumESC += dist[micro.FPMESC]
			cells++
		}
	}
	if cells > 0 {
		r.Notef("Escaped (ESC) share: max %s, average %s — faults PVF/SVF can never model (paper: up to 62%%, avg 29%%)",
			report.Pct(maxESC), report.Pct(sumESC/float64(cells)))
	}
	return r, nil
}

// --- Fig. 7 ---

func (l *Lab) fig7() (*report.Report, error) {
	r := &report.Report{ID: "Fig. 7", Title: "PVF per fault propagation model (WD, WOI, WI) on VSA64"}
	t := r.NewTable("", "Benchmark",
		"WD SDC", "WD Crash", "WD tot",
		"WOI SDC", "WOI Crash", "WOI tot",
		"WI SDC", "WI Crash", "WI tot")
	var fns []func() error
	for _, b := range l.Opts.benches() {
		tgt := Target{Bench: b}
		for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
			fns = append(fns, func() error { _, err := l.pvf(tgt, isa.VSA64, m); return err })
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}
	for _, b := range l.Opts.benches() {
		tgt := Target{Bench: b}
		var sp [3]vuln.Split
		for i, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
			v, err := l.pvf(tgt, isa.VSA64, m)
			if err != nil {
				return nil, err
			}
			sp[i] = v
		}
		t.AddRow(b,
			report.Pct(sp[0].SDC), report.Pct(sp[0].Crash), report.Pct(sp[0].Total()),
			report.Pct(sp[1].SDC), report.Pct(sp[1].Crash), report.Pct(sp[1].Total()),
			report.Pct(sp[2].SDC), report.Pct(sp[2].Crash), report.Pct(sp[2].Total()))
	}
	r.Notef("WD mostly produces SDCs with high cross-benchmark variability; WOI and especially WI skew toward Crashes")
	return r, nil
}

// --- Fig. 8 ---

func (l *Lab) fig8() (*report.Report, error) {
	r := &report.Report{ID: "Fig. 8", Title: "Refined PVF (rPVF, weighted by measured FPM distribution) vs cross-layer AVF"}
	benches := []string{"fft", "djpeg", "sha", "qsort"}
	if len(l.Opts.Benches) > 0 {
		benches = l.Opts.Benches
	}
	t := r.NewTable("", "Benchmark", "Config",
		"rPVF SDC", "rPVF Crash", "rPVF tot",
		"AVF SDC", "AVF Crash", "AVF tot")
	type spread struct{ rmin, rmax, amin, amax float64 }
	spreads := map[string]*spread{}
	var fns []func() error
	for _, b := range benches {
		for _, cfg := range Configs() {
			tgt := Target{Bench: b}
			for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
				fns = append(fns, func() error { _, err := l.pvf(tgt, cfg.ISA, m); return err })
			}
			fns = append(fns, func() error { _, _, err := l.avf(tgt, cfg); return err })
		}
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}
	for _, b := range benches {
		for _, cfg := range Configs() {
			tgt := Target{Bench: b}
			pvfs := map[micro.FPM]vuln.Split{}
			for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
				v, err := l.pvf(tgt, cfg.ISA, m)
				if err != nil {
					return nil, err
				}
				pvfs[m] = v
			}
			res, av, err := l.avf(tgt, cfg)
			if err != nil {
				return nil, err
			}
			rp := vuln.RPVF(pvfs, FPMDist(cfg, res))
			t.AddRow(b, cfg.Name,
				report.Pct(rp.SDC), report.Pct(rp.Crash), report.Pct(rp.Total()),
				report.Pct(av.SDC), report.Pct(av.Crash), report.Pct(av.Total()))
			sp := spreads[b]
			if sp == nil {
				sp = &spread{rmin: 2, amin: 2}
				spreads[b] = sp
			}
			if rp.Total() < sp.rmin {
				sp.rmin = rp.Total()
			}
			if rp.Total() > sp.rmax {
				sp.rmax = rp.Total()
			}
			if av.Total() < sp.amin {
				sp.amin = av.Total()
			}
			if av.Total() > sp.amax {
				sp.amax = av.Total()
			}
		}
	}
	var names []string
	for b := range spreads {
		names = append(names, b)
	}
	sort.Strings(names)
	for _, b := range names {
		sp := spreads[b]
		r.Notef("%s: rPVF spread across microarchitectures %s..%s vs AVF spread %s..%s (rPVF stays flat; AVF does not)",
			b, report.Pct(sp.rmin), report.Pct(sp.rmax), report.Pct(sp.amin), report.Pct(sp.amax))
	}
	return r, nil
}

// --- Fig. 9 ---

func (l *Lab) fig9() (*report.Report, error) {
	r := &report.Report{ID: "Fig. 9", Title: "Crash-only and SDC-only vulnerability across SVF, PVF and AVF (A72-like)"}
	rows, err := l.layerData(l.Opts.benches(), micro.ConfigA72())
	if err != nil {
		return nil, err
	}
	tc := r.NewTable("Crash vulnerability", "Benchmark", "SVF", "PVF", "AVF")
	ts := r.NewTable("SDC vulnerability", "Benchmark", "SVF", "PVF", "AVF")
	var sdcSVF, sdcAVF, crashSVF, crashAVF []float64
	for _, row := range rows {
		tc.AddRow(row.bench, report.Pct(row.svf.Crash), report.Pct(row.pvf.Crash), report.Pct(row.avf.Crash))
		ts.AddRow(row.bench, report.Pct(row.svf.SDC), report.Pct(row.pvf.SDC), report.Pct(row.avf.SDC))
		sdcSVF = append(sdcSVF, row.svf.SDC)
		sdcAVF = append(sdcAVF, row.avf.SDC)
		crashSVF = append(crashSVF, row.svf.Crash)
		crashAVF = append(crashAVF, row.avf.Crash)
	}
	r.Notef("opposite-ranked pairs SVF vs AVF: SDC %d, Crash %d (of %d)",
		vuln.OppositePairs(sdcSVF, sdcAVF), vuln.OppositePairs(crashSVF, crashAVF),
		vuln.TotalPairs(len(rows)))
	return r, nil
}

// --- Figs. 10 & 11: the software fault-tolerance case study ---

func (l *Lab) caseStudy(id, bench string) (*report.Report, error) {
	r := &report.Report{
		ID:    strings.ToUpper(id[:1]) + id[1:],
		Title: fmt.Sprintf("Case study: software-based fault tolerance on %q (w/o vs w/ protection, A72-like)", bench),
	}
	cfg := micro.ConfigA72()
	base := Target{Bench: bench}
	prot := Target{Bench: bench, Harden: true}

	var fns []func() error
	for _, tgt := range []Target{base, prot} {
		fns = append(fns,
			func() error { _, _, err := l.avf(tgt, cfg); return err },
			func() error { _, err := l.pvf(tgt, cfg.ISA, micro.FPMWD); return err },
			func() error { _, err := l.svf(tgt); return err })
	}
	if err := l.fill(fns...); err != nil {
		return nil, err
	}

	// (a) per-structure AVF.
	ta := r.NewTable("(a) per-structure AVF", "Structure",
		"w/o SDC", "w/o Crash", "w/o AVF",
		"w/ SDC", "w/ Crash", "w/ Detected", "w/ AVF")
	resB, wB, err := l.avf(base, cfg)
	if err != nil {
		return nil, err
	}
	resP, wP, err := l.avf(prot, cfg)
	if err != nil {
		return nil, err
	}
	for st := range resB {
		b, p := resB[st], resP[st]
		ta.AddRow(b.Struct.String(),
			report.Pct(b.Split.SDC), report.Pct(b.Split.Crash), report.Pct(b.Split.Total()),
			report.Pct(p.Split.SDC), report.Pct(p.Split.Crash), report.Pct(p.Split.Detected), report.Pct(p.Split.Total()))
	}

	// (b) weighted AVF.
	tb := r.NewTable("(b) bit-weighted full-system AVF", "Version", "SDC", "Crash", "Detected", "AVF")
	tb.AddRow("w/o", report.Pct(wB.SDC), report.Pct(wB.Crash), report.Pct(wB.Detected), report.Pct(wB.Total()))
	tb.AddRow("w/", report.Pct(wP.SDC), report.Pct(wP.Crash), report.Pct(wP.Detected), report.Pct(wP.Total()))

	// (c) PVF.
	pvB, err := l.pvf(base, cfg.ISA, micro.FPMWD)
	if err != nil {
		return nil, err
	}
	pvP, err := l.pvf(prot, cfg.ISA, micro.FPMWD)
	if err != nil {
		return nil, err
	}
	tc := r.NewTable("(c) PVF (WD)", "Version", "SDC", "Crash", "Detected", "PVF")
	tc.AddRow("w/o", report.Pct(pvB.SDC), report.Pct(pvB.Crash), report.Pct(pvB.Detected), report.Pct(pvB.Total()))
	tc.AddRow("w/", report.Pct(pvP.SDC), report.Pct(pvP.Crash), report.Pct(pvP.Detected), report.Pct(pvP.Total()))

	// (d) SVF.
	svB, err := l.svf(base)
	if err != nil {
		return nil, err
	}
	svP, err := l.svf(prot)
	if err != nil {
		return nil, err
	}
	td := r.NewTable("(d) SVF", "Version", "SDC", "Crash", "Detected", "SVF")
	td.AddRow("w/o", report.Pct(svB.SDC), report.Pct(svB.Crash), report.Pct(svB.Detected), report.Pct(svB.Total()))
	td.AddRow("w/", report.Pct(svP.SDC), report.Pct(svP.Crash), report.Pct(svP.Detected), report.Pct(svP.Total()))

	// Execution-time inflation and kernel share (the paper's mechanism
	// for AVF degradation).
	sb, err := l.System(base, cfg.ISA)
	if err != nil {
		return nil, err
	}
	sp, err := l.System(prot, cfg.ISA)
	if err != nil {
		return nil, err
	}
	cb, err := sb.MicroCampaign(cfg)
	if err != nil {
		return nil, err
	}
	cpp, err := sp.MicroCampaign(cfg)
	if err != nil {
		return nil, err
	}
	r.Notef("execution time: %d -> %d cycles (%.2fx, paper reports 2.1x for sha / 2.5x for smooth)",
		cb.Golden.Cycles, cpp.Golden.Cycles, float64(cpp.Golden.Cycles)/float64(cb.Golden.Cycles))
	r.Notef("kernel share of committed instructions: w/o %s, w/ %s (kernel code is outside the protection domain)",
		report.Pct(float64(cb.Golden.KInstr)/float64(cb.Golden.Instret)),
		report.Pct(float64(cpp.Golden.KInstr)/float64(cpp.Golden.Instret)))
	if svB.Total() > 0 && pvB.Total() > 0 {
		r.Notef("higher-level improvement: SVF %s, PVF %s; cross-layer AVF change: %+.1f%% (paper: up to 3.8x improvement reported while AVF degrades up to 30%%)",
			improvement(svB.Total(), svP.Total()), improvement(pvB.Total(), pvP.Total()),
			100*(wP.Total()-wB.Total())/maxf(wB.Total(), 1e-9))
	}
	return r, nil
}

func improvement(before, after float64) string {
	if after <= 0 {
		return fmt.Sprintf("%.1f%% -> 0 (all detected)", 100*before)
	}
	return fmt.Sprintf("%.2fx lower", before/after)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
