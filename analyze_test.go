package vulnstack

import (
	"testing"
)

// TestAnalyzeZeroInjections: the static-analysis report is a
// no-injection artifact. After a full Analyze pass (including the
// dynamic-ACE golden runs and hardening-coverage verification), no
// cached system may have prepared any injector — microarchitectural,
// architectural or software-level.
func TestAnalyzeZeroInjections(t *testing.T) {
	o := DefaultOptions()
	o.Benches = []string{"crc32", "qsort"}
	l := NewLab(o)
	r, err := l.Analyze(DefaultAnalyzeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) < 4 {
		t.Fatalf("analyze report has %d tables, want >= 4", len(r.Tables))
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.systems) == 0 {
		t.Fatal("analyze built no systems")
	}
	for key, s := range l.systems {
		s.mu.Lock()
		if s.archC != nil {
			t.Errorf("system %s prepared an arch (PVF) injector", key)
		}
		if len(s.microC) != 0 {
			t.Errorf("system %s prepared %d micro injection campaigns", key, len(s.microC))
		}
		if s.llfiC != nil {
			t.Errorf("system %s prepared a software (LLFI) injector", key)
		}
		s.mu.Unlock()
	}
}
