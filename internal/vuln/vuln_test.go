package vuln

import (
	"math"
	"testing"
	"testing/quick"

	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSplitArithmetic(t *testing.T) {
	s := Split{SDC: 0.1, Crash: 0.2, Detected: 0.3, Masked: 0.4}
	if !almost(s.Total(), 0.3) {
		t.Fatal("total excludes detected and masked")
	}
	d := s.Scale(0.5).Add(s.Scale(0.5))
	if !almost(d.SDC, s.SDC) || !almost(d.Masked, s.Masked) {
		t.Fatal("scale/add")
	}
}

func TestWeighted(t *testing.T) {
	parts := []Split{{SDC: 1}, {Crash: 1}}
	got := Weighted(parts, []int{3, 1})
	if !almost(got.SDC, 0.75) || !almost(got.Crash, 0.25) {
		t.Fatalf("weighted: %+v", got)
	}
	// Weighting is a convex combination: totals stay within bounds.
	f := func(a, b uint8, w1, w2 uint8) bool {
		p := []Split{{SDC: float64(a) / 255}, {SDC: float64(b) / 255}}
		w := []int{int(w1) + 1, int(w2) + 1}
		g := Weighted(p, w)
		lo, hi := p[0].SDC, p[1].SDC
		if lo > hi {
			lo, hi = hi, lo
		}
		return g.SDC >= lo-1e-9 && g.SDC <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarginMatchesPaper(t *testing.T) {
	// The paper: 2,000 samples give a 2.88% margin at 99% confidence.
	got := Margin(2000, 0.99)
	if math.Abs(got-0.0288) > 0.0002 {
		t.Fatalf("margin(2000, 99%%) = %.4f, want ~0.0288", got)
	}
	if SamplesFor(0.0288, 0.99) < 1900 || SamplesFor(0.0288, 0.99) > 2100 {
		t.Fatalf("SamplesFor inverse: %d", SamplesFor(0.0288, 0.99))
	}
	if Margin(0, 0.99) != 1 {
		t.Fatal("degenerate margin")
	}
	if Margin(100, 0.95) >= Margin(100, 0.99) {
		t.Fatal("higher confidence must widen the margin")
	}
}

func TestOppositePairs(t *testing.T) {
	a := []float64{3, 2, 1}
	b := []float64{1, 2, 3}
	if OppositePairs(a, b) != 3 {
		t.Fatal("fully reversed ranking")
	}
	if OppositePairs(a, a) != 0 {
		t.Fatal("identical ranking")
	}
	if TotalPairs(10) != 45 {
		t.Fatal("C(10,2)")
	}
	// Ties are not opposite.
	if OppositePairs([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("ties")
	}
}

func TestDominantEffectFlips(t *testing.T) {
	a := []Split{{SDC: 0.3, Crash: 0.1}, {SDC: 0.1, Crash: 0.3}}
	b := []Split{{SDC: 0.1, Crash: 0.3}, {SDC: 0.1, Crash: 0.3}}
	if DominantEffectFlips(a, b) != 1 {
		t.Fatal("one flip expected")
	}
}

func TestRPVF(t *testing.T) {
	pvf := map[micro.FPM]Split{
		micro.FPMWD:  {SDC: 0.6},
		micro.FPMWOI: {Crash: 0.8},
		micro.FPMWI:  {Crash: 0.9},
	}
	dist := map[micro.FPM]float64{
		micro.FPMWD: 0.25, micro.FPMWOI: 0.15, micro.FPMWI: 0.10,
		micro.FPMESC: 0.50, // half the visible faults escape: ignored
	}
	got := RPVF(pvf, dist)
	// Weights renormalize over 0.5: WD 0.5, WOI 0.3, WI 0.2.
	if !almost(got.SDC, 0.30) || !almost(got.Crash, 0.8*0.3+0.9*0.2) {
		t.Fatalf("rPVF: %+v", got)
	}
	if RPVF(pvf, map[micro.FPM]float64{}).Total() != 0 {
		t.Fatal("empty distribution")
	}
}

// TestDegenerateInputs: ranking and correlation estimators must answer
// 0 — never NaN, never panic — on mismatched-length, empty, and
// zero-variance inputs, since stored campaigns of different vintages
// can legitimately produce vectors of different lengths.
func TestDegenerateInputs(t *testing.T) {
	short := []float64{1, 2}
	long := []float64{3, 2, 1}
	if OppositePairs(short, long) != 0 || OppositePairs(long, short) != 0 {
		t.Error("mismatched lengths must count 0 opposite pairs")
	}
	if OppositePairs(nil, nil) != 0 {
		t.Error("empty inputs")
	}
	if DominantEffectFlips([]Split{{SDC: 1}}, nil) != 0 {
		t.Error("mismatched split lengths must count 0 flips")
	}
	if DominantEffectFlips(nil, nil) != 0 {
		t.Error("empty split inputs")
	}
	for _, tc := range [][2][]float64{
		{short, long},     // mismatched lengths
		{nil, nil},        // empty
		{{1, 1, 1}, long}, // zero variance left
		{long, {2, 2, 2}}, // zero variance right
		{{5, 5}, {7, 7}},  // zero variance both
	} {
		if c := Correlation(tc[0], tc[1]); c != 0 {
			t.Errorf("Correlation(%v, %v) = %v, want 0", tc[0], tc[1], c)
		}
		if math.IsNaN(Correlation(tc[0], tc[1])) {
			t.Errorf("Correlation(%v, %v) is NaN", tc[0], tc[1])
		}
	}
}

func TestSplitOf(t *testing.T) {
	var tl results.Tally
	if SplitOf(tl) != (Split{}) {
		t.Fatal("empty tally must give a zero split")
	}
	recs := []results.Record{
		{Index: 0, Outcome: results.Masked},
		{Index: 1, Outcome: results.SDC},
		{Index: 2, Outcome: results.Crash},
		{Index: 3, Outcome: results.SDC},
	}
	got := SplitRecords(recs)
	if !almost(got.SDC, 0.5) || !almost(got.Crash, 0.25) || !almost(got.Masked, 0.25) {
		t.Fatalf("split %+v", got)
	}
	if !almost(got.Total(), results.TallyOf(recs).Failures()) {
		t.Fatal("Split.Total must agree with Tally.Failures")
	}
}

func TestFPMDistFromTallies(t *testing.T) {
	var a, b results.Tally
	a.N, b.N = 10, 10
	a.FPM[micro.FPMWD] = 4
	b.FPM[micro.FPMWI] = 2
	// Mismatched parallel slices are invalid: nil, not a panic.
	if FPMDist([]results.Tally{a, b}, []int{8}) != nil {
		t.Fatal("length mismatch must yield nil")
	}
	dist := FPMDist([]results.Tally{a, b}, []int{8, 8})
	if !almost(dist[micro.FPMWD]+dist[micro.FPMWI], 1) {
		t.Fatalf("dist must normalize: %v", dist)
	}
	if !almost(dist[micro.FPMWD], 4.0/6) {
		t.Fatalf("WD share %v", dist[micro.FPMWD])
	}
	// All-zero tallies: an empty (but non-nil-safe) distribution.
	if d := FPMDist([]results.Tally{{}, {}}, []int{8, 8}); len(d) != 0 {
		t.Fatalf("no visible faults must give an empty dist: %v", d)
	}
}

func TestRankOrderAndCorrelation(t *testing.T) {
	v := []float64{0.2, 0.9, 0.5}
	order := RankOrder(v)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("rank: %v", order)
	}
	if c := Correlation(v, v); !almost(c, 1) {
		t.Fatalf("self correlation %f", c)
	}
	neg := []float64{0.9, 0.2, 0.5}
	if c := Correlation(v, neg); c >= 0 {
		t.Fatalf("want negative correlation, got %f", c)
	}
	if Correlation([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("zero variance")
	}
}
