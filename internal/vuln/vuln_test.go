package vuln

import (
	"math"
	"testing"
	"testing/quick"

	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSplitArithmetic(t *testing.T) {
	s := Split{SDC: 0.1, Crash: 0.2, Detected: 0.3, Masked: 0.4}
	if !almost(s.Total(), 0.3) {
		t.Fatal("total excludes detected and masked")
	}
	d := s.Scale(0.5).Add(s.Scale(0.5))
	if !almost(d.SDC, s.SDC) || !almost(d.Masked, s.Masked) {
		t.Fatal("scale/add")
	}
}

func TestWeighted(t *testing.T) {
	parts := []Split{{SDC: 1}, {Crash: 1}}
	got := Weighted(parts, []int{3, 1})
	if !almost(got.SDC, 0.75) || !almost(got.Crash, 0.25) {
		t.Fatalf("weighted: %+v", got)
	}
	// Weighting is a convex combination: totals stay within bounds.
	f := func(a, b uint8, w1, w2 uint8) bool {
		p := []Split{{SDC: float64(a) / 255}, {SDC: float64(b) / 255}}
		w := []int{int(w1) + 1, int(w2) + 1}
		g := Weighted(p, w)
		lo, hi := p[0].SDC, p[1].SDC
		if lo > hi {
			lo, hi = hi, lo
		}
		return g.SDC >= lo-1e-9 && g.SDC <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarginMatchesPaper(t *testing.T) {
	// The paper: 2,000 samples give a 2.88% margin at 99% confidence.
	got := Margin(2000, 0.99)
	if math.Abs(got-0.0288) > 0.0002 {
		t.Fatalf("margin(2000, 99%%) = %.4f, want ~0.0288", got)
	}
	if SamplesFor(0.0288, 0.99) < 1900 || SamplesFor(0.0288, 0.99) > 2100 {
		t.Fatalf("SamplesFor inverse: %d", SamplesFor(0.0288, 0.99))
	}
	if Margin(0, 0.99) != 1 {
		t.Fatal("degenerate margin")
	}
	if Margin(100, 0.95) >= Margin(100, 0.99) {
		t.Fatal("higher confidence must widen the margin")
	}
}

// TestZPinnedQuantiles pins the inverse-normal quantiles against the
// standard table values the old step function only approximated at
// three points — stratified allocation solves for sample counts from
// these, so they must be real quantiles at every level.
func TestZPinnedQuantiles(t *testing.T) {
	for _, tc := range []struct{ conf, z float64 }{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
		{0.999, 3.2905},
	} {
		if got := Z(tc.conf); math.Abs(got-tc.z) > 1e-4 {
			t.Errorf("Z(%v) = %.5f, want %.4f", tc.conf, got, tc.z)
		}
	}
	// Monotone in confidence, including levels between the old steps.
	prev := 0.0
	for _, c := range []float64{0.90, 0.92, 0.95, 0.97, 0.99, 0.995, 0.999} {
		z := Z(c)
		if z <= prev {
			t.Fatalf("Z not monotone at %v: %v <= %v", c, z, prev)
		}
		prev = z
	}
	// Out-of-range levels clamp instead of returning NaN/Inf.
	if z := Z(-1); math.Abs(z-Z(0.90)) > 1e-12 {
		t.Errorf("Z(-1) = %v, want the 0.90 clamp", z)
	}
	if z := Z(1); math.IsInf(z, 0) || math.IsNaN(z) || z < Z(0.999) {
		t.Errorf("Z(1) = %v, want a large finite quantile", z)
	}
}

// TestWeightedDegenerate: reweighting must not divide by zero or
// silently bias on degenerate weight vectors.
func TestWeightedDegenerate(t *testing.T) {
	// All-zero bit weights: no structure contributes, the split is zero.
	if got := Weighted([]Split{{SDC: 1}, {Crash: 1}}, []int{0, 0}); got != (Split{}) {
		t.Fatalf("zero-weight Weighted = %+v, want zero", got)
	}
	// Empty inputs are a valid (empty) combination.
	if got := Weighted(nil, nil); got != (Split{}) {
		t.Fatalf("empty Weighted = %+v", got)
	}
	// A parts/bits length mismatch is a programming error and must fail
	// loudly — a silent truncation would misweight every structure.
	defer func() {
		if recover() == nil {
			t.Fatal("Weighted must panic on a parts/bits length mismatch")
		}
	}()
	Weighted([]Split{{SDC: 1}}, []int{1, 2})
}

// TestSplitCursorDegenerate: the streaming aggregation path must handle
// zero-record campaigns and agree with the in-memory path.
func TestSplitCursorDegenerate(t *testing.T) {
	st, err := results.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	empty := results.Key{Layer: "soft", Target: "t", Seed: 1}
	if err := st.Save(empty, nil); err != nil {
		t.Fatal(err)
	}
	c, ok, err := st.Cursor(empty, results.Filter{})
	if err != nil || !ok {
		t.Fatalf("cursor: ok=%v err=%v", ok, err)
	}
	defer c.Close()
	got, err := SplitCursor(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != (Split{}) {
		t.Fatalf("empty campaign split = %+v, want zero", got)
	}

	full := results.Key{Layer: "soft", Target: "t", Seed: 2}
	recs := []results.Record{
		{Index: 0, Outcome: results.SDC},
		{Index: 1, Outcome: results.Masked},
	}
	if err := st.Save(full, recs); err != nil {
		t.Fatal(err)
	}
	c2, _, err := st.Cursor(full, results.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got2, err := SplitCursor(c2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != SplitRecords(recs) {
		t.Fatalf("cursor split %+v != record split %+v", got2, SplitRecords(recs))
	}
}

// TestStratifiedDegenerate: the reweighted estimators must stay finite
// and unbiased on zero-row strata, single-outcome strata, and empty
// partitions.
func TestStratifiedDegenerate(t *testing.T) {
	if got := StratifiedSplit(nil); got != (Split{}) {
		t.Fatalf("empty partition = %+v", got)
	}
	if hw := StratifiedHalfWidth(nil, 0.99); hw != 1 {
		t.Fatalf("empty partition half-width = %v, want worst case 1", hw)
	}

	// A zero-row stratum contributes nothing to the estimate but keeps
	// the half-width wide (it is unmeasured, not zero).
	strata := []Stratum{
		{Size: 100, Tally: tallyOf(50, 10, results.SDC)},
		{Size: 100}, // unsampled
	}
	est := StratifiedSplit(strata)
	if !almost(est.SDC, 0.5*(10.0/50)) {
		t.Fatalf("zero-row stratum biased the estimate: %+v", est)
	}
	hw := StratifiedHalfWidth(strata, 0.99)
	if math.IsNaN(hw) || hw < 0.1 {
		t.Fatalf("unsampled stratum must keep the CI wide, got %v", hw)
	}

	// Single-outcome strata: smoothing keeps variance and deviation
	// positive (a frozen zero would stop allocation at a wrong point).
	one := Stratum{Size: 1000, Tally: tallyOf(20, 20, results.Masked)}
	if d := StratumDev(one); d <= 0 || math.IsNaN(d) {
		t.Fatalf("single-outcome deviation = %v", d)
	}
	hw2 := StratifiedHalfWidth([]Stratum{one}, 0.99)
	if hw2 <= 0 || math.IsNaN(hw2) {
		t.Fatalf("single-outcome half-width = %v", hw2)
	}

	// Fully enumerated pool: only the pool-vs-truth residual remains,
	// which shrinks with pool size.
	exact := []Stratum{{Size: 40, Tally: tallyOf(40, 8, results.Crash)}}
	big := []Stratum{{Size: 4000, Tally: tallyOf(4000, 800, results.Crash)}}
	if StratifiedHalfWidth(big, 0.99) >= StratifiedHalfWidth(exact, 0.99) {
		t.Fatal("exhausting a larger pool must tighten the bound")
	}

	// Half-width tightens as strata fill in.
	loose := []Stratum{{Size: 10000, Tally: tallyOf(20, 10, results.SDC)}}
	tight := []Stratum{{Size: 10000, Tally: tallyOf(2000, 1000, results.SDC)}}
	if StratifiedHalfWidth(tight, 0.99) >= StratifiedHalfWidth(loose, 0.99) {
		t.Fatal("more samples must tighten the half-width")
	}
}

// tallyOf builds an n-record tally with k outcomes of class o and the
// rest Masked (or all o when o is Masked).
func tallyOf(n, k int, o results.Outcome) results.Tally {
	var t results.Tally
	t.N = n
	t.Outcomes[o] = k
	if o != results.Masked {
		t.Outcomes[results.Masked] = n - k
	} else {
		t.Outcomes[o] = n
	}
	return t
}

// TestStratifiedMatchesUniformOnOneStratum: with a single stratum the
// reweighted estimate degenerates to the plain split — the unbiasedness
// anchor every multi-stratum case reduces to.
func TestStratifiedMatchesUniformOnOneStratum(t *testing.T) {
	tl := tallyOf(200, 37, results.SDC)
	got := StratifiedSplit([]Stratum{{Size: 5000, Tally: tl}})
	if want := SplitOf(tl); !almost(got.SDC, want.SDC) || !almost(got.Masked, want.Masked) {
		t.Fatalf("one-stratum estimate %+v != split %+v", got, want)
	}
}

func TestOppositePairs(t *testing.T) {
	a := []float64{3, 2, 1}
	b := []float64{1, 2, 3}
	if OppositePairs(a, b) != 3 {
		t.Fatal("fully reversed ranking")
	}
	if OppositePairs(a, a) != 0 {
		t.Fatal("identical ranking")
	}
	if TotalPairs(10) != 45 {
		t.Fatal("C(10,2)")
	}
	// Ties are not opposite.
	if OppositePairs([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("ties")
	}
}

func TestDominantEffectFlips(t *testing.T) {
	a := []Split{{SDC: 0.3, Crash: 0.1}, {SDC: 0.1, Crash: 0.3}}
	b := []Split{{SDC: 0.1, Crash: 0.3}, {SDC: 0.1, Crash: 0.3}}
	if DominantEffectFlips(a, b) != 1 {
		t.Fatal("one flip expected")
	}
}

func TestRPVF(t *testing.T) {
	pvf := map[micro.FPM]Split{
		micro.FPMWD:  {SDC: 0.6},
		micro.FPMWOI: {Crash: 0.8},
		micro.FPMWI:  {Crash: 0.9},
	}
	dist := map[micro.FPM]float64{
		micro.FPMWD: 0.25, micro.FPMWOI: 0.15, micro.FPMWI: 0.10,
		micro.FPMESC: 0.50, // half the visible faults escape: ignored
	}
	got := RPVF(pvf, dist)
	// Weights renormalize over 0.5: WD 0.5, WOI 0.3, WI 0.2.
	if !almost(got.SDC, 0.30) || !almost(got.Crash, 0.8*0.3+0.9*0.2) {
		t.Fatalf("rPVF: %+v", got)
	}
	if RPVF(pvf, map[micro.FPM]float64{}).Total() != 0 {
		t.Fatal("empty distribution")
	}
}

// TestDegenerateInputs: ranking and correlation estimators must answer
// 0 — never NaN, never panic — on mismatched-length, empty, and
// zero-variance inputs, since stored campaigns of different vintages
// can legitimately produce vectors of different lengths.
func TestDegenerateInputs(t *testing.T) {
	short := []float64{1, 2}
	long := []float64{3, 2, 1}
	if OppositePairs(short, long) != 0 || OppositePairs(long, short) != 0 {
		t.Error("mismatched lengths must count 0 opposite pairs")
	}
	if OppositePairs(nil, nil) != 0 {
		t.Error("empty inputs")
	}
	if DominantEffectFlips([]Split{{SDC: 1}}, nil) != 0 {
		t.Error("mismatched split lengths must count 0 flips")
	}
	if DominantEffectFlips(nil, nil) != 0 {
		t.Error("empty split inputs")
	}
	for _, tc := range [][2][]float64{
		{short, long},     // mismatched lengths
		{nil, nil},        // empty
		{{1, 1, 1}, long}, // zero variance left
		{long, {2, 2, 2}}, // zero variance right
		{{5, 5}, {7, 7}},  // zero variance both
	} {
		if c := Correlation(tc[0], tc[1]); c != 0 {
			t.Errorf("Correlation(%v, %v) = %v, want 0", tc[0], tc[1], c)
		}
		if math.IsNaN(Correlation(tc[0], tc[1])) {
			t.Errorf("Correlation(%v, %v) is NaN", tc[0], tc[1])
		}
	}
}

func TestSplitOf(t *testing.T) {
	var tl results.Tally
	if SplitOf(tl) != (Split{}) {
		t.Fatal("empty tally must give a zero split")
	}
	recs := []results.Record{
		{Index: 0, Outcome: results.Masked},
		{Index: 1, Outcome: results.SDC},
		{Index: 2, Outcome: results.Crash},
		{Index: 3, Outcome: results.SDC},
	}
	got := SplitRecords(recs)
	if !almost(got.SDC, 0.5) || !almost(got.Crash, 0.25) || !almost(got.Masked, 0.25) {
		t.Fatalf("split %+v", got)
	}
	if !almost(got.Total(), results.TallyOf(recs).Failures()) {
		t.Fatal("Split.Total must agree with Tally.Failures")
	}
}

func TestFPMDistFromTallies(t *testing.T) {
	var a, b results.Tally
	a.N, b.N = 10, 10
	a.FPM[micro.FPMWD] = 4
	b.FPM[micro.FPMWI] = 2
	// Mismatched parallel slices are invalid: nil, not a panic.
	if FPMDist([]results.Tally{a, b}, []int{8}) != nil {
		t.Fatal("length mismatch must yield nil")
	}
	dist := FPMDist([]results.Tally{a, b}, []int{8, 8})
	if !almost(dist[micro.FPMWD]+dist[micro.FPMWI], 1) {
		t.Fatalf("dist must normalize: %v", dist)
	}
	if !almost(dist[micro.FPMWD], 4.0/6) {
		t.Fatalf("WD share %v", dist[micro.FPMWD])
	}
	// All-zero tallies: an empty (but non-nil-safe) distribution.
	if d := FPMDist([]results.Tally{{}, {}}, []int{8, 8}); len(d) != 0 {
		t.Fatalf("no visible faults must give an empty dist: %v", d)
	}
}

func TestRankOrderAndCorrelation(t *testing.T) {
	v := []float64{0.2, 0.9, 0.5}
	order := RankOrder(v)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("rank: %v", order)
	}
	if c := Correlation(v, v); !almost(c, 1) {
		t.Fatalf("self correlation %f", c)
	}
	neg := []float64{0.9, 0.2, 0.5}
	if c := Correlation(v, neg); c >= 0 {
		t.Fatalf("want negative correlation, got %f", c)
	}
	if Correlation([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("zero variance")
	}
}
