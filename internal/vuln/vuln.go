// Package vuln implements the vulnerability arithmetic of the study:
// statistical error margins for fault sampling, bit-weighted (FIT-style)
// aggregation of per-structure AVFs, the refined-PVF (rPVF) combination,
// and the opposite-ranking analysis behind the paper's Table III. Every
// estimator is a pure function of per-injection record streams (see
// internal/results): tallies in, aggregates out, so stored campaigns
// can be re-aggregated and re-weighted without re-injection.
package vuln

import (
	"math"
	"sort"

	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// Split is a vulnerability measurement broken into the paper's fault
// effect classes, each as a fraction of injected faults.
type Split struct {
	SDC      float64
	Crash    float64
	Detected float64
	Masked   float64
}

// Total is the vulnerability: SDC + Crash. Detected faults are treated
// as recoverable (excluded), following the paper's case study.
func (s Split) Total() float64 { return s.SDC + s.Crash }

// Add returns s + o (used with pre-scaled weights).
func (s Split) Add(o Split) Split {
	return Split{s.SDC + o.SDC, s.Crash + o.Crash, s.Detected + o.Detected, s.Masked + o.Masked}
}

// Scale returns s scaled by w.
func (s Split) Scale(w float64) Split {
	return Split{s.SDC * w, s.Crash * w, s.Detected * w, s.Masked * w}
}

// SplitOf converts a record-stream tally into the fault-effect split:
// the pure function from records to the fractions every report prints.
func SplitOf(t results.Tally) Split {
	if t.N == 0 {
		return Split{}
	}
	f := func(o results.Outcome) float64 { return float64(t.Outcomes[o]) / float64(t.N) }
	return Split{
		SDC: f(results.SDC), Crash: f(results.Crash),
		Detected: f(results.Detected), Masked: f(results.Masked),
	}
}

// SplitRecords aggregates a record stream directly into a split.
func SplitRecords(recs []results.Record) Split {
	return SplitOf(results.TallyOf(recs))
}

// SplitCursor aggregates a stored campaign through the streaming
// columnar path — o(n) memory, only the aggregation columns decoded —
// and is bit-identical to SplitRecords over the cursor's records.
func SplitCursor(c *results.Cursor) (Split, error) {
	t, err := c.Tally()
	if err != nil {
		return Split{}, err
	}
	return SplitOf(t), nil
}

// FPMDist computes the bit-weighted fault-propagation-model
// distribution from per-structure record tallies (the paper's Fig. 6):
// the probability that a visible hardware fault manifests as each
// model, ESC included. tallies and bits are parallel slices; a
// mismatch yields nil.
func FPMDist(tallies []results.Tally, bits []int) map[micro.FPM]float64 {
	if len(tallies) != len(bits) {
		return nil
	}
	weighted := make(map[micro.FPM]float64)
	var total float64
	for i, t := range tallies {
		if t.N == 0 {
			continue
		}
		w := float64(bits[i])
		for m := micro.FPM(1); m < micro.NumFPM; m++ {
			p := float64(t.FPM[m]) / float64(t.N)
			weighted[m] += w * p
			total += w * p
		}
	}
	if total > 0 {
		//lint:ordered per-key normalization; each entry is divided independently, no cross-iteration accumulation
		for m := range weighted {
			weighted[m] /= total
		}
	}
	return weighted
}

// Weighted combines per-structure splits using bit counts as weights:
// the AVF analogue of summing per-structure FIT rates, so that a 2MB L2
// outweighs a 1KB load/store queue exactly as it does in silicon.
func Weighted(parts []Split, bits []int) Split {
	if len(parts) != len(bits) {
		panic("vuln.Weighted: length mismatch")
	}
	var total float64
	for _, b := range bits {
		total += float64(b)
	}
	var out Split
	if total == 0 {
		return out
	}
	for i, p := range parts {
		out = out.Add(p.Scale(float64(bits[i]) / total))
	}
	return out
}

// Z returns the two-sided normal quantile for a confidence level: the
// z with P(|N(0,1)| <= z) = confidence. It evaluates the inverse normal
// CDF properly (Acklam's rational approximation, |relative error| <
// 1.2e-9) instead of the old four-step lookup, because stratified
// allocation solves for sample counts from z and a coarse quantile
// would mis-size every round. Confidence is clamped to [0.90,
// 1 - 1e-12]: levels below the old default branch keep its value, and
// the top clamp keeps the result finite.
func Z(confidence float64) float64 {
	if confidence < 0.90 {
		confidence = 0.90
	}
	if confidence > 1-1e-12 {
		confidence = 1 - 1e-12
	}
	return invNorm((1 + confidence) / 2)
}

// zFor is the internal spelling Margin/SamplesFor always used.
func zFor(confidence float64) float64 { return Z(confidence) }

// invNorm is Acklam's rational approximation to the inverse of the
// standard normal CDF, defined for p in (0, 1).
func invNorm(p float64) float64 {
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return invNormTail(q)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -invNormTail(q)
	default:
		q := p - 0.5
		r := q * q
		return (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-
			2.759285104469687e+02)*r+1.383577518672690e+02)*r-
			3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-
				1.556989798598866e+02)*r+6.680131188771972e+01)*r-
				1.328068155288572e+01)*r + 1)
	}
}

// invNormTail evaluates the lower-tail branch at q = sqrt(-2 ln p).
func invNormTail(q float64) float64 {
	return (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-
		2.400758277161838e+00)*q-2.549732539343734e+00)*q+
		4.374664141464968e+00)*q + 2.938163982698783e+00) /
		((((7.784695709041462e-03*q+3.224671290700398e-01)*q+
			2.445134137142996e+00)*q + 3.754408661907416e+00)*q + 1)
}

// Margin returns the worst-case (p = 0.5) sampling error margin for n
// uniform fault samples at the given confidence, per the statistical
// fault sampling model of Leveugle et al. — the paper's 2,000 samples
// give 2.88% at 99% confidence.
func Margin(n int, confidence float64) float64 {
	if n <= 0 {
		return 1
	}
	return zFor(confidence) * 0.5 / math.Sqrt(float64(n))
}

// SamplesFor inverts Margin: the sample count needed for margin e.
func SamplesFor(e, confidence float64) int {
	z := zFor(confidence)
	return int(math.Ceil(z * z * 0.25 / (e * e)))
}

// Stratum is one equivalence class of a stratified campaign's fault-site
// pool: its site count (the reweighting weight numerator) and the tally
// of the injections performed inside it. Tally.N <= Size always; a
// stratum with Size > 0 but Tally.N == 0 has not been piloted yet and
// contributes its worst-case variance to the half-width (forcing the
// allocator to sample it) while contributing nothing to the point
// estimate.
type Stratum struct {
	Size  int
	Tally results.Tally
	// Resolved marks a stratum classified exhaustively by the static
	// demanded-bits analysis: every one of its Size sites is provably
	// Masked, its tally covers the whole stratum with zero injections,
	// and it carries exactly zero sampling variance — the estimator
	// treats it as certain mass and the Neyman allocator never assigns
	// it another sample.
	Resolved bool
}

// stratWeights returns W_h = Size_h / M (each stratum's share of the
// pool) and the pool size M. Empty strata weigh zero.
func stratWeights(strata []Stratum) ([]float64, int) {
	total := 0
	for _, s := range strata {
		total += s.Size
	}
	w := make([]float64, len(strata))
	if total == 0 {
		return w, 0
	}
	for i, s := range strata {
		w[i] = float64(s.Size) / float64(total)
	}
	return w, total
}

// StratifiedSplit is the unbiased reweighted estimate of a stratified
// campaign: est = sum over strata of W_h * p̂_h, with W_h the stratum's
// pool share and p̂_h its within-stratum outcome fraction. Because the
// pool is an i.i.d. uniform draw from the fault space, the sites of one
// stratum are (in pool order) an i.i.d. sample of that stratum, so
// injecting any prefix of them estimates p_h without bias and the
// weighted sum estimates the uniform-sampling quantity the paper
// reports.
func StratifiedSplit(strata []Stratum) Split {
	w, _ := stratWeights(strata)
	var out Split
	for i, s := range strata {
		out = out.Add(SplitOf(s.Tally).Scale(w[i]))
	}
	return out
}

// stratumVar is the estimated variance of one stratum's outcome-o
// proportion estimator: Laplace-smoothed p̃(1-p̃)/n (the smoothing keeps
// single-outcome strata from reporting an impossible zero variance and
// freezing allocation at a wrong point estimate), with the finite-
// population correction (1 - n/M) — a fully enumerated stratum has no
// sampling error left. An unsampled stratum reports the worst case.
func stratumVar(s Stratum, o results.Outcome) float64 {
	if s.Resolved {
		return 0
	}
	n := float64(s.Tally.N)
	if s.Tally.N <= 0 {
		if s.Size == 0 {
			return 0
		}
		return 0.25
	}
	p := (float64(s.Tally.Outcomes[o]) + 0.5) / (n + 1)
	v := p * (1 - p) / n
	if s.Size > 0 {
		fpc := 1 - n/float64(s.Size)
		if fpc < 0 {
			fpc = 0
		}
		v *= fpc
	}
	return v
}

// StratumDev is the estimated within-stratum standard deviation driving
// Neyman allocation: sqrt of the largest smoothed p̃(1-p̃) over the
// outcome classes (the binding class for the max-based half-width). An
// unsampled stratum reports the worst case 0.5.
func StratumDev(s Stratum) float64 {
	if s.Resolved {
		return 0
	}
	if s.Tally.N <= 0 {
		return 0.5
	}
	n := float64(s.Tally.N)
	best := 0.0
	for o := results.Outcome(0); o < results.NumOutcomes; o++ {
		p := (float64(s.Tally.Outcomes[o]) + 0.5) / (n + 1)
		if v := p * (1 - p); v > best {
			best = v
		}
	}
	return math.Sqrt(best)
}

// StratifiedHalfWidth is the z-scaled CI half-width of the stratified
// estimator, maximized over the four outcome classes:
//
//	max_o z * sqrt( sum_h W_h^2 * var_h(o)  +  p̃_o(1-p̃_o)/M )
//
// The first term is the within-pool stratified sampling variance (with
// per-stratum smoothing and finite-population correction); the second
// charges the pool itself — the pool of M sites is an M-sample uniform
// estimate of the true fault space, so even enumerating it exhaustively
// leaves that residual. Including it keeps the bound honest against the
// uniform-sampling margin convention it is compared to.
func StratifiedHalfWidth(strata []Stratum, confidence float64) float64 {
	w, m := stratWeights(strata)
	if m == 0 {
		return 1
	}
	pooled := StratifiedSplit(strata)
	classes := [results.NumOutcomes]float64{
		results.Masked: pooled.Masked, results.SDC: pooled.SDC,
		results.Crash: pooled.Crash, results.Detected: pooled.Detected,
	}
	worst := 0.0
	for o := results.Outcome(0); o < results.NumOutcomes; o++ {
		v := 0.0
		for i, s := range strata {
			v += w[i] * w[i] * stratumVar(s, o)
		}
		p := (classes[o]*float64(m) + 0.5) / (float64(m) + 1)
		v += p * (1 - p) / float64(m)
		if v > worst {
			worst = v
		}
	}
	return Z(confidence) * math.Sqrt(worst)
}

// RPVF computes the refined PVF: per-FPM PVF splits combined with the
// HVF-measured FPM distribution. The ESC share cannot be modelled at
// the architecture level (its defining property is that it never
// reaches the program flow), so weights renormalize over WD/WOI/WI —
// exactly the blind spot the paper identifies.
func RPVF(pvf map[micro.FPM]Split, dist map[micro.FPM]float64) Split {
	var wsum float64
	for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
		wsum += dist[m]
	}
	var out Split
	if wsum == 0 {
		return out
	}
	for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
		out = out.Add(pvf[m].Scale(dist[m] / wsum))
	}
	return out
}

// OppositePairs counts benchmark pairs (i<j) that the two measures rank
// in strictly opposite order — the paper's headline evidence that
// higher-level measurements mislead (13 of 45 pairs in Fig. 4).
// Mismatched-length inputs are not a valid comparison and count 0.
func OppositePairs(a, b []float64) int {
	if len(a) != len(b) {
		return 0
	}
	n := 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			if (a[i]-a[j])*(b[i]-b[j]) < 0 {
				n++
			}
		}
	}
	return n
}

// TotalPairs returns C(n,2).
func TotalPairs(n int) int { return n * (n - 1) / 2 }

// DominantEffectFlips counts benchmarks whose dominant fault-effect
// class (SDC vs Crash) differs between the two measures — the paper's
// "Effect" columns in Table III. Mismatched-length inputs count 0.
func DominantEffectFlips(a, b []Split) int {
	if len(a) != len(b) {
		return 0
	}
	n := 0
	for i := range a {
		da := a[i].SDC > a[i].Crash
		db := b[i].SDC > b[i].Crash
		if da != db {
			n++
		}
	}
	return n
}

// RankOrder returns benchmark indices sorted by descending value
// (reporting convenience).
func RankOrder(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	return idx
}

// Correlation returns the Pearson correlation of two measurement
// vectors (used to quantify cross-layer agreement). Mismatched-length,
// empty and zero-variance inputs return 0 rather than NaN.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
