// Package vuln implements the vulnerability arithmetic of the study:
// statistical error margins for fault sampling, bit-weighted (FIT-style)
// aggregation of per-structure AVFs, the refined-PVF (rPVF) combination,
// and the opposite-ranking analysis behind the paper's Table III. Every
// estimator is a pure function of per-injection record streams (see
// internal/results): tallies in, aggregates out, so stored campaigns
// can be re-aggregated and re-weighted without re-injection.
package vuln

import (
	"math"
	"sort"

	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// Split is a vulnerability measurement broken into the paper's fault
// effect classes, each as a fraction of injected faults.
type Split struct {
	SDC      float64
	Crash    float64
	Detected float64
	Masked   float64
}

// Total is the vulnerability: SDC + Crash. Detected faults are treated
// as recoverable (excluded), following the paper's case study.
func (s Split) Total() float64 { return s.SDC + s.Crash }

// Add returns s + o (used with pre-scaled weights).
func (s Split) Add(o Split) Split {
	return Split{s.SDC + o.SDC, s.Crash + o.Crash, s.Detected + o.Detected, s.Masked + o.Masked}
}

// Scale returns s scaled by w.
func (s Split) Scale(w float64) Split {
	return Split{s.SDC * w, s.Crash * w, s.Detected * w, s.Masked * w}
}

// SplitOf converts a record-stream tally into the fault-effect split:
// the pure function from records to the fractions every report prints.
func SplitOf(t results.Tally) Split {
	if t.N == 0 {
		return Split{}
	}
	f := func(o results.Outcome) float64 { return float64(t.Outcomes[o]) / float64(t.N) }
	return Split{
		SDC: f(results.SDC), Crash: f(results.Crash),
		Detected: f(results.Detected), Masked: f(results.Masked),
	}
}

// SplitRecords aggregates a record stream directly into a split.
func SplitRecords(recs []results.Record) Split {
	return SplitOf(results.TallyOf(recs))
}

// SplitCursor aggregates a stored campaign through the streaming
// columnar path — o(n) memory, only the aggregation columns decoded —
// and is bit-identical to SplitRecords over the cursor's records.
func SplitCursor(c *results.Cursor) (Split, error) {
	t, err := c.Tally()
	if err != nil {
		return Split{}, err
	}
	return SplitOf(t), nil
}

// FPMDist computes the bit-weighted fault-propagation-model
// distribution from per-structure record tallies (the paper's Fig. 6):
// the probability that a visible hardware fault manifests as each
// model, ESC included. tallies and bits are parallel slices; a
// mismatch yields nil.
func FPMDist(tallies []results.Tally, bits []int) map[micro.FPM]float64 {
	if len(tallies) != len(bits) {
		return nil
	}
	weighted := make(map[micro.FPM]float64)
	var total float64
	for i, t := range tallies {
		if t.N == 0 {
			continue
		}
		w := float64(bits[i])
		for m := micro.FPM(1); m < micro.NumFPM; m++ {
			p := float64(t.FPM[m]) / float64(t.N)
			weighted[m] += w * p
			total += w * p
		}
	}
	if total > 0 {
		for m := range weighted {
			weighted[m] /= total
		}
	}
	return weighted
}

// Weighted combines per-structure splits using bit counts as weights:
// the AVF analogue of summing per-structure FIT rates, so that a 2MB L2
// outweighs a 1KB load/store queue exactly as it does in silicon.
func Weighted(parts []Split, bits []int) Split {
	if len(parts) != len(bits) {
		panic("vuln.Weighted: length mismatch")
	}
	var total float64
	for _, b := range bits {
		total += float64(b)
	}
	var out Split
	if total == 0 {
		return out
	}
	for i, p := range parts {
		out = out.Add(p.Scale(float64(bits[i]) / total))
	}
	return out
}

// zFor maps confidence levels to normal quantiles.
func zFor(confidence float64) float64 {
	switch {
	case confidence >= 0.999:
		return 3.2905
	case confidence >= 0.99:
		return 2.5758
	case confidence >= 0.95:
		return 1.9600
	default:
		return 1.6449
	}
}

// Margin returns the worst-case (p = 0.5) sampling error margin for n
// uniform fault samples at the given confidence, per the statistical
// fault sampling model of Leveugle et al. — the paper's 2,000 samples
// give 2.88% at 99% confidence.
func Margin(n int, confidence float64) float64 {
	if n <= 0 {
		return 1
	}
	return zFor(confidence) * 0.5 / math.Sqrt(float64(n))
}

// SamplesFor inverts Margin: the sample count needed for margin e.
func SamplesFor(e, confidence float64) int {
	z := zFor(confidence)
	return int(math.Ceil(z * z * 0.25 / (e * e)))
}

// RPVF computes the refined PVF: per-FPM PVF splits combined with the
// HVF-measured FPM distribution. The ESC share cannot be modelled at
// the architecture level (its defining property is that it never
// reaches the program flow), so weights renormalize over WD/WOI/WI —
// exactly the blind spot the paper identifies.
func RPVF(pvf map[micro.FPM]Split, dist map[micro.FPM]float64) Split {
	var wsum float64
	for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
		wsum += dist[m]
	}
	var out Split
	if wsum == 0 {
		return out
	}
	for _, m := range []micro.FPM{micro.FPMWD, micro.FPMWOI, micro.FPMWI} {
		out = out.Add(pvf[m].Scale(dist[m] / wsum))
	}
	return out
}

// OppositePairs counts benchmark pairs (i<j) that the two measures rank
// in strictly opposite order — the paper's headline evidence that
// higher-level measurements mislead (13 of 45 pairs in Fig. 4).
// Mismatched-length inputs are not a valid comparison and count 0.
func OppositePairs(a, b []float64) int {
	if len(a) != len(b) {
		return 0
	}
	n := 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			if (a[i]-a[j])*(b[i]-b[j]) < 0 {
				n++
			}
		}
	}
	return n
}

// TotalPairs returns C(n,2).
func TotalPairs(n int) int { return n * (n - 1) / 2 }

// DominantEffectFlips counts benchmarks whose dominant fault-effect
// class (SDC vs Crash) differs between the two measures — the paper's
// "Effect" columns in Table III. Mismatched-length inputs count 0.
func DominantEffectFlips(a, b []Split) int {
	if len(a) != len(b) {
		return 0
	}
	n := 0
	for i := range a {
		da := a[i].SDC > a[i].Crash
		db := b[i].SDC > b[i].Crash
		if da != db {
			n++
		}
	}
	return n
}

// RankOrder returns benchmark indices sorted by descending value
// (reporting convenience).
func RankOrder(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	return idx
}

// Correlation returns the Pearson correlation of two measurement
// vectors (used to quantify cross-layer agreement). Mismatched-length,
// empty and zero-variance inputs return 0 rather than NaN.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
