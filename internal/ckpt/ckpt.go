// Package ckpt implements the generic delta-checkpoint chain shared by
// the execution-driven injection engines (internal/inject at the micro
// layer, internal/arch at the architecture layer). A chain is a base
// full snapshot plus per-checkpoint delta records: for both the RAM
// image and the engine's canonically encoded machine-state blob, only
// the 4 KiB chunks whose contents changed since the previous checkpoint
// are stored. Memory is therefore O(base + Σ deltas) instead of
// O(checkpoints × RAM), which is what lets `-snapshots` grow from ~12
// full copies to hundreds of deltas in comparable memory.
//
// The chain answers four questions for an engine:
//
//   - Find(coord): nearest checkpoint at or before a fault coordinate
//     (binary search), replacing the engines' duplicated snapFor.
//   - StateAt/RestoreRAM: delta-walk restore into a worker arena —
//     walking only the chunks with a version between the arena's
//     current checkpoint and the target, instead of full copies.
//   - Probe/StateEqual/RAMEqual: the convergence early-stop test. The
//     engine encodes the faulty machine canonically; bytes-equality
//     against the chain's blob ⟺ the engine's StateEqual, and RAM is
//     compared only on the union of the faulty run's dirty pages and
//     the chain's content-changed pages — sound, because every page
//     outside that union provably equals the restore point's copy in
//     both runs.
//   - Encode/Decode: a colseg-serialized form persisted in the results
//     store, digest-protected, so a warm store (top-up resume or a
//     second process) skips the golden run entirely.
//
// Canonical encoding is the engine's contract: two machine states are
// engine-StateEqual if and only if their encoded blobs are bytes-equal.
// Per-checkpoint aux bytes carry restore-only data excluded from that
// equality (the arch engine's kernel-instruction counter, which its
// convergence test deliberately ignores).
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"

	"vulnstack/internal/mem"
)

// ChunkShift selects the delta granularity: 4 KiB, matching
// mem.PageShift so RAM chunks are exactly tracked pages.
const ChunkShift = 12

const chunkSize = 1 << ChunkShift

// zeroChunk backs reads of never-stored chunks (absent ≡ zero).
var zeroChunk [chunkSize]byte

// Meta identifies a chain and carries the engine's golden-run summary.
type Meta struct {
	// Engine names the owning injector ("micro" or "arch"): a chain
	// restores engine-specific state and is never cross-loaded.
	Engine string
	// Fingerprint keys the chain to the exact campaign configuration —
	// target/seed, machine config, snapshot density, earlystop and
	// decodecache flags, RAM size, format version. Loaders must reject
	// any mismatch and fall back to a cold Prepare.
	Fingerprint string
	// Target and Config are human-readable labels for `results show`.
	Target string
	Config string
	// RAMBytes is the captured RAM size.
	RAMBytes int
	// Golden is the engine-encoded golden-run summary (output bytes,
	// exit code, cycle/instruction counts): everything Prepare would
	// otherwise have to re-run the golden execution to learn.
	Golden []byte
}

// chunkVer is one stored version of one chunk: its contents as of
// checkpoint idx (valid until the next version of the same chunk).
type chunkVer struct {
	idx  int32
	data []byte
}

// deltaSpace is a chunk-versioned byte space: a sequence of full images
// (one per checkpoint) stored as, per chunk, the ascending list of
// checkpoints at which its contents changed. An absent version means
// the chunk has been zero since the base.
type deltaSpace struct {
	chunks  [][]chunkVer
	lens    []int
	perCkpt [][]int32 // chunk indices stored at each checkpoint
	last    []byte    // previous full image, capture-time only
}

func chunkOf(img []byte, c int) []byte {
	lo := c << ChunkShift
	if lo >= len(img) {
		return nil
	}
	hi := lo + chunkSize
	if hi > len(img) {
		hi = len(img)
	}
	return img[lo:hi]
}

func numChunks(n int) int { return (n + chunkSize - 1) >> ChunkShift }

func isZero(b []byte) bool {
	for len(b) >= 8 {
		if string(b[:8]) != "\x00\x00\x00\x00\x00\x00\x00\x00" {
			return false
		}
		b = b[8:]
	}
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// add captures the next checkpoint's full image, storing only changed
// chunks. The base (first) image is compared against all-zeroes.
func (d *deltaSpace) add(img []byte) {
	idx := len(d.lens)
	nc := numChunks(len(img))
	if prev := numChunks(len(d.last)); prev > nc && d.last != nil {
		nc = prev // shrunk tail chunks store empty versions
	}
	for len(d.chunks) < nc {
		d.chunks = append(d.chunks, nil)
	}
	var stored []int32
	for c := 0; c < nc; c++ {
		cur := chunkOf(img, c)
		var changed bool
		if idx == 0 {
			changed = !isZero(cur)
		} else {
			changed = !bytes.Equal(cur, chunkOf(d.last, c))
		}
		if changed {
			d.chunks[c] = append(d.chunks[c], chunkVer{idx: int32(idx), data: append([]byte(nil), cur...)})
			stored = append(stored, int32(c))
		}
	}
	d.lens = append(d.lens, len(img))
	d.perCkpt = append(d.perCkpt, stored)
	d.last = append(d.last[:0], img...)
}

// finish releases the capture-time rolling image.
func (d *deltaSpace) finish() { d.last = nil }

// get returns the contents of chunk c at checkpoint i (zeroes when no
// version is stored; empty beyond the image length).
func (d *deltaSpace) get(i, c int) []byte {
	need := d.lens[i] - c<<ChunkShift
	if need <= 0 {
		return nil
	}
	if need > chunkSize {
		need = chunkSize
	}
	if c < len(d.chunks) {
		vers := d.chunks[c]
		k := sort.Search(len(vers), func(j int) bool { return int(vers[j].idx) > i }) - 1
		if k >= 0 {
			data := vers[k].data
			if len(data) > need {
				data = data[:need]
			}
			return data
		}
	}
	return zeroChunk[:need]
}

// walk visits every chunk index with a stored version in
// (min(from,to), max(from,to)] — a superset of the chunks whose
// contents differ between the two checkpoints. from = -1 covers
// everything up to to. Chunks may be visited more than once.
func (d *deltaSpace) walk(from, to int, visit func(c int)) {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := lo + 1; i <= hi; i++ {
		for _, c := range d.perCkpt[i] {
			visit(int(c))
		}
	}
}

// bytesStored sums the stored version payloads at checkpoint i.
func (d *deltaSpace) bytesStored(i int) int {
	n := 0
	for _, c := range d.perCkpt[i] {
		vers := d.chunks[c]
		k := sort.Search(len(vers), func(j int) bool { return int(vers[j].idx) > i }) - 1
		n += len(vers[k].data)
	}
	return n
}

// Chain is one checkpoint chain: coordinates, probes and aux sidecars
// per checkpoint, plus the RAM and machine-state delta spaces.
type Chain struct {
	Meta   Meta
	coords []uint64
	probes []uint64
	aux    [][]byte
	ram    *deltaSpace
	state  *deltaSpace
}

// New starts an empty chain for capture.
func New(meta Meta) *Chain {
	return &Chain{Meta: meta, ram: &deltaSpace{}, state: &deltaSpace{}}
}

// Add captures one checkpoint: its boundary coordinate (cycle or
// instruction count, strictly ascending), the engine's cheap scalar
// probe of the state, the full RAM image, the canonical machine-state
// blob, and optional restore-only aux bytes.
func (ch *Chain) Add(coord, probe uint64, ram, state, aux []byte) {
	if n := len(ch.coords); n > 0 && coord <= ch.coords[n-1] {
		panic("ckpt: checkpoint coordinates must be strictly ascending")
	}
	ch.coords = append(ch.coords, coord)
	ch.probes = append(ch.probes, probe)
	ch.aux = append(ch.aux, append([]byte(nil), aux...))
	ch.ram.add(ram)
	ch.state.add(state)
}

// Finish releases capture-time buffers once all checkpoints are added.
func (ch *Chain) Finish() { ch.ram.finish(); ch.state.finish() }

// Len returns the number of checkpoints.
func (ch *Chain) Len() int { return len(ch.coords) }

// Coord returns checkpoint i's boundary coordinate.
func (ch *Chain) Coord(i int) uint64 { return ch.coords[i] }

// Probe returns checkpoint i's scalar state probe.
func (ch *Chain) Probe(i int) uint64 { return ch.probes[i] }

// Aux returns checkpoint i's restore-only sidecar bytes (read-only).
func (ch *Chain) Aux(i int) []byte { return ch.aux[i] }

// Find returns the latest checkpoint whose coordinate is <= coord
// (checkpoint 0 — the boot state — when coord precedes every boundary).
func (ch *Chain) Find(coord uint64) int {
	g := sort.Search(len(ch.coords), func(i int) bool { return ch.coords[i] > coord }) - 1
	if g < 0 {
		g = 0
	}
	return g
}

// StateAt materializes checkpoint i's machine-state blob into buf
// (reusing its storage), delta-walking from checkpoint `from` when buf
// still holds from's blob; from = -1 forces a full materialization.
func (ch *Chain) StateAt(i int, buf []byte, from int) []byte {
	d := ch.state
	want := d.lens[i]
	if from < 0 || from >= len(d.lens) || len(buf) != d.lens[from] {
		if cap(buf) < want {
			buf = make([]byte, want)
		}
		buf = buf[:want]
		nc := numChunks(want)
		for c := 0; c < nc; c++ {
			copy(chunkOf(buf, c), d.get(i, c))
		}
		return buf
	}
	if len(buf) < want {
		// Grown region starts zeroed: chunks that stayed zero through
		// the growth have no stored version to walk.
		old := len(buf)
		if cap(buf) < want {
			nb := make([]byte, want)
			copy(nb, buf)
			buf = nb
		} else {
			buf = buf[:want]
			clear(buf[old:])
		}
	} else {
		buf = buf[:want]
	}
	nc := numChunks(want)
	d.walk(from, i, func(c int) {
		if c < nc {
			copy(chunkOf(buf, c), d.get(i, c))
		}
	})
	return buf
}

// RestoreRAM makes m's contents equal checkpoint to's RAM image. The
// caller guarantees m currently equals checkpoint `from` except on m's
// own tracked dirty pages (from = -1 means m is all zeroes, e.g. a
// fresh arena). Only the dirty pages and the chunks with versions
// between the two checkpoints are written; tracking is then re-based.
func (ch *Chain) RestoreRAM(m *mem.Memory, from, to int) {
	for _, p := range m.DirtyPageList() {
		m.SetPage(p, ch.ram.get(to, int(p)))
	}
	ch.ram.walk(from, to, func(c int) {
		m.SetPage(uint32(c), ch.ram.get(to, c))
	})
	m.ResetDirty()
}

// StateEqual reports whether blob is bytes-equal to checkpoint i's
// machine-state blob, compared chunk-wise against the stored versions.
// With a canonical engine encoding this is exactly the engine's
// machine-state equality.
func (ch *Chain) StateEqual(i int, blob []byte) bool {
	d := ch.state
	if len(blob) != d.lens[i] {
		return false
	}
	nc := numChunks(len(blob))
	for c := 0; c < nc; c++ {
		if !bytes.Equal(chunkOf(blob, c), d.get(i, c)) {
			return false
		}
	}
	return true
}

// RAMEqual reports whether m's contents equal checkpoint j's RAM image,
// given that m was restored from checkpoint g and dirty-tracked since.
// Only m's dirty pages and the chain's content-changed pages in (g, j]
// are compared: every other page equals checkpoint g's copy in both
// images, so the comparison is exact, not approximate.
func (ch *Chain) RAMEqual(m *mem.Memory, g, j int) bool {
	for _, p := range m.DirtyPageList() {
		if !bytes.Equal(m.Page(p), ch.ram.get(j, int(p))) {
			return false
		}
	}
	eq := true
	ch.ram.walk(g, j, func(c int) {
		if eq && !bytes.Equal(m.Page(uint32(c)), ch.ram.get(j, c)) {
			eq = false
		}
	})
	return eq
}

// Stats summarizes a chain for display and for the memory criterion:
// the chain's live size is ~BaseBytes + DeltaBytes, not
// checkpoints × (RAM + state).
type Stats struct {
	Checkpoints int
	FirstCoord  uint64
	LastCoord   uint64
	// BaseBytes is the stored size of checkpoint 0 (RAM + state
	// chunks); DeltaBytes the total stored size of all later deltas.
	BaseBytes  int
	DeltaBytes int
	AuxBytes   int
}

// Stats computes the chain's storage summary.
func (ch *Chain) Stats() Stats {
	st := Stats{Checkpoints: len(ch.coords)}
	if len(ch.coords) > 0 {
		st.FirstCoord = ch.coords[0]
		st.LastCoord = ch.coords[len(ch.coords)-1]
		st.BaseBytes = ch.ram.bytesStored(0) + ch.state.bytesStored(0)
	}
	for i := 1; i < len(ch.coords); i++ {
		st.DeltaBytes += ch.ram.bytesStored(i) + ch.state.bytesStored(i)
	}
	for _, a := range ch.aux {
		st.AuxBytes += len(a)
	}
	return st
}

// Fingerprint derives the chain key from the campaign's configuration
// parts. Everything that changes the golden run or the validity of its
// checkpoints — target key, machine config, snapshot density, the
// earlystop/decodecache flags, RAM size, engine, format version — must
// be a part; a loader seeing a different fingerprint must re-Prepare.
func Fingerprint(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x1f")))
	return hex.EncodeToString(h[:16])
}
