package ckpt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"vulnstack/internal/mem"
)

// buildImages generates a sequence of images that mutate a few chunks
// per step (with occasional growth/shrink for the state space), plus a
// mostly-zero start — the shapes the RAM and machine-state planes
// produce.
func buildImages(r *rand.Rand, n, size int, resize bool) [][]byte {
	imgs := make([][]byte, n)
	cur := make([]byte, size)
	// Sparse nonzero start: most chunks stay zero, like a fresh RAM.
	for i := 0; i < size/64; i++ {
		cur[r.Intn(size)] = byte(1 + r.Intn(255))
	}
	for i := range imgs {
		if i > 0 {
			for k := 0; k < 3; k++ {
				cur[r.Intn(len(cur))] ^= byte(1 + r.Intn(255))
			}
			if resize && i%3 == 0 {
				// Alternate growth and shrink across chunk boundaries.
				delta := (r.Intn(3) - 1) * (chunkSize + 17)
				nl := len(cur) + delta
				if nl < 1 {
					nl = 1
				}
				next := make([]byte, nl)
				copy(next, cur)
				cur = next
			}
		}
		imgs[i] = append([]byte(nil), cur...)
	}
	return imgs
}

func chainOf(t *testing.T, ramImgs, stateImgs [][]byte) *Chain {
	t.Helper()
	ch := New(Meta{Engine: "test", RAMBytes: len(ramImgs[0]), Golden: []byte("g")})
	for i := range ramImgs {
		ch.Add(uint64(i*10), uint64(i)*7919, ramImgs[i], stateImgs[i], []byte{byte(i)})
	}
	ch.Finish()
	return ch
}

// TestStateAtMatchesRetainedImages: materializing any checkpoint — full
// or delta-walked from any other checkpoint — must reproduce the exact
// captured image.
func TestStateAtMatchesRetainedImages(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ramImgs := buildImages(r, 12, 4*chunkSize, false)
	stateImgs := buildImages(r, 12, 3*chunkSize+100, true)
	ch := chainOf(t, ramImgs, stateImgs)

	var buf []byte
	for from := -1; from < 12; from++ {
		for to := 0; to < 12; to++ {
			src := -1
			if from >= 0 {
				// Seed the buffer with checkpoint `from` as the delta-walk
				// precondition requires.
				buf = ch.StateAt(from, buf, -1)
				src = from
			}
			buf = ch.StateAt(to, buf, src)
			if !bytes.Equal(buf, stateImgs[to]) {
				t.Fatalf("StateAt(%d) from %d: %d bytes, want %d (content mismatch)",
					to, from, len(buf), len(stateImgs[to]))
			}
		}
	}
}

// TestRestoreRAMMatchesRetainedImages: the dirty-page + delta-walk RAM
// restore must land exactly on the captured image, from any previous
// restore point, with arbitrary writes in between.
func TestRestoreRAMMatchesRetainedImages(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	size := 8 * chunkSize
	ramImgs := buildImages(r, 10, size, false)
	stateImgs := buildImages(r, 10, chunkSize, false)
	ch := chainOf(t, ramImgs, stateImgs)

	m := mem.New(uint64(size))
	m.EnableTracking()
	src := -1
	for trial := 0; trial < 40; trial++ {
		to := r.Intn(10)
		ch.RestoreRAM(m, src, to)
		src = to
		if !bytes.Equal(m.Bytes(), ramImgs[to]) {
			t.Fatalf("trial %d: RestoreRAM(%d) diverged", trial, to)
		}
		// Simulate a faulty run scribbling on tracked memory.
		for k := 0; k < 5; k++ {
			m.Write(uint64(mem.GuardTop+r.Intn(size-mem.GuardTop-8)), 8, r.Uint64())
		}
	}
}

// TestStateEqualAndRAMEqual: equality must hold exactly on the captured
// images and break under any single-byte perturbation.
func TestStateEqualAndRAMEqual(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	size := 4 * chunkSize
	ramImgs := buildImages(r, 6, size, false)
	stateImgs := buildImages(r, 6, 2*chunkSize, false)
	ch := chainOf(t, ramImgs, stateImgs)

	for j := 0; j < 6; j++ {
		if !ch.StateEqual(j, stateImgs[j]) {
			t.Fatalf("StateEqual(%d) false on the captured image", j)
		}
		mut := append([]byte(nil), stateImgs[j]...)
		mut[r.Intn(len(mut))] ^= 1
		if ch.StateEqual(j, mut) {
			t.Fatalf("StateEqual(%d) true on a perturbed image", j)
		}
		if ch.StateEqual(j, stateImgs[j][:len(stateImgs[j])-1]) {
			t.Fatalf("StateEqual(%d) true on a truncated image", j)
		}
	}

	m := mem.New(uint64(size))
	m.EnableTracking()
	src := -1
	for g := 0; g < 5; g++ {
		for j := g + 1; j < 6; j++ {
			// A faulty run whose memory re-equals golden-at-j: restore the
			// arena there (clean), which satisfies RAMEqual's precondition
			// that unchecked pages already match.
			ch.RestoreRAM(m, src, j)
			src = j
			if !ch.RAMEqual(m, g, j) {
				t.Fatalf("RAMEqual(g=%d, j=%d) false on golden content", g, j)
			}
			// Any tracked divergence must be caught: FlipBit dirties the
			// page, putting it in the compared set.
			m.FlipBit(uint64(mem.GuardTop+r.Intn(size-mem.GuardTop)), 0)
			if ch.RAMEqual(m, g, j) {
				t.Fatalf("RAMEqual(g=%d, j=%d) true under a flipped bit", g, j)
			}
		}
	}
}

// TestFindMatchesLinearScan: the binary search must agree with the
// obvious linear reference on every boundary shape.
func TestFindMatchesLinearScan(t *testing.T) {
	cases := [][]uint64{
		{0},
		{0, 10, 20, 30},
		{0, 5, 9},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{3, 17, 200},
	}
	for _, at := range cases {
		ch := New(Meta{})
		for _, a := range at {
			ch.Add(a, 0, nil, nil, nil)
		}
		ch.Finish()
		for coord := uint64(0); coord < at[len(at)-1]+3; coord++ {
			want := 0
			for i, a := range at {
				if a <= coord {
					want = i
				}
			}
			if got := ch.Find(coord); got != want {
				t.Fatalf("coords=%v coord=%d: got %d, want %d", at, coord, got, want)
			}
		}
	}
}

// TestAddRejectsNonAscending: duplicate or regressing coordinates are a
// capture bug, not a tolerated input.
func TestAddRejectsNonAscending(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with a duplicate coordinate must panic")
		}
	}()
	ch := New(Meta{})
	ch.Add(5, 0, nil, nil, nil)
	ch.Add(5, 0, nil, nil, nil)
}

// TestEncodeDecodeRoundTrip: a persisted chain must decode to a chain
// with identical meta, coordinates, probes, aux, and materialized
// images.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ramImgs := buildImages(r, 8, 4*chunkSize, false)
	stateImgs := buildImages(r, 8, 2*chunkSize+57, true)
	ch := chainOf(t, ramImgs, stateImgs)
	ch.Meta.Fingerprint = "abc123"
	ch.Meta.Target = "sha/1/1/false/VSA64"
	ch.Meta.Config = "A72"

	data := ch.Encode()
	meta, err := DecodeMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Engine != ch.Meta.Engine || meta.Fingerprint != ch.Meta.Fingerprint ||
		meta.Target != ch.Meta.Target || meta.Config != ch.Meta.Config ||
		meta.RAMBytes != ch.Meta.RAMBytes || string(meta.Golden) != "g" {
		t.Fatalf("DecodeMeta %+v != %+v", meta, ch.Meta)
	}

	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ch.Len() {
		t.Fatalf("decoded %d checkpoints, want %d", got.Len(), ch.Len())
	}
	for i := 0; i < ch.Len(); i++ {
		if got.Coord(i) != ch.Coord(i) || got.Probe(i) != ch.Probe(i) ||
			!bytes.Equal(got.Aux(i), ch.Aux(i)) {
			t.Fatalf("checkpoint %d index mismatch", i)
		}
		if !bytes.Equal(got.StateAt(i, nil, -1), stateImgs[i]) {
			t.Fatalf("checkpoint %d state mismatch after round trip", i)
		}
	}
	m1 := mem.New(uint64(4 * chunkSize))
	m2 := mem.New(uint64(4 * chunkSize))
	for i := 0; i < ch.Len(); i++ {
		ch.RestoreRAM(m1, i-1, i)
		got.RestoreRAM(m2, i-1, i)
		if !bytes.Equal(m1.Bytes(), m2.Bytes()) || !bytes.Equal(m1.Bytes(), ramImgs[i]) {
			t.Fatalf("checkpoint %d RAM mismatch after round trip", i)
		}
	}
}

// TestDecodeRejectsCorruption: truncation and bit flips anywhere in the
// file must yield ErrChain, never a mis-restored chain. This is the
// robustness contract campaign loaders rely on for their cold-Prepare
// fallback.
func TestDecodeRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ramImgs := buildImages(r, 6, 4*chunkSize, false)
	stateImgs := buildImages(r, 6, chunkSize, false)
	ch := chainOf(t, ramImgs, stateImgs)
	data := ch.Encode()

	if _, err := Decode(data); err != nil {
		t.Fatalf("pristine chain must decode: %v", err)
	}
	// Truncation at a spread of cut points, including mid-header.
	for _, cut := range []int{0, 1, 7, len(data) / 3, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); !errors.Is(err, ErrChain) {
			t.Fatalf("truncated at %d: err=%v, want ErrChain", cut, err)
		}
	}
	// Single bit flips at a spread of offsets.
	for trial := 0; trial < 64; trial++ {
		mut := append([]byte(nil), data...)
		mut[r.Intn(len(mut))] ^= 1 << uint(r.Intn(8))
		if ch2, err := Decode(mut); err == nil {
			// The only acceptable "success" is a flip that left the file
			// semantically identical — impossible for a single bit under
			// the digest unless the flip hit unparsed slack, which colseg
			// does not have. Treat success as failure.
			_ = ch2
			t.Fatalf("trial %d: bit-flipped chain decoded without error", trial)
		} else if !errors.Is(err, ErrChain) {
			t.Fatalf("trial %d: err=%v, want ErrChain", trial, err)
		}
	}
	// Garbage is rejected, not crashed on.
	junk := make([]byte, 512)
	r.Read(junk)
	if _, err := Decode(junk); !errors.Is(err, ErrChain) {
		t.Fatalf("garbage: err=%v, want ErrChain", err)
	}
}

// TestDeltaMemoryScaling: the acceptance criterion that checkpoint
// memory is no longer O(checkpoints × image): a 128-checkpoint chain
// over a sparsely mutating image must store far less than 128 full
// copies — bounded here by the equivalent of 4 full images.
func TestDeltaMemoryScaling(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	size := 64 * chunkSize
	ch := New(Meta{RAMBytes: size})
	cur := make([]byte, size)
	for i := 0; i < size/128; i++ {
		cur[r.Intn(size)] = byte(r.Intn(256))
	}
	state := make([]byte, 2*chunkSize)
	for i := 0; i < 128; i++ {
		// Two chunks of RAM and half the state mutate per checkpoint.
		for k := 0; k < 2; k++ {
			cur[r.Intn(size)] ^= byte(1 + r.Intn(255))
		}
		r.Read(state[:chunkSize])
		ch.Add(uint64(i), 0, cur, state, nil)
	}
	ch.Finish()
	st := ch.Stats()
	if st.Checkpoints != 128 {
		t.Fatalf("checkpoints %d", st.Checkpoints)
	}
	full := 128 * (size + len(state))
	stored := st.BaseBytes + st.DeltaBytes
	if stored >= full/8 {
		t.Fatalf("128 delta checkpoints store %d bytes; full copies would be %d — deltas must save at least 8x", stored, full)
	}
	t.Logf("128 checkpoints: %d bytes stored vs %d full (%.1fx saving)", stored, full, float64(full)/float64(stored))
}

// TestFingerprintSensitivity: any part change must change the
// fingerprint; identical parts must reproduce it.
func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint("micro", "v1", "sha/1/1/false/VSA64", "A72", "snapshots=192", "earlystop=true")
	if base != Fingerprint("micro", "v1", "sha/1/1/false/VSA64", "A72", "snapshots=192", "earlystop=true") {
		t.Fatal("fingerprint not deterministic")
	}
	variants := [][]string{
		{"arch", "v1", "sha/1/1/false/VSA64", "A72", "snapshots=192", "earlystop=true"},
		{"micro", "v2", "sha/1/1/false/VSA64", "A72", "snapshots=192", "earlystop=true"},
		{"micro", "v1", "sha/2/1/false/VSA64", "A72", "snapshots=192", "earlystop=true"},
		{"micro", "v1", "sha/1/1/false/VSA64", "A57", "snapshots=192", "earlystop=true"},
		{"micro", "v1", "sha/1/1/false/VSA64", "A72", "snapshots=12", "earlystop=true"},
		{"micro", "v1", "sha/1/1/false/VSA64", "A72", "snapshots=192", "earlystop=false"},
		// Concatenation ambiguity: moving a character across a part
		// boundary must still change the hash (the separator guarantees).
		{"micro", "v1", "sha/1/1/false/VSA64", "A72s", "napshots=192", "earlystop=true"},
	}
	for i, parts := range variants {
		if Fingerprint(parts...) == base {
			t.Fatalf("variant %d collides with base", i)
		}
	}
}
