package ckpt

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"vulnstack/internal/colseg"
)

// ChainVersion is the persisted-chain format version. It participates
// in the fingerprint (via the engines), so a format bump naturally
// invalidates older persisted chains instead of misdecoding them.
const ChainVersion = 1

// Column ids of the persisted form. The header block (one row) carries
// the meta and a digest of everything after it; the index block (one
// row per checkpoint) the coordinates/probes/lengths/aux; the two delta
// blocks (one row per stored chunk version) the RAM and state spaces.
const (
	colVersion  = 0 // header: uvarint ChainVersion
	colEngine   = 1 // header: blob
	colFP       = 2 // header: blob
	colTarget   = 3 // header: blob
	colConfig   = 4 // header: blob
	colRAMBytes = 5 // header: uvarint
	colGolden   = 6 // header: blob
	colDigest   = 7 // header: blob, sha256 of the following blocks
	colCoord    = 1 // index: uvarint per checkpoint
	colProbe    = 2 // index: uvarint
	colStateLen = 3 // index: uvarint
	colRAMLen   = 4 // index: uvarint
	colAux      = 5 // index: blob
	colCkptIdx  = 1 // delta: uvarint, ascending
	colChunkIdx = 2 // delta: uvarint, ascending within a checkpoint
	colData     = 3 // delta: blob, the chunk contents
)

// ErrChain reports an unusable persisted chain (corrupt, truncated,
// version-mismatched, or digest-failed). Loaders treat every flavor the
// same way — ignore the chain and fall back to a cold Prepare — so one
// sentinel suffices; the wrapped detail is for diagnostics.
var ErrChain = errors.New("ckpt: unusable persisted chain")

// Encode serializes the chain: a header block, an index block, and one
// delta block per space, with the header carrying a sha256 digest of
// the following bytes so bit flips are detected, not misrestored.
func (ch *Chain) Encode() []byte {
	var tail []byte
	n := len(ch.coords)

	idx := colseg.NewBuilder(n)
	idx.Uvarint(colCoord, ch.coords)
	idx.Uvarint(colProbe, ch.probes)
	lens := make([]uint64, n)
	for i := range lens {
		lens[i] = uint64(ch.state.lens[i])
	}
	idx.Uvarint(colStateLen, lens)
	rlens := make([]uint64, n)
	for i := range rlens {
		rlens[i] = uint64(ch.ram.lens[i])
	}
	idx.Uvarint(colRAMLen, rlens)
	idx.Blob(colAux, ch.aux)
	tail = idx.AppendTo(tail)

	tail = appendSpace(tail, ch.ram)
	tail = appendSpace(tail, ch.state)

	digest := sha256.Sum256(tail)
	hdr := colseg.NewBuilder(1)
	hdr.Uvarint(colVersion, []uint64{ChainVersion})
	hdr.Blob(colEngine, [][]byte{[]byte(ch.Meta.Engine)})
	hdr.Blob(colFP, [][]byte{[]byte(ch.Meta.Fingerprint)})
	hdr.Blob(colTarget, [][]byte{[]byte(ch.Meta.Target)})
	hdr.Blob(colConfig, [][]byte{[]byte(ch.Meta.Config)})
	hdr.Uvarint(colRAMBytes, []uint64{uint64(ch.Meta.RAMBytes)})
	hdr.Blob(colGolden, [][]byte{ch.Meta.Golden})
	hdr.Blob(colDigest, [][]byte{digest[:]})
	return append(hdr.AppendTo(nil), tail...)
}

// appendSpace flattens a delta space in (checkpoint, chunk) order.
func appendSpace(dst []byte, d *deltaSpace) []byte {
	rows := 0
	for _, stored := range d.perCkpt {
		rows += len(stored)
	}
	idxs := make([]uint64, 0, rows)
	chunks := make([]uint64, 0, rows)
	data := make([][]byte, 0, rows)
	for i, stored := range d.perCkpt {
		for _, c := range stored {
			vers := d.chunks[c]
			// The version stored at checkpoint i is the one tagged i.
			lo, hi := 0, len(vers)
			for lo < hi {
				mid := (lo + hi) / 2
				if int(vers[mid].idx) < i {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			idxs = append(idxs, uint64(i))
			chunks = append(chunks, uint64(c))
			data = append(data, vers[lo].data)
		}
	}
	b := colseg.NewBuilder(rows)
	b.Uvarint(colCkptIdx, idxs)
	b.Uvarint(colChunkIdx, chunks)
	b.Blob(colData, data)
	return b.AppendTo(dst)
}

// DecodeMeta parses only the header block of a persisted chain —
// enough for fingerprint checks and `results list`/`show` display
// without paying for the delta payload.
func DecodeMeta(data []byte) (Meta, error) {
	hdr, _, err := colseg.Parse(data)
	if err != nil {
		return Meta{}, fmt.Errorf("%w: header: %v", ErrChain, err)
	}
	return parseHeader(hdr)
}

func parseHeader(hdr *colseg.Block) (Meta, error) {
	if hdr.Rows() != 1 {
		return Meta{}, fmt.Errorf("%w: header has %d rows", ErrChain, hdr.Rows())
	}
	ver, err := hdr.Uvarint(colVersion)
	if err != nil {
		return Meta{}, fmt.Errorf("%w: %v", ErrChain, err)
	}
	if ver[0] != ChainVersion {
		return Meta{}, fmt.Errorf("%w: chain version %d, want %d", ErrChain, ver[0], ChainVersion)
	}
	var m Meta
	for _, f := range []struct {
		id  uint8
		dst *string
	}{{colEngine, &m.Engine}, {colFP, &m.Fingerprint}, {colTarget, &m.Target}, {colConfig, &m.Config}} {
		v, err := hdr.Blob(f.id)
		if err != nil {
			return Meta{}, fmt.Errorf("%w: %v", ErrChain, err)
		}
		*f.dst = string(v[0])
	}
	rb, err := hdr.Uvarint(colRAMBytes)
	if err != nil {
		return Meta{}, fmt.Errorf("%w: %v", ErrChain, err)
	}
	m.RAMBytes = int(rb[0])
	g, err := hdr.Blob(colGolden)
	if err != nil {
		return Meta{}, fmt.Errorf("%w: %v", ErrChain, err)
	}
	m.Golden = append([]byte(nil), g[0]...)
	return m, nil
}

// Decode reconstructs a chain from its persisted form, verifying the
// digest over everything after the header. Any failure — truncation,
// bit flips, structural corruption, a format version mismatch — yields
// ErrChain; callers fall back to a cold golden run.
func Decode(data []byte) (*Chain, error) {
	hdr, n, err := colseg.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrChain, err)
	}
	meta, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	tail := data[n:]
	want, err := hdr.Blob(colDigest)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	digest := sha256.Sum256(tail)
	if string(want[0]) != string(digest[:]) {
		return nil, fmt.Errorf("%w: digest mismatch", ErrChain)
	}

	idx, n, err := colseg.Parse(tail)
	if err != nil {
		return nil, fmt.Errorf("%w: index: %v", ErrChain, err)
	}
	tail = tail[n:]
	ch := New(meta)
	nck := idx.Rows()
	if ch.coords, err = idx.Uvarint(colCoord); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	if ch.probes, err = idx.Uvarint(colProbe); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	for i := 1; i < nck; i++ {
		if ch.coords[i] <= ch.coords[i-1] {
			return nil, fmt.Errorf("%w: non-ascending coordinates", ErrChain)
		}
	}
	slens, err := idx.Uvarint(colStateLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	rlens, err := idx.Uvarint(colRAMLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	aux, err := idx.Blob(colAux)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	ch.aux = make([][]byte, nck)
	for i := range aux {
		ch.aux[i] = append([]byte(nil), aux[i]...)
	}

	if ch.ram, tail, err = parseSpace(tail, rlens, meta.RAMBytes); err != nil {
		return nil, err
	}
	if ch.state, _, err = parseSpace(tail, slens, 1<<31); err != nil {
		return nil, err
	}
	return ch, nil
}

// parseSpace reconstructs one delta space from its block. maxLen bounds
// sane image lengths against structural corruption the digest already
// makes unlikely.
func parseSpace(data []byte, lens []uint64, maxLen int) (*deltaSpace, []byte, error) {
	blk, n, err := colseg.Parse(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: delta block: %v", ErrChain, err)
	}
	d := &deltaSpace{
		lens:    make([]int, len(lens)),
		perCkpt: make([][]int32, len(lens)),
	}
	for i, l := range lens {
		if l > uint64(maxLen) {
			return nil, nil, fmt.Errorf("%w: image length %d", ErrChain, l)
		}
		d.lens[i] = int(l)
	}
	idxs, err := blk.Uvarint(colCkptIdx)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	chunks, err := blk.Uvarint(colChunkIdx)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	datas, err := blk.Blob(colData)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrChain, err)
	}
	for r := range idxs {
		i, c := int(idxs[r]), int(chunks[r])
		if i >= len(lens) || c > maxLen>>ChunkShift || len(datas[r]) > chunkSize {
			return nil, nil, fmt.Errorf("%w: delta row %d out of range", ErrChain, r)
		}
		for len(d.chunks) <= c {
			d.chunks = append(d.chunks, nil)
		}
		if vs := d.chunks[c]; len(vs) > 0 && int(vs[len(vs)-1].idx) >= i {
			return nil, nil, fmt.Errorf("%w: non-ascending chunk versions", ErrChain)
		}
		d.chunks[c] = append(d.chunks[c], chunkVer{idx: int32(i), data: append([]byte(nil), datas[r]...)})
		d.perCkpt[i] = append(d.perCkpt[i], int32(c))
	}
	return d, data[n:], nil
}
