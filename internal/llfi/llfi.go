// Package llfi implements software-level (SVF) fault injection at the
// compiler-IR level, mirroring the LLFI tool the paper uses: faults are
// instantaneous single-bit flips in the destination value of a dynamic
// IR instruction, in user code only (the IR has no kernel), and — like
// LLFI, which supports only 64-bit ISAs — the injector runs the 64-bit
// word width exclusively.
package llfi

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"vulnstack/internal/campaign"
	"vulnstack/internal/inject"
	"vulnstack/internal/ir"
	"vulnstack/internal/results"
	"vulnstack/internal/static"
	"vulnstack/internal/tb"
)

// Width is the only word width LLFI-style injection supports (the
// paper notes LLFI cannot target 32-bit ISAs).
const Width = 64

// Campaign prepares SVF injections for one IR module.
type Campaign struct {
	M *ir.Module

	GoldenOut  []byte
	GoldenExit int64
	// GoldenDefs is the number of value-defining dynamic IR
	// instructions: the injection space.
	GoldenDefs uint64
	// GoldenSteps is the total dynamic IR instruction count.
	GoldenSteps uint64

	MemSize int
	Limit   uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int

	// NoEarlyStop disables the dead-definition filter (the zero value
	// keeps it on): a fault in a definition whose value the golden run
	// never read is provably Masked — the corrupted register is
	// overwritten or its frame returns before anything consumes it, so
	// execution is bit-identical to golden — and is classified without
	// running the interpreter at all.
	NoEarlyStop bool
	// usedDefs is the golden def-use bitset (ir.Interp.TrackUse), indexed
	// by dynamic definition sequence number.
	usedDefs []uint64

	// Static enables the bit-precise static resolution pass: faults
	// flipping a bit the interprocedural demanded-bits analysis proves
	// can never influence an observable output (program bytes, exit
	// code, detection, or a crash) are classified Masked without ever
	// preparing an interpreter. Off by default; requires the golden run
	// to have tracked definition sites (it does unless NoDeadDefFilter
	// was set at Prepare time).
	Static bool
	// defSites maps each dynamic definition sequence number from the
	// golden run to its static instruction site (ir.Interp.DefSites).
	defSites []int32
	// irb is the interprocedural demanded-bits result over cp.M.
	irb *static.IRBits

	// NoTB disables the compiled direct-threaded engine for faulty runs
	// (the zero value keeps it on): the module is then interpreted
	// instruction-by-instruction with the fault applied via DefHook.
	// Outcomes are bit-identical either way (the equivalence gate
	// asserts it); golden runs always use the plain interpreter, which
	// the def-use and site tracking requires.
	NoTB     bool
	progOnce sync.Once
	prog     *tb.Prog
}

// PrepareOptions configure the golden run.
type PrepareOptions struct {
	// NoDeadDefFilter skips golden def-use tracking entirely: when the
	// dead-definition filter will be disabled anyway (NoEarlyStop
	// campaigns), paying the tracking overhead on the golden run buys
	// nothing, so the bitset is simply never built. Outcomes are
	// unaffected — deadDef treats a missing bitset as "never dead".
	NoDeadDefFilter bool
}

// Prepare runs the golden execution with default options.
func Prepare(m *ir.Module, memSize int) (*Campaign, error) {
	return PrepareWith(m, memSize, PrepareOptions{})
}

// PrepareWith runs the golden execution.
func PrepareWith(m *ir.Module, memSize int, opts PrepareOptions) (*Campaign, error) {
	ip := ir.NewInterp(m, Width, memSize)
	ip.MaxSteps = 1 << 32
	ip.TrackUse = !opts.NoDeadDefFilter
	ip.TrackSites = ip.TrackUse
	if err := ip.Run("_start"); err != nil {
		return nil, fmt.Errorf("llfi: golden run: %w", err)
	}
	if !ip.Exited {
		return nil, errors.New("llfi: golden run did not exit")
	}
	var used []uint64
	var sites []int32
	var irb *static.IRBits
	if ip.TrackUse {
		used = ip.UsedDefs()
		sites = append([]int32(nil), ip.DefSites()...)
		irb = static.AnalyzeIR(m, "_start", Width)
	}
	return &Campaign{
		M:           m,
		GoldenOut:   append([]byte(nil), ip.Out...),
		GoldenExit:  ip.ExitCode,
		GoldenDefs:  ip.DefSeq,
		GoldenSteps: ip.Steps,
		MemSize:     memSize,
		Limit:       3*ip.Steps + 100000,
		usedDefs:    used,
		defSites:    sites,
		irb:         irb,
	}, nil
}

// Fault selects a dynamic defining instruction and a bit of its result.
type Fault struct {
	Seq uint64
	Bit uint
}

// Sample draws a fault uniformly over the dynamic definition stream.
// Degenerate golden runs with no definitions at all clamp the span to
// one: the single drawn sequence number targets a definition that never
// executes, so the fault provably has no effect (Masked).
func (cp *Campaign) Sample(r *rand.Rand) Fault {
	span := int64(cp.GoldenDefs)
	if span < 1 {
		span = 1
	}
	return Fault{
		Seq: uint64(r.Int63n(span)),
		Bit: uint(r.Intn(Width)),
	}
}

// deadDef reports whether f targets a definition the golden run never
// read: such faults are provably Masked without running.
func (cp *Campaign) deadDef(f Fault) bool {
	if cp.NoEarlyStop || cp.usedDefs == nil {
		return false
	}
	w := int(f.Seq >> 6)
	return w >= len(cp.usedDefs) || cp.usedDefs[w]&(1<<(f.Seq&63)) == 0
}

// StaticMasked reports whether f is provably Masked by the static
// demanded-bits analysis alone: either the fault targets a sequence
// number past the end of the dynamic definition stream (the definition
// never executes), or the flipped bit of the fault's static definition
// site is statically undemanded — no chain of uses can carry it into
// program output, the exit code, a branch, an address, or a syscall
// operand, so the injected run is observably identical to golden.
// Always false when the campaign was prepared without site tracking or
// Static is off.
func (cp *Campaign) StaticMasked(f Fault) bool {
	if !cp.Static || cp.irb == nil {
		return false
	}
	if f.Seq >= cp.GoldenDefs {
		return true
	}
	if f.Seq >= uint64(len(cp.defSites)) {
		return false
	}
	return cp.irb.Masked(int(cp.defSites[f.Seq]), f.Bit)
}

// IRBits exposes the interprocedural demanded-bits result computed at
// Prepare time (nil when site tracking was disabled): the analyze
// surface reports its resolved fraction, and stratified campaigns key
// strata on its per-site verdicts.
func (cp *Campaign) IRBits() *static.IRBits { return cp.irb }

// Run performs one injection and classifies the outcome. It allocates
// a fresh interpreter per call; campaigns use reusable per-worker
// interpreter arenas in RunCampaign instead.
func (cp *Campaign) Run(f Fault) inject.Outcome {
	if cp.StaticMasked(f) || cp.deadDef(f) {
		return inject.Masked
	}
	return cp.inject(ir.NewInterp(cp.M, Width, cp.MemSize), f)
}

// compiled returns the direct-threaded compiled form of cp.M, building
// it once per campaign, or nil when the campaign runs interpreted
// (NoTB, or a module the compiler cannot handle — execution then falls
// back to the interpreter with identical outcomes).
func (cp *Campaign) compiled() *tb.Prog {
	if cp.NoTB {
		return nil
	}
	cp.progOnce.Do(func() {
		// The throwaway interpreter only supplies the global address
		// layout, which is identical for every interpreter over the
		// same module and memory size.
		if p, err := tb.CompileIR(cp.M, ir.NewInterp(cp.M, Width, cp.MemSize)); err == nil {
			cp.prog = p
		}
	})
	return cp.prog
}

// inject runs one fault on a ready (fresh or Reset) interpreter
// through the active engine.
func (cp *Campaign) inject(ip *ir.Interp, f Fault) inject.Outcome {
	if p := cp.compiled(); p != nil {
		return cp.runTB(p, ip, f)
	}
	return cp.runOn(ip, f)
}

// runTB performs one injection via the compiled engine: same
// classification as runOn, with the flip-at-sequence fault inlined in
// the compiled dispatch instead of a per-definition hook closure.
func (cp *Campaign) runTB(p *tb.Prog, ip *ir.Interp, f Fault) inject.Outcome {
	ip.MaxSteps = cp.Limit
	err := p.RunFault(ip, f.Seq, f.Bit)
	switch {
	case err != nil:
		return inject.Crash // bad address, stack overflow, watchdog
	case ip.Detected:
		return inject.Detected
	case ip.Exited && ip.ExitCode == cp.GoldenExit && bytes.Equal(ip.Out, cp.GoldenOut):
		return inject.Masked
	default:
		return inject.SDC
	}
}

// runOn performs one injection on a ready (fresh or Reset) interpreter.
func (cp *Campaign) runOn(ip *ir.Interp, f Fault) inject.Outcome {
	ip.MaxSteps = cp.Limit
	ip.Hook = func(seq uint64, in *ir.Instr, v int64) int64 {
		if seq == f.Seq {
			return v ^ int64(uint64(1)<<f.Bit)
		}
		return v
	}
	err := ip.Run("_start")
	switch {
	case err != nil:
		return inject.Crash // bad address, stack overflow, watchdog
	case ip.Detected:
		return inject.Detected
	case ip.Exited && ip.ExitCode == cp.GoldenExit && bytes.Equal(ip.Out, cp.GoldenOut):
		return inject.Masked
	default:
		return inject.SDC
	}
}

// Tally aggregates SVF outcomes. It is the shared record-stream
// aggregate; SVF() reads it at this layer.
type Tally = results.Tally

// record converts a classified fault into the layer-agnostic form.
func record(f Fault, o inject.Outcome) results.Record {
	return results.Record{
		Layer:   results.LayerSoft,
		Coord:   f.Seq,
		Bit:     int(f.Bit),
		Outcome: o,
	}
}

// RunCampaign performs n injections, fanned across cp.Workers
// goroutines (<= 0: all CPUs). The fault sequence is pre-drawn from the
// seed exactly as the serial loop drew it, so the tally is
// bit-identical for every worker count. progress, when non-nil, is
// called exactly once per injection, serialized and in injection-index
// order; it must not call back into the campaign.
func (cp *Campaign) RunCampaign(n int, seed int64, progress func(i int, r results.Record)) Tally {
	return results.TallyOf(cp.Records(n, 0, seed, progress))
}

// Records executes injections [from, n) of the n-fault sequence
// pre-drawn from seed and returns their records, indexed absolutely.
// Records for [0, from) from an earlier shorter campaign with the same
// key concatenate into exactly a one-shot n-injection record set (the
// top-up resume primitive).
func (cp *Campaign) Records(n, from int, seed int64, progress func(i int, r results.Record)) []results.Record {
	faults := cp.Pool(n, seed)
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	return cp.RecordsAt(faults[from:], from, progress)
}

// Pool pre-draws the n-fault sequence from seed — exactly the faults
// Records would inject, exposed so stratified campaigns can partition
// the pool into equivalence classes and inject per-stratum subsets.
func (cp *Campaign) Pool(n int, seed int64) []Fault {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.Sample(r)
	}
	return faults
}

// UsedDef reports whether the golden run ever read the value of dynamic
// definition seq. Conservatively true when def-use tracking was skipped
// (NoDeadDefFilter) — callers using it as a stratification feature then
// simply get one coarser stratum, never a wrong estimate.
func (cp *Campaign) UsedDef(seq uint64) bool {
	if cp.usedDefs == nil {
		return true
	}
	w := int(seq >> 6)
	return w < len(cp.usedDefs) && cp.usedDefs[w]&(1<<(seq&63)) != 0
}

// RecordsAt injects the given faults (any ordered subset of a pool) and
// returns their records with absolute indices base+i — the stratified
// analogue of Records, bit-identical for every worker count.
func (cp *Campaign) RecordsAt(faults []Fault, base int, progress func(i int, r results.Record)) []results.Record {
	jobs := make([]campaign.Job, len(faults))
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i}
	}
	var emit func(i int, rec results.Record)
	if progress != nil {
		emit = func(i int, rec results.Record) { progress(base+i, rec) }
	}
	// The static demanded-bits verdict is the soft layer's resolver:
	// when Static is on, provably-masked faults short-circuit before any
	// interpreter exists. When every fault in the batch resolves, no
	// arena is ever allocated.
	var resolve func(j campaign.Job) results.Record
	var resolveOK func(j campaign.Job) (results.Record, bool)
	if cp.Static && cp.irb != nil {
		resolve = func(j campaign.Job) results.Record {
			f := faults[j.Index]
			rec := record(f, inject.Masked)
			rec.StaticResolved = true
			rec.Index = base + j.Index
			return rec
		}
		resolveOK = func(j campaign.Job) (results.Record, bool) {
			if cp.StaticMasked(faults[j.Index]) {
				return resolve(j), true
			}
			return results.Record{}, false
		}
	}
	return campaign.RunResolved(jobs, cp.Workers, resolveOK,
		func() *ir.Interp {
			ip := ir.NewInterp(cp.M, Width, cp.MemSize)
			ip.EnableReset()
			return ip
		},
		func(ip *ir.Interp, j campaign.Job) results.Record {
			f := faults[j.Index]
			var rec results.Record
			if cp.deadDef(f) {
				rec = record(f, inject.Masked)
				rec.EarlyStop = true
			} else {
				ip.Reset()
				rec = record(f, cp.inject(ip, f))
			}
			rec.Index = base + j.Index
			return rec
		},
		emit)
}
