// Package llfi implements software-level (SVF) fault injection at the
// compiler-IR level, mirroring the LLFI tool the paper uses: faults are
// instantaneous single-bit flips in the destination value of a dynamic
// IR instruction, in user code only (the IR has no kernel), and — like
// LLFI, which supports only 64-bit ISAs — the injector runs the 64-bit
// word width exclusively.
package llfi

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"vulnstack/internal/campaign"
	"vulnstack/internal/inject"
	"vulnstack/internal/ir"
)

// Width is the only word width LLFI-style injection supports (the
// paper notes LLFI cannot target 32-bit ISAs).
const Width = 64

// Campaign prepares SVF injections for one IR module.
type Campaign struct {
	M *ir.Module

	GoldenOut  []byte
	GoldenExit int64
	// GoldenDefs is the number of value-defining dynamic IR
	// instructions: the injection space.
	GoldenDefs uint64
	// GoldenSteps is the total dynamic IR instruction count.
	GoldenSteps uint64

	MemSize int
	Limit   uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int
}

// Prepare runs the golden execution.
func Prepare(m *ir.Module, memSize int) (*Campaign, error) {
	ip := ir.NewInterp(m, Width, memSize)
	ip.MaxSteps = 1 << 32
	if err := ip.Run("_start"); err != nil {
		return nil, fmt.Errorf("llfi: golden run: %w", err)
	}
	if !ip.Exited {
		return nil, errors.New("llfi: golden run did not exit")
	}
	return &Campaign{
		M:           m,
		GoldenOut:   append([]byte(nil), ip.Out...),
		GoldenExit:  ip.ExitCode,
		GoldenDefs:  ip.DefSeq,
		GoldenSteps: ip.Steps,
		MemSize:     memSize,
		Limit:       3*ip.Steps + 100000,
	}, nil
}

// Fault selects a dynamic defining instruction and a bit of its result.
type Fault struct {
	Seq uint64
	Bit uint
}

// Sample draws a fault uniformly over the dynamic definition stream.
func (cp *Campaign) Sample(r *rand.Rand) Fault {
	return Fault{
		Seq: uint64(r.Int63n(int64(cp.GoldenDefs))),
		Bit: uint(r.Intn(Width)),
	}
}

// Run performs one injection and classifies the outcome. It allocates
// a fresh interpreter per call; campaigns use reusable per-worker
// interpreter arenas in RunCampaign instead.
func (cp *Campaign) Run(f Fault) inject.Outcome {
	return cp.runOn(ir.NewInterp(cp.M, Width, cp.MemSize), f)
}

// runOn performs one injection on a ready (fresh or Reset) interpreter.
func (cp *Campaign) runOn(ip *ir.Interp, f Fault) inject.Outcome {
	ip.MaxSteps = cp.Limit
	ip.Hook = func(seq uint64, in *ir.Instr, v int64) int64 {
		if seq == f.Seq {
			return v ^ int64(uint64(1)<<f.Bit)
		}
		return v
	}
	err := ip.Run("_start")
	switch {
	case err != nil:
		return inject.Crash // bad address, stack overflow, watchdog
	case ip.Detected:
		return inject.Detected
	case ip.Exited && ip.ExitCode == cp.GoldenExit && bytes.Equal(ip.Out, cp.GoldenOut):
		return inject.Masked
	default:
		return inject.SDC
	}
}

// Tally aggregates SVF outcomes.
type Tally struct {
	N        int
	Outcomes [inject.NumOutcomes]int
}

// Add accumulates one outcome.
func (t *Tally) Add(o inject.Outcome) {
	t.N++
	t.Outcomes[o]++
}

// Frac returns the fraction of outcome o.
func (t *Tally) Frac(o inject.Outcome) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Outcomes[o]) / float64(t.N)
}

// SVF is the software vulnerability factor: failures per injection.
func (t *Tally) SVF() float64 { return t.Frac(inject.SDC) + t.Frac(inject.Crash) }

// RunCampaign performs n injections, fanned across cp.Workers
// goroutines (<= 0: all CPUs). The fault sequence is pre-drawn from the
// seed exactly as the serial loop drew it, so the tally is
// bit-identical for every worker count. progress, when non-nil, is
// called exactly once per injection, serialized and in injection-index
// order; it must not call back into the campaign.
func (cp *Campaign) RunCampaign(n int, seed int64, progress func(i int, o inject.Outcome)) Tally {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	jobs := make([]campaign.Job, n)
	for i := range faults {
		faults[i] = cp.Sample(r)
		jobs[i] = campaign.Job{Index: i}
	}
	outcomes := campaign.Run(jobs, cp.Workers,
		func() *ir.Interp {
			ip := ir.NewInterp(cp.M, Width, cp.MemSize)
			ip.EnableReset()
			return ip
		},
		func(ip *ir.Interp, j campaign.Job) inject.Outcome {
			ip.Reset()
			return cp.runOn(ip, faults[j.Index])
		},
		progress)
	var t Tally
	for _, o := range outcomes {
		t.Add(o)
	}
	return t
}
