package llfi

import (
	"math/rand"
	"testing"

	"vulnstack/internal/inject"
	"vulnstack/internal/ir"
	"vulnstack/internal/minic"
	"vulnstack/internal/results"
)

func minicCompile(src string) (*ir.Module, error) {
	return minic.Compile(src, Width)
}

// TestSampleClampNoDefs: a degenerate campaign whose golden run defined
// no values must still sample without panicking (regression for the
// Int63n(0) panic), and the resulting fault — targeting a definition
// that never executes — must classify Masked.
func TestSampleClampNoDefs(t *testing.T) {
	cp := &Campaign{GoldenDefs: 0}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		f := cp.Sample(r)
		if f.Seq != 0 {
			t.Fatalf("degenerate sample seq %d, want 0", f.Seq)
		}
	}
}

// TestDeadFilterEquivalence: the dead-definition filter must not change
// a single record's outcome — only skip the runs it can prove Masked.
func TestDeadFilterEquivalence(t *testing.T) {
	cp := prep(t, "sha")
	const n, seed = 80, 2021
	on := cp.Records(n, 0, seed, nil)
	cp.NoEarlyStop = true
	off := cp.Records(n, 0, seed, nil)
	cp.NoEarlyStop = false
	if len(on) != len(off) {
		t.Fatalf("record counts differ: %d vs %d", len(on), len(off))
	}
	skipped := 0
	for i := range on {
		if on[i].EarlyStop {
			skipped++
			if on[i].Outcome != inject.Masked {
				t.Fatalf("record %d: early-stopped with outcome %v", i, on[i].Outcome)
			}
		}
		a := on[i]
		a.EarlyStop = false
		if a != off[i] {
			t.Fatalf("record %d differs beyond provenance:\n on: %+v\noff: %+v", i, on[i], off[i])
		}
	}
	if results.TallyOf(on) != results.TallyOf(off) {
		t.Fatal("tallies differ")
	}
	t.Logf("dead-definition filter skipped %d/%d runs", skipped, n)
}

// TestDeadFilterMatchesExecution: every definition the filter calls
// dead must actually classify Masked when executed. The program has a
// guaranteed dynamically dead definition — the accumulator write of
// the final loop iteration, which nothing reads afterward — that
// static dead-code elimination cannot remove (earlier iterations'exact
// same instruction is live).
func TestDeadFilterMatchesExecution(t *testing.T) {
	src := `
func main() int {
	var s int = 0
	var i int
	for i = 0; i < 5; i = i + 1 {
		s = s + i
	}
	return i
}
`
	m, err := minicCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Prepare(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var dead []uint64
	for seq := uint64(0); seq < cp.GoldenDefs; seq++ {
		if cp.deadDef(Fault{Seq: seq}) {
			dead = append(dead, seq)
		}
	}
	if len(dead) == 0 {
		t.Fatal("expected at least one dynamically dead definition (final loop write of s)")
	}
	for _, seq := range dead {
		f := Fault{Seq: seq, Bit: 13}
		cp.NoEarlyStop = true
		if o := cp.Run(f); o != inject.Masked {
			t.Fatalf("dead def seq=%d executed to %v, not Masked", seq, o)
		}
		cp.NoEarlyStop = false
	}
	t.Logf("executed %d filter-claimed-dead faults, all Masked", len(dead))
}
