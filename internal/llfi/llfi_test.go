package llfi

import (
	"math/rand"
	"testing"

	"vulnstack/internal/inject"
	"vulnstack/internal/minic"
	"vulnstack/internal/workload"
)

func prep(t *testing.T, bench string) *Campaign {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := minic.Compile(spec.Gen(3, 1), Width)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Prepare(m, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestGolden(t *testing.T) {
	cp := prep(t, "sha")
	if len(cp.GoldenOut) != 20 {
		t.Fatalf("sha output %d", len(cp.GoldenOut))
	}
	if cp.GoldenDefs == 0 || cp.GoldenDefs > cp.GoldenSteps {
		t.Fatal("definition stream size")
	}
}

func TestInjectionOutcomes(t *testing.T) {
	cp := prep(t, "sha")
	tl := cp.RunCampaign(120, 1, nil)
	if tl.N != 120 {
		t.Fatal("count")
	}
	if tl.Outcomes[inject.Masked] == 0 {
		t.Error("some IR faults must mask")
	}
	if tl.Outcomes[inject.SDC] == 0 {
		t.Error("sha at IR level should show SDCs (dataflow corruption)")
	}
	if tl.Outcomes[inject.Detected] != 0 {
		t.Error("unhardened module cannot detect")
	}
	svf := tl.SVF()
	if svf <= 0 || svf >= 1 {
		t.Errorf("degenerate SVF %.2f", svf)
	}
	t.Logf("sha SVF=%.2f (sdc=%.2f crash=%.2f masked=%.2f)",
		svf, tl.Frac(inject.SDC), tl.Frac(inject.Crash), tl.Frac(inject.Masked))
}

func TestDeterministicGivenSeed(t *testing.T) {
	cp := prep(t, "crc32")
	a := cp.RunCampaign(40, 9, nil)
	b := cp.RunCampaign(40, 9, nil)
	if a != b {
		t.Fatal("same seed must reproduce identical tallies")
	}
	c := cp.RunCampaign(40, 10, nil)
	if a == c {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestSingleFaultIsFlippedOnce(t *testing.T) {
	cp := prep(t, "crc32")
	// A fault injected past the end of the def stream behaves as
	// fault-free (never fires): must be Masked.
	if got := cp.Run(Fault{Seq: cp.GoldenDefs + 1000, Bit: 3}); got != inject.Masked {
		t.Fatalf("out-of-stream fault: %v", got)
	}
}

// TestCampaignWorkerInvariance: the SVF tally must be bit-identical for
// any worker count.
func TestCampaignWorkerInvariance(t *testing.T) {
	cp := prep(t, "sha")
	cp.Workers = 1
	serial := cp.RunCampaign(60, 7, nil)
	cp.Workers = 8
	parallel := cp.RunCampaign(60, 7, nil)
	if serial != parallel {
		t.Fatalf("workers=1 %+v != workers=8 %+v", serial, parallel)
	}
}

// TestResetMatchesFreshInterp: the per-worker Reset path must classify
// every fault exactly like a fresh interpreter.
func TestResetMatchesFreshInterp(t *testing.T) {
	cp := prep(t, "sha")
	r := rand.New(rand.NewSource(7))
	faults := make([]Fault, 30)
	for i := range faults {
		faults[i] = cp.Sample(r)
	}
	var want Tally
	for _, f := range faults {
		want.AddOutcome(cp.Run(f))
	}
	cp.Workers = 1
	got := cp.RunCampaign(30, 7, nil)
	if got != want {
		t.Fatalf("reset path %+v != fresh-interp path %+v", got, want)
	}
}
