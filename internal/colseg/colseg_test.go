package colseg

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// buildBlock assembles one block with every encoding, rows wide.
func buildBlock(t *testing.T, rows int, r *rand.Rand) ([]byte, []uint8, []bool, []uint64, []int64, []string) {
	t.Helper()
	u8 := make([]uint8, rows)
	bits := make([]bool, rows)
	uv := make([]uint64, rows)
	zz := make([]int64, rows)
	ss := make([]string, rows)
	words := []string{"RF", "LSQ", "L2", "reg-uniform", ""}
	for i := 0; i < rows; i++ {
		u8[i] = uint8(r.Intn(256))
		bits[i] = r.Intn(2) == 1
		uv[i] = uint64(r.Int63())
		zz[i] = r.Int63() - r.Int63()
		ss[i] = words[r.Intn(len(words))]
	}
	b := NewBuilder(rows)
	b.U8(0, u8)
	b.Bits(1, bits)
	b.Uvarint(2, uv)
	b.Zigzag(3, zz)
	b.Dict(4, ss)
	return b.AppendTo(nil), u8, bits, uv, zz, ss
}

func TestBlockRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, rows := range []int{0, 1, 7, 8, 9, 1000} {
		data, u8, bits, uv, zz, ss := buildBlock(t, rows, r)
		blk, n, err := Parse(data)
		if err != nil || n != len(data) {
			t.Fatalf("rows=%d: parse consumed %d/%d, err=%v", rows, n, len(data), err)
		}
		if blk.Rows() != rows {
			t.Fatalf("rows=%d: got %d", rows, blk.Rows())
		}
		gotU8, err := blk.U8(0)
		if err != nil || !bytes.Equal(gotU8, u8) {
			t.Fatalf("u8 mismatch: %v", err)
		}
		gotBits, err := blk.Bits(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if gotBits[i] != bits[i] {
				t.Fatalf("bit %d mismatch", i)
			}
		}
		gotUv, err := blk.Uvarint(2)
		if err != nil {
			t.Fatal(err)
		}
		gotZz, err := blk.Zigzag(3)
		if err != nil {
			t.Fatal(err)
		}
		gotSs, err := blk.Dict(4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if gotUv[i] != uv[i] || gotZz[i] != zz[i] || gotSs[i] != ss[i] {
				t.Fatalf("row %d: (%d,%d,%q) != (%d,%d,%q)", i, gotUv[i], gotZz[i], gotSs[i], uv[i], zz[i], ss[i])
			}
		}
	}
}

func TestZigzagExtremes(t *testing.T) {
	vals := []int64{0, 1, -1, 1<<63 - 1, -1 << 63, 42, -42}
	b := NewBuilder(len(vals))
	b.Zigzag(9, vals)
	blk, _, err := Parse(b.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := blk.Zigzag(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("zigzag %d -> %d", vals[i], got[i])
		}
	}
}

func TestDictDeterministic(t *testing.T) {
	// Encoding must be byte-identical across runs: the dictionary is
	// built in first-occurrence order, not map order.
	ss := []string{"b", "a", "b", "c", "a", "c", "c"}
	mk := func() []byte {
		b := NewBuilder(len(ss))
		b.Dict(0, ss)
		return b.AppendTo(nil)
	}
	if !bytes.Equal(mk(), mk()) {
		t.Fatal("dict encoding is not deterministic")
	}
}

func TestParseMulti(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d1, _, _, _, _, _ := buildBlock(t, 10, r)
	d2, _, _, _, _, _ := buildBlock(t, 20, r)
	data := append(append([]byte(nil), d1...), d2...)
	b1, n1, err := Parse(data)
	if err != nil || b1.Rows() != 10 {
		t.Fatalf("block 1: %v", err)
	}
	b2, n2, err := Parse(data[n1:])
	if err != nil || b2.Rows() != 20 || n1+n2 != len(data) {
		t.Fatalf("block 2: %v", err)
	}
	if _, _, err := Parse(data[n1+n2:]); err != io.EOF {
		t.Fatalf("end: %v", err)
	}
}

func TestReaderStream(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var data []byte
	want := []int{5, 100, 1}
	for _, rows := range want {
		d, _, _, _, _, _ := buildBlock(t, rows, r)
		data = append(data, d...)
	}
	rd := NewReader(bytes.NewReader(data))
	for i, rows := range want {
		blk, err := rd.Next()
		if err != nil || blk.Rows() != rows {
			t.Fatalf("block %d: rows=%v err=%v", i, blk, err)
		}
		if _, err := blk.U8(0); err != nil {
			t.Fatalf("block %d columns: %v", i, err)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("clean end must be io.EOF, got %v", err)
	}
}

func TestTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data, _, _, _, _, _ := buildBlock(t, 50, r)
	for _, cut := range []int{1, 4, 5, 6, len(data) / 2, len(data) - 1} {
		if _, _, err := Parse(data[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: Parse err=%v, want ErrTruncated", cut, err)
		}
		rd := NewReader(bytes.NewReader(data[:cut]))
		if _, err := rd.Next(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: Reader err=%v, want ErrTruncated", cut, err)
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data, _, _, _, _, _ := buildBlock(t, 3, r)
	data[4] = Version + 1
	if _, _, err := Parse(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("Parse err=%v, want ErrVersion", err)
	}
	if _, err := NewReader(bytes.NewReader(data)).Next(); !errors.Is(err, ErrVersion) {
		t.Fatalf("Reader err=%v, want ErrVersion", err)
	}
}

func TestBadMagic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data, _, _, _, _, _ := buildBlock(t, 3, r)
	data[0] = 'X'
	if _, _, err := Parse(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Parse err=%v, want ErrCorrupt", err)
	}
}

func TestMissingAndMistypedColumn(t *testing.T) {
	b := NewBuilder(2)
	b.U8(7, []uint8{1, 2})
	blk, _, err := Parse(b.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blk.U8(8); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing column err=%v", err)
	}
	if _, err := blk.Bits(7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mistyped column err=%v", err)
	}
}
