// Package colseg implements the binary columnar block format under the
// persistent results store: append-only segments of self-framed blocks,
// each holding one batch of records as per-column arrays. The package
// is deliberately record-agnostic — it knows byte columns, bitsets,
// varint columns and dictionary-coded string columns, not fault
// records — so the schema mapping lives with the record type
// (internal/results) while the wire format stays reusable.
//
// # Wire format
//
// A segment is a concatenation of framed blocks:
//
//	magic   [4]byte  "VCSB"
//	version uint8    block-format version (Version); mismatches reject
//	length  uvarint  byte length of the body that follows
//	body    [length]byte
//
// and a body is:
//
//	rows    uvarint
//	ncols   uvarint
//	dir     ncols × { id uint8, enc uint8, size uvarint }
//	payload concatenated column payloads, in directory order
//
// Column payloads by encoding:
//
//	EncU8      one byte per row
//	EncBits    a bitset, (rows+7)/8 bytes, row i at byte i>>3 bit i&7
//	EncUvarint one unsigned varint per row
//	EncZigzag  one zigzag-folded varint per row (signed values)
//	EncDict    uvarint ndict, ndict × { uvarint len, bytes }, then one
//	           uvarint dictionary index per row
//	EncBlob    one { uvarint len, bytes } per row (opaque byte blobs,
//	           used by the checkpoint-chain segments for page contents
//	           and machine-state deltas)
//
// The framing length makes blocks skippable and stream-readable without
// parsing their directories; the directory makes column reads lazy, so
// a consumer that only aggregates outcomes never decodes coordinate or
// string columns at all (the pushed-down-projection property the
// streaming aggregators rely on).
package colseg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the block-format version. Readers reject blocks written by
// a different version loudly rather than misdecoding them.
const Version = 1

var magic = [4]byte{'V', 'C', 'S', 'B'}

// Enc identifies a column payload encoding.
type Enc uint8

const (
	EncU8 Enc = iota
	EncBits
	EncUvarint
	EncZigzag
	EncDict
	EncBlob
	numEnc
)

// Errors distinguishing the failure classes callers handle differently:
// a truncated tail block (a crashed append — ignorable once the
// manifest-promised rows were served) versus a version or structural
// mismatch (never ignorable).
var (
	// ErrTruncated reports a block cut short mid-frame: the segment ends
	// inside a header or body. A crashed append leaves exactly this.
	ErrTruncated = errors.New("colseg: truncated block")
	// ErrVersion reports a block written by a different format version.
	ErrVersion = errors.New("colseg: block version mismatch")
	// ErrCorrupt reports a structurally invalid block.
	ErrCorrupt = errors.New("colseg: corrupt block")
)

// Builder assembles one block. Columns are appended in call order; ids
// must be unique within a block and every column must cover exactly the
// row count the builder was created with.
type Builder struct {
	rows int
	dir  []byte // id, enc, size triples (sizes uvarint-encoded)
	pay  []byte
	n    int
}

// NewBuilder starts a block of the given row count.
func NewBuilder(rows int) *Builder {
	return &Builder{rows: rows}
}

func (b *Builder) add(id uint8, enc Enc, payload []byte) {
	b.dir = append(b.dir, id, uint8(enc))
	b.dir = binary.AppendUvarint(b.dir, uint64(len(payload)))
	b.pay = append(b.pay, payload...)
	b.n++
}

// U8 adds a one-byte-per-row column. len(vals) must equal the row count.
func (b *Builder) U8(id uint8, vals []uint8) { b.add(id, EncU8, vals) }

// Bits adds a boolean column stored as a bitset.
func (b *Builder) Bits(id uint8, vals []bool) {
	set := make([]byte, (len(vals)+7)/8)
	for i, v := range vals {
		if v {
			set[i>>3] |= 1 << (i & 7)
		}
	}
	b.add(id, EncBits, set)
}

// Uvarint adds an unsigned varint column.
func (b *Builder) Uvarint(id uint8, vals []uint64) {
	p := make([]byte, 0, len(vals))
	for _, v := range vals {
		p = binary.AppendUvarint(p, v)
	}
	b.add(id, EncUvarint, p)
}

// Zigzag adds a signed varint column (zigzag-folded).
func (b *Builder) Zigzag(id uint8, vals []int64) {
	p := make([]byte, 0, len(vals))
	for _, v := range vals {
		p = binary.AppendUvarint(p, zigzag(v))
	}
	b.add(id, EncZigzag, p)
}

// Dict adds a dictionary-coded string column. The dictionary is built
// in first-occurrence order, so encoding is deterministic.
func (b *Builder) Dict(id uint8, vals []string) {
	idx := make(map[string]uint64, 4)
	var dict []string
	var p []byte
	for _, v := range vals {
		if _, ok := idx[v]; !ok {
			idx[v] = uint64(len(dict))
			dict = append(dict, v)
		}
	}
	p = binary.AppendUvarint(p, uint64(len(dict)))
	for _, d := range dict {
		p = binary.AppendUvarint(p, uint64(len(d)))
		p = append(p, d...)
	}
	for _, v := range vals {
		p = binary.AppendUvarint(p, idx[v])
	}
	b.add(id, EncDict, p)
}

// Blob adds an opaque per-row byte-blob column (length-prefixed rows).
func (b *Builder) Blob(id uint8, vals [][]byte) {
	var p []byte
	for _, v := range vals {
		p = binary.AppendUvarint(p, uint64(len(v)))
		p = append(p, v...)
	}
	b.add(id, EncBlob, p)
}

// AppendTo appends the framed block to dst and returns the result.
func (b *Builder) AppendTo(dst []byte) []byte {
	var body []byte
	body = binary.AppendUvarint(body, uint64(b.rows))
	body = binary.AppendUvarint(body, uint64(b.n))
	body = append(body, b.dir...)
	body = append(body, b.pay...)

	dst = append(dst, magic[:]...)
	dst = append(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	return append(dst, body...)
}

// col is one directory entry of a parsed block.
type col struct {
	id   uint8
	enc  Enc
	data []byte
}

// Block is one parsed block. Column payloads are referenced, not
// decoded: accessors materialize a column only when asked for it.
type Block struct {
	rows int
	cols []col
}

// Rows returns the block's record count.
func (b *Block) Rows() int { return b.rows }

// Has reports whether the block carries a column with the given id.
// Blocks are self-describing (every block lists its columns in its
// directory), so schema growth is backward compatible: a reader probes
// for a column added after the block was written and substitutes the
// zero value when it is absent, instead of rejecting the segment.
func (b *Block) Has(id uint8) bool {
	for _, c := range b.cols {
		if c.id == id {
			return true
		}
	}
	return false
}

func (b *Block) find(id uint8, enc Enc) ([]byte, error) {
	for _, c := range b.cols {
		if c.id != id {
			continue
		}
		if c.enc != enc {
			return nil, fmt.Errorf("%w: column %d has encoding %d, want %d", ErrCorrupt, id, c.enc, enc)
		}
		return c.data, nil
	}
	return nil, fmt.Errorf("%w: column %d missing", ErrCorrupt, id)
}

// U8 decodes a one-byte-per-row column.
func (b *Block) U8(id uint8) ([]uint8, error) {
	data, err := b.find(id, EncU8)
	if err != nil {
		return nil, err
	}
	if len(data) != b.rows {
		return nil, fmt.Errorf("%w: u8 column %d has %d bytes for %d rows", ErrCorrupt, id, len(data), b.rows)
	}
	return data, nil
}

// Bits decodes a bitset column into per-row booleans.
func (b *Block) Bits(id uint8) ([]bool, error) {
	data, err := b.find(id, EncBits)
	if err != nil {
		return nil, err
	}
	if len(data) != (b.rows+7)/8 {
		return nil, fmt.Errorf("%w: bitset column %d has %d bytes for %d rows", ErrCorrupt, id, len(data), b.rows)
	}
	out := make([]bool, b.rows)
	for i := range out {
		out[i] = data[i>>3]&(1<<(i&7)) != 0
	}
	return out, nil
}

// Uvarint decodes an unsigned varint column.
func (b *Block) Uvarint(id uint8) ([]uint64, error) {
	data, err := b.find(id, EncUvarint)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, b.rows)
	for i := range out {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("%w: uvarint column %d row %d", ErrCorrupt, id, i)
		}
		out[i] = v
		data = data[n:]
	}
	return out, nil
}

// Zigzag decodes a signed varint column.
func (b *Block) Zigzag(id uint8) ([]int64, error) {
	data, err := b.find(id, EncZigzag)
	if err != nil {
		return nil, err
	}
	out := make([]int64, b.rows)
	for i := range out {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("%w: zigzag column %d row %d", ErrCorrupt, id, i)
		}
		out[i] = unzigzag(v)
		data = data[n:]
	}
	return out, nil
}

// Dict decodes a dictionary-coded string column into per-row values.
func (b *Block) Dict(id uint8) ([]string, error) {
	data, err := b.find(id, EncDict)
	if err != nil {
		return nil, err
	}
	nd, n := binary.Uvarint(data)
	if n <= 0 || nd > uint64(len(data)) {
		return nil, fmt.Errorf("%w: dict column %d header", ErrCorrupt, id)
	}
	data = data[n:]
	dict := make([]string, nd)
	for i := range dict {
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return nil, fmt.Errorf("%w: dict column %d entry %d", ErrCorrupt, id, i)
		}
		dict[i] = string(data[n : n+int(l)])
		data = data[n+int(l):]
	}
	out := make([]string, b.rows)
	for i := range out {
		v, n := binary.Uvarint(data)
		if n <= 0 || v >= nd {
			return nil, fmt.Errorf("%w: dict column %d row %d", ErrCorrupt, id, i)
		}
		out[i] = dict[v]
		data = data[n:]
	}
	return out, nil
}

// Blob decodes an opaque byte-blob column. Returned rows alias the
// block's payload and must not be mutated.
func (b *Block) Blob(id uint8) ([][]byte, error) {
	data, err := b.find(id, EncBlob)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, b.rows)
	for i := range out {
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return nil, fmt.Errorf("%w: blob column %d row %d", ErrCorrupt, id, i)
		}
		out[i] = data[n : n+int(l)]
		data = data[n+int(l):]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: blob column %d has %d trailing bytes", ErrCorrupt, id, len(data))
	}
	return out, nil
}

// parseBody parses a block body (everything after the frame header).
func parseBody(body []byte) (*Block, error) {
	rows, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("%w: row count", ErrCorrupt)
	}
	body = body[n:]
	ncols, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("%w: column count", ErrCorrupt)
	}
	body = body[n:]
	blk := &Block{rows: int(rows), cols: make([]col, 0, ncols)}
	sizes := make([]uint64, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		if len(body) < 2 {
			return nil, fmt.Errorf("%w: directory entry %d", ErrCorrupt, i)
		}
		id, enc := body[0], Enc(body[1])
		if enc >= numEnc {
			return nil, fmt.Errorf("%w: column %d encoding %d", ErrCorrupt, id, enc)
		}
		body = body[2:]
		size, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("%w: directory size %d", ErrCorrupt, i)
		}
		body = body[n:]
		blk.cols = append(blk.cols, col{id: id, enc: enc})
		sizes = append(sizes, size)
	}
	for i := range blk.cols {
		if uint64(len(body)) < sizes[i] {
			return nil, fmt.Errorf("%w: column %d payload", ErrCorrupt, blk.cols[i].id)
		}
		blk.cols[i].data = body[:sizes[i]]
		body = body[sizes[i]:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing body bytes", ErrCorrupt, len(body))
	}
	return blk, nil
}

// Parse parses the first framed block of data and returns it with the
// number of bytes consumed. io.EOF is returned on empty input and
// ErrTruncated when data ends mid-frame.
func Parse(data []byte) (*Block, int, error) {
	if len(data) == 0 {
		return nil, 0, io.EOF
	}
	if len(data) < len(magic)+1 {
		return nil, 0, ErrTruncated
	}
	if [4]byte(data[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != Version {
		return nil, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, data[4], Version)
	}
	length, n := binary.Uvarint(data[5:])
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	head := 5 + n
	if uint64(len(data)-head) < length {
		return nil, 0, ErrTruncated
	}
	blk, err := parseBody(data[head : head+int(length)])
	if err != nil {
		return nil, 0, err
	}
	return blk, head + int(length), nil
}

// Reader streams framed blocks from an io.Reader with one reusable
// body buffer, so memory stays bounded by the largest block rather than
// the segment (the o(segment)-memory property of cursor aggregation).
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader wraps r for block-at-a-time reads.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads the next block. io.EOF marks a clean segment end (at a
// frame boundary); ErrTruncated an end inside a frame. The returned
// block aliases the reader's internal buffer and is invalidated by the
// following Next call.
func (r *Reader) Next() (*Block, error) {
	var head [5]byte
	if _, err := io.ReadFull(r.r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTruncated
	}
	if [4]byte(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if head[4] != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, head[4], Version)
	}
	length, err := readUvarint(r.r)
	if err != nil {
		return nil, ErrTruncated
	}
	if length > 1<<31 {
		return nil, fmt.Errorf("%w: block length %d", ErrCorrupt, length)
	}
	if uint64(cap(r.buf)) < length {
		r.buf = make([]byte, length)
	}
	body := r.buf[:length]
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, ErrTruncated
	}
	return parseBody(body)
}

// readUvarint reads a varint byte-at-a-time from a plain io.Reader.
func readUvarint(r io.Reader) (uint64, error) {
	var v uint64
	var b [1]byte
	for shift := uint(0); shift < 64; shift += 7 {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		v |= uint64(b[0]&0x7F) << shift
		if b[0] < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
