// Package mem provides the simulated physical memory and the system
// memory map shared by the functional emulator and the microarchitectural
// model. Addressing is physical: the platform has no MMU, a substitution
// documented in DESIGN.md (the paper itself observes that architectural
// vulnerability is ill-defined under virtual memory).
package mem

import (
	"encoding/binary"
	"fmt"
)

// System memory map. The first page is an unmapped null guard so that
// fault-induced null dereferences raise access faults (and classify as
// Crash) instead of silently reading zeroes.
const (
	GuardTop     = 0x0000_1000 // [0, GuardTop) is unmapped
	KernBase     = 0x0000_1000 // kernel text
	KernDataBase = 0x0000_8000 // kernel data, staging buffers
	KernStackTop = 0x0000_FFF0 // kernel stack grows down from here
	UserBase     = 0x0001_0000 // user text, then data/bss/heap
	DefaultSize  = 4 << 20     // 4 MiB of RAM
	MMIOBase     = 0xFFFF_0000 // device registers (kernel-mode only)
	MMIOSize     = 0x100
)

// UserStackTop returns the initial user stack pointer for a RAM of the
// given size.
func UserStackTop(size uint64) uint64 { return size - 16 }

// Memory is a flat byte-addressable RAM image, little-endian.
type Memory struct {
	data []byte
}

// New creates a RAM of the given size in bytes (0 selects DefaultSize).
func New(size uint64) *Memory {
	if size == 0 {
		size = DefaultSize
	}
	return &Memory{data: make([]byte, size)}
}

// Size returns the RAM size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Valid reports whether [addr, addr+n) lies inside mapped RAM.
func (m *Memory) Valid(addr uint64, n int) bool {
	return addr >= GuardTop && addr+uint64(n) <= uint64(len(m.data)) && addr+uint64(n) >= addr
}

// Read loads an n-byte little-endian value (n in {1,2,4,8}).
func (m *Memory) Read(addr uint64, n int) (uint64, bool) {
	if !m.Valid(addr, n) {
		return 0, false
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.data[addr+uint64(i)])
	}
	return v, true
}

// Write stores the low n bytes of val at addr, little-endian.
func (m *Memory) Write(addr uint64, n int, val uint64) bool {
	if !m.Valid(addr, n) {
		return false
	}
	for i := 0; i < n; i++ {
		m.data[addr+uint64(i)] = byte(val >> (8 * i))
	}
	return true
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) bool {
	if !m.Valid(addr, len(dst)) {
		return false
	}
	copy(dst, m.data[addr:])
	return true
}

// WriteBytes copies src into memory at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) bool {
	if !m.Valid(addr, len(src)) {
		return false
	}
	copy(m.data[addr:], src)
	return true
}

// Byte returns the byte at addr (for device-side reads).
func (m *Memory) Byte(addr uint64) (byte, bool) {
	if !m.Valid(addr, 1) {
		return 0, false
	}
	return m.data[addr], true
}

// FlipBit flips a single bit: the transient-fault primitive for faults
// injected directly into memory/architectural state.
func (m *Memory) FlipBit(addr uint64, bit uint) bool {
	if !m.Valid(addr, 1) || bit > 7 {
		return false
	}
	m.data[addr] ^= 1 << bit
	return true
}

// Clone returns a deep copy (used for golden-state snapshots).
func (m *Memory) Clone() *Memory {
	d := make([]byte, len(m.data))
	copy(d, m.data)
	return &Memory{data: d}
}

// CopyFrom overwrites this memory's contents from src (sizes must match).
func (m *Memory) CopyFrom(src *Memory) {
	if len(m.data) != len(src.data) {
		panic(fmt.Sprintf("mem.CopyFrom: size mismatch %d != %d", len(m.data), len(src.data)))
	}
	copy(m.data, src.data)
}

// Word32 reads an aligned 32-bit word (instruction fetch helper).
func (m *Memory) Word32(addr uint64) (uint32, bool) {
	if addr%4 != 0 || !m.Valid(addr, 4) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), true
}

// IsMMIO reports whether addr targets the device register window.
func IsMMIO(addr uint64) bool { return addr >= MMIOBase && addr < MMIOBase+MMIOSize }
