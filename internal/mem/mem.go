// Package mem provides the simulated physical memory and the system
// memory map shared by the functional emulator and the microarchitectural
// model. Addressing is physical: the platform has no MMU, a substitution
// documented in DESIGN.md (the paper itself observes that architectural
// vulnerability is ill-defined under virtual memory).
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// System memory map. The first page is an unmapped null guard so that
// fault-induced null dereferences raise access faults (and classify as
// Crash) instead of silently reading zeroes.
const (
	GuardTop     = 0x0000_1000 // [0, GuardTop) is unmapped
	KernBase     = 0x0000_1000 // kernel text
	KernDataBase = 0x0000_8000 // kernel data, staging buffers
	KernStackTop = 0x0000_FFF0 // kernel stack grows down from here
	UserBase     = 0x0001_0000 // user text, then data/bss/heap
	DefaultSize  = 4 << 20     // 4 MiB of RAM
	MMIOBase     = 0xFFFF_0000 // device registers (kernel-mode only)
	MMIOSize     = 0x100
)

// UserStackTop returns the initial user stack pointer for a RAM of the
// given size.
func UserStackTop(size uint64) uint64 { return size - 16 }

// Page granularity of dirty tracking (see EnableTracking): restoring a
// run's golden state copies only the pages the faulty run touched,
// instead of the whole multi-MiB image.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
)

// Granularity of content versioning (see EnableCodeVersions): one
// counter per 256 bytes, fine enough that data stores rarely alias the
// code granules they sit beside on a shared page.
const (
	VerShift   = 8
	VerGranule = 1 << VerShift
)

// Memory is a flat byte-addressable RAM image, little-endian.
type Memory struct {
	data []byte

	// Dirty-page tracking, enabled only on reusable campaign arenas:
	// dirtyBit is a page bitmap, dirtyPages the list of pages written
	// since the last RestoreDirty/CopyFrom.
	track      bool
	dirtyBit   []uint64
	dirtyPages []uint32

	// codeVer, when enabled, holds one version counter per VerGranule
	// bytes, bumped by every content mutation (stores, bit flips,
	// page/image restores). The translation-block engine keys cached
	// blocks on the versions of the granules they decode from, so any
	// write that could invalidate predecoded code — self-modifying
	// stores, injected instruction-bit flips, checkpoint restores —
	// forces a re-decode. A spurious bump only costs a rebuild, never
	// correctness. The granule is finer than a page so data stores
	// sharing a page with hot code do not keep invalidating its blocks.
	codeVer []uint32
}

// New creates a RAM of the given size in bytes (0 selects DefaultSize).
func New(size uint64) *Memory {
	if size == 0 {
		size = DefaultSize
	}
	return &Memory{data: make([]byte, size)}
}

// Size returns the RAM size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Valid reports whether [addr, addr+n) lies inside mapped RAM. The end
// address is checked for uint64 wraparound explicitly, and a negative n
// (which would wrap through uint64 conversion) is always invalid.
func (m *Memory) Valid(addr uint64, n int) bool {
	if n < 0 {
		return false
	}
	end := addr + uint64(n)
	if end < addr { // wrapped past 2^64
		return false
	}
	return addr >= GuardTop && end <= uint64(len(m.data))
}

// EnableTracking turns on dirty-page tracking so RestoreDirty can
// restore golden state by copying only the pages written since the last
// restore. Intended for reusable campaign arenas; snapshots and golden
// images stay untracked (tracking does not survive Clone).
func (m *Memory) EnableTracking() {
	if m.track {
		return
	}
	m.track = true
	pages := (len(m.data) + PageSize - 1) >> PageShift
	m.dirtyBit = make([]uint64, (pages+63)/64)
}

// EnableCodeVersions turns on per-granule content versioning (see
// codeVer). Idempotent; versioning does not survive Clone.
func (m *Memory) EnableCodeVersions() {
	if m.codeVer == nil {
		m.codeVer = make([]uint32, (len(m.data)+VerGranule-1)>>VerShift)
	}
}

// ChunkVersion returns version granule c's content counter (0 until
// versioning is enabled or for out-of-range granules). Two reads of the
// same granule returning the same version bracket unmodified bytes.
func (m *Memory) ChunkVersion(c uint32) uint32 {
	if m.codeVer == nil || int(c) >= len(m.codeVer) {
		return 0
	}
	return m.codeVer[c]
}

// bumpVer advances the version of every granule overlapping a validated
// write [addr, addr+n).
func (m *Memory) bumpVer(addr uint64, n int) {
	last := (addr + uint64(n) - 1) >> VerShift
	for c := addr >> VerShift; c <= last; c++ {
		m.codeVer[c]++
	}
}

// bumpAllVer advances every granule version (whole-image mutations).
func (m *Memory) bumpAllVer() {
	for c := range m.codeVer {
		m.codeVer[c]++
	}
}

// bumpChangedChunks advances the version of every granule in [lo, hi)
// whose current bytes differ from src (src is indexed relative to lo;
// bytes past len(src) are about to be left unchanged). Restore paths
// use it instead of a blind bump: a page restore rewrites whole pages,
// but the code granules on them are almost always byte-identical across
// restores, and skipping their bump keeps predecoded blocks valid.
func (m *Memory) bumpChangedChunks(lo, hi int, src []byte) {
	for off := lo; off < hi; off += VerGranule {
		slo := off - lo
		if slo >= len(src) {
			return
		}
		send := slo + VerGranule
		if send > len(src) {
			send = len(src)
		}
		if hi-off < send-slo {
			send = slo + (hi - off)
		}
		if !bytes.Equal(m.data[off:off+(send-slo)], src[slo:send]) {
			m.codeVer[off>>VerShift]++
		}
	}
}

// mark records the pages of a validated write [addr, addr+n).
func (m *Memory) mark(addr uint64, n int) {
	last := (addr + uint64(n) - 1) >> PageShift
	for p := addr >> PageShift; p <= last; p++ {
		if m.dirtyBit[p>>6]&(1<<(p&63)) == 0 {
			m.dirtyBit[p>>6] |= 1 << (p & 63)
			m.dirtyPages = append(m.dirtyPages, uint32(p))
		}
	}
}

func (m *Memory) clearDirty() {
	for _, p := range m.dirtyPages {
		m.dirtyBit[p>>6] &^= 1 << (p & 63)
	}
	m.dirtyPages = m.dirtyPages[:0]
}

// DirtyPages returns how many pages have been written since the last
// restore (0 when tracking is disabled).
func (m *Memory) DirtyPages() int { return len(m.dirtyPages) }

// Tracking reports whether dirty-page tracking is enabled.
func (m *Memory) Tracking() bool { return m.track }

// DirtyPageList returns the pages written since the last restore, in
// first-write order. The slice aliases internal state: it is valid only
// until the next write/restore and must not be mutated.
func (m *Memory) DirtyPageList() []uint32 { return m.dirtyPages }

// TakeDirtyPages returns a copy of the dirty-page list and clears the
// dirty set, re-baselining tracking at the current contents. Used by
// golden-run preparation to capture which pages each snapshot interval
// wrote without restoring anything.
func (m *Memory) TakeDirtyPages() []uint32 {
	pages := make([]uint32, len(m.dirtyPages))
	copy(pages, m.dirtyPages)
	m.clearDirty()
	return pages
}

// Page returns the contents of page p as a subslice of the backing
// store (short for the final partial page, empty when out of range).
// The slice aliases internal state: it is valid only until the next
// write/restore and must not be mutated.
func (m *Memory) Page(p uint32) []byte {
	lo := int(p) << PageShift
	if lo >= len(m.data) {
		return nil
	}
	hi := lo + PageSize
	if hi > len(m.data) {
		hi = len(m.data)
	}
	return m.data[lo:hi]
}

// Bytes returns the full RAM contents as a read-only aliasing slice
// (checkpoint capture walks it chunk-wise). Must not be mutated.
func (m *Memory) Bytes() []byte { return m.data }

// NumPages returns how many pages (including a final partial one) the
// RAM spans.
func (m *Memory) NumPages() int { return (len(m.data) + PageSize - 1) >> PageShift }

// SetPage overwrites page p with data without marking it dirty: the
// checkpoint-chain restore uses it to materialize a known-good state
// and then re-baselines tracking itself via ResetDirty.
func (m *Memory) SetPage(p uint32, data []byte) {
	lo := int(p) << PageShift
	if lo >= len(m.data) {
		return
	}
	hi := lo + PageSize
	if hi > len(m.data) {
		hi = len(m.data)
	}
	if m.codeVer != nil {
		m.bumpChangedChunks(lo, hi, data)
	}
	copy(m.data[lo:hi], data)
}

// ResetDirty clears the dirty set without copying anything: the caller
// asserts the contents now match whatever baseline it restores against.
func (m *Memory) ResetDirty() {
	if m.track {
		m.clearDirty()
	}
}

// PageEqual reports whether page p has identical contents in m and src.
// Sizes must match; an out-of-range page compares equal (both empty).
func (m *Memory) PageEqual(src *Memory, p uint32) bool {
	if len(m.data) != len(src.data) {
		panic(fmt.Sprintf("mem.PageEqual: size mismatch %d != %d", len(m.data), len(src.data)))
	}
	lo := int(p) << PageShift
	if lo >= len(m.data) {
		return true
	}
	hi := lo + PageSize
	if hi > len(m.data) {
		hi = len(m.data)
	}
	return bytes.Equal(m.data[lo:hi], src.data[lo:hi])
}

// RestoreDirty restores this memory to equal src by copying back only
// the pages written since the last RestoreDirty/CopyFrom. The caller
// must guarantee the untracked pages already equal src (i.e. src was
// also the source of the previous restore). Without tracking enabled it
// degrades to a full CopyFrom. Sizes must match.
func (m *Memory) RestoreDirty(src *Memory) {
	if !m.track {
		m.CopyFrom(src)
		return
	}
	if len(m.data) != len(src.data) {
		panic(fmt.Sprintf("mem.RestoreDirty: size mismatch %d != %d", len(m.data), len(src.data)))
	}
	for _, p := range m.dirtyPages {
		lo := int(p) << PageShift
		hi := lo + PageSize
		if hi > len(m.data) {
			hi = len(m.data)
		}
		if m.codeVer != nil {
			m.bumpChangedChunks(lo, hi, src.data[lo:hi])
		}
		copy(m.data[lo:hi], src.data[lo:hi])
	}
	m.clearDirty()
}

// Read loads an n-byte little-endian value (n in {1,2,4,8}).
func (m *Memory) Read(addr uint64, n int) (uint64, bool) {
	if !m.Valid(addr, n) {
		return 0, false
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.data[addr+uint64(i)])
	}
	return v, true
}

// Write stores the low n bytes of val at addr, little-endian.
func (m *Memory) Write(addr uint64, n int, val uint64) bool {
	if !m.Valid(addr, n) {
		return false
	}
	if m.track {
		m.mark(addr, n)
	}
	if m.codeVer != nil {
		m.bumpVer(addr, n)
	}
	for i := 0; i < n; i++ {
		m.data[addr+uint64(i)] = byte(val >> (8 * i))
	}
	return true
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) bool {
	if !m.Valid(addr, len(dst)) {
		return false
	}
	copy(dst, m.data[addr:])
	return true
}

// WriteBytes copies src into memory at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) bool {
	if !m.Valid(addr, len(src)) {
		return false
	}
	if m.track && len(src) > 0 {
		m.mark(addr, len(src))
	}
	if m.codeVer != nil && len(src) > 0 {
		m.bumpVer(addr, len(src))
	}
	copy(m.data[addr:], src)
	return true
}

// Byte returns the byte at addr (for device-side reads).
func (m *Memory) Byte(addr uint64) (byte, bool) {
	if !m.Valid(addr, 1) {
		return 0, false
	}
	return m.data[addr], true
}

// FlipBit flips a single bit: the transient-fault primitive for faults
// injected directly into memory/architectural state.
func (m *Memory) FlipBit(addr uint64, bit uint) bool {
	if !m.Valid(addr, 1) || bit > 7 {
		return false
	}
	if m.track {
		m.mark(addr, 1)
	}
	if m.codeVer != nil {
		m.bumpVer(addr, 1)
	}
	m.data[addr] ^= 1 << bit
	return true
}

// Clone returns a deep copy (used for golden-state snapshots).
func (m *Memory) Clone() *Memory {
	d := make([]byte, len(m.data))
	copy(d, m.data)
	return &Memory{data: d}
}

// CopyFrom overwrites this memory's contents from src (sizes must
// match). With tracking enabled this re-baselines the dirty set: the
// memory now equals src everywhere, so pending dirty pages are cleared.
func (m *Memory) CopyFrom(src *Memory) {
	if len(m.data) != len(src.data) {
		panic(fmt.Sprintf("mem.CopyFrom: size mismatch %d != %d", len(m.data), len(src.data)))
	}
	copy(m.data, src.data)
	if m.track {
		m.clearDirty()
	}
	if m.codeVer != nil {
		m.bumpAllVer()
	}
}

// Word32 reads an aligned 32-bit word (instruction fetch helper).
func (m *Memory) Word32(addr uint64) (uint32, bool) {
	if addr%4 != 0 || !m.Valid(addr, 4) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), true
}

// IsMMIO reports whether addr targets the device register window.
func IsMMIO(addr uint64) bool { return addr >= MMIOBase && addr < MMIOBase+MMIOSize }
