package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(1 << 16)
	f := func(addr uint16, val uint64, szSel uint8) bool {
		n := []int{1, 2, 4, 8}[szSel%4]
		a := uint64(addr)
		if a < GuardTop {
			a += GuardTop
		}
		a &^= uint64(n - 1) // align
		if !m.Write(a, n, val) {
			return a+uint64(n) > m.Size()
		}
		got, ok := m.Read(a, n)
		want := val
		if n < 8 {
			want &= 1<<(8*n) - 1
		}
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGuardPage(t *testing.T) {
	m := New(0)
	if m.Size() != DefaultSize {
		t.Fatalf("default size: %d", m.Size())
	}
	if _, ok := m.Read(0, 4); ok {
		t.Fatal("null page must not be readable")
	}
	if m.Write(GuardTop-4, 8, 1) {
		t.Fatal("write straddling guard must fail")
	}
	if _, ok := m.Read(m.Size()-4, 8); ok {
		t.Fatal("read past end must fail")
	}
	if _, ok := m.Read(^uint64(0)-3, 4); ok {
		t.Fatal("wraparound read must fail")
	}
}

func TestLittleEndian(t *testing.T) {
	m := New(1 << 16)
	m.Write(0x2000, 4, 0x11223344)
	b, _ := m.Byte(0x2000)
	if b != 0x44 {
		t.Fatalf("little endian: got %#x", b)
	}
	w, ok := m.Word32(0x2000)
	if !ok || w != 0x11223344 {
		t.Fatalf("word32: %#x", w)
	}
	if _, ok := m.Word32(0x2002); ok {
		t.Fatal("misaligned word32 must fail")
	}
}

func TestFlipBit(t *testing.T) {
	m := New(1 << 16)
	m.Write(0x3000, 1, 0)
	if !m.FlipBit(0x3000, 7) {
		t.Fatal("flip failed")
	}
	v, _ := m.Read(0x3000, 1)
	if v != 0x80 {
		t.Fatalf("after flip: %#x", v)
	}
	m.FlipBit(0x3000, 7)
	v, _ = m.Read(0x3000, 1)
	if v != 0 {
		t.Fatal("double flip must restore")
	}
	if m.FlipBit(0x100, 0) {
		t.Fatal("guard page flip must fail")
	}
	if m.FlipBit(0x3000, 8) {
		t.Fatal("bit > 7 must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(1 << 16)
	m.Write(0x4000, 8, 0xDEADBEEF)
	c := m.Clone()
	c.Write(0x4000, 8, 1)
	v, _ := m.Read(0x4000, 8)
	if v != 0xDEADBEEF {
		t.Fatal("clone must not alias")
	}
	m2 := New(1 << 16)
	m2.CopyFrom(m)
	v, _ = m2.Read(0x4000, 8)
	if v != 0xDEADBEEF {
		t.Fatal("CopyFrom")
	}
}

func TestValidBoundaries(t *testing.T) {
	m := New(1 << 16)
	size := m.Size()
	cases := []struct {
		addr uint64
		n    int
		want bool
	}{
		{GuardTop, 0, true},               // zero-length access at the floor
		{GuardTop, 8, true},               // first valid word
		{GuardTop - 1, 8, false},          // straddles the guard floor
		{size - 8, 8, true},               // last full word
		{size - 7, 8, false},              // one past the last word
		{size, 0, true},                   // zero-length access at the end
		{size, 1, false},                  // first invalid byte
		{GuardTop, -1, false},             // negative length
		{^uint64(0), 1, false},            // addr+n wraps to 0
		{^uint64(0) - 7, 8, false},        // addr+n wraps exactly to 0
		{^uint64(0) - 7, 16, false},       // wraps past 0 into low addresses
		{size, int(^uint(0) >> 1), false}, // huge length far past the end
		{0, 8, false},                     // null page
		{GuardTop / 2, 4, false},          // inside the guard region
	}
	for _, c := range cases {
		if got := m.Valid(c.addr, c.n); got != c.want {
			t.Errorf("Valid(%#x, %d) = %v, want %v", c.addr, c.n, got, c.want)
		}
	}
}

func TestDirtyTracking(t *testing.T) {
	golden := New(1 << 16)
	golden.Write(0x2000, 8, 0x1111)
	arena := golden.Clone()
	arena.EnableTracking()
	arena.CopyFrom(golden) // baseline; must clear the dirty set
	if n := arena.DirtyPages(); n != 0 {
		t.Fatalf("dirty after CopyFrom baseline: %d pages", n)
	}

	arena.Write(0x2000, 8, 0xFFFF)
	arena.FlipBit(0x5000, 3)
	if n := arena.DirtyPages(); n != 2 {
		t.Fatalf("dirty pages = %d, want 2", n)
	}
	// A multi-page WriteBytes must mark every page it touches.
	span := make([]byte, 2*PageSize+16)
	for i := range span {
		span[i] = 0xAB
	}
	if !arena.WriteBytes(PageSize*4-8, span) {
		t.Fatal("WriteBytes failed")
	}
	if n := arena.DirtyPages(); n < 5 {
		t.Fatalf("dirty pages = %d, want >= 5 (2 + 3-4 spanned)", n)
	}

	arena.RestoreDirty(golden)
	if n := arena.DirtyPages(); n != 0 {
		t.Fatalf("dirty after RestoreDirty: %d pages", n)
	}
	for _, a := range []uint64{0x2000, 0x5000, PageSize*4 - 8, PageSize * 5} {
		got, _ := arena.Read(a, 8)
		want, _ := golden.Read(a, 8)
		if got != want {
			t.Fatalf("addr %#x not restored: %#x != %#x", a, got, want)
		}
	}
}

func TestRestoreDirtyUntrackedFallsBack(t *testing.T) {
	golden := New(1 << 16)
	golden.Write(0x3000, 8, 7)
	arena := golden.Clone()
	arena.Write(0x3000, 8, 9) // no tracking enabled
	arena.RestoreDirty(golden)
	if v, _ := arena.Read(0x3000, 8); v != 7 {
		t.Fatalf("untracked RestoreDirty must full-copy: got %d", v)
	}
}

func TestIsMMIO(t *testing.T) {
	if !IsMMIO(MMIOBase) || !IsMMIO(MMIOBase+MMIOSize-1) || IsMMIO(MMIOBase-1) || IsMMIO(MMIOBase+MMIOSize) {
		t.Fatal("MMIO window")
	}
}

// TestPageEqualAndDirtyTracking covers the early-stop helpers: dirty
// page capture/take and the page-granular comparison.
func TestPageEqualAndDirtyTracking(t *testing.T) {
	a := New(1 << 16)
	b := New(1 << 16)
	if !a.PageEqual(b, 3) {
		t.Fatal("fresh memories must be page-equal")
	}
	a.Write(3<<PageShift+8, 8, 0xDEADBEEF)
	if a.PageEqual(b, 3) {
		t.Fatal("diverged page reported equal")
	}
	if !a.PageEqual(b, 4) {
		t.Fatal("untouched page reported unequal")
	}
	b.Write(3<<PageShift+8, 8, 0xDEADBEEF)
	if !a.PageEqual(b, 3) {
		t.Fatal("re-converged page reported unequal")
	}
	// Out-of-range pages compare equal (no backing bytes to differ).
	if !a.PageEqual(b, 1<<20) {
		t.Fatal("out-of-range page must compare equal")
	}

	m := New(1 << 16)
	if m.Tracking() {
		t.Fatal("tracking on by default")
	}
	m.EnableTracking()
	if !m.Tracking() {
		t.Fatal("tracking not enabled")
	}
	m.Write(5<<PageShift, 8, 1)
	m.Write(9<<PageShift, 8, 1)
	got := m.TakeDirtyPages()
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("TakeDirtyPages = %v, want [5 9]", got)
	}
	if len(m.DirtyPageList()) != 0 {
		t.Fatal("take must re-baseline the dirty set")
	}
	m.Write(5<<PageShift, 8, 2)
	if l := m.DirtyPageList(); len(l) != 1 || l[0] != 5 {
		t.Fatalf("DirtyPageList = %v, want [5]", l)
	}
}
