// Package codegen lowers IR modules to VSA machine code. It performs a
// simple per-block register allocation: virtual registers live in frame
// slots, and a block-local register cache keeps hot values in physical
// registers, writing dirty values back at block boundaries and calls.
package codegen

import (
	"fmt"

	"vulnstack/internal/asm"
	"vulnstack/internal/ir"
	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

// Build compiles an IR module into a loadable VSA program for the given
// ISA variant. The module must have been generated for the matching
// word width (32 for VSA32, 64 for VSA64).
func Build(m *ir.Module, is isa.ISA) (*asm.Program, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	b := asm.NewBuilder(is, mem.UserBase)
	g := &gen{m: m, b: b, is: is, wb: is.WordBytes()}

	// _start first so the image entry point is the program start.
	if start, ok := m.Lookup("_start"); ok {
		b.Label("_start")
		g.genFunc(start)
	} else {
		return nil, fmt.Errorf("codegen: module has no _start")
	}
	for _, f := range m.Funcs {
		if f.Name == "_start" {
			continue
		}
		g.genFunc(f)
	}
	for _, gl := range m.Globals {
		b.Align(8)
		b.DataLabel("g_" + gl.Name)
		pad := make([]byte, gl.Size)
		copy(pad, gl.Init)
		b.Bytes(pad)
	}
	return b.Finish()
}

type gen struct {
	m  *ir.Module
	b  *asm.Builder
	is isa.ISA
	wb int

	f         *ir.Func
	frameSize int64
	raOff     int64
	slotOff   []int64 // frame-slot offsets

	// Register cache state.
	pool  []int
	bound map[int]int  // vreg -> phys reg
	owner map[int]int  // phys reg -> vreg
	dirty map[int]bool // phys reg dirty
	stamp map[int]int64
	tick  int64
}

const (
	regA0 = isa.RegA0
	regA1 = isa.RegA1
	regA2 = isa.RegA2
	tmp   = isa.RegTMP
	sp    = isa.RegSP
	ra    = isa.RegRA
)

func (g *gen) funcLabel(name string) string { return "f_" + name }

func (g *gen) blockLabel(fn string, b int) string {
	return fmt.Sprintf("f_%s_b%d", fn, b)
}

// vregOff returns the frame offset of a vreg's home slot.
func (g *gen) vregOff(v int) int64 { return int64(v) * int64(g.wb) }

func (g *gen) genFunc(f *ir.Func) {
	g.f = f
	// Frame layout: [vreg slots][saved ra][frame slots], 16-aligned.
	off := int64(f.NumVReg) * int64(g.wb)
	g.raOff = off
	off += int64(g.wb)
	g.slotOff = g.slotOff[:0]
	for _, s := range f.Slots {
		align := int64(s.Align)
		if align < 1 {
			align = 1
		}
		off = (off + align - 1) &^ (align - 1)
		g.slotOff = append(g.slotOff, off)
		off += int64(s.Size)
	}
	g.frameSize = (off + 15) &^ 15

	// Allocatable pool: r8 and up (r0-r7 are zero/ra/sp/tmp/args).
	g.pool = g.pool[:0]
	for r := 8; r < g.is.NumRegs(); r++ {
		g.pool = append(g.pool, r)
	}

	b := g.b
	b.Label(g.funcLabel(f.Name))
	g.addSP(-g.frameSize)
	g.storeSP(ra, g.raOff)
	// Copy incoming arguments (caller-pushed above our frame) into the
	// parameter vregs' home slots.
	for i := 0; i < f.NumArgs; i++ {
		g.loadSP(tmp, g.frameSize+int64(i)*int64(g.wb))
		g.storeSP(tmp, g.vregOff(i))
	}

	for bi, blk := range f.Blocks {
		b.Label(g.blockLabel(f.Name, bi))
		g.resetCache()
		for ii := range blk.Instrs {
			g.genInstr(&blk.Instrs[ii])
		}
	}
}

// addSP adjusts the stack pointer by delta (may exceed 12-bit range).
func (g *gen) addSP(delta int64) {
	if delta == 0 {
		return
	}
	if delta >= -2048 && delta <= 2047 {
		g.b.Addi(sp, sp, delta)
		return
	}
	g.b.Li(tmp, delta)
	g.b.Add(sp, sp, tmp)
}

// loadSP loads a word from sp+off into reg, handling large offsets.
func (g *gen) loadSP(reg int, off int64) {
	if off >= -2048 && off <= 2047 {
		g.b.Lword(reg, off, sp)
		return
	}
	g.b.Li(tmp, off)
	g.b.Add(tmp, sp, tmp)
	g.b.Lword(reg, 0, tmp)
}

// storeSP stores reg to sp+off, handling large offsets. reg must not be
// tmp when the offset is large.
func (g *gen) storeSP(reg int, off int64) {
	if off >= -2048 && off <= 2047 {
		g.b.Sword(reg, off, sp)
		return
	}
	if reg == tmp {
		// Move the value aside first: tmp is needed for the address.
		panic("codegen: storeSP(tmp) with large offset")
	}
	g.b.Li(tmp, off)
	g.b.Add(tmp, sp, tmp)
	g.b.Sword(reg, 0, tmp)
}

// --- register cache ---

func (g *gen) resetCache() {
	g.bound = make(map[int]int)
	g.owner = make(map[int]int)
	g.dirty = make(map[int]bool)
	g.stamp = make(map[int]int64)
}

// alloc returns a free physical register, spilling the least recently
// used one if necessary. Registers in pinned are not evicted.
func (g *gen) alloc(pinned map[int]bool) int {
	for _, r := range g.pool {
		if _, used := g.owner[r]; !used {
			return r
		}
	}
	victim, best := -1, int64(1<<62)
	for _, r := range g.pool {
		if pinned[r] {
			continue
		}
		if g.stamp[r] < best {
			victim, best = r, g.stamp[r]
		}
	}
	if victim < 0 {
		panic("codegen: register pool exhausted")
	}
	g.spill(victim)
	return victim
}

func (g *gen) spill(r int) {
	v, ok := g.owner[r]
	if !ok {
		return
	}
	if g.dirty[r] {
		g.storeSP(r, g.vregOff(v))
	}
	delete(g.owner, r)
	delete(g.bound, v)
	delete(g.dirty, r)
}

// use returns a register holding vreg v's current value.
func (g *gen) use(v int, pinned map[int]bool) int {
	if r, ok := g.bound[v]; ok {
		g.tick++
		g.stamp[r] = g.tick
		return r
	}
	r := g.alloc(pinned)
	g.loadSP(r, g.vregOff(v))
	g.bind(v, r, false)
	return r
}

// def returns a register for defining vreg v (no load).
func (g *gen) def(v int, pinned map[int]bool) int {
	if r, ok := g.bound[v]; ok {
		g.tick++
		g.stamp[r] = g.tick
		g.dirty[r] = true
		return r
	}
	r := g.alloc(pinned)
	g.bind(v, r, true)
	return r
}

func (g *gen) bind(v, r int, dirty bool) {
	g.bound[v] = r
	g.owner[r] = v
	g.dirty[r] = dirty
	g.tick++
	g.stamp[r] = g.tick
}

// flush writes every dirty binding back and clears the cache.
func (g *gen) flush() {
	// Deterministic order: iterate the pool.
	for _, r := range g.pool {
		if _, ok := g.owner[r]; ok {
			g.spill(r)
		}
	}
}

func pin(rs ...int) map[int]bool {
	m := make(map[int]bool, len(rs))
	for _, r := range rs {
		m[r] = true
	}
	return m
}

// --- instruction lowering ---

func (g *gen) genInstr(in *ir.Instr) {
	b := g.b
	switch in.Op {
	case ir.OpConst:
		d := g.def(in.Dst, nil)
		b.Li(d, in.Imm)

	case ir.OpCopy:
		a := g.use(in.A, nil)
		d := g.def(in.Dst, pin(a))
		b.Mv(d, a)

	case ir.OpBin:
		g.genBin(in)

	case ir.OpLoad:
		a := g.use(in.A, nil)
		d := g.def(in.Dst, pin(a))
		switch {
		case in.Size == 1 && in.Unsigned:
			b.Lbu(d, 0, a)
		case in.Size == 1:
			b.Lb(d, 0, a)
		case in.Size == 2 && in.Unsigned:
			b.Lhu(d, 0, a)
		case in.Size == 2:
			b.Lh(d, 0, a)
		case in.Size == 4 && g.is == isa.VSA64 && in.Unsigned:
			b.Lwu(d, 0, a)
		case in.Size == 4 && g.is == isa.VSA64:
			b.Lw(d, 0, a)
		case in.Size == 4:
			b.Lw(d, 0, a)
		default:
			b.Ld(d, 0, a)
		}

	case ir.OpStore:
		a := g.use(in.A, nil)
		v := g.use(in.B, pin(a))
		switch in.Size {
		case 1:
			b.Sb(v, 0, a)
		case 2:
			b.Sh(v, 0, a)
		case 4:
			b.Sw(v, 0, a)
		default:
			b.Sd(v, 0, a)
		}

	case ir.OpGlobal:
		d := g.def(in.Dst, nil)
		b.La(d, "g_"+in.Sym)

	case ir.OpFrame:
		d := g.def(in.Dst, nil)
		off := g.slotOff[in.Slot]
		if off <= 2047 {
			b.Addi(d, sp, off)
		} else {
			b.Li(d, off)
			b.Add(d, sp, d)
		}

	case ir.OpCall:
		g.genCall(in)

	case ir.OpSyscall:
		g.genSyscall(in)

	case ir.OpRet:
		if in.A >= 0 {
			r := g.use(in.A, nil)
			b.Mv(regA0, r)
		}
		g.loadSP(ra, g.raOff)
		g.addSP(g.frameSize)
		b.Ret()
		g.resetCache()

	case ir.OpBr:
		g.flush()
		b.Jmp(g.blockLabel(g.f.Name, in.Target))

	case ir.OpCondBr:
		c := g.use(in.A, nil)
		g.flush()
		b.Bne(c, isa.RegZero, g.blockLabel(g.f.Name, in.Target))
		b.Jmp(g.blockLabel(g.f.Name, in.Else))
	}
}

func (g *gen) genBin(in *ir.Instr) {
	b := g.b
	a := g.use(in.A, nil)
	r2 := g.use(in.B, pin(a))
	d := g.def(in.Dst, pin(a, r2))
	switch in.Bin {
	case ir.Add:
		b.Add(d, a, r2)
	case ir.Sub:
		b.Sub(d, a, r2)
	case ir.Mul:
		b.Mul(d, a, r2)
	case ir.Div:
		b.Div(d, a, r2)
	case ir.Rem:
		b.Rem(d, a, r2)
	case ir.And:
		b.And(d, a, r2)
	case ir.Or:
		b.Or(d, a, r2)
	case ir.Xor:
		b.Xor(d, a, r2)
	case ir.Shl:
		b.Sll(d, a, r2)
	case ir.LShr:
		b.Srl(d, a, r2)
	case ir.AShr:
		b.Sra(d, a, r2)
	case ir.Eq:
		b.Xor(tmp, a, r2)
		b.Sltiu(d, tmp, 1)
	case ir.Ne:
		b.Xor(tmp, a, r2)
		b.Sltu(d, isa.RegZero, tmp)
	case ir.Lt:
		b.Slt(d, a, r2)
	case ir.Le:
		b.Slt(d, r2, a)
		b.Xori(d, d, 1)
	case ir.Gt:
		b.Slt(d, r2, a)
	case ir.Ge:
		b.Slt(d, a, r2)
		b.Xori(d, d, 1)
	case ir.LtU:
		b.Sltu(d, a, r2)
	case ir.GeU:
		b.Sltu(d, a, r2)
		b.Xori(d, d, 1)
	}
}

func (g *gen) genCall(in *ir.Instr) {
	b := g.b
	wb := int64(g.wb)
	argBytes := (int64(len(in.Args))*wb + 15) &^ 15
	// Stage arguments below the current stack pointer, then adjust sp.
	for i, av := range in.Args {
		r := g.use(av, nil)
		off := -argBytes + int64(i)*wb
		b.Sword(r, off, sp)
	}
	g.flush()
	g.addSP(-argBytes)
	b.Call(g.funcLabel(in.Sym))
	g.addSP(argBytes)
	if in.HasDst() {
		d := g.def(in.Dst, nil)
		b.Mv(d, regA0)
	}
}

func (g *gen) genSyscall(in *ir.Instr) {
	b := g.b
	// Load values, then move into the argument registers (which are
	// outside the allocatable pool), then flush and trap.
	n := g.use(in.A, nil)
	var args []int
	pins := pin(n)
	for _, av := range in.Args {
		r := g.use(av, pins)
		pins[r] = true
		args = append(args, r)
	}
	b.Mv(regA0, n)
	if len(args) > 0 {
		b.Mv(regA1, args[0])
	}
	if len(args) > 1 {
		b.Mv(regA2, args[1])
	}
	g.flush()
	b.Ecall()
	d := g.def(in.Dst, nil)
	b.Mv(d, regA0)
}
