package codegen

import (
	"bytes"
	"testing"

	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/ir"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/minic"
)

// runIR executes src on the IR interpreter.
func runIR(t *testing.T, src string, width int) ([]byte, int64) {
	t.Helper()
	m, err := minic.Compile(src, width)
	if err != nil {
		t.Fatalf("compile IR: %v", err)
	}
	ip := ir.NewInterp(m, width, 1<<20)
	ip.MaxSteps = 1 << 26
	if err := ip.Run("_start"); err != nil {
		t.Fatalf("IR run: %v", err)
	}
	return ip.Out, ip.ExitCode
}

// runMachine compiles src to machine code and boots it on the emulator.
func runMachine(t *testing.T, src string, is isa.ISA) ([]byte, uint64) {
	t.Helper()
	width := is.XLen()
	m, err := minic.Compile(src, width)
	if err != nil {
		t.Fatalf("compile IR: %v", err)
	}
	prog, err := Build(m, is)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatalf("image: %v", err)
	}
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(is, bus, img.Entry)
	if !c.Run(1 << 26) {
		t.Fatalf("watchdog expired (instret=%d, pc=%#x)", c.Instret, c.PC)
	}
	if bus.Halt != dev.HaltClean {
		t.Fatalf("abnormal halt: %v (panic code %d) pc=%#x", bus.Halt, bus.PanicCode, c.PC)
	}
	return bus.Out, bus.ExitCode
}

// differential asserts IR-interpreter and machine executions agree on
// both ISA variants.
func differential(t *testing.T, src string) {
	t.Helper()
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		wantOut, wantCode := runIR(t, src, is.XLen())
		gotOut, gotCode := runMachine(t, src, is)
		if !bytes.Equal(gotOut, wantOut) {
			t.Fatalf("%v: output mismatch\n machine %v\n ir      %v", is, gotOut, wantOut)
		}
		if gotCode != uint64(wantCode)&is.Mask() {
			t.Fatalf("%v: exit code %d, want %d", is, gotCode, wantCode)
		}
	}
}

func TestDiffHello(t *testing.T) {
	differential(t, `
func main() int {
	out('o')
	out('k')
	return 0
}`)
}

func TestDiffArithmetic(t *testing.T) {
	differential(t, `
func main() int {
	var a int = 123456
	var b int = -789
	out32(a * b)
	out32(a / (0 - b))
	out32(a % 1000)
	out32((a << 3) ^ (a >> 2))
	out32(a & b | 0x5A5A)
	out32(-a)
	out32((7 / 0) + (7 % 0))
	return 0
}`)
}

func TestDiffControlAndCalls(t *testing.T) {
	differential(t, `
func gcd(a int, b int) int {
	while b != 0 {
		var tt int = b
		b = a % b
		a = tt
	}
	return a
}

func fib(n int) int {
	if n < 2 { return n }
	return fib(n-1) + fib(n-2)
}

func main() int {
	out(gcd(462, 1071))   // 21
	out(fib(12) & 255)    // 144
	var i int
	var s int = 0
	for i = 1; i <= 100; i = i + 1 {
		if i % 3 == 0 && i % 5 == 0 { continue }
		if i > 90 { break }
		s = s + i
	}
	out32(s)
	return 3
}`)
}

func TestDiffArraysAndPointers(t *testing.T) {
	differential(t, `
const N = 32
var data [N]int
var bytes [N]byte

func fill(p *int, n int, seed int) {
	var i int
	for i = 0; i < n; i = i + 1 {
		seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
		p[i] = seed
	}
}

func main() int {
	fill(data, N, 42)
	var i int
	var sum int = 0
	for i = 0; i < N; i = i + 1 {
		bytes[i] = data[i]
		sum = sum + bytes[i]
	}
	out32(sum)
	out32(data[7] & 0xFFFF)
	var p *int = &data[4]
	out32(*p & 255)
	p = p + 3
	out32(p[0] & 255)
	return 0
}`)
}

func TestDiffGlobalsInit(t *testing.T) {
	differential(t, `
var tbl [6]int = {5, -4, 3, -2, 1, 0x7FFF}
var msg [12]byte = "hello"
var g int = -77

func main() int {
	var i int
	for i = 0; i < 6; i = i + 1 {
		out32(tbl[i])
	}
	for i = 0; i < 5; i = i + 1 {
		out(msg[i])
	}
	out32(g)
	return 0
}`)
}

func TestDiffShortCircuitEffects(t *testing.T) {
	differential(t, `
var n int

func eff(v int) int {
	n = n + 1
	return v
}

func main() int {
	if eff(0) && eff(1) { out(9) }
	out(n)               // 1
	if eff(1) || eff(1) { out(8) }
	out(n)               // 2
	out(!(n == 2))       // 0
	out(eff(0) || eff(3)) // 1 (nonzero -> bool 1)
	out(n)               // 4
	return 0
}`)
}

func TestDiffLocalArraysRecursion(t *testing.T) {
	differential(t, `
func rev(p *byte, n int) {
	var i int
	for i = 0; i < n/2; i = i + 1 {
		var tt int = p[i]
		p[i] = p[n-1-i]
		p[n-1-i] = tt
	}
}

func work(depth int) int {
	var buf [16]byte
	var i int
	for i = 0; i < 16; i = i + 1 {
		buf[i] = depth*16 + i
	}
	rev(&buf[0], 16)
	if depth > 0 {
		return buf[0] + work(depth-1)
	}
	return buf[0]
}

func main() int {
	out32(work(5))
	return 0
}`)
}

func TestDiffBigFunctionSpills(t *testing.T) {
	// Enough simultaneously-live values to exceed the register pool on
	// VSA32 (8 allocatable registers), forcing spills.
	differential(t, `
func main() int {
	var a int = 1
	var b int = 2
	var c int = 3
	var d int = 4
	var e int = 5
	var f int = 6
	var g int = 7
	var h int = 8
	var i int = 9
	var j int = 10
	var k int = 11
	var l int = 12
	var m int = a*b + c*d + e*f + g*h + i*j + k*l
	out32(m + a + b + c + d + e + f + g + h + i + j + k + l)
	out32((a+b)*(c+d)*(e+f)*(g+h) - (i+j)*(k+l))
	return 0
}`)
}

func TestDiffSyscallReturn(t *testing.T) {
	differential(t, `
func main() int {
	var r int = __syscall(3, 0, 0) // read: returns 0
	out(r + 65)
	var bad int = __syscall(99, 0, 0) // unknown: -1
	out(bad & 255)
	return 0
}`)
}

func TestDiffWidthWrap(t *testing.T) {
	// Verify per-width overflow behaviour matches between engines
	// (outputs differ across widths; the differential helper compares
	// per-width only).
	differential(t, `
func main() int {
	var x int = 0x7FFFFFFF
	x = x + 1
	if x < 0 { out(1) } else { out(2) }
	var y int = 0xABCD1234
	out32(y ^ (y >> 7))
	return 0
}`)
}

func TestBuildRejectsBadModule(t *testing.T) {
	m := &ir.Module{Funcs: []*ir.Func{{Name: "broken"}}}
	if _, err := Build(m, isa.VSA64); err == nil {
		t.Fatal("verifier must reject empty function")
	}
	ok, err := minic.Compile(`func main() int { return 0 }`, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ok, isa.VSA64); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizedModulesBehaveIdentically compiles benchmarks, applies
// the IR optimizer, and verifies machine behaviour is unchanged while
// the dynamic instruction count shrinks.
func TestOptimizedModulesBehaveIdentically(t *testing.T) {
	spec := `
const N = 24
var a [N]int
func main() int {
	var i int
	for i = 0; i < N; i = i + 1 {
		a[i] = (i * 3 + 1) ^ (2 * 8)
	}
	var s int = 0
	for i = 0; i < N; i = i + 1 {
		s = s + a[i] * (4 - 3)
	}
	out32(s)
	return 0
}`
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		m, err := minic.Compile(spec, is.XLen())
		if err != nil {
			t.Fatal(err)
		}
		base := m.NumInstrs()
		baseOut, _ := runMachineModule(t, m, is)
		if n := ir.Optimize(m); n == 0 {
			t.Fatal("optimizer found nothing in constant-rich code")
		}
		if m.NumInstrs() >= base {
			t.Fatalf("%v: no static shrink (%d -> %d)", is, base, m.NumInstrs())
		}
		optOut, _ := runMachineModule(t, m, is)
		if !bytes.Equal(optOut, baseOut) {
			t.Fatalf("%v: optimization changed output", is)
		}
	}
}

// runMachineModule runs an already-compiled module on the emulator.
func runMachineModule(t *testing.T, m *ir.Module, is isa.ISA) ([]byte, uint64) {
	t.Helper()
	prog, err := Build(m, is)
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(is, bus, img.Entry)
	if !c.Run(1 << 26) {
		t.Fatal("watchdog")
	}
	if bus.Halt != dev.HaltClean {
		t.Fatalf("halt %v", bus.Halt)
	}
	return bus.Out, c.Instret
}
