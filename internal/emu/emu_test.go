package emu

import (
	"bytes"
	"math/rand"
	"testing"

	"vulnstack/internal/asm"
	"vulnstack/internal/dev"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
)

// runBare assembles a program at UserBase and runs it in kernel mode
// (bare machine, no kernel), returning the CPU and bus after halt.
func runBare(t *testing.T, is isa.ISA, build func(b *asm.Builder)) (*CPU, *dev.Bus) {
	t.Helper()
	b := asm.NewBuilder(is, mem.UserBase)
	build(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(1 << 20)
	if err := p.Load(m); err != nil {
		t.Fatal(err)
	}
	bus := dev.NewBus(m)
	c := New(is, bus, p.Entry)
	if !c.Run(1 << 20) {
		t.Fatal("watchdog expired")
	}
	return c, bus
}

// halt stores r4 to the halt port.
func halt(b *asm.Builder) {
	b.Li(isa.RegTMP, int64(mem.MMIOBase))
	b.Sword(isa.RegA0, dev.RegHalt, isa.RegTMP)
}

func TestLiMaterialization(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vals := []int64{0, 1, -1, 2047, -2048, 2048, -2049, 1 << 20, -(1 << 20),
		0x7FFFFFFF, -0x80000000, 0x80000000, 0x123456789ABCDEF0, -6148914691236517206}
	for i := 0; i < 40; i++ {
		vals = append(vals, int64(r.Uint64()))
	}
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		for _, v := range vals {
			v := v
			c, _ := runBare(t, is, func(b *asm.Builder) {
				b.Li(5, v)
				b.Mv(isa.RegA0, 5)
				halt(b)
			})
			want := uint64(v) & is.Mask()
			if got := c.Reg(5); got != want {
				t.Fatalf("%v: Li(%#x) = %#x, want %#x", is, v, got, want)
			}
		}
	}
}

func neg(v int64) uint64 { return uint64(-v) }

func TestALUSemantics(t *testing.T) {
	type tc struct {
		op   isa.Op
		a, b int64
		w32  uint64 // expected on VSA32
		w64  uint64 // expected on VSA64
	}
	cases := []tc{
		{isa.ADD, 5, 7, 12, 12},
		{isa.SUB, 5, 7, 0xFFFFFFFE, 0xFFFFFFFFFFFFFFFE},
		{isa.MUL, -3, 7, 0xFFFFFFEB, 0xFFFFFFFFFFFFFFEB},
		{isa.DIV, -7, 2, neg(3) & 0xFFFFFFFF, neg(3)},
		{isa.DIV, 7, 0, 0xFFFFFFFF, ^uint64(0)},
		{isa.REM, -7, 2, neg(1) & 0xFFFFFFFF, neg(1)},
		{isa.REM, 7, 0, 7, 7},
		{isa.DIVU, 7, 0, 0xFFFFFFFF, ^uint64(0)},
		{isa.REMU, 7, 0, 7, 7},
		{isa.SLT, -1, 0, 1, 1},
		{isa.SLTU, -1, 0, 0, 0}, // -1 is max unsigned
		{isa.SRA, -8, 1, neg(4) & 0xFFFFFFFF, neg(4)},
		{isa.SRL, -8, 1, 0x7FFFFFFC, 0x7FFFFFFFFFFFFFFC},
		{isa.AND, 0xF0F, 0x0FF, 0x00F, 0x00F},
		{isa.XOR, 0xF0F, 0x0FF, 0xFF0, 0xFF0},
	}
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		for _, c := range cases {
			c := c
			cpu, _ := runBare(t, is, func(b *asm.Builder) {
				b.Li(5, c.a)
				b.Li(6, c.b)
				b.Inst(c.op, 7, 5, 6)
				halt(b)
			})
			want := c.w64
			if is == isa.VSA32 {
				want = c.w32
			}
			if got := cpu.Reg(7); got != want {
				t.Fatalf("%v %v(%d,%d) = %#x want %#x", is, c.op, c.a, c.b, got, want)
			}
		}
	}
}

func TestShiftMasking(t *testing.T) {
	// Shift amounts use only the low bits (5 on VSA32, 6 on VSA64).
	c, _ := runBare(t, isa.VSA32, func(b *asm.Builder) {
		b.Li(5, 1)
		b.Li(6, 33) // 33 & 31 == 1
		b.Sll(7, 5, 6)
		halt(b)
	})
	if c.Reg(7) != 2 {
		t.Fatalf("VSA32 sll by 33: %d", c.Reg(7))
	}
	c, _ = runBare(t, isa.VSA64, func(b *asm.Builder) {
		b.Li(5, 1)
		b.Li(6, 65) // 65 & 63 == 1
		b.Sll(7, 5, 6)
		halt(b)
	})
	if c.Reg(7) != 2 {
		t.Fatalf("VSA64 sll by 65: %d", c.Reg(7))
	}
}

func TestLoadsStores(t *testing.T) {
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		c, _ := runBare(t, is, func(b *asm.Builder) {
			b.La(5, "buf")
			b.Li(6, -2) // 0xFF..FE
			b.Sw(6, 0, 5)
			b.Lb(7, 0, 5)   // sign-extended 0xFE
			b.Lbu(8, 0, 5)  // 0xFE
			b.Lhu(9, 0, 5)  // 0xFFFE
			b.Lh(10, 2, 5)  // sign-extended 0xFFFF
			halt(b)
			b.DataLabel("buf")
			b.Zero(16)
		})
		if got := c.Reg(7); got != neg(2)&c.ISA.Mask() {
			t.Fatalf("%v lb: %#x", is, got)
		}
		if c.Reg(8) != 0xFE || c.Reg(9) != 0xFFFE {
			t.Fatalf("%v lbu/lhu: %#x %#x", is, c.Reg(8), c.Reg(9))
		}
		if got := c.Reg(10); got != neg(1)&c.ISA.Mask() {
			t.Fatalf("%v lh: %#x", is, got)
		}
	}
}

func TestControlFlow(t *testing.T) {
	// Sum 1..10 with a loop; call/return through a function.
	c, _ := runBare(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		b.Li(5, 10)
		b.Call("sum")
		b.Mv(isa.RegA0, 6)
		halt(b)
		b.Label("sum")
		b.Li(6, 0)
		b.Label("loop")
		b.Add(6, 6, 5)
		b.Addi(5, 5, -1)
		b.Bne(5, 0, "loop")
		b.Ret()
	})
	if c.Reg(isa.RegA0) != 55 {
		t.Fatalf("sum: %d", c.Reg(isa.RegA0))
	}
}

func TestTrapsHaltBareMachine(t *testing.T) {
	// In a bare (kernel-mode) machine any fault is a double fault ->
	// panic halt. TVEC is zero, but double-fault fires first.
	cases := []func(b *asm.Builder){
		func(b *asm.Builder) { // illegal instruction
			b.Li(5, 0x8000)
			b.Jalr(0, 5, 0) // jump to zeroed memory -> illegal (0 word) after fetch OK
		},
		func(b *asm.Builder) { // load fault (null)
			b.Lw(5, 0, 0)
		},
		func(b *asm.Builder) { // misaligned load
			b.Li(5, 0x8002)
			b.Lw(6, 0, 5)
		},
		func(b *asm.Builder) { // misaligned jump
			b.Li(5, 0x8002)
			b.Jalr(0, 5, 0)
		},
		func(b *asm.Builder) { // fetch outside RAM
			b.Li(5, 0x7FFFFF0)
			b.Jalr(0, 5, 0)
		},
	}
	for i, build := range cases {
		_, bus := runBare(t, isa.VSA64, build)
		if bus.Halt != dev.HaltPanic {
			t.Fatalf("case %d: expected panic halt, got %v", i, bus.Halt)
		}
	}
}

// buildUser assembles a user program for kernel-hosted runs.
func buildUser(t *testing.T, is isa.ISA, build func(b *asm.Builder)) *kernel.Image {
	t.Helper()
	b := asm.NewBuilder(is, mem.UserBase)
	build(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// Boot boots an image on the functional emulator.
func bootRun(t *testing.T, img *kernel.Image, maxInstr uint64) (*CPU, *dev.Bus) {
	t.Helper()
	bus := dev.NewBus(img.NewMemory())
	c := New(img.ISA, bus, img.Entry)
	if !c.Run(maxInstr) {
		t.Fatal("watchdog expired")
	}
	return c, bus
}

func TestKernelBootWriteExit(t *testing.T) {
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		img := buildUser(t, is, func(b *asm.Builder) {
			b.Label("_start")
			// write(msg, 13)
			b.Li(isa.RegA0, isa.SysWrite)
			b.La(isa.RegA1, "msg")
			b.Li(isa.RegA2, 13)
			b.Ecall()
			// Verify return value is the byte count.
			b.Li(5, 13)
			b.Bne(isa.RegA0, 5, "bad")
			// exit(0)
			b.Li(isa.RegA0, isa.SysExit)
			b.Li(isa.RegA1, 0)
			b.Ecall()
			b.Label("bad")
			b.Li(isa.RegA0, isa.SysExit)
			b.Li(isa.RegA1, 1)
			b.Ecall()
			b.DataLabel("msg")
			b.Bytes([]byte("hello, kernel"))
		})
		c, bus := bootRun(t, img, 1<<20)
		if bus.Halt != dev.HaltClean || bus.ExitCode != 0 {
			t.Fatalf("%v: halt=%v code=%d dbg=%q", is, bus.Halt, bus.ExitCode, bus.Dbg)
		}
		if !bytes.Equal(bus.Out, []byte("hello, kernel")) {
			t.Fatalf("%v: out=%q", is, bus.Out)
		}
		if c.KernelInstret == 0 || c.KernelInstret >= c.Instret {
			t.Fatalf("%v: kernel instret %d of %d", is, c.KernelInstret, c.Instret)
		}
	}
}

func TestKernelZeroCopyWrite(t *testing.T) {
	// A write of >= ZeroCopyThreshold bytes must be DMA'd directly.
	n := int64(kernel.ZeroCopyThreshold + 64)
	img := buildUser(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		// Fill buf[i] = i&0xFF.
		b.La(5, "buf")
		b.Li(6, 0)
		b.Label("fill")
		b.Add(7, 5, 6)
		b.Sb(6, 0, 7)
		b.Addi(6, 6, 1)
		b.Li(8, n)
		b.Blt(6, 8, "fill")
		b.Li(isa.RegA0, isa.SysWrite)
		b.La(isa.RegA1, "buf")
		b.Li(isa.RegA2, n)
		b.Ecall()
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 0)
		b.Ecall()
		b.DataLabel("buf")
		b.Zero(int(n))
	})
	_, bus := bootRun(t, img, 1<<20)
	if bus.Halt != dev.HaltClean {
		t.Fatalf("halt %v", bus.Halt)
	}
	if int64(len(bus.Out)) != n {
		t.Fatalf("out len %d", len(bus.Out))
	}
	for i, c := range bus.Out {
		if c != byte(i) {
			t.Fatalf("out[%d] = %d", i, c)
		}
	}
}

func TestKernelSyscallMisc(t *testing.T) {
	img := buildUser(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		// read() returns 0
		b.Li(isa.RegA0, isa.SysRead)
		b.Li(isa.RegA1, 0)
		b.Li(isa.RegA2, 0)
		b.Ecall()
		b.Bne(isa.RegA0, 0, "fail")
		// unknown syscall returns -1
		b.Li(isa.RegA0, 99)
		b.Ecall()
		b.Li(5, -1)
		b.Bne(isa.RegA0, 5, "fail")
		// brk(0) returns current break (nonzero)
		b.Li(isa.RegA0, isa.SysBrk)
		b.Li(isa.RegA1, 0)
		b.Ecall()
		b.Beq(isa.RegA0, 0, "fail")
		// brk(x) sets break
		b.Mv(6, isa.RegA0)
		b.Addi(6, 6, 256)
		b.Li(isa.RegA0, isa.SysBrk)
		b.Mv(isa.RegA1, 6)
		b.Ecall()
		b.Bne(isa.RegA0, 6, "fail")
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 0)
		b.Ecall()
		b.Label("fail")
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 1)
		b.Ecall()
	})
	_, bus := bootRun(t, img, 1<<20)
	if bus.Halt != dev.HaltClean || bus.ExitCode != 0 {
		t.Fatalf("halt=%v code=%d", bus.Halt, bus.ExitCode)
	}
}

func TestKernelDetectSyscall(t *testing.T) {
	img := buildUser(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		b.Li(isa.RegA0, isa.SysDetect)
		b.Li(isa.RegA1, 5)
		b.Ecall()
	})
	_, bus := bootRun(t, img, 1<<20)
	if bus.Halt != dev.HaltDetected || bus.DetectCode != 5 {
		t.Fatalf("halt=%v code=%d", bus.Halt, bus.DetectCode)
	}
}

func TestUserModeProtection(t *testing.T) {
	// User code touching MMIO or CSRs must crash (via kernel panic).
	cases := []func(b *asm.Builder){
		func(b *asm.Builder) {
			b.Li(5, int64(mem.MMIOBase))
			b.Sword(0, dev.RegHalt, 5)
		},
		func(b *asm.Builder) { b.Csrw(isa.CsrTVEC, 5) },
		func(b *asm.Builder) { b.Csrr(5, isa.CsrSEPC) },
		func(b *asm.Builder) { b.Eret() },
		func(b *asm.Builder) { b.Lw(5, 0, 0) }, // null deref
	}
	for i, mk := range cases {
		img := buildUser(t, isa.VSA64, func(b *asm.Builder) {
			b.Label("_start")
			mk(b)
			// If we get here the protection failed; exit cleanly.
			b.Li(isa.RegA0, isa.SysExit)
			b.Li(isa.RegA1, 0)
			b.Ecall()
		})
		_, bus := bootRun(t, img, 1<<20)
		if bus.Halt != dev.HaltPanic {
			t.Fatalf("case %d: halt=%v", i, bus.Halt)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	img := buildUser(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		b.Li(5, 100)
		b.Label("loop")
		b.Addi(5, 5, -1)
		b.Bne(5, 0, "loop")
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 0)
		b.Ecall()
	})
	bus := dev.NewBus(img.NewMemory())
	c := New(img.ISA, bus, img.Entry)
	for i := 0; i < 50; i++ {
		c.Step()
	}
	snap := c.Save()
	memSnap := bus.Mem.Clone()
	c.Run(1 << 20)
	end := c.Instret
	// Restore and re-run: identical end state.
	bus2 := dev.NewBus(memSnap)
	c2 := New(img.ISA, bus2, 0)
	c2.Restore(snap)
	c2.Bus = bus2
	c2.Run(1 << 20)
	if c2.Instret != end {
		t.Fatalf("restored run: %d instret, want %d", c2.Instret, end)
	}
}
