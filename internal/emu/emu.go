// Package emu implements the functional (architecture-level) VSA
// emulator. It is the precise reference model for the out-of-order
// microarchitectural model (lockstep-checked in tests), the substrate for
// architecture-level (PVF) fault injection, and the fast engine for
// golden-run profiling.
package emu

import (
	"fmt"

	"vulnstack/internal/dev"
	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

// CPU is one functional VSA hardware thread.
type CPU struct {
	ISA  isa.ISA
	Regs [32]uint64 // architectural registers, values masked to XLen
	PC   uint64
	CSR  [isa.NumCSRs]uint64
	Mode isa.Mode
	Bus  *dev.Bus

	// Instret counts committed instructions; KernelInstret the subset
	// committed in kernel mode.
	Instret       uint64
	KernelInstret uint64

	// DoubleFault is set when a trap occurs while already in kernel
	// mode: the machine halts with a panic (matching the paper's
	// "system crash / kernel panic" outcome).
	DoubleFault bool

	// OnCommit, when non-nil, observes every committed instruction.
	OnCommit func(pc uint64, in isa.Instr, mode isa.Mode)

	// NoDecodeCache disables the predecoded fetch memo (decode below);
	// the zero value keeps it on. The memo is behaviour-transparent: it
	// is tagged by the fetched word, so corrupted or overwritten
	// instruction words always re-decode.
	NoDecodeCache bool
	decodeMemo    []decodeEnt
}

// decodeEnt is one slot of the predecoded fetch memo: a direct-mapped
// table indexed by word-aligned PC whose tag is the fetched word
// itself. isa.Decode is pure in (word, ISA), so a word-matching hit is
// correct regardless of PC and can never go stale — a WI/WOI flip or a
// store to the text page changes the word and misses the tag compare.
type decodeEnt struct {
	word  uint32
	in    isa.Instr
	state uint8 // 0 empty, 1 decodes to in, 2 illegal
}

const decodeBits = 12

// decode is the memoized isa.Decode used by Step.
func (c *CPU) decode(pc uint64, w uint32) (isa.Instr, bool) {
	if c.NoDecodeCache {
		return isa.Decode(w, c.ISA)
	}
	if c.decodeMemo == nil {
		c.decodeMemo = make([]decodeEnt, 1<<decodeBits)
	}
	e := &c.decodeMemo[(pc>>2)&(1<<decodeBits-1)]
	if e.state != 0 && e.word == w {
		return e.in, e.state == 1
	}
	in, ok := isa.Decode(w, c.ISA)
	e.word, e.in = w, in
	if ok {
		e.state = 1
	} else {
		e.state = 2
	}
	return in, ok
}

// New creates a CPU over bus, in kernel mode at entry (the reset vector
// semantics: the kernel boots first and ERETs into user code).
func New(is isa.ISA, bus *dev.Bus, entry uint64) *CPU {
	return &CPU{ISA: is, PC: entry, Mode: isa.Kernel, Bus: bus}
}

// Reg reads an architectural register (r0 reads as zero).
func (c *CPU) Reg(r int) uint64 {
	if r == 0 {
		return 0
	}
	return c.Regs[r]
}

// SetReg writes an architectural register, masking to the ISA width
// (writes to r0 are discarded).
func (c *CPU) SetReg(r int, v uint64) {
	if r != 0 {
		c.Regs[r] = v & c.ISA.Mask()
	}
}

// trap transfers control to the kernel trap vector. A fault taken while
// already in kernel mode is a double fault: the machine halts as a
// kernel panic (Crash outcome).
func (c *CPU) trap(cause, tval uint64) {
	if c.Mode == isa.Kernel && cause != isa.CauseSyscall {
		c.DoubleFault = true
		c.Bus.Halt = dev.HaltPanic
		c.Bus.PanicCode = cause
		return
	}
	if c.Mode == isa.Kernel && cause == isa.CauseSyscall {
		// ECALL from kernel mode has no defined semantics: panic.
		c.DoubleFault = true
		c.Bus.Halt = dev.HaltPanic
		c.Bus.PanicCode = cause
		return
	}
	c.CSR[isa.CsrSEPC] = c.PC
	c.CSR[isa.CsrSCAUSE] = cause
	c.CSR[isa.CsrSTVAL] = tval
	c.Mode = isa.Kernel
	c.PC = c.CSR[isa.CsrTVEC]
}

// load performs a data load, routing MMIO in kernel mode.
func (c *CPU) load(addr uint64, n int, unsigned bool) (uint64, bool) {
	if mem.IsMMIO(addr) {
		if c.Mode != isa.Kernel {
			c.trap(isa.CausePrivilege, addr)
			return 0, false
		}
		v, ok := c.Bus.Load(addr, n)
		if !ok {
			c.trap(isa.CauseLoadFault, addr)
			return 0, false
		}
		return v, true
	}
	if addr%uint64(n) != 0 {
		c.trap(isa.CauseMisalignLoad, addr)
		return 0, false
	}
	v, ok := c.Bus.Mem.Read(addr, n)
	if !ok {
		c.trap(isa.CauseLoadFault, addr)
		return 0, false
	}
	if !unsigned {
		shift := uint(64 - 8*n)
		v = uint64(int64(v<<shift) >> shift)
	}
	return v, true
}

// store performs a data store, routing MMIO in kernel mode.
func (c *CPU) store(addr uint64, n int, val uint64) bool {
	if mem.IsMMIO(addr) {
		if c.Mode != isa.Kernel {
			c.trap(isa.CausePrivilege, addr)
			return false
		}
		if !c.Bus.Store(addr, n, val) {
			c.trap(isa.CauseStoreFault, addr)
			return false
		}
		return true
	}
	if addr%uint64(n) != 0 {
		c.trap(isa.CauseMisalignStore, addr)
		return false
	}
	if !c.Bus.Mem.Write(addr, n, val) {
		c.trap(isa.CauseStoreFault, addr)
		return false
	}
	return true
}

// Step executes one instruction. It returns false when the machine has
// halted (any halt port or a double fault).
func (c *CPU) Step() bool {
	if c.Bus.Halted() {
		return false
	}
	if c.PC%4 != 0 {
		c.trap(isa.CauseMisalignFetch, c.PC)
		return !c.Bus.Halted()
	}
	w, ok := c.Bus.Mem.Word32(c.PC)
	if !ok {
		c.trap(isa.CauseFetchFault, c.PC)
		return !c.Bus.Halted()
	}
	in, ok := c.decode(c.PC, w)
	if !ok {
		c.trap(isa.CauseIllegal, uint64(w))
		return !c.Bus.Halted()
	}
	c.Exec(in)
	return !c.Bus.Halted()
}

// Exec executes a decoded instruction at the current PC, updating all
// architectural state. Used by Step and (with pre-decoded instructions)
// by the microarchitectural model's commit-time checker.
func (c *CPU) Exec(in isa.Instr) {
	mask := c.ISA.Mask()
	sx := c.ISA.SignExtend
	nextPC := c.PC + 4
	rs1 := c.Reg(in.Rs1)
	rs2 := c.Reg(in.Rs2)

	switch in.Op {
	case isa.ADD:
		c.SetReg(in.Rd, rs1+rs2)
	case isa.SUB:
		c.SetReg(in.Rd, rs1-rs2)
	case isa.SLL:
		c.SetReg(in.Rd, rs1<<(rs2&uint64(c.ISA.XLen()-1)))
	case isa.SLT:
		c.SetReg(in.Rd, boolTo(int64(sx(rs1)) < int64(sx(rs2))))
	case isa.SLTU:
		c.SetReg(in.Rd, boolTo(rs1 < rs2))
	case isa.XOR:
		c.SetReg(in.Rd, rs1^rs2)
	case isa.SRL:
		c.SetReg(in.Rd, rs1>>(rs2&uint64(c.ISA.XLen()-1)))
	case isa.SRA:
		c.SetReg(in.Rd, uint64(int64(sx(rs1))>>(rs2&uint64(c.ISA.XLen()-1))))
	case isa.OR:
		c.SetReg(in.Rd, rs1|rs2)
	case isa.AND:
		c.SetReg(in.Rd, rs1&rs2)
	case isa.MUL:
		c.SetReg(in.Rd, rs1*rs2)
	case isa.DIV:
		c.SetReg(in.Rd, divS(sx(rs1), sx(rs2)))
	case isa.DIVU:
		c.SetReg(in.Rd, divU(rs1, rs2, mask))
	case isa.REM:
		c.SetReg(in.Rd, remS(sx(rs1), sx(rs2)))
	case isa.REMU:
		c.SetReg(in.Rd, remU(rs1, rs2))

	case isa.ADDI:
		c.SetReg(in.Rd, rs1+uint64(in.Imm))
	case isa.SLLI:
		c.SetReg(in.Rd, rs1<<uint64(in.Imm))
	case isa.SLTI:
		c.SetReg(in.Rd, boolTo(int64(sx(rs1)) < in.Imm))
	case isa.SLTIU:
		c.SetReg(in.Rd, boolTo(rs1 < uint64(in.Imm)&mask))
	case isa.XORI:
		c.SetReg(in.Rd, rs1^uint64(in.Imm))
	case isa.SRLI:
		c.SetReg(in.Rd, rs1>>uint64(in.Imm))
	case isa.SRAI:
		c.SetReg(in.Rd, uint64(int64(sx(rs1))>>uint64(in.Imm)))
	case isa.ORI:
		c.SetReg(in.Rd, rs1|uint64(in.Imm))
	case isa.ANDI:
		c.SetReg(in.Rd, rs1&uint64(in.Imm))

	case isa.LB, isa.LH, isa.LW, isa.LD, isa.LBU, isa.LHU, isa.LWU:
		addr := (rs1 + uint64(in.Imm)) & mask
		v, ok := c.load(addr, in.Op.MemBytes(), in.Op.MemUnsigned())
		if !ok {
			return // trapped
		}
		c.SetReg(in.Rd, v)

	case isa.SB, isa.SH, isa.SW, isa.SD:
		addr := (rs1 + uint64(in.Imm)) & mask
		if !c.store(addr, in.Op.MemBytes(), rs2) {
			return // trapped
		}

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		if BranchTaken(in.Op, sx(rs1), sx(rs2)) {
			nextPC = (c.PC + uint64(in.Imm)) & mask
		}

	case isa.JAL:
		c.SetReg(in.Rd, nextPC)
		nextPC = (c.PC + uint64(in.Imm)) & mask
	case isa.JALR:
		t := (rs1 + uint64(in.Imm)) & mask
		c.SetReg(in.Rd, nextPC)
		nextPC = t
	case isa.LUI:
		c.SetReg(in.Rd, uint64(in.Imm))

	case isa.ECALL:
		c.commit(in)
		c.trap(isa.CauseSyscall, 0)
		return
	case isa.ERET:
		if c.Mode != isa.Kernel {
			c.trap(isa.CausePrivilege, 0)
			return
		}
		c.commit(in)
		c.Mode = isa.User
		c.PC = c.CSR[isa.CsrSEPC]
		return
	case isa.CSRW:
		if c.Mode != isa.Kernel {
			c.trap(isa.CausePrivilege, 0)
			return
		}
		c.CSR[in.Imm] = rs1
	case isa.CSRR:
		if c.Mode != isa.Kernel {
			c.trap(isa.CausePrivilege, 0)
			return
		}
		c.SetReg(in.Rd, c.CSR[in.Imm]&mask)

	default:
		panic(fmt.Sprintf("emu: unhandled op %v", in.Op))
	}

	c.commit(in)
	c.PC = nextPC
}

func (c *CPU) commit(in isa.Instr) {
	c.Instret++
	if c.Mode == isa.Kernel {
		c.KernelInstret++
	}
	if c.OnCommit != nil {
		c.OnCommit(c.PC, in, c.Mode)
	}
}

// Run executes until halt or until maxInstr instructions have committed.
// It returns true when the machine halted (cleanly or not) and false on
// watchdog expiry — the campaign classifies expiry as a Crash
// (deadlock/livelock).
func (c *CPU) Run(maxInstr uint64) bool {
	for c.Instret < maxInstr {
		if !c.Step() {
			return true
		}
	}
	return c.Bus.Halted()
}

// BranchTaken evaluates a conditional branch on sign-extended operands.
func BranchTaken(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	return false
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// divS implements signed division with RISC-style edge semantics:
// x/0 = -1, MinInt/-1 = MinInt.
func divS(a, b uint64) uint64 {
	ia, ib := int64(a), int64(b)
	switch {
	case ib == 0:
		return ^uint64(0)
	case ia == -1<<63 && ib == -1:
		return a
	default:
		return uint64(ia / ib)
	}
}

func divU(a, b, mask uint64) uint64 {
	if b == 0 {
		return mask
	}
	return a / b
}

func remS(a, b uint64) uint64 {
	ia, ib := int64(a), int64(b)
	switch {
	case ib == 0:
		return a
	case ia == -1<<63 && ib == -1:
		return 0
	default:
		return uint64(ia % ib)
	}
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

// Snapshot captures the full architectural state for later restore.
type Snapshot struct {
	Regs    [32]uint64
	PC      uint64
	CSR     [isa.NumCSRs]uint64
	Mode    isa.Mode
	Instret uint64
	KInstr  uint64
}

// Save captures the CPU's architectural state (not memory).
func (c *CPU) Save() Snapshot {
	return Snapshot{Regs: c.Regs, PC: c.PC, CSR: c.CSR, Mode: c.Mode, Instret: c.Instret, KInstr: c.KernelInstret}
}

// Restore reinstates a previously saved state.
func (c *CPU) Restore(s Snapshot) {
	c.Regs, c.PC, c.CSR, c.Mode = s.Regs, s.PC, s.CSR, s.Mode
	c.Instret, c.KernelInstret = s.Instret, s.KInstr
	c.DoubleFault = false
}
