package emu

// This file exports the CPU's trap/memory/division primitives for the
// translation-block engine (internal/tb), which replays Exec's per-op
// semantics over predecoded superblocks and must match them bit-exactly
// — including trap causes, MMIO routing, and division edge cases.

// Trap transfers control to the kernel trap vector with the given cause
// and trap value, exactly as a faulting instruction would. The caller
// must have set PC to the faulting instruction's address first (SEPC is
// captured from it).
func (c *CPU) Trap(cause, tval uint64) { c.trap(cause, tval) }

// LoadMem performs a data load with full Step semantics (MMIO routing,
// alignment and bounds traps, sign extension). On failure the trap has
// already been taken and the returned value must be discarded.
func (c *CPU) LoadMem(addr uint64, n int, unsigned bool) (uint64, bool) {
	return c.load(addr, n, unsigned)
}

// StoreMem performs a data store with full Step semantics (MMIO
// routing, alignment and bounds traps). On failure the trap has already
// been taken.
func (c *CPU) StoreMem(addr uint64, n int, val uint64) bool {
	return c.store(addr, n, val)
}

// DivS exposes signed division with the ISA's edge semantics
// (x/0 = -1, MinInt/-1 = MinInt) on sign-extended operands.
func DivS(a, b uint64) uint64 { return divS(a, b) }

// DivU exposes unsigned division (x/0 = all-ones under mask).
func DivU(a, b, mask uint64) uint64 { return divU(a, b, mask) }

// RemS exposes signed remainder (x%0 = x, MinInt%-1 = 0).
func RemS(a, b uint64) uint64 { return remS(a, b) }

// RemU exposes unsigned remainder (x%0 = x).
func RemU(a, b uint64) uint64 { return remU(a, b) }
