package harden_test

import (
	"bytes"
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/harden"
	"vulnstack/internal/inject"
	"vulnstack/internal/ir"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/llfi"
	"vulnstack/internal/minic"
	"vulnstack/internal/workload"
)

func compile(t *testing.T, bench string, width int) *ir.Module {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := minic.Compile(spec.Gen(3, 1), width)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runIR(t *testing.T, m *ir.Module, width int) ([]byte, uint64) {
	t.Helper()
	ip := ir.NewInterp(m, width, 1<<21)
	ip.MaxSteps = 1 << 28
	if err := ip.Run("_start"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !ip.Exited || ip.Detected {
		t.Fatalf("abnormal end: exited=%v detected=%v", ip.Exited, ip.Detected)
	}
	return ip.Out, ip.Steps
}

func TestTransformPreservesSemantics(t *testing.T) {
	for _, bench := range []string{"sha", "smooth", "crc32", "qsort"} {
		m := compile(t, bench, 64)
		want, baseSteps := runIR(t, m, 64)
		h, err := harden.Transform(m, harden.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		got, hardSteps := runIR(t, h, 64)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: hardened output differs", bench)
		}
		ratio := float64(hardSteps) / float64(baseSteps)
		if ratio < 1.5 || ratio > 5 {
			t.Errorf("%s: runtime inflation %.2fx outside the technique's 2-4x ballpark", bench, ratio)
		}
		t.Logf("%s: %.2fx dynamic IR instructions", bench, ratio)
	}
}

func TestTransformPreservesMachineSemantics(t *testing.T) {
	// The hardened module must also compile and run correctly on the
	// machine through the kernel, on both ISAs.
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		m := compile(t, "sha", is.XLen())
		h, err := harden.Transform(m, harden.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var outs [2][]byte
		var instrs [2]uint64
		for i, mod := range []*ir.Module{m, h} {
			prog, err := codegen.Build(mod, is)
			if err != nil {
				t.Fatal(err)
			}
			img, err := kernel.BuildImage(prog, 1<<21)
			if err != nil {
				t.Fatal(err)
			}
			bus := dev.NewBus(img.NewMemory())
			c := emu.New(is, bus, img.Entry)
			if !c.Run(1 << 27) {
				t.Fatal("watchdog")
			}
			if bus.Halt != dev.HaltClean {
				t.Fatalf("halt %v", bus.Halt)
			}
			outs[i] = bus.Out
			instrs[i] = c.Instret
		}
		if !bytes.Equal(outs[0], outs[1]) {
			t.Fatalf("%v: hardened machine output differs", is)
		}
		ratio := float64(instrs[1]) / float64(instrs[0])
		if ratio < 1.5 {
			t.Errorf("%v: hardened binary too cheap (%.2fx)", is, ratio)
		}
		t.Logf("%v: machine inflation %.2fx (%d -> %d instrs)", is, ratio, instrs[0], instrs[1])
	}
}

func TestHardenedDetectsInjectedFaults(t *testing.T) {
	m := compile(t, "sha", 64)
	h, err := harden.Transform(m, harden.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := llfi.Prepare(m, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := llfi.Prepare(h, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	bt := base.RunCampaign(100, 5, nil)
	ht := hard.RunCampaign(100, 5, nil)
	if ht.Outcomes[inject.Detected] == 0 {
		t.Fatal("hardened module never detected a fault")
	}
	if ht.SVF() >= bt.SVF() {
		t.Errorf("hardening should reduce SVF: base %.2f, hardened %.2f", bt.SVF(), ht.SVF())
	}
	t.Logf("SVF base=%.2f hardened=%.2f detected=%.2f",
		bt.SVF(), ht.SVF(), ht.Frac(inject.Detected))
}

func TestUnprotectedFunctionsUntouched(t *testing.T) {
	m := compile(t, "crc32", 64)
	h, err := harden.Transform(m, harden.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"out", "exit", "__flush"} {
		orig, _ := m.Lookup(name)
		hard, _ := h.Lookup(name)
		if orig == nil || hard == nil {
			t.Fatalf("%s missing", name)
		}
		o, hn := 0, 0
		for _, b := range orig.Blocks {
			o += len(b.Instrs)
		}
		for _, b := range hard.Blocks {
			hn += len(b.Instrs)
		}
		if o != hn {
			t.Errorf("%s: library function was transformed (%d -> %d instrs)", name, o, hn)
		}
	}
	if _, ok := h.Lookup(harden.CheckFunc); !ok {
		t.Fatal("check function missing")
	}
}
