// Package harden implements the software-based fault-tolerance
// transform of the paper's case study (Section VI.B): an IR-level pass
// in the spirit of the AN-encoding + instruction-duplication technique
// it reproduces. Every computation in user functions is duplicated into
// a shadow data flow, and shadow/primary comparisons feed a detection
// routine before stores, branches, calls and returns; a mismatch
// invokes the detect syscall (classified as the Detected outcome).
//
// Deliberately — and faithfully to the technique — the transform does
// NOT protect the runtime library (out/exit/flush), the kernel, or
// anything outside the program flow, which is precisely why the paper
// finds the cross-layer AVF of "protected" code can get worse while
// PVF/SVF report large improvements.
package harden

import (
	"fmt"

	"vulnstack/internal/ir"
	"vulnstack/internal/minic"
)

// CheckFunc is the synthesized detection routine's name.
const CheckFunc = "__ftcheck"

// unprotected lists functions the transform must not touch — the
// runtime library (the "library calls" that remain unprotected in the
// paper's study) plus the detection routine itself. Derived from the
// compiler's own runtime-function list so the two can never drift.
var unprotected = func() map[string]bool {
	m := map[string]bool{CheckFunc: true}
	for _, name := range minic.RuntimeFuncs() {
		m[name] = true
	}
	return m
}()

// Protectable reports whether the transform hardens a function of the
// given name. The static coverage verifier uses the same predicate to
// decide which functions owe duplication-and-check obligations.
func Protectable(name string) bool { return !unprotected[name] }

// Options tunes the transform.
type Options struct {
	// CheckStores inserts comparisons before every store (default
	// protection point for SDC-oriented schemes).
	CheckStores bool
	// CheckBranches verifies branch conditions.
	CheckBranches bool
	// CheckCalls verifies call/syscall arguments and returns.
	CheckCalls bool
}

// DefaultOptions mirrors the reproduced technique.
func DefaultOptions() Options {
	return Options{CheckStores: true, CheckBranches: true, CheckCalls: true}
}

// Transform returns a hardened deep copy of the module.
func Transform(m *ir.Module, opts Options) (*ir.Module, error) {
	out := cloneModule(m)
	for _, f := range out.Funcs {
		if unprotected[f.Name] {
			continue
		}
		hardenFunc(f, opts)
	}
	out.Funcs = append(out.Funcs, buildCheckFunc())
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("harden: produced invalid IR: %w", err)
	}
	return out, nil
}

// buildCheckFunc synthesizes:
//
//	func __ftcheck(d) { if d != 0 { syscall(detect, 1) } }
func buildCheckFunc() *ir.Func {
	f := &ir.Func{Name: CheckFunc, NumArgs: 1, NumVReg: 4}
	// b0: condbr %0 -> b1, b2
	b0 := &ir.Block{Instrs: []ir.Instr{
		{Op: ir.OpCondBr, Dst: -1, A: 0, Target: 1, Else: 2},
	}}
	// b1: %1 = const SysDetect(4); %2 = const 1; %3 = syscall %1(%2); ret
	b1 := &ir.Block{Instrs: []ir.Instr{
		{Op: ir.OpConst, Dst: 1, Imm: 4},
		{Op: ir.OpConst, Dst: 2, Imm: 1},
		{Op: ir.OpSyscall, Dst: 3, A: 1, Args: []int{2}},
		{Op: ir.OpRet, Dst: -1, A: -1},
	}}
	// b2: ret
	b2 := &ir.Block{Instrs: []ir.Instr{{Op: ir.OpRet, Dst: -1, A: -1}}}
	f.Blocks = []*ir.Block{b0, b1, b2}
	return f
}

// hardenFunc rewrites one function with a duplicated shadow data flow.
func hardenFunc(f *ir.Func, opts Options) {
	n := f.NumVReg
	shadow := func(v int) int { return v + n }
	f.NumVReg = 2 * n
	next := f.NumVReg
	newReg := func() int {
		next++
		return next - 1
	}

	for _, b := range f.Blocks {
		var out []ir.Instr
		emit := func(in ir.Instr) { out = append(out, in) }
		// check emits a primary/shadow comparison feeding __ftcheck.
		check := func(vs ...int) {
			acc := -1
			for _, v := range vs {
				d := newReg()
				emit(ir.Instr{Op: ir.OpBin, Bin: ir.Xor, Dst: d, A: v, B: shadow(v)})
				if acc < 0 {
					acc = d
				} else {
					o := newReg()
					emit(ir.Instr{Op: ir.OpBin, Bin: ir.Or, Dst: o, A: acc, B: d})
					acc = o
				}
			}
			if acc >= 0 {
				emit(ir.Instr{Op: ir.OpCall, Dst: -1, Sym: CheckFunc, Args: []int{acc}})
			}
		}

		// Shadow function arguments at entry of block 0.
		if b == f.Blocks[0] {
			for a := 0; a < f.NumArgs; a++ {
				emit(ir.Instr{Op: ir.OpCopy, Dst: shadow(a), A: a})
			}
		}

		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpConst:
				emit(in)
				dup := in
				dup.Dst = shadow(in.Dst)
				emit(dup)
			case ir.OpCopy:
				emit(in)
				emit(ir.Instr{Op: ir.OpCopy, Dst: shadow(in.Dst), A: shadow(in.A)})
			case ir.OpBin:
				emit(in)
				emit(ir.Instr{Op: ir.OpBin, Bin: in.Bin, Dst: shadow(in.Dst), A: shadow(in.A), B: shadow(in.B)})
			case ir.OpGlobal, ir.OpFrame:
				emit(in)
				dup := in
				dup.Dst = shadow(in.Dst)
				emit(dup)
			case ir.OpLoad:
				// Memory is single-copy: verify the address, load,
				// then mirror the value into the shadow flow.
				if opts.CheckStores {
					check(in.A)
				}
				emit(in)
				emit(ir.Instr{Op: ir.OpCopy, Dst: shadow(in.Dst), A: in.Dst})
			case ir.OpStore:
				if opts.CheckStores {
					check(in.A, in.B)
				}
				emit(in)
			case ir.OpCall:
				if opts.CheckCalls && len(in.Args) > 0 {
					check(in.Args...)
				}
				emit(in)
				if in.HasDst() {
					emit(ir.Instr{Op: ir.OpCopy, Dst: shadow(in.Dst), A: in.Dst})
				}
			case ir.OpSyscall:
				if opts.CheckCalls {
					check(append([]int{in.A}, in.Args...)...)
				}
				emit(in)
				emit(ir.Instr{Op: ir.OpCopy, Dst: shadow(in.Dst), A: in.Dst})
			case ir.OpCondBr:
				if opts.CheckBranches {
					check(in.A)
				}
				emit(in)
			case ir.OpRet:
				if opts.CheckCalls && in.A >= 0 {
					check(in.A)
				}
				emit(in)
			default: // OpBr
				emit(in)
			}
		}
		b.Instrs = out
	}
	f.NumVReg = next
}

// cloneModule deep-copies an IR module.
func cloneModule(m *ir.Module) *ir.Module {
	out := &ir.Module{}
	for _, g := range m.Globals {
		out.Globals = append(out.Globals, &ir.Global{
			Name: g.Name, Size: g.Size, Init: append([]byte(nil), g.Init...),
		})
	}
	for _, f := range m.Funcs {
		nf := &ir.Func{
			Name: f.Name, NumArgs: f.NumArgs, NumVReg: f.NumVReg,
			HasRet: f.HasRet, Slots: append([]ir.FrameSlot(nil), f.Slots...),
		}
		for _, b := range f.Blocks {
			nb := &ir.Block{Instrs: make([]ir.Instr, len(b.Instrs))}
			for i, in := range b.Instrs {
				ni := in
				if in.Args != nil {
					ni.Args = append([]int(nil), in.Args...)
				}
				nb.Instrs[i] = ni
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		out.Funcs = append(out.Funcs, nf)
	}
	return out
}
