package static_test

import (
	"testing"

	"vulnstack/internal/ir"
	"vulnstack/internal/minic"
	"vulnstack/internal/static"
	"vulnstack/internal/workload"
)

func compileIR(t *testing.T, bench string) *ir.Module {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := minic.Compile(spec.Gen(2021, 1), 64)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAnalyzeIRStructure pins the structural contract of the
// interprocedural demanded-bits result on real modules: one mask per
// static instruction in module order, demand only on value-defining
// instructions, and a resolved fraction strictly inside (0, 1) — real
// programs always have both demanded and undemanded definition bits.
func TestAnalyzeIRStructure(t *testing.T) {
	for _, bench := range []string{"sha", "crc32", "qsort"} {
		m := compileIR(t, bench)
		ib := static.AnalyzeIR(m, "_start", 64)
		if ib.Width != 64 {
			t.Fatalf("%s: width %d", bench, ib.Width)
		}
		if len(ib.Demanded) != m.NumInstrs() {
			t.Fatalf("%s: %d masks for %d instructions", bench, len(ib.Demanded), m.NumInstrs())
		}

		// Enumerate global sites exactly as collect() does — functions,
		// blocks, instructions in module order — and check demand lands
		// only on defining instructions.
		site, defs := 0, 0
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].HasDst() {
						defs++
					} else if ib.Demanded[site] != 0 {
						t.Errorf("%s: non-defining site %d has demand %#x", bench, site, ib.Demanded[site])
					}
					site++
				}
			}
		}
		if defs != ib.Defs {
			t.Errorf("%s: Defs = %d, want %d", bench, ib.Defs, defs)
		}
		if f := ib.ResolvedFrac(); f <= 0 || f >= 1 {
			t.Errorf("%s: resolved fraction %.4f not in (0, 1)", bench, f)
		}
		t.Logf("%s: defs=%d resolved=%.4f", bench, ib.Defs, ib.ResolvedFrac())
	}
}

// TestAnalyzeIRConservativeEdges pins the never-resolve fallbacks: sites
// outside the analyzed module and bits outside the word never resolve.
func TestAnalyzeIRConservativeEdges(t *testing.T) {
	m := compileIR(t, "crc32")
	ib := static.AnalyzeIR(m, "_start", 64)
	if d := ib.DemandedAt(-1); d != ^uint64(0) {
		t.Errorf("DemandedAt(-1) = %#x, want full demand", d)
	}
	if d := ib.DemandedAt(m.NumInstrs()); d != ^uint64(0) {
		t.Errorf("DemandedAt(out of range) = %#x, want full demand", d)
	}
	if ib.Masked(-1, 3) {
		t.Error("out-of-range site resolved")
	}
	if ib.Masked(0, 64) {
		t.Error("out-of-range bit resolved")
	}
}

// TestDefSitesAlignWithAnalysis pins the contract the soft-layer
// resolver rests on: the interpreter's per-definition site ids
// (ir.Interp.DefSites) index into the same module-order enumeration the
// analysis fills Demanded with, and every recorded site is a defining
// instruction.
func TestDefSitesAlignWithAnalysis(t *testing.T) {
	m := compileIR(t, "sha")
	hasDst := make([]bool, 0, m.NumInstrs())
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				hasDst = append(hasDst, b.Instrs[i].HasDst())
			}
		}
	}

	ip := ir.NewInterp(m, 64, 1<<21)
	ip.MaxSteps = 1 << 28
	ip.TrackUse = true
	ip.TrackSites = true
	if err := ip.Run("_start"); err != nil {
		t.Fatal(err)
	}
	sites := ip.DefSites()
	if uint64(len(sites)) != ip.DefSeq {
		t.Fatalf("%d sites for %d dynamic definitions", len(sites), ip.DefSeq)
	}
	for seq, s := range sites {
		if s < 0 || int(s) >= len(hasDst) {
			t.Fatalf("def %d: site %d out of range [0, %d)", seq, s, len(hasDst))
		}
		if !hasDst[s] {
			t.Fatalf("def %d: site %d is not a defining instruction", seq, s)
		}
	}
}
