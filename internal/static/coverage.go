package static

import (
	"fmt"
	"sort"

	"vulnstack/internal/harden"
	"vulnstack/internal/ir"
)

// Hole is one hardening-coverage violation: an instruction in a
// protectable function that is not duplicated-and-checked, or a
// sphere-of-replication exit that is not guarded.
type Hole struct {
	Func   string
	Block  int
	Index  int
	Instr  string
	Reason string
}

func (h Hole) String() string {
	return fmt.Sprintf("%s b%d.%d [%s]: %s", h.Func, h.Block, h.Index, h.Instr, h.Reason)
}

// Coverage is the verifier's report over one module.
type Coverage struct {
	// Funcs is the number of protectable functions verified.
	Funcs int
	// Obligations is the number of instructions owing protection
	// (computations owing duplicates, exits owing guards); Covered of
	// them are satisfied.
	Obligations, Covered int
	// Holes lists every violation, in program order.
	Holes []Hole
}

// Frac returns the covered fraction (1 when nothing is owed).
func (c *Coverage) Frac() float64 {
	if c.Obligations == 0 {
		return 1
	}
	return float64(c.Covered) / float64(c.Obligations)
}

// Full reports complete coverage.
func (c *Coverage) Full() bool { return len(c.Holes) == 0 }

// VerifyHardening statically checks that a module carries the
// duplication-and-check protection harden.Transform installs, under
// the same options: every computation in a protectable function is
// mirrored into the shadow data flow, and every sphere-of-replication
// exit (store, branch, call, syscall, return) is preceded by a guard
// comparing each escaping value against its shadow. The verifier is
// independent of the transform's implementation — it infers the
// shadow-register mapping from the code and re-derives each
// obligation — so it detects coverage holes in hand-weakened or
// miscompiled modules, not just unhardened ones.
func VerifyHardening(m *ir.Module, opts harden.Options) *Coverage {
	cov := &Coverage{}
	for _, f := range m.Funcs {
		if !harden.Protectable(f.Name) {
			continue
		}
		cov.Funcs++
		verifyFunc(f, opts, cov)
	}
	return cov
}

// shadowDelta infers the primary→shadow vreg distance n (the transform
// maps v to v+n). Candidates come from the entry-block argument copies
// (copy dst, a with a < NumArgs) and from adjacent identical-payload
// duplicate pairs; the majority wins. Returns 0 when the function
// carries no recognizable shadow flow at all.
func shadowDelta(f *ir.Func) int {
	votes := map[int]int{}
	if len(f.Blocks) > 0 {
		for i, in := range f.Blocks[0].Instrs {
			if i >= f.NumArgs || in.Op != ir.OpCopy || in.A != i || in.Dst <= in.A {
				break
			}
			votes[in.Dst-in.A]++
		}
	}
	for _, b := range f.Blocks {
		for i := 0; i+1 < len(b.Instrs); i++ {
			a, d := &b.Instrs[i], &b.Instrs[i+1]
			if a.Op != d.Op || d.Dst <= a.Dst {
				continue
			}
			switch a.Op {
			case ir.OpConst:
				if a.Imm == d.Imm {
					votes[d.Dst-a.Dst]++
				}
			case ir.OpGlobal:
				if a.Sym == d.Sym {
					votes[d.Dst-a.Dst]++
				}
			case ir.OpFrame:
				if a.Slot == d.Slot {
					votes[d.Dst-a.Dst]++
				}
			case ir.OpBin:
				if a.Bin == d.Bin && d.A == a.A+(d.Dst-a.Dst) && d.B == a.B+(d.Dst-a.Dst) {
					votes[d.Dst-a.Dst]++
				}
			}
		}
	}
	best, bestN := 0, 0
	deltas := make([]int, 0, len(votes))
	for d := range votes {
		deltas = append(deltas, d)
	}
	sort.Ints(deltas)
	for _, d := range deltas {
		if votes[d] > bestN {
			best, bestN = d, votes[d]
		}
	}
	return best
}

// verifyFunc checks one protectable function, appending holes.
func verifyFunc(f *ir.Func, opts harden.Options, cov *Coverage) {
	n := shadowDelta(f)
	hole := func(bi, i int, in *ir.Instr, reason string) {
		cov.Holes = append(cov.Holes, Hole{
			Func: f.Name, Block: bi, Index: i,
			Instr: in.Op.String(), Reason: reason,
		})
	}
	owe := func(ok bool, bi, i int, in *ir.Instr, reason string) {
		cov.Obligations++
		if ok {
			cov.Covered++
		} else {
			hole(bi, i, in, reason)
		}
	}

	for bi, b := range f.Blocks {
		classified := make([]bool, len(b.Instrs))

		// guardSet[t] is the set of primary vregs whose primary/shadow
		// comparison feeds temp t (Xor leaves joined by Or).
		guardSet := map[int][]int{}
		isGuardInstr := make([]bool, len(b.Instrs))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch {
			case in.Op == ir.OpBin && in.Bin == ir.Xor && n > 0 && in.B == in.A+n:
				guardSet[in.Dst] = []int{in.A}
				isGuardInstr[i] = true
			case in.Op == ir.OpBin && in.Bin == ir.Or && guardSet[in.A] != nil && guardSet[in.B] != nil:
				guardSet[in.Dst] = append(append([]int{}, guardSet[in.A]...), guardSet[in.B]...)
				isGuardInstr[i] = true
			case in.Op == ir.OpCall && in.Sym == harden.CheckFunc:
				isGuardInstr[i] = true
			}
		}
		for i := range b.Instrs {
			if isGuardInstr[i] {
				classified[i] = true
			}
		}

		// guardedBefore returns the union of vregs guarded by the
		// contiguous run of guard instructions immediately before i.
		guardedBefore := func(i int) map[int]bool {
			got := map[int]bool{}
			for j := i - 1; j >= 0 && isGuardInstr[j]; j-- {
				in := &b.Instrs[j]
				if in.Op == ir.OpCall && in.Sym == harden.CheckFunc && len(in.Args) == 1 {
					for _, v := range guardSet[in.Args[0]] {
						got[v] = true
					}
				}
			}
			return got
		}
		guarded := func(i int, vs ...int) bool {
			got := guardedBefore(i)
			for _, v := range vs {
				if !got[v] {
					return false
				}
			}
			return true
		}
		// dupAfter finds and consumes an unclassified match for want
		// at position > i.
		dupAfter := func(i int, match func(*ir.Instr) bool) bool {
			for j := i + 1; j < len(b.Instrs); j++ {
				if !classified[j] && match(&b.Instrs[j]) {
					classified[j] = true
					return true
				}
			}
			return false
		}

		// Entry-block argument shadow copies.
		if bi == 0 {
			for i := 0; i < f.NumArgs && i < len(b.Instrs); i++ {
				in := &b.Instrs[i]
				if in.Op == ir.OpCopy && in.A == i && n > 0 && in.Dst == i+n {
					classified[i] = true
				}
			}
			for a := 0; a < f.NumArgs; a++ {
				ok := false
				for i := range b.Instrs {
					if classified[i] {
						in := &b.Instrs[i]
						if in.Op == ir.OpCopy && in.A == a && in.Dst == a+n {
							ok = true
							break
						}
					}
				}
				arg := ir.Instr{Op: ir.OpCopy, Dst: a, A: a}
				owe(ok, 0, a, &arg, fmt.Sprintf("argument %%%d never mirrored into shadow flow", a))
			}
		}

		for i := 0; i < len(b.Instrs); i++ {
			if classified[i] {
				continue
			}
			in := &b.Instrs[i]
			classified[i] = true
			switch in.Op {
			case ir.OpConst:
				owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
					return d.Op == ir.OpConst && d.Dst == in.Dst+n && d.Imm == in.Imm
				}), bi, i, in, "computation not duplicated")
			case ir.OpGlobal:
				owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
					return d.Op == ir.OpGlobal && d.Dst == in.Dst+n && d.Sym == in.Sym
				}), bi, i, in, "computation not duplicated")
			case ir.OpFrame:
				owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
					return d.Op == ir.OpFrame && d.Dst == in.Dst+n && d.Slot == in.Slot
				}), bi, i, in, "computation not duplicated")
			case ir.OpCopy:
				owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
					return d.Op == ir.OpCopy && d.Dst == in.Dst+n && d.A == in.A+n
				}), bi, i, in, "computation not duplicated")
			case ir.OpBin:
				owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
					return d.Op == ir.OpBin && d.Bin == in.Bin &&
						d.Dst == in.Dst+n && d.A == in.A+n && d.B == in.B+n
				}), bi, i, in, "computation not duplicated")
			case ir.OpLoad:
				if opts.CheckStores {
					owe(guarded(i, in.A), bi, i, in, "load address not guarded")
				}
				owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
					return d.Op == ir.OpCopy && d.Dst == in.Dst+n && d.A == in.Dst
				}), bi, i, in, "loaded value not mirrored into shadow flow")
			case ir.OpStore:
				if opts.CheckStores {
					owe(guarded(i, in.A, in.B), bi, i, in, "store not guarded")
				}
			case ir.OpCall:
				if opts.CheckCalls && len(in.Args) > 0 {
					owe(guarded(i, in.Args...), bi, i, in, "call arguments not guarded")
				}
				if in.HasDst() {
					owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
						return d.Op == ir.OpCopy && d.Dst == in.Dst+n && d.A == in.Dst
					}), bi, i, in, "call result not mirrored into shadow flow")
				}
			case ir.OpSyscall:
				if opts.CheckCalls {
					owe(guarded(i, append([]int{in.A}, in.Args...)...),
						bi, i, in, "syscall not guarded")
				}
				if in.HasDst() {
					owe(n > 0 && dupAfter(i, func(d *ir.Instr) bool {
						return d.Op == ir.OpCopy && d.Dst == in.Dst+n && d.A == in.Dst
					}), bi, i, in, "syscall result not mirrored into shadow flow")
				}
			case ir.OpCondBr:
				if opts.CheckBranches {
					owe(guarded(i, in.A), bi, i, in, "branch condition not guarded")
				}
			case ir.OpRet:
				if opts.CheckCalls && in.A >= 0 {
					owe(guarded(i, in.A), bi, i, in, "return value not guarded")
				}
			case ir.OpBr:
				// unconditional: nothing escapes
			}
		}
	}
}
