// Package static is the no-execution vulnerability analyzer: it bounds
// PVF/ACE, classifies fault-propagation models, and verifies hardening
// coverage purely from program structure — no emulator, no injections.
//
// The paper measures the vulnerability stack by injection and contrasts
// it with analytical ACE-style bounds it characterizes as pessimistic.
// This package supplies that analytical end of the comparison, built so
// a strict dominance chain holds by construction:
//
//	static bound  >=  dynamic ACE bound  >=  injection PVF
//
// The static register bound is max over program points of the live-out
// register fraction. Dynamic ACE (internal/ace) charges register r for
// the instants between a definition and its last use; at every such
// instant r is live-out at the executed instruction along the actual
// path, and the actual path is a path of the recovered CFG (nodes with
// statically unresolvable successors take the full ReadRef set, which
// contains every possible live register). The dynamic ACE fraction is
// therefore an average of per-instant live fractions, each bounded by
// the static maximum — so the static bound dominates the dynamic bound
// for any trap-free execution of the image, and the dynamic bound in
// turn dominates injection PVF by the ACE property (un-ACE bits never
// alter the outcome).
package static

import (
	"math/bits"

	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
)

// Result is the no-execution analysis of one image.
type Result struct {
	ISA isa.ISA
	// Instrs is the number of decodable instruction words in text;
	// Illegal counts words that do not decode.
	Instrs, Illegal int

	// RegBound is the static upper bound on the register-file ACE
	// fraction (and hence on register PVF): the maximum live-out
	// register fraction over all program points.
	RegBound float64
	// BoundAddr is a program point attaining RegBound (reporting aid).
	BoundAddr uint64
	// MeanLive is the unweighted mean live-out fraction over static
	// instructions — not a bound (no execution frequencies), but a
	// gauge of how much slack the max-based bound carries.
	MeanLive float64
	// EverLive is the number of registers live-out somewhere.
	EverLive int
	// MemBound is the static upper bound on the memory ACE fraction.
	// Without execution the analysis cannot bound which words a
	// program touches or for how long, so the only sound bound is 1.
	MemBound float64

	// DeadDefs counts defining instructions whose destination is not
	// live out: statically wasted definitions (un-ACE by construction).
	DeadDefs int
	// BoundaryUses counts register uses with no reaching definition in
	// the recovered CFG: values produced across statically invisible
	// edges (function returns, trap entries, initial state).
	BoundaryUses int

	// StackSlots is the number of distinct sp-relative access
	// intervals; DeadStackStores of the StackStores sp-relative
	// stores are provably never read back.
	StackSlots, StackStores, DeadStackStores int

	// FPM is the static fault-propagation-model bit distribution.
	FPM FPMDist
}

// Analyze runs the full static analysis over a bootable image: CFG
// recovery by disassembly, register liveness and reaching definitions,
// stack-slot liveness, and FPM bit classification. It never executes
// an instruction.
func Analyze(img *kernel.Image) (*Result, error) {
	segs := ImageSegs(img)
	return AnalyzeSegs(img.ISA, segs)
}

// AnalyzeSegs analyzes raw text segments (exposed for tests and for
// analyzing programs outside a bootable image).
func AnalyzeSegs(is isa.ISA, segs []Seg) (*Result, error) {
	g := BuildCFG(is, segs)
	g.Liveness()
	rd := g.SolveReachingDefs()
	sl := g.SolveSlots()

	res := &Result{ISA: is, MemBound: 1}
	nr := float64(is.NumRegs())
	var liveSum float64
	var everLive uint32
	maxLive := -1
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !n.ok {
			res.Illegal++
			continue
		}
		res.Instrs++
		lv := bits.OnesCount32(n.liveOut)
		liveSum += float64(lv)
		everLive |= n.liveOut
		if lv > maxLive {
			maxLive = lv
			res.BoundAddr = n.addr
		}
		if n.def != 0 && n.def&n.liveOut == 0 {
			res.DeadDefs++
		}
	}
	if res.Instrs > 0 {
		res.RegBound = float64(maxLive) / nr
		res.MeanLive = liveSum / float64(res.Instrs) / nr
	}
	res.EverLive = bits.OnesCount32(everLive)

	// Boundary uses: reads of registers no statically visible
	// definition reaches.
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !n.ok || n.use == 0 {
			continue
		}
		for r := 1; r < is.NumRegs(); r++ {
			if n.use&regBit(r) != 0 && len(rd.ReachingAt(i, r)) == 0 {
				res.BoundaryUses++
			}
		}
	}

	res.StackSlots = len(sl.Slots)
	res.StackStores = sl.Stores
	res.DeadStackStores = len(sl.DeadStores)
	res.FPM = ClassifyText(is, segs)
	return res, nil
}
