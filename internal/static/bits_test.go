package static_test

import (
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/static"
)

// TestBitFlowHandBuilt pins the transfer functions on a hand-built
// straight-line segment where every fact is computable by hand:
//
//	0x1000: addi r5, r0, 7     ; r5 known = 7
//	0x1004: addi r6, r0, 0xF0  ; r6 known = 0xF0
//	0x1008: and  r7, r5, r6    ; known zeros shrink both demands
//	0x100c: sb   r7, 0(r8)     ; demands only the low byte of r7
//	0x1010: jal  r0, 0         ; self-loop: no unresolvable exit edge
func TestBitFlowHandBuilt(t *testing.T) {
	is := isa.VSA64
	enc := func(in isa.Instr) []byte {
		w := isa.Encode(in)
		return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	}
	var text []byte
	text = append(text, enc(isa.Instr{Op: isa.ADDI, Rd: 5, Rs1: 0, Imm: 7})...)
	text = append(text, enc(isa.Instr{Op: isa.ADDI, Rd: 6, Rs1: 0, Imm: 0xF0})...)
	text = append(text, enc(isa.Instr{Op: isa.AND, Rd: 7, Rs1: 5, Rs2: 6})...)
	text = append(text, enc(isa.Instr{Op: isa.SB, Rs1: 8, Rs2: 7, Imm: 0})...)
	text = append(text, enc(isa.Instr{Op: isa.JAL, Rd: 0, Imm: 0})...)

	g := static.BuildCFG(is, []static.Seg{{Base: 0x1000, Text: text}})
	g.Liveness()
	bf := g.SolveBits()
	wmask := is.Mask()

	nAnd := g.NodeAt(0x1008)
	nStore := g.NodeAt(0x100c)
	if nAnd < 0 || nStore < 0 {
		t.Fatalf("NodeAt failed: and=%d store=%d", nAnd, nStore)
	}

	// Forward known bits: both AND inputs are fully known constants, so
	// the result entering the store is fully known too (7 & 0xF0 = 0).
	if m, v := bf.KnownIn(nAnd, 5); m != wmask || v != 7 {
		t.Errorf("KnownIn(and, r5) = %#x/%#x, want %#x/7", m, v, wmask)
	}
	if m, v := bf.KnownIn(nAnd, 6); m != wmask || v != 0xF0 {
		t.Errorf("KnownIn(and, r6) = %#x/%#x, want %#x/0xF0", m, v, wmask)
	}
	if m, v := bf.KnownIn(nStore, 7); m != wmask || v != 0 {
		t.Errorf("KnownIn(sb, r7) = %#x/%#x, want %#x/0", m, v, wmask)
	}

	// Backward demand: the byte store demands only the low 8 bits of its
	// data register and every bit of its address register.
	if d := bf.DemandedOut(nAnd, 7); d != 0xFF {
		t.Errorf("DemandedOut(and, r7) = %#x, want 0xFF", d)
	}
	if d := bf.DemandedOut(nAnd, 8); d != wmask {
		t.Errorf("DemandedOut(and, r8) = %#x, want full address demand", d)
	}
	// r5 is dead after the AND consumes it.
	if d := bf.DemandedOut(nAnd, 5); d != 0 {
		t.Errorf("DemandedOut(and, r5) = %#x, want 0 (dead)", d)
	}
	// Through the AND, the known-zero mask of each side shrinks the other
	// side's demand: r5 keeps only the bits 0xF0 can pass, r6 only the
	// bits 7 can pass.
	nAddi2 := g.NodeAt(0x1004)
	if d := bf.DemandedOut(nAddi2, 5); d != 0xF0 {
		t.Errorf("DemandedOut(addi r6, r5) = %#x, want 0xF0", d)
	}
	nAddi1 := g.NodeAt(0x1000)
	if d := bf.DemandedOut(nAddi1, 6); d != 0 {
		t.Errorf("DemandedOut(addi r5, r6) = %#x, want 0 (not yet defined)", d)
	}

	// The union feature hardware layers stratify on.
	if u, ok := bf.DemandedUnionAt(0x1008); !ok || u != wmask {
		t.Errorf("DemandedUnionAt(0x1008) = %#x/%v, want %#x/true", u, ok, wmask)
	}
	if _, ok := bf.DemandedUnionAt(0x9000); ok {
		t.Error("DemandedUnionAt outside the text claimed ok")
	}
}

// TestBitFlowShifts pins the shift transfer functions: an immediate
// right shift moves known bits down and fills the top with known zeros;
// demand through a left shift moves down toward the source.
func TestBitFlowShifts(t *testing.T) {
	is := isa.VSA64
	enc := func(in isa.Instr) []byte {
		w := isa.Encode(in)
		return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	}
	var text []byte
	// 0x1000: addi r5, r0, 0xF0 ; r5 known = 0xF0
	// 0x1004: srli r6, r5, 4    ; r6 known = 0x0F, top 4 bits known zero
	// 0x1008: slli r7, r6, 8    ; demand on r7 maps >>8 onto r6
	// 0x100c: sb   r7, 0(r8)
	// 0x1010: jal  r0, 0
	text = append(text, enc(isa.Instr{Op: isa.ADDI, Rd: 5, Rs1: 0, Imm: 0xF0})...)
	text = append(text, enc(isa.Instr{Op: isa.SRLI, Rd: 6, Rs1: 5, Imm: 4})...)
	text = append(text, enc(isa.Instr{Op: isa.SLLI, Rd: 7, Rs1: 6, Imm: 8})...)
	text = append(text, enc(isa.Instr{Op: isa.SB, Rs1: 8, Rs2: 7, Imm: 0})...)
	text = append(text, enc(isa.Instr{Op: isa.JAL, Rd: 0, Imm: 0})...)

	g := static.BuildCFG(is, []static.Seg{{Base: 0x1000, Text: text}})
	g.Liveness()
	bf := g.SolveBits()
	wmask := is.Mask()

	nSlli := g.NodeAt(0x1008)
	if m, v := bf.KnownIn(nSlli, 6); m != wmask || v != 0x0F {
		t.Errorf("KnownIn(slli, r6) = %#x/%#x, want %#x/0x0F", m, v, wmask)
	}
	// The store demands the low byte of r7; through the slli-by-8 that
	// demand lands entirely in bits shifted in from below — nothing of
	// r6 is demanded.
	if d := bf.DemandedOut(nSlli, 7); d != 0xFF {
		t.Errorf("DemandedOut(slli, r7) = %#x, want 0xFF", d)
	}
	nSrli := g.NodeAt(0x1004)
	if d := bf.DemandedOut(nSrli, 6); d != 0 {
		t.Errorf("DemandedOut(srli, r6) = %#x, want 0 (slli by 8 consumes no low-byte source)", d)
	}
}

// TestBitStatsAndDominance runs the bit-level dataflow over real
// generated text on both ISAs and pins the structural invariants: the
// analysis covers every decoded instruction, demanded bits never exceed
// live bits (demanded-bits refines liveness bit by bit), and the
// dominance-chain containment DemandWithinLiveness holds everywhere.
func TestBitStatsAndDominance(t *testing.T) {
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		for _, bench := range []string{"crc32", "sha", "qsort"} {
			img := buildImage(t, bench, is)
			g := static.BuildCFG(is, static.ImageSegs(img))
			g.Liveness()
			bf := g.SolveBits()
			if !bf.DemandWithinLiveness() {
				t.Errorf("%s/%s: a register with nonzero demand is not live-out", bench, is)
			}
			st := bf.Stats()
			if st.Instrs == 0 {
				t.Fatalf("%s/%s: no instructions analyzed", bench, is)
			}
			if st.DemandedBits < 0 || st.DemandedBits > st.LiveBits {
				t.Errorf("%s/%s: demanded bits %d outside [0, live %d]",
					bench, is, st.DemandedBits, st.LiveBits)
			}
			if f := st.ResolvedFrac(); f < 0 || f > 1 {
				t.Errorf("%s/%s: resolved fraction %.4f out of range", bench, is, f)
			}
			t.Logf("%s/%s: instrs=%d live=%d demanded=%d resolved=%.4f",
				bench, is, st.Instrs, st.LiveBits, st.DemandedBits, st.ResolvedFrac())
		}
	}
}
