package static

import "vulnstack/internal/isa"

// FPMDist is the static fault-propagation-model distribution of an
// image: for every instruction word in text, each of its 32 bits is
// classified by what a single-bit fetch corruption of that bit would
// do, from the encoding alone (isa.FlipClass). It is the no-execution
// analogue of the measured HVF FPM split — with two honest gaps: it
// cannot weight instructions by execution frequency, and it cannot see
// the ESC class (faults that corrupt state without entering the
// program flow), which only dynamic measurement exposes.
type FPMDist struct {
	// Bits counts classified bits per class.
	Bits [isa.NumBitClasses]int
	// Words is the number of instruction words classified.
	Words int
}

// ClassifyText accumulates the flip classification of every decodable
// instruction word in the segments.
func ClassifyText(is isa.ISA, segs []Seg) FPMDist {
	var d FPMDist
	for _, s := range segs {
		for off := 0; off+4 <= len(s.Text); off += 4 {
			w := uint32(s.Text[off]) | uint32(s.Text[off+1])<<8 |
				uint32(s.Text[off+2])<<16 | uint32(s.Text[off+3])<<24
			if _, ok := isa.Decode(w, is); !ok {
				continue
			}
			d.Words++
			for bit := 0; bit < 32; bit++ {
				d.Bits[isa.FlipClass(w, bit, is)]++
			}
		}
	}
	return d
}

// Total returns the number of classified bits.
func (d FPMDist) Total() int { return d.Words * 32 }

// Share returns the fraction of bits in class c.
func (d FPMDist) Share(c isa.BitClass) float64 {
	if d.Total() == 0 {
		return 0
	}
	return float64(d.Bits[c]) / float64(d.Total())
}

// ModelShare returns class c's share among the bits that manifest as a
// propagation model (WD, WI, WOI) — renormalized to compare against
// the measured FPM split, which is conditioned on faults becoming
// architecturally visible.
func (d FPMDist) ModelShare(c isa.BitClass) float64 {
	n := d.Bits[isa.BitWD] + d.Bits[isa.BitWI] + d.Bits[isa.BitWOI]
	if n == 0 {
		return 0
	}
	switch c {
	case isa.BitWD, isa.BitWI, isa.BitWOI:
		return float64(d.Bits[c]) / float64(n)
	}
	return 0
}
