package static

import (
	"math/bits"

	"vulnstack/internal/ir"
)

// IRBits is the software-layer analogue of BitFlow: an interprocedural
// backward demanded-bits analysis over ir.Module def-use chains, with a
// block-local forward constant lattice refining bitwise operations.
// Demanded[site] is the set of result bits of the static instruction
// with global id site that can ever influence an observable output:
// program bytes written, the exit code, a detector, a branch decision,
// a memory address, or a syscall operand. A dynamic fault that flips an
// undemanded bit of that instruction's destination value is provably
// Masked — execution from the fault instant onward can differ only in
// bits that never reach an observable sink, and control flow (hence
// step counts and the watchdog) is unchanged because branch operands
// demand every bit.
//
// Soundness inventory of the sinks (mirroring ir.Interp):
//
//   - OpCondBr operands, load/store addresses, and syscall operands
//     demand all bits (these are also the only crash sources: bad or
//     misaligned addresses, stack overflow from call depth — which a
//     masked fault cannot alter — and the watchdog).
//   - Store data demands exactly the 8*Size bits the store writes:
//     memory is untracked, so every stored bit is conservatively
//     observable through later loads.
//   - Ret operands demand the union of every call site's result demand;
//     the entry function's return additionally feeds the exit code, so
//     its demand is all bits.
//   - Division is defined at the IR level (x/0 = -1, x%0 = x): no trap
//     path, so an unused division result demands nothing.
//
// The analysis requires the 64-bit word width (the only width the
// LLFI-style injector runs): at 64 bits the interpreter's wrap() is the
// identity, so value bits and fault bits coincide exactly.
type IRBits struct {
	Width int
	wmask uint64

	// Demanded[site] is the demanded-bit mask of the value defined by
	// the static instruction with global id site (0 for instructions
	// that define no value — they are never fault targets).
	Demanded []uint64
	// Defs is the number of value-defining static instructions.
	Defs int
}

// AnalyzeIR runs the interprocedural demanded-bits fixpoint. entry is
// the program entry function ("_start" for the injector): its return
// value feeds the exit code, so it is fully demanded. width must be 64.
func AnalyzeIR(m *ir.Module, entry string, width int) *IRBits {
	a := &irSolver{
		m:      m,
		wmask:  ^uint64(0),
		shmask: uint64(width - 1),
		argDem: make([][]uint64, len(m.Funcs)),
		retDem: make([]uint64, len(m.Funcs)),
		fidx:   make(map[string]int, len(m.Funcs)),
	}
	for i, f := range m.Funcs {
		a.argDem[i] = make([]uint64, f.NumArgs)
		a.fidx[f.Name] = i
		if f.Name == entry {
			a.retDem[i] = a.wmask
		}
	}
	a.solve()
	return a.collect(width)
}

type irSolver struct {
	m      *ir.Module
	wmask  uint64
	shmask uint64

	// Function summaries, monotonically increasing across rounds:
	// argDem[f][i] is the demand the body of function f places on its
	// i-th argument; retDem[f] the demand call sites (and the exit
	// code, for the entry) place on its return value.
	argDem  [][]uint64
	retDem  []uint64
	fidx    map[string]int
	changed bool
}

// blockConsts holds the forward block-local constant facts for the two
// register operands of each instruction (zero fact = not a constant).
type blockConsts struct{ a, b []known }

// consts computes per-instruction operand constant facts with a forward
// scan: OpConst introduces a constant, OpCopy propagates it, any other
// definition kills it. Facts start empty at block entry (sound without
// cross-block reasoning).
func (s *irSolver) consts(b *ir.Block, nvreg int) blockConsts {
	c := make([]known, nvreg)
	bc := blockConsts{a: make([]known, len(b.Instrs)), b: make([]known, len(b.Instrs))}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.A >= 0 && in.A < nvreg {
			bc.a[i] = c[in.A]
		}
		if in.B >= 0 && in.B < nvreg {
			bc.b[i] = c[in.B]
		}
		if in.HasDst() {
			switch in.Op {
			case ir.OpConst:
				c[in.Dst] = known{s.wmask, uint64(in.Imm) & s.wmask}
			case ir.OpCopy:
				c[in.Dst] = c[in.A]
			default:
				c[in.Dst] = known{}
			}
		}
	}
	return bc
}

// solve iterates per-function backward fixpoints until no function
// summary changes.
func (s *irSolver) solve() {
	for round := 0; ; round++ {
		s.changed = false
		for fi := range s.m.Funcs {
			s.solveFunc(fi, nil)
		}
		if !s.changed {
			return
		}
	}
}

// solveFunc runs the backward block dataflow of one function to
// fixpoint. When record is non-nil it additionally receives the
// demanded mask of every defining instruction: record(bi, ii, D).
func (s *irSolver) solveFunc(fi int, record func(bi, ii int, D uint64)) {
	f := s.m.Funcs[fi]
	nb := len(f.Blocks)
	in := make([][]uint64, nb)
	for b := 0; b < nb; b++ {
		in[b] = make([]uint64, f.NumVReg)
	}
	bcs := make([]blockConsts, nb)
	for b := 0; b < nb; b++ {
		bcs[b] = s.consts(f.Blocks[b], f.NumVReg)
	}
	succs := func(b *ir.Block) []int {
		t := &b.Instrs[len(b.Instrs)-1]
		switch t.Op {
		case ir.OpBr:
			return []int{t.Target}
		case ir.OpCondBr:
			return []int{t.Target, t.Else}
		}
		return nil
	}

	work := make([]int, 0, nb)
	inWork := make([]bool, nb)
	for b := nb - 1; b >= 0; b-- {
		work = append(work, b)
		inWork[b] = true
	}
	d := make([]uint64, f.NumVReg)
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		blk := f.Blocks[bi]

		for r := range d {
			d[r] = 0
		}
		for _, sb := range succs(blk) {
			for r, m := range in[sb] {
				d[r] |= m
			}
		}
		for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
			s.transfer(fi, &blk.Instrs[ii], bcs[bi].a[ii], bcs[bi].b[ii], d, nil)
		}
		changed := false
		for r, m := range d {
			if m&^in[bi][r] != 0 {
				in[bi][r] |= m
				changed = true
			}
		}
		if changed {
			// Predecessors are any blocks branching here; without a
			// precomputed pred list, requeue everything still cheap at
			// IR scale.
			for b := 0; b < nb; b++ {
				for _, sb := range succs(f.Blocks[b]) {
					if sb == bi && !inWork[b] {
						work = append(work, b)
						inWork[b] = true
					}
				}
			}
		}
	}

	// Publish the argument-demand summary.
	for i := 0; i < f.NumArgs; i++ {
		if in[0][i]&^s.argDem[fi][i] != 0 {
			s.argDem[fi][i] |= in[0][i]
			s.changed = true
		}
	}

	if record != nil {
		for bi := nb - 1; bi >= 0; bi-- {
			blk := f.Blocks[bi]
			for r := range d {
				d[r] = 0
			}
			for _, sb := range succs(blk) {
				for r, m := range in[sb] {
					d[r] |= m
				}
			}
			for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
				s.transfer(fi, &blk.Instrs[ii], bcs[bi].a[ii], bcs[bi].b[ii], d, func(D uint64) {
					record(bi, ii, D)
				})
			}
		}
	}
}

// transfer rewrites the demand vector d backward across one
// instruction. ka/kb are the block-local constant facts of the A and B
// operands. When def is non-nil it receives the demanded mask of the
// value the instruction defines, captured before the kill.
func (s *irSolver) transfer(fi int, in *ir.Instr, ka, kb known, d []uint64, def func(uint64)) {
	w := s.wmask
	var D uint64
	if in.HasDst() {
		D = d[in.Dst]
		d[in.Dst] = 0
	}
	if def != nil && in.HasDst() {
		def(D)
	}
	dm := func(r int, m uint64) {
		if r >= 0 && m != 0 {
			d[r] |= m & w
		}
	}

	switch in.Op {
	case ir.OpConst, ir.OpGlobal, ir.OpFrame, ir.OpBr:
		// no register uses
	case ir.OpCopy:
		dm(in.A, D)
	case ir.OpBin:
		s.transferBin(in.Bin, in.A, in.B, ka, kb, D, dm)
	case ir.OpLoad:
		dm(in.A, w) // address: crash and value sink
	case ir.OpStore:
		dm(in.A, w)
		dm(in.B, uint64(1)<<uint(8*in.Size)-1)
	case ir.OpCall:
		ci, ok := s.fidx[in.Sym]
		if !ok {
			for _, a := range in.Args {
				dm(a, w)
			}
			break
		}
		if in.HasDst() && D&^s.retDem[ci] != 0 {
			s.retDem[ci] |= D
			s.changed = true
		}
		for j, a := range in.Args {
			if j < len(s.argDem[ci]) {
				dm(a, s.argDem[ci][j])
			} else {
				dm(a, w)
			}
		}
	case ir.OpSyscall:
		dm(in.A, w)
		for _, a := range in.Args {
			dm(a, w)
		}
	case ir.OpRet:
		dm(in.A, s.retDem[fi])
	case ir.OpCondBr:
		dm(in.A, w)
	}
}

func (s *irSolver) transferBin(k ir.BinKind, a, b int, ka, kb known, D uint64, dm func(int, uint64)) {
	w := s.wmask
	if k.IsCompare() {
		// Comparisons produce exactly 0 or 1: result bits above bit 0
		// are constant, so only a demand on bit 0 reaches the inputs.
		if D&1 != 0 {
			dm(a, w)
			dm(b, w)
		}
		return
	}
	switch k {
	case ir.Add, ir.Sub, ir.Mul:
		dm(a, lowExt(D))
		dm(b, lowExt(D))
	case ir.Div, ir.Rem:
		// Defined at every input (x/0 = -1, x%0 = x): no trap path, so
		// an unused result demands nothing.
		if D != 0 {
			dm(a, w)
			dm(b, w)
		}
	case ir.And:
		dm(a, D&^knownZero(kb))
		dm(b, D&^knownZero(ka))
	case ir.Or:
		dm(a, D&^knownOne(kb))
		dm(b, D&^knownOne(ka))
	case ir.Xor:
		dm(a, D)
		dm(b, D)
	case ir.Shl, ir.LShr, ir.AShr:
		if D != 0 {
			dm(b, s.shmask)
		}
		if kb.mask&s.shmask == s.shmask {
			sh := uint(kb.val & s.shmask)
			switch k {
			case ir.Shl:
				dm(a, D>>sh)
			case ir.LShr:
				dm(a, (D<<sh)&w)
			default: // AShr
				m := (D << sh) & w
				if sh > 0 {
					top := w &^ (w >> sh)
					if D&top != 0 {
						m |= uint64(1) << 63
					}
				}
				dm(a, m)
			}
			return
		}
		switch k {
		case ir.Shl:
			dm(a, lowExt(D))
		default: // LShr, AShr: result bit i <- source bits >= i
			dm(a, highExt(D, w))
		}
	}
}

// collect runs one final recording pass per function and assembles the
// per-site demanded masks in global site order (functions, blocks,
// instructions in module order — the same enumeration ir.Interp tags
// dynamic definitions with).
func (s *irSolver) collect(width int) *IRBits {
	ib := &IRBits{Width: width, wmask: s.wmask, Demanded: make([]uint64, s.m.NumInstrs())}
	base := 0
	for fi, f := range s.m.Funcs {
		blockBase := make([]int, len(f.Blocks))
		off := 0
		for bi, b := range f.Blocks {
			blockBase[bi] = base + off
			off += len(b.Instrs)
		}
		s.solveFunc(fi, func(bi, ii int, D uint64) {
			ib.Demanded[blockBase[bi]+ii] = D
		})
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].HasDst() {
					ib.Defs++
				}
			}
		}
		base += off
	}
	return ib
}

// DemandedAt returns the demanded-bit mask of static instruction site.
// Out-of-range sites report full demand (never resolve).
func (ib *IRBits) DemandedAt(site int) uint64 {
	if site < 0 || site >= len(ib.Demanded) {
		return ib.wmask
	}
	return ib.Demanded[site]
}

// Masked reports whether flipping bit of the value defined at site is
// provably invisible.
func (ib *IRBits) Masked(site int, bit uint) bool {
	if bit >= 64 {
		return false
	}
	return ib.DemandedAt(site)&(uint64(1)<<bit) == 0
}

// ResolvedFrac is the fraction of (defining instruction, bit) pairs
// proven undemanded — the statically resolved share of the software
// fault space at uniform site weighting.
func (ib *IRBits) ResolvedFrac() float64 {
	if ib.Defs == 0 {
		return 0
	}
	var demanded int64
	for _, m := range ib.Demanded {
		demanded += int64(bits.OnesCount64(m))
	}
	total := int64(ib.Defs) * int64(ib.Width)
	return 1 - float64(demanded)/float64(total)
}
