package static_test

import (
	"testing"

	"vulnstack/internal/ace"
	"vulnstack/internal/codegen"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/minic"
	"vulnstack/internal/static"
	"vulnstack/internal/workload"
)

func buildImage(t *testing.T, bench string, is isa.ISA) *kernel.Image {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatalf("workload %s: %v", bench, err)
	}
	src := spec.Gen(2021, 1)
	m, err := minic.Compile(src, is.XLen())
	if err != nil {
		t.Fatalf("compile %s: %v", bench, err)
	}
	prog, err := codegen.Build(m, is)
	if err != nil {
		t.Fatalf("codegen %s: %v", bench, err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatalf("image %s: %v", bench, err)
	}
	return img
}

// TestStaticDominatesDynamicACE is the package-local dominance check:
// the no-execution register bound must be at least the dynamic-trace
// ACE bound on real programs, for both ISA variants.
func TestStaticDominatesDynamicACE(t *testing.T) {
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		for _, bench := range []string{"crc32", "qsort"} {
			img := buildImage(t, bench, is)
			st, err := static.Analyze(img)
			if err != nil {
				t.Fatalf("static %s/%s: %v", bench, is, err)
			}
			dyn, err := ace.Analyze(img, 0)
			if err != nil {
				t.Fatalf("ace %s/%s: %v", bench, is, err)
			}
			if st.RegBound < dyn.RegACE {
				t.Errorf("%s/%s: static RegBound %.4f < dynamic RegACE %.4f",
					bench, is, st.RegBound, dyn.RegACE)
			}
			if st.MemBound < dyn.MemACE {
				t.Errorf("%s/%s: static MemBound %.4f < dynamic MemACE %.4f",
					bench, is, st.MemBound, dyn.MemACE)
			}
			if st.RegBound <= 0 || st.RegBound > 1 {
				t.Errorf("%s/%s: RegBound %.4f out of range", bench, is, st.RegBound)
			}
			if st.Illegal != 0 {
				t.Errorf("%s/%s: %d undecodable words in generated text", bench, is, st.Illegal)
			}
			t.Logf("%s/%s: instrs=%d static=%.4f (mean %.4f, at %#x) dynamic=%.4f everlive=%d deaddefs=%d boundary=%d slots=%d deadstores=%d/%d",
				bench, is, st.Instrs, st.RegBound, st.MeanLive, st.BoundAddr,
				dyn.RegACE, st.EverLive, st.DeadDefs, st.BoundaryUses,
				st.StackSlots, st.DeadStackStores, st.StackStores)
		}
	}
}

// TestCFGRecovery checks successor recovery on a hand-built segment.
func TestCFGRecovery(t *testing.T) {
	is := isa.VSA64
	enc := func(in isa.Instr) []byte {
		w := isa.Encode(in)
		return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	}
	var text []byte
	// 0x1000: addi r5, r0, 7
	// 0x1004: beq  r5, r0, +8   -> {0x1008, 0x100c}
	// 0x1008: jal  r1, -8       -> {0x1000}
	// 0x100c: jalr r0, 0(r1)    -> unknown
	text = append(text, enc(isa.Instr{Op: isa.ADDI, Rd: 5, Rs1: 0, Imm: 7})...)
	text = append(text, enc(isa.Instr{Op: isa.BEQ, Rs1: 5, Rs2: 0, Imm: 8})...)
	text = append(text, enc(isa.Instr{Op: isa.JAL, Rd: 1, Imm: -8})...)
	text = append(text, enc(isa.Instr{Op: isa.JALR, Rd: 0, Rs1: 1, Imm: 0})...)

	res, err := static.AnalyzeSegs(is, []static.Seg{{Base: 0x1000, Text: text}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs != 4 || res.Illegal != 0 {
		t.Fatalf("instrs=%d illegal=%d, want 4/0", res.Instrs, res.Illegal)
	}
	// r5 is read by the branch, r1 by the jalr: both ever-live.
	if res.EverLive != 2 {
		t.Errorf("EverLive = %d, want 2 (r5, r1)", res.EverLive)
	}
	// RegBound: at most 2 of 32 registers are ever live here.
	if want := 2.0 / 32.0; res.RegBound > want {
		t.Errorf("RegBound = %.4f, want <= %.4f", res.RegBound, want)
	}
}

// TestFPMClassifier spot-checks the per-bit classification against the
// encoding: an ADDI immediate bit is WD, a register-specifier bit is
// WOI (or trap on VSA32 where the top specifier bit is illegal), and an
// opcode bit flip is WI or trap.
func TestFPMClassifier(t *testing.T) {
	w := isa.Encode(isa.Instr{Op: isa.ADDI, Rd: 5, Rs1: 6, Imm: 100})
	if c := isa.FlipClass(w, 20, isa.VSA64); c != isa.BitWD {
		t.Errorf("ADDI imm bit: %v, want WD", c)
	}
	if c := isa.FlipClass(w, 7, isa.VSA64); c != isa.BitWOI {
		t.Errorf("ADDI rd bit: %v, want WOI", c)
	}
	// rd=5: flipping specifier bit 4 gives r21 — illegal on VSA32.
	if c := isa.FlipClass(w, 11, isa.VSA32); c != isa.BitTrap {
		t.Errorf("ADDI rd high bit on VSA32: %v, want trap", c)
	}
	sw := isa.Encode(isa.Instr{Op: isa.SW, Rs1: 2, Rs2: 5, Imm: 16})
	// Store offset bits select the address, not a value: WOI.
	if c := isa.FlipClass(sw, 9, isa.VSA64); c != isa.BitWOI {
		t.Errorf("SW offset bit: %v, want WOI", c)
	}

	// Every bit of every class must be accounted for.
	var d static.FPMDist
	img := buildImage(t, "crc32", isa.VSA64)
	d = static.ClassifyText(isa.VSA64, static.ImageSegs(img))
	sum := 0
	for c := isa.BitClass(0); c < isa.NumBitClasses; c++ {
		sum += d.Bits[c]
	}
	if sum != d.Total() || d.Words == 0 {
		t.Fatalf("classified %d bits of %d", sum, d.Total())
	}
	// Generated code must contain all three manifest models.
	for _, c := range []isa.BitClass{isa.BitWD, isa.BitWI, isa.BitWOI} {
		if d.Bits[c] == 0 {
			t.Errorf("no %v bits classified in crc32 text", c)
		}
	}
	shares := d.ModelShare(isa.BitWD) + d.ModelShare(isa.BitWI) + d.ModelShare(isa.BitWOI)
	if shares < 0.999 || shares > 1.001 {
		t.Errorf("model shares sum to %.4f, want 1", shares)
	}
}
