package static

import (
	"math/bits"

	"vulnstack/internal/isa"
)

// This file is the bit-precise half of the static analyzer: a forward
// known-bits lattice (constant, zero- and sign-extension propagation
// through the ISA's ALU, shift, and memory ops) combined with a backward
// demanded-bits pass (which bits of each register can still influence an
// output, branch, address, or syscall operand). Demanded-bits refines
// register liveness bit by bit: demand(n, r) != 0 implies r is live-out
// at n, so the dominance chain
//
//	demanded-bits ⊆ register liveness ⊆ dynamic ACE ⊆ injected PVF
//
// holds per node by construction (TestDemandWithinLiveness pins it).
//
// Soundness model. Backward demand is computed over the recovered CFG's
// explicit edges; nodes with statically unresolvable successors (jalr,
// ecall, eret, undecodable words, edges leaving the text) demand every
// bit of every ReadRef register, exactly mirroring Liveness(). Store
// data operands demand only the bits the store physically writes
// (memory is untracked, so every stored bit is conservatively
// observable); addresses, branch/compare operands, and CSR writes
// demand all bits. The forward known-bits facts flow only along
// explicit edges, so they assume indirect control transfers (returns,
// traps) land on nodes with no static predecessor — true for this
// code generator (returns target the word after a jal, the trap vector
// has no static predecessor), but not enforced; known-bits facts are
// therefore used to *shrink* demand (an AND with a known-zero mask bit
// drops the demand) and as stratification features, never as
// stand-alone per-site verdicts at the hardware layers.
type BitFlow struct {
	g     *CFG
	nr    int
	xlen  uint
	wmask uint64

	// knownIn[n*nr+r] is the forward known-bits fact for register r on
	// entry to node n.
	knownIn []known
	// demandIn/demandOut[n*nr+r] are the backward demanded-bit masks
	// for register r on entry to / exit from node n.
	demandIn  []uint64
	demandOut []uint64
}

// known is a forward bit fact: every bit set in mask is known to equal
// the corresponding bit of val (val is always a subset of mask).
type known struct{ mask, val uint64 }

func meetKnown(a, b known) known {
	m := a.mask & b.mask &^ (a.val ^ b.val)
	return known{m, a.val & m}
}

// SolveBits runs both bit-level dataflows to fixpoint. Liveness() need
// not have run; the passes are independent.
func (g *CFG) SolveBits() *BitFlow {
	bf := &BitFlow{
		g:     g,
		nr:    g.IS.NumRegs(),
		xlen:  uint(g.IS.XLen()),
		wmask: g.IS.Mask(),
	}
	bf.solveKnown()
	bf.solveDemand()
	return bf
}

func (bf *BitFlow) kAll(v uint64) known { return known{bf.wmask, v & bf.wmask} }

// knownZero returns the bits of k known to be zero.
func knownZero(k known) uint64 { return k.mask &^ k.val }

// knownOne returns the bits of k known to be one.
func knownOne(k known) uint64 { return k.mask & k.val }

// addKnown models a + b: the low bits stay known while both inputs are
// known (carries into the window come only from known bits below).
func (bf *BitFlow) addKnown(a, b known, sub bool) known {
	t := bits.TrailingZeros64(^(a.mask & b.mask))
	if t == 0 {
		return known{}
	}
	var m uint64
	if t >= 64 {
		m = ^uint64(0)
	} else {
		m = uint64(1)<<uint(t) - 1
	}
	m &= bf.wmask
	v := a.val + b.val
	if sub {
		v = a.val - b.val
	}
	return known{m, v & m}
}

// shamtMask is the demand a shift places on its register shift amount:
// the hardware reads only the low log2(XLen) bits.
func (bf *BitFlow) shamtMask() uint64 { return uint64(bf.xlen - 1) }

// transferKnown computes the known-bits fact for the value node n
// writes to its destination register, given the entry facts.
func (bf *BitFlow) transferKnown(n *node, in []known) known {
	ins := n.in
	// Operand fields an op does not read may hold arbitrary encoding
	// bits; only pull facts for registers the op actually reads.
	var a, b known
	if ins.Op.ReadsRs1() && ins.Rs1 >= 0 && ins.Rs1 < bf.nr {
		a = in[ins.Rs1]
	}
	if ins.Op.ReadsRs2() && ins.Rs2 >= 0 && ins.Rs2 < bf.nr {
		b = in[ins.Rs2]
	}
	imm := bf.kAll(uint64(ins.Imm))
	w := bf.wmask
	switch ins.Op {
	case isa.LUI:
		return imm
	case isa.ADD:
		return bf.addKnown(a, b, false)
	case isa.SUB:
		return bf.addKnown(a, b, true)
	case isa.ADDI:
		return bf.addKnown(a, imm, false)
	case isa.AND, isa.ANDI:
		if ins.Op == isa.ANDI {
			b = imm
		}
		m := a.mask&b.mask | knownZero(a) | knownZero(b)
		return known{m, a.val & b.val & m}
	case isa.OR, isa.ORI:
		if ins.Op == isa.ORI {
			b = imm
		}
		m := a.mask&b.mask | knownOne(a) | knownOne(b)
		return known{m, (a.val | b.val) & m}
	case isa.XOR, isa.XORI:
		if ins.Op == isa.XORI {
			b = imm
		}
		m := a.mask & b.mask
		return known{m, (a.val ^ b.val) & m}
	case isa.SLT, isa.SLTU, isa.SLTI, isa.SLTIU:
		// Comparison results are exactly 0 or 1: all bits above bit 0
		// are known zero.
		return known{w &^ 1, 0}
	case isa.SLLI:
		return bf.shiftKnown(a, uint(ins.Imm), isa.SLLI)
	case isa.SRLI:
		return bf.shiftKnown(a, uint(ins.Imm), isa.SRLI)
	case isa.SRAI:
		return bf.shiftKnown(a, uint(ins.Imm), isa.SRAI)
	case isa.SLL, isa.SRL, isa.SRA:
		// A register shift with a fully known amount is an immediate
		// shift of that amount.
		if b.mask&bf.shamtMask() == bf.shamtMask() {
			sh := uint(b.val & bf.shamtMask())
			switch ins.Op {
			case isa.SLL:
				return bf.shiftKnown(a, sh, isa.SLLI)
			case isa.SRL:
				return bf.shiftKnown(a, sh, isa.SRLI)
			default:
				return bf.shiftKnown(a, sh, isa.SRAI)
			}
		}
		return known{}
	case isa.JAL, isa.JALR:
		// The link value is the constant return address.
		return bf.kAll(n.addr + 4)
	case isa.LB, isa.LH, isa.LW, isa.LD, isa.LBU, isa.LHU, isa.LWU:
		if ins.Op.MemUnsigned() {
			// Zero-extension: every bit above the loaded width is
			// known zero.
			lw := uint(8 * ins.Op.MemBytes())
			return known{w &^ (uint64(1)<<lw - 1), 0}
		}
		return known{}
	default: // MUL/DIV/REM family, CSRR: nothing known
		return known{}
	}
}

// shiftKnown models the three immediate shifts on a known fact.
func (bf *BitFlow) shiftKnown(a known, sh uint, op isa.Op) known {
	w := bf.wmask
	if sh == 0 {
		return a
	}
	if sh >= bf.xlen {
		return known{}
	}
	switch op {
	case isa.SLLI:
		low := uint64(1)<<sh - 1
		m := (a.mask<<sh | low) & w
		return known{m, (a.val << sh) & m}
	case isa.SRLI:
		high := w &^ (w >> sh) // vacated top bits: known zero
		m := a.mask>>sh | high
		return known{m, a.val >> sh & m}
	default: // SRAI: vacated top bits known when the sign bit is known
		m := a.mask >> sh
		v := a.val >> sh
		sign := uint64(1) << (bf.xlen - 1)
		if a.mask&sign != 0 {
			high := w &^ (w >> sh)
			m |= high
			if a.val&sign != 0 {
				v |= high
			}
		}
		return known{m, v & m}
	}
}

// solveKnown runs the forward pass: ascending fixpoint from "nothing
// known" (sound least fixpoint; loop-carried constants are not
// recovered, straight-line and acyclic facts are).
func (bf *BitFlow) solveKnown() {
	g := bf.g
	nn := len(g.Nodes)
	bf.knownIn = make([]known, nn*bf.nr)
	out := make([]known, nn*bf.nr)
	// r0 is hardwired zero everywhere.
	z := bf.kAll(0)
	for n := 0; n < nn; n++ {
		bf.knownIn[n*bf.nr] = z
		out[n*bf.nr] = z
	}

	work := make([]int, 0, nn)
	inWork := make([]bool, nn)
	for i := 0; i < nn; i++ {
		work = append(work, i)
		inWork[i] = true
	}
	tmp := make([]known, bf.nr)
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		n := &g.Nodes[i]

		in := bf.knownIn[i*bf.nr : (i+1)*bf.nr]
		if len(n.preds) > 0 {
			copy(tmp, out[n.preds[0]*bf.nr:n.preds[0]*bf.nr+bf.nr])
			for _, p := range n.preds[1:] {
				po := out[p*bf.nr : p*bf.nr+bf.nr]
				for r := 0; r < bf.nr; r++ {
					tmp[r] = meetKnown(tmp[r], po[r])
				}
			}
			for r := 1; r < bf.nr; r++ {
				// Meet can only move along the computed ascending
				// chain; take it directly.
				in[r] = tmp[r]
			}
		}

		o := out[i*bf.nr : (i+1)*bf.nr]
		changed := false
		for r := 1; r < bf.nr; r++ {
			k := in[r]
			if n.ok && n.in.Op.WritesRd() && n.in.Rd == r {
				k = bf.transferKnown(n, in)
			}
			if k != o[r] {
				o[r] = k
				changed = true
			}
		}
		if changed {
			for _, s := range n.succ {
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
	}
}

// lowExt extends a demand mask downward: operations whose result bit i
// depends on source bits <= i (add, sub, mul, left shift by an unknown
// amount) demand every bit up to the highest demanded result bit.
func lowExt(d uint64) uint64 {
	if d == 0 {
		return 0
	}
	n := bits.Len64(d)
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// highExt extends a demand mask upward: right shifts by an unknown
// amount map result bit i to source bits >= i.
func highExt(d, wmask uint64) uint64 {
	if d == 0 {
		return 0
	}
	return wmask &^ (uint64(1)<<uint(bits.TrailingZeros64(d)) - 1)
}

// solveDemand runs the backward pass to fixpoint.
func (bf *BitFlow) solveDemand() {
	g := bf.g
	nn := len(g.Nodes)
	bf.demandIn = make([]uint64, nn*bf.nr)
	bf.demandOut = make([]uint64, nn*bf.nr)

	work := make([]int, 0, nn)
	inWork := make([]bool, nn)
	for i := nn - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	tmp := make([]uint64, bf.nr)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		n := &g.Nodes[i]

		for r := range tmp {
			tmp[r] = 0
		}
		if n.unknown {
			// Mirror Liveness: anything any instruction somewhere can
			// read may be fully demanded past an unresolvable edge.
			for r := 1; r < bf.nr; r++ {
				if g.ReadRef&regBit(r) != 0 {
					tmp[r] = bf.wmask
				}
			}
		}
		for _, s := range n.succ {
			si := bf.demandIn[s*bf.nr : s*bf.nr+bf.nr]
			for r := 1; r < bf.nr; r++ {
				tmp[r] |= si[r]
			}
		}

		out := bf.demandOut[i*bf.nr : (i+1)*bf.nr]
		changed := false
		for r := 1; r < bf.nr; r++ {
			if tmp[r]&^out[r] != 0 {
				out[r] |= tmp[r]
				changed = true
			}
		}

		copy(tmp, out)
		bf.transferDemand(i, tmp)
		in := bf.demandIn[i*bf.nr : (i+1)*bf.nr]
		inChanged := false
		for r := 1; r < bf.nr; r++ {
			if tmp[r] != in[r] {
				in[r] = tmp[r]
				inChanged = true
			}
		}
		if changed || inChanged {
			for _, p := range n.preds {
				if !inWork[p] {
					work = append(work, p)
					inWork[p] = true
				}
			}
		}
	}
}

// transferDemand rewrites d (the demand-out vector of node i) into the
// demand-in vector in place.
func (bf *BitFlow) transferDemand(i int, d []uint64) {
	n := &bf.g.Nodes[i]
	if !n.ok {
		return
	}
	ins := n.in
	w := bf.wmask
	kin := bf.knownIn[i*bf.nr : (i+1)*bf.nr]

	// Kill the defined register and capture its outgoing demand.
	var D uint64
	if ins.Op.WritesRd() && ins.Rd != 0 {
		D = d[ins.Rd]
		d[ins.Rd] = 0
	}
	dm := func(r int, m uint64) {
		if r != 0 && m != 0 {
			d[r] |= m & w
		}
	}

	switch {
	case ins.Op.IsBranch():
		// Branch comparisons read every bit; a flipped bit may change
		// the direction.
		dm(ins.Rs1, w)
		dm(ins.Rs2, w)
	case ins.Op.IsStore():
		// Memory is untracked: every bit the store physically writes is
		// conservatively observable, but only those bits.
		dm(ins.Rs2, uint64(1)<<uint(8*ins.Op.MemBytes())-1)
		dm(ins.Rs1, w) // address: bad or misaligned values trap
	case ins.Op.IsLoad():
		dm(ins.Rs1, w) // address
	default:
		switch ins.Op {
		case isa.ADD, isa.SUB, isa.MUL:
			dm(ins.Rs1, lowExt(D))
			dm(ins.Rs2, lowExt(D))
		case isa.ADDI:
			dm(ins.Rs1, lowExt(D))
		case isa.AND:
			dm(ins.Rs1, D&^knownZero(kin[ins.Rs2]))
			dm(ins.Rs2, D&^knownZero(kin[ins.Rs1]))
		case isa.ANDI:
			dm(ins.Rs1, D&uint64(ins.Imm))
		case isa.OR:
			dm(ins.Rs1, D&^knownOne(kin[ins.Rs2]))
			dm(ins.Rs2, D&^knownOne(kin[ins.Rs1]))
		case isa.ORI:
			dm(ins.Rs1, D&^uint64(ins.Imm))
		case isa.XOR:
			dm(ins.Rs1, D)
			dm(ins.Rs2, D)
		case isa.XORI:
			dm(ins.Rs1, D)
		case isa.SLLI:
			dm(ins.Rs1, D>>uint(ins.Imm))
		case isa.SRLI:
			dm(ins.Rs1, D<<uint(ins.Imm))
		case isa.SRAI:
			bf.demandShiftRight(dm, ins.Rs1, D, uint(ins.Imm), true)
		case isa.SLL, isa.SRL, isa.SRA:
			if D != 0 {
				dm(ins.Rs2, bf.shamtMask())
			}
			if k := kin[ins.Rs2]; k.mask&bf.shamtMask() == bf.shamtMask() {
				sh := uint(k.val & bf.shamtMask())
				switch ins.Op {
				case isa.SLL:
					dm(ins.Rs1, D>>sh)
				case isa.SRL:
					dm(ins.Rs1, D<<sh)
				default:
					bf.demandShiftRight(dm, ins.Rs1, D, sh, true)
				}
			} else {
				switch ins.Op {
				case isa.SLL:
					dm(ins.Rs1, lowExt(D))
				default: // SRL, SRA: result bit i <- source bits >= i
					dm(ins.Rs1, highExt(D, w))
				}
			}
		case isa.SLT, isa.SLTU:
			// The result is 0/1: only a demand on bit 0 reaches the
			// inputs, and then every input bit matters.
			if D&1 != 0 {
				dm(ins.Rs1, w)
				dm(ins.Rs2, w)
			}
		case isa.SLTI, isa.SLTIU:
			if D&1 != 0 {
				dm(ins.Rs1, w)
			}
		case isa.DIV, isa.DIVU, isa.REM, isa.REMU:
			// Division never traps (RISC defined semantics) but every
			// input bit can reach every output bit.
			if D != 0 {
				dm(ins.Rs1, w)
				dm(ins.Rs2, w)
			}
		case isa.JALR:
			dm(ins.Rs1, w) // computed target
		case isa.CSRW:
			dm(ins.Rs1, w)
		}
		// LUI, JAL, ECALL, ERET, CSRR read no register sources.
	}
}

// demandShiftRight adds the source demand of an arithmetic right shift
// by a known amount: bits below xlen-sh come from source bit i+sh; bits
// at or above it replicate the sign bit.
func (bf *BitFlow) demandShiftRight(dm func(int, uint64), r int, D uint64, sh uint, arith bool) {
	if sh >= bf.xlen {
		sh = bf.xlen - 1
	}
	m := (D << sh) & bf.wmask
	if arith && sh > 0 {
		top := bf.wmask &^ (bf.wmask >> sh)
		if D&top != 0 {
			m |= uint64(1) << (bf.xlen - 1)
		}
	}
	dm(r, m)
}

// DemandedOut returns the demanded-bit mask of register r on exit from
// node i.
func (bf *BitFlow) DemandedOut(i, r int) uint64 {
	if i < 0 || i >= len(bf.g.Nodes) || r < 0 || r >= bf.nr {
		return bf.wmask
	}
	return bf.demandOut[i*bf.nr+r]
}

// DemandedUnionAt returns the union of the demanded-bit masks over all
// registers on exit from the instruction at addr — the stratification
// feature hardware layers bucket fault bit positions with. ok is false
// outside the analyzed text (callers fall back to full demand).
func (bf *BitFlow) DemandedUnionAt(addr uint64) (uint64, bool) {
	i := bf.g.NodeAt(addr)
	if i < 0 {
		return bf.wmask, false
	}
	var u uint64
	for r := 1; r < bf.nr; r++ {
		u |= bf.demandOut[i*bf.nr+r]
	}
	return u, true
}

// KnownIn returns the forward known-bits fact for register r on entry
// to node i (exposed for tests).
func (bf *BitFlow) KnownIn(i, r int) (mask, val uint64) {
	k := bf.knownIn[i*bf.nr+r]
	return k.mask, k.val
}

// BitStats summarizes the bit-level analysis for reporting: of all
// (node, register, bit) triples where the register is live-out, how
// many are demanded. Requires Liveness() to have run on the CFG.
type BitStats struct {
	Instrs       int
	LiveBits     int64 // live-out register bits summed over nodes
	DemandedBits int64 // of those, bits the backward pass demands
}

// ResolvedFrac is the fraction of live register bits the analysis
// proves undemanded: faults there are invisible at that program point.
func (s BitStats) ResolvedFrac() float64 {
	if s.LiveBits == 0 {
		return 0
	}
	return 1 - float64(s.DemandedBits)/float64(s.LiveBits)
}

// Stats computes the bit-level summary.
func (bf *BitFlow) Stats() BitStats {
	var st BitStats
	for i := range bf.g.Nodes {
		n := &bf.g.Nodes[i]
		if !n.ok {
			continue
		}
		st.Instrs++
		for r := 1; r < bf.nr; r++ {
			if n.liveOut&regBit(r) == 0 {
				continue
			}
			st.LiveBits += int64(bf.xlen)
			st.DemandedBits += int64(bits.OnesCount64(bf.demandOut[i*bf.nr+r]))
		}
	}
	return st
}

// DemandWithinLiveness verifies the dominance-chain containment
// demanded-bits ⊆ register liveness: any register with nonzero demand
// on exit from a node must be live-out there. Requires Liveness().
func (bf *BitFlow) DemandWithinLiveness() bool {
	for i := range bf.g.Nodes {
		n := &bf.g.Nodes[i]
		for r := 1; r < bf.nr; r++ {
			if bf.demandOut[i*bf.nr+r] != 0 && n.liveOut&regBit(r) == 0 {
				return false
			}
		}
	}
	return true
}
