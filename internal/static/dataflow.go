package static

import (
	"vulnstack/internal/isa"
)

// Liveness solves backward may-liveness over registers to a fixpoint:
//
//	liveOut(n) = union of liveIn(s) over known successors s,
//	             or ReadRef when n's successors are unresolvable
//	liveIn(n)  = use(n) | (liveOut(n) &^ def(n))
//
// Unresolvable successors (jalr, ecall, eret, undecodable words, edges
// leaving the text) take the whole ReadRef set: a register can only be
// live if some instruction somewhere reads it, so ReadRef bounds every
// possible live set and keeps the analysis sound without resolving
// indirect control flow.
func (g *CFG) Liveness() {
	work := make([]int, 0, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		n := &g.Nodes[i]

		var out uint32
		if n.unknown {
			out = g.ReadRef
		}
		for _, s := range n.succ {
			out |= g.Nodes[s].liveIn
		}
		in := n.use | (out &^ n.def)
		if out == n.liveOut && in == n.liveIn {
			continue
		}
		n.liveOut, n.liveIn = out, in
		for _, p := range n.preds {
			if !inWork[p] {
				work = append(work, p)
				inWork[p] = true
			}
		}
	}
}

// bitset is a dense bit vector over definition sites.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// orInto ors src into b, reporting whether b changed.
func (b bitset) orInto(src bitset) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// ReachingDefs solves forward reaching definitions over the known CFG
// edges: which defining instructions can reach each node. Values
// flowing through unresolvable edges (returns, traps) are not tracked
// — uses they feed show up as boundary uses, values produced outside
// the statically visible flow.
type ReachingDefs struct {
	// DefSite[d] is the node index of definition site d.
	DefSite []int
	// In[n] is the set of definition sites reaching node n.
	In []bitset
	// defsOf[r] is the set of all definition sites of register r.
	defsOf map[int]bitset
}

// SolveReachingDefs runs the forward dataflow to a fixpoint.
func (g *CFG) SolveReachingDefs() *ReachingDefs {
	rd := &ReachingDefs{defsOf: make(map[int]bitset)}
	defAt := make([]int, len(g.Nodes)) // def site id per node, -1 if none
	for i := range g.Nodes {
		defAt[i] = -1
		if g.Nodes[i].def != 0 {
			defAt[i] = len(rd.DefSite)
			rd.DefSite = append(rd.DefSite, i)
		}
	}
	nd := len(rd.DefSite)
	for d, i := range rd.DefSite {
		r := g.Nodes[i].in.Rd
		s, ok := rd.defsOf[r]
		if !ok {
			s = newBitset(nd)
			rd.defsOf[r] = s
		}
		s.set(d)
	}

	rd.In = make([]bitset, len(g.Nodes))
	out := make([]bitset, len(g.Nodes))
	for i := range g.Nodes {
		rd.In[i] = newBitset(nd)
		out[i] = newBitset(nd)
	}

	work := make([]int, 0, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	for i := range g.Nodes {
		work = append(work, i)
		inWork[i] = true
	}
	tmp := newBitset(nd)
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		n := &g.Nodes[i]

		for _, p := range n.preds {
			rd.In[i].orInto(out[p])
		}
		// out = gen | (in &^ kill)
		copy(tmp, rd.In[i])
		if d := defAt[i]; d >= 0 {
			kill := rd.defsOf[n.in.Rd]
			for w := range tmp {
				tmp[w] &^= kill[w]
			}
			tmp.set(d)
		}
		if out[i].orInto(tmp) {
			for _, s := range n.succ {
				if !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
	}
	return rd
}

// ReachingAt returns the definition sites of register r reaching node
// n (node indices of the defining instructions).
func (rd *ReachingDefs) ReachingAt(n, r int) []int {
	defs, ok := rd.defsOf[r]
	if !ok {
		return nil
	}
	var sites []int
	for d, site := range rd.DefSite {
		if defs.has(d) && rd.In[n].has(d) {
			sites = append(sites, site)
		}
	}
	return sites
}

// SlotLiveness analyzes stack-slot lifetimes: backward may-liveness
// over sp-relative byte intervals. Anything the analysis cannot see
// through — writes to sp itself (frame setup/teardown), calls, traps,
// unresolvable control flow, and memory accesses through computed
// pointers (frame addresses escape via addi rd, sp, off) — makes every
// slot live, so a store reported dead is dead on every path.
type SlotLiveness struct {
	// Slots is the distinct sp-relative access intervals observed,
	// as [offset, offset+width) byte ranges.
	Slots [][2]int64
	// DeadStores lists node indices of sp-relative stores whose slot
	// is provably not live out (never read again on any path).
	DeadStores []int
	// Stores is the total count of sp-relative stores.
	Stores int
}

// SolveSlots runs the stack-slot liveness analysis. Slots are byte
// intervals; overlap (a byte store into a word slot) is handled
// conservatively — a load makes every overlapping slot live, a store
// kills only slots its interval fully covers.
func (g *CFG) SolveSlots() *SlotLiveness {
	sl := &SlotLiveness{}
	spBase := func(n *node) bool { return n.ok && n.in.Rs1 == isa.RegSP }
	slotID := make(map[[2]int64]int)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.ok && (n.in.Op.IsLoad() || n.in.Op.IsStore()) && spBase(n) {
			iv := [2]int64{n.in.Imm, n.in.Imm + int64(n.in.Op.MemBytes())}
			if _, seen := slotID[iv]; !seen {
				slotID[iv] = len(sl.Slots)
				sl.Slots = append(sl.Slots, iv)
			}
		}
	}
	ns := len(sl.Slots)
	if ns == 0 {
		return sl
	}

	// Per-node use/kill masks over slot intervals: a load uses every
	// slot it overlaps; a store kills only slots it fully covers.
	overlaps := func(a, b [2]int64) bool { return a[0] < b[1] && b[0] < a[1] }
	covers := func(outer, inner [2]int64) bool {
		return outer[0] <= inner[0] && inner[1] <= outer[1]
	}
	use := make([]bitset, len(g.Nodes))
	kill := make([]bitset, len(g.Nodes))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !n.ok || !spBase(n) || !(n.in.Op.IsLoad() || n.in.Op.IsStore()) {
			continue
		}
		iv := [2]int64{n.in.Imm, n.in.Imm + int64(n.in.Op.MemBytes())}
		m := newBitset(ns)
		for s, sv := range sl.Slots {
			if n.in.Op.IsLoad() && overlaps(iv, sv) {
				m.set(s)
			}
			if n.in.Op.IsStore() && covers(iv, sv) {
				m.set(s)
			}
		}
		if n.in.Op.IsLoad() {
			use[i] = m
		} else {
			kill[i] = m
		}
	}

	// barrier reports whether a node forces all slots live: the
	// analysis cannot prove any slot dead across it.
	barrier := func(n *node) bool {
		if !n.ok || n.unknown {
			return true
		}
		in := n.in
		switch {
		case in.Op == isa.JAL: // call: callee may read the frame
			return true
		case in.Op.WritesRd() && in.Rd == isa.RegSP: // frame change
			return true
		case (in.Op.IsLoad() || in.Op.IsStore()) && !spBase(n): // alias
			return true
		}
		return false
	}

	all := newBitset(ns)
	for s := 0; s < ns; s++ {
		all.set(s)
	}
	liveIn := make([]bitset, len(g.Nodes))
	liveOut := make([]bitset, len(g.Nodes))
	for i := range g.Nodes {
		liveIn[i] = newBitset(ns)
		liveOut[i] = newBitset(ns)
	}

	work := make([]int, 0, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	tmp := newBitset(ns)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		n := &g.Nodes[i]

		copy(tmp, liveOut[i])
		if n.unknown {
			copy(tmp, all)
		}
		for _, s := range n.succ {
			tmp.orInto(liveIn[s])
		}
		outChanged := liveOut[i].orInto(tmp)

		// in = use | (out &^ kill), or everything at a barrier.
		copy(tmp, liveOut[i])
		if barrier(n) {
			copy(tmp, all)
		} else {
			if kill[i] != nil {
				for w := range tmp {
					tmp[w] &^= kill[i][w]
				}
			}
			if use[i] != nil {
				tmp.orInto(use[i])
			}
		}
		if liveIn[i].orInto(tmp) || outChanged {
			for _, p := range n.preds {
				if !inWork[p] {
					work = append(work, p)
					inWork[p] = true
				}
			}
		}
	}

	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !n.ok || !n.in.Op.IsStore() || !spBase(n) {
			continue
		}
		sl.Stores++
		iv := [2]int64{n.in.Imm, n.in.Imm + int64(n.in.Op.MemBytes())}
		dead := true
		for s, sv := range sl.Slots {
			if overlaps(iv, sv) && liveOut[i].has(s) {
				dead = false
				break
			}
		}
		if dead {
			sl.DeadStores = append(sl.DeadStores, i)
		}
	}
	return sl
}
