package static

import (
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
)

// Seg is one text segment to analyze: a base address and its raw bytes
// (little-endian 32-bit instruction words).
type Seg struct {
	Base uint64
	Text []byte
}

// node is one instruction word in the recovered CFG.
type node struct {
	addr    uint64
	word    uint32
	in      isa.Instr
	ok      bool  // word decodes
	succ    []int // statically known successor nodes
	preds   []int
	unknown bool // has successors not resolvable from the encoding
	// Register dataflow facts, as bitmasks over register indices
	// (bit r set = register r; r0 is never tracked, matching the
	// dynamic ACE analysis which skips the hardwired zero).
	use, def         uint32
	liveIn, liveOut  uint32
}

// CFG is an instruction-level control-flow graph recovered from raw
// text segments by disassembly alone: no execution, no symbols needed.
type CFG struct {
	IS     isa.ISA
	Nodes  []node
	byAddr map[uint64]int
	// ReadRef is the union of every register read by any decodable
	// instruction in the image — a sound upper bound on any live set,
	// used as the live-out of nodes with unresolvable successors.
	ReadRef uint32
}

// ImageSegs extracts the kernel and user text segments of a bootable
// image: together they cover every instruction the emulator can
// legally fetch, so a CFG over them covers the whole execution.
func ImageSegs(img *kernel.Image) []Seg {
	return []Seg{
		{Base: img.Kernel.TextAddr, Text: img.Kernel.Text},
		{Base: img.User.TextAddr, Text: img.User.Text},
	}
}

// regBit returns the bitmask for register r, excluding r0.
func regBit(r int) uint32 {
	if r == 0 {
		return 0
	}
	return 1 << uint(r)
}

// BuildCFG disassembles the segments and recovers the instruction-level
// CFG. Successor rules mirror the hardware's next-PC logic:
//
//   - conditional branch: fall-through and target
//   - jal: target only (the link register is a def, not a successor)
//   - jalr, ecall, eret: statically unresolvable (register target or
//     trap vector) — marked unknown and treated conservatively
//   - undecodable word: traps — unknown
//   - any edge leaving the analyzed text: unknown
func BuildCFG(is isa.ISA, segs []Seg) *CFG {
	g := &CFG{IS: is, byAddr: make(map[uint64]int)}
	for _, s := range segs {
		for off := 0; off+4 <= len(s.Text); off += 4 {
			addr := s.Base + uint64(off)
			w := uint32(s.Text[off]) | uint32(s.Text[off+1])<<8 |
				uint32(s.Text[off+2])<<16 | uint32(s.Text[off+3])<<24
			n := node{addr: addr, word: w}
			n.in, n.ok = isa.Decode(w, is)
			g.byAddr[addr] = len(g.Nodes)
			g.Nodes = append(g.Nodes, n)
		}
	}

	link := func(i int, target uint64) {
		j, ok := g.byAddr[target]
		if !ok {
			g.Nodes[i].unknown = true
			return
		}
		g.Nodes[i].succ = append(g.Nodes[i].succ, j)
	}

	for i := range g.Nodes {
		n := &g.Nodes[i]
		if !n.ok {
			n.unknown = true
			continue
		}
		in := n.in
		// Use/def sets exactly as the dynamic ACE tracker accounts
		// them, so static liveness provably over-approximates it.
		if in.Op.ReadsRs1() {
			n.use |= regBit(in.Rs1)
		}
		if in.Op.ReadsRs2() {
			n.use |= regBit(in.Rs2)
		}
		if in.Op.WritesRd() {
			n.def |= regBit(in.Rd)
		}
		g.ReadRef |= n.use

		switch {
		case in.Op.IsBranch():
			link(i, n.addr+4)
			link(i, n.addr+uint64(in.Imm))
		case in.Op == isa.JAL:
			link(i, n.addr+uint64(in.Imm))
		case in.Op == isa.JALR, in.Op == isa.ECALL, in.Op == isa.ERET:
			n.unknown = true
		default:
			link(i, n.addr+4)
		}
	}

	for i := range g.Nodes {
		for _, s := range g.Nodes[i].succ {
			g.Nodes[s].preds = append(g.Nodes[s].preds, i)
		}
	}
	return g
}

// NodeAt returns the node index for an address, or -1.
func (g *CFG) NodeAt(addr uint64) int {
	if i, ok := g.byAddr[addr]; ok {
		return i
	}
	return -1
}

// LiveOutAt returns the live-out register mask at an instruction
// address, valid after Liveness(); ok=false when the address is outside
// the analyzed text. Consumers that only need a coarse feature (e.g.
// stratified-sampling liveness buckets) count the set bits.
func (g *CFG) LiveOutAt(addr uint64) (uint32, bool) {
	i := g.NodeAt(addr)
	if i < 0 {
		return 0, false
	}
	return g.Nodes[i].liveOut, true
}
