package static_test

import (
	"strings"
	"testing"

	"vulnstack/internal/harden"
	"vulnstack/internal/ir"
	"vulnstack/internal/minic"
	"vulnstack/internal/static"
	"vulnstack/internal/workload"
)

func compileBench(t *testing.T, bench string) *ir.Module {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := minic.Compile(spec.Gen(2021, 1), 64)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCoverageFullOnTransform: the verifier must certify 100% coverage
// on the transform's own output, for every seed benchmark.
func TestCoverageFullOnTransform(t *testing.T) {
	opts := harden.DefaultOptions()
	for _, bench := range workload.Names() {
		m := compileBench(t, bench)
		hm, err := harden.Transform(m, opts)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		cov := static.VerifyHardening(hm, opts)
		if !cov.Full() {
			for _, h := range cov.Holes[:min(5, len(cov.Holes))] {
				t.Errorf("%s: hole: %s", bench, h)
			}
			t.Fatalf("%s: %d/%d obligations covered, %d holes",
				bench, cov.Covered, cov.Obligations, len(cov.Holes))
		}
		if cov.Frac() != 1 || cov.Obligations == 0 || cov.Funcs == 0 {
			t.Fatalf("%s: frac=%v obligations=%d funcs=%d",
				bench, cov.Frac(), cov.Obligations, cov.Funcs)
		}
	}
}

// TestCoverageUnhardened: an unhardened module must be reported almost
// entirely uncovered, not certified.
func TestCoverageUnhardened(t *testing.T) {
	m := compileBench(t, "crc32")
	cov := static.VerifyHardening(m, harden.DefaultOptions())
	if cov.Full() {
		t.Fatal("unhardened module certified as fully covered")
	}
	if cov.Frac() > 0.5 {
		t.Fatalf("unhardened module %.0f%% covered, expected mostly holes", 100*cov.Frac())
	}
}

// weaken drops protection from one instruction of one protectable
// function, returning what was removed.
func weaken(m *ir.Module, drop func(f *ir.Func, b *ir.Block, i int) bool) bool {
	for _, f := range m.Funcs {
		if !harden.Protectable(f.Name) {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if drop(f, b, i) {
					b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
					return true
				}
			}
		}
	}
	return false
}

// TestCoverageSeededHoles: deliberately weakened programs must produce
// holes — a dropped duplicate, and a dropped guard before a store.
func TestCoverageSeededHoles(t *testing.T) {
	opts := harden.DefaultOptions()

	t.Run("dropped-duplicate", func(t *testing.T) {
		hm, err := harden.Transform(compileBench(t, "crc32"), opts)
		if err != nil {
			t.Fatal(err)
		}
		// Remove the shadow duplicate of the first Bin: a Bin whose
		// operands all sit in the shadow range right after its primary.
		ok := weaken(hm, func(f *ir.Func, b *ir.Block, i int) bool {
			if i == 0 {
				return false
			}
			p, d := &b.Instrs[i-1], &b.Instrs[i]
			return p.Op == ir.OpBin && d.Op == ir.OpBin && p.Bin == d.Bin &&
				d.Dst > p.Dst && d.A > p.A && d.B > p.B
		})
		if !ok {
			t.Fatal("no duplicate pair found to weaken")
		}
		cov := static.VerifyHardening(hm, opts)
		if cov.Full() {
			t.Fatal("verifier certified a module with a dropped duplicate")
		}
		found := false
		for _, h := range cov.Holes {
			if strings.Contains(h.Reason, "not duplicated") {
				found = true
			}
		}
		if !found {
			t.Fatalf("no 'not duplicated' hole among %d holes: %v", len(cov.Holes), cov.Holes)
		}
	})

	t.Run("dropped-store-guard", func(t *testing.T) {
		hm, err := harden.Transform(compileBench(t, "crc32"), opts)
		if err != nil {
			t.Fatal(err)
		}
		// Remove the __ftcheck call immediately preceding a store.
		ok := weaken(hm, func(f *ir.Func, b *ir.Block, i int) bool {
			return i+1 < len(b.Instrs) &&
				b.Instrs[i].Op == ir.OpCall && b.Instrs[i].Sym == harden.CheckFunc &&
				b.Instrs[i+1].Op == ir.OpStore
		})
		if !ok {
			t.Fatal("no store guard found to weaken")
		}
		cov := static.VerifyHardening(hm, opts)
		if cov.Full() {
			t.Fatal("verifier certified a module with an unguarded store")
		}
		found := false
		for _, h := range cov.Holes {
			if strings.Contains(h.Reason, "store not guarded") {
				found = true
			}
		}
		if !found {
			t.Fatalf("no 'store not guarded' hole among %d holes: %v", len(cov.Holes), cov.Holes)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
