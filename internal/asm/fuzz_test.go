package asm

import (
	"strings"
	"testing"

	"vulnstack/internal/isa"
)

// fuzzISA maps a fuzz selector byte onto an ISA variant, so one corpus
// exercises both encodings.
func fuzzISA(sel byte) isa.ISA {
	if sel&1 == 0 {
		return isa.VSA32
	}
	return isa.VSA64
}

// tryEncode runs isa.Encode, converting its malformed-instruction panic
// (a bug guard for the assembler, not an input error) into ok=false so
// fuzz bodies can probe it on arbitrary parsed instructions.
func tryEncode(in isa.Instr) (w uint32, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return isa.Encode(in), true
}

// FuzzDecodeNeverPanics throws arbitrary 32-bit words at the decoder.
// Decode and Disasm must never panic; every word the decoder accepts
// must re-encode without panicking to a canonical word that decodes to
// the identical instruction, and whose disassembly reassembles through
// ParseInstr to that same canonical word. (Encode∘Decode is a fixpoint
// rather than the identity: dead encoding space — ignored specifier
// fields such as CSRW's rd — normalizes to zero on the first trip.)
func FuzzDecodeNeverPanics(f *testing.F) {
	for _, sel := range []byte{0, 1} {
		is := fuzzISA(sel)
		for op := isa.Op(0); op < isa.NumOps; op++ {
			if cands := candidates(op, is); len(cands) > 0 {
				f.Add(isa.Encode(cands[0]), sel)
			}
		}
		// Junk, boundary patterns, and near-legal words (flipped bits
		// land in funct/specifier fields).
		for _, w := range []uint32{
			0x00000000, 0xFFFFFFFF, 0x00000073, 0x00100073,
			isa.Encode(isa.Instr{Op: isa.ADDI, Rd: 5, Rs1: 0, Imm: 7}) ^ 1<<14,
			isa.Encode(isa.Instr{Op: isa.SW, Rs1: 2, Rs2: 4, Imm: 16}) ^ 1<<27,
			isa.Encode(isa.Instr{Op: isa.JAL, Rd: 1, Imm: 2048}) ^ 1<<7,
		} {
			f.Add(w, sel)
		}
	}
	f.Fuzz(func(t *testing.T, w uint32, sel byte) {
		is := fuzzISA(sel)
		dec, ok := isa.Decode(w, is)
		text := isa.Disasm(w, is)
		if !ok {
			if !strings.Contains(text, "illegal") {
				t.Fatalf("undecodable word %#08x disassembles to %q", w, text)
			}
			return
		}
		dec.Raw = 0
		cw, encOK := tryEncode(dec)
		if !encOK {
			t.Fatalf("%v: Encode panicked on decoded word %#08x (%+v)", is, w, dec)
		}
		dec2, ok2 := isa.Decode(cw, is)
		if !ok2 {
			t.Fatalf("%v: canonical word %#08x of %#08x does not decode", is, cw, w)
		}
		dec2.Raw = 0
		if dec2 != dec {
			t.Fatalf("%v: %#08x decodes to %+v but its canonical word %#08x to %+v", is, w, dec, cw, dec2)
		}
		if w2 := isa.Encode(dec2); w2 != cw {
			t.Fatalf("%v: Encode∘Decode not a fixpoint: %#08x -> %#08x", is, cw, w2)
		}
		parsed, err := ParseInstr(text, is)
		if err != nil {
			t.Fatalf("%v: disassembly %q of legal word %#08x does not reassemble: %v", is, text, w, err)
		}
		if wp := isa.Encode(parsed); wp != cw {
			t.Fatalf("%v: reassembling %q: got %#08x want %#08x", is, text, wp, cw)
		}
	})
}

// FuzzParseInstrRoundTrip throws arbitrary text at the assembler.
// ParseInstr must never panic; whenever it accepts a string whose
// instruction also encodes and decodes, the disassembly of that
// encoding must re-parse to the identical word. ParseInstr itself does
// not range-check immediates (that is Encode's panic guard), so
// parse-ok/encode-panic is a legal outcome, as is parse-ok/decode-fail
// (e.g. a 64-bit shift amount under VSA32).
func FuzzParseInstrRoundTrip(f *testing.F) {
	for _, sel := range []byte{0, 1} {
		is := fuzzISA(sel)
		for op := isa.Op(0); op < isa.NumOps; op++ {
			for _, in := range candidates(op, is) {
				if _, ok := isa.Decode(isa.Encode(in), is); ok {
					f.Add(isa.Disasm(isa.Encode(in), is), sel)
					break
				}
			}
		}
		for _, s := range []string{
			"", "bogus", "addi r5", "addi r5, r6", "add r1 r2 r3",
			"lw r1, (r2)", "lw r1, 4[r2]", "sw r99, 0(r1)",
			"addi r1, r1, 99999999999999999999", "addi r1, r1, 0x7FF",
			"beq r1, r2, 6", "jal r1, -4", "lui r3, 0xfffffffffffff000",
			"csrw nosuchcsr, r1", "ecall r1", "slli r1, r2, 63",
		} {
			f.Add(s, sel)
		}
	}
	f.Fuzz(func(t *testing.T, text string, sel byte) {
		is := fuzzISA(sel)
		in, err := ParseInstr(text, is)
		if err != nil {
			return
		}
		w, ok := tryEncode(in)
		if !ok {
			return // out-of-range immediate: parseable but not encodable
		}
		dec, ok := isa.Decode(w, is)
		if !ok {
			return // encodable form illegal on this variant
		}
		dec.Raw = 0
		cw := isa.Encode(dec)
		round := isa.Disasm(cw, is)
		again, err := ParseInstr(round, is)
		if err != nil {
			t.Fatalf("%v: %q assembled to %#08x, but its disassembly %q does not re-parse: %v", is, text, cw, round, err)
		}
		if w2 := isa.Encode(again); w2 != cw {
			t.Fatalf("%v: %q -> %#08x, disassembly %q -> %#08x", is, text, cw, round, w2)
		}
	})
}
