package asm

import (
	"fmt"
	"strconv"
	"strings"

	"vulnstack/internal/isa"
)

// opByName maps assembly mnemonics back to operations, the inverse of
// Op.String for every defined operation.
var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, int(isa.NumOps))
	for o := isa.Op(0); o < isa.NumOps; o++ {
		m[o.String()] = o
	}
	return m
}()

// csrByName maps CSR names back to indices, the inverse of CsrName.
var csrByName = func() map[string]int {
	m := make(map[string]int, isa.NumCSRs)
	for c := 0; c < isa.NumCSRs; c++ {
		m[isa.CsrName(c)] = c
	}
	return m
}()

// ParseInstr parses one instruction in the disassembler's syntax
// (isa.Instr.String) back into structured form: the inverse of
// isa.Disasm for every legal encoding. The ISA bounds register names.
func ParseInstr(text string, is isa.ISA) (isa.Instr, error) {
	fields := strings.Fields(strings.ReplaceAll(text, ",", " "))
	if len(fields) == 0 {
		return isa.Instr{}, fmt.Errorf("asm: empty instruction")
	}
	op, ok := opByName[fields[0]]
	if !ok {
		return isa.Instr{}, fmt.Errorf("asm: unknown mnemonic %q", fields[0])
	}
	in := isa.Instr{Op: op}
	args := fields[1:]
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("asm: %s needs %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	var err error
	switch {
	case op.Fmt() == isa.FmtR:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0], is); err == nil {
			if in.Rs1, err = parseReg(args[1], is); err == nil {
				in.Rs2, err = parseReg(args[2], is)
			}
		}
	case op.IsLoad() || op == isa.JALR:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0], is); err == nil {
			in.Imm, in.Rs1, err = parseMem(args[1], is)
		}
	case op.Fmt() == isa.FmtI:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0], is); err == nil {
			if in.Rs1, err = parseReg(args[1], is); err == nil {
				in.Imm, err = parseImm(args[2])
			}
		}
	case op.Fmt() == isa.FmtS:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rs2, err = parseReg(args[0], is); err == nil {
			in.Imm, in.Rs1, err = parseMem(args[1], is)
		}
	case op.Fmt() == isa.FmtB:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[0], is); err == nil {
			if in.Rs2, err = parseReg(args[1], is); err == nil {
				in.Imm, err = parseImm(args[2])
			}
		}
	case op.Fmt() == isa.FmtU:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0], is); err == nil {
			// The disassembler renders the shifted immediate as the
			// unsigned 64-bit hex of the sign-extended value.
			var u uint64
			u, err = strconv.ParseUint(args[1], 0, 64)
			in.Imm = int64(u)
		}
	case op.Fmt() == isa.FmtJ:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0], is); err == nil {
			in.Imm, err = parseImm(args[1])
		}
	case op == isa.CSRW:
		if err = need(2); err != nil {
			return in, err
		}
		var csr int
		if csr, err = parseCsr(args[0]); err == nil {
			in.Imm = int64(csr)
			in.Rs1, err = parseReg(args[1], is)
		}
	case op == isa.CSRR:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0], is); err == nil {
			var csr int
			csr, err = parseCsr(args[1])
			in.Imm = int64(csr)
		}
	default: // ecall, eret
		err = need(0)
	}
	if err != nil {
		return in, fmt.Errorf("asm: %q: %w", text, err)
	}
	return in, nil
}

// parseReg resolves a register name ("zero", "ra", "sp", "tp", "rN").
func parseReg(s string, is isa.ISA) (int, error) {
	r := -1
	switch s {
	case "zero":
		r = isa.RegZero
	case "ra":
		r = isa.RegRA
	case "sp":
		r = isa.RegSP
	case "tp":
		r = isa.RegTMP
	default:
		if len(s) > 1 && s[0] == 'r' {
			if n, err := strconv.Atoi(s[1:]); err == nil {
				r = n
			}
		}
	}
	if r < 0 || r >= is.NumRegs() {
		return 0, fmt.Errorf("bad register %q for %v", s, is)
	}
	return r, nil
}

// parseMem splits the "imm(reg)" addressing form.
func parseMem(s string, is isa.ISA) (int64, int, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	imm, err := parseImm(s[:open])
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(s[open+1:len(s)-1], is)
	return imm, reg, err
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

func parseCsr(s string) (int, error) {
	c, ok := csrByName[s]
	if !ok {
		return 0, fmt.Errorf("unknown CSR %q", s)
	}
	return c, nil
}
