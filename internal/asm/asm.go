// Package asm provides a programmatic assembler for VSA code: a builder
// DSL with labels, symbol relocation and a data segment. The in-sim
// kernel and the compiler back end both emit code through it.
package asm

import (
	"fmt"
	"sort"

	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

// relocKind describes how an instruction's immediate is patched once
// symbol addresses are known.
type relocKind int

const (
	relocNone   relocKind = iota
	relocBranch           // PC-relative conditional branch
	relocJAL              // PC-relative jump
	relocHi               // LUI with the high 20 bits of a symbol
	relocLo               // ADDI with the low 12 bits of a symbol
)

type entry struct {
	in    isa.Instr
	reloc relocKind
	sym   string
}

// Builder assembles one program image (text followed by data).
type Builder struct {
	is       isa.ISA
	textBase uint64
	text     []entry
	labels   map[string]int // text label -> instruction index
	data     []byte
	dataLbl  map[string]uint64 // data label -> offset in data
	errs     []string
}

// NewBuilder creates a builder for ISA variant is with the text segment
// based at textBase.
func NewBuilder(is isa.ISA, textBase uint64) *Builder {
	return &Builder{
		is:       is,
		textBase: textBase,
		labels:   make(map[string]int),
		dataLbl:  make(map[string]uint64),
	}
}

// ISA returns the target ISA variant.
func (b *Builder) ISA() isa.ISA { return b.is }

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Sprintf(format, args...))
}

// PC returns the address of the next emitted instruction.
func (b *Builder) PC() uint64 { return b.textBase + uint64(len(b.text))*4 }

// Label defines a text label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
	}
	b.labels[name] = len(b.text)
}

func (b *Builder) emit(in isa.Instr) { b.text = append(b.text, entry{in: in}) }

func (b *Builder) emitReloc(in isa.Instr, k relocKind, sym string) {
	b.text = append(b.text, entry{in: in, reloc: k, sym: sym})
}

// --- R-type ---

func (b *Builder) rtype(op isa.Op, rd, rs1, rs2 int) {
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Inst emits an arbitrary R-type instruction (testing convenience).
func (b *Builder) Inst(op isa.Op, rd, rs1, rs2 int) { b.rtype(op, rd, rs1, rs2) }

func (b *Builder) Add(rd, rs1, rs2 int)  { b.rtype(isa.ADD, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 int)  { b.rtype(isa.SUB, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 int)  { b.rtype(isa.SLL, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 int)  { b.rtype(isa.SLT, rd, rs1, rs2) }
func (b *Builder) Sltu(rd, rs1, rs2 int) { b.rtype(isa.SLTU, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 int)  { b.rtype(isa.XOR, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 int)  { b.rtype(isa.SRL, rd, rs1, rs2) }
func (b *Builder) Sra(rd, rs1, rs2 int)  { b.rtype(isa.SRA, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 int)   { b.rtype(isa.OR, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 int)  { b.rtype(isa.AND, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 int)  { b.rtype(isa.MUL, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 int)  { b.rtype(isa.DIV, rd, rs1, rs2) }
func (b *Builder) Divu(rd, rs1, rs2 int) { b.rtype(isa.DIVU, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 int)  { b.rtype(isa.REM, rd, rs1, rs2) }
func (b *Builder) Remu(rd, rs1, rs2 int) { b.rtype(isa.REMU, rd, rs1, rs2) }

// --- I-type ALU ---

func (b *Builder) itype(op isa.Op, rd, rs1 int, imm int64) {
	if op != isa.SLLI && op != isa.SRLI && op != isa.SRAI && (imm < -2048 || imm > 2047) {
		b.errf("%v: immediate %d out of range", op, imm)
		imm = 0
	}
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) Addi(rd, rs1 int, imm int64)  { b.itype(isa.ADDI, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 int, imm int64)  { b.itype(isa.SLTI, rd, rs1, imm) }
func (b *Builder) Sltiu(rd, rs1 int, imm int64) { b.itype(isa.SLTIU, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 int, imm int64)  { b.itype(isa.XORI, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 int, imm int64)   { b.itype(isa.ORI, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 int, imm int64)  { b.itype(isa.ANDI, rd, rs1, imm) }

func (b *Builder) shift(op isa.Op, rd, rs1 int, sh int64) {
	if sh < 0 || sh >= int64(b.is.XLen()) {
		b.errf("%v: shift amount %d out of range", op, sh)
		sh = 0
	}
	b.emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: sh})
}

func (b *Builder) Slli(rd, rs1 int, sh int64) { b.shift(isa.SLLI, rd, rs1, sh) }
func (b *Builder) Srli(rd, rs1 int, sh int64) { b.shift(isa.SRLI, rd, rs1, sh) }
func (b *Builder) Srai(rd, rs1 int, sh int64) { b.shift(isa.SRAI, rd, rs1, sh) }

// --- memory ---

func (b *Builder) memop(op isa.Op, r, rs1 int, off int64) {
	if off < -2048 || off > 2047 {
		b.errf("%v: offset %d out of range", op, off)
		off = 0
	}
	if b.is == isa.VSA32 && (op == isa.LD || op == isa.SD || op == isa.LWU) {
		b.errf("%v not available on VSA32", op)
		return
	}
	in := isa.Instr{Op: op, Rs1: rs1, Imm: off}
	if op.IsStore() {
		in.Rs2 = r
	} else {
		in.Rd = r
	}
	b.emit(in)
}

func (b *Builder) Lb(rd int, off int64, rs1 int)  { b.memop(isa.LB, rd, rs1, off) }
func (b *Builder) Lh(rd int, off int64, rs1 int)  { b.memop(isa.LH, rd, rs1, off) }
func (b *Builder) Lw(rd int, off int64, rs1 int)  { b.memop(isa.LW, rd, rs1, off) }
func (b *Builder) Ld(rd int, off int64, rs1 int)  { b.memop(isa.LD, rd, rs1, off) }
func (b *Builder) Lbu(rd int, off int64, rs1 int) { b.memop(isa.LBU, rd, rs1, off) }
func (b *Builder) Lhu(rd int, off int64, rs1 int) { b.memop(isa.LHU, rd, rs1, off) }
func (b *Builder) Lwu(rd int, off int64, rs1 int) { b.memop(isa.LWU, rd, rs1, off) }
func (b *Builder) Sb(rs2 int, off int64, rs1 int) { b.memop(isa.SB, rs2, rs1, off) }
func (b *Builder) Sh(rs2 int, off int64, rs1 int) { b.memop(isa.SH, rs2, rs1, off) }
func (b *Builder) Sw(rs2 int, off int64, rs1 int) { b.memop(isa.SW, rs2, rs1, off) }
func (b *Builder) Sd(rs2 int, off int64, rs1 int) { b.memop(isa.SD, rs2, rs1, off) }

// Lword/Sword are word-size (XLen) accesses: LW/SW on VSA32, LD/SD on
// VSA64. Portable kernel and runtime code uses these.
func (b *Builder) Lword(rd int, off int64, rs1 int) {
	if b.is == isa.VSA32 {
		b.Lw(rd, off, rs1)
	} else {
		b.Ld(rd, off, rs1)
	}
}

func (b *Builder) Sword(rs2 int, off int64, rs1 int) {
	if b.is == isa.VSA32 {
		b.Sw(rs2, off, rs1)
	} else {
		b.Sd(rs2, off, rs1)
	}
}

// --- control flow ---

func (b *Builder) branch(op isa.Op, rs1, rs2 int, label string) {
	b.emitReloc(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2}, relocBranch, label)
}

func (b *Builder) Beq(rs1, rs2 int, l string)  { b.branch(isa.BEQ, rs1, rs2, l) }
func (b *Builder) Bne(rs1, rs2 int, l string)  { b.branch(isa.BNE, rs1, rs2, l) }
func (b *Builder) Blt(rs1, rs2 int, l string)  { b.branch(isa.BLT, rs1, rs2, l) }
func (b *Builder) Bge(rs1, rs2 int, l string)  { b.branch(isa.BGE, rs1, rs2, l) }
func (b *Builder) Bltu(rs1, rs2 int, l string) { b.branch(isa.BLTU, rs1, rs2, l) }
func (b *Builder) Bgeu(rs1, rs2 int, l string) { b.branch(isa.BGEU, rs1, rs2, l) }

// Jal emits a jump-and-link to a label.
func (b *Builder) Jal(rd int, label string) {
	b.emitReloc(isa.Instr{Op: isa.JAL, Rd: rd}, relocJAL, label)
}

// Jmp is an unconditional jump to a label.
func (b *Builder) Jmp(label string) { b.Jal(isa.RegZero, label) }

// Call jumps to label storing the return address in ra.
func (b *Builder) Call(label string) { b.Jal(isa.RegRA, label) }

// Jalr emits an indirect jump.
func (b *Builder) Jalr(rd, rs1 int, off int64) {
	b.itype(isa.JALR, rd, rs1, off)
}

// Ret returns via ra.
func (b *Builder) Ret() { b.Jalr(isa.RegZero, isa.RegRA, 0) }

// --- misc ---

func (b *Builder) Lui(rd int, imm int64) {
	b.emit(isa.Instr{Op: isa.LUI, Rd: rd, Imm: imm})
}

func (b *Builder) Nop()   { b.Addi(isa.RegZero, isa.RegZero, 0) }
func (b *Builder) Ecall() { b.emit(isa.Instr{Op: isa.ECALL}) }
func (b *Builder) Eret()  { b.emit(isa.Instr{Op: isa.ERET}) }

func (b *Builder) Csrw(csr int, rs1 int) {
	b.emit(isa.Instr{Op: isa.CSRW, Rs1: rs1, Imm: int64(csr)})
}

func (b *Builder) Csrr(rd int, csr int) {
	b.emit(isa.Instr{Op: isa.CSRR, Rd: rd, Imm: int64(csr)})
}

// Mv copies rs into rd.
func (b *Builder) Mv(rd, rs int) { b.Addi(rd, rs, 0) }

// La materializes the address of a symbol (text or data label) into rd
// using a LUI+ADDI pair.
func (b *Builder) La(rd int, sym string) {
	b.emitReloc(isa.Instr{Op: isa.LUI, Rd: rd}, relocHi, sym)
	b.emitReloc(isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: rd}, relocLo, sym)
}

// Li materializes an arbitrary constant into rd. Constants representable
// as a sign-extended 32-bit value take at most two instructions; full
// 64-bit constants use rd plus the TMP scratch register.
func (b *Builder) Li(rd int, v int64) {
	if v >= -2048 && v <= 2047 {
		b.Addi(rd, isa.RegZero, v)
		return
	}
	if int64(int32(v)) == v {
		b.li32(rd, int32(v))
		return
	}
	if b.is == isa.VSA32 {
		// Only the low 32 bits are architecturally meaningful.
		b.li32(rd, int32(uint32(v)))
		return
	}
	// 64-bit: hi32 << 32 | zero-extended lo32, via the scratch register.
	b.li32(rd, int32(v>>32))
	b.Slli(rd, rd, 32)
	b.li32(isa.RegTMP, int32(uint32(v)))
	b.Slli(isa.RegTMP, isa.RegTMP, 32)
	b.Srli(isa.RegTMP, isa.RegTMP, 32)
	b.Or(rd, rd, isa.RegTMP)
}

func (b *Builder) li32(rd int, v int32) {
	hi := (int64(v) + 0x800) >> 12 << 12
	lo := int64(v) - hi
	if int64(int32(hi)) != hi {
		// v in (0x7FFFF7FF, 0x7FFFFFFF]: hi would be +2^31, which LUI
		// cannot encode. Wrap it modulo 2^32 — correct on VSA32; on
		// VSA64 the upper bits must then be re-zeroed.
		b.emit(isa.Instr{Op: isa.LUI, Rd: rd, Imm: int64(int32(uint32(hi)))})
		if lo != 0 {
			b.Addi(rd, rd, lo)
		}
		if b.is == isa.VSA64 {
			b.Slli(rd, rd, 32)
			b.Srli(rd, rd, 32)
		}
		return
	}
	b.emit(isa.Instr{Op: isa.LUI, Rd: rd, Imm: hi})
	if lo != 0 {
		b.Addi(rd, rd, lo)
	}
}

// --- data segment ---

// DataLabel defines a label at the current end of the data segment.
func (b *Builder) DataLabel(name string) {
	if _, dup := b.dataLbl[name]; dup {
		b.errf("duplicate data label %q", name)
	}
	b.dataLbl[name] = uint64(len(b.data))
}

// Bytes appends raw bytes to the data segment.
func (b *Builder) Bytes(p []byte) { b.data = append(b.data, p...) }

// Zero appends n zero bytes.
func (b *Builder) Zero(n int) { b.data = append(b.data, make([]byte, n)...) }

// Align pads the data segment to an n-byte boundary.
func (b *Builder) Align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Words appends word-size (XLen) little-endian values.
func (b *Builder) Words(vs []uint64) {
	wb := b.is.WordBytes()
	for _, v := range vs {
		for i := 0; i < wb; i++ {
			b.data = append(b.data, byte(v>>(8*i)))
		}
	}
}

// Words32 appends 32-bit little-endian values regardless of ISA.
func (b *Builder) Words32(vs []uint32) {
	for _, v := range vs {
		b.data = append(b.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// Program is a fully assembled, loadable image.
type Program struct {
	ISA      isa.ISA
	Entry    uint64
	TextAddr uint64
	Text     []byte // encoded instructions
	DataAddr uint64
	Data     []byte
	Symbols  map[string]uint64
}

// Load copies the image into RAM.
func (p *Program) Load(m *mem.Memory) error {
	if !m.WriteBytes(p.TextAddr, p.Text) {
		return fmt.Errorf("asm: text segment [%#x,+%d) does not fit in RAM", p.TextAddr, len(p.Text))
	}
	if !m.WriteBytes(p.DataAddr, p.Data) {
		return fmt.Errorf("asm: data segment [%#x,+%d) does not fit in RAM", p.DataAddr, len(p.Data))
	}
	return nil
}

// End returns the first address past the image (heap start).
func (p *Program) End() uint64 { return p.DataAddr + uint64(len(p.Data)) }

// TextEnd returns the first address past the text segment.
func (p *Program) TextEnd() uint64 { return p.TextAddr + uint64(len(p.Text)) }

// NumInstrs returns the static instruction count.
func (p *Program) NumInstrs() int { return len(p.Text) / 4 }

// Symbol returns the address of a symbol, with ok reporting existence.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// Finish resolves all labels and returns the assembled program. The
// entry point is the label "_start" if present, else the text base.
func (b *Builder) Finish() (*Program, error) {
	dataAddr := (b.PC() + 15) &^ 15
	syms := make(map[string]uint64, len(b.labels)+len(b.dataLbl))
	for name, idx := range b.labels {
		syms[name] = b.textBase + uint64(idx)*4
	}
	for name, off := range b.dataLbl {
		if _, dup := syms[name]; dup {
			b.errf("label %q defined in both text and data", name)
		}
		syms[name] = dataAddr + off
	}

	text := make([]byte, 0, len(b.text)*4)
	for i, e := range b.text {
		pc := b.textBase + uint64(i)*4
		in := e.in
		if e.reloc != relocNone {
			target, ok := syms[e.sym]
			if !ok {
				b.errf("undefined symbol %q", e.sym)
				target = pc
			}
			switch e.reloc {
			case relocBranch:
				off := int64(target) - int64(pc)
				if off < -2048*4 || off > 2047*4 {
					b.errf("branch to %q out of range (%d bytes)", e.sym, off)
					off = 0
				}
				in.Imm = off
			case relocJAL:
				off := int64(target) - int64(pc)
				if off < -(1<<21) || off >= 1<<21 {
					b.errf("jump to %q out of range (%d bytes)", e.sym, off)
					off = 0
				}
				in.Imm = off
			case relocHi:
				hi := (int64(target) + 0x800) >> 12 << 12
				in.Imm = int64(int32(uint32(hi)))
			case relocLo:
				hi := (int64(target) + 0x800) >> 12 << 12
				in.Imm = int64(target) - hi
			}
		}
		w := isa.Encode(in)
		text = append(text, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}

	if len(b.errs) > 0 {
		sort.Strings(b.errs)
		return nil, fmt.Errorf("asm: %d errors; first: %s", len(b.errs), b.errs[0])
	}

	entry := b.textBase
	if a, ok := syms["_start"]; ok {
		entry = a
	}
	return &Program{
		ISA:      b.is,
		Entry:    entry,
		TextAddr: b.textBase,
		Text:     text,
		DataAddr: dataAddr,
		Data:     append([]byte(nil), b.data...),
		Symbols:  syms,
	}, nil
}
