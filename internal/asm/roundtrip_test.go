package asm

import (
	"testing"

	"vulnstack/internal/isa"
)

// candidates enumerates representative instructions of every encodable
// form of op on is: register operands sweep the conventional and
// boundary registers, immediates sweep sign and range extremes of each
// format.
func candidates(op isa.Op, is isa.ISA) []isa.Instr {
	regs := []int{0, 1, 2, 3, 5, is.NumRegs() - 1}
	var out []isa.Instr
	switch {
	case op.Fmt() == isa.FmtR:
		for _, rd := range regs {
			for _, rs1 := range regs {
				for _, rs2 := range regs {
					out = append(out, isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
				}
			}
		}
	case op == isa.SLLI || op == isa.SRLI || op == isa.SRAI:
		for _, rd := range regs {
			for _, sh := range []int64{0, 1, int64(is.XLen() - 1)} {
				out = append(out, isa.Instr{Op: op, Rd: rd, Rs1: 5, Imm: sh})
			}
		}
	case op.IsLoad() || op == isa.JALR || op.Fmt() == isa.FmtS:
		for _, r := range regs {
			for _, imm := range []int64{-2048, -1, 0, 16, 2047} {
				in := isa.Instr{Op: op, Rs1: 2, Imm: imm}
				if op.Fmt() == isa.FmtS {
					in.Rs2 = r
				} else {
					in.Rd = r
				}
				out = append(out, in)
			}
		}
	case op.Fmt() == isa.FmtI:
		for _, rd := range regs {
			for _, imm := range []int64{-2048, -1, 0, 16, 2047} {
				out = append(out, isa.Instr{Op: op, Rd: rd, Rs1: 5, Imm: imm})
			}
		}
	case op.Fmt() == isa.FmtB:
		for _, rs1 := range regs {
			for _, imm := range []int64{-8192, -4, 0, 4, 8188} {
				out = append(out, isa.Instr{Op: op, Rs1: rs1, Rs2: 5, Imm: imm})
			}
		}
	case op.Fmt() == isa.FmtJ:
		for _, rd := range regs {
			for _, imm := range []int64{-1048576, -4, 0, 4, 1048572} {
				out = append(out, isa.Instr{Op: op, Rd: rd, Imm: imm})
			}
		}
	case op.Fmt() == isa.FmtU:
		for _, rd := range regs {
			for _, imm := range []int64{0, 4096, 0x10000, -4096, -1 << 31} {
				out = append(out, isa.Instr{Op: op, Rd: rd, Imm: imm})
			}
		}
	case op == isa.CSRW:
		for _, rs1 := range regs {
			for c := 0; c < isa.NumCSRs; c++ {
				out = append(out, isa.Instr{Op: op, Rs1: rs1, Imm: int64(c)})
			}
		}
	case op == isa.CSRR:
		for _, rd := range regs {
			for c := 0; c < isa.NumCSRs; c++ {
				out = append(out, isa.Instr{Op: op, Rd: rd, Imm: int64(c)})
			}
		}
	default: // ecall, eret
		out = append(out, isa.Instr{Op: op})
	}
	return out
}

// TestDisasmRoundTrip: for every encodable instruction form of both
// ISAs, the binary round-trips through decode (Encode∘Decode identity)
// and the disassembly re-assembles through ParseInstr to the identical
// word.
func TestDisasmRoundTrip(t *testing.T) {
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		for op := isa.Op(0); op < isa.NumOps; op++ {
			legal := 0
			for _, in := range candidates(op, is) {
				w := isa.Encode(in)
				dec, ok := isa.Decode(w, is)
				if !ok {
					continue // form not encodable on this ISA variant
				}
				legal++
				if w2 := isa.Encode(dec); w2 != w {
					t.Fatalf("%v/%v: Encode(Decode(%#08x)) = %#08x", is, op, w, w2)
				}
				text := isa.Disasm(w, is)
				parsed, err := ParseInstr(text, is)
				if err != nil {
					t.Fatalf("%v/%v: ParseInstr(%q): %v", is, op, text, err)
				}
				if w2 := isa.Encode(parsed); w2 != w {
					t.Fatalf("%v/%v: reassembling %q: got %#08x want %#08x (parsed %+v)",
						is, op, text, w2, w, parsed)
				}
			}
			if legal == 0 && !(is == isa.VSA32 && (op == isa.LD || op == isa.LWU || op == isa.SD)) {
				t.Errorf("%v/%v: no candidate form decoded as legal", is, op)
			}
		}
	}
}
