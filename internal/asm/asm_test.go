package asm

import (
	"testing"

	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

func TestLabelsAndBranches(t *testing.T) {
	b := NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("_start")
	b.Addi(4, 0, 10)
	b.Label("loop")
	b.Addi(4, 4, -1)
	b.Bne(4, 0, "loop")
	b.Ret()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != mem.UserBase {
		t.Fatalf("entry %#x", p.Entry)
	}
	if p.NumInstrs() != 4 {
		t.Fatalf("instrs: %d", p.NumInstrs())
	}
	// Instruction 2 is the bne back to instruction 1: offset -4.
	w := uint32(p.Text[8]) | uint32(p.Text[9])<<8 | uint32(p.Text[10])<<16 | uint32(p.Text[11])<<24
	in, ok := isa.Decode(w, isa.VSA64)
	if !ok || in.Op != isa.BNE || in.Imm != -4 {
		t.Fatalf("branch reloc: %v imm=%d", in.Op, in.Imm)
	}
}

func TestUndefinedAndDuplicateSymbols(t *testing.T) {
	b := NewBuilder(isa.VSA64, mem.UserBase)
	b.Jmp("nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("undefined symbol must error")
	}
	b = NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("x")
	b.Label("x")
	b.Nop()
	if _, err := b.Finish(); err == nil {
		t.Fatal("duplicate label must error")
	}
	b = NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("y")
	b.Nop()
	b.DataLabel("y")
	if _, err := b.Finish(); err == nil {
		t.Fatal("text/data label clash must error")
	}
}

func TestImmediateRangeErrors(t *testing.T) {
	b := NewBuilder(isa.VSA64, mem.UserBase)
	b.Addi(4, 4, 4096)
	if _, err := b.Finish(); err == nil {
		t.Fatal("oversized immediate must error")
	}
	b = NewBuilder(isa.VSA32, mem.UserBase)
	b.Ld(4, 0, 5)
	if _, err := b.Finish(); err == nil {
		t.Fatal("LD on VSA32 must error")
	}
	b = NewBuilder(isa.VSA32, mem.UserBase)
	b.Slli(4, 4, 40)
	if _, err := b.Finish(); err == nil {
		t.Fatal("shift 40 on VSA32 must error")
	}
}

func TestDataSegmentLayout(t *testing.T) {
	b := NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("_start")
	b.Nop()
	b.DataLabel("tbl")
	b.Words32([]uint32{1, 2, 3})
	b.Align(8)
	b.DataLabel("buf")
	b.Zero(16)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := p.Symbol("tbl")
	if !ok {
		t.Fatal("tbl symbol missing")
	}
	if tbl%16 != 0 || tbl < p.TextEnd() {
		t.Fatalf("data base %#x (text end %#x)", tbl, p.TextEnd())
	}
	buf, _ := p.Symbol("buf")
	if buf != tbl+16 { // 12 bytes of words + 4 alignment
		t.Fatalf("buf at %#x, tbl at %#x", buf, tbl)
	}
	if p.End() != buf+16 {
		t.Fatalf("end %#x", p.End())
	}
	m := mem.New(0)
	if err := p.Load(m); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Read(tbl+4, 4)
	if v != 2 {
		t.Fatalf("loaded data: %d", v)
	}
}

func TestWordsRespectISAWidth(t *testing.T) {
	b32 := NewBuilder(isa.VSA32, mem.UserBase)
	b32.Nop()
	b32.DataLabel("w")
	b32.Words([]uint64{0x1122334455667788})
	p32, err := b32.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(p32.Data) != 4 {
		t.Fatalf("VSA32 word size: %d", len(p32.Data))
	}
	b64 := NewBuilder(isa.VSA64, mem.UserBase)
	b64.Nop()
	b64.DataLabel("w")
	b64.Words([]uint64{0x1122334455667788})
	p64, _ := b64.Finish()
	if len(p64.Data) != 8 {
		t.Fatalf("VSA64 word size: %d", len(p64.Data))
	}
}

func TestLaResolvesDataSymbols(t *testing.T) {
	b := NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("_start")
	b.La(4, "blob")
	b.Ret()
	b.DataLabel("blob")
	b.Zero(8)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := p.Symbol("blob")
	// Decode the LUI+ADDI pair and recompute the address.
	w0 := uint32(p.Text[0]) | uint32(p.Text[1])<<8 | uint32(p.Text[2])<<16 | uint32(p.Text[3])<<24
	w1 := uint32(p.Text[4]) | uint32(p.Text[5])<<8 | uint32(p.Text[6])<<16 | uint32(p.Text[7])<<24
	lui, _ := isa.Decode(w0, isa.VSA64)
	addi, _ := isa.Decode(w1, isa.VSA64)
	if got := uint64(lui.Imm + addi.Imm); got != want {
		t.Fatalf("La materialized %#x want %#x", got, want)
	}
}

func TestLwordSwordPortability(t *testing.T) {
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		b := NewBuilder(is, mem.UserBase)
		b.Lword(4, 0, 5)
		b.Sword(4, 8, 5)
		p, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		w := uint32(p.Text[0]) | uint32(p.Text[1])<<8 | uint32(p.Text[2])<<16 | uint32(p.Text[3])<<24
		in, _ := isa.Decode(w, is)
		if is == isa.VSA32 && in.Op != isa.LW {
			t.Fatalf("VSA32 Lword: %v", in.Op)
		}
		if is == isa.VSA64 && in.Op != isa.LD {
			t.Fatalf("VSA64 Lword: %v", in.Op)
		}
	}
}
