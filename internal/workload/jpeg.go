package workload

import (
	"fmt"
	"math"
	"strings"
)

func init() {
	register(&Spec{
		Name: "cjpeg",
		Desc: "JPEG-style block compression: DCT, quantization, zigzag, RLE (MiBench consumer/cjpeg)",
		Gen:  genCjpeg,
	})
	register(&Spec{
		Name: "djpeg",
		Desc: "JPEG-style decompression: RLE, dequantization, IDCT (MiBench consumer/djpeg)",
		Gen:  genDjpeg,
	})
}

// jpegQuant is the standard JPEG luminance quantization table (quality
// ~50), in row-major order.
var jpegQuant = [64]int64{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// jpegZigzag maps zigzag positions to row-major block indices.
var jpegZigzag = [64]int64{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// jpegCosTab returns the Q12 DCT basis c[u*8+x] =
// round(alpha(u)/2 * cos((2x+1)u*pi/16) * 4096).
func jpegCosTab() []int64 {
	tab := make([]int64, 64)
	for u := 0; u < 8; u++ {
		alpha := 1.0
		if u == 0 {
			alpha = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			v := alpha / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
			tab[u*8+x] = int64(math.Round(v * 4096))
		}
	}
	return tab
}

// jpegCommon is the MiniC code shared by the encoder and decoder.
const jpegCommon = `
var blk [64]int
var tmp [64]int

// dct_rows applies the 1D transform along rows of blk into tmp
// (forward when fwd != 0, inverse otherwise), then the caller swaps.
func dct_1d(fwd int) {
	var u int
	var x int
	var r int
	for r = 0; r < 8; r = r + 1 {
		for u = 0; u < 8; u = u + 1 {
			var acc int = 0
			for x = 0; x < 8; x = x + 1 {
				if fwd {
					acc = acc + ctab[u*8+x] * blk[r*8+x]
				} else {
					acc = acc + ctab[x*8+u] * blk[r*8+x]
				}
			}
			tmp[r*8+u] = acc >> 12
		}
	}
	// Transpose tmp back into blk so two passes do rows then columns.
	for r = 0; r < 8; r = r + 1 {
		for u = 0; u < 8; u = u + 1 {
			blk[u*8+r] = tmp[r*8+u]
		}
	}
}
`

func genCjpeg(seed int64, scale int) string {
	w, h := 16, 16
	if scale > 1 {
		w, h = 16*scale, 16
	}
	img := GenImage(seed+0x77, w, h)
	var sb strings.Builder
	fmt.Fprintf(&sb, imgDecl, w, h, byteList(img))
	fmt.Fprintf(&sb, "\nvar qtab [64]int = %s\nvar zig [64]int = %s\nvar ctab [64]int = %s\n",
		intList(jpegQuant[:]), intList(jpegZigzag[:]), intList(jpegCosTab()))
	sb.WriteString(jpegCommon)
	sb.WriteString(`
// cjpeg: per 8x8 block: level shift, 2D DCT, quantize, zigzag, RLE.
func encode_block(bx int, by int) {
	var y int
	var x int
	for y = 0; y < 8; y = y + 1 {
		for x = 0; x < 8; x = x + 1 {
			blk[y*8+x] = img[(by*8+y)*W + bx*8 + x] - 128
		}
	}
	dct_1d(1)
	dct_1d(1)
	// Quantize with rounding toward zero.
	var i int
	for i = 0; i < 64; i = i + 1 {
		blk[i] = blk[i] / qtab[i]
	}
	// Zigzag + RLE: (runlength, value) pairs, EOB = run 255.
	var run int = 0
	for i = 0; i < 64; i = i + 1 {
		var v int = blk[zig[i]]
		if v == 0 {
			run = run + 1
		} else {
			out(run)
			out16(v & 0xFFFF)
			run = 0
		}
	}
	out(255)
}

func main() int {
	var by int
	var bx int
	for by = 0; by < H/8; by = by + 1 {
		for bx = 0; bx < W/8; bx = bx + 1 {
			encode_block(bx, by)
		}
	}
	return 0
}
`)
	return sb.String()
}

// CjpegOutput runs the cjpeg benchmark on the IR interpreter and
// returns its compressed stream (used to build djpeg's input and by
// tests).
func CjpegOutput(seed int64, scale int) ([]byte, error) {
	return runIR(genCjpeg(seed, scale), 64)
}

func genDjpeg(seed int64, scale int) string {
	w, h := 16, 16
	if scale > 1 {
		w, h = 16*scale, 16
	}
	stream, err := CjpegOutput(seed, scale)
	if err != nil {
		// A generator bug: surface it as an uncompilable program so
		// callers fail loudly rather than silently benchmarking noise.
		return fmt.Sprintf("!! djpeg generator failed: %v", err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nconst W = %d\nconst H = %d\nconst SLEN = %d\n\nvar stream [SLEN]byte = %s\n",
		w, h, len(stream), byteList(stream))
	fmt.Fprintf(&sb, "var qtab [64]int = %s\nvar zig [64]int = %s\nvar ctab [64]int = %s\n",
		intList(jpegQuant[:]), intList(jpegZigzag[:]), intList(jpegCosTab()))
	sb.WriteString(jpegCommon)
	sb.WriteString(`
var dst [W*H]byte
var pos int

func decode_block(bx int, by int) {
	var i int
	for i = 0; i < 64; i = i + 1 {
		blk[i] = 0
	}
	// RLE + dezigzag + dequantize.
	var zi int = 0
	while 1 {
		var run int = stream[pos]
		pos = pos + 1
		if run == 255 {
			break
		}
		zi = zi + run
		var v int = stream[pos] | (stream[pos+1] << 8)
		pos = pos + 2
		// Sign-extend the 16-bit value.
		if v & 0x8000 {
			v = v - 0x10000
		}
		blk[zig[zi]] = v * qtab[zig[zi]]
		zi = zi + 1
	}
	dct_1d(0)
	dct_1d(0)
	var y int
	var x int
	for y = 0; y < 8; y = y + 1 {
		for x = 0; x < 8; x = x + 1 {
			var p int = blk[y*8+x] + 128
			if p < 0 { p = 0 }
			if p > 255 { p = 255 }
			dst[(by*8+y)*W + bx*8 + x] = p
		}
	}
}

func main() int {
	pos = 0
	var by int
	var bx int
	for by = 0; by < H/8; by = by + 1 {
		for bx = 0; bx < W/8; bx = bx + 1 {
			decode_block(bx, by)
		}
	}
	var i int
	for i = 0; i < W*H; i = i + 1 {
		out(dst[i])
	}
	return 0
}
`)
	return sb.String()
}
