package workload

import (
	"fmt"
	"strings"
)

func init() {
	register(&Spec{
		Name: "smooth",
		Desc: "SUSAN-style 3x3 weighted image smoothing, full-image output (MiBench auto/susan -s)",
		Gen:  genSmooth,
	})
	register(&Spec{
		Name: "corner",
		Desc: "SUSAN-style USAN corner detection (MiBench auto/susan -c)",
		Gen:  genCorner,
	})
}

// GenImage produces a deterministic synthetic grayscale image with
// gradients, rectangles and noise — enough structure for corners and
// smoothing to be meaningful.
func GenImage(seed int64, w, h int) []byte {
	r := newRng(seed)
	img := make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 60 + (x*3+y*2)%80
			img[y*w+x] = byte(v)
		}
	}
	// Bright and dark rectangles create strong corners.
	for i := 0; i < 4; i++ {
		x0, y0 := r.intn(w-10), r.intn(h-10)
		rw, rh := 4+r.intn(6), 4+r.intn(6)
		v := byte(30 + r.intn(200))
		for y := y0; y < y0+rh && y < h; y++ {
			for x := x0; x < x0+rw && x < w; x++ {
				img[y*w+x] = v
			}
		}
	}
	for i := 0; i < w*h/8; i++ {
		p := r.intn(w * h)
		img[p] = byte(int(img[p]) + r.intn(21) - 10)
	}
	return img
}

const imgDecl = `
const W = %d
const H = %d

var img [W*H]byte = %s
`

func genSmooth(seed int64, scale int) string {
	w, h := 24, 24
	if scale > 1 {
		w, h = 24*scale, 24
	}
	img := GenImage(seed, w, h)
	var sb strings.Builder
	fmt.Fprintf(&sb, imgDecl, w, h, byteList(img))
	sb.WriteString(`
var dst [W*H]byte

// smooth: 3x3 weighted smoothing (1 2 1 / 2 4 2 / 1 2 1) / 16.
func main() int {
	var y int
	var x int
	for y = 0; y < H; y = y + 1 {
		for x = 0; x < W; x = x + 1 {
			if y == 0 || y == H-1 || x == 0 || x == W-1 {
				dst[y*W+x] = img[y*W+x]
			} else {
				var p int = y*W + x
				var s int = img[p-W-1] + 2*img[p-W] + img[p-W+1]
				s = s + 2*img[p-1] + 4*img[p] + 2*img[p+1]
				s = s + img[p+W-1] + 2*img[p+W] + img[p+W+1]
				dst[p] = (s + 8) / 16
			}
		}
	}
	// Emit the full smoothed frame (flushed as one large DMA write).
	var i int
	for i = 0; i < W*H; i = i + 1 {
		out(dst[i])
	}
	return 0
}
`)
	return sb.String()
}

func genCorner(seed int64, scale int) string {
	w, h := 16, 16
	if scale > 1 {
		w, h = 16*scale, 16
	}
	img := GenImage(seed^0xC04E4, w, h)
	var sb strings.Builder
	fmt.Fprintf(&sb, imgDecl, w, h, byteList(img))
	sb.WriteString(`
const T = 20      // brightness similarity threshold
const GEO = 14    // USAN geometric threshold (of 24 mask pixels)

// 5x5 circular USAN mask offsets (24 neighbours, centre excluded).
var maskdx [24]int = {-1, 0, 1, -2, -1, 0, 1, 2, -2, -1, 1, 2, -2, -1, 0, 1, 2, -1, 0, 1, -2, 2, -2, 2}
var maskdy [24]int = {-2, -2, -2, -1, -1, -1, -1, -1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, -2, -2, 2, 2}

var cornerx [128]byte
var cornery [128]byte

// corner: for every interior pixel compute the USAN area (neighbours
// within T of the nucleus); small areas are corner candidates.
func main() int {
	var found int = 0
	var y int
	var x int
	for y = 2; y < H-2; y = y + 1 {
		for x = 2; x < W-2; x = x + 1 {
			var c int = img[y*W+x]
			var n int = 0
			var k int
			for k = 0; k < 24; k = k + 1 {
				var v int = img[(y+maskdy[k])*W + x + maskdx[k]] - c
				if v < 0 {
					v = 0 - v
				}
				if v < T {
					n = n + 1
				}
			}
			if n < GEO {
				if found < 128 {
					cornerx[found] = x
					cornery[found] = y
				}
				found = found + 1
			}
		}
	}
	out16(found)
	var i int
	var lim int = found
	if lim > 128 {
		lim = 128
	}
	for i = 0; i < lim; i = i + 1 {
		out(cornerx[i])
		out(cornery[i])
	}
	return 0
}
`)
	return sb.String()
}
