package workload

import "fmt"

func init() {
	register(&Spec{
		Name: "crc32",
		Desc: "CRC-32 (IEEE, reflected) over a generated buffer (MiBench telecomm/CRC32)",
		Gen:  genCRC32,
	})
}

func genCRC32(seed int64, scale int) string {
	r := newRng(seed)
	n := 512 * scale
	data := r.bytes(n)
	return fmt.Sprintf(`
// crc32: table-driven reflected CRC-32; the table is computed at run
// time (as in the MiBench implementation).
const LEN = %d

var data [LEN]byte = %s
var tab [256]int

func make_table() {
	var i int
	var j int
	for i = 0; i < 256; i = i + 1 {
		var c int = i
		for j = 0; j < 8; j = j + 1 {
			if c & 1 {
				c = 0xEDB88320 ^ ((c & 0xFFFFFFFF) >>> 1)
			} else {
				c = (c & 0xFFFFFFFF) >>> 1
			}
		}
		tab[i] = c
	}
}

func main() int {
	make_table()
	var crc int = 0xFFFFFFFF
	var i int
	for i = 0; i < LEN; i = i + 1 {
		crc = ((crc & 0xFFFFFFFF) >>> 8) ^ tab[(crc ^ data[i]) & 255]
	}
	crc = (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF
	out32(crc)
	return 0
}
`, n, byteList(data))
}
