package workload

import (
	"fmt"
	"math"
)

func init() {
	register(&Spec{
		Name: "fft",
		Desc: "fixed-point radix-2 FFT with per-stage scaling (MiBench telecomm/FFT)",
		Gen:  genFFT,
	})
}

// FFTRef mirrors the MiniC fixed-point FFT exactly (integer arithmetic)
// for use as a test oracle. It returns the transformed re/im arrays.
func FFTRef(re, im []int64, costab, sintab []int64) ([]int64, []int64) {
	n := len(re)
	re = append([]int64(nil), re...)
	im = append([]int64(nil), im...)
	// Bit reversal.
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		if r > i {
			re[i], re[r] = re[r], re[i]
			im[i], im[r] = im[r], im[i]
		}
	}
	for l := 2; l <= n; l <<= 1 {
		half := l / 2
		step := n / l
		for i := 0; i < n; i += l {
			for j := 0; j < half; j++ {
				k := j * step
				wr, wi := costab[k], -sintab[k]
				pr, pi := re[i+j+half], im[i+j+half]
				tr := (wr*pr - wi*pi) >> 14
				ti := (wr*pi + wi*pr) >> 14
				re[i+j+half] = (re[i+j] - tr) >> 1
				im[i+j+half] = (im[i+j] - ti) >> 1
				re[i+j] = (re[i+j] + tr) >> 1
				im[i+j] = (im[i+j] + ti) >> 1
			}
		}
	}
	return re, im
}

// FFTTables returns the Q14 twiddle tables for size n.
func FFTTables(n int) (costab, sintab []int64) {
	costab = make([]int64, n/2)
	sintab = make([]int64, n/2)
	for k := 0; k < n/2; k++ {
		th := 2 * math.Pi * float64(k) / float64(n)
		costab[k] = int64(math.Round(math.Cos(th) * 16384))
		sintab[k] = int64(math.Round(math.Sin(th) * 16384))
	}
	return costab, sintab
}

// FFTInput generates the benchmark's input samples.
func FFTInput(seed int64, n int) (re, im []int64) {
	r := newRng(seed)
	re = make([]int64, n)
	im = make([]int64, n)
	for i := 0; i < n; i++ {
		s := 1500*int64(math.Round(math.Sin(2*math.Pi*3*float64(i)/float64(n))*1000))/1000 +
			700*int64(math.Round(math.Cos(2*math.Pi*9*float64(i)/float64(n))*1000))/1000
		s += int64(r.intn(401)) - 200
		re[i] = s
		im[i] = 0
	}
	return re, im
}

func genFFT(seed int64, scale int) string {
	n := 64
	if scale > 1 {
		n = 64 * scale // must remain a power of two for radix-2
		for n&(n-1) != 0 {
			n++
		}
	}
	re, im := FFTInput(seed, n)
	costab, sintab := FFTTables(n)
	return fmt.Sprintf(`
// fft: in-place fixed-point (Q14) radix-2 FFT with per-stage scaling.
const N = %d

var re [N]int = %s
var im [N]int = %s
var costab [N/2]int = %s
var sintab [N/2]int = %s

func bits_for(n int) int {
	var b int = 0
	while (1 << b) < n {
		b = b + 1
	}
	return b
}

func main() int {
	var nbits int = bits_for(N)
	var i int
	// Bit-reversal permutation.
	for i = 0; i < N; i = i + 1 {
		var r int = 0
		var b int
		for b = 0; b < nbits; b = b + 1 {
			if i & (1 << b) {
				r = r | (1 << (nbits - 1 - b))
			}
		}
		if r > i {
			var tt int = re[i]; re[i] = re[r]; re[r] = tt
			tt = im[i]; im[i] = im[r]; im[r] = tt
		}
	}
	// Butterflies.
	var l int = 2
	while l <= N {
		var half int = l / 2
		var step int = N / l
		for i = 0; i < N; i = i + l {
			var j int
			for j = 0; j < half; j = j + 1 {
				var k int = j * step
				var wr int = costab[k]
				var wi int = 0 - sintab[k]
				var pr int = re[i+j+half]
				var pi int = im[i+j+half]
				var tr int = (wr*pr - wi*pi) >> 14
				var ti int = (wr*pi + wi*pr) >> 14
				re[i+j+half] = (re[i+j] - tr) >> 1
				im[i+j+half] = (im[i+j] - ti) >> 1
				re[i+j] = (re[i+j] + tr) >> 1
				im[i+j] = (im[i+j] + ti) >> 1
			}
		}
		l = l * 2
	}
	for i = 0; i < N; i = i + 1 {
		out16(re[i] & 0xFFFF)
		out16(im[i] & 0xFFFF)
	}
	return 0
}
`, n, intList(re), intList(im), intList(costab), intList(sintab))
}
