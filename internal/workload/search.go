package workload

import (
	"fmt"
	"strings"
)

func init() {
	register(&Spec{
		Name: "stringsearch",
		Desc: "Boyer-Moore-Horspool multi-pattern search (MiBench office/stringsearch)",
		Gen:  genSearch,
	})
}

var searchWords = []string{
	"fault", "vulnerability", "transient", "pipeline", "cache", "register",
	"kernel", "commit", "squash", "masked", "silent", "corruption", "crash",
	"inject", "bitflip", "stack", "layer", "program", "micro", "arch",
}

// SearchText builds the benchmark corpus.
func SearchText(seed int64, n int) []byte {
	r := newRng(seed)
	var sb strings.Builder
	for sb.Len() < n {
		sb.WriteString(searchWords[r.intn(len(searchWords))])
		sb.WriteByte(' ')
	}
	return []byte(sb.String()[:n])
}

// SearchPatterns picks the benchmark patterns: mostly present words,
// plus guaranteed-absent strings.
func SearchPatterns(seed int64) []string {
	r := newRng(seed ^ 0xBEEF)
	pats := make([]string, 0, 6)
	for i := 0; i < 4; i++ {
		pats = append(pats, searchWords[r.intn(len(searchWords))])
	}
	return append(pats, "zzqxj", "absentpattern")
}

func genSearch(seed int64, scale int) string {
	n := 1024 * scale
	text := SearchText(seed, n)
	pats := SearchPatterns(seed)
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nconst TLEN = %d\nconst NPAT = %d\n\nvar text [TLEN]byte = %s\n", n, len(pats), byteList(text))
	// Patterns are packed into one buffer with a length table.
	var packed []byte
	offs := make([]int64, 0, len(pats))
	lens := make([]int64, 0, len(pats))
	for _, p := range pats {
		offs = append(offs, int64(len(packed)))
		lens = append(lens, int64(len(p)))
		packed = append(packed, p...)
	}
	fmt.Fprintf(&sb, "var pats [%d]byte = %s\nvar poff [NPAT]int = %s\nvar plen [NPAT]int = %s\n",
		len(packed), byteList(packed), intList(offs), intList(lens))
	sb.WriteString(`
var shift [256]int

// stringsearch: Boyer-Moore-Horspool over the corpus for each pattern,
// reporting first match position (+1) and total match count.
func search(po int, pl int) {
	var i int
	for i = 0; i < 256; i = i + 1 {
		shift[i] = pl
	}
	for i = 0; i < pl-1; i = i + 1 {
		shift[pats[po+i]] = pl - 1 - i
	}
	var count int = 0
	var first int = 0
	var pos int = 0
	while pos + pl <= TLEN {
		var j int = pl - 1
		while j >= 0 && text[pos+j] == pats[po+j] {
			j = j - 1
		}
		if j < 0 {
			count = count + 1
			if first == 0 {
				first = pos + 1
			}
			pos = pos + pl
		} else {
			pos = pos + shift[text[pos+pl-1]]
		}
	}
	out16(first)
	out(count & 255)
}

func main() int {
	var p int
	for p = 0; p < NPAT; p = p + 1 {
		search(poff[p], plen[p])
	}
	return 0
}
`)
	return sb.String()
}
