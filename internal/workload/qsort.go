package workload

import "fmt"

func init() {
	register(&Spec{
		Name: "qsort",
		Desc: "recursive quicksort with insertion-sort base case (MiBench auto/qsort)",
		Gen:  genQsort,
	})
}

func genQsort(seed int64, scale int) string {
	r := newRng(seed)
	n := 160 * scale
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(int32(r.next()))
	}
	return fmt.Sprintf(`
// qsort: pointer- and control-heavy sorting of embedded records.
const N = %d

var a [N]int = %s

func insertion(p *int, lo int, hi int) {
	var i int
	for i = lo + 1; i <= hi; i = i + 1 {
		var v int = p[i]
		var j int = i - 1
		while j >= lo && p[j] > v {
			p[j+1] = p[j]
			j = j - 1
		}
		p[j+1] = v
	}
}

func quick(p *int, lo int, hi int) {
	if hi - lo < 12 {
		insertion(p, lo, hi)
		return
	}
	// Median-of-three pivot.
	var mid int = lo + (hi - lo) / 2
	if p[mid] < p[lo] { var tt int = p[mid]; p[mid] = p[lo]; p[lo] = tt }
	if p[hi] < p[lo] { var tt int = p[hi]; p[hi] = p[lo]; p[lo] = tt }
	if p[hi] < p[mid] { var tt int = p[hi]; p[hi] = p[mid]; p[mid] = tt }
	var pivot int = p[mid]
	var i int = lo
	var j int = hi
	while i <= j {
		while p[i] < pivot { i = i + 1 }
		while p[j] > pivot { j = j - 1 }
		if i <= j {
			var tt int = p[i]
			p[i] = p[j]
			p[j] = tt
			i = i + 1
			j = j - 1
		}
	}
	quick(p, lo, j)
	quick(p, i, hi)
}

func main() int {
	quick(a, 0, N-1)
	// Verify ordering and emit a position-weighted checksum plus
	// boundary samples.
	var i int
	var sum int = 0
	var sorted int = 1
	for i = 0; i < N; i = i + 1 {
		sum = (sum + (i + 1) * (a[i] & 0xFFFF)) & 0xFFFFFFFF
		if i > 0 && a[i-1] > a[i] {
			sorted = 0
		}
	}
	out(sorted)
	out32(sum)
	out32(a[0])
	out32(a[N/2])
	out32(a[N-1])
	return 0
}
`, n, intList(vals))
}
