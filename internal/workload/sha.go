package workload

import "fmt"

func init() {
	register(&Spec{
		Name: "sha",
		Desc: "SHA-1 digest over a generated message (MiBench security/sha)",
		Gen:  genSHA,
	})
}

// shaPad applies SHA-1 message padding (done generator-side; the MiniC
// program hashes whole 64-byte blocks).
func shaPad(msg []byte) []byte {
	l := len(msg)
	out := append([]byte(nil), msg...)
	out = append(out, 0x80)
	for len(out)%64 != 56 {
		out = append(out, 0)
	}
	bits := uint64(l) * 8
	for i := 7; i >= 0; i-- {
		out = append(out, byte(bits>>(8*uint(i))))
	}
	return out
}

func genSHA(seed int64, scale int) string {
	r := newRng(seed)
	msgLen := 192 * scale
	padded := shaPad(r.bytes(msgLen))
	return fmt.Sprintf(`
// sha: SHA-1 over an embedded pre-padded message.
const LEN = %d
const NBLK = LEN / 64

var msg [LEN]byte = %s
var H [5]int = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
var w [80]int

func rol(x int, n int) int {
	return ((x << n) | ((x & 0xFFFFFFFF) >>> (32 - n))) & 0xFFFFFFFF
}

func sha_block(off int) {
	var i int
	for i = 0; i < 16; i = i + 1 {
		w[i] = (msg[off+4*i] << 24) | (msg[off+4*i+1] << 16) | (msg[off+4*i+2] << 8) | msg[off+4*i+3]
	}
	for i = 16; i < 80; i = i + 1 {
		w[i] = rol(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16], 1)
	}
	var a int = H[0]
	var b int = H[1]
	var c int = H[2]
	var d int = H[3]
	var e int = H[4]
	for i = 0; i < 80; i = i + 1 {
		var f int
		var k int
		if i < 20 {
			f = (b & c) | ((~b) & d)
			k = 0x5A827999
		} else if i < 40 {
			f = b ^ c ^ d
			k = 0x6ED9EBA1
		} else if i < 60 {
			f = (b & c) | (b & d) | (c & d)
			k = 0x8F1BBCDC
		} else {
			f = b ^ c ^ d
			k = 0xCA62C1D6
		}
		var tt int = (rol(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF
		e = d
		d = c
		c = rol(b, 30)
		b = a
		a = tt
	}
	H[0] = (H[0] + a) & 0xFFFFFFFF
	H[1] = (H[1] + b) & 0xFFFFFFFF
	H[2] = (H[2] + c) & 0xFFFFFFFF
	H[3] = (H[3] + d) & 0xFFFFFFFF
	H[4] = (H[4] + e) & 0xFFFFFFFF
}

func main() int {
	var blk int
	for blk = 0; blk < NBLK; blk = blk + 1 {
		sha_block(blk * 64)
	}
	var i int
	for i = 0; i < 5; i = i + 1 {
		out((H[i] >>> 24) & 255)
		out((H[i] >>> 16) & 255)
		out((H[i] >>> 8) & 255)
		out(H[i] & 255)
	}
	return 0
}
`, len(padded), byteList(padded))
}
