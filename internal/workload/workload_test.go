package workload

import (
	"bytes"
	"crypto/aes"
	"crypto/sha1"
	"encoding/binary"
	"hash/crc32"
	"sort"
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/minic"
)

const testSeed = 12345

// runOnIR executes a benchmark source on the IR interpreter.
func runOnIR(t *testing.T, src string, width int) []byte {
	t.Helper()
	out, err := runIR(src, width)
	if err != nil {
		t.Fatalf("IR run: %v", err)
	}
	return out
}

// runOnMachine compiles for is and boots on the functional emulator.
func runOnMachine(t *testing.T, src string, is isa.ISA) ([]byte, uint64) {
	t.Helper()
	m, err := minic.Compile(src, is.XLen())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := codegen.Build(m, is)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatalf("image: %v", err)
	}
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(is, bus, img.Entry)
	if !c.Run(1 << 27) {
		t.Fatalf("watchdog (pc=%#x instret=%d)", c.PC, c.Instret)
	}
	if bus.Halt != dev.HaltClean || bus.ExitCode != 0 {
		t.Fatalf("abnormal halt %v code=%d panic=%d", bus.Halt, bus.ExitCode, bus.PanicCode)
	}
	return bus.Out, c.Instret
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("want 10 benchmarks, have %d", len(names))
	}
	for _, n := range names {
		s, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Desc == "" {
			t.Errorf("%s: missing description", n)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if len(All()) != 10 {
		t.Fatal("All() size")
	}
}

// TestAllBenchmarksCrossEngine is the central differential test: for
// every benchmark, the IR interpreter and the compiled machine execution
// must produce identical output on both ISAs, and the output must be
// identical across ISAs (the workloads are written width-portably).
func TestAllBenchmarksCrossEngine(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			src := spec.Gen(testSeed, 1)
			ir64 := runOnIR(t, src, 64)
			if len(ir64) == 0 {
				t.Fatal("no output")
			}
			ir32 := runOnIR(t, src, 32)
			if !bytes.Equal(ir64, ir32) {
				t.Fatalf("width-portability: 32/64 outputs differ (%d vs %d bytes)", len(ir32), len(ir64))
			}
			for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
				got, instret := runOnMachine(t, src, is)
				if !bytes.Equal(got, ir64) {
					t.Fatalf("%v: machine output differs from IR (lens %d vs %d)", is, len(got), len(ir64))
				}
				t.Logf("%v: %d retired instructions, %d output bytes", is, instret, len(got))
			}
		})
	}
}

func TestSHAAgainstGo(t *testing.T) {
	// The MiniC sha must produce the true SHA-1 digest of the unpadded
	// message bytes.
	r := newRng(testSeed)
	msg := r.bytes(192)
	want := sha1.Sum(msg)
	out := runOnIR(t, genSHA(testSeed, 1), 64)
	if !bytes.Equal(out, want[:]) {
		t.Fatalf("sha1: got %x want %x", out, want)
	}
}

func TestCRC32AgainstGo(t *testing.T) {
	r := newRng(testSeed)
	data := r.bytes(512)
	want := crc32.ChecksumIEEE(data)
	out := runOnIR(t, genCRC32(testSeed, 1), 64)
	if len(out) != 4 {
		t.Fatalf("crc output length %d", len(out))
	}
	got := binary.LittleEndian.Uint32(out)
	if got != want {
		t.Fatalf("crc32: got %#x want %#x", got, want)
	}
}

func TestAESAgainstGo(t *testing.T) {
	key := AESKey(testSeed)
	plain := AESPlain(testSeed, 4)
	c, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, len(plain))
	for i := 0; i < len(plain); i += 16 {
		c.Encrypt(want[i:i+16], plain[i:i+16])
	}
	out := runOnIR(t, genAES(testSeed, 1), 64)
	if !bytes.Equal(out, want) {
		t.Fatalf("aes: got %x\nwant %x", out[:32], want[:32])
	}
}

func TestFFTAgainstReference(t *testing.T) {
	re, im := FFTInput(testSeed, 64)
	ct, st := FFTTables(64)
	wre, wim := FFTRef(re, im, ct, st)
	out := runOnIR(t, genFFT(testSeed, 1), 64)
	if len(out) != 64*4 {
		t.Fatalf("fft output length %d", len(out))
	}
	for i := 0; i < 64; i++ {
		gr := int64(int16(binary.LittleEndian.Uint16(out[4*i:])))
		gi := int64(int16(binary.LittleEndian.Uint16(out[4*i+2:])))
		if gr != int64(int16(uint16(wre[i]))) || gi != int64(int16(uint16(wim[i]))) {
			t.Fatalf("fft bin %d: got (%d,%d) want (%d,%d)", i, gr, gi, wre[i], wim[i])
		}
	}
}

func TestQsortOutputSorted(t *testing.T) {
	out := runOnIR(t, genQsort(testSeed, 1), 64)
	if out[0] != 1 {
		t.Fatal("qsort: in-program sortedness check failed")
	}
	// Cross-check boundary samples against Go's sort.
	r := newRng(testSeed)
	vals := make([]int64, 160)
	for i := range vals {
		vals[i] = int64(int32(r.next()))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	first := int64(int32(binary.LittleEndian.Uint32(out[5:9])))
	last := int64(int32(binary.LittleEndian.Uint32(out[13:17])))
	if first != int64(int32(uint32(vals[0]))) || last != int64(int32(uint32(vals[159]))) {
		t.Fatalf("qsort boundaries: got %d..%d want %d..%d", first, last, vals[0], vals[159])
	}
}

func TestSearchFindsKnownPatterns(t *testing.T) {
	out := runOnIR(t, genSearch(testSeed, 1), 64)
	pats := SearchPatterns(testSeed)
	text := SearchText(testSeed, 1024)
	if len(out) != 3*len(pats) {
		t.Fatalf("output len %d", len(out))
	}
	for i, p := range pats {
		first := int(binary.LittleEndian.Uint16(out[3*i:]))
		count := int(out[3*i+2])
		idx := bytes.Index(text, []byte(p))
		if idx < 0 {
			if first != 0 || count != 0 {
				t.Fatalf("pattern %q: expected no match, got pos %d count %d", p, first, count)
			}
			continue
		}
		if first != idx+1 {
			t.Fatalf("pattern %q: first match %d, want %d", p, first, idx+1)
		}
		if count == 0 {
			t.Fatalf("pattern %q: count 0", p)
		}
	}
}

func TestSmoothPreservesBordersAndRange(t *testing.T) {
	const W = 24
	out := runOnIR(t, genSmooth(testSeed, 1), 64)
	if len(out) != W*W {
		t.Fatalf("smooth output %d", len(out))
	}
	img := GenImage(testSeed, W, W)
	for x := 0; x < W; x++ {
		if out[x] != img[x] || out[(W-1)*W+x] != img[(W-1)*W+x] {
			t.Fatal("smooth must copy borders")
		}
	}
	// The interior must be a 16-division weighted mean: recompute one.
	p := 5*W + 7
	s := int(img[p-W-1]) + 2*int(img[p-W]) + int(img[p-W+1]) +
		2*int(img[p-1]) + 4*int(img[p]) + 2*int(img[p+1]) +
		int(img[p+W-1]) + 2*int(img[p+W]) + int(img[p+W+1])
	if int(out[p]) != (s+8)/16 {
		t.Fatalf("smooth interior: got %d want %d", out[p], (s+8)/16)
	}
}

func TestCornerOutput(t *testing.T) {
	out := runOnIR(t, genCorner(testSeed, 1), 64)
	n := int(binary.LittleEndian.Uint16(out))
	if n == 0 {
		t.Fatal("corner: no corners found on an image with rectangles")
	}
	lim := n
	if lim > 128 {
		lim = 128
	}
	if len(out) != 2+2*lim {
		t.Fatalf("corner output length %d for %d corners", len(out), n)
	}
	// Coordinates must be interior.
	for i := 0; i < lim; i++ {
		x, y := out[2+2*i], out[3+2*i]
		if x < 2 || x > 13 || y < 2 || y > 13 {
			t.Fatalf("corner %d at (%d,%d) out of range", i, x, y)
		}
	}
}

func TestJpegRoundTrip(t *testing.T) {
	stream, err := CjpegOutput(testSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 || len(stream) >= 16*16 {
		t.Fatalf("cjpeg stream size %d not compressive", len(stream))
	}
	out := runOnIR(t, genDjpeg(testSeed, 1), 64)
	if len(out) != 16*16 {
		t.Fatalf("djpeg output %d", len(out))
	}
	// Lossy round trip: decoded pixels must be near the original.
	img := GenImage(testSeed+0x77, 16, 16)
	var worst, sum int
	for i := range img {
		d := int(out[i]) - int(img[i])
		if d < 0 {
			d = -d
		}
		sum += d
		if d > worst {
			worst = d
		}
	}
	avg := sum / len(img)
	if avg > 12 || worst > 120 {
		t.Fatalf("jpeg round trip too lossy: avg err %d, worst %d", avg, worst)
	}
}

func TestSeedsChangeInputsNotValidity(t *testing.T) {
	for _, name := range []string{"sha", "qsort", "crc32"} {
		spec, _ := Get(name)
		a := runOnIR(t, spec.Gen(1, 1), 64)
		b := runOnIR(t, spec.Gen(2, 1), 64)
		if bytes.Equal(a, b) {
			t.Errorf("%s: different seeds gave identical output", name)
		}
		c := runOnIR(t, spec.Gen(1, 1), 64)
		if !bytes.Equal(a, c) {
			t.Errorf("%s: same seed gave different output", name)
		}
	}
}
