// Package workload provides the ten reproduction benchmarks — MiniC
// analogues of the MiBench programs the paper evaluates (fft, qsort,
// sha, rijndael, corner, smooth, cjpeg, djpeg, stringsearch, crc32) —
// together with seeded input generators. Each benchmark is a MiniC
// source string with its input data embedded as initialized globals, so
// one (seed, scale) pair fully determines the program and its golden
// output on every engine and ISA.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"vulnstack/internal/ir"
	"vulnstack/internal/minic"
)

// Spec describes one benchmark.
type Spec struct {
	Name string
	// Desc is a one-line description (paper domain).
	Desc string
	// Gen produces the MiniC source for a seed and scale. Scale 1 is
	// the default study size; larger values grow the input.
	Gen func(seed int64, scale int) string
}

// registry holds all benchmarks, keyed by name.
var registry = map[string]*Spec{}

func register(s *Spec) { registry[s.Name] = s }

// Names returns all benchmark names in the paper's presentation order.
func Names() []string {
	return []string{"fft", "qsort", "sha", "rijndael", "corner", "smooth",
		"cjpeg", "djpeg", "stringsearch", "crc32"}
}

// Get returns a benchmark spec by name.
func Get(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %s)", name, strings.Join(known, ", "))
	}
	return s, nil
}

// All returns the specs in presentation order.
func All() []*Spec {
	out := make([]*Spec, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// --- generator helpers ---

// rng is a splitmix64 generator for reproducible inputs.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) bytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.next())
	}
	return b
}

// intList renders values as a MiniC initializer list.
func intList(vals []int64) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(", ")
			if i%16 == 0 {
				sb.WriteString("\n\t")
			}
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// byteList renders bytes as a MiniC initializer list.
func byteList(vals []byte) string {
	iv := make([]int64, len(vals))
	for i, v := range vals {
		iv[i] = int64(v)
	}
	return intList(iv)
}

// runIR compiles and runs a MiniC program on the IR interpreter (used
// by generators that derive one benchmark's input from another's
// output, e.g. djpeg's compressed stream from cjpeg).
func runIR(src string, width int) ([]byte, error) {
	m, err := minic.Compile(src, width)
	if err != nil {
		return nil, err
	}
	ip := ir.NewInterp(m, width, 1<<21)
	ip.MaxSteps = 1 << 28
	if err := ip.Run("_start"); err != nil {
		return nil, err
	}
	if !ip.Exited || ip.ExitCode != 0 {
		return nil, fmt.Errorf("workload: helper program exited %d", ip.ExitCode)
	}
	return ip.Out, nil
}
