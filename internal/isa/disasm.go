package isa

import "fmt"

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	switch in.Op.Fmt() {
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case FmtI:
		if in.Op.IsLoad() {
			return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
		}
		if in.Op == JALR {
			return fmt.Sprintf("jalr %s, %d(%s)", RegName(in.Rd), in.Imm, RegName(in.Rs1))
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	case FmtS:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rs2), in.Imm, RegName(in.Rs1))
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case FmtU:
		return fmt.Sprintf("lui %s, %#x", RegName(in.Rd), uint64(in.Imm))
	case FmtJ:
		return fmt.Sprintf("jal %s, %d", RegName(in.Rd), in.Imm)
	default:
		switch in.Op {
		case CSRW:
			return fmt.Sprintf("csrw %s, %s", CsrName(int(in.Imm)), RegName(in.Rs1))
		case CSRR:
			return fmt.Sprintf("csrr %s, %s", RegName(in.Rd), CsrName(int(in.Imm)))
		}
		return in.Op.String()
	}
}

// Disasm decodes and renders the word w, or returns a placeholder for
// illegal encodings.
func Disasm(w uint32, is ISA) string {
	in, ok := Decode(w, is)
	if !ok {
		return fmt.Sprintf(".word %#08x (illegal)", w)
	}
	return in.String()
}
