package isa

import "fmt"

// Op enumerates every VSA operation. The numeric values are internal; the
// binary encoding is defined by Encode/Decode below.
type Op int

const (
	// R-type register-register ALU operations.
	ADD Op = iota
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	MUL
	DIV
	DIVU
	REM
	REMU
	// I-type register-immediate ALU operations.
	ADDI
	SLLI
	SLTI
	SLTIU
	XORI
	SRLI
	SRAI
	ORI
	ANDI
	// Loads.
	LB
	LH
	LW
	LD // VSA64 only
	LBU
	LHU
	LWU // VSA64 only
	// Stores.
	SB
	SH
	SW
	SD // VSA64 only
	// Control flow.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL
	JALR
	// Upper immediate.
	LUI
	// System.
	ECALL
	ERET
	CSRW // csr[imm] := rs1
	CSRR // rd := csr[imm]

	NumOps
)

var opNames = [...]string{
	ADD: "add", SUB: "sub", SLL: "sll", SLT: "slt", SLTU: "sltu",
	XOR: "xor", SRL: "srl", SRA: "sra", OR: "or", AND: "and",
	MUL: "mul", DIV: "div", DIVU: "divu", REM: "rem", REMU: "remu",
	ADDI: "addi", SLLI: "slli", SLTI: "slti", SLTIU: "sltiu",
	XORI: "xori", SRLI: "srli", SRAI: "srai", ORI: "ori", ANDI: "andi",
	LB: "lb", LH: "lh", LW: "lw", LD: "ld", LBU: "lbu", LHU: "lhu", LWU: "lwu",
	SB: "sb", SH: "sh", SW: "sw", SD: "sd",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr", LUI: "lui",
	ECALL: "ecall", ERET: "eret", CSRW: "csrw", CSRR: "csrr",
}

func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Format describes the encoding format of an operation.
type Format int

const (
	FmtR Format = iota // funct7 rs2 rs1 funct3 rd opcode
	FmtI               // imm12 rs1 funct3 rd opcode
	FmtS               // imm[11:5] rs2 rs1 funct3 imm[4:0] opcode (stores)
	FmtB               // same layout as S; imm is a branch offset in words
	FmtU               // imm20 rd opcode
	FmtJ               // imm20 rd opcode; imm is a jump offset in words
	FmtSys             // system instructions
)

// Opcode field values (bits [6:0]).
const (
	opcALU    = 0x33
	opcALUI   = 0x13
	opcLoad   = 0x03
	opcStore  = 0x23
	opcBranch = 0x63
	opcJAL    = 0x6F
	opcJALR   = 0x67
	opcLUI    = 0x37
	opcSYS    = 0x73
)

// Instr is a decoded instruction.
type Instr struct {
	Op   Op
	Rd   int
	Rs1  int
	Rs2  int
	Imm  int64 // sign-extended immediate; branch/jump offsets in bytes
	Raw  uint32
}

// Fmt returns the encoding format of op.
func (o Op) Fmt() Format {
	switch {
	case o <= REMU:
		return FmtR
	case o <= ANDI:
		return FmtI
	case o <= LWU:
		return FmtI
	case o <= SD:
		return FmtS
	case o <= BGEU:
		return FmtB
	case o == JAL:
		return FmtJ
	case o == JALR:
		return FmtI
	case o == LUI:
		return FmtU
	default:
		return FmtSys
	}
}

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= BEQ && o <= BGEU }

// IsLoad reports whether o reads data memory.
func (o Op) IsLoad() bool { return o >= LB && o <= LWU }

// IsStore reports whether o writes data memory.
func (o Op) IsStore() bool { return o >= SB && o <= SD }

// IsJump reports whether o is an unconditional control transfer.
func (o Op) IsJump() bool { return o == JAL || o == JALR }

// WritesRd reports whether o produces a register result in Rd.
func (o Op) WritesRd() bool {
	switch {
	case o.IsStore(), o.IsBranch(), o == ECALL, o == ERET, o == CSRW:
		return false
	}
	return true
}

// ReadsRs1 reports whether o consumes Rs1.
func (o Op) ReadsRs1() bool {
	switch o {
	case JAL, LUI, ECALL, ERET, CSRR:
		return false
	}
	return true
}

// ReadsRs2 reports whether o consumes Rs2.
func (o Op) ReadsRs2() bool {
	return o.Fmt() == FmtR || o.IsStore() || o.IsBranch()
}

// MemBytes returns the access width in bytes for loads and stores, and 0
// for every other operation.
func (o Op) MemBytes() int {
	switch o {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, LWU, SW:
		return 4
	case LD, SD:
		return 8
	}
	return 0
}

// MemUnsigned reports whether a load zero-extends.
func (o Op) MemUnsigned() bool { return o == LBU || o == LHU || o == LWU }

// Field extraction helpers.
func bitsOf(w uint32, lo, n uint) uint32 { return (w >> lo) & (1<<n - 1) }

func signExt(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode decodes a raw 32-bit instruction word under ISA variant is.
// ok is false when the word does not encode a valid instruction — which
// the hardware raises as an illegal-instruction trap. Register specifier
// fields are 5 bits wide in both variants; VSA32 treats indices >= 16 as
// illegal, so bit flips in specifier fields can make an instruction
// undecodable, exactly like real dense ISA encodings.
func Decode(w uint32, is ISA) (Instr, bool) {
	in := Instr{Raw: w, Rd: int(bitsOf(w, 7, 5)), Rs1: int(bitsOf(w, 15, 5)), Rs2: int(bitsOf(w, 20, 5))}
	f3 := bitsOf(w, 12, 3)
	f7 := bitsOf(w, 25, 7)
	immI := signExt(bitsOf(w, 20, 12), 12)
	immS := signExt(bitsOf(w, 25, 7)<<5|bitsOf(w, 7, 5), 12)

	regOK := func(r int, used bool) bool { return !used || r < is.NumRegs() }

	switch bitsOf(w, 0, 7) {
	case opcALU:
		switch f7 {
		case 0x00:
			switch f3 {
			case 0:
				in.Op = ADD
			case 1:
				in.Op = SLL
			case 2:
				in.Op = SLT
			case 3:
				in.Op = SLTU
			case 4:
				in.Op = XOR
			case 5:
				in.Op = SRL
			case 6:
				in.Op = OR
			case 7:
				in.Op = AND
			}
		case 0x20:
			switch f3 {
			case 0:
				in.Op = SUB
			case 5:
				in.Op = SRA
			default:
				return in, false
			}
		case 0x01:
			switch f3 {
			case 0:
				in.Op = MUL
			case 4:
				in.Op = DIV
			case 5:
				in.Op = DIVU
			case 6:
				in.Op = REM
			case 7:
				in.Op = REMU
			default:
				return in, false
			}
		default:
			return in, false
		}
	case opcALUI:
		in.Imm = immI
		switch f3 {
		case 0:
			in.Op = ADDI
		case 1:
			if f7&^1 != 0 { // funct7 bit 0 doubles as shamt bit 5 (VSA64)
				return in, false
			}
			in.Op = SLLI
			in.Imm = int64(bitsOf(w, 20, 6))
		case 2:
			in.Op = SLTI
		case 3:
			in.Op = SLTIU
		case 4:
			in.Op = XORI
		case 5:
			switch f7 &^ 1 { // allow shamt bit 5 (VSA64 shifts)
			case 0x00:
				in.Op = SRLI
			case 0x20:
				in.Op = SRAI
			default:
				return in, false
			}
			in.Imm = int64(bitsOf(w, 20, 6))
		case 6:
			in.Op = ORI
		case 7:
			in.Op = ANDI
		}
		if (in.Op == SLLI || in.Op == SRLI || in.Op == SRAI) && in.Imm >= int64(is.XLen()) {
			return in, false
		}
	case opcLoad:
		in.Imm = immI
		switch f3 {
		case 0:
			in.Op = LB
		case 1:
			in.Op = LH
		case 2:
			in.Op = LW
		case 3:
			in.Op = LD
		case 4:
			in.Op = LBU
		case 5:
			in.Op = LHU
		case 6:
			in.Op = LWU
		default:
			return in, false
		}
		if is == VSA32 && (in.Op == LD || in.Op == LWU) {
			return in, false
		}
	case opcStore:
		in.Imm = immS
		switch f3 {
		case 0:
			in.Op = SB
		case 1:
			in.Op = SH
		case 2:
			in.Op = SW
		case 3:
			in.Op = SD
		default:
			return in, false
		}
		if is == VSA32 && in.Op == SD {
			return in, false
		}
		in.Rd = 0
	case opcBranch:
		in.Imm = immS << 2 // word-scaled branch offsets: range ±8KB
		switch f3 {
		case 0:
			in.Op = BEQ
		case 1:
			in.Op = BNE
		case 4:
			in.Op = BLT
		case 5:
			in.Op = BGE
		case 6:
			in.Op = BLTU
		case 7:
			in.Op = BGEU
		default:
			return in, false
		}
		in.Rd = 0
	case opcJAL:
		in.Op = JAL
		in.Imm = signExt(bitsOf(w, 12, 20), 20) << 2
	case opcJALR:
		if f3 != 0 {
			return in, false
		}
		in.Op = JALR
		in.Imm = immI
	case opcLUI:
		in.Op = LUI
		in.Imm = signExt(bitsOf(w, 12, 20), 20) << 12
	case opcSYS:
		switch f3 {
		case 0:
			switch bitsOf(w, 20, 12) {
			case 0:
				in.Op = ECALL
			case 1:
				in.Op = ERET
			default:
				return in, false
			}
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		case 1:
			in.Op = CSRW
			in.Imm = int64(bitsOf(w, 20, 12))
			in.Rd = 0
		case 2:
			in.Op = CSRR
			in.Imm = int64(bitsOf(w, 20, 12))
			in.Rs1, in.Rs2 = 0, 0
		default:
			return in, false
		}
		if in.Op == CSRW || in.Op == CSRR {
			if in.Imm >= NumCSRs {
				return in, false
			}
		}
	default:
		return in, false
	}

	if !in.Op.ReadsRs1() {
		in.Rs1 = 0
	}
	if !in.Op.ReadsRs2() {
		in.Rs2 = 0
	}
	if !regOK(in.Rd, in.Op.WritesRd()) ||
		!regOK(in.Rs1, in.Op.ReadsRs1()) ||
		!regOK(in.Rs2, in.Op.ReadsRs2()) {
		return in, false
	}
	return in, true
}

// Encode produces the binary word for in. It panics on malformed
// instructions (out-of-range immediates or registers): Encode is used by
// the assembler and code generator, where such a condition is a bug, not
// an input error.
func Encode(in Instr) uint32 {
	ck := func(cond bool, what string) {
		if !cond {
			panic(fmt.Sprintf("isa.Encode: bad %s in %v", what, in))
		}
	}
	reg := func(r int) uint32 {
		ck(r >= 0 && r < 32, "register")
		return uint32(r)
	}
	var w uint32
	switch in.Op.Fmt() {
	case FmtR:
		var f3, f7 uint32
		switch in.Op {
		case ADD:
			f3 = 0
		case SUB:
			f3, f7 = 0, 0x20
		case SLL:
			f3 = 1
		case SLT:
			f3 = 2
		case SLTU:
			f3 = 3
		case XOR:
			f3 = 4
		case SRL:
			f3 = 5
		case SRA:
			f3, f7 = 5, 0x20
		case OR:
			f3 = 6
		case AND:
			f3 = 7
		case MUL:
			f3, f7 = 0, 1
		case DIV:
			f3, f7 = 4, 1
		case DIVU:
			f3, f7 = 5, 1
		case REM:
			f3, f7 = 6, 1
		case REMU:
			f3, f7 = 7, 1
		}
		w = f7<<25 | reg(in.Rs2)<<20 | reg(in.Rs1)<<15 | f3<<12 | reg(in.Rd)<<7 | opcALU
	case FmtI:
		var opc, f3 uint32
		imm := in.Imm
		switch in.Op {
		case ADDI:
			opc, f3 = opcALUI, 0
		case SLLI:
			opc, f3 = opcALUI, 1
		case SLTI:
			opc, f3 = opcALUI, 2
		case SLTIU:
			opc, f3 = opcALUI, 3
		case XORI:
			opc, f3 = opcALUI, 4
		case SRLI:
			opc, f3 = opcALUI, 5
		case SRAI:
			opc, f3 = opcALUI, 5
			ck(imm >= 0 && imm < 64, "shift amount")
			imm |= 0x20 << 5 // funct7=0x20 marker in imm[11:5]
		case ORI:
			opc, f3 = opcALUI, 6
		case ANDI:
			opc, f3 = opcALUI, 7
		case LB:
			opc, f3 = opcLoad, 0
		case LH:
			opc, f3 = opcLoad, 1
		case LW:
			opc, f3 = opcLoad, 2
		case LD:
			opc, f3 = opcLoad, 3
		case LBU:
			opc, f3 = opcLoad, 4
		case LHU:
			opc, f3 = opcLoad, 5
		case LWU:
			opc, f3 = opcLoad, 6
		case JALR:
			opc, f3 = opcJALR, 0
		}
		if in.Op == SLLI || in.Op == SRLI {
			ck(imm >= 0 && imm < 64, "shift amount")
		} else if in.Op != SRAI {
			ck(imm >= -2048 && imm < 2048, "immediate")
		}
		w = uint32(imm&0xFFF)<<20 | reg(in.Rs1)<<15 | f3<<12 | reg(in.Rd)<<7 | opc
	case FmtS, FmtB:
		var opc, f3 uint32
		imm := in.Imm
		switch in.Op {
		case SB:
			opc, f3 = opcStore, 0
		case SH:
			opc, f3 = opcStore, 1
		case SW:
			opc, f3 = opcStore, 2
		case SD:
			opc, f3 = opcStore, 3
		case BEQ:
			opc, f3 = opcBranch, 0
		case BNE:
			opc, f3 = opcBranch, 1
		case BLT:
			opc, f3 = opcBranch, 4
		case BGE:
			opc, f3 = opcBranch, 5
		case BLTU:
			opc, f3 = opcBranch, 6
		case BGEU:
			opc, f3 = opcBranch, 7
		}
		if in.Op.IsBranch() {
			ck(imm&3 == 0, "branch alignment")
			imm >>= 2
		}
		ck(imm >= -2048 && imm < 2048, "offset")
		u := uint32(imm & 0xFFF)
		w = (u>>5)<<25 | reg(in.Rs2)<<20 | reg(in.Rs1)<<15 | f3<<12 | (u&0x1F)<<7 | opc
	case FmtU:
		ck(in.Imm&0xFFF == 0, "LUI immediate alignment")
		imm := in.Imm >> 12
		ck(imm >= -(1<<19) && imm < 1<<19, "LUI immediate")
		w = uint32(imm&0xFFFFF)<<12 | reg(in.Rd)<<7 | opcLUI
	case FmtJ:
		ck(in.Imm&3 == 0, "jump alignment")
		imm := in.Imm >> 2
		ck(imm >= -(1<<19) && imm < 1<<19, "jump offset")
		w = uint32(imm&0xFFFFF)<<12 | reg(in.Rd)<<7 | opcJAL
	case FmtSys:
		switch in.Op {
		case ECALL:
			w = opcSYS
		case ERET:
			w = 1<<20 | opcSYS
		case CSRW:
			ck(in.Imm >= 0 && in.Imm < NumCSRs, "csr index")
			w = uint32(in.Imm)<<20 | reg(in.Rs1)<<15 | 1<<12 | opcSYS
		case CSRR:
			ck(in.Imm >= 0 && in.Imm < NumCSRs, "csr index")
			w = uint32(in.Imm)<<20 | 2<<12 | reg(in.Rd)<<7 | opcSYS
		}
	}
	return w
}

// FieldKind classifies instruction word bits for FPM purposes.
type FieldKind int

const (
	// FieldOperation bits select what the instruction does (opcode,
	// funct3, funct7). A flip here manifests as the Wrong Instruction
	// (WI) fault propagation model.
	FieldOperation FieldKind = iota
	// FieldOperand bits select which resources the instruction uses
	// (register specifiers, immediates). A flip here is Wrong
	// Operand/Immediate (WOI).
	FieldOperand
)

// BitClass is the encoding-determined effect of flipping one bit of an
// instruction word: the static analogue of the fault propagation model
// a corrupted instruction fetch manifests as. Unlike OperationMask's
// two-way field split, BitClass is computed by actually decoding the
// flipped word, so it also captures flips that leave illegal encodings
// (trapped by the hardware) or dead encoding space (masked).
type BitClass int

const (
	// BitMasked flips decode to the identical instruction (dead
	// encoding space, e.g. the ignored rd field of CSRW).
	BitMasked BitClass = iota
	// BitWD flips change only a pure data immediate (ALU immediates,
	// shift amounts, LUI): the executed operation and the resources it
	// touches are unchanged, but the value computed is wrong.
	BitWD
	// BitWI flips change which operation executes.
	BitWI
	// BitWOI flips change which resource is touched: a register
	// specifier, a memory or branch offset, or a CSR index.
	BitWOI
	// BitTrap flips leave a word that no longer decodes; the hardware
	// raises an illegal-instruction trap.
	BitTrap
	NumBitClasses
)

var bitClassNames = [...]string{"masked", "WD", "WI", "WOI", "trap"}

func (c BitClass) String() string { return bitClassNames[c] }

// immSelectsData reports whether op's immediate is a pure data value
// (rather than an address offset, branch target or CSR index).
func immSelectsData(o Op) bool {
	switch o {
	case ADDI, SLLI, SLTI, SLTIU, XORI, SRLI, SRAI, ORI, ANDI, LUI:
		return true
	}
	return false
}

// FlipClass classifies the effect of flipping bit (0..31) of the valid
// instruction word w under ISA variant is, from the encoding alone. If
// w itself does not decode, every flip is reported as BitTrap (the
// word traps whether or not the flipped bit repairs it — conservative,
// but undecodable words do not appear in generated code).
func FlipClass(w uint32, bit int, is ISA) BitClass {
	orig, ok := Decode(w, is)
	if !ok {
		return BitTrap
	}
	flipped, ok := Decode(w^(1<<uint(bit)), is)
	if !ok {
		return BitTrap
	}
	switch {
	case flipped.Op != orig.Op:
		return BitWI
	case flipped.Rd != orig.Rd, flipped.Rs1 != orig.Rs1, flipped.Rs2 != orig.Rs2:
		return BitWOI
	case flipped.Imm != orig.Imm:
		if immSelectsData(orig.Op) {
			return BitWD
		}
		return BitWOI
	default:
		return BitMasked
	}
}

// OperationMask returns the mask of operation-field bits for a valid
// instruction word w: flipping a bit under the mask executes a different
// operation (WI), flipping any other bit changes an operand (WOI).
func OperationMask(w uint32, is ISA) uint32 {
	const (
		opcF3   = 0x0000707F
		opcF3F7 = 0xFE00707F
		opcOnly = 0x0000007F
	)
	in, ok := Decode(w, is)
	if !ok {
		return opcOnly
	}
	switch in.Op.Fmt() {
	case FmtR:
		return opcF3F7
	case FmtI, FmtS, FmtB:
		return opcF3
	case FmtU, FmtJ:
		return opcOnly
	default: // system: the immediate selects the operation/CSR
		return 0xFFF0707F
	}
}
