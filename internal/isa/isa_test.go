package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestISAProperties(t *testing.T) {
	if VSA32.NumRegs() != 16 || VSA64.NumRegs() != 32 {
		t.Fatalf("register counts: %d, %d", VSA32.NumRegs(), VSA64.NumRegs())
	}
	if VSA32.XLen() != 32 || VSA64.XLen() != 64 {
		t.Fatalf("xlen: %d, %d", VSA32.XLen(), VSA64.XLen())
	}
	if VSA32.Mask() != 0xFFFFFFFF || VSA64.Mask() != ^uint64(0) {
		t.Fatal("masks")
	}
	if got := VSA32.SignExtend(0x80000000); got != 0xFFFFFFFF80000000 {
		t.Fatalf("sign extend: %#x", got)
	}
	if got := VSA32.SignExtend(0x7FFFFFFF); got != 0x7FFFFFFF {
		t.Fatalf("sign extend positive: %#x", got)
	}
	if VSA64.SignExtend(0x8000000000000000) != 0x8000000000000000 {
		t.Fatal("vsa64 sign extend must be identity")
	}
}

func TestRegAndCauseNames(t *testing.T) {
	if RegName(RegZero) != "zero" || RegName(RegSP) != "sp" || RegName(9) != "r9" {
		t.Fatal("register names")
	}
	if CauseName(CauseIllegal) != "illegal-instruction" {
		t.Fatal("cause name")
	}
	if CsrName(CsrSEPC) != "sepc" || CsrName(99) != "csr99" {
		t.Fatal("csr names")
	}
}

// sampleInstr generates a random valid instruction for the given ISA.
func sampleInstr(r *rand.Rand, is ISA) Instr {
	nr := is.NumRegs()
	for {
		op := Op(r.Intn(int(NumOps)))
		if is == VSA32 && (op == LD || op == SD || op == LWU) {
			continue
		}
		in := Instr{Op: op}
		if op.WritesRd() {
			in.Rd = r.Intn(nr)
		}
		if op.ReadsRs1() {
			in.Rs1 = r.Intn(nr)
		}
		if op.ReadsRs2() {
			in.Rs2 = r.Intn(nr)
		}
		switch op.Fmt() {
		case FmtI:
			if op == SLLI || op == SRLI || op == SRAI {
				in.Imm = int64(r.Intn(is.XLen()))
			} else {
				in.Imm = int64(r.Intn(4096) - 2048)
			}
		case FmtS:
			in.Imm = int64(r.Intn(4096) - 2048)
		case FmtB:
			in.Imm = int64(r.Intn(4096)-2048) << 2
		case FmtU:
			in.Imm = int64(r.Intn(1<<20)-(1<<19)) << 12
		case FmtJ:
			in.Imm = int64(r.Intn(1<<20)-(1<<19)) << 2
		case FmtSys:
			if op == CSRW || op == CSRR {
				in.Imm = int64(r.Intn(NumCSRs))
			}
		}
		return in
	}
}

// TestEncodeDecodeRoundTrip is the core property test: every valid
// instruction must survive an encode/decode round trip unchanged.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, is := range []ISA{VSA32, VSA64} {
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 20000; i++ {
			want := sampleInstr(r, is)
			w := Encode(want)
			got, ok := Decode(w, is)
			if !ok {
				t.Fatalf("%v: encoded %v to %#08x which does not decode", is, want, w)
			}
			got.Raw = 0
			if got != want {
				t.Fatalf("%v: round trip %v -> %#08x -> %v", is, want, w, got)
			}
		}
	}
}

// TestDecodeTotal checks that Decode never panics and is deterministic on
// arbitrary words (faulty instruction fetches produce arbitrary bits).
func TestDecodeTotal(t *testing.T) {
	f := func(w uint32) bool {
		a, okA := Decode(w, VSA32)
		b, okB := Decode(w, VSA32)
		if okA != okB || (okA && a != b) {
			return false
		}
		c, okC := Decode(w, VSA64)
		_ = c
		// Anything decodable under VSA32 must be decodable under VSA64:
		// VSA64 strictly extends the register file and operation set.
		if okA && !okC {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeIllegalCases(t *testing.T) {
	cases := []struct {
		name string
		w    uint32
		is   ISA
	}{
		{"all zeros", 0x00000000, VSA64},
		{"all ones", 0xFFFFFFFF, VSA64},
		{"ld on vsa32", Encode(Instr{Op: LD, Rd: 1, Rs1: 2}), VSA32},
		{"sd on vsa32", Encode(Instr{Op: SD, Rs1: 2, Rs2: 3}), VSA32},
		{"reg 16 rd on vsa32", Encode(Instr{Op: ADD, Rd: 16, Rs1: 1, Rs2: 2}), VSA32},
		{"reg 31 rs1 on vsa32", Encode(Instr{Op: ADD, Rd: 1, Rs1: 31, Rs2: 2}), VSA32},
		{"shift 40 on vsa32", Encode(Instr{Op: SLLI, Rd: 1, Rs1: 1, Imm: 40}), VSA32},
		{"bad csr", 0x7FF09073 | uint32(NumCSRs)<<20, VSA64},
	}
	for _, c := range cases {
		if _, ok := Decode(c.w, c.is); ok {
			t.Errorf("%s: %#08x should be illegal on %v", c.name, c.w, c.is)
		}
	}
}

func TestDecodeLegalOnOtherVariant(t *testing.T) {
	// The same words that are illegal on VSA32 for width reasons decode
	// on VSA64.
	for _, in := range []Instr{
		{Op: LD, Rd: 1, Rs1: 2},
		{Op: SD, Rs1: 2, Rs2: 3},
		{Op: ADD, Rd: 16, Rs1: 17, Rs2: 31},
		{Op: SLLI, Rd: 1, Rs1: 1, Imm: 40},
	} {
		if _, ok := Decode(Encode(in), VSA64); !ok {
			t.Errorf("%v should decode on VSA64", in)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !LW.IsLoad() || LW.IsStore() || !SW.IsStore() || SW.IsLoad() {
		t.Fatal("load/store predicates")
	}
	if !BEQ.IsBranch() || BEQ.WritesRd() || !JAL.IsJump() || !JALR.IsJump() {
		t.Fatal("control flow predicates")
	}
	if SW.WritesRd() || !ADD.WritesRd() || !JAL.WritesRd() {
		t.Fatal("WritesRd")
	}
	if JAL.ReadsRs1() || !JALR.ReadsRs1() || LUI.ReadsRs1() {
		t.Fatal("ReadsRs1")
	}
	if !ADD.ReadsRs2() || ADDI.ReadsRs2() || !SW.ReadsRs2() || !BEQ.ReadsRs2() {
		t.Fatal("ReadsRs2")
	}
	if LB.MemBytes() != 1 || LH.MemBytes() != 2 || LW.MemBytes() != 4 || SD.MemBytes() != 8 || ADD.MemBytes() != 0 {
		t.Fatal("MemBytes")
	}
	if !LBU.MemUnsigned() || LB.MemUnsigned() {
		t.Fatal("MemUnsigned")
	}
}

// TestOperationMaskClassification: flipping a bit inside OperationMask
// must either change the executed operation or make the word illegal;
// flipping outside must never change the operation (only operands).
func TestOperationMaskClassification(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, is := range []ISA{VSA32, VSA64} {
		for i := 0; i < 4000; i++ {
			in := sampleInstr(r, is)
			w := Encode(in)
			mask := OperationMask(w, is)
			bit := uint(r.Intn(32))
			fw := w ^ (1 << bit)
			fin, ok := Decode(fw, is)
			if mask&(1<<bit) == 0 {
				// Operand bit: if still decodable, the operation is
				// one of a few aliased pairs at most; it must not
				// change format.
				if ok && fin.Op != in.Op {
					// Allowed aliases: shift-amount bits can toggle
					// SRLI<->SRAI via imm bit 10, and CSR index is an
					// operand that selects nothing else.
					aliased := (in.Op == SRLI && fin.Op == SRAI) || (in.Op == SRAI && fin.Op == SRLI)
					if !aliased {
						t.Fatalf("%v: operand flip changed op: %v -> %v (bit %d, %#08x)", is, in.Op, fin.Op, bit, w)
					}
				}
			}
		}
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADD, Rd: 4, Rs1: 5, Rs2: 6}, "add r4, r5, r6"},
		{Instr{Op: ADDI, Rd: 4, Rs1: 2, Imm: -8}, "addi r4, sp, -8"},
		{Instr{Op: LW, Rd: 4, Rs1: 2, Imm: 16}, "lw r4, 16(sp)"},
		{Instr{Op: SW, Rs1: 2, Rs2: 4, Imm: 16}, "sw r4, 16(sp)"},
		{Instr{Op: BEQ, Rs1: 4, Rs2: 5, Imm: 64}, "beq r4, r5, 64"},
		{Instr{Op: JAL, Rd: 1, Imm: 2048}, "jal ra, 2048"},
		{Instr{Op: JALR, Rd: 1, Rs1: 4, Imm: 0}, "jalr ra, 0(r4)"},
		{Instr{Op: LUI, Rd: 4, Imm: 0x10000}, "lui r4, 0x10000"},
		{Instr{Op: ECALL}, "ecall"},
		{Instr{Op: CSRW, Rs1: 4, Imm: CsrTVEC}, "csrw tvec, r4"},
		{Instr{Op: CSRR, Rd: 4, Imm: CsrSEPC}, "csrr r4, sepc"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm %v: got %q want %q", c.in.Op, got, c.want)
		}
		// Round-trip through binary as well.
		if got := Disasm(Encode(c.in), VSA64); got != c.want {
			t.Errorf("Disasm(%v): got %q want %q", c.in.Op, got, c.want)
		}
	}
	if got := Disasm(0, VSA64); got != ".word 0x000000 (illegal)" && got != ".word 0x00000000 (illegal)" {
		// %#08x of 0 renders as 0x000000; accept both spellings.
		t.Errorf("illegal disasm: %q", got)
	}
}
