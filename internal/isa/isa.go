// Package isa defines the VSA instruction set architecture in its two
// variants: VSA32 (32-bit words, 16 architectural registers) and VSA64
// (64-bit words, 32 architectural registers). VSA is the reproduction
// stand-in for the paper's two Arm ISAs (Armv7 and Armv8): what the study
// needs from an ISA pair is that the same source program compiles to
// binaries with different register counts, word widths and instruction
// mixes, and that instruction encodings cleanly separate operation bits
// (whose corruption yields the Wrong Instruction FPM) from operand bits
// (Wrong Operand/Immediate FPM).
//
// Instructions are fixed 32-bit words with a RISC-style field layout.
package isa

import "fmt"

// ISA selects one of the two architecture variants.
type ISA int

const (
	// VSA32 is the 32-bit variant: 16 architectural registers, 32-bit
	// integer operations and addresses (the Armv7 stand-in).
	VSA32 ISA = iota
	// VSA64 is the 64-bit variant: 32 architectural registers, 64-bit
	// integer operations (the Armv8 stand-in).
	VSA64
)

func (i ISA) String() string {
	switch i {
	case VSA32:
		return "VSA32"
	case VSA64:
		return "VSA64"
	default:
		return fmt.Sprintf("ISA(%d)", int(i))
	}
}

// NumRegs returns the number of architectural integer registers.
func (i ISA) NumRegs() int {
	if i == VSA32 {
		return 16
	}
	return 32
}

// XLen returns the register width in bits.
func (i ISA) XLen() int {
	if i == VSA32 {
		return 32
	}
	return 64
}

// WordBytes returns the natural word size in bytes.
func (i ISA) WordBytes() int { return i.XLen() / 8 }

// Mask returns the value mask for the register width.
func (i ISA) Mask() uint64 {
	if i == VSA32 {
		return 0xFFFFFFFF
	}
	return ^uint64(0)
}

// SignExtend sign-extends v from the ISA's register width to 64 bits.
// For VSA64 this is the identity.
func (i ISA) SignExtend(v uint64) uint64 {
	if i == VSA32 {
		return uint64(int64(int32(uint32(v))))
	}
	return v
}

// Architectural register conventions, shared by both variants. All
// registers except Zero and SP are caller-saved in the VSA ABI, which the
// kernel preserves in full across traps.
const (
	RegZero = 0 // hardwired zero
	RegRA   = 1 // return address (link)
	RegSP   = 2 // stack pointer
	RegTMP  = 3 // assembler/kernel scratch
	RegA0   = 4 // first argument / return value / syscall number
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
)

// RegName returns the conventional assembly name of register r.
func RegName(r int) string {
	switch r {
	case RegZero:
		return "zero"
	case RegRA:
		return "ra"
	case RegSP:
		return "sp"
	case RegTMP:
		return "tp"
	}
	return fmt.Sprintf("r%d", r)
}

// Control and status registers (CSRs) used by the trap architecture.
const (
	CsrSEPC   = 0 // saved PC at trap entry; ERET target
	CsrSCAUSE = 1 // trap cause
	CsrSTVAL  = 2 // trap value (e.g. faulting address or opcode word)
	CsrTVEC   = 3 // trap vector: PC loaded on any trap
	CsrKSP    = 4 // kernel scratch (kernel stack pointer save slot)
	CsrUSP    = 5 // user stack pointer save slot during kernel execution
	NumCSRs   = 6
)

// CsrName returns the name of CSR c.
func CsrName(c int) string {
	switch c {
	case CsrSEPC:
		return "sepc"
	case CsrSCAUSE:
		return "scause"
	case CsrSTVAL:
		return "stval"
	case CsrTVEC:
		return "tvec"
	case CsrKSP:
		return "ksp"
	case CsrUSP:
		return "usp"
	}
	return fmt.Sprintf("csr%d", c)
}

// Trap causes, recorded in SCAUSE when control transfers to TVEC.
const (
	CauseIllegal       = 2  // illegal or undecodable instruction
	CauseMisalignFetch = 3  // PC not 4-byte aligned
	CauseMisalignLoad  = 4  // misaligned data load
	CauseMisalignStore = 6  // misaligned data store
	CauseLoadFault     = 5  // load access outside valid memory
	CauseStoreFault    = 7  // store access outside valid memory
	CauseSyscall       = 8  // ECALL from user mode
	CauseFetchFault    = 12 // instruction fetch outside valid memory
	CausePrivilege     = 13 // user-mode access to a privileged resource
)

// CauseName returns a human-readable name for a trap cause.
func CauseName(c uint64) string {
	switch c {
	case CauseIllegal:
		return "illegal-instruction"
	case CauseMisalignFetch:
		return "misaligned-fetch"
	case CauseMisalignLoad:
		return "misaligned-load"
	case CauseMisalignStore:
		return "misaligned-store"
	case CauseLoadFault:
		return "load-access-fault"
	case CauseStoreFault:
		return "store-access-fault"
	case CauseSyscall:
		return "syscall"
	case CauseFetchFault:
		return "fetch-access-fault"
	case CausePrivilege:
		return "privilege-violation"
	}
	return fmt.Sprintf("cause(%d)", c)
}

// System call numbers (passed in RegA0).
const (
	SysExit   = 1 // exit(code): clean program termination
	SysWrite  = 2 // write(buf, len): emit bytes to the output device
	SysRead   = 3 // read(buf, len): read from the input device (returns 0)
	SysDetect = 4 // detect(code): software fault-tolerance detection signal
	SysBrk    = 5 // brk(addr): extend the heap; returns the new break
)

// Mode is the processor privilege mode.
type Mode int

const (
	// User mode runs the application.
	User Mode = iota
	// Kernel mode runs trap handlers and system calls.
	Kernel
)

func (m Mode) String() string {
	if m == Kernel {
		return "kernel"
	}
	return "user"
}
