// Package dev implements the platform devices: the memory-mapped output
// DMA engine, the halt/panic/detect ports and a debug console. The DMA
// engine is the load-bearing device for the paper's Escaped (ESC) fault
// propagation model: it drains output buffers straight out of the memory
// system without the bytes ever re-entering the pipeline, so a fault
// sitting in a cached output byte corrupts the program output while
// remaining invisible to every software-level measurement.
package dev

import "vulnstack/internal/mem"

// Device register offsets from mem.MMIOBase. All registers are 64-bit
// and accessible only in kernel mode (the CPU models enforce the mode).
const (
	RegHalt    = 0x00 // write exit code: clean termination
	RegDMASrc  = 0x08 // DMA source physical address
	RegDMALen  = 0x10 // DMA length in bytes
	RegDMACtrl = 0x18 // write 1: transfer source range to the output sink
	RegDetect  = 0x20 // write: software fault-detection signal, halts run
	RegPanic   = 0x28 // write code: kernel panic, halts run
	RegPutc    = 0x30 // write byte: debug console
)

// HaltKind describes how a run terminated.
type HaltKind int

const (
	HaltNone     HaltKind = iota
	HaltClean             // exit() reached the halt port
	HaltPanic             // kernel panic port
	HaltDetected          // software fault-tolerance detection port
)

func (h HaltKind) String() string {
	switch h {
	case HaltClean:
		return "clean"
	case HaltPanic:
		return "panic"
	case HaltDetected:
		return "detected"
	default:
		return "running"
	}
}

// DMAReader supplies device-side memory reads. The functional emulator
// reads RAM directly; the microarchitectural model snoops its cache
// hierarchy so that dirty (possibly fault-corrupted) cached copies are
// what the device observes — the ESC propagation path.
type DMAReader interface {
	DMARead(addr uint64) (byte, bool)
	// DMAReadNotify is called once per transferred byte so fault
	// bookkeeping can classify escaped corruption. May be a no-op.
	DMAReadNotify(addr uint64)
}

// ramReader reads straight from RAM.
type ramReader struct{ m *mem.Memory }

func (r ramReader) DMARead(addr uint64) (byte, bool) { return r.m.Byte(addr) }
func (r ramReader) DMAReadNotify(uint64)             {}

// Bus couples RAM and devices for one simulated machine instance.
type Bus struct {
	Mem *mem.Memory
	// Reader performs device-side (DMA) memory reads. Defaults to a
	// direct RAM reader.
	Reader DMAReader

	// Out is the byte stream delivered by the DMA engine: the program's
	// observable output, compared against the golden run.
	Out []byte
	// Dbg collects debug console bytes (not part of program output).
	Dbg []byte

	Halt       HaltKind
	ExitCode   uint64
	DetectCode uint64
	PanicCode  uint64
	// DMAErr records a DMA transfer that touched unmapped memory (a
	// symptom of fault-corrupted pointers in the kernel I/O path).
	DMAErr bool

	dmaSrc uint64
	dmaLen uint64
}

// NewBus creates a bus over m with direct-RAM DMA reads.
func NewBus(m *mem.Memory) *Bus {
	b := &Bus{Mem: m}
	b.Reader = ramReader{m}
	return b
}

// Halted reports whether any halt port fired.
func (b *Bus) Halted() bool { return b.Halt != HaltNone }

// Load handles a kernel-mode MMIO load. All device registers read back
// as zero (status "ready"); out-of-window offsets fail.
func (b *Bus) Load(addr uint64, n int) (uint64, bool) {
	if !mem.IsMMIO(addr) || n <= 0 || addr+uint64(n) > mem.MMIOBase+mem.MMIOSize {
		return 0, false
	}
	return 0, true
}

// Store handles a kernel-mode MMIO store.
func (b *Bus) Store(addr uint64, n int, val uint64) bool {
	if !mem.IsMMIO(addr) || n <= 0 || addr+uint64(n) > mem.MMIOBase+mem.MMIOSize {
		return false
	}
	switch addr - mem.MMIOBase {
	case RegHalt:
		b.Halt, b.ExitCode = HaltClean, val
	case RegDMASrc:
		b.dmaSrc = val
	case RegDMALen:
		b.dmaLen = val
	case RegDMACtrl:
		if val&1 != 0 {
			b.runDMA()
		}
	case RegDetect:
		b.Halt, b.DetectCode = HaltDetected, val
	case RegPanic:
		b.Halt, b.PanicCode = HaltPanic, val
	case RegPutc:
		b.Dbg = append(b.Dbg, byte(val))
	default:
		// Writes to undefined registers are ignored (fault tolerance of
		// the device against corrupted kernel stores).
	}
	return true
}

// runDMA transfers the programmed range to the output sink, reading
// through the model-supplied Reader so cached corruption escapes.
func (b *Bus) runDMA() {
	const maxDMA = 1 << 20 // device-enforced cap against corrupted lengths
	n := b.dmaLen
	if n > maxDMA {
		n = maxDMA
		b.DMAErr = true
	}
	for i := uint64(0); i < n; i++ {
		c, ok := b.Reader.DMARead(b.dmaSrc + i)
		if !ok {
			b.DMAErr = true
			return
		}
		b.Reader.DMAReadNotify(b.dmaSrc + i)
		b.Out = append(b.Out, c)
	}
}

// Clone deep-copies the bus and its RAM (device state included, so a
// clone taken mid-way through DMA programming is faithful). The clone's
// Reader reverts to direct RAM; callers attach their own snooper.
func (b *Bus) Clone() *Bus {
	nb := &Bus{
		Mem:        b.Mem.Clone(),
		Out:        append([]byte(nil), b.Out...),
		Dbg:        append([]byte(nil), b.Dbg...),
		Halt:       b.Halt,
		ExitCode:   b.ExitCode,
		DetectCode: b.DetectCode,
		PanicCode:  b.PanicCode,
		DMAErr:     b.DMAErr,
		dmaSrc:     b.dmaSrc,
		dmaLen:     b.dmaLen,
	}
	nb.Reader = ramReader{nb.Mem}
	return nb
}

// RestoreFrom overwrites the device state (halt ports, DMA registers,
// output buffers) from src without allocating, for reusable campaign
// arenas. The RAM (Mem) and the Reader are deliberately left alone:
// the caller restores its own memory (possibly dirty-page-wise) and
// keeps its own snooper attached.
func (b *Bus) RestoreFrom(src *Bus) {
	b.Out = append(b.Out[:0], src.Out...)
	b.Dbg = append(b.Dbg[:0], src.Dbg...)
	b.Halt, b.ExitCode, b.DetectCode, b.PanicCode = src.Halt, src.ExitCode, src.DetectCode, src.PanicCode
	b.DMAErr = src.DMAErr
	b.dmaSrc, b.dmaLen = src.dmaSrc, src.dmaLen
}

// CloneDevice copies the device-side state only — no RAM, no Reader: a
// lightweight snapshot for the early-stop engines' boundary comparison
// (see StateEqual). The result must not be used as a live bus.
func (b *Bus) CloneDevice() *Bus {
	return &Bus{
		Out:        append([]byte(nil), b.Out...),
		Dbg:        append([]byte(nil), b.Dbg...),
		Halt:       b.Halt,
		ExitCode:   b.ExitCode,
		DetectCode: b.DetectCode,
		PanicCode:  b.PanicCode,
		DMAErr:     b.DMAErr,
		dmaSrc:     b.dmaSrc,
		dmaLen:     b.dmaLen,
	}
}

// StateEqual reports whether the device-side state of two buses is
// identical: halt ports, DMA registers and error flag, and the full
// output and debug streams. RAM (Mem) and the Reader hook are excluded
// — memory equality is the caller's job (the early-stop engines compare
// it dirty-page-wise) and the Reader is an observer, not state.
func (b *Bus) StateEqual(o *Bus) bool {
	return b.Halt == o.Halt && b.ExitCode == o.ExitCode &&
		b.DetectCode == o.DetectCode && b.PanicCode == o.PanicCode &&
		b.DMAErr == o.DMAErr && b.dmaSrc == o.dmaSrc && b.dmaLen == o.dmaLen &&
		string(b.Out) == string(o.Out) && string(b.Dbg) == string(o.Dbg)
}

// Reset clears device state for a fresh run over the same RAM object.
func (b *Bus) Reset() {
	b.Out = b.Out[:0]
	b.Dbg = b.Dbg[:0]
	b.Halt, b.ExitCode, b.DetectCode, b.PanicCode = HaltNone, 0, 0, 0
	b.DMAErr = false
	b.dmaSrc, b.dmaLen = 0, 0
}
