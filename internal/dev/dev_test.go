package dev

import (
	"bytes"
	"testing"

	"vulnstack/internal/mem"
)

func newBus(t *testing.T) *Bus {
	t.Helper()
	return NewBus(mem.New(1 << 16))
}

func TestHaltPorts(t *testing.T) {
	b := newBus(t)
	if b.Halted() {
		t.Fatal("fresh bus must not be halted")
	}
	b.Store(mem.MMIOBase+RegHalt, 8, 42)
	if b.Halt != HaltClean || b.ExitCode != 42 || !b.Halted() {
		t.Fatalf("halt: %v %d", b.Halt, b.ExitCode)
	}

	b = newBus(t)
	b.Store(mem.MMIOBase+RegDetect, 8, 7)
	if b.Halt != HaltDetected || b.DetectCode != 7 {
		t.Fatal("detect port")
	}

	b = newBus(t)
	b.Store(mem.MMIOBase+RegPanic, 8, 2)
	if b.Halt != HaltPanic || b.PanicCode != 2 {
		t.Fatal("panic port")
	}
}

func TestDMATransfer(t *testing.T) {
	b := newBus(t)
	payload := []byte("escaped fault path")
	b.Mem.WriteBytes(0x2000, payload)
	b.Store(mem.MMIOBase+RegDMASrc, 8, 0x2000)
	b.Store(mem.MMIOBase+RegDMALen, 8, uint64(len(payload)))
	b.Store(mem.MMIOBase+RegDMACtrl, 8, 1)
	if !bytes.Equal(b.Out, payload) {
		t.Fatalf("DMA out: %q", b.Out)
	}
	if b.DMAErr {
		t.Fatal("unexpected DMA error")
	}
	// Control writes with bit 0 clear do nothing.
	b.Store(mem.MMIOBase+RegDMACtrl, 8, 2)
	if len(b.Out) != len(payload) {
		t.Fatal("ctrl=2 must not trigger")
	}
}

func TestDMAInvalidRange(t *testing.T) {
	b := newBus(t)
	b.Store(mem.MMIOBase+RegDMASrc, 8, 0x10) // guard page
	b.Store(mem.MMIOBase+RegDMALen, 8, 8)
	b.Store(mem.MMIOBase+RegDMACtrl, 8, 1)
	if !b.DMAErr {
		t.Fatal("DMA from guard page must error")
	}
	b = newBus(t)
	b.Store(mem.MMIOBase+RegDMASrc, 8, 0x2000)
	b.Store(mem.MMIOBase+RegDMALen, 8, 1<<30) // corrupted length
	b.Store(mem.MMIOBase+RegDMACtrl, 8, 1)
	if !b.DMAErr {
		t.Fatal("oversized DMA must flag error")
	}
}

func TestMMIOWindow(t *testing.T) {
	b := newBus(t)
	if b.Store(mem.MMIOBase-8, 8, 1) {
		t.Fatal("store below window")
	}
	if b.Store(mem.MMIOBase+mem.MMIOSize, 8, 1) {
		t.Fatal("store above window")
	}
	if _, ok := b.Load(mem.MMIOBase+RegDMACtrl, 8); !ok {
		t.Fatal("in-window load must succeed")
	}
	v, _ := b.Load(mem.MMIOBase+RegDMACtrl, 8)
	if v != 0 {
		t.Fatal("device registers read as zero")
	}
	// Unknown register stores are tolerated.
	if !b.Store(mem.MMIOBase+0x40, 8, 1) {
		t.Fatal("unknown register store")
	}
}

func TestDebugConsoleAndReset(t *testing.T) {
	b := newBus(t)
	b.Store(mem.MMIOBase+RegPutc, 1, 'x')
	b.Store(mem.MMIOBase+RegPutc, 1, 'y')
	if string(b.Dbg) != "xy" {
		t.Fatalf("dbg: %q", b.Dbg)
	}
	b.Store(mem.MMIOBase+RegHalt, 8, 1)
	b.Reset()
	if b.Halted() || len(b.Dbg) != 0 || len(b.Out) != 0 {
		t.Fatal("reset must clear state")
	}
}

func TestHaltKindString(t *testing.T) {
	for k, want := range map[HaltKind]string{HaltNone: "running", HaltClean: "clean", HaltPanic: "panic", HaltDetected: "detected"} {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}
