package dev

import (
	"encoding/binary"
	"fmt"
)

// AppendDevice appends a canonical encoding of the device-side state —
// exactly the StateEqual comparison set (halt ports, DMA registers and
// error flag, output and debug streams) — to dst and returns the
// result. Canonical means bytes-equal encodings ⟺ StateEqual buses, the
// property the checkpoint chain's chunk-wise convergence comparison
// relies on. Fixed-width fields come first so their chunk offsets are
// stable across checkpoints; the variable-length streams trail.
func (b *Bus) AppendDevice(dst []byte) []byte {
	var fixed [49]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(b.Halt))
	binary.LittleEndian.PutUint64(fixed[8:], b.ExitCode)
	binary.LittleEndian.PutUint64(fixed[16:], b.DetectCode)
	binary.LittleEndian.PutUint64(fixed[24:], b.PanicCode)
	binary.LittleEndian.PutUint64(fixed[32:], b.dmaSrc)
	binary.LittleEndian.PutUint64(fixed[40:], b.dmaLen)
	if b.DMAErr {
		fixed[48] = 1
	}
	dst = append(dst, fixed[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(b.Out)))
	dst = append(dst, b.Out...)
	dst = binary.AppendUvarint(dst, uint64(len(b.Dbg)))
	dst = append(dst, b.Dbg...)
	return dst
}

// SetDevice decodes an AppendDevice encoding into this bus, replacing
// its device-side state (RAM and Reader untouched, mirroring
// RestoreFrom). It returns the remaining bytes after the encoding.
func (b *Bus) SetDevice(data []byte) ([]byte, error) {
	if len(data) < 49 {
		return nil, fmt.Errorf("dev: device state truncated (%d bytes)", len(data))
	}
	b.Halt = HaltKind(binary.LittleEndian.Uint64(data[0:]))
	b.ExitCode = binary.LittleEndian.Uint64(data[8:])
	b.DetectCode = binary.LittleEndian.Uint64(data[16:])
	b.PanicCode = binary.LittleEndian.Uint64(data[24:])
	b.dmaSrc = binary.LittleEndian.Uint64(data[32:])
	b.dmaLen = binary.LittleEndian.Uint64(data[40:])
	b.DMAErr = data[48] != 0
	data = data[49:]
	for _, dst := range []*[]byte{&b.Out, &b.Dbg} {
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return nil, fmt.Errorf("dev: device stream truncated")
		}
		*dst = append((*dst)[:0], data[n:n+int(l)]...)
		data = data[n+int(l):]
	}
	return data, nil
}
