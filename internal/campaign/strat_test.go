package campaign

import (
	"reflect"
	"testing"

	"vulnstack/internal/results"
	"vulnstack/internal/vuln"
)

func stratTally(n, sdc int) results.Tally {
	var t results.Tally
	for i := 0; i < n; i++ {
		if i < sdc {
			t.AddOutcome(results.SDC)
		} else {
			t.AddOutcome(results.Masked)
		}
	}
	return t
}

func TestStratPlanPilotClampsToPoolSize(t *testing.T) {
	p := StratPlan{Sizes: []int{1000, 10, 0}, N0: 24, CI: 0.05, Confidence: 0.99}
	got := p.Pilot()
	want := []int{24, 10, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Pilot() = %v, want %v", got, want)
	}
	if def := (StratPlan{Sizes: []int{1000}}).Pilot()[0]; def != DefaultPilot {
		t.Fatalf("default pilot = %d, want %d", def, DefaultPilot)
	}
}

func TestStratPlanNextStopsWhenBoundMet(t *testing.T) {
	// One big stratum, heavily sampled and all-masked: the half-width
	// collapses to near the pool term, well under a loose 10% target.
	p := StratPlan{Sizes: []int{20000}, CI: 0.10, Confidence: 0.99}
	tallies := []results.Tally{stratTally(5000, 0)}
	strata := Strata(p.Sizes, tallies)
	if hw := vuln.StratifiedHalfWidth(strata, 0.99); hw > p.CI {
		t.Fatalf("test setup: half-width %.4f not under target %.4f", hw, p.CI)
	}
	if got := p.Next(tallies); got != nil {
		t.Fatalf("Next() = %v, want nil once bound met", got)
	}
}

func TestStratPlanNextStopsWhenPoolExhausted(t *testing.T) {
	// Tiny fully-enumerated pool, impossible target: nothing left to
	// sample, so the plan must stop rather than loop.
	p := StratPlan{Sizes: []int{8, 4}, CI: 1e-6, Confidence: 0.99}
	tallies := []results.Tally{stratTally(8, 4), stratTally(4, 0)}
	if got := p.Next(tallies); got != nil {
		t.Fatalf("Next() = %v, want nil on exhausted pool", got)
	}
}

func TestStratPlanNextFavorsHighVarianceStrata(t *testing.T) {
	// Equal-size strata: one all-masked (near-zero variance), one with a
	// 50/50 outcome split (maximal variance). Neyman allocation must
	// send more samples to the second.
	p := StratPlan{Sizes: []int{10000, 10000}, CI: 0.01, Confidence: 0.99}
	tallies := []results.Tally{stratTally(100, 0), stratTally(100, 50)}
	got := p.Next(tallies)
	if got == nil {
		t.Fatal("Next() = nil, want a round")
	}
	if got[1] <= got[0] {
		t.Fatalf("allocation %v does not favor the high-variance stratum", got)
	}
}

func TestStratPlanNextDeterministicAndCapped(t *testing.T) {
	p := StratPlan{Sizes: []int{5000, 300, 40}, CI: 0.02, Confidence: 0.99, MinRound: 32}
	tallies := []results.Tally{stratTally(24, 3), stratTally(24, 12), stratTally(24, 1)}
	a := p.Next(tallies)
	b := p.Next(tallies)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Next not deterministic: %v vs %v", a, b)
	}
	if a == nil {
		t.Fatal("Next() = nil, want a round")
	}
	total, sampled := 0, 0
	for i, n := range a {
		if n < 0 {
			t.Fatalf("negative allocation %v", a)
		}
		if n > p.Sizes[i]-tallies[i].N {
			t.Fatalf("stratum %d allocated %d past its remaining pool %d", i, n, p.Sizes[i]-tallies[i].N)
		}
		total += n
		sampled += tallies[i].N
	}
	if total < p.MinRound {
		t.Fatalf("round %d below MinRound %d with pool to spare", total, p.MinRound)
	}
	if total > sampled {
		t.Fatalf("round %d more than doubles current total %d", total, sampled)
	}
}

func TestStratPlanConvergesUnderSimulation(t *testing.T) {
	// Drive the plan loop against a synthetic ground truth: each round's
	// new samples land in proportion p_h of SDC, deterministically (the
	// i-th sample of stratum h is SDC iff i*p_h crosses an integer).
	// The loop must terminate with the bound met before exhausting the
	// pool, and the reweighted estimate must land near truth.
	sizes := []int{12000, 6000, 2000}
	probs := []float64{0.02, 0.40, 0.75}
	p := StratPlan{Sizes: sizes, CI: 0.03, Confidence: 0.99}

	counts := p.Pilot()
	sampled := make([]int, len(sizes))
	tallies := make([]results.Tally, len(sizes))
	rounds := 0
	for counts != nil {
		rounds++
		if rounds > 100 {
			t.Fatal("plan failed to converge in 100 rounds")
		}
		for h, c := range counts {
			for i := 0; i < c; i++ {
				k := sampled[h] + i
				if int(float64(k+1)*probs[h]) > int(float64(k)*probs[h]) {
					tallies[h].AddOutcome(results.SDC)
				} else {
					tallies[h].AddOutcome(results.Masked)
				}
			}
			sampled[h] += c
		}
		counts = p.Next(tallies)
	}
	strata := Strata(sizes, tallies)
	if hw := vuln.StratifiedHalfWidth(strata, 0.99); hw > p.CI {
		total := 0
		for _, n := range sampled {
			total += n
		}
		if total < sizes[0]+sizes[1]+sizes[2] {
			t.Fatalf("stopped with half-width %.4f > target %.4f and pool remaining", hw, p.CI)
		}
	}
	est := vuln.StratifiedSplit(strata).SDC
	truth := 0.0
	m := 0
	for h, s := range sizes {
		truth += float64(s) * probs[h]
		m += s
	}
	truth /= float64(m)
	if d := est - truth; d < -0.05 || d > 0.05 {
		t.Fatalf("estimate %.4f far from truth %.4f", est, truth)
	}
}
