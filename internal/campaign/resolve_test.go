package campaign

import (
	"sync/atomic"
	"testing"
)

// TestRunResolvedNilResolverIsRun checks the degenerate contract: a nil
// resolver must behave exactly like Run.
func TestRunResolvedNilResolverIsRun(t *testing.T) {
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	var runs atomic.Int64
	res := RunResolved[int, int](jobs, 3, nil,
		func() int { return 0 },
		func(_ int, j Job) int { runs.Add(1); return j.Index * 2 },
		nil)
	if got := runs.Load(); got != 50 {
		t.Fatalf("%d runs, want 50", got)
	}
	for i, r := range res {
		if r != i*2 {
			t.Fatalf("res[%d] = %d, want %d", i, r, i*2)
		}
	}
}

// TestRunResolvedShortCircuits checks that resolved jobs never reach the
// injector, their results land at their indices, and the stream is
// bit-identical for every worker count.
func TestRunResolvedShortCircuits(t *testing.T) {
	jobs := make([]Job, 101)
	for i := range jobs {
		jobs[i] = Job{Index: i, Group: i % 4}
	}
	resolve := func(j Job) (int, bool) {
		if j.Index%3 == 0 {
			return -j.Index, true
		}
		return 0, false
	}
	mk := func(workers int) ([]int, int64) {
		var runs atomic.Int64
		res := RunResolved(jobs, workers, resolve,
			func() int { return 0 },
			func(_ int, j Job) int {
				runs.Add(1)
				if j.Index%3 == 0 {
					t.Errorf("resolved job %d reached the injector", j.Index)
				}
				return j.Index
			},
			nil)
		return res, runs.Load()
	}
	want, wantRuns := mk(1)
	if wantRuns != 67 { // 101 jobs minus the 34 multiples of 3
		t.Fatalf("%d injections, want 67", wantRuns)
	}
	for i, r := range want {
		if i%3 == 0 && r != -i {
			t.Fatalf("resolved res[%d] = %d, want %d", i, r, -i)
		}
		if i%3 != 0 && r != i {
			t.Fatalf("injected res[%d] = %d, want %d", i, r, i)
		}
	}
	for _, workers := range []int{2, 8} {
		got, runs := mk(workers)
		if runs != wantRuns {
			t.Fatalf("workers=%d: %d injections, want %d", workers, runs, wantRuns)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverges at %d", workers, i)
			}
		}
	}
}

// TestRunResolvedFullyResolvedSkipsState checks the headline property:
// when every job resolves statically, no worker state (emulator arena,
// interpreter, checkpoint restore) is ever prepared, and emit still
// fires exactly once per job in strictly increasing index order.
func TestRunResolvedFullyResolvedSkipsState(t *testing.T) {
	jobs := make([]Job, 33)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	var states atomic.Int64
	var seen []int
	res := RunResolved(jobs, 4,
		func(j Job) (int, bool) { return j.Index + 100, true },
		func() int { states.Add(1); return 0 },
		func(_ int, j Job) int { t.Errorf("job %d injected", j.Index); return 0 },
		func(i int, _ int) { seen = append(seen, i) })
	if n := states.Load(); n != 0 {
		t.Fatalf("%d worker states prepared for a fully resolved batch", n)
	}
	for i, r := range res {
		if r != i+100 {
			t.Fatalf("res[%d] = %d, want %d", i, r, i+100)
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("emit called %d times, want %d", len(seen), len(jobs))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("emit order %v, want strictly increasing", seen)
		}
	}
}

// TestRunResolvedEmitInterleaved checks resolved and injected results
// interleave in the emit stream exactly as a serial loop would have
// produced them.
func TestRunResolvedEmitInterleaved(t *testing.T) {
	jobs := make([]Job, 40)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	var seen []int
	RunResolved(jobs, 4,
		func(j Job) (int, bool) { return -j.Index, j.Index%2 == 0 },
		func() int { return 0 },
		func(_ int, j Job) int { return j.Index },
		func(i int, r int) {
			if i%2 == 0 && r != -i {
				t.Errorf("emit(%d) = %d, want resolved %d", i, r, -i)
			}
			if i%2 == 1 && r != i {
				t.Errorf("emit(%d) = %d, want injected %d", i, r, i)
			}
			seen = append(seen, i)
		})
	for i, v := range seen {
		if v != i {
			t.Fatalf("emit order %v, want strictly increasing", seen)
		}
	}
}
