// Adaptive stratified allocation: the planning half of stratified
// campaign mode. A StratPlan owns the per-stratum pool sizes and the
// target confidence bound; the driver alternates between injecting the
// counts the plan asks for and feeding the resulting tallies back,
// until Next returns nil (bound met, or pool exhausted).
//
// Everything here is a pure function of completed-round tallies, so a
// stratified campaign's record stream is a deterministic function of
// (seed, pool, partition, plan parameters): resuming from a store
// replays stored records through the same planner and lands on the
// identical stream — the stratified analogue of the uniform layers'
// pre-drawn-sequence top-up contract. No map iteration anywhere: strata
// are slices in fixed partition order.
package campaign

import (
	"math"

	"vulnstack/internal/results"
	"vulnstack/internal/vuln"
)

// Default plan parameters (used when the corresponding field is <= 0).
const (
	// DefaultPilot is the pilot sample count per stratum: enough for a
	// first variance estimate, small enough that tiny strata don't
	// dominate the pilot round.
	DefaultPilot = 24
	// DefaultMinRound is the smallest top-up round the plan will ask
	// for, amortizing per-round overhead (store appends, re-planning).
	DefaultMinRound = 32
)

// StratPlan plans sample allocation across the strata of a pre-drawn
// fault-site pool. Sizes is the per-stratum pool size M_h in partition
// order (fixed for the campaign's lifetime); CI and Confidence define
// the stopping rule: stop when the reweighted estimator's half-width
// (vuln.StratifiedHalfWidth) is <= CI at the given confidence.
type StratPlan struct {
	Sizes      []int
	N0         int     // pilot samples per stratum (DefaultPilot if <= 0)
	CI         float64 // target half-width
	Confidence float64 // e.g. 0.99
	MinRound   int     // smallest top-up round (DefaultMinRound if <= 0)
	// Resolved marks strata classified exhaustively by static analysis
	// (same order as Sizes; nil when no static pass ran): the plan
	// allocates them zero pilot samples and zero round samples — their
	// mass is already certain — and the estimator counts them as
	// zero-variance strata.
	Resolved []bool
}

func (p StratPlan) pilotN() int {
	if p.N0 <= 0 {
		return DefaultPilot
	}
	return p.N0
}

func (p StratPlan) minRound() int {
	if p.MinRound <= 0 {
		return DefaultMinRound
	}
	return p.MinRound
}

// Strata pairs pool sizes with their tallies for the vuln estimators.
// Callers must pass tallies in the same partition order as sizes.
func Strata(sizes []int, tallies []results.Tally) []vuln.Stratum {
	return StrataResolved(sizes, tallies, nil)
}

// StrataResolved is Strata with per-stratum static-resolution flags
// (nil resolved degenerates to Strata): resolved strata become
// zero-variance certain mass in the vuln estimators.
func StrataResolved(sizes []int, tallies []results.Tally, resolved []bool) []vuln.Stratum {
	strata := make([]vuln.Stratum, len(sizes))
	for i, m := range sizes {
		strata[i] = vuln.Stratum{Size: m}
		if i < len(tallies) {
			strata[i].Tally = tallies[i]
		}
		if i < len(resolved) {
			strata[i].Resolved = resolved[i]
		}
	}
	return strata
}

// Pilot is the first round: N0 samples per stratum, clamped to the
// stratum's pool size (tiny strata are simply enumerated). Statically
// resolved strata get zero pilot samples — their tally is already
// exhaustive.
func (p StratPlan) Pilot() []int {
	n0 := p.pilotN()
	counts := make([]int, len(p.Sizes))
	for i, m := range p.Sizes {
		if i < len(p.Resolved) && p.Resolved[i] {
			continue
		}
		counts[i] = n0
		if counts[i] > m {
			counts[i] = m
		}
	}
	return counts
}

// Next plans the next round from completed-round tallies: nil when the
// target half-width is met or the pool is exhausted, otherwise the
// per-stratum additional sample counts (same order as Sizes; entries
// may be zero).
//
// The round size comes from inverting the half-width formula with
// Neyman-optimal allocation: for total n split n_h ∝ W_h·s_h the
// stratified variance is (Σ W_h s_h)²/n, so the bound e needs
//
//	n* = z² (Σ W_h s_h)² / e_eff²,   e_eff² = e² − z²·poolTerm
//
// where poolTerm is the irreducible pool-vs-truth residual already
// charged by StratifiedHalfWidth (floored at e²/4 so a pool barely
// larger than needed still converges instead of demanding n* → ∞).
// The round is clamped to [MinRound, current total] — never more than
// doubling per round keeps early noisy variance estimates from
// over-committing — and apportioned ∝ W_h·s_h by largest remainder
// with deterministic tie-breaking, clipped to each stratum's remaining
// pool.
func (p StratPlan) Next(tallies []results.Tally) []int {
	strata := StrataResolved(p.Sizes, tallies, p.Resolved)
	if vuln.StratifiedHalfWidth(strata, p.Confidence) <= p.CI {
		return nil
	}
	total, m := 0, 0
	remaining := make([]int, len(strata))
	for i, s := range strata {
		total += s.Tally.N
		m += s.Size
		remaining[i] = s.Size - s.Tally.N
		if remaining[i] < 0 || s.Resolved {
			remaining[i] = 0
		}
	}
	totalRemaining := 0
	for _, r := range remaining {
		totalRemaining += r
	}
	if totalRemaining == 0 || m == 0 {
		return nil
	}

	z := vuln.Z(p.Confidence)
	score := make([]float64, len(strata)) // W_h * s_h
	sumScore := 0.0
	for i, s := range strata {
		score[i] = float64(s.Size) / float64(m) * vuln.StratumDev(s)
		sumScore += score[i]
	}
	eEff2 := p.CI*p.CI - z*z*poolTerm(strata, m)
	if floor := 0.25 * p.CI * p.CI; eEff2 < floor {
		eEff2 = floor
	}
	nStar := int(math.Ceil(z * z * sumScore * sumScore / eEff2))

	round := nStar - total
	if round < p.minRound() {
		round = p.minRound()
	}
	if total > 0 && round > total {
		round = total
	}
	if round > totalRemaining {
		round = totalRemaining
	}
	return apportion(round, score, remaining)
}

// poolTerm is the largest per-outcome pool-vs-truth residual
// p̃(1-p̃)/M of the current pooled estimate — the same term
// StratifiedHalfWidth charges, recomputed here so the allocator solves
// for the part of the bound that sampling can actually shrink.
func poolTerm(strata []vuln.Stratum, m int) float64 {
	pooled := vuln.StratifiedSplit(strata)
	worst := 0.0
	for _, frac := range [...]float64{pooled.Masked, pooled.SDC, pooled.Crash, pooled.Detected} {
		p := (frac*float64(m) + 0.5) / (float64(m) + 1)
		if v := p * (1 - p) / float64(m); v > worst {
			worst = v
		}
	}
	return worst
}

// apportion splits a round of n samples across strata proportionally to
// score, clipped to each stratum's remaining pool. Deterministic: floor
// shares first, then leftovers one at a time to the stratum with the
// largest score among those with capacity (ties to the lowest index).
func apportion(n int, score []float64, remaining []int) []int {
	alloc := make([]int, len(score))
	for n > 0 {
		sum := 0.0
		for i, sc := range score {
			if alloc[i] < remaining[i] {
				sum += sc
			}
		}
		assigned := 0
		if sum > 0 {
			for i, sc := range score {
				room := remaining[i] - alloc[i]
				if room <= 0 {
					continue
				}
				share := int(math.Floor(float64(n) * sc / sum))
				if share > room {
					share = room
				}
				alloc[i] += share
				assigned += share
			}
		}
		if assigned == 0 {
			// Floor shares all rounded to zero (or all scores zero):
			// hand one sample to the best-scoring stratum with
			// capacity, lowest index on ties.
			best := -1
			for i := range score {
				if alloc[i] >= remaining[i] {
					continue
				}
				if best < 0 || score[i] > score[best] {
					best = i
				}
			}
			if best < 0 {
				break // no capacity anywhere
			}
			alloc[best]++
			assigned = 1
		}
		n -= assigned
	}
	return alloc
}
