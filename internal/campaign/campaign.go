// Package campaign is the shared parallel fault-injection engine used
// by all three injection layers (microarchitectural AVF, architectural
// PVF, software-level SVF). The layers pre-draw their fault sequence
// from a single seeded stream — exactly the sequence the old serial
// loops drew — and hand the engine one independent job per injection,
// so the aggregate tally is bit-identical for every worker count,
// including workers=1 reproducing the historical serial results.
//
// Jobs carry a state-affinity group (the golden snapshot a faulty run
// restores from). The engine keeps same-group jobs together on a
// worker, which lets per-worker arenas restore golden state by copying
// only dirty pages instead of the full RAM image.
package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one injection. Index is its position in the pre-drawn fault
// sequence: results and progress callbacks are keyed by it, and it must
// be unique in [0, len(jobs)). Group is the state-affinity key; jobs
// with equal groups are scheduled contiguously on one worker.
type Job struct {
	Index int
	Group int
}

// Workers resolves a requested worker count: values <= 0 select
// runtime.NumCPU() (the default for campaign fan-out).
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Run executes every job and returns the results indexed by Job.Index.
//
// newState creates per-worker reusable state (an emulator arena); it is
// called at most once per worker, never concurrently with run on the
// same state. run executes one job on that worker's state; distinct
// workers run concurrently, so run must only share read-only campaign
// state. emit, when non-nil, is the progress callback contract: it is
// invoked exactly once per job, serialized (never concurrently), and in
// strictly increasing Index order — identical observable order to the
// old serial loops, at the cost of buffering out-of-order completions.
func Run[S any, R any](jobs []Job, workers int,
	newState func() S,
	run func(state S, j Job) R,
	emit func(i int, r R),
) []R {
	n := len(jobs)
	if n == 0 {
		return nil
	}
	results := make([]R, n)
	w := Workers(workers)
	if w > n {
		w = n
	}

	// Serialized in-order delivery of progress callbacks.
	var (
		emitMu   sync.Mutex
		emitDone []bool
		emitNext int
	)
	if emit != nil {
		emitDone = make([]bool, n)
	}
	finish := func(i int, r R) {
		results[i] = r
		if emit == nil {
			return
		}
		emitMu.Lock()
		emitDone[i] = true
		for emitNext < n && emitDone[emitNext] {
			emit(emitNext, results[emitNext])
			emitNext++
		}
		emitMu.Unlock()
	}

	chunks := chunk(jobs, w)
	if w == 1 {
		state := newState()
		for _, c := range chunks {
			for _, j := range c {
				finish(j.Index, run(state, j))
			}
		}
		return results
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := newState()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(chunks) {
					return
				}
				for _, j := range chunks[c] {
					finish(j.Index, run(state, j))
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// chunk partitions jobs into work-stealing units: jobs are grouped by
// Group (preserving index order within a group) and each group is split
// into pieces of roughly len(jobs)/(4*workers), so load balances while
// a worker's consecutive jobs usually share a restore source.
func chunk(jobs []Job, workers int) [][]Job {
	size := len(jobs) / (4 * workers)
	if size < 1 {
		size = 1
	}
	// Group jobs, preserving first-seen group order and index order
	// within each group (deterministic, though results don't depend on
	// scheduling).
	order := make([]int, 0, 8)
	byGroup := make(map[int][]Job)
	for _, j := range jobs {
		if _, ok := byGroup[j.Group]; !ok {
			order = append(order, j.Group)
		}
		byGroup[j.Group] = append(byGroup[j.Group], j)
	}
	var chunks [][]Job
	for _, g := range order {
		js := byGroup[g]
		for len(js) > size {
			chunks = append(chunks, js[:size])
			js = js[size:]
		}
		if len(js) > 0 {
			chunks = append(chunks, js)
		}
	}
	return chunks
}
