package campaign

import (
	"sync/atomic"
	"testing"
)

// TestRunResultsIndexed checks every job runs exactly once and its
// result lands at its Index, for serial and parallel worker counts.
func TestRunResultsIndexed(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		jobs := make([]Job, 100)
		for i := range jobs {
			jobs[i] = Job{Index: i, Group: i % 3}
		}
		var calls atomic.Int64
		res := Run(jobs, workers,
			func() int { return 0 },
			func(_ int, j Job) int { calls.Add(1); return j.Index * 10 },
			nil)
		if got := calls.Load(); got != 100 {
			t.Fatalf("workers=%d: %d runs, want 100", workers, got)
		}
		for i, r := range res {
			if r != i*10 {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, r, i*10)
			}
		}
	}
}

// TestRunSerialParallelIdentical checks the result slice is identical
// for every worker count when the per-job function is deterministic.
func TestRunSerialParallelIdentical(t *testing.T) {
	jobs := make([]Job, 257)
	for i := range jobs {
		jobs[i] = Job{Index: i, Group: i % 5}
	}
	run := func(workers int) []int {
		return Run(jobs, workers,
			func() int { return 0 },
			func(_ int, j Job) int { return j.Index*j.Index + j.Group },
			nil)
	}
	want := run(1)
	for _, workers := range []int{2, 3, 16} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverges at %d: %d vs %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEmitOrdered checks the progress callback contract: exactly once
// per job, serialized, in strictly increasing index order.
func TestEmitOrdered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		jobs := make([]Job, 64)
		for i := range jobs {
			jobs[i] = Job{Index: i, Group: i % 4}
		}
		var seen []int
		Run(jobs, workers,
			func() int { return 0 },
			func(_ int, j Job) int { return j.Index },
			func(i int, _ int) {
				// Appending without synchronization is safe only
				// because emit is serialized; the race detector
				// checks that claim.
				seen = append(seen, i)
			})
		if len(seen) != len(jobs) {
			t.Fatalf("workers=%d: emit called %d times, want %d", workers, len(seen), len(jobs))
		}
		for i, v := range seen {
			if v != i {
				t.Fatalf("workers=%d: emit order %v, want strictly increasing", workers, seen)
			}
		}
	}
}

// TestGroupAffinity checks chunking keeps same-group jobs contiguous:
// within one chunk the group never changes.
func TestGroupAffinity(t *testing.T) {
	jobs := make([]Job, 90)
	for i := range jobs {
		jobs[i] = Job{Index: i, Group: i % 3}
	}
	for _, chk := range chunk(jobs, 4) {
		for i := 1; i < len(chk); i++ {
			if chk[i].Group != chk[0].Group {
				t.Fatalf("chunk mixes groups %d and %d", chk[0].Group, chk[i].Group)
			}
		}
	}
}

// TestWorkerStateReuse checks each worker gets exactly one state and
// reuses it across its jobs.
func TestWorkerStateReuse(t *testing.T) {
	jobs := make([]Job, 40)
	for i := range jobs {
		jobs[i] = Job{Index: i}
	}
	var states atomic.Int64
	Run(jobs, 4,
		func() *int { states.Add(1); n := 0; return &n },
		func(s *int, j Job) int { *s++; return *s },
		nil)
	if n := states.Load(); n < 1 || n > 4 {
		t.Fatalf("%d states created for 4 workers", n)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted worker count must be >= 1")
	}
}

func TestRunEmpty(t *testing.T) {
	res := Run(nil, 8, func() int { return 0 }, func(int, Job) int { return 1 }, nil)
	if len(res) != 0 {
		t.Fatalf("expected empty result, got %v", res)
	}
}
