package campaign

// RunResolved is Run with a static-resolution pass in front: resolve
// classifies a job from program text alone, with no injector state.
// Jobs it resolves never reach run; when every job resolves, newState
// is never called and no worker state (emulator arena, interpreter,
// checkpoint restore) is ever prepared. The progress contract is
// unchanged: emit fires exactly once per job, serialized, in strictly
// increasing Index order, with resolved and injected results
// interleaved exactly as a serial loop would have produced them.
//
// The injection layers each supply their own resolver:
//
//   - soft (llfi): the interprocedural demanded-bits verdict — faults
//     flipping a bit the static analysis proves undemanded resolve to
//     Masked.
//   - micro (inject) and arch: no sound per-site verdict exists — the
//     fault's architectural target is itself dynamic state (physical
//     register renaming and cache indexing at the micro layer; the
//     instruction a wrong-data fault lands on is found by stepping
//     forward from the fault instant at the arch layer), so those
//     layers pass a nil resolver and every job runs. Demanded-bits
//     still reaches them as a stratification feature.
//
// A nil resolve degenerates to Run exactly.
func RunResolved[S any, R any](jobs []Job, workers int,
	resolve func(j Job) (R, bool),
	newState func() S,
	run func(state S, j Job) R,
	emit func(i int, r R),
) []R {
	if resolve == nil {
		return Run(jobs, workers, newState, run, emit)
	}
	n := len(jobs)
	if n == 0 {
		return nil
	}
	resolved := make([]R, n)
	isResolved := make([]bool, n)
	live := 0
	for k, j := range jobs {
		if r, ok := resolve(j); ok {
			resolved[k], isResolved[k] = r, true
		} else {
			live++
		}
	}
	if live == 0 {
		// Fully resolved: no worker state, no injections; deliver in
		// index order.
		results := make([]R, n)
		for k, j := range jobs {
			results[j.Index] = resolved[k]
		}
		if emit != nil {
			for i := 0; i < n; i++ {
				emit(i, results[i])
			}
		}
		return results
	}
	byIndex := make([]int, n) // job index -> position in jobs
	for p, j := range jobs {
		byIndex[j.Index] = p
	}
	return Run(jobs, workers, newState,
		func(state S, j Job) R {
			if p := byIndex[j.Index]; isResolved[p] {
				return resolved[p]
			}
			return run(state, j)
		},
		emit)
}
