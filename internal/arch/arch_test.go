package arch

import (
	"math/rand"
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/emu"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/micro"
	"vulnstack/internal/minic"
	"vulnstack/internal/results"
	"vulnstack/internal/workload"
)

func prep(t *testing.T, bench string, is isa.ISA) *Campaign {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := minic.Compile(spec.Gen(3, 1), is.XLen())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Build(m, is)
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Prepare(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestGoldenIncludesKernel(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	if cp.KInstr == 0 {
		t.Fatal("PVF program flow must include kernel instructions")
	}
	if cp.KInstr >= cp.GoldenInstr {
		t.Fatal("kernel subset")
	}
	if len(cp.GoldenOut) != 20 {
		t.Fatalf("golden output %d bytes", len(cp.GoldenOut))
	}
}

func TestWDInjections(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	tl := cp.RunCampaign(micro.FPMWD, 80, 1, nil)
	if tl.N != 80 {
		t.Fatal("count")
	}
	if tl.Outcomes[inject.Masked] == 0 {
		t.Error("some WD faults should mask")
	}
	if tl.Outcomes[inject.SDC]+tl.Outcomes[inject.Crash] == 0 {
		t.Error("some WD faults should fail: sha consumes nearly all operand bits")
	}
	if tl.Outcomes[inject.Detected] != 0 {
		t.Error("unhardened code cannot detect")
	}
	pvf := tl.PVF()
	if pvf <= 0 || pvf >= 1 {
		t.Errorf("degenerate PVF %.2f", pvf)
	}
}

func TestWIMostlyCrashes(t *testing.T) {
	cp := prep(t, "qsort", isa.VSA64)
	tl := cp.RunCampaign(micro.FPMWI, 60, 2, nil)
	if tl.Outcomes[inject.Crash] == 0 {
		t.Error("operation-field flips should often crash")
	}
	// WI and WOI must behave differently from WD on average: compare
	// crash shares qualitatively.
	wd := cp.RunCampaign(micro.FPMWD, 60, 3, nil)
	t.Logf("qsort PVF: WI crash=%.2f sdc=%.2f | WD crash=%.2f sdc=%.2f",
		tl.Frac(inject.Crash), tl.Frac(inject.SDC), wd.Frac(inject.Crash), wd.Frac(inject.SDC))
}

func TestPVFSimilarAcrossISAs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// The paper: PVF is (assumed) microarchitecture independent, and
	// measured to be close across same-family ISAs. Sanity: both ISAs
	// give non-degenerate results for the same source.
	a := prep(t, "crc32", isa.VSA32).RunCampaign(micro.FPMWD, 60, 4, nil)
	b := prep(t, "crc32", isa.VSA64).RunCampaign(micro.FPMWD, 60, 4, nil)
	if a.N != b.N {
		t.Fatal("counts")
	}
	if a.PVF() == 0 && b.PVF() == 0 {
		t.Error("degenerate PVFs")
	}
	t.Logf("crc32 PVF(WD): VSA32 %.2f, VSA64 %.2f", a.PVF(), b.PVF())
}

// TestCampaignWorkerInvariance: the PVF tally must be bit-identical for
// any worker count.
func TestCampaignWorkerInvariance(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	for _, fpm := range []micro.FPM{micro.FPMWD, micro.FPMWI} {
		cp.Workers = 1
		serial := cp.RunCampaign(fpm, 30, 7, nil)
		cp.Workers = 8
		parallel := cp.RunCampaign(fpm, 30, 7, nil)
		if serial != parallel {
			t.Fatalf("%v: workers=1 %+v != workers=8 %+v", fpm, serial, parallel)
		}
	}
}

// TestArenaMatchesFreshMachine: the worker-arena restore path must
// classify every fault exactly like the fresh-machine Run path.
func TestArenaMatchesFreshMachine(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	r := rand.New(rand.NewSource(7))
	faults := make([]Fault, 25)
	for i := range faults {
		faults[i] = cp.Sample(r, micro.FPMWD)
	}
	var want Tally
	for _, f := range faults {
		want.AddOutcome(cp.Run(f))
	}
	cp.Workers = 1
	got := cp.RunCampaign(micro.FPMWD, 25, 7, nil)
	if got != want {
		t.Fatalf("arena path %+v != fresh-machine path %+v", got, want)
	}
}

// TestSampleClampDegenerateGolden: a golden run of <= 2 dynamic
// instructions leaves no interior instant; Sample must clamp instead
// of panicking in Int63n (regression).
func TestSampleClampDegenerateGolden(t *testing.T) {
	for _, instrs := range []uint64{0, 1, 2} {
		cp := &Campaign{GoldenInstr: instrs}
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 8; i++ {
			if f := cp.Sample(r, micro.FPMWD); f.K < 1 {
				t.Fatalf("instrs=%d: sampled instant %d", instrs, f.K)
			}
		}
	}
}

// TestArchEarlyStopRecordEquivalence: convergence early-stop at the
// architectural layer must change records only in provenance.
func TestArchEarlyStopRecordEquivalence(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	const n, seed = 40, 2021
	on := cp.Records(micro.FPMWD, n, 0, seed, nil)
	cp.NoEarlyStop = true
	off := cp.Records(micro.FPMWD, n, 0, seed, nil)
	cp.NoEarlyStop = false
	stopped := 0
	for i := range on {
		if on[i].EarlyStop {
			stopped++
			if on[i].Outcome != results.Outcome(inject.Masked) {
				t.Fatalf("record %d early-stopped with outcome %v", i, on[i].Outcome)
			}
		}
		a := on[i]
		a.EarlyStop = false
		if a != off[i] {
			t.Fatalf("record %d differs beyond provenance:\n on: %+v\noff: %+v", i, on[i], off[i])
		}
	}
	if stopped == 0 {
		t.Error("expected at least one convergence early-stop in 40 WD injections")
	}
	t.Logf("early-stopped %d/%d injections", stopped, n)
}

func TestSnapForMatchesLinearScan(t *testing.T) {
	// The binary search must agree with the obvious linear reference on
	// every boundary shape, duplicates included.
	cases := [][]uint64{
		{0},
		{0, 10, 20, 30},
		{0, 5, 5, 5, 9},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
	for _, at := range cases {
		cp := &Campaign{}
		for _, a := range at {
			cp.snaps = append(cp.snaps, emu.Snapshot{Instret: a})
		}
		for k := uint64(0); k < at[len(at)-1]+3; k++ {
			want := 0
			for i, a := range at {
				if a <= k {
					want = i
				}
			}
			if got := cp.snapFor(k); got != want {
				t.Fatalf("instret=%v k=%d: got %d, want %d", at, k, got, want)
			}
		}
	}
}
