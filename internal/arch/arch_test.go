package arch

import (
	"math/rand"
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/micro"
	"vulnstack/internal/minic"
	"vulnstack/internal/results"
	"vulnstack/internal/workload"
)

func prep(t *testing.T, bench string, is isa.ISA) *Campaign {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := minic.Compile(spec.Gen(3, 1), is.XLen())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Build(m, is)
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Prepare(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestGoldenIncludesKernel(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	if cp.KInstr == 0 {
		t.Fatal("PVF program flow must include kernel instructions")
	}
	if cp.KInstr >= cp.GoldenInstr {
		t.Fatal("kernel subset")
	}
	if len(cp.GoldenOut) != 20 {
		t.Fatalf("golden output %d bytes", len(cp.GoldenOut))
	}
}

func TestWDInjections(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	tl := cp.RunCampaign(micro.FPMWD, 80, 1, nil)
	if tl.N != 80 {
		t.Fatal("count")
	}
	if tl.Outcomes[inject.Masked] == 0 {
		t.Error("some WD faults should mask")
	}
	if tl.Outcomes[inject.SDC]+tl.Outcomes[inject.Crash] == 0 {
		t.Error("some WD faults should fail: sha consumes nearly all operand bits")
	}
	if tl.Outcomes[inject.Detected] != 0 {
		t.Error("unhardened code cannot detect")
	}
	pvf := tl.PVF()
	if pvf <= 0 || pvf >= 1 {
		t.Errorf("degenerate PVF %.2f", pvf)
	}
}

func TestWIMostlyCrashes(t *testing.T) {
	cp := prep(t, "qsort", isa.VSA64)
	tl := cp.RunCampaign(micro.FPMWI, 60, 2, nil)
	if tl.Outcomes[inject.Crash] == 0 {
		t.Error("operation-field flips should often crash")
	}
	// WI and WOI must behave differently from WD on average: compare
	// crash shares qualitatively.
	wd := cp.RunCampaign(micro.FPMWD, 60, 3, nil)
	t.Logf("qsort PVF: WI crash=%.2f sdc=%.2f | WD crash=%.2f sdc=%.2f",
		tl.Frac(inject.Crash), tl.Frac(inject.SDC), wd.Frac(inject.Crash), wd.Frac(inject.SDC))
}

func TestPVFSimilarAcrossISAs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// The paper: PVF is (assumed) microarchitecture independent, and
	// measured to be close across same-family ISAs. Sanity: both ISAs
	// give non-degenerate results for the same source.
	a := prep(t, "crc32", isa.VSA32).RunCampaign(micro.FPMWD, 60, 4, nil)
	b := prep(t, "crc32", isa.VSA64).RunCampaign(micro.FPMWD, 60, 4, nil)
	if a.N != b.N {
		t.Fatal("counts")
	}
	if a.PVF() == 0 && b.PVF() == 0 {
		t.Error("degenerate PVFs")
	}
	t.Logf("crc32 PVF(WD): VSA32 %.2f, VSA64 %.2f", a.PVF(), b.PVF())
}

// TestCampaignWorkerInvariance: the PVF tally must be bit-identical for
// any worker count.
func TestCampaignWorkerInvariance(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	for _, fpm := range []micro.FPM{micro.FPMWD, micro.FPMWI} {
		cp.Workers = 1
		serial := cp.RunCampaign(fpm, 30, 7, nil)
		cp.Workers = 8
		parallel := cp.RunCampaign(fpm, 30, 7, nil)
		if serial != parallel {
			t.Fatalf("%v: workers=1 %+v != workers=8 %+v", fpm, serial, parallel)
		}
	}
}

// TestArenaMatchesFreshMachine: the worker-arena restore path must
// classify every fault exactly like the fresh-machine Run path.
func TestArenaMatchesFreshMachine(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	r := rand.New(rand.NewSource(7))
	faults := make([]Fault, 25)
	for i := range faults {
		faults[i] = cp.Sample(r, micro.FPMWD)
	}
	var want Tally
	for _, f := range faults {
		want.AddOutcome(cp.Run(f))
	}
	cp.Workers = 1
	got := cp.RunCampaign(micro.FPMWD, 25, 7, nil)
	if got != want {
		t.Fatalf("arena path %+v != fresh-machine path %+v", got, want)
	}
}

// TestSampleClampDegenerateGolden: a golden run of <= 2 dynamic
// instructions leaves no interior instant; Sample must clamp instead
// of panicking in Int63n (regression).
func TestSampleClampDegenerateGolden(t *testing.T) {
	for _, instrs := range []uint64{0, 1, 2} {
		cp := &Campaign{GoldenInstr: instrs}
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 8; i++ {
			if f := cp.Sample(r, micro.FPMWD); f.K < 1 {
				t.Fatalf("instrs=%d: sampled instant %d", instrs, f.K)
			}
		}
	}
}

// TestArchEarlyStopRecordEquivalence: convergence early-stop at the
// architectural layer must change records only in provenance.
func TestArchEarlyStopRecordEquivalence(t *testing.T) {
	cp := prep(t, "sha", isa.VSA64)
	const n, seed = 40, 2021
	on := cp.Records(micro.FPMWD, n, 0, seed, nil)
	cp.NoEarlyStop = true
	off := cp.Records(micro.FPMWD, n, 0, seed, nil)
	cp.NoEarlyStop = false
	stopped := 0
	for i := range on {
		if on[i].EarlyStop {
			stopped++
			if on[i].Outcome != results.Outcome(inject.Masked) {
				t.Fatalf("record %d early-stopped with outcome %v", i, on[i].Outcome)
			}
		}
		a := on[i]
		a.EarlyStop = false
		if a != off[i] {
			t.Fatalf("record %d differs beyond provenance:\n on: %+v\noff: %+v", i, on[i], off[i])
		}
	}
	if stopped == 0 {
		t.Error("expected at least one convergence early-stop in 40 WD injections")
	}
	t.Logf("early-stopped %d/%d injections", stopped, n)
}

// TestArchStateRoundTrip: the canonical state codec must restore every
// architectural field it encodes and be deterministic (the convergence
// test compares encodings bytes-wise).
func TestArchStateRoundTrip(t *testing.T) {
	s := emu.Snapshot{PC: 0x1040, Mode: isa.User, Instret: 987654}
	for i := range s.Regs {
		s.Regs[i] = uint64(i) * 0x0101010101010101
	}
	for i := range s.CSR {
		s.CSR[i] = uint64(i) + 7
	}
	bus := &dev.Bus{Out: []byte("abc"), ExitCode: 3}
	blob := appendArchState(nil, s, bus)
	got, err := decodeArchState(blob)
	if err != nil {
		t.Fatal(err)
	}
	s.KInstr = 0 // the codec excludes KInstr (aux sidecar)
	if got != s {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, s)
	}
	if string(appendArchState(nil, s, bus)) != string(blob) {
		t.Fatal("encoding not deterministic")
	}
	if _, err := decodeArchState(blob[:archFixedLen-1]); err == nil {
		t.Fatal("short blob must not decode")
	}
}

// TestPrepareFromChainMatchesCold: a campaign resumed from the cold
// campaign's own chain (zero golden-run instructions) must produce a
// bit-identical tally.
func TestPrepareFromChainMatchesCold(t *testing.T) {
	cold := prep(t, "sha", isa.VSA64)
	warm, err := PrepareFromChain(cold.Img, cold.Chain())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Resumed {
		t.Fatal("warm campaign must report Resumed")
	}
	if warm.GoldenInstr != cold.GoldenInstr || warm.KInstr != cold.KInstr ||
		string(warm.GoldenOut) != string(cold.GoldenOut) {
		t.Fatal("golden summary mismatch")
	}
	a := cold.RunCampaign(micro.FPMWD, 30, 5, nil)
	b := warm.RunCampaign(micro.FPMWD, 30, 5, nil)
	if a != b {
		t.Fatalf("cold %+v != warm %+v", a, b)
	}
}
