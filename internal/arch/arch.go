// Package arch implements architecture-level (PVF) fault injection on
// the functional emulator. Faults originate in architecturally visible
// resources of the dynamic program flow — register operands, loaded
// memory words, and instruction words — and, unlike software-level
// (SVF) injection, the flow includes the kernel instructions executed
// on the program's behalf. Following the paper, injections are
// performed per fault-propagation model: WD (operand data), WOI
// (operand/immediate encoding fields) and WI (operation encoding
// fields).
package arch

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"vulnstack/internal/campaign"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// Campaign prepares PVF injections for one image.
type Campaign struct {
	Img *kernel.Image

	GoldenOut  []byte
	GoldenExit uint64
	// GoldenInstr is the dynamic instruction count (user + kernel).
	GoldenInstr uint64
	KInstr      uint64

	snaps   []emu.Snapshot
	snapMem []*mem.Memory
	// snapBus holds the device-side state (output stream, DMA
	// registers, halt ports) at each snapshot boundary; goldenDirty[i]
	// lists the RAM pages golden wrote in (snaps[i-1], snaps[i]]. Both
	// feed the early-stop convergence test.
	snapBus     []*dev.Bus
	goldenDirty [][]uint32
	Limit       uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int
	// NoEarlyStop disables convergence early-stop classification; runs
	// then always execute to halt or Limit. The zero value keeps the
	// optimization on — outcomes are provably identical either way.
	NoEarlyStop bool
	// NoDecodeCache disables the emulator's predecoded fetch cache on
	// CPUs this campaign creates (also provably result-neutral).
	NoDecodeCache bool
}

// Prepare runs the golden execution and captures snapshots.
func Prepare(img *kernel.Image, nsnaps int) (*Campaign, error) {
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(img.ISA, bus, img.Entry)
	if !c.Run(1 << 30) {
		return nil, fmt.Errorf("arch: golden run did not finish")
	}
	if bus.Halt != dev.HaltClean {
		return nil, fmt.Errorf("arch: golden run ended %v", bus.Halt)
	}
	cp := &Campaign{
		Img:         img,
		GoldenOut:   append([]byte(nil), bus.Out...),
		GoldenExit:  bus.ExitCode,
		GoldenInstr: c.Instret,
		KInstr:      c.KernelInstret,
	}
	cp.Limit = 3*cp.GoldenInstr + 100000

	if nsnaps > 1 {
		step := cp.GoldenInstr / uint64(nsnaps)
		if step == 0 {
			step = 1
		}
		bus2 := dev.NewBus(img.NewMemory())
		// Track golden RAM writes so each snapshot interval's dirty
		// pages are known: the early-stop comparison then touches only
		// pages the two runs could have dirtied differently.
		bus2.Mem.EnableTracking()
		c2 := emu.New(img.ISA, bus2, img.Entry)
		for next := uint64(0); next < cp.GoldenInstr; next += step {
			for c2.Instret < next {
				if !c2.Step() {
					break
				}
			}
			cp.snaps = append(cp.snaps, c2.Save())
			cp.snapMem = append(cp.snapMem, bus2.Mem.Clone())
			cp.snapBus = append(cp.snapBus, bus2.CloneDevice())
			cp.goldenDirty = append(cp.goldenDirty, bus2.Mem.TakeDirtyPages())
		}
	} else {
		// Keep one boot-state snapshot so worker arenas always have a
		// restore source; the pristine image RAM is immutable, so it is
		// shared rather than cloned.
		cp.snaps = []emu.Snapshot{{PC: img.Entry, Mode: isa.Kernel}}
		cp.snapMem = []*mem.Memory{img.RAM}
		cp.snapBus = []*dev.Bus{(&dev.Bus{}).CloneDevice()}
		cp.goldenDirty = [][]uint32{nil}
	}
	return cp, nil
}

// snapFor returns the index of the latest snapshot at or before dynamic
// instruction k. Snapshot Instret values are non-decreasing (taken
// along one golden run), so binary search finds it; runs once per
// injection and must scale with -snapshots.
func (cp *Campaign) snapFor(k uint64) int {
	// First index strictly past k; everything before it is <= k.
	i := sort.Search(len(cp.snaps), func(i int) bool { return cp.snaps[i].Instret > k })
	if i == 0 {
		return 0
	}
	return i - 1
}

// cpuAt returns an emulator advanced to dynamic instruction k. Dirty
// tracking is enabled at the snapshot baseline so the early-stop RAM
// comparison knows which pages this run touched.
func (cp *Campaign) cpuAt(k uint64) (*emu.CPU, *dev.Bus) {
	bus := dev.NewBus(cp.Img.NewMemory())
	c := emu.New(cp.Img.ISA, bus, cp.Img.Entry)
	c.NoDecodeCache = cp.NoDecodeCache
	best := cp.snapFor(k)
	bus.Mem.CopyFrom(cp.snapMem[best])
	bus.Mem.EnableTracking()
	c.Restore(cp.snaps[best])
	for c.Instret < k {
		if !c.Step() {
			break
		}
	}
	return c, bus
}

// worker is the reusable per-worker arena: an emulator, bus and RAM
// image restored in place for every injection (dirty pages only when
// the restore source repeats), keeping the hot loop allocation-free.
type worker struct {
	cpu *emu.CPU
	bus *dev.Bus
	m   *mem.Memory
	src int // snapshot index the arena RAM was last restored from
}

// cpuFor readies the worker's arena at dynamic instruction k, restoring
// from snapshot g.
func (cp *Campaign) cpuFor(w *worker, k uint64, g int) (*emu.CPU, *dev.Bus) {
	if w.m == nil {
		w.m = cp.snapMem[g].Clone()
		w.m.EnableTracking()
		w.bus = dev.NewBus(w.m)
		w.cpu = emu.New(cp.Img.ISA, w.bus, cp.Img.Entry)
		w.cpu.NoDecodeCache = cp.NoDecodeCache
	} else {
		w.bus.Reset()
		if w.src == g {
			w.m.RestoreDirty(cp.snapMem[g])
		} else {
			w.m.CopyFrom(cp.snapMem[g])
		}
	}
	w.src = g
	w.cpu.Restore(cp.snaps[g])
	for w.cpu.Instret < k {
		if !w.cpu.Step() {
			break
		}
	}
	return w.cpu, w.bus
}

// Fault is one architecture-level injection.
type Fault struct {
	FPM micro.FPM // WD, WOI or WI
	K   uint64    // dynamic instruction index
	Bit int
	// Slot selects among an instruction's operand locations for WD.
	Slot int
}

// Sample draws a fault for the given FPM, uniform over the dynamic
// instruction stream.
func (cp *Campaign) Sample(r *rand.Rand, fpm micro.FPM) Fault {
	return Fault{
		FPM:  fpm,
		K:    1 + uint64(r.Int63n(cp.sampleSpan())),
		Bit:  r.Intn(64),
		Slot: r.Intn(4),
	}
}

// sampleSpan is the dynamic-instant sampling span, clamped so a
// degenerate golden run (<= 2 instructions) never passes Int63n an
// n <= 0. The draw still happens, keeping sequences aligned.
func (cp *Campaign) sampleSpan() int64 {
	span := int64(cp.GoldenInstr) - 1
	if span < 1 {
		span = 1
	}
	return span
}

// UniformTarget labels register-uniform injections in the record
// stream and the results store, distinguishing them from the per-FPM
// operand-targeted campaigns.
const UniformTarget = "reg-uniform"

// SampleUniform draws a register-uniform fault: a bit flip in a
// uniformly chosen architectural register (r1..r(N-1); r0 is
// hard-wired) at a uniformly chosen dynamic instant, with no
// conditioning on whether the register is about to be consumed. This is
// the sampling model that ACE analysis upper-bounds: a flip outside a
// def-to-last-use interval is overwritten before any read and cannot
// alter the outcome, so P(visible) <= RegACE <= the static bound. The
// per-FPM Sample path instead corrupts a *consumed* operand, a
// liveness-conditioned probability that legitimately exceeds ACE.
func (cp *Campaign) SampleUniform(r *rand.Rand) Fault {
	return Fault{
		FPM:  micro.FPMNone,
		K:    1 + uint64(r.Int63n(cp.sampleSpan())),
		Bit:  r.Intn(cp.Img.ISA.XLen()),
		Slot: 1 + r.Intn(cp.Img.ISA.NumRegs()-1),
	}
}

// applyUniform flips f.Bit of register f.Slot in place.
func applyUniform(c *emu.CPU, f Fault) {
	c.SetReg(f.Slot, c.Reg(f.Slot)^(1<<uint(f.Bit)))
}

// Run performs one injection and classifies the program-level outcome.
// It builds a fresh machine per call; campaigns use the worker-arena
// path in RunCampaign instead.
func (cp *Campaign) Run(f Fault) inject.Outcome {
	c, bus := cp.cpuAt(f.K)
	o, _ := cp.classify(c, bus, cp.snapFor(f.K), func() { cp.apply(c, f) })
	return o
}

// classify applies an injection to a machine already advanced to the
// fault instant (restored from snapshot g), runs it to halt, the
// watchdog limit or provable golden convergence, and classifies the
// outcome. earlyStop reports a convergence-classified run.
func (cp *Campaign) classify(c *emu.CPU, bus *dev.Bus, g int, apply func()) (o inject.Outcome, earlyStop bool) {
	if bus.Halted() {
		return inject.Masked, false
	}
	apply()
	halted, converged := cp.runFaulty(c, bus, g)
	switch {
	case converged:
		// Architectural state, device state and memory all bit-equal to
		// golden at the same instruction boundary: the remaining
		// execution is exactly golden's, so the outcome is golden's —
		// clean exit, golden output: Masked.
		return inject.Masked, true
	case !halted:
		return inject.Crash, false // live/deadlock under the fault
	case bus.Halt == dev.HaltPanic:
		return inject.Crash, false
	case bus.Halt == dev.HaltDetected:
		return inject.Detected, false
	default:
		if bus.ExitCode == cp.GoldenExit && bytes.Equal(bus.Out, cp.GoldenOut) {
			return inject.Masked, false
		}
		return inject.SDC, false
	}
}

// runFaulty executes the faulty machine, pausing at every golden
// snapshot boundary past g to test for convergence.
func (cp *Campaign) runFaulty(c *emu.CPU, bus *dev.Bus, g int) (halted, converged bool) {
	if !cp.NoEarlyStop && bus.Mem.Tracking() {
		for j := g + 1; j < len(cp.snaps); j++ {
			target := cp.snaps[j].Instret
			// apply may have executed forward past this boundary while
			// searching for a suitable operand; skip it.
			if target < c.Instret {
				continue
			}
			for c.Instret < target && c.Instret < cp.Limit {
				if !c.Step() {
					return true, false
				}
			}
			if cp.convergedAt(c, bus, g, j) {
				return false, true
			}
		}
	}
	for c.Instret < cp.Limit {
		if !c.Step() {
			return true, false
		}
	}
	return bus.Halted(), false
}

// convergedAt reports whether the faulty machine, at the instruction
// boundary of snapshot j, is bit-identical to the golden run:
// architectural state against the snapshot, device state against the
// boundary bus capture, and RAM over the union of the faulty run's
// dirty pages (tracked since its restore from snapshot g) and the
// pages golden dirtied in (snaps[g], snaps[j]] — every other page
// provably equals snapshot g's copy in both runs. KInstr is excluded:
// it is reporting state no instruction ever reads.
func (cp *Campaign) convergedAt(c *emu.CPU, bus *dev.Bus, g, j int) bool {
	s := &cp.snaps[j]
	if c.Instret != s.Instret || c.PC != s.PC || c.Mode != s.Mode ||
		c.Regs != s.Regs || c.CSR != s.CSR {
		return false
	}
	if !bus.StateEqual(cp.snapBus[j]) {
		return false
	}
	gm := cp.snapMem[j]
	for _, p := range bus.Mem.DirtyPageList() {
		if !bus.Mem.PageEqual(gm, p) {
			return false
		}
	}
	for k := g + 1; k <= j; k++ {
		for _, p := range cp.goldenDirty[k] {
			if !bus.Mem.PageEqual(gm, p) {
				return false
			}
		}
	}
	return true
}

// apply injects the fault just before the next instruction executes.
// For WD it corrupts one of the instruction's source operands in
// architectural storage (register or loaded memory word); for WOI/WI it
// flips an operand-field or operation-field bit of the instruction word
// in memory (persistent, like a corrupted architectural code copy).
func (cp *Campaign) apply(c *emu.CPU, f Fault) {
	is := c.ISA
	// Find the next instruction with a suitable target, executing
	// forward when the current one has none (keeps sampling total).
	for steps := 0; steps < 4096; steps++ {
		w, ok := c.Bus.Mem.Word32(c.PC)
		if !ok {
			return
		}
		in, ok := isa.Decode(w, is)
		if !ok {
			return
		}
		switch f.FPM {
		case micro.FPMWD:
			type loc struct {
				isReg bool
				reg   int
				addr  uint64
				width int
			}
			var locs []loc
			if in.Op.ReadsRs1() && in.Rs1 != 0 {
				locs = append(locs, loc{isReg: true, reg: in.Rs1, width: is.XLen()})
			}
			if in.Op.ReadsRs2() && in.Rs2 != 0 {
				locs = append(locs, loc{isReg: true, reg: in.Rs2, width: is.XLen()})
			}
			if in.Op.IsLoad() {
				addr := (c.Reg(in.Rs1) + uint64(in.Imm)) & is.Mask()
				if c.Bus.Mem.Valid(addr, in.Op.MemBytes()) {
					locs = append(locs, loc{addr: addr, width: 8 * in.Op.MemBytes()})
				}
			}
			if len(locs) == 0 {
				if !c.Step() {
					return
				}
				continue
			}
			l := locs[f.Slot%len(locs)]
			bit := f.Bit % l.width
			if l.isReg {
				c.SetReg(l.reg, c.Reg(l.reg)^(1<<uint(bit)))
			} else {
				c.Bus.Mem.FlipBit(l.addr+uint64(bit/8), uint(bit%8))
			}
			return
		case micro.FPMWI, micro.FPMWOI:
			opMask := isa.OperationMask(w, is)
			want := opMask
			if f.FPM == micro.FPMWOI {
				want = ^opMask
			}
			if want == 0 {
				if !c.Step() {
					return
				}
				continue
			}
			// Pick the f.Bit-th set bit of the field mask (wrapping).
			n := popcount(want)
			idx := f.Bit % n
			bit := nthSetBit(want, idx)
			c.Bus.Mem.FlipBit(c.PC+uint64(bit/8), uint(bit%8))
			return
		default:
			return
		}
	}
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func nthSetBit(m uint32, n int) int {
	for i := 0; i < 32; i++ {
		if m&(1<<uint(i)) != 0 {
			if n == 0 {
				return i
			}
			n--
		}
	}
	return 0
}

// Tally aggregates PVF outcomes for one FPM. It is the shared
// record-stream aggregate; PVF() reads it at this layer.
type Tally = results.Tally

// record converts a classified fault into the layer-agnostic form.
func record(f Fault, o inject.Outcome, earlyStop bool) results.Record {
	return results.Record{
		Layer:     results.LayerArch,
		Target:    f.FPM.String(),
		Coord:     f.K,
		Bit:       f.Bit,
		Slot:      f.Slot,
		Outcome:   o,
		EarlyStop: earlyStop,
	}
}

// RunCampaign performs n injections under the given FPM, fanned across
// cp.Workers goroutines (<= 0: all CPUs). The fault sequence is
// pre-drawn from the seed exactly as the serial loop drew it, so the
// tally is bit-identical for every worker count. progress, when
// non-nil, is called exactly once per injection, serialized and in
// injection-index order; it must not call back into the campaign.
func (cp *Campaign) RunCampaign(fpm micro.FPM, n int, seed int64, progress func(i int, r results.Record)) Tally {
	return results.TallyOf(cp.Records(fpm, n, 0, seed, progress))
}

// Records executes injections [from, n) of the n-fault sequence
// pre-drawn from seed and returns their records, indexed absolutely.
// Records for [0, from) from an earlier shorter campaign with the same
// key concatenate into exactly a one-shot n-injection record set (the
// top-up resume primitive).
func (cp *Campaign) Records(fpm micro.FPM, n, from int, seed int64, progress func(i int, r results.Record)) []results.Record {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.Sample(r, fpm)
	}
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	jobs := make([]campaign.Job, n-from)
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.snapFor(faults[from+i].K)}
	}
	var emit func(i int, rec results.Record)
	if progress != nil {
		emit = func(i int, rec results.Record) { progress(from+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) results.Record {
			f := faults[from+j.Index]
			c, bus := cp.cpuFor(w, f.K, j.Group)
			o, early := cp.classify(c, bus, j.Group, func() { cp.apply(c, f) })
			rec := record(f, o, early)
			rec.Index = from + j.Index
			return rec
		},
		emit)
}

// UniformRecords executes register-uniform injections [from, n) of the
// n-fault sequence pre-drawn from seed (see SampleUniform), with the
// same absolute indexing and top-up resume discipline as Records.
func (cp *Campaign) UniformRecords(n, from int, seed int64, progress func(i int, r results.Record)) []results.Record {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.SampleUniform(r)
	}
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	jobs := make([]campaign.Job, n-from)
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.snapFor(faults[from+i].K)}
	}
	var emit func(i int, rec results.Record)
	if progress != nil {
		emit = func(i int, rec results.Record) { progress(from+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) results.Record {
			f := faults[from+j.Index]
			c, bus := cp.cpuFor(w, f.K, j.Group)
			o, early := cp.classify(c, bus, j.Group, func() { applyUniform(c, f) })
			return results.Record{
				Layer:     results.LayerArch,
				Target:    UniformTarget,
				Coord:     f.K,
				Bit:       f.Bit,
				Slot:      f.Slot,
				Outcome:   o,
				EarlyStop: early,
				Index:     from + j.Index,
			}
		},
		emit)
}
