// Package arch implements architecture-level (PVF) fault injection on
// the functional emulator. Faults originate in architecturally visible
// resources of the dynamic program flow — register operands, loaded
// memory words, and instruction words — and, unlike software-level
// (SVF) injection, the flow includes the kernel instructions executed
// on the program's behalf. Following the paper, injections are
// performed per fault-propagation model: WD (operand data), WOI
// (operand/immediate encoding fields) and WI (operation encoding
// fields).
package arch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"

	"vulnstack/internal/campaign"
	"vulnstack/internal/ckpt"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
	"vulnstack/internal/tb"
)

// Engine is this injector's name in persisted checkpoint chains.
const Engine = "arch"

// Campaign prepares PVF injections for one image.
type Campaign struct {
	Img *kernel.Image

	GoldenOut  []byte
	GoldenExit uint64
	// GoldenInstr is the dynamic instruction count (user + kernel).
	GoldenInstr uint64
	KInstr      uint64

	// chain is the delta checkpoint chain along the golden run
	// (internal/ckpt): architectural state + device state blobs plus
	// content-changed RAM pages at each instruction boundary. It
	// replaces the old full-snapshot arrays (snaps/snapMem/snapBus), so
	// checkpoint count is no longer bounded by O(snapshots × RAM).
	chain *ckpt.Chain
	Limit uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int
	// NoEarlyStop disables convergence early-stop classification; runs
	// then always execute to halt or Limit. The zero value keeps the
	// optimization on — outcomes are provably identical either way.
	NoEarlyStop bool
	// NoDecodeCache disables the emulator's predecoded fetch cache on
	// CPUs this campaign creates (also provably result-neutral).
	NoDecodeCache bool
	// NoTB disables the translation-block engine (internal/tb) on the
	// faulty-run path; the zero value keeps it on. Tallies are
	// bit-identical either way (the equivalence gate asserts it).
	NoTB bool
	// TBParanoid, when non-nil, runs translation-block workers in
	// paranoid validation mode: every predecoded op's instruction word
	// is refetched and compared before executing (counted here), and a
	// stale op panics. Test instrumentation only.
	TBParanoid *atomic.Uint64
	// Resumed reports the campaign was prepared from a persisted chain:
	// zero golden-run instructions were executed by Prepare.
	Resumed bool
}

// Chain exposes the campaign's checkpoint chain (for persistence and
// display; read-only).
func (cp *Campaign) Chain() *ckpt.Chain { return cp.chain }

// archFixedLen is the fixed prefix of the canonical architectural state
// blob: Regs, PC, CSR, Instret, then one Mode byte. The device-state
// section (dev.AppendDevice) trails it. KInstr is deliberately excluded
// — it is reporting state no instruction ever reads, and the old
// convergence test excluded it — and rides in the checkpoint aux
// sidecar instead so restores still reinstate it.
const archFixedLen = 32*8 + 8 + isa.NumCSRs*8 + 8 + 1

// appendArchState encodes the canonical architectural + device state.
// Bytes-equality of two encodings ⟺ the old field-wise convergence
// comparison (Regs/PC/CSR/Mode/Instret and Bus.StateEqual).
func appendArchState(dst []byte, s emu.Snapshot, bus *dev.Bus) []byte {
	var fixed [archFixedLen]byte
	o := 0
	for _, r := range s.Regs {
		binary.LittleEndian.PutUint64(fixed[o:], r)
		o += 8
	}
	binary.LittleEndian.PutUint64(fixed[o:], s.PC)
	o += 8
	for _, v := range s.CSR {
		binary.LittleEndian.PutUint64(fixed[o:], v)
		o += 8
	}
	binary.LittleEndian.PutUint64(fixed[o:], s.Instret)
	o += 8
	fixed[o] = byte(s.Mode)
	return bus.AppendDevice(append(dst, fixed[:]...))
}

// decodeArchState recovers the architectural fields from a state blob,
// ignoring the trailing device section (faulty runs start from a reset
// bus, not golden's device state). KInstr is left zero for the caller
// to fill from the aux sidecar.
func decodeArchState(b []byte) (emu.Snapshot, error) {
	var s emu.Snapshot
	if len(b) < archFixedLen {
		return s, fmt.Errorf("arch: state blob %d bytes, want >= %d", len(b), archFixedLen)
	}
	o := 0
	for i := range s.Regs {
		s.Regs[i] = binary.LittleEndian.Uint64(b[o:])
		o += 8
	}
	s.PC = binary.LittleEndian.Uint64(b[o:])
	o += 8
	for i := range s.CSR {
		s.CSR[i] = binary.LittleEndian.Uint64(b[o:])
		o += 8
	}
	s.Instret = binary.LittleEndian.Uint64(b[o:])
	o += 8
	s.Mode = isa.Mode(b[o])
	return s, nil
}

// archProbe folds the scalar architectural state into a cheap gate for
// the convergence test; mismatched probes skip the full encode+compare.
func archProbe(s emu.Snapshot) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) { h ^= v; h *= 1099511628211 }
	mix(s.Instret)
	mix(s.PC)
	mix(uint64(s.Mode))
	for _, r := range s.Regs {
		mix(r)
	}
	for _, v := range s.CSR {
		mix(v)
	}
	return h
}

func kinstrAux(k uint64) []byte { return binary.AppendUvarint(nil, k) }

func kinstrFromAux(aux []byte) uint64 {
	v, _ := binary.Uvarint(aux)
	return v
}

// encodeGolden serializes the golden summary into a chain's Meta so a
// warm load learns the reference run without executing it.
func encodeGolden(cp *Campaign) []byte {
	b := binary.AppendUvarint(nil, uint64(len(cp.GoldenOut)))
	b = append(b, cp.GoldenOut...)
	b = binary.AppendUvarint(b, cp.GoldenExit)
	b = binary.AppendUvarint(b, cp.GoldenInstr)
	return binary.AppendUvarint(b, cp.KInstr)
}

func decodeGolden(b []byte, cp *Campaign) error {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return fmt.Errorf("arch: truncated golden summary")
	}
	cp.GoldenOut = append([]byte(nil), b[k:k+int(n)]...)
	b = b[k+int(n):]
	for _, dst := range []*uint64{&cp.GoldenExit, &cp.GoldenInstr, &cp.KInstr} {
		v, k := binary.Uvarint(b)
		if k <= 0 {
			return fmt.Errorf("arch: truncated golden summary")
		}
		*dst = v
		b = b[k:]
	}
	return nil
}

// PrepareOptions configure the golden run.
type PrepareOptions struct {
	// NoTB runs the golden execution step-by-step instead of through
	// the translation-block engine. The captured chain is bit-identical
	// either way; campaigns pass their own NoTB so an engine bug could
	// never corrupt both sides of the tb-on/tb-off equivalence gate.
	NoTB bool
}

// Prepare runs the golden execution with default options and captures
// the delta checkpoint chain (boot state only when nsnaps <= 1).
func Prepare(img *kernel.Image, nsnaps int) (*Campaign, error) {
	return PrepareWith(img, nsnaps, PrepareOptions{})
}

// PrepareWith runs the golden execution and captures the delta
// checkpoint chain (boot state only when nsnaps <= 1).
func PrepareWith(img *kernel.Image, nsnaps int, opts PrepareOptions) (*Campaign, error) {
	run := func(c *emu.CPU) func(uint64) bool {
		if opts.NoTB {
			return c.Run
		}
		return tb.New(c).Run
	}
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(img.ISA, bus, img.Entry)
	if !run(c)(1 << 30) {
		return nil, fmt.Errorf("arch: golden run did not finish")
	}
	if bus.Halt != dev.HaltClean {
		return nil, fmt.Errorf("arch: golden run ended %v", bus.Halt)
	}
	cp := &Campaign{
		Img:         img,
		GoldenOut:   append([]byte(nil), bus.Out...),
		GoldenExit:  bus.ExitCode,
		GoldenInstr: c.Instret,
		KInstr:      c.KernelInstret,
	}
	cp.Limit = 3*cp.GoldenInstr + 100000

	cp.chain = ckpt.New(ckpt.Meta{
		Engine:   Engine,
		RAMBytes: int(img.RAM.Size()),
		Golden:   encodeGolden(cp),
	})
	if nsnaps > 1 {
		step := cp.GoldenInstr / uint64(nsnaps)
		if step == 0 {
			step = 1
		}
		bus2 := dev.NewBus(img.NewMemory())
		c2 := emu.New(img.ISA, bus2, img.Entry)
		run2 := run(c2)
		var sbuf []byte
		for next := uint64(0); next < cp.GoldenInstr; next += step {
			run2(next)
			if n := cp.chain.Len(); n > 0 && c2.Instret <= cp.chain.Coord(n-1) {
				continue
			}
			s := c2.Save()
			sbuf = appendArchState(sbuf[:0], s, bus2)
			cp.chain.Add(c2.Instret, archProbe(s), bus2.Mem.Bytes(), sbuf, kinstrAux(s.KInstr))
		}
	} else {
		// Keep one boot-state checkpoint so worker arenas always have a
		// restore source.
		boot := emu.Snapshot{PC: img.Entry, Mode: isa.Kernel}
		blob := appendArchState(nil, boot, &dev.Bus{})
		cp.chain.Add(0, archProbe(boot), img.RAM.Bytes(), blob, kinstrAux(0))
	}
	cp.chain.Finish()
	return cp, nil
}

// PrepareFromChain builds a campaign from a persisted checkpoint chain
// without executing a single golden-run instruction. The caller is
// responsible for fingerprint-matching the chain to its campaign
// configuration; this validates engine, image geometry and
// decodability of the boot checkpoint, returning an error (for a cold
// Prepare fallback) on any mismatch.
func PrepareFromChain(img *kernel.Image, ch *ckpt.Chain) (*Campaign, error) {
	if ch.Meta.Engine != Engine {
		return nil, fmt.Errorf("arch: chain engine %q, want %q", ch.Meta.Engine, Engine)
	}
	if ch.Meta.RAMBytes != int(img.RAM.Size()) {
		return nil, fmt.Errorf("arch: chain RAM %d bytes, image has %d", ch.Meta.RAMBytes, img.RAM.Size())
	}
	if ch.Len() == 0 {
		return nil, fmt.Errorf("arch: empty chain")
	}
	cp := &Campaign{Img: img, chain: ch, Resumed: true}
	if err := decodeGolden(ch.Meta.Golden, cp); err != nil {
		return nil, err
	}
	if _, err := decodeArchState(ch.StateAt(0, nil, -1)); err != nil {
		return nil, err
	}
	cp.Limit = 3*cp.GoldenInstr + 100000
	return cp, nil
}

// worker is the reusable per-worker arena: an emulator, bus and RAM
// image restored in place for every injection by delta-walking the
// chain between restore points, keeping the hot loop allocation-free.
type worker struct {
	cpu *emu.CPU
	bus *dev.Bus
	m   *mem.Memory
	eng *tb.Engine // nil when the campaign runs step-by-step (NoTB)
	src int        // checkpoint index the arena was last restored from
	// stateBuf holds the materialized state blob of checkpoint src;
	// cmpBuf is the convergence-test encode scratch.
	stateBuf []byte
	cmpBuf   []byte
}

// cpuFor readies the worker's arena at dynamic instruction k, restoring
// from checkpoint g. The bus is reset (not restored): faulty runs
// accumulate device output from empty, exactly as before the chain
// refactor, and the convergence test accounts for it.
func (cp *Campaign) cpuFor(w *worker, k uint64, g int) (*emu.CPU, *dev.Bus) {
	if w.m == nil {
		w.m = mem.New(cp.Img.RAM.Size())
		w.m.EnableTracking()
		w.bus = dev.NewBus(w.m)
		w.cpu = emu.New(cp.Img.ISA, w.bus, cp.Img.Entry)
		w.cpu.NoDecodeCache = cp.NoDecodeCache
		if !cp.NoTB {
			w.eng = tb.New(w.cpu)
			w.eng.Paranoid = cp.TBParanoid
		}
		w.src = -1
	} else {
		w.bus.Reset()
	}
	w.stateBuf = cp.chain.StateAt(g, w.stateBuf, w.src)
	s, err := decodeArchState(w.stateBuf)
	if err != nil {
		// Unreachable for a chain that passed Prepare/PrepareFromChain
		// validation: every checkpoint was encoded by this codec.
		panic(fmt.Sprintf("arch: checkpoint %d restore: %v", g, err))
	}
	s.KInstr = kinstrFromAux(cp.chain.Aux(g))
	cp.chain.RestoreRAM(w.m, w.src, g)
	w.src = g
	w.cpu.Restore(s)
	// Advance to the fault instant — an exact committed-instruction
	// boundary either way.
	if w.eng != nil {
		w.eng.Run(k)
	} else {
		for w.cpu.Instret < k {
			if !w.cpu.Step() {
				break
			}
		}
	}
	return w.cpu, w.bus
}

// Fault is one architecture-level injection.
type Fault struct {
	FPM micro.FPM // WD, WOI or WI
	K   uint64    // dynamic instruction index
	Bit int
	// Slot selects among an instruction's operand locations for WD.
	Slot int
}

// Sample draws a fault for the given FPM, uniform over the dynamic
// instruction stream.
func (cp *Campaign) Sample(r *rand.Rand, fpm micro.FPM) Fault {
	return Fault{
		FPM:  fpm,
		K:    1 + uint64(r.Int63n(cp.sampleSpan())),
		Bit:  r.Intn(64),
		Slot: r.Intn(4),
	}
}

// sampleSpan is the dynamic-instant sampling span, clamped so a
// degenerate golden run (<= 2 instructions) never passes Int63n an
// n <= 0. The draw still happens, keeping sequences aligned.
func (cp *Campaign) sampleSpan() int64 {
	span := int64(cp.GoldenInstr) - 1
	if span < 1 {
		span = 1
	}
	return span
}

// UniformTarget labels register-uniform injections in the record
// stream and the results store, distinguishing them from the per-FPM
// operand-targeted campaigns.
const UniformTarget = "reg-uniform"

// SampleUniform draws a register-uniform fault: a bit flip in a
// uniformly chosen architectural register (r1..r(N-1); r0 is
// hard-wired) at a uniformly chosen dynamic instant, with no
// conditioning on whether the register is about to be consumed. This is
// the sampling model that ACE analysis upper-bounds: a flip outside a
// def-to-last-use interval is overwritten before any read and cannot
// alter the outcome, so P(visible) <= RegACE <= the static bound. The
// per-FPM Sample path instead corrupts a *consumed* operand, a
// liveness-conditioned probability that legitimately exceeds ACE.
func (cp *Campaign) SampleUniform(r *rand.Rand) Fault {
	return Fault{
		FPM:  micro.FPMNone,
		K:    1 + uint64(r.Int63n(cp.sampleSpan())),
		Bit:  r.Intn(cp.Img.ISA.XLen()),
		Slot: 1 + r.Intn(cp.Img.ISA.NumRegs()-1),
	}
}

// applyUniform flips f.Bit of register f.Slot in place.
func applyUniform(c *emu.CPU, f Fault) {
	c.SetReg(f.Slot, c.Reg(f.Slot)^(1<<uint(f.Bit)))
}

// Run performs one injection and classifies the program-level outcome,
// building a throwaway arena; campaigns use the pooled worker path in
// RunCampaign.
func (cp *Campaign) Run(f Fault) inject.Outcome {
	w := &worker{src: -1}
	g := cp.chain.Find(f.K)
	c, bus := cp.cpuFor(w, f.K, g)
	o, _ := cp.classify(c, bus, g, w, func() { cp.apply(c, f) })
	return o
}

// classify applies an injection to a machine already advanced to the
// fault instant (restored from checkpoint g), runs it to halt, the
// watchdog limit or provable golden convergence, and classifies the
// outcome. earlyStop reports a convergence-classified run.
func (cp *Campaign) classify(c *emu.CPU, bus *dev.Bus, g int, w *worker, apply func()) (o inject.Outcome, earlyStop bool) {
	if bus.Halted() {
		return inject.Masked, false
	}
	apply()
	halted, converged := cp.runFaulty(c, bus, g, w)
	switch {
	case converged:
		// Architectural state, device state and memory all bit-equal to
		// golden at the same instruction boundary: the remaining
		// execution is exactly golden's, so the outcome is golden's —
		// clean exit, golden output: Masked.
		return inject.Masked, true
	case !halted:
		return inject.Crash, false // live/deadlock under the fault
	case bus.Halt == dev.HaltPanic:
		return inject.Crash, false
	case bus.Halt == dev.HaltDetected:
		return inject.Detected, false
	default:
		if bus.ExitCode == cp.GoldenExit && bytes.Equal(bus.Out, cp.GoldenOut) {
			return inject.Masked, false
		}
		return inject.SDC, false
	}
}

// runFaulty executes the faulty machine, pausing at every golden
// checkpoint boundary past g to test for convergence.
func (cp *Campaign) runFaulty(c *emu.CPU, bus *dev.Bus, g int, w *worker) (halted, converged bool) {
	// run executes to the given instruction boundary (or halt) and
	// reports halt — translation-block dispatch when the worker carries
	// an engine, instruction-at-a-time stepping otherwise. Both land on
	// exact committed-instruction boundaries, so convergence tests see
	// identical states.
	run := func(limit uint64) bool {
		if w.eng != nil {
			return w.eng.Run(limit)
		}
		for c.Instret < limit {
			if !c.Step() {
				return true
			}
		}
		return bus.Halted()
	}
	if !cp.NoEarlyStop && bus.Mem.Tracking() {
		for j := g + 1; j < cp.chain.Len(); j++ {
			target := cp.chain.Coord(j)
			// apply may have executed forward past this boundary while
			// searching for a suitable operand; skip it.
			if target < c.Instret {
				continue
			}
			if target > cp.Limit {
				target = cp.Limit
			}
			if run(target) {
				return true, false
			}
			if cp.convergedAt(c, bus, g, j, w) {
				return false, true
			}
		}
	}
	if run(cp.Limit) {
		return true, false
	}
	return bus.Halted(), false
}

// convergedAt reports whether the faulty machine, at the instruction
// boundary of checkpoint j, is bit-identical to the golden run: the
// scalar probe gates the test; on a match the state is encoded
// canonically (architectural fields + device state) and compared
// chunk-wise against the chain, and RAM is compared on the union of the
// faulty run's dirty pages (tracked since its restore from checkpoint
// g) and the chain's content-changed pages in (g, j] — every other
// page provably equals checkpoint g's copy in both runs. KInstr is
// excluded: it is reporting state no instruction ever reads.
func (cp *Campaign) convergedAt(c *emu.CPU, bus *dev.Bus, g, j int, w *worker) bool {
	s := c.Save()
	if s.Instret != cp.chain.Coord(j) || archProbe(s) != cp.chain.Probe(j) {
		return false
	}
	w.cmpBuf = appendArchState(w.cmpBuf[:0], s, bus)
	return cp.chain.StateEqual(j, w.cmpBuf) && cp.chain.RAMEqual(bus.Mem, g, j)
}

// apply injects the fault just before the next instruction executes.
// For WD it corrupts one of the instruction's source operands in
// architectural storage (register or loaded memory word); for WOI/WI it
// flips an operand-field or operation-field bit of the instruction word
// in memory (persistent, like a corrupted architectural code copy).
func (cp *Campaign) apply(c *emu.CPU, f Fault) {
	is := c.ISA
	// Find the next instruction with a suitable target, executing
	// forward when the current one has none (keeps sampling total).
	for steps := 0; steps < 4096; steps++ {
		w, ok := c.Bus.Mem.Word32(c.PC)
		if !ok {
			return
		}
		in, ok := isa.Decode(w, is)
		if !ok {
			return
		}
		switch f.FPM {
		case micro.FPMWD:
			type loc struct {
				isReg bool
				reg   int
				addr  uint64
				width int
			}
			var locs []loc
			if in.Op.ReadsRs1() && in.Rs1 != 0 {
				locs = append(locs, loc{isReg: true, reg: in.Rs1, width: is.XLen()})
			}
			if in.Op.ReadsRs2() && in.Rs2 != 0 {
				locs = append(locs, loc{isReg: true, reg: in.Rs2, width: is.XLen()})
			}
			if in.Op.IsLoad() {
				addr := (c.Reg(in.Rs1) + uint64(in.Imm)) & is.Mask()
				if c.Bus.Mem.Valid(addr, in.Op.MemBytes()) {
					locs = append(locs, loc{addr: addr, width: 8 * in.Op.MemBytes()})
				}
			}
			if len(locs) == 0 {
				if !c.Step() {
					return
				}
				continue
			}
			l := locs[f.Slot%len(locs)]
			bit := f.Bit % l.width
			if l.isReg {
				c.SetReg(l.reg, c.Reg(l.reg)^(1<<uint(bit)))
			} else {
				c.Bus.Mem.FlipBit(l.addr+uint64(bit/8), uint(bit%8))
			}
			return
		case micro.FPMWI, micro.FPMWOI:
			opMask := isa.OperationMask(w, is)
			want := opMask
			if f.FPM == micro.FPMWOI {
				want = ^opMask
			}
			if want == 0 {
				if !c.Step() {
					return
				}
				continue
			}
			// Pick the f.Bit-th set bit of the field mask (wrapping).
			n := popcount(want)
			idx := f.Bit % n
			bit := nthSetBit(want, idx)
			c.Bus.Mem.FlipBit(c.PC+uint64(bit/8), uint(bit%8))
			return
		default:
			return
		}
	}
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func nthSetBit(m uint32, n int) int {
	for i := 0; i < 32; i++ {
		if m&(1<<uint(i)) != 0 {
			if n == 0 {
				return i
			}
			n--
		}
	}
	return 0
}

// Tally aggregates PVF outcomes for one FPM. It is the shared
// record-stream aggregate; PVF() reads it at this layer.
type Tally = results.Tally

// record converts a classified fault into the layer-agnostic form.
func record(f Fault, o inject.Outcome, earlyStop bool) results.Record {
	return results.Record{
		Layer:     results.LayerArch,
		Target:    f.FPM.String(),
		Coord:     f.K,
		Bit:       f.Bit,
		Slot:      f.Slot,
		Outcome:   o,
		EarlyStop: earlyStop,
	}
}

// RunCampaign performs n injections under the given FPM, fanned across
// cp.Workers goroutines (<= 0: all CPUs). The fault sequence is
// pre-drawn from the seed exactly as the serial loop drew it, so the
// tally is bit-identical for every worker count. progress, when
// non-nil, is called exactly once per injection, serialized and in
// injection-index order; it must not call back into the campaign.
func (cp *Campaign) RunCampaign(fpm micro.FPM, n int, seed int64, progress func(i int, r results.Record)) Tally {
	return results.TallyOf(cp.Records(fpm, n, 0, seed, progress))
}

// Records executes injections [from, n) of the n-fault sequence
// pre-drawn from seed and returns their records, indexed absolutely.
// Records for [0, from) from an earlier shorter campaign with the same
// key concatenate into exactly a one-shot n-injection record set (the
// top-up resume primitive).
func (cp *Campaign) Records(fpm micro.FPM, n, from int, seed int64, progress func(i int, r results.Record)) []results.Record {
	faults := cp.Pool(fpm, n, seed)
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	return cp.RecordsAt(faults[from:], from, progress)
}

// Pool pre-draws the n-fault sequence for the given FPM from seed —
// exactly the faults Records would inject, exposed so stratified
// campaigns can partition the pool into equivalence classes and inject
// per-stratum subsets of it.
func (cp *Campaign) Pool(fpm micro.FPM, n int, seed int64) []Fault {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.Sample(r, fpm)
	}
	return faults
}

// RecordsAt injects the given faults (any ordered subset of a pool) and
// returns their records with absolute indices base+i — the stratified
// analogue of Records, bit-identical for every worker count.
func (cp *Campaign) RecordsAt(faults []Fault, base int, progress func(i int, r results.Record)) []results.Record {
	jobs := make([]campaign.Job, len(faults))
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.chain.Find(faults[i].K)}
	}
	var emit func(i int, rec results.Record)
	if progress != nil {
		emit = func(i int, rec results.Record) { progress(base+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) results.Record {
			f := faults[j.Index]
			c, bus := cp.cpuFor(w, f.K, j.Group)
			o, early := cp.classify(c, bus, j.Group, w, func() { cp.apply(c, f) })
			rec := record(f, o, early)
			rec.Index = base + j.Index
			return rec
		},
		emit)
}

// CkptFor returns the index of the checkpoint governing a dynamic
// instruction instant — the program point stratified sampling keys
// static features on.
func (cp *Campaign) CkptFor(k uint64) int { return cp.chain.Find(k) }

// CheckpointPCs returns the architectural PC of every checkpoint's
// restore state, materialized by one incremental delta-walk of the
// chain.
func (cp *Campaign) CheckpointPCs() []uint64 {
	pcs := make([]uint64, cp.chain.Len())
	var buf []byte
	for i := range pcs {
		buf = cp.chain.StateAt(i, buf, i-1)
		s, err := decodeArchState(buf)
		if err != nil {
			continue // undecodable legacy blob: its sites share one stratum
		}
		pcs[i] = s.PC
	}
	return pcs
}

// UniformRecords executes register-uniform injections [from, n) of the
// n-fault sequence pre-drawn from seed (see SampleUniform), with the
// same absolute indexing and top-up resume discipline as Records.
func (cp *Campaign) UniformRecords(n, from int, seed int64, progress func(i int, r results.Record)) []results.Record {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.SampleUniform(r)
	}
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	jobs := make([]campaign.Job, n-from)
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.chain.Find(faults[from+i].K)}
	}
	var emit func(i int, rec results.Record)
	if progress != nil {
		emit = func(i int, rec results.Record) { progress(from+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) results.Record {
			f := faults[from+j.Index]
			c, bus := cp.cpuFor(w, f.K, j.Group)
			o, early := cp.classify(c, bus, j.Group, w, func() { applyUniform(c, f) })
			return results.Record{
				Layer:     results.LayerArch,
				Target:    UniformTarget,
				Coord:     f.K,
				Bit:       f.Bit,
				Slot:      f.Slot,
				Outcome:   o,
				EarlyStop: early,
				Index:     from + j.Index,
			}
		},
		emit)
}
