// Package arch implements architecture-level (PVF) fault injection on
// the functional emulator. Faults originate in architecturally visible
// resources of the dynamic program flow — register operands, loaded
// memory words, and instruction words — and, unlike software-level
// (SVF) injection, the flow includes the kernel instructions executed
// on the program's behalf. Following the paper, injections are
// performed per fault-propagation model: WD (operand data), WOI
// (operand/immediate encoding fields) and WI (operation encoding
// fields).
package arch

import (
	"bytes"
	"fmt"
	"math/rand"

	"vulnstack/internal/campaign"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/inject"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// Campaign prepares PVF injections for one image.
type Campaign struct {
	Img *kernel.Image

	GoldenOut  []byte
	GoldenExit uint64
	// GoldenInstr is the dynamic instruction count (user + kernel).
	GoldenInstr uint64
	KInstr      uint64

	snaps   []emu.Snapshot
	snapMem []*mem.Memory
	Limit   uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int
}

// Prepare runs the golden execution and captures snapshots.
func Prepare(img *kernel.Image, nsnaps int) (*Campaign, error) {
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(img.ISA, bus, img.Entry)
	if !c.Run(1 << 30) {
		return nil, fmt.Errorf("arch: golden run did not finish")
	}
	if bus.Halt != dev.HaltClean {
		return nil, fmt.Errorf("arch: golden run ended %v", bus.Halt)
	}
	cp := &Campaign{
		Img:         img,
		GoldenOut:   append([]byte(nil), bus.Out...),
		GoldenExit:  bus.ExitCode,
		GoldenInstr: c.Instret,
		KInstr:      c.KernelInstret,
	}
	cp.Limit = 3*cp.GoldenInstr + 100000

	if nsnaps > 1 {
		step := cp.GoldenInstr / uint64(nsnaps)
		if step == 0 {
			step = 1
		}
		bus2 := dev.NewBus(img.NewMemory())
		c2 := emu.New(img.ISA, bus2, img.Entry)
		for next := uint64(0); next < cp.GoldenInstr; next += step {
			for c2.Instret < next {
				if !c2.Step() {
					break
				}
			}
			cp.snaps = append(cp.snaps, c2.Save())
			cp.snapMem = append(cp.snapMem, bus2.Mem.Clone())
		}
	} else {
		// Keep one boot-state snapshot so worker arenas always have a
		// restore source; the pristine image RAM is immutable, so it is
		// shared rather than cloned.
		cp.snaps = []emu.Snapshot{{PC: img.Entry, Mode: isa.Kernel}}
		cp.snapMem = []*mem.Memory{img.RAM}
	}
	return cp, nil
}

// snapFor returns the index of the latest snapshot at or before dynamic
// instruction k.
func (cp *Campaign) snapFor(k uint64) int {
	best := 0
	for i := range cp.snaps {
		if cp.snaps[i].Instret <= k {
			best = i
		}
	}
	return best
}

// cpuAt returns an emulator advanced to dynamic instruction k.
func (cp *Campaign) cpuAt(k uint64) (*emu.CPU, *dev.Bus) {
	bus := dev.NewBus(cp.Img.NewMemory())
	c := emu.New(cp.Img.ISA, bus, cp.Img.Entry)
	best := cp.snapFor(k)
	bus.Mem.CopyFrom(cp.snapMem[best])
	c.Restore(cp.snaps[best])
	for c.Instret < k {
		if !c.Step() {
			break
		}
	}
	return c, bus
}

// worker is the reusable per-worker arena: an emulator, bus and RAM
// image restored in place for every injection (dirty pages only when
// the restore source repeats), keeping the hot loop allocation-free.
type worker struct {
	cpu *emu.CPU
	bus *dev.Bus
	m   *mem.Memory
	src int // snapshot index the arena RAM was last restored from
}

// cpuFor readies the worker's arena at dynamic instruction k, restoring
// from snapshot g.
func (cp *Campaign) cpuFor(w *worker, k uint64, g int) (*emu.CPU, *dev.Bus) {
	if w.m == nil {
		w.m = cp.snapMem[g].Clone()
		w.m.EnableTracking()
		w.bus = dev.NewBus(w.m)
		w.cpu = emu.New(cp.Img.ISA, w.bus, cp.Img.Entry)
	} else {
		w.bus.Reset()
		if w.src == g {
			w.m.RestoreDirty(cp.snapMem[g])
		} else {
			w.m.CopyFrom(cp.snapMem[g])
		}
	}
	w.src = g
	w.cpu.Restore(cp.snaps[g])
	for w.cpu.Instret < k {
		if !w.cpu.Step() {
			break
		}
	}
	return w.cpu, w.bus
}

// Fault is one architecture-level injection.
type Fault struct {
	FPM micro.FPM // WD, WOI or WI
	K   uint64    // dynamic instruction index
	Bit int
	// Slot selects among an instruction's operand locations for WD.
	Slot int
}

// Sample draws a fault for the given FPM, uniform over the dynamic
// instruction stream.
func (cp *Campaign) Sample(r *rand.Rand, fpm micro.FPM) Fault {
	return Fault{
		FPM:  fpm,
		K:    1 + uint64(r.Int63n(int64(cp.GoldenInstr-1))),
		Bit:  r.Intn(64),
		Slot: r.Intn(4),
	}
}

// UniformTarget labels register-uniform injections in the record
// stream and the results store, distinguishing them from the per-FPM
// operand-targeted campaigns.
const UniformTarget = "reg-uniform"

// SampleUniform draws a register-uniform fault: a bit flip in a
// uniformly chosen architectural register (r1..r(N-1); r0 is
// hard-wired) at a uniformly chosen dynamic instant, with no
// conditioning on whether the register is about to be consumed. This is
// the sampling model that ACE analysis upper-bounds: a flip outside a
// def-to-last-use interval is overwritten before any read and cannot
// alter the outcome, so P(visible) <= RegACE <= the static bound. The
// per-FPM Sample path instead corrupts a *consumed* operand, a
// liveness-conditioned probability that legitimately exceeds ACE.
func (cp *Campaign) SampleUniform(r *rand.Rand) Fault {
	return Fault{
		FPM:  micro.FPMNone,
		K:    1 + uint64(r.Int63n(int64(cp.GoldenInstr-1))),
		Bit:  r.Intn(cp.Img.ISA.XLen()),
		Slot: 1 + r.Intn(cp.Img.ISA.NumRegs()-1),
	}
}

// applyUniform flips f.Bit of register f.Slot in place.
func applyUniform(c *emu.CPU, f Fault) {
	c.SetReg(f.Slot, c.Reg(f.Slot)^(1<<uint(f.Bit)))
}

// Run performs one injection and classifies the program-level outcome.
// It builds a fresh machine per call; campaigns use the worker-arena
// path in RunCampaign instead.
func (cp *Campaign) Run(f Fault) inject.Outcome {
	c, bus := cp.cpuAt(f.K)
	return cp.classify(c, bus, func() { cp.apply(c, f) })
}

// classify applies an injection to a machine already advanced to the
// fault instant, runs it to the watchdog limit and classifies the
// outcome.
func (cp *Campaign) classify(c *emu.CPU, bus *dev.Bus, apply func()) inject.Outcome {
	if bus.Halted() {
		return inject.Masked
	}
	apply()
	for c.Instret < cp.Limit {
		if !c.Step() {
			break
		}
	}
	switch {
	case !bus.Halted():
		return inject.Crash // live/deadlock under the fault
	case bus.Halt == dev.HaltPanic:
		return inject.Crash
	case bus.Halt == dev.HaltDetected:
		return inject.Detected
	default:
		if bus.ExitCode == cp.GoldenExit && bytes.Equal(bus.Out, cp.GoldenOut) {
			return inject.Masked
		}
		return inject.SDC
	}
}

// apply injects the fault just before the next instruction executes.
// For WD it corrupts one of the instruction's source operands in
// architectural storage (register or loaded memory word); for WOI/WI it
// flips an operand-field or operation-field bit of the instruction word
// in memory (persistent, like a corrupted architectural code copy).
func (cp *Campaign) apply(c *emu.CPU, f Fault) {
	is := c.ISA
	// Find the next instruction with a suitable target, executing
	// forward when the current one has none (keeps sampling total).
	for steps := 0; steps < 4096; steps++ {
		w, ok := c.Bus.Mem.Word32(c.PC)
		if !ok {
			return
		}
		in, ok := isa.Decode(w, is)
		if !ok {
			return
		}
		switch f.FPM {
		case micro.FPMWD:
			type loc struct {
				isReg bool
				reg   int
				addr  uint64
				width int
			}
			var locs []loc
			if in.Op.ReadsRs1() && in.Rs1 != 0 {
				locs = append(locs, loc{isReg: true, reg: in.Rs1, width: is.XLen()})
			}
			if in.Op.ReadsRs2() && in.Rs2 != 0 {
				locs = append(locs, loc{isReg: true, reg: in.Rs2, width: is.XLen()})
			}
			if in.Op.IsLoad() {
				addr := (c.Reg(in.Rs1) + uint64(in.Imm)) & is.Mask()
				if c.Bus.Mem.Valid(addr, in.Op.MemBytes()) {
					locs = append(locs, loc{addr: addr, width: 8 * in.Op.MemBytes()})
				}
			}
			if len(locs) == 0 {
				if !c.Step() {
					return
				}
				continue
			}
			l := locs[f.Slot%len(locs)]
			bit := f.Bit % l.width
			if l.isReg {
				c.SetReg(l.reg, c.Reg(l.reg)^(1<<uint(bit)))
			} else {
				c.Bus.Mem.FlipBit(l.addr+uint64(bit/8), uint(bit%8))
			}
			return
		case micro.FPMWI, micro.FPMWOI:
			opMask := isa.OperationMask(w, is)
			want := opMask
			if f.FPM == micro.FPMWOI {
				want = ^opMask
			}
			if want == 0 {
				if !c.Step() {
					return
				}
				continue
			}
			// Pick the f.Bit-th set bit of the field mask (wrapping).
			n := popcount(want)
			idx := f.Bit % n
			bit := nthSetBit(want, idx)
			c.Bus.Mem.FlipBit(c.PC+uint64(bit/8), uint(bit%8))
			return
		default:
			return
		}
	}
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

func nthSetBit(m uint32, n int) int {
	for i := 0; i < 32; i++ {
		if m&(1<<uint(i)) != 0 {
			if n == 0 {
				return i
			}
			n--
		}
	}
	return 0
}

// Tally aggregates PVF outcomes for one FPM. It is the shared
// record-stream aggregate; PVF() reads it at this layer.
type Tally = results.Tally

// record converts a classified fault into the layer-agnostic form.
func record(f Fault, o inject.Outcome) results.Record {
	return results.Record{
		Layer:   results.LayerArch,
		Target:  f.FPM.String(),
		Coord:   f.K,
		Bit:     f.Bit,
		Slot:    f.Slot,
		Outcome: o,
	}
}

// RunCampaign performs n injections under the given FPM, fanned across
// cp.Workers goroutines (<= 0: all CPUs). The fault sequence is
// pre-drawn from the seed exactly as the serial loop drew it, so the
// tally is bit-identical for every worker count. progress, when
// non-nil, is called exactly once per injection, serialized and in
// injection-index order; it must not call back into the campaign.
func (cp *Campaign) RunCampaign(fpm micro.FPM, n int, seed int64, progress func(i int, r results.Record)) Tally {
	return results.TallyOf(cp.Records(fpm, n, 0, seed, progress))
}

// Records executes injections [from, n) of the n-fault sequence
// pre-drawn from seed and returns their records, indexed absolutely.
// Records for [0, from) from an earlier shorter campaign with the same
// key concatenate into exactly a one-shot n-injection record set (the
// top-up resume primitive).
func (cp *Campaign) Records(fpm micro.FPM, n, from int, seed int64, progress func(i int, r results.Record)) []results.Record {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.Sample(r, fpm)
	}
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	jobs := make([]campaign.Job, n-from)
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.snapFor(faults[from+i].K)}
	}
	var emit func(i int, rec results.Record)
	if progress != nil {
		emit = func(i int, rec results.Record) { progress(from+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) results.Record {
			f := faults[from+j.Index]
			c, bus := cp.cpuFor(w, f.K, j.Group)
			rec := record(f, cp.classify(c, bus, func() { cp.apply(c, f) }))
			rec.Index = from + j.Index
			return rec
		},
		emit)
}

// UniformRecords executes register-uniform injections [from, n) of the
// n-fault sequence pre-drawn from seed (see SampleUniform), with the
// same absolute indexing and top-up resume discipline as Records.
func (cp *Campaign) UniformRecords(n, from int, seed int64, progress func(i int, r results.Record)) []results.Record {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.SampleUniform(r)
	}
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	jobs := make([]campaign.Job, n-from)
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.snapFor(faults[from+i].K)}
	}
	var emit func(i int, rec results.Record)
	if progress != nil {
		emit = func(i int, rec results.Record) { progress(from+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) results.Record {
			f := faults[from+j.Index]
			c, bus := cp.cpuFor(w, f.K, j.Group)
			o := cp.classify(c, bus, func() { applyUniform(c, f) })
			return results.Record{
				Layer:   results.LayerArch,
				Target:  UniformTarget,
				Coord:   f.K,
				Bit:     f.Bit,
				Slot:    f.Slot,
				Outcome: o,
				Index:   from + j.Index,
			}
		},
		emit)
}
