// Package inject drives microarchitecture-level fault-injection
// campaigns (the GeFIN analogue): statistical single-bit-flip sampling
// per Leveugle et al., snapshot-accelerated faulty runs, and outcome
// classification into the paper's fault-effect classes (Masked, SDC,
// Crash, Detected) plus the HVF fault-propagation models.
package inject

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"vulnstack/internal/campaign"
	"vulnstack/internal/dev"
	"vulnstack/internal/kernel"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// Outcome is the end-to-end fault effect class. It lives in the
// layer-agnostic results package; the aliases keep this package the
// canonical vocabulary for all three injectors.
type Outcome = results.Outcome

const (
	Masked      = results.Masked
	SDC         = results.SDC
	Crash       = results.Crash
	Detected    = results.Detected
	NumOutcomes = results.NumOutcomes
)

// Record is the layer-agnostic per-injection record all campaigns emit.
type Record = results.Record

// Tally is the record-stream aggregate shared by every layer.
type Tally = results.Tally

// Fault is one sampled single-bit transient fault.
type Fault struct {
	Struct micro.Structure
	Entry  int
	Bit    int
	Cycle  uint64
}

// Result is the classified effect of one injection.
type Result struct {
	Fault   Fault
	Outcome Outcome
	// Visible reports architectural contact (the HVF numerator); FPM
	// classifies it.
	Visible bool
	FPM     micro.FPM
	// ContactCycle is when the fault first became visible.
	ContactCycle uint64
	// Live is false when the flip was provably dead at injection time.
	Live bool
	// EarlyStop reports the run was classified by golden-state
	// convergence at a snapshot boundary instead of running to
	// completion. Provenance only: the outcome is provably identical.
	EarlyStop bool
}

// Record converts the result into the layer-agnostic record form
// (Index is the caller's position in the pre-drawn fault sequence).
func (r Result) Record() results.Record {
	return results.Record{
		Layer:     results.LayerMicro,
		Target:    r.Fault.Struct.String(),
		Coord:     r.Fault.Cycle,
		Entry:     r.Fault.Entry,
		Bit:       r.Fault.Bit,
		Outcome:   r.Outcome,
		Visible:   r.Visible,
		FPM:       r.FPM,
		Contact:   r.ContactCycle,
		Live:      r.Live,
		EarlyStop: r.EarlyStop,
	}
}

// Golden describes the fault-free reference run.
type Golden struct {
	Out      []byte
	ExitCode uint64
	Cycles   uint64
	Instret  uint64
	KInstr   uint64
}

// Campaign holds everything needed to run injections for one
// (program image, microarchitecture) pair.
type Campaign struct {
	Img    *kernel.Image
	Cfg    micro.Config
	Golden Golden

	snaps  []*micro.Core
	snapAt []uint64
	// goldenDirty[i] lists the RAM pages the golden run wrote in the
	// interval (snapAt[i-1], snapAt[i]] — the only pages on which
	// snapshot i's RAM can differ from snapshot i-1's. The early-stop
	// RAM comparison touches exactly these pages plus the faulty run's
	// own dirty set.
	goldenDirty [][]uint32
	// Limit is the faulty-run watchdog in cycles.
	Limit uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int
	// NoEarlyStop disables convergence early-stop classification; runs
	// then always execute to halt or Limit. The zero value keeps the
	// optimization on — outcomes are provably identical either way.
	NoEarlyStop bool
}

// Prepare runs the golden execution (twice: once to learn its length,
// once to capture evenly spaced snapshots) and returns a ready
// campaign. nsnaps <= 1 disables snapshotting.
func Prepare(img *kernel.Image, cfg micro.Config, nsnaps int, maxCycles uint64) (*Campaign, error) {
	if cfg.ISA != img.ISA {
		return nil, fmt.Errorf("inject: config %s is %v but image is %v", cfg.Name, cfg.ISA, img.ISA)
	}
	if maxCycles == 0 {
		maxCycles = 1 << 28
	}
	core := micro.New(cfg, img.NewMemory(), img.Entry)
	if !core.Run(maxCycles) {
		return nil, fmt.Errorf("inject: golden run did not finish in %d cycles", maxCycles)
	}
	if core.Bus.Halt != dev.HaltClean {
		return nil, fmt.Errorf("inject: golden run ended %v (panic code %d)", core.Bus.Halt, core.Bus.PanicCode)
	}
	cp := &Campaign{
		Img: img,
		Cfg: cfg,
		Golden: Golden{
			Out:      append([]byte(nil), core.Bus.Out...),
			ExitCode: core.Bus.ExitCode,
			Cycles:   core.Cycle,
			Instret:  core.Instret,
			KInstr:   core.KInstr,
		},
	}
	cp.Limit = 3*cp.Golden.Cycles + 50000

	if nsnaps > 1 {
		step := cp.Golden.Cycles / uint64(nsnaps)
		if step == 0 {
			step = 1
		}
		c2 := micro.New(cfg, img.NewMemory(), img.Entry)
		// Track the golden run's RAM writes so each snapshot interval's
		// dirty pages are known: the early-stop comparison then touches
		// only pages the two runs could have dirtied differently.
		c2.Bus.Mem.EnableTracking()
		for next := uint64(0); next < cp.Golden.Cycles; next += step {
			for c2.Cycle < next {
				if !c2.Step() {
					break
				}
			}
			cp.snaps = append(cp.snaps, c2.Clone())
			cp.snapAt = append(cp.snapAt, c2.Cycle)
			cp.goldenDirty = append(cp.goldenDirty, c2.Bus.Mem.TakeDirtyPages())
		}
	} else {
		// Even without snapshotting, keep one boot-state (cycle 0)
		// snapshot so worker arenas always have a restore source.
		cp.snaps = []*micro.Core{micro.New(cfg, img.NewMemory(), img.Entry)}
		cp.snapAt = []uint64{0}
		cp.goldenDirty = [][]uint32{nil}
	}
	return cp, nil
}

// snapFor returns the index of the latest snapshot at or before cycle.
// snapAt is non-decreasing (snapshots are taken along one golden run),
// so binary search finds it; runs once per injection and must scale
// with -snapshots.
func (cp *Campaign) snapFor(cycle uint64) int {
	// First index strictly past cycle; everything before it is <= cycle.
	i := sort.Search(len(cp.snapAt), func(i int) bool { return cp.snapAt[i] > cycle })
	if i == 0 {
		return 0
	}
	return i - 1
}

// coreAt returns a fresh machine advanced to the given cycle. Dirty
// tracking is enabled at the snapshot baseline so the early-stop RAM
// comparison knows which pages this run touched.
func (cp *Campaign) coreAt(cycle uint64) *micro.Core {
	core := cp.snaps[cp.snapFor(cycle)].Clone()
	core.Bus.Mem.EnableTracking()
	for core.Cycle < cycle {
		if !core.Step() {
			break
		}
	}
	return core
}

// worker is the reusable per-worker machine arena: one cloned core that
// is restored in place (dirty RAM pages only, when the restore source
// repeats) instead of deep-copied for every injection.
type worker struct {
	arena *micro.Core
	src   int // snapshot index the arena was last restored from
}

// coreFor readies the worker's arena at the given cycle, restoring from
// snapshot g.
func (cp *Campaign) coreFor(w *worker, cycle uint64, g int) *micro.Core {
	if w.arena == nil {
		w.arena = cp.snaps[g].Clone()
		w.arena.Bus.Mem.EnableTracking()
	} else {
		w.arena.RestoreFrom(cp.snaps[g], w.src == g)
	}
	w.src = g
	core := w.arena
	for core.Cycle < cycle {
		if !core.Step() {
			break
		}
	}
	return core
}

// Sample draws a fault uniformly over (entry, bit, cycle), following
// the statistical fault sampling of the paper's reference [21].
func (cp *Campaign) Sample(r *rand.Rand, s micro.Structure) Fault {
	entries, bitsPer := cp.Cfg.StructDims(s)
	// A degenerate golden run (<= 2 cycles) leaves no interior cycle to
	// sample; clamp the span so Int63n is never called with n <= 0. The
	// draw still happens, keeping the sequence aligned with longer runs.
	span := int64(cp.Golden.Cycles) - 1
	if span < 1 {
		span = 1
	}
	return Fault{
		Struct: s,
		Entry:  r.Intn(entries),
		Bit:    r.Intn(bitsPer),
		Cycle:  1 + uint64(r.Int63n(span)),
	}
}

// Run performs one injection and classifies its effect. It deep-copies
// a snapshot for the faulty run; campaigns use the worker-arena path in
// RunCampaign instead, which restores state in place.
func (cp *Campaign) Run(f Fault) Result {
	return cp.classify(cp.coreAt(f.Cycle), f, cp.snapFor(f.Cycle))
}

// classify injects f into a machine already advanced to f.Cycle (a
// clone of or restore from snapshot g), runs it to halt, the watchdog
// limit or provable golden convergence, and classifies the effect.
func (cp *Campaign) classify(core *micro.Core, f Fault, g int) Result {
	if core.Bus.Halted() {
		// Injection cycle raced with the halt: nothing to corrupt.
		return Result{Fault: f, Outcome: Masked}
	}
	info := core.Inject(f.Struct, f.Entry, f.Bit)
	res := Result{Fault: f, Live: info.Live}
	if !info.Live {
		res.Outcome = Masked
		return res
	}
	halted, converged := cp.runFaulty(core, g)
	switch {
	case converged:
		// Bit-equal to golden at the same cycle boundary: the remaining
		// execution is exactly the golden run's (Step is a deterministic
		// function of compared state), so the outcome is golden's —
		// clean exit, golden output: Masked.
		res.Outcome = Masked
		res.EarlyStop = true
	case !halted:
		res.Outcome = Crash // deadlock / livelock
	case core.Bus.Halt == dev.HaltPanic:
		res.Outcome = Crash
	case core.Bus.Halt == dev.HaltDetected:
		res.Outcome = Detected
	default:
		if core.Bus.ExitCode == cp.Golden.ExitCode && bytes.Equal(core.Bus.Out, cp.Golden.Out) {
			res.Outcome = Masked
		} else {
			res.Outcome = SDC
		}
	}
	res.Visible = core.Taint.Contacted()
	res.FPM = core.Taint.Class()
	res.ContactCycle = core.Taint.ContactCycle()
	return res
}

// runFaulty executes the faulty machine, pausing at every golden
// snapshot boundary past g to test for convergence. It returns halted
// (the machine reached a halt port) and converged (the run was cut
// short because its full state re-equaled golden's at a boundary).
func (cp *Campaign) runFaulty(core *micro.Core, g int) (halted, converged bool) {
	if cp.NoEarlyStop || !core.Bus.Mem.Tracking() {
		return core.Run(cp.Limit), false
	}
	for j := g + 1; j < len(cp.snaps); j++ {
		for core.Cycle < cp.snapAt[j] {
			if !core.Step() {
				return true, false
			}
		}
		if cp.converged(core, g, j) {
			return false, true
		}
	}
	return core.Run(cp.Limit), false
}

// converged reports whether the faulty core, now at the cycle of
// snapshot j, is bit-identical to the golden run. Machine state is
// compared directly (micro.Core.StateEqual); RAM is compared only on
// the union of the faulty run's dirty pages (tracked since its restore
// from snapshot g) and the pages golden dirtied in (snapAt[g],
// snapAt[j]] — every other page provably equals snapshot g's copy in
// both runs.
func (cp *Campaign) converged(core *micro.Core, g, j int) bool {
	gold := cp.snaps[j]
	if core.Cycle != gold.Cycle || !core.StateEqual(gold) {
		return false
	}
	m, gm := core.Bus.Mem, gold.Bus.Mem
	for _, p := range core.RAMDirtyPages() {
		if !m.PageEqual(gm, p) {
			return false
		}
	}
	for k := g + 1; k <= j; k++ {
		for _, p := range cp.goldenDirty[k] {
			if !m.PageEqual(gm, p) {
				return false
			}
		}
	}
	return true
}

// RunCampaign performs n sampled injections into structure s, fanned
// across cp.Workers goroutines (<= 0: all CPUs). The fault sequence is
// pre-drawn from the seed exactly as the serial loop drew it, so the
// tally is bit-identical for every worker count. progress, when
// non-nil, is called exactly once per injection, serialized and in
// injection-index order (the thread-safe callback contract shared by
// all three layers); it must not call back into the campaign.
func (cp *Campaign) RunCampaign(s micro.Structure, n int, seed int64, progress func(i int, r Record)) Tally {
	return results.TallyOf(cp.Records(s, n, 0, seed, progress))
}

// Records executes injections [from, n) of the n-fault sequence
// pre-drawn from seed and returns their records, indexed absolutely.
// Because the sequence is drawn deterministically from the seed,
// records for [0, from) produced by an earlier (shorter) campaign with
// the same key concatenate with this slice into exactly the record set
// a one-shot n-injection campaign yields — the top-up resume primitive
// the persistent store builds on.
func (cp *Campaign) Records(s micro.Structure, n, from int, seed int64, progress func(i int, r Record)) []Record {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.Sample(r, s)
	}
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	jobs := make([]campaign.Job, n-from)
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.snapFor(faults[from+i].Cycle)}
	}
	var emit func(i int, rec Record)
	if progress != nil {
		emit = func(i int, rec Record) { progress(from+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) Record {
			f := faults[from+j.Index]
			rec := cp.classify(cp.coreFor(w, f.Cycle, j.Group), f, j.Group).Record()
			rec.Index = from + j.Index
			return rec
		},
		emit)
}
