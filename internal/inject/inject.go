// Package inject drives microarchitecture-level fault-injection
// campaigns (the GeFIN analogue): statistical single-bit-flip sampling
// per Leveugle et al., snapshot-accelerated faulty runs, and outcome
// classification into the paper's fault-effect classes (Masked, SDC,
// Crash, Detected) plus the HVF fault-propagation models.
package inject

import (
	"bytes"
	"fmt"
	"math/rand"

	"vulnstack/internal/campaign"
	"vulnstack/internal/dev"
	"vulnstack/internal/kernel"
	"vulnstack/internal/micro"
)

// Outcome is the end-to-end fault effect class.
type Outcome int

const (
	Masked Outcome = iota
	SDC
	Crash
	Detected
	NumOutcomes
)

var outcomeNames = [...]string{"Masked", "SDC", "Crash", "Detected"}

func (o Outcome) String() string { return outcomeNames[o] }

// Fault is one sampled single-bit transient fault.
type Fault struct {
	Struct micro.Structure
	Entry  int
	Bit    int
	Cycle  uint64
}

// Result is the classified effect of one injection.
type Result struct {
	Fault   Fault
	Outcome Outcome
	// Visible reports architectural contact (the HVF numerator); FPM
	// classifies it.
	Visible bool
	FPM     micro.FPM
	// ContactCycle is when the fault first became visible.
	ContactCycle uint64
	// Live is false when the flip was provably dead at injection time.
	Live bool
}

// Golden describes the fault-free reference run.
type Golden struct {
	Out      []byte
	ExitCode uint64
	Cycles   uint64
	Instret  uint64
	KInstr   uint64
}

// Campaign holds everything needed to run injections for one
// (program image, microarchitecture) pair.
type Campaign struct {
	Img    *kernel.Image
	Cfg    micro.Config
	Golden Golden

	snaps  []*micro.Core
	snapAt []uint64
	// Limit is the faulty-run watchdog in cycles.
	Limit uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int
}

// Prepare runs the golden execution (twice: once to learn its length,
// once to capture evenly spaced snapshots) and returns a ready
// campaign. nsnaps <= 1 disables snapshotting.
func Prepare(img *kernel.Image, cfg micro.Config, nsnaps int, maxCycles uint64) (*Campaign, error) {
	if cfg.ISA != img.ISA {
		return nil, fmt.Errorf("inject: config %s is %v but image is %v", cfg.Name, cfg.ISA, img.ISA)
	}
	if maxCycles == 0 {
		maxCycles = 1 << 28
	}
	core := micro.New(cfg, img.NewMemory(), img.Entry)
	if !core.Run(maxCycles) {
		return nil, fmt.Errorf("inject: golden run did not finish in %d cycles", maxCycles)
	}
	if core.Bus.Halt != dev.HaltClean {
		return nil, fmt.Errorf("inject: golden run ended %v (panic code %d)", core.Bus.Halt, core.Bus.PanicCode)
	}
	cp := &Campaign{
		Img: img,
		Cfg: cfg,
		Golden: Golden{
			Out:      append([]byte(nil), core.Bus.Out...),
			ExitCode: core.Bus.ExitCode,
			Cycles:   core.Cycle,
			Instret:  core.Instret,
			KInstr:   core.KInstr,
		},
	}
	cp.Limit = 3*cp.Golden.Cycles + 50000

	if nsnaps > 1 {
		step := cp.Golden.Cycles / uint64(nsnaps)
		if step == 0 {
			step = 1
		}
		c2 := micro.New(cfg, img.NewMemory(), img.Entry)
		for next := uint64(0); next < cp.Golden.Cycles; next += step {
			for c2.Cycle < next {
				if !c2.Step() {
					break
				}
			}
			cp.snaps = append(cp.snaps, c2.Clone())
			cp.snapAt = append(cp.snapAt, c2.Cycle)
		}
	} else {
		// Even without snapshotting, keep one boot-state (cycle 0)
		// snapshot so worker arenas always have a restore source.
		cp.snaps = []*micro.Core{micro.New(cfg, img.NewMemory(), img.Entry)}
		cp.snapAt = []uint64{0}
	}
	return cp, nil
}

// snapFor returns the index of the latest snapshot at or before cycle.
func (cp *Campaign) snapFor(cycle uint64) int {
	best := 0
	for i, at := range cp.snapAt {
		if at <= cycle {
			best = i
		}
	}
	return best
}

// coreAt returns a fresh machine advanced to the given cycle.
func (cp *Campaign) coreAt(cycle uint64) *micro.Core {
	core := cp.snaps[cp.snapFor(cycle)].Clone()
	for core.Cycle < cycle {
		if !core.Step() {
			break
		}
	}
	return core
}

// worker is the reusable per-worker machine arena: one cloned core that
// is restored in place (dirty RAM pages only, when the restore source
// repeats) instead of deep-copied for every injection.
type worker struct {
	arena *micro.Core
	src   int // snapshot index the arena was last restored from
}

// coreFor readies the worker's arena at the given cycle, restoring from
// snapshot g.
func (cp *Campaign) coreFor(w *worker, cycle uint64, g int) *micro.Core {
	if w.arena == nil {
		w.arena = cp.snaps[g].Clone()
		w.arena.Bus.Mem.EnableTracking()
	} else {
		w.arena.RestoreFrom(cp.snaps[g], w.src == g)
	}
	w.src = g
	core := w.arena
	for core.Cycle < cycle {
		if !core.Step() {
			break
		}
	}
	return core
}

// Sample draws a fault uniformly over (entry, bit, cycle), following
// the statistical fault sampling of the paper's reference [21].
func (cp *Campaign) Sample(r *rand.Rand, s micro.Structure) Fault {
	entries, bitsPer := cp.Cfg.StructDims(s)
	return Fault{
		Struct: s,
		Entry:  r.Intn(entries),
		Bit:    r.Intn(bitsPer),
		Cycle:  1 + uint64(r.Int63n(int64(cp.Golden.Cycles-1))),
	}
}

// Run performs one injection and classifies its effect. It deep-copies
// a snapshot for the faulty run; campaigns use the worker-arena path in
// RunCampaign instead, which restores state in place.
func (cp *Campaign) Run(f Fault) Result {
	return cp.classify(cp.coreAt(f.Cycle), f)
}

// classify injects f into a machine already advanced to f.Cycle, runs
// it to completion and classifies the effect.
func (cp *Campaign) classify(core *micro.Core, f Fault) Result {
	if core.Bus.Halted() {
		// Injection cycle raced with the halt: nothing to corrupt.
		return Result{Fault: f, Outcome: Masked}
	}
	info := core.Inject(f.Struct, f.Entry, f.Bit)
	res := Result{Fault: f, Live: info.Live}
	if !info.Live {
		res.Outcome = Masked
		return res
	}
	halted := core.Run(cp.Limit)
	switch {
	case !halted:
		res.Outcome = Crash // deadlock / livelock
	case core.Bus.Halt == dev.HaltPanic:
		res.Outcome = Crash
	case core.Bus.Halt == dev.HaltDetected:
		res.Outcome = Detected
	default:
		if core.Bus.ExitCode == cp.Golden.ExitCode && bytes.Equal(core.Bus.Out, cp.Golden.Out) {
			res.Outcome = Masked
		} else {
			res.Outcome = SDC
		}
	}
	res.Visible = core.Taint.Contacted()
	res.FPM = core.Taint.Class()
	res.ContactCycle = core.Taint.ContactCycle()
	return res
}

// Tally aggregates campaign results.
type Tally struct {
	N        int
	Outcomes [NumOutcomes]int
	FPM      [micro.NumFPM]int
	Visible  int
}

// Add accumulates one result.
func (t *Tally) Add(r Result) {
	t.N++
	t.Outcomes[r.Outcome]++
	if r.Visible {
		t.Visible++
		t.FPM[r.FPM]++
	}
}

// Frac returns the fraction of outcome o.
func (t *Tally) Frac(o Outcome) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Outcomes[o]) / float64(t.N)
}

// AVF is the architectural vulnerability factor: the probability a
// fault produces a program-visible failure (SDC or Crash). Detected
// faults are excluded, following the paper's case-study accounting.
func (t *Tally) AVF() float64 {
	return t.Frac(SDC) + t.Frac(Crash)
}

// HVF is the fraction of faults that reached architectural visibility.
func (t *Tally) HVF() float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Visible) / float64(t.N)
}

// FPMShare returns the share of propagation model m among visible
// faults.
func (t *Tally) FPMShare(m micro.FPM) float64 {
	if t.Visible == 0 {
		return 0
	}
	return float64(t.FPM[m]) / float64(t.Visible)
}

// RunCampaign performs n sampled injections into structure s, fanned
// across cp.Workers goroutines (<= 0: all CPUs). The fault sequence is
// pre-drawn from the seed exactly as the serial loop drew it, so the
// tally is bit-identical for every worker count. progress, when
// non-nil, is called exactly once per injection, serialized and in
// injection-index order (the thread-safe callback contract shared by
// all three layers); it must not call back into the campaign.
func (cp *Campaign) RunCampaign(s micro.Structure, n int, seed int64, progress func(i int, r Result)) Tally {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	jobs := make([]campaign.Job, n)
	for i := range faults {
		faults[i] = cp.Sample(r, s)
		jobs[i] = campaign.Job{Index: i, Group: cp.snapFor(faults[i].Cycle)}
	}
	results := campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) Result {
			f := faults[j.Index]
			return cp.classify(cp.coreFor(w, f.Cycle, j.Group), f)
		},
		progress)
	var t Tally
	for _, res := range results {
		t.Add(res)
	}
	return t
}
