// Package inject drives microarchitecture-level fault-injection
// campaigns (the GeFIN analogue): statistical single-bit-flip sampling
// per Leveugle et al., checkpoint-accelerated faulty runs, and outcome
// classification into the paper's fault-effect classes (Masked, SDC,
// Crash, Detected) plus the HVF fault-propagation models.
package inject

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"vulnstack/internal/campaign"
	"vulnstack/internal/ckpt"
	"vulnstack/internal/dev"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// Outcome is the end-to-end fault effect class. It lives in the
// layer-agnostic results package; the aliases keep this package the
// canonical vocabulary for all three injectors.
type Outcome = results.Outcome

const (
	Masked      = results.Masked
	SDC         = results.SDC
	Crash       = results.Crash
	Detected    = results.Detected
	NumOutcomes = results.NumOutcomes
)

// Record is the layer-agnostic per-injection record all campaigns emit.
type Record = results.Record

// Tally is the record-stream aggregate shared by every layer.
type Tally = results.Tally

// Engine is this injector's name in persisted checkpoint chains.
const Engine = "micro"

// Fault is one sampled single-bit transient fault.
type Fault struct {
	Struct micro.Structure
	Entry  int
	Bit    int
	Cycle  uint64
}

// Result is the classified effect of one injection.
type Result struct {
	Fault   Fault
	Outcome Outcome
	// Visible reports architectural contact (the HVF numerator); FPM
	// classifies it.
	Visible bool
	FPM     micro.FPM
	// ContactCycle is when the fault first became visible.
	ContactCycle uint64
	// Live is false when the flip was provably dead at injection time.
	Live bool
	// EarlyStop reports the run was classified by golden-state
	// convergence at a checkpoint boundary instead of running to
	// completion. Provenance only: the outcome is provably identical.
	EarlyStop bool
}

// Record converts the result into the layer-agnostic record form
// (Index is the caller's position in the pre-drawn fault sequence).
func (r Result) Record() results.Record {
	return results.Record{
		Layer:     results.LayerMicro,
		Target:    r.Fault.Struct.String(),
		Coord:     r.Fault.Cycle,
		Entry:     r.Fault.Entry,
		Bit:       r.Fault.Bit,
		Outcome:   r.Outcome,
		Visible:   r.Visible,
		FPM:       r.FPM,
		Contact:   r.ContactCycle,
		Live:      r.Live,
		EarlyStop: r.EarlyStop,
	}
}

// Golden describes the fault-free reference run.
type Golden struct {
	Out      []byte
	ExitCode uint64
	Cycles   uint64
	Instret  uint64
	KInstr   uint64
}

// encodeGolden serializes the golden summary into a chain's Meta so a
// warm load learns the reference run without executing it.
func encodeGolden(g Golden) []byte {
	b := binary.AppendUvarint(nil, uint64(len(g.Out)))
	b = append(b, g.Out...)
	b = binary.AppendUvarint(b, g.ExitCode)
	b = binary.AppendUvarint(b, g.Cycles)
	b = binary.AppendUvarint(b, g.Instret)
	return binary.AppendUvarint(b, g.KInstr)
}

func decodeGolden(b []byte) (Golden, error) {
	var g Golden
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return g, fmt.Errorf("inject: truncated golden summary")
	}
	g.Out = append([]byte(nil), b[k:k+int(n)]...)
	b = b[k+int(n):]
	for _, dst := range []*uint64{&g.ExitCode, &g.Cycles, &g.Instret, &g.KInstr} {
		v, k := binary.Uvarint(b)
		if k <= 0 {
			return g, fmt.Errorf("inject: truncated golden summary")
		}
		*dst = v
		b = b[k:]
	}
	return g, nil
}

// Campaign holds everything needed to run injections for one
// (program image, microarchitecture) pair.
type Campaign struct {
	Img    *kernel.Image
	Cfg    micro.Config
	Golden Golden

	// chain is the delta checkpoint chain along the golden run: boot
	// state plus content-changed RAM pages and machine-state chunks at
	// each boundary (internal/ckpt). It replaces the old full-snapshot
	// array, so checkpoint count is no longer bounded by
	// O(snapshots × RAM) memory.
	chain *ckpt.Chain
	// Limit is the faulty-run watchdog in cycles.
	Limit uint64
	// Workers is the campaign fan-out; <= 0 selects runtime.NumCPU().
	// The tally is bit-identical for every worker count.
	Workers int
	// NoEarlyStop disables convergence early-stop classification; runs
	// then always execute to halt or Limit. The zero value keeps the
	// optimization on — outcomes are provably identical either way.
	NoEarlyStop bool
	// Resumed reports the campaign was prepared from a persisted chain:
	// zero golden-run instructions were executed by Prepare.
	Resumed bool
}

// Chain exposes the campaign's checkpoint chain (for persistence and
// display; read-only).
func (cp *Campaign) Chain() *ckpt.Chain { return cp.chain }

// Prepare runs the golden execution (twice: once to learn its length,
// once to capture evenly spaced delta checkpoints) and returns a ready
// campaign. nsnaps <= 1 keeps only the boot checkpoint.
func Prepare(img *kernel.Image, cfg micro.Config, nsnaps int, maxCycles uint64) (*Campaign, error) {
	if cfg.ISA != img.ISA {
		return nil, fmt.Errorf("inject: config %s is %v but image is %v", cfg.Name, cfg.ISA, img.ISA)
	}
	if maxCycles == 0 {
		maxCycles = 1 << 28
	}
	core := micro.New(cfg, img.NewMemory(), img.Entry)
	if !core.Run(maxCycles) {
		return nil, fmt.Errorf("inject: golden run did not finish in %d cycles", maxCycles)
	}
	if core.Bus.Halt != dev.HaltClean {
		return nil, fmt.Errorf("inject: golden run ended %v (panic code %d)", core.Bus.Halt, core.Bus.PanicCode)
	}
	cp := &Campaign{
		Img: img,
		Cfg: cfg,
		Golden: Golden{
			Out:      append([]byte(nil), core.Bus.Out...),
			ExitCode: core.Bus.ExitCode,
			Cycles:   core.Cycle,
			Instret:  core.Instret,
			KInstr:   core.KInstr,
		},
	}
	cp.Limit = 3*cp.Golden.Cycles + 50000

	cp.chain = ckpt.New(ckpt.Meta{
		Engine:   Engine,
		Config:   cfg.Name,
		RAMBytes: int(img.RAM.Size()),
		Golden:   encodeGolden(cp.Golden),
	})
	c2 := micro.New(cfg, img.NewMemory(), img.Entry)
	var sbuf []byte
	capture := func() {
		if n := cp.chain.Len(); n > 0 && c2.Cycle <= cp.chain.Coord(n-1) {
			return
		}
		sbuf = c2.EncodeState(sbuf[:0])
		cp.chain.Add(c2.Cycle, c2.StateProbe(), c2.Bus.Mem.Bytes(), sbuf, nil)
	}
	if nsnaps > 1 {
		step := cp.Golden.Cycles / uint64(nsnaps)
		if step == 0 {
			step = 1
		}
		for next := uint64(0); next < cp.Golden.Cycles; next += step {
			for c2.Cycle < next {
				if !c2.Step() {
					break
				}
			}
			capture()
			if c2.Bus.Halted() {
				break
			}
		}
	} else {
		// Even without interior checkpoints, keep the boot state so
		// worker arenas always have a restore source.
		capture()
	}
	cp.chain.Finish()
	return cp, nil
}

// PrepareFromChain builds a campaign from a persisted checkpoint chain
// without executing a single golden-run instruction: the golden
// summary, watchdog limit and every restore point come from the chain.
// The caller is responsible for fingerprint-matching the chain to its
// campaign configuration; this validates engine, image geometry and
// decodability of the boot checkpoint, returning an error (for a cold
// Prepare fallback) on any mismatch.
func PrepareFromChain(img *kernel.Image, cfg micro.Config, ch *ckpt.Chain) (*Campaign, error) {
	if cfg.ISA != img.ISA {
		return nil, fmt.Errorf("inject: config %s is %v but image is %v", cfg.Name, cfg.ISA, img.ISA)
	}
	if ch.Meta.Engine != Engine {
		return nil, fmt.Errorf("inject: chain engine %q, want %q", ch.Meta.Engine, Engine)
	}
	if ch.Meta.RAMBytes != int(img.RAM.Size()) {
		return nil, fmt.Errorf("inject: chain RAM %d bytes, image has %d", ch.Meta.RAMBytes, img.RAM.Size())
	}
	if ch.Len() == 0 {
		return nil, fmt.Errorf("inject: empty chain")
	}
	g, err := decodeGolden(ch.Meta.Golden)
	if err != nil {
		return nil, err
	}
	// Prove the chain restores on this geometry before committing.
	trial := micro.New(cfg, mem.New(img.RAM.Size()), img.Entry)
	if err := trial.DecodeState(ch.StateAt(0, nil, -1)); err != nil {
		return nil, fmt.Errorf("inject: chain boot state: %w", err)
	}
	cp := &Campaign{
		Img:     img,
		Cfg:     cfg,
		Golden:  g,
		chain:   ch,
		Resumed: true,
	}
	cp.Limit = 3*cp.Golden.Cycles + 50000
	return cp, nil
}

// worker is the reusable per-worker machine arena: one core restored in
// place by delta-walking the chain (dirty RAM pages plus the chunks
// that changed between the previous and the new restore point) instead
// of deep-copied for every injection.
type worker struct {
	arena *micro.Core
	src   int // checkpoint index the arena was last restored from
	// stateBuf holds the materialized machine-state blob of checkpoint
	// src; cmpBuf is the convergence-test encode scratch.
	stateBuf []byte
	cmpBuf   []byte
}

// coreFor readies the worker's arena at the given cycle, restoring from
// checkpoint g.
func (cp *Campaign) coreFor(w *worker, cycle uint64, g int) *micro.Core {
	if w.arena == nil {
		m := mem.New(cp.Img.RAM.Size())
		m.EnableTracking()
		w.arena = micro.New(cp.Cfg, m, cp.Img.Entry)
		w.src = -1
	}
	w.stateBuf = cp.chain.StateAt(g, w.stateBuf, w.src)
	if err := w.arena.DecodeState(w.stateBuf); err != nil {
		// Unreachable for a chain that passed Prepare/PrepareFromChain
		// validation: every checkpoint was encoded by the same codec on
		// the same geometry.
		panic(fmt.Sprintf("inject: checkpoint %d restore: %v", g, err))
	}
	cp.chain.RestoreRAM(w.arena.Bus.Mem, w.src, g)
	w.src = g
	core := w.arena
	for core.Cycle < cycle {
		if !core.Step() {
			break
		}
	}
	return core
}

// Sample draws a fault uniformly over (entry, bit, cycle), following
// the statistical fault sampling of the paper's reference [21].
func (cp *Campaign) Sample(r *rand.Rand, s micro.Structure) Fault {
	entries, bitsPer := cp.Cfg.StructDims(s)
	// A degenerate golden run (<= 2 cycles) leaves no interior cycle to
	// sample; clamp the span so Int63n is never called with n <= 0. The
	// draw still happens, keeping the sequence aligned with longer runs.
	span := int64(cp.Golden.Cycles) - 1
	if span < 1 {
		span = 1
	}
	return Fault{
		Struct: s,
		Entry:  r.Intn(entries),
		Bit:    r.Intn(bitsPer),
		Cycle:  1 + uint64(r.Int63n(span)),
	}
}

// Run performs one injection and classifies its effect, building a
// throwaway arena; campaigns use the pooled worker path in RunCampaign.
func (cp *Campaign) Run(f Fault) Result {
	w := &worker{src: -1}
	g := cp.chain.Find(f.Cycle)
	return cp.classify(cp.coreFor(w, f.Cycle, g), f, g, w)
}

// classify injects f into a machine already advanced to f.Cycle
// (restored from checkpoint g), runs it to halt, the watchdog limit or
// provable golden convergence, and classifies the effect.
func (cp *Campaign) classify(core *micro.Core, f Fault, g int, w *worker) Result {
	if core.Bus.Halted() {
		// Injection cycle raced with the halt: nothing to corrupt.
		return Result{Fault: f, Outcome: Masked}
	}
	info := core.Inject(f.Struct, f.Entry, f.Bit)
	res := Result{Fault: f, Live: info.Live}
	if !info.Live {
		res.Outcome = Masked
		return res
	}
	halted, converged := cp.runFaulty(core, g, w)
	switch {
	case converged:
		// Bit-equal to golden at the same cycle boundary: the remaining
		// execution is exactly the golden run's (Step is a deterministic
		// function of compared state), so the outcome is golden's —
		// clean exit, golden output: Masked.
		res.Outcome = Masked
		res.EarlyStop = true
	case !halted:
		res.Outcome = Crash // deadlock / livelock
	case core.Bus.Halt == dev.HaltPanic:
		res.Outcome = Crash
	case core.Bus.Halt == dev.HaltDetected:
		res.Outcome = Detected
	default:
		if core.Bus.ExitCode == cp.Golden.ExitCode && bytes.Equal(core.Bus.Out, cp.Golden.Out) {
			res.Outcome = Masked
		} else {
			res.Outcome = SDC
		}
	}
	res.Visible = core.Taint.Contacted()
	res.FPM = core.Taint.Class()
	res.ContactCycle = core.Taint.ContactCycle()
	return res
}

// runFaulty executes the faulty machine, pausing at every golden
// checkpoint boundary past g to test for convergence. It returns halted
// (the machine reached a halt port) and converged (the run was cut
// short because its full state re-equaled golden's at a boundary).
func (cp *Campaign) runFaulty(core *micro.Core, g int, w *worker) (halted, converged bool) {
	if cp.NoEarlyStop || !core.Bus.Mem.Tracking() {
		return core.Run(cp.Limit), false
	}
	for j := g + 1; j < cp.chain.Len(); j++ {
		for core.Cycle < cp.chain.Coord(j) {
			if !core.Step() {
				return true, false
			}
		}
		if cp.converged(core, g, j, w) {
			return false, true
		}
	}
	return core.Run(cp.Limit), false
}

// converged reports whether the faulty core, now at the cycle of
// checkpoint j, is bit-identical to the golden run. The scalar probe
// gates the test; on a match the core is encoded canonically and
// compared chunk-wise against the chain (bytes-equality ⟺
// micro.StateEqual), and RAM is compared on the union of the faulty
// run's dirty pages (tracked since its restore from checkpoint g) and
// the chain's content-changed pages in (g, j] — every other page
// provably equals checkpoint g's copy in both runs.
func (cp *Campaign) converged(core *micro.Core, g, j int, w *worker) bool {
	if core.Cycle != cp.chain.Coord(j) || core.StateProbe() != cp.chain.Probe(j) {
		return false
	}
	w.cmpBuf = core.EncodeState(w.cmpBuf[:0])
	return cp.chain.StateEqual(j, w.cmpBuf) && cp.chain.RAMEqual(core.Bus.Mem, g, j)
}

// RunCampaign performs n sampled injections into structure s, fanned
// across cp.Workers goroutines (<= 0: all CPUs). The fault sequence is
// pre-drawn from the seed exactly as the serial loop drew it, so the
// tally is bit-identical for every worker count. progress, when
// non-nil, is called exactly once per injection, serialized and in
// injection-index order (the thread-safe callback contract shared by
// all three layers); it must not call back into the campaign.
func (cp *Campaign) RunCampaign(s micro.Structure, n int, seed int64, progress func(i int, r Record)) Tally {
	return results.TallyOf(cp.Records(s, n, 0, seed, progress))
}

// Records executes injections [from, n) of the n-fault sequence
// pre-drawn from seed and returns their records, indexed absolutely.
// Because the sequence is drawn deterministically from the seed,
// records for [0, from) produced by an earlier (shorter) campaign with
// the same key concatenate with this slice into exactly the record set
// a one-shot n-injection campaign yields — the top-up resume primitive
// the persistent store builds on.
func (cp *Campaign) Records(s micro.Structure, n, from int, seed int64, progress func(i int, r Record)) []Record {
	faults := cp.Pool(s, n, seed)
	if from < 0 {
		from = 0
	}
	if from >= n {
		return nil
	}
	return cp.RecordsAt(faults[from:], from, progress)
}

// Pool pre-draws the n-fault sequence for structure s from seed —
// exactly the faults Records would inject, exposed so stratified
// campaigns can partition the pool into equivalence classes and inject
// per-stratum subsets of it.
func (cp *Campaign) Pool(s micro.Structure, n int, seed int64) []Fault {
	r := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = cp.Sample(r, s)
	}
	return faults
}

// RecordsAt injects the given faults (any ordered subset of a pool) and
// returns their records with absolute indices base+i — the stratified
// analogue of Records, whose record stream is a pure function of the
// fault slice: bit-identical for every worker count.
func (cp *Campaign) RecordsAt(faults []Fault, base int, progress func(i int, r Record)) []Record {
	jobs := make([]campaign.Job, len(faults))
	for i := range jobs {
		jobs[i] = campaign.Job{Index: i, Group: cp.chain.Find(faults[i].Cycle)}
	}
	var emit func(i int, rec Record)
	if progress != nil {
		emit = func(i int, rec Record) { progress(base+i, rec) }
	}
	return campaign.Run(jobs, cp.Workers,
		func() *worker { return &worker{src: -1} },
		func(w *worker, j campaign.Job) Record {
			f := faults[j.Index]
			rec := cp.classify(cp.coreFor(w, f.Cycle, j.Group), f, j.Group, w).Record()
			rec.Index = base + j.Index
			return rec
		},
		emit)
}

// CkptFor returns the index of the checkpoint governing an injection
// cycle (the restore source a faulty run starts from) — the program
// point stratified sampling keys static features on.
func (cp *Campaign) CkptFor(cycle uint64) int { return cp.chain.Find(cycle) }

// CheckpointPCs returns the fetch PC of every checkpoint's restore
// state, materialized by one incremental delta-walk of the chain. A
// checkpoint whose blob predates the PC field reports 0 (its sites land
// in one harmless stratum).
func (cp *Campaign) CheckpointPCs() []uint64 {
	pcs := make([]uint64, cp.chain.Len())
	var buf []byte
	for i := range pcs {
		buf = cp.chain.StateAt(i, buf, i-1)
		pcs[i], _ = micro.StatePC(buf)
	}
	return pcs
}
