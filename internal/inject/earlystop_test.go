package inject

import (
	"math/rand"
	"testing"

	"vulnstack/internal/asm"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
	"vulnstack/internal/micro"
	"vulnstack/internal/results"
)

// TestSampleClampDegenerateGolden is the regression for the Int63n
// panic: a golden run of <= 2 cycles leaves no interior cycle, and
// Sample must clamp rather than panic.
func TestSampleClampDegenerateGolden(t *testing.T) {
	for _, cycles := range []uint64{0, 1, 2} {
		cp := &Campaign{Cfg: micro.ConfigA72()}
		cp.Golden.Cycles = cycles
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 8; i++ {
			f := cp.Sample(r, micro.StructRF)
			if f.Cycle < 1 {
				t.Fatalf("cycles=%d: sampled cycle %d", cycles, f.Cycle)
			}
		}
	}
}

// trivialImage assembles the shortest possible user program: exit(0).
func trivialImage(t *testing.T) *kernel.Image {
	t.Helper()
	b := asm.NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("_start")
	b.Li(isa.RegA0, isa.SysExit)
	b.Li(isa.RegA1, 0)
	b.Ecall()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(p, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestTrivialWorkloadCampaign: an (almost) empty program must survive a
// full campaign — degenerate snapshot spacing, tiny sampling span, and
// the early-stop machinery included.
func TestTrivialWorkloadCampaign(t *testing.T) {
	img := trivialImage(t)
	cp, err := Prepare(img, micro.ConfigA72(), 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	tally := cp.RunCampaign(micro.StructRF, 30, 1, nil)
	if tally.N != 30 {
		t.Fatalf("tally N = %d", tally.N)
	}
	total := 0
	for _, c := range tally.Outcomes {
		total += c
	}
	if total != tally.N {
		t.Fatal("outcomes must partition samples")
	}
}

// TestEarlyStopRecordEquivalence: convergence early-stop must change no
// record beyond its provenance flag, and must actually fire.
func TestEarlyStopRecordEquivalence(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 8)
	const n, seed = 40, 2021
	on := cp.Records(micro.StructRF, n, 0, seed, nil)
	cp.NoEarlyStop = true
	off := cp.Records(micro.StructRF, n, 0, seed, nil)
	cp.NoEarlyStop = false
	if len(on) != len(off) {
		t.Fatalf("record counts differ: %d vs %d", len(on), len(off))
	}
	stopped := 0
	for i := range on {
		if on[i].EarlyStop {
			stopped++
			if on[i].Outcome != results.Outcome(Masked) {
				t.Fatalf("record %d early-stopped with outcome %v", i, on[i].Outcome)
			}
		}
		a := on[i]
		a.EarlyStop = false
		if a != off[i] {
			t.Fatalf("record %d differs beyond provenance:\n on: %+v\noff: %+v", i, on[i], off[i])
		}
	}
	if stopped == 0 {
		t.Error("expected at least one convergence early-stop in 40 RF injections")
	}
	if results.TallyOf(on) != results.TallyOf(off) {
		t.Fatal("tallies differ")
	}
	t.Logf("early-stopped %d/%d injections", stopped, n)
}

// TestDecodeCacheRecordsIdentical: the predecoded fetch cache must be
// invisible in every record — including L1i injections, which corrupt
// the very words the cache is keyed on.
func TestDecodeCacheRecordsIdentical(t *testing.T) {
	cfgOn := micro.ConfigA72()
	cfgOff := micro.ConfigA72()
	cfgOff.NoDecodeCache = true
	mkRecs := func(cfg micro.Config, st micro.Structure) []results.Record {
		cp := shaCampaign(t, cfg, 8)
		return cp.Records(st, 25, 0, 7, nil)
	}
	for _, st := range []micro.Structure{micro.StructRF, micro.StructL1I} {
		on := mkRecs(cfgOn, st)
		off := mkRecs(cfgOff, st)
		if len(on) != len(off) {
			t.Fatalf("%v: record counts differ", st)
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("%v record %d differs:\n cache: %+v\nno-cache: %+v", st, i, on[i], off[i])
			}
		}
	}
}
