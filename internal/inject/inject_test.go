package inject

import (
	"math/rand"
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/kernel"
	"vulnstack/internal/micro"
	"vulnstack/internal/minic"
	"vulnstack/internal/workload"
)

func image(t *testing.T, src string, cfg micro.Config) *kernel.Image {
	t.Helper()
	m, err := minic.Compile(src, cfg.ISA.XLen())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Build(m, cfg.ISA)
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func shaCampaign(t *testing.T, cfg micro.Config, snaps int) *Campaign {
	t.Helper()
	spec, _ := workload.Get("sha")
	img := image(t, spec.Gen(3, 1), cfg)
	cp, err := Prepare(img, cfg, snaps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestGoldenRun(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 8)
	if len(cp.Golden.Out) != 20 {
		t.Fatalf("sha digest length %d", len(cp.Golden.Out))
	}
	if cp.Golden.Cycles == 0 || cp.Golden.Instret == 0 || cp.Golden.KInstr == 0 {
		t.Fatal("golden counters")
	}
	if cp.Golden.KInstr >= cp.Golden.Instret {
		t.Fatal("kernel instructions must be a strict subset")
	}
}

// TestSnapshotDeterminism: a run restored from any checkpoint must
// finish with the golden output. One worker arena is reused across all
// checkpoints, exercising the incremental delta-walk restore path.
func TestSnapshotDeterminism(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA9(), 6)
	w := &worker{src: -1}
	for i := 0; i < cp.Chain().Len(); i++ {
		core := cp.coreFor(w, cp.Chain().Coord(i), i)
		if !core.Run(cp.Limit) {
			t.Fatalf("checkpoint %d did not complete", i)
		}
		if string(core.Bus.Out) != string(cp.Golden.Out) {
			t.Fatalf("checkpoint %d: output diverged", i)
		}
		if core.Cycle != cp.Golden.Cycles {
			t.Fatalf("checkpoint %d: %d cycles, golden %d", i, core.Cycle, cp.Golden.Cycles)
		}
	}
}

// TestInjectionNoFlipIsGolden: injecting a bit and flipping it back via
// a double-run sanity path — here we simply check cycle-0-free runs.
func TestFaultFreeRunFromMidpoint(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 4)
	mid := cp.Golden.Cycles / 2
	core := cp.coreFor(&worker{src: -1}, mid, cp.Chain().Find(mid))
	if !core.Run(cp.Limit) {
		t.Fatal("midpoint run did not complete")
	}
	if string(core.Bus.Out) != string(cp.Golden.Out) {
		t.Fatal("midpoint resume diverged")
	}
}

func TestCampaignRF(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 8)
	tally := cp.RunCampaign(micro.StructRF, 60, 1, nil)
	if tally.N != 60 {
		t.Fatal("sample count")
	}
	total := 0
	for _, c := range tally.Outcomes {
		total += c
	}
	if total != tally.N {
		t.Fatal("outcome counts must partition samples")
	}
	if tally.Outcomes[Masked] == 0 {
		t.Error("expected some masked faults in the register file")
	}
	if tally.Outcomes[Detected] != 0 {
		t.Error("unhardened binary cannot detect faults")
	}
	// Visible (HVF) must be at least the non-masked outcomes.
	if tally.Visible < tally.Outcomes[SDC]+tally.Outcomes[Crash] {
		t.Errorf("HVF contact (%d) below failures (%d SDC + %d Crash)",
			tally.Visible, tally.Outcomes[SDC], tally.Outcomes[Crash])
	}
	if tally.AVF() < 0 || tally.AVF() > 1 {
		t.Fatal("AVF out of range")
	}
}

func TestCampaignL2MostlyMasked(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 8)
	tally := cp.RunCampaign(micro.StructL2, 50, 2, nil)
	if tally.Frac(Masked) < 0.5 {
		t.Errorf("L2 faults should be mostly masked (tiny footprint in 2MB): masked=%.2f", tally.Frac(Masked))
	}
}

func TestFPMClassificationAppears(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 8)
	var seenWD, seenVis bool
	for seed := int64(1); seed <= 3 && !(seenWD && seenVis); seed++ {
		tl := cp.RunCampaign(micro.StructRF, 40, seed, nil)
		if tl.FPM[micro.FPMWD] > 0 {
			seenWD = true
		}
		if tl.Visible > 0 {
			seenVis = true
		}
	}
	if !seenVis {
		t.Fatal("no visible faults in 120 RF injections")
	}
	if !seenWD {
		t.Error("register-file faults should classify overwhelmingly as WD")
	}
}

func TestSamplingUniform(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 2)
	r := newRand()
	seenEarly, seenLate := false, false
	for i := 0; i < 200; i++ {
		f := cp.Sample(r, micro.StructL1D)
		if f.Cycle < cp.Golden.Cycles/4 {
			seenEarly = true
		}
		if f.Cycle > 3*cp.Golden.Cycles/4 {
			seenLate = true
		}
		entries, bitsPer := cp.Cfg.StructDims(micro.StructL1D)
		if f.Entry >= entries || f.Bit >= bitsPer {
			t.Fatal("sample out of range")
		}
	}
	if !seenEarly || !seenLate {
		t.Error("cycle sampling not spanning the run")
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestCampaignDeterministic(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA9(), 6)
	a := cp.RunCampaign(micro.StructLSQ, 30, 11, nil)
	b := cp.RunCampaign(micro.StructLSQ, 30, 11, nil)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestL1IFaultsClassifyAsInstructionModels(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA9(), 6)
	// Pool several seeds to gather enough visible L1i faults.
	var wiWoi, wd, visible int
	for seed := int64(1); seed <= 4; seed++ {
		tl := cp.RunCampaign(micro.StructL1I, 60, seed, nil)
		wiWoi += tl.FPM[micro.FPMWI] + tl.FPM[micro.FPMWOI]
		wd += tl.FPM[micro.FPMWD]
		visible += tl.Visible
	}
	if visible == 0 {
		t.Skip("no visible L1i faults at this sample size")
	}
	if wiWoi == 0 {
		t.Errorf("visible instruction-cache faults should classify as WI/WOI (got %d WD, %d visible)", wd, visible)
	}
}

func TestProgressCallback(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA9(), 4)
	calls := 0
	cp.RunCampaign(micro.StructRF, 5, 1, func(i int, r Record) {
		if i != calls {
			t.Fatalf("progress index %d at call %d", i, calls)
		}
		calls++
	})
	if calls != 5 {
		t.Fatalf("progress calls: %d", calls)
	}
}

// TestCampaignWorkerInvariance: the tally must be bit-identical for any
// worker count (the engine pre-draws the fault sequence serially).
func TestCampaignWorkerInvariance(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 6)
	for _, st := range []micro.Structure{micro.StructRF, micro.StructL1D} {
		cp.Workers = 1
		serial := cp.RunCampaign(st, 24, 2021, nil)
		cp.Workers = 8
		parallel := cp.RunCampaign(st, 24, 2021, nil)
		if serial != parallel {
			t.Fatalf("%v: workers=1 %+v != workers=8 %+v", st, serial, parallel)
		}
	}
}

// TestArenaMatchesFreshClone: the reusable worker-arena restore path
// (RunCampaign) must classify every fault exactly like the fresh-clone
// path (Run), which rebuilds the machine per injection.
func TestArenaMatchesFreshClone(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 6)
	r := rand.New(rand.NewSource(2021))
	faults := make([]Fault, 20)
	for i := range faults {
		faults[i] = cp.Sample(r, micro.StructRF)
	}
	var want Tally
	for _, f := range faults {
		want.Add(cp.Run(f).Record())
	}
	cp.Workers = 1
	got := cp.RunCampaign(micro.StructRF, 20, 2021, nil)
	if got != want {
		t.Fatalf("arena path %+v != fresh-clone path %+v", got, want)
	}
}

// TestProgressContract: progress fires exactly once per injection, in
// strictly increasing index order, even with many workers.
func TestProgressContract(t *testing.T) {
	cp := shaCampaign(t, micro.ConfigA72(), 6)
	cp.Workers = 8
	var seen []int
	cp.RunCampaign(micro.StructRF, 16, 7, func(i int, r Record) {
		seen = append(seen, i)
	})
	if len(seen) != 16 {
		t.Fatalf("progress called %d times, want 16", len(seen))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("progress order %v, want 0..15 in order", seen)
		}
	}
}

// TestGoldenRoundTrip: the golden summary survives the chain meta codec.
func TestGoldenRoundTrip(t *testing.T) {
	g := Golden{Out: []byte("digest"), ExitCode: 7, Cycles: 123456, Instret: 9999, KInstr: 321}
	got, err := decodeGolden(encodeGolden(g))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Out) != string(g.Out) || got.ExitCode != g.ExitCode ||
		got.Cycles != g.Cycles || got.Instret != g.Instret || got.KInstr != g.KInstr {
		t.Fatalf("round trip %+v != %+v", got, g)
	}
	if _, err := decodeGolden(encodeGolden(g)[:3]); err == nil {
		t.Fatal("truncated summary must not decode")
	}
}

// TestPrepareFromChainMatchesCold: a campaign resumed from the cold
// campaign's own chain (zero golden-run instructions) must produce a
// bit-identical tally.
func TestPrepareFromChainMatchesCold(t *testing.T) {
	cfg := micro.ConfigA72()
	spec, _ := workload.Get("sha")
	img := image(t, spec.Gen(3, 1), cfg)
	cold, err := Prepare(img, cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := PrepareFromChain(img, cfg, cold.Chain())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Resumed {
		t.Fatal("warm campaign must report Resumed")
	}
	if warm.Golden.Cycles != cold.Golden.Cycles || string(warm.Golden.Out) != string(cold.Golden.Out) {
		t.Fatal("golden summary mismatch")
	}
	a := cold.RunCampaign(micro.StructRF, 25, 5, nil)
	b := warm.RunCampaign(micro.StructRF, 25, 5, nil)
	if a != b {
		t.Fatalf("cold %+v != warm %+v", a, b)
	}
}
