package micro

import "fmt"

// InjectInfo reports whether an injected flip can still influence the
// run. Live == false means the flip provably cannot be consumed (free
// register, invalid queue entry, invalid cache line): the campaign may
// classify it Masked without simulating further.
type InjectInfo struct {
	Live bool
}

// StructDims returns the sampling dimensions of structure s: number of
// entries and injectable bits per entry.
func (cfg *Config) StructDims(s Structure) (entries, bitsPer int) {
	switch s {
	case StructRF:
		return cfg.PhysRegs, cfg.ISA.XLen()
	case StructLSQ:
		return cfg.LQSize + cfg.SQSize, 2 * cfg.ISA.XLen()
	case StructL1I:
		return cfg.L1I.Lines(), cfg.L1I.BitsPerLine()
	case StructL1D:
		return cfg.L1D.Lines(), cfg.L1D.BitsPerLine()
	case StructL2:
		return cfg.L2.Lines(), cfg.L2.BitsPerLine()
	}
	return 0, 0
}

// Inject flips one bit of the named structure at the current cycle and
// activates fault-propagation tracking. Entry/bit follow StructDims.
func (c *Core) Inject(s Structure, entry, bit int) InjectInfo {
	c.Taint.active = true
	switch s {
	case StructRF:
		c.prf[entry] ^= 1 << uint(bit)
		for _, f := range c.freeList {
			if f == entry {
				// A free register is always written before its next
				// read: provably masked.
				return InjectInfo{}
			}
		}
		c.prfTaint[entry] = true
		return InjectInfo{Live: true}

	case StructLSQ:
		x := c.IS.XLen()
		var e *lsqEntry
		if entry < c.Cfg.LQSize {
			e = &c.lq[entry]
		} else {
			e = &c.sq[entry-c.Cfg.LQSize]
		}
		if !e.valid {
			return InjectInfo{}
		}
		re := &c.rob[e.rob]
		if bit < x {
			e.addr ^= 1 << uint(bit)
			e.addr &= c.IS.Mask()
			if !e.addrOK {
				return InjectInfo{} // overwritten at address generation
			}
			if !e.isStore && re.executed {
				return InjectInfo{} // load already performed
			}
			e.addrTaint = true
			return InjectInfo{Live: true}
		}
		bit -= x
		if e.isStore {
			e.data ^= 1 << uint(bit)
			e.data &= c.IS.Mask()
			if !e.dataOK {
				return InjectInfo{}
			}
			e.dataTaint = true
			return InjectInfo{Live: true}
		}
		// Load-queue data field: the in-flight load result buffer.
		if re.valid && re.issued && !re.executed {
			re.result = (re.result ^ 1<<uint(bit)) & c.IS.Mask()
			re.tainted = true
			return InjectInfo{Live: true}
		}
		return InjectInfo{}

	case StructL1I:
		return c.flipCache(c.l1i, entry, bit)
	case StructL1D:
		return c.flipCache(c.l1d, entry, bit)
	case StructL2:
		return c.flipCache(c.l2, entry, bit)
	}
	panic(fmt.Sprintf("micro: bad structure %d", s))
}

func (c *Core) flipCache(ch *cache, entry, bit int) InjectInfo {
	set := entry / ch.cfg.Assoc
	way := entry % ch.cfg.Assoc
	res := ch.flipBit(set, way, bit)
	if res.StaleLen > 0 {
		c.ram.taintRange(res.StaleAddr, res.StaleLen)
	}
	return InjectInfo{Live: res.Hit}
}
