package micro

// Clone deep-copies the entire machine state. Injection campaigns use
// clones of golden-run snapshots to start each faulty run near its
// injection cycle instead of re-simulating from boot.
func (c *Core) Clone() *Core {
	d := &Core{}
	*d = *c
	d.OnCommit = nil
	// The decode memo is derived state; cores may run on different
	// goroutines, so clones never share it (each rebuilds lazily).
	d.decodeMemo = nil

	d.Bus = c.Bus.Clone()
	d.ram = c.ram.clone(d.Bus.Mem)
	d.l2 = c.l2.clone(d.ram)
	d.l1i = c.l1i.clone(d.l2)
	d.l1d = c.l1d.clone(d.l2)
	d.Bus.Reader = (*dmaSnooper)(d)
	d.bp = c.bp.clone()

	d.prf = append([]uint64(nil), c.prf...)
	d.prfReady = append([]bool(nil), c.prfReady...)
	d.prfTaint = append([]bool(nil), c.prfTaint...)
	d.freeList = append([]int(nil), c.freeList...)
	d.rob = append([]robe(nil), c.rob...)
	d.lq = append([]lsqEntry(nil), c.lq...)
	d.sq = append([]lsqEntry(nil), c.sq...)
	d.iq = append([]int(nil), c.iq...)
	d.fq = append([]fetchEntry(nil), c.fq...)
	d.ring = make([][]ringEnt, len(c.ring))
	for i, b := range c.ring {
		if len(b) > 0 {
			d.ring[i] = append([]ringEnt(nil), b...)
		}
	}
	return d
}

// RestoreFrom overwrites this core's state from src, reusing this
// core's allocations: the in-place analogue of Clone for per-worker
// campaign arenas, so the injection hot loop stays allocation-free.
// Both cores must share the same Config and RAM size. sameSrc asserts
// that src was also the source of the previous restore; combined with
// dirty-page tracking on this core's memory (mem.EnableTracking), the
// multi-MiB RAM restore then copies only the pages the previous faulty
// run touched.
func (c *Core) RestoreFrom(src *Core, sameSrc bool) {
	bus, ram, l1i, l1d, l2, bp := c.Bus, c.ram, c.l1i, c.l1d, c.l2, c.bp
	prf, prfReady, prfTaint := c.prf, c.prfReady, c.prfTaint
	freeList, rob, iq := c.freeList, c.rob, c.iq
	lq, sq, fq, ring := c.lq, c.sq, c.fq, c.ring
	memo := c.decodeMemo

	*c = *src
	c.OnCommit = nil
	c.Bus, c.ram, c.l1i, c.l1d, c.l2, c.bp = bus, ram, l1i, l1d, l2, bp
	// The arena keeps its own decode memo across restores: entries are
	// pure functions of the fetched word (tag-checked on every hit), so
	// they can never go stale, and warm entries survive into the next
	// faulty run.
	c.decodeMemo = memo

	c.prf = append(prf[:0], src.prf...)
	c.prfReady = append(prfReady[:0], src.prfReady...)
	c.prfTaint = append(prfTaint[:0], src.prfTaint...)
	c.freeList = append(freeList[:0], src.freeList...)
	c.rob = append(rob[:0], src.rob...)
	c.iq = append(iq[:0], src.iq...)
	c.lq = append(lq[:0], src.lq...)
	c.sq = append(sq[:0], src.sq...)
	c.fq = append(fq[:0], src.fq...)
	if len(ring) != len(src.ring) {
		ring = make([][]ringEnt, len(src.ring))
	}
	for i := range src.ring {
		ring[i] = append(ring[i][:0], src.ring[i]...)
	}
	c.ring = ring

	c.Bus.RestoreFrom(src.Bus)
	if sameSrc {
		c.Bus.Mem.RestoreDirty(src.Bus.Mem)
	} else {
		c.Bus.Mem.CopyFrom(src.Bus.Mem)
	}
	c.Bus.Reader = (*dmaSnooper)(c)
	c.ram.restoreFrom(src.ram)
	c.l2.restoreFrom(src.l2)
	c.l1i.restoreFrom(src.l1i)
	c.l1d.restoreFrom(src.l1d)
	c.bp.restoreFrom(src.bp)
}

func (bp *branchPred) clone() *branchPred {
	nb := &branchPred{
		counters: append([]uint8(nil), bp.counters...),
		btbTag:   append([]uint64(nil), bp.btbTag...),
		btbTgt:   append([]uint64(nil), bp.btbTgt...),
		ras:      append([]uint64(nil), bp.ras...),
		rasTop:   bp.rasTop,
		btbMask:  bp.btbMask,
		bpMask:   bp.bpMask,
	}
	return nb
}

func (bp *branchPred) restoreFrom(src *branchPred) {
	copy(bp.counters, src.counters)
	copy(bp.btbTag, src.btbTag)
	copy(bp.btbTgt, src.btbTgt)
	copy(bp.ras, src.ras)
	bp.rasTop = src.rasTop
	bp.btbMask = src.btbMask
	bp.bpMask = src.bpMask
}

func (c *cache) clone(lower memLevel) *cache {
	nc := &cache{
		cfg:     c.cfg,
		lower:   lower,
		offBits: c.offBits,
		idxBits: c.idxBits,
		tick:    c.tick,
	}
	nc.backing = append([]byte(nil), c.backing...)
	nc.sets = make([][]line, len(c.sets))
	lb := c.cfg.LineBytes
	li := 0
	for si, ways := range c.sets {
		nw := make([]line, len(ways))
		for wi := range ways {
			l := &ways[wi]
			nw[wi] = line{
				valid: l.valid, dirty: l.dirty, tag: l.tag, lru: l.lru,
				data: nc.backing[li*lb : (li+1)*lb : (li+1)*lb],
			}
			if l.taint != nil {
				nw[wi].taint = append([]taintMask(nil), l.taint...)
			}
			li++
		}
		nc.sets[si] = nw
	}
	return nc
}

// restoreFrom overwrites the cache's contents from src (same geometry)
// without allocating, except for per-line taint slices appearing for
// the first time on a line of this arena.
func (c *cache) restoreFrom(src *cache) {
	c.tick = src.tick
	copy(c.backing, src.backing)
	for si := range src.sets {
		for wi := range src.sets[si] {
			dl, sl := &c.sets[si][wi], &src.sets[si][wi]
			dl.valid, dl.dirty, dl.tag, dl.lru = sl.valid, sl.dirty, sl.tag, sl.lru
			if sl.taint == nil {
				dl.taint = nil
			} else {
				dl.taint = append(dl.taint[:0], sl.taint...)
			}
		}
	}
}

// restoreFrom resets the RAM level's taint bookkeeping from src (its
// *mem.Memory stays the arena's own, restored separately).
func (r *ramLevel) restoreFrom(src *ramLevel) {
	r.lat = src.lat
	clear(r.taints)
	//lint:ordered map-to-map copy; the result is independent of visit order
	for k, v := range src.taints {
		r.taints[k] = v
	}
}
