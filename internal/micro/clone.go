package micro

// Clone deep-copies the entire machine state. Injection campaigns use
// clones of golden-run snapshots to start each faulty run near its
// injection cycle instead of re-simulating from boot.
func (c *Core) Clone() *Core {
	d := &Core{}
	*d = *c
	d.OnCommit = nil

	d.Bus = c.Bus.Clone()
	d.ram = c.ram.clone(d.Bus.Mem)
	d.l2 = c.l2.clone(d.ram)
	d.l1i = c.l1i.clone(d.l2)
	d.l1d = c.l1d.clone(d.l2)
	d.Bus.Reader = (*dmaSnooper)(d)
	d.bp = c.bp.clone()

	d.prf = append([]uint64(nil), c.prf...)
	d.prfReady = append([]bool(nil), c.prfReady...)
	d.prfTaint = append([]bool(nil), c.prfTaint...)
	d.freeList = append([]int(nil), c.freeList...)
	d.rob = append([]robe(nil), c.rob...)
	d.lq = append([]lsqEntry(nil), c.lq...)
	d.sq = append([]lsqEntry(nil), c.sq...)
	d.iq = append([]int(nil), c.iq...)
	d.fq = append([]fetchEntry(nil), c.fq...)
	d.ring = make([][]ringEnt, len(c.ring))
	for i, b := range c.ring {
		if len(b) > 0 {
			d.ring[i] = append([]ringEnt(nil), b...)
		}
	}
	return d
}


func (bp *branchPred) clone() *branchPred {
	nb := &branchPred{
		counters: append([]uint8(nil), bp.counters...),
		btbTag:   append([]uint64(nil), bp.btbTag...),
		btbTgt:   append([]uint64(nil), bp.btbTgt...),
		ras:      append([]uint64(nil), bp.ras...),
		rasTop:   bp.rasTop,
		btbMask:  bp.btbMask,
		bpMask:   bp.bpMask,
	}
	return nb
}

func (c *cache) clone(lower memLevel) *cache {
	nc := &cache{
		cfg:     c.cfg,
		lower:   lower,
		offBits: c.offBits,
		idxBits: c.idxBits,
		tick:    c.tick,
	}
	nc.backing = append([]byte(nil), c.backing...)
	nc.sets = make([][]line, len(c.sets))
	lb := c.cfg.LineBytes
	li := 0
	for si, ways := range c.sets {
		nw := make([]line, len(ways))
		for wi := range ways {
			l := &ways[wi]
			nw[wi] = line{
				valid: l.valid, dirty: l.dirty, tag: l.tag, lru: l.lru,
				data: nc.backing[li*lb : (li+1)*lb : (li+1)*lb],
			}
			if l.taint != nil {
				nw[wi].taint = append([]taintMask(nil), l.taint...)
			}
			li++
		}
		nc.sets[si] = nw
	}
	return nc
}
