package micro

import (
	"bytes"
	"testing"

	"vulnstack/internal/asm"
	"vulnstack/internal/dev"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
)

// escImage builds a program that fills a 256-byte buffer and writes it
// through the zero-copy DMA path at exit: the textbook Escaped-fault
// scenario (output bytes sit in the cache hierarchy until the device
// drains them, never re-entering the pipeline).
func escImage(t *testing.T) (*kernel.Image, uint64) {
	t.Helper()
	b := asm.NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("_start")
	b.La(5, "buf")
	b.Li(6, 0)
	b.Label("fill")
	b.Add(7, 5, 6)
	b.Sb(6, 0, 7)
	b.Addi(6, 6, 1)
	b.Li(8, 256)
	b.Blt(6, 8, "fill")
	// Burn some cycles so the injection window after the last buffer
	// store is wide.
	b.Li(9, 3000)
	b.Label("spin")
	b.Addi(9, 9, -1)
	b.Bne(9, 0, "spin")
	// write(buf, 256) >= ZeroCopyThreshold: direct DMA from the buffer.
	b.Li(isa.RegA0, isa.SysWrite)
	b.La(isa.RegA1, "buf")
	b.Li(isa.RegA2, 256)
	b.Ecall()
	b.Li(isa.RegA0, isa.SysExit)
	b.Li(isa.RegA1, 0)
	b.Ecall()
	b.DataLabel("buf")
	b.Zero(256)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(p, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := p.Symbol("buf")
	return img, addr
}

// TestEscapedFaultPath injects into the cached output buffer after its
// last CPU access and checks the fault classifies as ESC with an SDC
// outcome: corrupted output that no software-level view could have
// modelled.
func TestEscapedFaultPath(t *testing.T) {
	cfg := ConfigA72()
	img, bufAddr := escImage(t)

	// Golden run for reference output and cycle count.
	g := New(cfg, img.NewMemory(), img.Entry)
	if !g.Run(1 << 22) {
		t.Fatal("golden did not halt")
	}
	golden := append([]byte(nil), g.Bus.Out...)
	if len(golden) != 256 || golden[10] != 10 {
		t.Fatalf("golden output %d bytes", len(golden))
	}

	// Faulty run: advance into the spin window (after the fills), then
	// flip a data bit of the L1d line holding buf[10].
	c := New(cfg, img.NewMemory(), img.Entry)
	target := g.Cycle * 3 / 4
	for c.Cycle < target {
		if !c.Step() {
			t.Fatal("halted early")
		}
	}
	set, tag, off := c.l1d.index(bufAddr + 10)
	way := c.l1d.lookup(set, tag)
	if way < 0 {
		t.Skip("buffer line not resident at the chosen cycle")
	}
	info := c.Inject(StructL1D, set*cfg.L1D.Assoc+way, off*8+3)
	if !info.Live {
		t.Fatal("flip into a valid output line must be live")
	}
	if !c.Run(1 << 22) {
		t.Fatal("faulty run did not halt")
	}
	if c.Bus.Halt != dev.HaltClean {
		t.Fatalf("halt %v", c.Bus.Halt)
	}
	if bytes.Equal(c.Bus.Out, golden) {
		t.Fatal("output must be corrupted (SDC)")
	}
	if c.Bus.Out[10] != golden[10]^8 {
		t.Fatalf("expected bit 3 of byte 10 flipped: %#x vs %#x", c.Bus.Out[10], golden[10])
	}
	if !c.Taint.Contacted() || c.Taint.Class() != FPMESC {
		t.Fatalf("fault must classify as ESC, got contacted=%v class=%v",
			c.Taint.Contacted(), c.Taint.Class())
	}
}
