package micro

import (
	"math/bits"

	"vulnstack/internal/mem"
)

// taintMask values record which bits of a byte differ from the fault-
// free execution. 0xFF means "fully corrupted / unknown bits".
type taintMask = uint8

// line is one cache line. All of its bits (tag, data, valid, dirty) are
// real state and injectable.
type line struct {
	valid bool
	dirty bool
	tag   uint64
	data  []byte
	// taint marks bytes whose content differs from the fault-free run
	// (nil when the line is clean of taint). Taint travels with the
	// data through refills and writebacks.
	taint []taintMask
	lru   int64
}

func (l *line) setTaint(i int, m taintMask) {
	if m == 0 && l.taint == nil {
		return
	}
	if l.taint == nil {
		l.taint = make([]taintMask, len(l.data))
	}
	l.taint[i] = m
}

func (l *line) tainted() bool {
	for _, m := range l.taint {
		if m != 0 {
			return true
		}
	}
	return false
}

// memLevel is the next-lower memory level a cache refills from and
// writes back to.
type memLevel interface {
	readLine(addr uint64, dst, taint []byte) int
	writeLine(addr uint64, src []byte, taint []byte) int
}

// ramLevel is the bottom of the hierarchy: RAM plus its taint map.
type ramLevel struct {
	m      *mem.Memory
	lat    int
	taints map[uint64]taintMask
}

func newRAMLevel(m *mem.Memory, lat int) *ramLevel {
	return &ramLevel{m: m, lat: lat, taints: make(map[uint64]taintMask)}
}

func (r *ramLevel) readLine(addr uint64, dst, taint []byte) int {
	// Lines may cover unmapped space (e.g. a corrupted tag): unmapped
	// bytes read as zero, like a bus returning garbage.
	for i := range dst {
		b, ok := r.m.Byte(addr + uint64(i))
		if !ok {
			b = 0
		}
		dst[i] = b
	}
	for i := range taint {
		taint[i] = r.taints[addr+uint64(i)]
	}
	return r.lat
}

func (r *ramLevel) writeLine(addr uint64, src []byte, taint []byte) int {
	for i := range src {
		r.m.Write(addr+uint64(i), 1, uint64(src[i]))
		a := addr + uint64(i)
		var tm taintMask
		if taint != nil {
			tm = taint[i]
		}
		if tm != 0 {
			r.taints[a] = tm
		} else {
			delete(r.taints, a)
		}
	}
	return r.lat
}

// taintRange marks RAM bytes stale (used for lost-dirty-line faults).
func (r *ramLevel) taintRange(addr uint64, n int) {
	for i := 0; i < n; i++ {
		r.taints[addr+uint64(i)] = 0xFF
	}
}

// clone deep-copies the RAM level over an already-cloned memory.
func (r *ramLevel) clone(m *mem.Memory) *ramLevel {
	nr := &ramLevel{m: m, lat: r.lat, taints: make(map[uint64]taintMask, len(r.taints))}
	//lint:ordered map-to-map copy; the result is independent of visit order
	for k, v := range r.taints {
		nr.taints[k] = v
	}
	return nr
}

// cache is one set-associative writeback cache level.
type cache struct {
	cfg     CacheConfig
	sets    [][]line
	backing []byte
	lower   memLevel
	offBits uint
	idxBits uint
	tick    int64
}

func newCache(cfg CacheConfig, lower memLevel) *cache {
	c := &cache{
		cfg:     cfg,
		lower:   lower,
		offBits: uint(bits.TrailingZeros32(uint32(cfg.LineBytes))),
		idxBits: uint(bits.TrailingZeros32(uint32(cfg.Sets()))),
	}
	// One backing array for all line data keeps clones to a single
	// copy instead of tens of thousands of small allocations.
	c.backing = make([]byte, cfg.Lines()*cfg.LineBytes)
	c.sets = make([][]line, cfg.Sets())
	li := 0
	for i := range c.sets {
		ways := make([]line, cfg.Assoc)
		for w := range ways {
			ways[w].data = c.backing[li*cfg.LineBytes : (li+1)*cfg.LineBytes : (li+1)*cfg.LineBytes]
			li++
		}
		c.sets[i] = ways
	}
	return c
}

func (c *cache) index(addr uint64) (set int, tag uint64, off int) {
	off = int(addr & (uint64(c.cfg.LineBytes) - 1))
	set = int((addr >> c.offBits) & (uint64(c.cfg.Sets()) - 1))
	tag = addr >> (c.offBits + c.idxBits)
	return
}

// lineAddr reconstructs the base address a line maps to.
func (c *cache) lineAddr(set int, tag uint64) uint64 {
	return tag<<(c.offBits+c.idxBits) | uint64(set)<<c.offBits
}

// lookup returns the hitting way or -1.
func (c *cache) lookup(set int, tag uint64) int {
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return w
		}
	}
	return -1
}

// refill ensures the line containing addr is present, returning the way
// and the added latency.
func (c *cache) refill(addr uint64) (int, int) {
	set, tag, _ := c.index(addr)
	if w := c.lookup(set, tag); w >= 0 {
		return w, 0
	}
	// Choose an LRU victim (invalid ways first).
	victim, best := 0, int64(1<<62)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if !l.valid {
			victim = w
			best = -1
			break
		}
		if l.lru < best {
			victim, best = w, l.lru
		}
	}
	lat := 0
	v := &c.sets[set][victim]
	if v.valid && v.dirty {
		c.lower.writeLine(c.lineAddr(set, v.tag), v.data, v.taint)
	}
	v.valid, v.dirty, v.tag = true, false, tag
	if v.taint != nil {
		for i := range v.taint {
			v.taint[i] = 0
		}
	}
	base := c.lineAddr(set, tag)
	var tbuf []byte
	if v.taint == nil {
		tbuf = make([]byte, c.cfg.LineBytes)
	} else {
		tbuf = v.taint
	}
	lat += c.lower.readLine(base, v.data, tbuf)
	any := false
	for _, m := range tbuf {
		if m != 0 {
			any = true
			break
		}
	}
	if any {
		v.taint = tbuf
	}
	c.touch(set, victim)
	return victim, lat
}

func (c *cache) touch(set, way int) {
	c.tick++
	c.sets[set][way].lru = c.tick
}

// readLine serves a whole-line read from this level (the refill path
// for the level above; line sizes match across levels).
func (c *cache) readLine(addr uint64, dst, taint []byte) int {
	set, _, _ := c.index(addr)
	way, extra := c.refill(addr)
	l := &c.sets[set][way]
	c.touch(set, way)
	copy(dst, l.data)
	if l.taint != nil {
		copy(taint, l.taint)
	} else {
		for i := range taint {
			taint[i] = 0
		}
	}
	return c.cfg.HitLat + extra
}

// writeLine absorbs a whole-line writeback from the level above.
func (c *cache) writeLine(addr uint64, src []byte, tnt []byte) int {
	set, _, _ := c.index(addr)
	way, extra := c.refill(addr)
	l := &c.sets[set][way]
	c.touch(set, way)
	l.dirty = true
	copy(l.data, src)
	any := false
	for _, m := range tnt {
		if m != 0 {
			any = true
			break
		}
	}
	if any || l.taint != nil {
		if l.taint == nil {
			l.taint = make([]taintMask, len(l.data))
		}
		copy(l.taint, tnt)
		if tnt == nil {
			for i := range l.taint {
				l.taint[i] = 0
			}
		}
	}
	return c.cfg.HitLat + extra
}

// read loads n bytes at addr (which must not cross a line), returning
// the value, an OR of taint masks over the bytes, and the latency.
func (c *cache) read(addr uint64, n int) (val uint64, taint taintMask, lat int) {
	set, _, off := c.index(addr)
	way, extra := c.refill(addr)
	l := &c.sets[set][way]
	c.touch(set, way)
	for i := n - 1; i >= 0; i-- {
		val = val<<8 | uint64(l.data[off+i])
	}
	if l.taint != nil {
		for i := 0; i < n; i++ {
			taint |= l.taint[off+i]
		}
	}
	return val, taint, c.cfg.HitLat + extra
}

// readTaintWord returns the per-byte taint masks for a 4-byte word
// (used by fetch to classify WI vs WOI precisely).
func (c *cache) readTaintWord(addr uint64) [4]taintMask {
	var out [4]taintMask
	set, tag, off := c.index(addr)
	w := c.lookup(set, tag)
	if w < 0 {
		return out
	}
	l := &c.sets[set][w]
	if l.taint == nil {
		return out
	}
	for i := 0; i < 4 && off+i < len(l.data); i++ {
		out[i] = l.taint[off+i]
	}
	return out
}

// write stores n bytes at addr (write-allocate, write-back). tainted
// marks the stored value as corrupted relative to the fault-free run.
func (c *cache) write(addr uint64, n int, val uint64, tainted bool) int {
	set, _, off := c.index(addr)
	way, extra := c.refill(addr)
	l := &c.sets[set][way]
	c.touch(set, way)
	l.dirty = true
	for i := 0; i < n; i++ {
		l.data[off+i] = byte(val >> (8 * i))
		m := taintMask(0)
		if tainted {
			m = 0xFF
		}
		l.setTaint(off+i, m)
	}
	return c.cfg.HitLat + extra
}

// snoop reads a byte without allocating (DMA path): a hit serves the
// cached (possibly corrupted) copy.
func (c *cache) snoop(addr uint64) (b byte, t taintMask, hit bool) {
	set, tag, off := c.index(addr)
	w := c.lookup(set, tag)
	if w < 0 {
		return 0, 0, false
	}
	l := &c.sets[set][w]
	if l.taint != nil {
		t = l.taint[off]
	}
	return l.data[off], t, true
}

// flushAll writes every dirty line back (used by tests to compare final
// memory images).
func (c *cache) flushAll() {
	for set := range c.sets {
		for w := range c.sets[set] {
			l := &c.sets[set][w]
			if l.valid && l.dirty {
				c.lower.writeLine(c.lineAddr(set, l.tag), l.data, l.taint)
				l.dirty = false
			}
		}
	}
}

// FlipResult describes the architectural consequence of a bit flip, for
// taint bookkeeping by the caller.
type FlipResult struct {
	// Hit reports whether the flip landed in live state (a valid line
	// or a meaningful bit). Flips into invalid lines are immediately
	// masked.
	Hit bool
	// StaleRAM is a byte range in RAM that became stale (lost dirty
	// data); zero length when unused.
	StaleAddr uint64
	StaleLen  int
}

// flipBit flips one bit of the line identified by (set, way). Bit
// layout: [0, 8*LineBytes) data, then tag bits, then valid, then dirty.
func (c *cache) flipBit(set, way, bit int) FlipResult {
	l := &c.sets[set][way]
	dataBits := 8 * c.cfg.LineBytes
	tagBits := c.cfg.TagBits()
	switch {
	case bit < dataBits:
		i := bit / 8
		l.data[i] ^= 1 << (bit % 8)
		if !l.valid {
			return FlipResult{}
		}
		if l.taint == nil {
			l.taint = make([]taintMask, len(l.data))
		}
		l.taint[i] ^= 1 << (bit % 8)
		return FlipResult{Hit: true}
	case bit < dataBits+tagBits:
		old := c.lineAddr(set, l.tag)
		l.tag ^= 1 << (bit - dataBits)
		if !l.valid {
			return FlipResult{}
		}
		// The line now claims a different range with unrelated data:
		// every byte it serves is corrupt.
		if l.taint == nil {
			l.taint = make([]taintMask, len(l.data))
		}
		for i := range l.taint {
			l.taint[i] = 0xFF
		}
		if l.dirty {
			// The original range lost its only up-to-date copy.
			return FlipResult{Hit: true, StaleAddr: old, StaleLen: c.cfg.LineBytes}
		}
		return FlipResult{Hit: true}
	case bit == dataBits+tagBits: // valid
		was := l.valid
		l.valid = !l.valid
		if was {
			if l.dirty {
				return FlipResult{Hit: true, StaleAddr: c.lineAddr(set, l.tag), StaleLen: c.cfg.LineBytes}
			}
			return FlipResult{Hit: true} // only a performance effect
		}
		// Garbage line sprang to life claiming whatever tag it holds.
		if l.taint == nil {
			l.taint = make([]taintMask, len(l.data))
		}
		for i := range l.taint {
			l.taint[i] = 0xFF
		}
		l.dirty = false
		return FlipResult{Hit: true}
	default: // dirty
		was := l.dirty
		l.dirty = !l.dirty
		if !l.valid {
			return FlipResult{}
		}
		if was {
			// Lost-dirty: the eviction will silently drop the write.
			return FlipResult{Hit: true, StaleAddr: c.lineAddr(set, l.tag), StaleLen: c.cfg.LineBytes}
		}
		return FlipResult{Hit: true}
	}
}
