package micro

import (
	"bytes"
	"testing"

	"vulnstack/internal/asm"
	"vulnstack/internal/codegen"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
	"vulnstack/internal/minic"
	"vulnstack/internal/workload"
)

func TestConfigs(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 4 {
		t.Fatal("want 4 configs")
	}
	if cfgs[0].ISA != isa.VSA32 || cfgs[3].ISA != isa.VSA64 {
		t.Fatal("ISA assignment")
	}
	for _, c := range cfgs {
		for s := Structure(0); s < NumStructures; s++ {
			if c.Bits(s) <= 0 {
				t.Errorf("%s/%s: no bits", c.Name, s)
			}
		}
		if c.TotalBits() < c.Bits(StructL2) {
			t.Errorf("%s: total bits", c.Name)
		}
	}
	// L2 must dominate total bits (it is by far the largest SRAM).
	a72 := ConfigA72()
	if float64(a72.Bits(StructL2))/float64(a72.TotalBits()) < 0.5 {
		t.Error("L2 should dominate A72 bit budget")
	}
	if _, err := ConfigByName("A15"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigByName("A99"); err == nil {
		t.Fatal("unknown config must error")
	}
	if _, err := ParseStructure("L1d"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseStructure("TLB"); err == nil {
		t.Fatal("unknown structure must error")
	}
}

// buildImage compiles MiniC source for the config's ISA.
func buildImage(t *testing.T, src string, is isa.ISA) *kernel.Image {
	t.Helper()
	m, err := minic.Compile(src, is.XLen())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := codegen.Build(m, is)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatalf("image: %v", err)
	}
	return img
}

type commitRec struct {
	pc   uint64
	op   isa.Op
	mode isa.Mode
}

// runLockstep executes the image on the OoO core and the reference
// emulator, comparing the full retired-instruction streams, outputs,
// exit status and final memory images.
func runLockstep(t *testing.T, img *kernel.Image, cfg Config, maxCycles uint64) (*Core, *emu.CPU) {
	t.Helper()

	// Reference run.
	refBus := dev.NewBus(img.NewMemory())
	ref := emu.New(img.ISA, refBus, img.Entry)
	var refTrace []commitRec
	ref.OnCommit = func(pc uint64, in isa.Instr, mode isa.Mode) {
		refTrace = append(refTrace, commitRec{pc, in.Op, mode})
	}
	if !ref.Run(maxCycles) {
		t.Fatal("reference watchdog expired")
	}

	// Microarchitectural run.
	core := New(cfg, img.NewMemory(), img.Entry)
	var pos int
	mismatch := false
	core.OnCommit = func(pc uint64, in isa.Instr, mode isa.Mode) {
		if mismatch {
			return
		}
		if pos >= len(refTrace) {
			t.Errorf("micro committed extra instruction #%d pc=%#x %v", pos, pc, in)
			mismatch = true
			return
		}
		want := refTrace[pos]
		if want.pc != pc || want.op != in.Op || want.mode != mode {
			t.Errorf("commit #%d: micro pc=%#x %v (%v), ref pc=%#x %v (%v)",
				pos, pc, in.Op, mode, want.pc, want.op, want.mode)
			mismatch = true
		}
		pos++
	}
	if !core.Run(maxCycles * 40) {
		t.Fatalf("micro watchdog expired: %v", core)
	}
	if mismatch {
		t.Fatal("lockstep mismatch")
	}
	if pos != len(refTrace) {
		t.Fatalf("micro committed %d instructions, reference %d", pos, len(refTrace))
	}
	if core.Instret != ref.Instret {
		t.Fatalf("instret: micro %d, ref %d", core.Instret, ref.Instret)
	}
	if core.Bus.Halt != refBus.Halt || core.Bus.ExitCode != refBus.ExitCode {
		t.Fatalf("halt: micro %v/%d, ref %v/%d", core.Bus.Halt, core.Bus.ExitCode, refBus.Halt, refBus.ExitCode)
	}
	if !bytes.Equal(core.Bus.Out, refBus.Out) {
		t.Fatalf("output mismatch: micro %d bytes, ref %d bytes", len(core.Bus.Out), len(refBus.Out))
	}
	// Final architectural registers must agree.
	for r := 0; r < img.ISA.NumRegs(); r++ {
		if core.ArchReg(r) != ref.Reg(r) {
			t.Fatalf("final reg r%d: micro %#x, ref %#x", r, core.ArchReg(r), ref.Reg(r))
		}
	}
	// Final memory images must agree after writing back dirty lines.
	core.FlushCaches()
	ca := core.Bus.Mem
	ra := refBus.Mem
	for addr := uint64(mem.GuardTop); addr < ca.Size(); addr += 8 {
		a, _ := ca.Read(addr, 8)
		b, _ := ra.Read(addr, 8)
		if a != b {
			t.Fatalf("memory mismatch at %#x: micro %#x, ref %#x", addr, a, b)
		}
	}
	return core, ref
}

func TestLockstepSmallPrograms(t *testing.T) {
	srcs := map[string]string{
		"loops": `
func main() int {
	var i int
	var s int = 0
	for i = 0; i < 200; i = i + 1 {
		if i % 7 == 3 { s = s - i } else { s = s + i }
	}
	out32(s)
	return 0
}`,
		"calls": `
func fib(n int) int {
	if n < 2 { return n }
	return fib(n-1) + fib(n-2)
}
func main() int {
	out32(fib(13))
	return 0
}`,
		"memory": `
var buf [256]int
func main() int {
	var i int
	for i = 0; i < 256; i = i + 1 {
		buf[i] = i * 17
	}
	var s int = 0
	for i = 255; i >= 0; i = i - 1 {
		s = s + buf[i]
	}
	out32(s)
	return 0
}`,
		"division": `
func main() int {
	var i int
	var s int = 0
	for i = 1; i < 50; i = i + 1 {
		s = s + 100000 / i + 100000 % i
	}
	out32(s)
	return 0
}`,
	}
	for name, src := range srcs {
		for _, cfg := range Configs() {
			cfg := cfg
			t.Run(name+"/"+cfg.Name, func(t *testing.T) {
				img := buildImage(t, src, cfg.ISA)
				runLockstep(t, img, cfg, 1<<22)
			})
		}
	}
}

// TestLockstepWorkloads verifies the OoO core against the emulator on
// every benchmark, using one configuration per ISA.
func TestLockstepWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("lockstep workloads are slow")
	}
	for _, spec := range workload.All() {
		spec := spec
		src := spec.Gen(7, 1)
		for _, cfg := range []Config{ConfigA9(), ConfigA72()} {
			cfg := cfg
			t.Run(spec.Name+"/"+cfg.Name, func(t *testing.T) {
				img := buildImage(t, src, cfg.ISA)
				core, _ := runLockstep(t, img, cfg, 1<<24)
				ipc := float64(core.Instret) / float64(core.Cycle)
				t.Logf("%s/%s: %d instrs, %d cycles, IPC %.2f",
					spec.Name, cfg.Name, core.Instret, core.Cycle, ipc)
			})
		}
	}
}

func TestMicroarchitecturesDiffer(t *testing.T) {
	// Same program, different configs: cycle counts must differ (the
	// premise of microarchitecture-dependent vulnerability).
	src := `
var buf [2048]int
func main() int {
	var i int
	for i = 0; i < 2048; i = i + 1 {
		buf[i] = i ^ (i << 3)
	}
	var s int = 0
	for i = 0; i < 2048; i = i + 7 {
		s = s + buf[i]
	}
	out32(s)
	return 0
}`
	cycles := map[string]uint64{}
	for _, cfg := range Configs() {
		img := buildImage(t, src, cfg.ISA)
		core := New(cfg, img.NewMemory(), img.Entry)
		if !core.Run(1 << 24) {
			t.Fatalf("%s: did not halt", cfg.Name)
		}
		cycles[cfg.Name] = core.Cycle
	}
	// Cross-ISA cycle counts are not comparable (different binaries);
	// compare within each ISA: the small core must be slower.
	if cycles["A9"] <= cycles["A15"] {
		t.Errorf("expected A9-like slower than A15-like: %v", cycles)
	}
	// A57 and A72 differ only in IQ/BTB/L2 capacity; on a cache-resident
	// workload they should be within a whisker of each other.
	if d := float64(cycles["A72"]) / float64(cycles["A57"]); d > 1.05 {
		t.Errorf("A72-like unexpectedly much slower than A57-like: %v", cycles)
	}
	seen := map[uint64]bool{}
	for _, c := range cycles {
		seen[c] = true
	}
	if len(seen) < 3 {
		t.Errorf("cycle counts suspiciously uniform: %v", cycles)
	}
}

func TestCrashOnWildJump(t *testing.T) {
	// A user program jumping into the weeds must end as a kernel panic
	// on the OoO core, exactly as on the emulator.
	b := asm.NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("_start")
	b.Li(5, 0x300000)
	b.Jalr(0, 5, 0)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(p, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	core := New(ConfigA72(), img.NewMemory(), img.Entry)
	if !core.Run(1 << 20) {
		t.Fatal("did not halt")
	}
	if core.Bus.Halt != dev.HaltPanic {
		t.Fatalf("halt = %v", core.Bus.Halt)
	}
}
