package micro

import (
	"bytes"
	"testing"

	"vulnstack/internal/asm"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/mem"
	"vulnstack/internal/workload"
)

// smcImage builds a self-modifying program: a two-iteration loop whose
// body instruction is overwritten (addi +1 -> addi +100) during the
// first iteration, then exits with the accumulator as the exit code.
// The decode memo is keyed on the fetched word, so the patched word
// must decode fresh — a stale hit would add 1 twice (exit 2) instead
// of 1 then 100 (exit 101).
func smcImage(t *testing.T) *kernel.Image {
	t.Helper()
	patched := isa.Encode(isa.Instr{Op: isa.ADDI, Rd: 8, Rs1: 8, Imm: 100})
	b := asm.NewBuilder(isa.VSA64, mem.UserBase)
	b.Label("_start")
	b.La(6, "slot")
	b.Li(7, int64(patched))
	b.Li(8, 0)
	b.Li(9, 2)
	b.Label("loop")
	b.Label("slot")
	b.Addi(8, 8, 1) // overwritten with addi x8, x8, 100
	b.Sw(7, 0, 6)
	b.Addi(9, 9, -1)
	b.Bne(9, 0, "loop")
	b.Li(isa.RegA0, isa.SysExit)
	b.Add(isa.RegA1, 8, 0)
	b.Ecall()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(p, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestEmuDecodeCacheSelfModifying: the functional emulator rereads the
// instruction stream every step, so the patched instruction must take
// effect — with and without the decode memo, identically.
func TestEmuDecodeCacheSelfModifying(t *testing.T) {
	img := smcImage(t)
	run := func(noCache bool) *dev.Bus {
		bus := dev.NewBus(img.NewMemory())
		c := emu.New(img.ISA, bus, img.Entry)
		c.NoDecodeCache = noCache
		if !c.Run(1 << 20) {
			t.Fatal("did not halt")
		}
		return bus
	}
	cached, plain := run(false), run(true)
	if cached.Halt != dev.HaltClean || plain.Halt != dev.HaltClean {
		t.Fatalf("halts: cached %v, plain %v", cached.Halt, plain.Halt)
	}
	if cached.ExitCode != plain.ExitCode {
		t.Fatalf("decode cache changed the result: %d vs %d", cached.ExitCode, plain.ExitCode)
	}
	if plain.ExitCode != 101 {
		t.Fatalf("exit %d, want 101 (1 then patched +100)", plain.ExitCode)
	}
}

// TestMicroDecodeCacheSelfModifying: whatever instruction bytes the
// OoO front end fetches, the memoized decode must match a fresh
// isa.Decode of those bytes — the cached and uncached cores must agree
// cycle for cycle.
func TestMicroDecodeCacheSelfModifying(t *testing.T) {
	img := smcImage(t)
	cfgOn := ConfigA72()
	cfgOff := ConfigA72()
	cfgOff.NoDecodeCache = true
	run := func(cfg Config) *Core {
		c := New(cfg, img.NewMemory(), img.Entry)
		if !c.Run(1 << 22) {
			t.Fatal("did not halt")
		}
		return c
	}
	on, off := run(cfgOn), run(cfgOff)
	if on.Bus.Halt != off.Bus.Halt || on.Bus.ExitCode != off.Bus.ExitCode {
		t.Fatalf("decode cache changed the outcome: %v/%d vs %v/%d",
			on.Bus.Halt, on.Bus.ExitCode, off.Bus.Halt, off.Bus.ExitCode)
	}
	if on.Cycle != off.Cycle || on.Instret != off.Instret {
		t.Fatalf("decode cache changed timing: %d/%d cycles, %d/%d instrs",
			on.Cycle, off.Cycle, on.Instret, off.Instret)
	}
	if !on.StateEqual(off) {
		t.Fatal("final core states differ with the decode cache on vs off")
	}
}

// TestDecodeMemoCollisionEviction pins the direct-mapped geometry of
// the memo: PCs 4<<decodeBits bytes apart index the same slot, so
// alternating between two such PCs evicts and re-tags the slot on
// every probe — each probe must still return the fresh isa.Decode of
// its own word, the aliasing pair must occupy exactly one slot between
// them, and a cached illegal-word result must never leak into a later
// legal probe of the same slot.
func TestDecodeMemoCollisionEviction(t *testing.T) {
	img := smcImage(t)
	c := New(ConfigA72(), img.NewMemory(), img.Entry)

	pcA := uint64(mem.UserBase)
	pcB := pcA + 4<<decodeBits
	idx := func(pc uint64) uint64 { return (pc >> 2) & (1<<decodeBits - 1) }
	if idx(pcA) != idx(pcB) {
		t.Fatal("test PCs do not alias one memo slot")
	}
	wa := isa.Encode(isa.Instr{Op: isa.ADDI, Rd: 5, Rs1: 6, Imm: 42})
	wb := isa.Encode(isa.Instr{Op: isa.XOR, Rd: 7, Rs1: 8, Rs2: 9})

	check := func(pc uint64, w uint32) {
		t.Helper()
		in, ok := c.decode(pc, w)
		win, wok := isa.Decode(w, c.IS)
		if ok != wok || in != win {
			t.Fatalf("decode(%#x, %#x) = %+v/%v, fresh isa.Decode = %+v/%v",
				pc, w, in, ok, win, wok)
		}
	}
	for i := 0; i < 3; i++ {
		check(pcA, wa)
		check(pcB, wb)
	}
	used := 0
	for i := range c.decodeMemo {
		if c.decodeMemo[i].state != 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("aliasing pair occupies %d memo slots, want 1 (eviction, not accumulation)", used)
	}
	if got := c.decodeMemo[idx(pcB)].word; got != wb {
		t.Fatalf("slot tag %#x after eviction, want last probed word %#x", got, wb)
	}

	const illegal = uint32(0xFFFFFFFF)
	if _, ok := isa.Decode(illegal, c.IS); ok {
		t.Fatalf("%#x unexpectedly decodes; pick a different illegal word", illegal)
	}
	check(pcA, illegal) // caches the negative result
	check(pcA, wa)      // same slot, legal word: must evict, not report illegal
}

// TestDecodeCacheLockstepOnWorkload: cached and uncached cores run a
// real benchmark in lockstep to the same output.
func TestDecodeCacheLockstepOnWorkload(t *testing.T) {
	spec, err := workload.Get("crc32")
	if err != nil {
		t.Fatal(err)
	}
	img := buildImage(t, spec.Gen(3, 1), isa.VSA64)
	cfgOff := ConfigA72()
	cfgOff.NoDecodeCache = true
	on := New(ConfigA72(), img.NewMemory(), img.Entry)
	off := New(cfgOff, img.NewMemory(), img.Entry)
	if !on.Run(1<<26) || !off.Run(1<<26) {
		t.Fatal("did not halt")
	}
	if on.Cycle != off.Cycle || !bytes.Equal(on.Bus.Out, off.Bus.Out) {
		t.Fatal("decode cache changed execution on crc32")
	}
	if !on.StateEqual(off) {
		t.Fatal("final states differ")
	}
}
