package micro

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vulnstack/internal/isa"
)

// This file is the canonical machine-state codec behind the delta
// checkpoint chain (internal/ckpt). The contract is exact:
//
//	EncodeState(a) bytes-equal EncodeState(b)  ⟺  a.StateEqual(b)
//
// so the chain's chunk-wise blob comparison IS the convergence test,
// and DecodeState(EncodeState(c)) reproduces a core that is StateEqual
// to c and behaves identically (RAM excluded — the chain restores it
// separately, page-wise).
//
// Canonicality is why the encoding normalizes exactly the two spots
// where StateEqual admits representational slack: a cache line's nil
// taint slice encodes as all-zero mask bytes (taintSliceEqual treats
// them as equal), and the RAM taint map encodes as its nonzero entries
// in ascending address order (taintsEqual treats absent as zero).
// Everything StateEqual excludes — RAM contents, the measurement-only
// c.Taint, the decode memo, OnCommit — is excluded here too.
//
// Layout: all fixed-size sections (scalars, register files, ROB/LSQ
// arrays, branch predictor, caches) come first so their byte offsets
// are identical across checkpoints — delta chunking then stores only
// genuinely changed state — and the variable-length sections (free
// list, issue/fetch queues, completion ring, RAM taints, device state)
// trail.

func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func appendI(dst []byte, v int) []byte { return binary.LittleEndian.AppendUint64(dst, uint64(int64(v))) }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// statePCOffset is the byte offset of fetchPC in an EncodeState blob:
// Cycle, Instret, KInstr, seq and mode precede it, 8 bytes each.
const statePCOffset = 5 * 8

// StatePC extracts the fetch PC from an EncodeState blob without
// decoding the rest: the program point a checkpoint restores to, used
// as the governing address for static features (e.g. liveness buckets
// in stratified sampling). ok=false on a blob too short to hold it.
func StatePC(blob []byte) (uint64, bool) {
	if len(blob) < statePCOffset+8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(blob[statePCOffset:]), true
}

// EncodeState appends the canonical encoding of the core's
// StateEqual-relevant state to dst and returns the result.
func (c *Core) EncodeState(dst []byte) []byte {
	dst = appendU64(dst, c.Cycle)
	dst = appendU64(dst, c.Instret)
	dst = appendU64(dst, c.KInstr)
	dst = appendU64(dst, c.seq)
	dst = appendI(dst, int(c.mode))
	dst = appendU64(dst, c.fetchPC)
	dst = appendBool(dst, c.fetchStall)
	for _, v := range []int{c.robHead, c.robTail, c.robCount, c.lqH, c.lqT, c.lqN, c.sqH, c.sqT, c.sqN} {
		dst = appendI(dst, v)
	}
	for _, v := range c.csr {
		dst = appendU64(dst, v)
	}
	for _, v := range c.retRAT {
		dst = appendI(dst, v)
	}
	for _, v := range c.frontRAT {
		dst = appendI(dst, v)
	}
	for _, v := range c.prf {
		dst = appendU64(dst, v)
	}
	for _, v := range c.prfReady {
		dst = appendBool(dst, v)
	}
	for _, v := range c.prfTaint {
		dst = appendBool(dst, v)
	}
	for i := range c.rob {
		dst = appendRobe(dst, &c.rob[i])
	}
	for i := range c.lq {
		dst = appendLSQ(dst, &c.lq[i])
	}
	for i := range c.sq {
		dst = appendLSQ(dst, &c.sq[i])
	}
	dst = c.bp.appendState(dst)
	dst = c.l1i.appendState(dst)
	dst = c.l1d.appendState(dst)
	dst = c.l2.appendState(dst)

	// Variable-length tail.
	dst = binary.AppendUvarint(dst, uint64(len(c.freeList)))
	for _, v := range c.freeList {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.iq)))
	for _, v := range c.iq {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.fq)))
	for i := range c.fq {
		dst = appendFetch(dst, &c.fq[i])
	}
	for _, bucket := range c.ring {
		dst = binary.AppendUvarint(dst, uint64(len(bucket)))
		for _, e := range bucket {
			dst = binary.AppendUvarint(dst, uint64(e.idx))
			dst = binary.AppendUvarint(dst, e.seq)
		}
	}
	dst = appendTaints(dst, c.ram.taints)
	return c.Bus.AppendDevice(dst)
}

func appendRobe(dst []byte, r *robe) []byte {
	dst = appendBool(dst, r.valid)
	dst = appendU64(dst, r.seq)
	dst = appendInstr(dst, &r.in)
	dst = appendU64(dst, r.pc)
	dst = appendU64(dst, r.npc)
	dst = appendI(dst, int(r.mode))
	dst = appendBool(dst, r.hasExc)
	dst = appendU64(dst, r.excCause)
	dst = appendU64(dst, r.excVal)
	dst = appendI(dst, r.archRd)
	dst = appendI(dst, r.newPhys)
	dst = appendI(dst, r.oldPhys)
	dst = appendI(dst, r.src1)
	dst = appendI(dst, r.src2)
	dst = appendBool(dst, r.issued)
	dst = appendBool(dst, r.executed)
	dst = appendU64(dst, r.result)
	dst = appendBool(dst, r.isLoad)
	dst = appendBool(dst, r.isStore)
	dst = appendI(dst, r.lsq)
	dst = appendBool(dst, r.serialize)
	dst = appendU64(dst, r.actualNext)
	dst = appendBool(dst, r.isCtl)
	dst = appendBool(dst, r.tainted)
	dst = appendBool(dst, r.fetchTaint)
	dst = appendBool(dst, r.fetchWI)
	dst = appendBool(dst, r.lsqAddrT)
	dst = appendBool(dst, r.lsqDataT)
	dst = appendBool(dst, r.storeDataT)
	dst = appendU64(dst, r.doneCycle)
	return appendBool(dst, r.inFlight)
}

func appendLSQ(dst []byte, e *lsqEntry) []byte {
	dst = appendBool(dst, e.valid)
	dst = appendU64(dst, e.seq)
	dst = appendI(dst, e.rob)
	dst = appendBool(dst, e.isStore)
	dst = appendU64(dst, e.addr)
	dst = appendBool(dst, e.addrOK)
	dst = appendU64(dst, e.data)
	dst = appendBool(dst, e.dataOK)
	dst = appendI(dst, e.size)
	dst = appendBool(dst, e.addrTaint)
	dst = appendBool(dst, e.dataTaint)
	return appendBool(dst, e.dataSrcTaint)
}

func appendFetch(dst []byte, f *fetchEntry) []byte {
	dst = appendU64(dst, f.pc)
	dst = appendU64(dst, f.npc)
	dst = binary.LittleEndian.AppendUint32(dst, f.word)
	dst = appendInstr(dst, &f.in)
	dst = appendBool(dst, f.ok)
	dst = appendBool(dst, f.fetchExc)
	dst = appendU64(dst, f.excCause)
	dst = appendU64(dst, f.ready)
	dst = appendBool(dst, f.fetchTaint)
	return appendBool(dst, f.fetchWI)
}

func appendInstr(dst []byte, in *isa.Instr) []byte {
	dst = appendI(dst, int(in.Op))
	dst = appendI(dst, in.Rd)
	dst = appendI(dst, in.Rs1)
	dst = appendI(dst, in.Rs2)
	dst = appendU64(dst, uint64(in.Imm))
	return binary.LittleEndian.AppendUint32(dst, in.Raw)
}

func (bp *branchPred) appendState(dst []byte) []byte {
	dst = appendI(dst, bp.rasTop)
	dst = append(dst, bp.counters...)
	for _, v := range bp.btbTag {
		dst = appendU64(dst, v)
	}
	for _, v := range bp.btbTgt {
		dst = appendU64(dst, v)
	}
	for _, v := range bp.ras {
		dst = appendU64(dst, v)
	}
	return dst
}

func (c *cache) appendState(dst []byte) []byte {
	dst = appendU64(dst, uint64(c.tick))
	lb := c.cfg.LineBytes
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			dst = appendBool(dst, l.valid)
			dst = appendBool(dst, l.dirty)
			dst = appendU64(dst, l.tag)
			dst = appendU64(dst, uint64(l.lru))
			// nil taint ≡ all-zero: always emit the full mask so the
			// encoding is canonical.
			if l.taint == nil {
				for i := 0; i < lb; i++ {
					dst = append(dst, 0)
				}
			} else {
				dst = append(dst, l.taint...)
			}
		}
	}
	return append(dst, c.backing...)
}

// appendTaints emits the RAM taint map canonically: nonzero entries
// only, ascending address order.
func appendTaints(dst []byte, taints map[uint64]taintMask) []byte {
	keys := make([]uint64, 0, len(taints))
	//lint:ordered keys are collected then sorted; order-free
	for k, v := range taints {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, k)
		dst = append(dst, byte(taints[k]))
	}
	return dst
}

// StateProbe folds the cheap scalar slice of the state into one word:
// the first-stage convergence gate. A faulty run whose probe differs
// from the golden checkpoint's cannot be StateEqual, so the expensive
// full encode-and-compare only runs on a probe match.
func (c *Core) StateProbe() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(c.Cycle)
	mix(c.Instret)
	mix(c.KInstr)
	mix(c.seq)
	mix(uint64(c.mode))
	mix(c.fetchPC)
	if c.fetchStall {
		mix(1)
	} else {
		mix(2)
	}
	mix(uint64(c.robHead)<<32 | uint64(uint32(c.robCount)))
	mix(uint64(c.lqN)<<32 | uint64(uint32(c.sqN)))
	mix(uint64(len(c.fq))<<32 | uint64(uint32(len(c.iq))))
	for _, v := range c.csr {
		mix(v)
	}
	for i := range c.retRAT {
		mix(uint64(int64(c.retRAT[i]))*31 + uint64(int64(c.frontRAT[i])))
	}
	for _, v := range c.prf {
		mix(v)
	}
	return h
}

// stateReader decodes an EncodeState blob with sticky error handling.
type stateReader struct {
	b   []byte
	bad bool
}

func (r *stateReader) u64() uint64 {
	if r.bad || len(r.b) < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *stateReader) i() int { return int(int64(r.u64())) }

func (r *stateReader) u32() uint32 {
	if r.bad || len(r.b) < 4 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *stateReader) bool() bool {
	if r.bad || len(r.b) < 1 {
		r.bad = true
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v != 0
}

func (r *stateReader) uv() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *stateReader) bytes(n int) []byte {
	if r.bad || n < 0 || len(r.b) < n {
		r.bad = true
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// DecodeState restores the core from an EncodeState blob, reusing the
// core's allocations (the in-place analogue of RestoreFrom for the
// checkpoint chain). The core must have the geometry the blob was
// captured with (same Config). RAM contents are not touched — the
// chain restores them page-wise — and, as with RestoreFrom, the decode
// memo survives (entries are word-tagged and can never go stale) while
// OnCommit and the measurement taint state reset.
func (c *Core) DecodeState(blob []byte) error {
	r := &stateReader{b: blob}
	c.Cycle = r.u64()
	c.Instret = r.u64()
	c.KInstr = r.u64()
	c.seq = r.u64()
	c.mode = isa.Mode(r.i())
	c.fetchPC = r.u64()
	c.fetchStall = r.bool()
	c.robHead, c.robTail, c.robCount = r.i(), r.i(), r.i()
	c.lqH, c.lqT, c.lqN = r.i(), r.i(), r.i()
	c.sqH, c.sqT, c.sqN = r.i(), r.i(), r.i()
	for i := range c.csr {
		c.csr[i] = r.u64()
	}
	for i := range c.retRAT {
		c.retRAT[i] = r.i()
	}
	for i := range c.frontRAT {
		c.frontRAT[i] = r.i()
	}
	for i := range c.prf {
		c.prf[i] = r.u64()
	}
	for i := range c.prfReady {
		c.prfReady[i] = r.bool()
	}
	for i := range c.prfTaint {
		c.prfTaint[i] = r.bool()
	}
	for i := range c.rob {
		readRobe(r, &c.rob[i])
	}
	for i := range c.lq {
		readLSQ(r, &c.lq[i])
	}
	for i := range c.sq {
		readLSQ(r, &c.sq[i])
	}
	c.bp.readState(r)
	c.l1i.readState(r)
	c.l1d.readState(r)
	c.l2.readState(r)

	n := int(r.uv())
	if n < 0 || n > 4*len(c.prf)+64 {
		return fmt.Errorf("micro: state blob free-list length %d", n)
	}
	c.freeList = c.freeList[:0]
	for i := 0; i < n; i++ {
		c.freeList = append(c.freeList, int(r.uv()))
	}
	n = int(r.uv())
	if n < 0 || n > 4*len(c.rob)+64 {
		return fmt.Errorf("micro: state blob issue-queue length %d", n)
	}
	c.iq = c.iq[:0]
	for i := 0; i < n; i++ {
		c.iq = append(c.iq, int(r.uv()))
	}
	n = int(r.uv())
	if n < 0 || n > 16*c.Cfg.FetchWidth+64 {
		return fmt.Errorf("micro: state blob fetch-queue length %d", n)
	}
	c.fq = c.fq[:0]
	for i := 0; i < n; i++ {
		var f fetchEntry
		readFetch(r, &f)
		c.fq = append(c.fq, f)
	}
	for i := range c.ring {
		k := int(r.uv())
		if k < 0 || k > 4*len(c.rob)+64 {
			return fmt.Errorf("micro: state blob ring bucket length %d", k)
		}
		c.ring[i] = c.ring[i][:0]
		for j := 0; j < k; j++ {
			idx := int(r.uv())
			seq := r.uv()
			c.ring[i] = append(c.ring[i], ringEnt{idx: idx, seq: seq})
		}
	}
	nt := int(r.uv())
	if nt < 0 || nt > len(c.Bus.Mem.Bytes())+64 {
		return fmt.Errorf("micro: state blob taint count %d", nt)
	}
	clear(c.ram.taints)
	for i := 0; i < nt; i++ {
		addr := r.uv()
		m := r.bytes(1)
		if r.bad {
			break
		}
		c.ram.taints[addr] = m[0]
	}
	if r.bad {
		return fmt.Errorf("micro: truncated state blob")
	}
	rest, err := c.Bus.SetDevice(r.b)
	if err != nil {
		return fmt.Errorf("micro: state blob device: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("micro: %d trailing state blob bytes", len(rest))
	}
	c.Taint = taintState{}
	c.OnCommit = nil
	return nil
}

func readRobe(r *stateReader, e *robe) {
	e.valid = r.bool()
	e.seq = r.u64()
	readInstr(r, &e.in)
	e.pc = r.u64()
	e.npc = r.u64()
	e.mode = isa.Mode(r.i())
	e.hasExc = r.bool()
	e.excCause = r.u64()
	e.excVal = r.u64()
	e.archRd = r.i()
	e.newPhys = r.i()
	e.oldPhys = r.i()
	e.src1 = r.i()
	e.src2 = r.i()
	e.issued = r.bool()
	e.executed = r.bool()
	e.result = r.u64()
	e.isLoad = r.bool()
	e.isStore = r.bool()
	e.lsq = r.i()
	e.serialize = r.bool()
	e.actualNext = r.u64()
	e.isCtl = r.bool()
	e.tainted = r.bool()
	e.fetchTaint = r.bool()
	e.fetchWI = r.bool()
	e.lsqAddrT = r.bool()
	e.lsqDataT = r.bool()
	e.storeDataT = r.bool()
	e.doneCycle = r.u64()
	e.inFlight = r.bool()
}

func readLSQ(r *stateReader, e *lsqEntry) {
	e.valid = r.bool()
	e.seq = r.u64()
	e.rob = r.i()
	e.isStore = r.bool()
	e.addr = r.u64()
	e.addrOK = r.bool()
	e.data = r.u64()
	e.dataOK = r.bool()
	e.size = r.i()
	e.addrTaint = r.bool()
	e.dataTaint = r.bool()
	e.dataSrcTaint = r.bool()
}

func readFetch(r *stateReader, f *fetchEntry) {
	f.pc = r.u64()
	f.npc = r.u64()
	f.word = r.u32()
	readInstr(r, &f.in)
	f.ok = r.bool()
	f.fetchExc = r.bool()
	f.excCause = r.u64()
	f.ready = r.u64()
	f.fetchTaint = r.bool()
	f.fetchWI = r.bool()
}

func readInstr(r *stateReader, in *isa.Instr) {
	in.Op = isa.Op(r.i())
	in.Rd = r.i()
	in.Rs1 = r.i()
	in.Rs2 = r.i()
	in.Imm = int64(r.u64())
	in.Raw = r.u32()
}

func (bp *branchPred) readState(r *stateReader) {
	bp.rasTop = r.i()
	copy(bp.counters, r.bytes(len(bp.counters)))
	for i := range bp.btbTag {
		bp.btbTag[i] = r.u64()
	}
	for i := range bp.btbTgt {
		bp.btbTgt[i] = r.u64()
	}
	for i := range bp.ras {
		bp.ras[i] = r.u64()
	}
}

func (c *cache) readState(r *stateReader) {
	c.tick = int64(r.u64())
	lb := c.cfg.LineBytes
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			l.valid = r.bool()
			l.dirty = r.bool()
			l.tag = r.u64()
			l.lru = int64(r.u64())
			mask := r.bytes(lb)
			if isZeroMask(mask) {
				l.taint = nil
			} else {
				l.taint = append(l.taint[:0], mask...)
			}
		}
	}
	copy(c.backing, r.bytes(len(c.backing)))
}

func isZeroMask(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
