package micro

import (
	"testing"

	"vulnstack/internal/mem"
)

func testHierarchy() (*cache, *cache, *ramLevel, *mem.Memory) {
	m := mem.New(1 << 18)
	ram := newRAMLevel(m, 50)
	l2 := newCache(CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4, HitLat: 10}, ram)
	l1 := newCache(CacheConfig{SizeBytes: 1 << 10, LineBytes: 64, Assoc: 2, HitLat: 1}, l2)
	return l1, l2, ram, m
}

func TestCacheReadWriteThrough(t *testing.T) {
	l1, _, _, m := testHierarchy()
	m.Write(0x2000, 8, 0x1122334455667788)
	v, taint, lat := l1.read(0x2000, 8)
	if v != 0x1122334455667788 || taint != 0 {
		t.Fatalf("read %x taint %x", v, taint)
	}
	if lat <= 1 {
		t.Fatal("first access must miss")
	}
	_, _, lat = l1.read(0x2000, 4)
	if lat != 1 {
		t.Fatalf("second access must hit (lat %d)", lat)
	}
	// Write hits the cached line and marks it dirty; RAM unchanged
	// until eviction.
	l1.write(0x2000, 8, 42, false)
	raw, _ := m.Read(0x2000, 8)
	if raw != 0x1122334455667788 {
		t.Fatal("writeback cache must not write through")
	}
	l1.flushAll()
	l1.lower.(*cache).flushAll() // drain L2 to RAM as well
	raw, _ = m.Read(0x2000, 8)
	if raw != 42 {
		t.Fatalf("flush must write back: %d", raw)
	}
}

func TestCacheEvictionWritesBack(t *testing.T) {
	l1, _, _, m := testHierarchy()
	// L1: 1KB, 64B lines, 2-way => 8 sets. Addresses 64*8 apart share
	// a set; three of them overflow two ways.
	a0, a1, a2 := uint64(0x2000), uint64(0x2000+512), uint64(0x2000+1024)
	l1.write(a0, 8, 111, false)
	l1.write(a1, 8, 222, false)
	l1.write(a2, 8, 333, false) // evicts a0 (write back into L2)
	// Drain both levels so RAM holds everything.
	l1.flushAll()
	l1.lower.(*cache).flushAll()
	for _, c := range []struct {
		addr uint64
		want uint64
	}{{a0, 111}, {a1, 222}, {a2, 333}} {
		v, _ := m.Read(c.addr, 8)
		if v != c.want {
			t.Fatalf("addr %#x: %d want %d", c.addr, v, c.want)
		}
	}
}

func TestCacheSnoop(t *testing.T) {
	l1, l2, _, m := testHierarchy()
	m.Write(0x3000, 1, 0x7F)
	if _, _, hit := l1.snoop(0x3000); hit {
		t.Fatal("cold snoop must miss")
	}
	l1.write(0x3000, 1, 0x55, false)
	b, taint, hit := l1.snoop(0x3000)
	if !hit || b != 0x55 || taint != 0 {
		t.Fatalf("snoop: hit=%v b=%#x", hit, b)
	}
	// Tainted write visible to the snooper (the ESC detection path).
	l1.write(0x3000, 1, 0x56, true)
	_, taint, _ = l1.snoop(0x3000)
	if taint == 0 {
		t.Fatal("snoop must observe taint")
	}
	// The refill path populated L2 with the pre-write copy; the DMA
	// snooper must prefer the L1 (freshest) copy, which it does by
	// construction — verify L2 holds the stale clean byte.
	if b2, t2, hit := l2.snoop(0x3000); !hit || b2 != 0x7F || t2 != 0 {
		t.Fatalf("L2 copy: hit=%v b=%#x taint=%#x", hit, b2, t2)
	}
}

func TestFlipDataBitTaintsLine(t *testing.T) {
	l1, _, _, _ := testHierarchy()
	l1.write(0x4000, 8, 0, false)
	set, tag, _ := l1.index(0x4000)
	way := l1.lookup(set, tag)
	res := l1.flipBit(set, way, 5) // data bit 5 of byte 0
	if !res.Hit || res.StaleLen != 0 {
		t.Fatalf("flip result %+v", res)
	}
	v, taint, _ := l1.read(0x4000, 1)
	if v != 0x20 || taint != 0x20 {
		t.Fatalf("after flip: v=%#x taint=%#x", v, taint)
	}
	// Flipping the same bit back self-corrects the taint.
	l1.flipBit(set, way, 5)
	v, taint, _ = l1.read(0x4000, 1)
	if v != 0 || taint != 0 {
		t.Fatalf("after unflip: v=%#x taint=%#x", v, taint)
	}
}

func TestFlipInvalidLineIsDead(t *testing.T) {
	l1, _, _, _ := testHierarchy()
	res := l1.flipBit(0, 0, 3)
	if res.Hit {
		t.Fatal("flip in invalid line must report dead")
	}
}

func TestFlipTagOnDirtyLineStalesRAM(t *testing.T) {
	l1, _, _, _ := testHierarchy()
	l1.write(0x5000, 8, 7, false) // dirty line
	set, tag, _ := l1.index(0x5000)
	way := l1.lookup(set, tag)
	dataBits := 8 * l1.cfg.LineBytes
	res := l1.flipBit(set, way, dataBits) // tag bit 0
	if !res.Hit || res.StaleLen != l1.cfg.LineBytes {
		t.Fatalf("tag flip on dirty line: %+v", res)
	}
	if res.StaleAddr != 0x5000&^63 {
		t.Fatalf("stale addr %#x", res.StaleAddr)
	}
}

func TestFlipValidBitDropsDirtyLine(t *testing.T) {
	l1, _, _, _ := testHierarchy()
	l1.write(0x6000, 8, 9, false)
	set, tag, _ := l1.index(0x6000)
	way := l1.lookup(set, tag)
	validBit := 8*l1.cfg.LineBytes + l1.cfg.TagBits()
	res := l1.flipBit(set, way, validBit)
	if !res.Hit || res.StaleLen == 0 {
		t.Fatalf("valid flip on dirty line: %+v", res)
	}
	if w := l1.lookup(set, tag); w >= 0 {
		t.Fatal("line must be invalid after valid-bit flip")
	}
}

func TestTaintTravelsThroughWriteback(t *testing.T) {
	l1, l2, ram, _ := testHierarchy()
	l1.write(0x7000, 8, 1, true) // tainted dirty line in L1
	l1.flushAll()                // -> L2
	if _, taint, hit := l2.snoop(0x7000); !hit || taint == 0 {
		t.Fatal("taint must reach L2 on writeback")
	}
	l2.flushAll() // -> RAM
	if ram.taints[0x7000] == 0 {
		t.Fatal("taint must reach the RAM taint map")
	}
	// Refill from RAM restores the taint into a fresh cache.
	v, taint, _ := l1.read(0x7000, 8)
	if v != 1 || taint == 0 {
		t.Fatal("refill must carry taint back")
	}
	// Overwriting with clean data clears it everywhere relevant.
	l1.write(0x7000, 8, 2, false)
	l1.flushAll()
	l2.flushAll()
	if ram.taints[0x7000] != 0 {
		t.Fatal("clean overwrite must clear RAM taint")
	}
}

func TestBranchPredictorBasics(t *testing.T) {
	cfg := ConfigA72()
	bp := newBranchPred(&cfg)
	pc := uint64(0x1000)
	if bp.predictTaken(pc) {
		t.Fatal("counters start not-taken")
	}
	bp.updateTaken(pc, true)
	bp.updateTaken(pc, true)
	if !bp.predictTaken(pc) {
		t.Fatal("two taken updates must flip the prediction")
	}
	bp.updateTaken(pc, false)
	bp.updateTaken(pc, false)
	bp.updateTaken(pc, false)
	if bp.predictTaken(pc) {
		t.Fatal("saturating down")
	}
	if _, hit := bp.btbLookup(pc); hit {
		t.Fatal("cold BTB")
	}
	bp.btbInsert(pc, 0x2000)
	if tgt, hit := bp.btbLookup(pc); !hit || tgt != 0x2000 {
		t.Fatal("BTB roundtrip")
	}
	bp.rasPush(0x3004)
	bp.rasPush(0x4008)
	if bp.rasPop() != 0x4008 || bp.rasPop() != 0x3004 {
		t.Fatal("RAS order")
	}
}

func TestCloneIndependence(t *testing.T) {
	l1, _, _, _ := testHierarchy()
	l1.write(0x2000, 8, 5, false)
	ram2 := newRAMLevel(mem.New(1<<18), 50)
	c2 := l1.clone(ram2)
	c2.write(0x2000, 8, 99, false)
	v, _, _ := l1.read(0x2000, 8)
	if v != 5 {
		t.Fatal("clone aliases the original backing array")
	}
}
