package micro

import "vulnstack/internal/isa"

// The predecoded fetch cache removes isa.Decode from the per-cycle
// fetch loop of every golden and faulty run. It is a direct-mapped memo
// indexed by word-aligned PC whose *tag is the fetched instruction word
// itself*: isa.Decode is a pure function of (word, ISA), so a hit with
// a matching word is correct regardless of which PC produced it, and
// any change to the word — a store to the page, an injected L1i data
// flip, a corrupted tag serving unrelated bytes — misses the tag
// compare and re-decodes. Invalidation is therefore structural: there
// is no flush to forget, and the memo can never serve a stale decode.
//
// Taint classification (fetchTaint/fetchWI) stays outside the memo in
// fetchStage: it depends on the L1i taint bytes, not on the decode.

// decodeBits sizes the memo at 2^decodeBits entries (covers 16 KiB of
// text per generation; colliding PCs just alternate, still correct).
const decodeBits = 12

// decodeEnt is one memo slot. state distinguishes an empty slot from a
// cached "word does not decode" result.
type decodeEnt struct {
	word  uint32
	in    isa.Instr
	state uint8 // 0 empty, 1 decodes to in, 2 illegal
}

// decode is the memoized isa.Decode used by fetchStage.
func (c *Core) decode(pc uint64, word uint32) (isa.Instr, bool) {
	if c.Cfg.NoDecodeCache {
		return isa.Decode(word, c.IS)
	}
	if c.decodeMemo == nil {
		c.decodeMemo = make([]decodeEnt, 1<<decodeBits)
	}
	e := &c.decodeMemo[(pc>>2)&(1<<decodeBits-1)]
	if e.state != 0 && e.word == word {
		return e.in, e.state == 1
	}
	in, ok := isa.Decode(word, c.IS)
	e.word, e.in = word, in
	if ok {
		e.state = 1
	} else {
		e.state = 2
	}
	return in, ok
}
