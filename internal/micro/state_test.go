package micro

import (
	"bytes"
	"testing"

	"vulnstack/internal/mem"
	"vulnstack/internal/workload"
)

// midpointCore runs the sha workload to roughly half its golden length
// and returns the core plus the config used.
func midpointCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	spec, err := workload.Get("sha")
	if err != nil {
		t.Fatal(err)
	}
	img := buildImage(t, spec.Gen(3, 1), cfg.ISA)
	golden := New(cfg, img.NewMemory(), img.Entry)
	if !golden.Run(1 << 28) {
		t.Fatal("golden run did not finish")
	}
	core := New(cfg, img.NewMemory(), img.Entry)
	for core.Cycle < golden.Cycle/2 {
		if !core.Step() {
			break
		}
	}
	return core
}

// TestStateCodecRoundTrip: EncodeState/DecodeState must reproduce a
// mid-run core exactly — StateEqual true, identical probe, identical
// re-encoding — and the restored core must finish with the same
// output, cycle count and counters.
func TestStateCodecRoundTrip(t *testing.T) {
	for _, cfg := range []Config{ConfigA72(), ConfigA9()} {
		core := midpointCore(t, cfg)
		blob := core.EncodeState(nil)

		twin := New(cfg, mem.New(core.Bus.Mem.Size()), 0)
		twin.Bus.Mem.CopyFrom(core.Bus.Mem)
		if err := twin.DecodeState(blob); err != nil {
			t.Fatalf("%s: decode: %v", cfg.Name, err)
		}
		if !core.StateEqual(twin) {
			t.Fatalf("%s: restored core not StateEqual to source", cfg.Name)
		}
		if core.StateProbe() != twin.StateProbe() {
			t.Fatalf("%s: probes differ after round trip", cfg.Name)
		}
		if !bytes.Equal(twin.EncodeState(nil), blob) {
			t.Fatalf("%s: re-encoding differs (codec not canonical)", cfg.Name)
		}

		if !core.Run(1<<28) || !twin.Run(1<<28) {
			t.Fatalf("%s: a run did not finish", cfg.Name)
		}
		if core.Cycle != twin.Cycle || core.Instret != twin.Instret ||
			core.KInstr != twin.KInstr ||
			!bytes.Equal(core.Bus.Out, twin.Bus.Out) ||
			core.Bus.ExitCode != twin.Bus.ExitCode {
			t.Fatalf("%s: restored core diverged from source after resume", cfg.Name)
		}
	}
}

// TestStatePC: the cheap fetch-PC peek must agree with the encoded
// core's actual fetch PC, and reject blobs too short to hold it.
func TestStatePC(t *testing.T) {
	cfg := ConfigA72()
	core := midpointCore(t, cfg)
	blob := core.EncodeState(nil)
	pc, ok := StatePC(blob)
	if !ok {
		t.Fatal("StatePC rejected a full state blob")
	}
	if pc != core.fetchPC {
		t.Fatalf("StatePC = %#x, core fetchPC = %#x", pc, core.fetchPC)
	}
	if _, ok := StatePC(blob[:statePCOffset+7]); ok {
		t.Fatal("StatePC accepted a blob too short to hold the PC")
	}
}

// TestStateCodecCanonical: bytes-equality of encodings must track
// StateEqual in both directions — the property the checkpoint chain's
// chunk-wise convergence compare rests on.
func TestStateCodecCanonical(t *testing.T) {
	cfg := ConfigA72()
	core := midpointCore(t, cfg)
	blob := core.EncodeState(nil)

	// Same state → same bytes (even via an independent encode).
	if !bytes.Equal(core.EncodeState(nil), blob) {
		t.Fatal("two encodings of one state differ")
	}
	// Different state → different bytes.
	if !core.Step() {
		t.Fatal("step")
	}
	blob2 := core.EncodeState(nil)
	if bytes.Equal(blob2, blob) {
		t.Fatal("state advanced but encoding unchanged")
	}

	// A truncated blob must error, not mis-restore.
	twin := New(cfg, mem.New(core.Bus.Mem.Size()), 0)
	for _, cut := range []int{0, 10, len(blob) / 2, len(blob) - 1} {
		if err := twin.DecodeState(blob[:cut]); err == nil {
			t.Fatalf("truncated blob (%d bytes) decoded without error", cut)
		}
	}
	// Trailing garbage must error too.
	if err := twin.DecodeState(append(append([]byte(nil), blob...), 0xFF)); err == nil {
		t.Fatal("blob with trailing bytes decoded without error")
	}
}
