package micro

import (
	"fmt"

	"vulnstack/internal/dev"
	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

// FPM is the paper's fault propagation model taxonomy (Table I).
type FPM int

const (
	FPMNone FPM = iota
	FPMWD       // Wrong Data
	FPMWI       // Wrong Instruction
	FPMWOI      // Wrong Operand or Immediate
	FPMESC      // Escaped: corrupted output bypassing the program flow
	NumFPM
)

var fpmNames = [...]string{"none", "WD", "WI", "WOI", "ESC"}

func (f FPM) String() string { return fpmNames[f] }

// taintState tracks the single injected fault's propagation until its
// first architecturally visible contact, which fixes the HVF outcome
// and FPM class. Execution continues afterwards for the AVF outcome.
type taintState struct {
	active  bool
	contact bool
	fpm     FPM
	// ContactCycle is the cycle of first architectural visibility.
	contactCycle uint64
}

// Contacted reports whether the injected fault became architecturally
// visible (the HVF event).
func (t *taintState) Contacted() bool { return t.contact }

// Class returns the fault propagation model of the first contact
// (FPMNone when the fault never became visible).
func (t *taintState) Class() FPM { return t.fpm }

// ContactCycle returns the cycle of first visibility.
func (t *taintState) ContactCycle() uint64 { return t.contactCycle }

func (t *taintState) record(c uint64, f FPM) {
	if !t.active || t.contact {
		return
	}
	t.contact = true
	t.fpm = f
	t.contactCycle = c
}

// lsqEntry is one load- or store-queue slot. Its address and data
// fields are injectable storage.
type lsqEntry struct {
	valid   bool
	seq     uint64
	rob     int
	isStore bool
	addr    uint64
	addrOK  bool
	data    uint64
	dataOK  bool
	size    int
	// Field-level fault flags (set by injection into this entry).
	addrTaint bool
	dataTaint bool
	// dataSrcTaint marks store data read from a tainted register or a
	// forwarded tainted value.
	dataSrcTaint bool
}

// robe is a reorder-buffer entry.
type robe struct {
	valid bool
	seq   uint64
	in    isa.Instr
	pc    uint64
	npc   uint64 // predicted next PC (fetch direction)
	mode  isa.Mode

	hasExc   bool
	excCause uint64
	excVal   uint64

	archRd   int // -1 when no register result
	newPhys  int
	oldPhys  int
	src1     int // phys regs, -1 when unused
	src2     int
	issued   bool
	executed bool
	result   uint64

	isLoad    bool
	isStore   bool
	lsq       int // index into lq/sq, -1
	serialize bool

	actualNext uint64
	isCtl      bool

	// Taint bookkeeping.
	tainted     bool // consumed corrupted data
	fetchTaint  bool // instruction encoding corrupted
	fetchWI     bool // corruption includes operation-field bits
	lsqAddrT    bool
	lsqDataT    bool
	storeDataT  bool
	doneCycle   uint64
	inFlight    bool
}

// fetchEntry is a pre-decoded instruction waiting for dispatch.
type fetchEntry struct {
	pc, npc    uint64
	word       uint32
	in         isa.Instr
	ok         bool // decodable
	fetchExc   bool // fetch fault (bad PC)
	excCause   uint64
	ready      uint64 // cycle at which it may dispatch
	fetchTaint bool
	fetchWI    bool
}

// Core is the out-of-order machine.
type Core struct {
	Cfg Config
	IS  isa.ISA
	Bus *dev.Bus

	ram *ramLevel
	l1i *cache
	l1d *cache
	l2  *cache
	bp  *branchPred

	// Architectural (retirement) state.
	csr    [isa.NumCSRs]uint64
	mode   isa.Mode
	retRAT [32]int

	// Speculative rename state.
	frontRAT [32]int
	prf      []uint64
	prfReady []bool
	prfTaint []bool
	freeList []int

	rob      []robe
	robHead  int
	robTail  int
	robCount int
	seq      uint64

	iq []int // rob indices waiting to issue (program order)

	lq, sq     []lsqEntry
	lqH, lqT   int
	sqH, sqT   int
	lqN, sqN   int

	fq      []fetchEntry
	fetchPC uint64
	// fetchStall pauses fetch until a redirect (after a fetch fault).
	fetchStall bool

	Cycle   uint64
	Instret uint64
	KInstr  uint64

	Taint taintState

	// OnCommit, when set, observes every retired instruction (used by
	// the lockstep checker against the functional emulator).
	OnCommit func(pc uint64, in isa.Instr, mode isa.Mode)

	// completion ring: entries finishing at cycle c are in
	// ring[c % len(ring)].
	ring [][]ringEnt

	// decodeMemo is the predecoded fetch cache (see decode.go). It is
	// derived state — a pure function of fetched words — so it is
	// excluded from Clone, StateEqual and injection targets.
	decodeMemo []decodeEnt
}

// ringEnt identifies a scheduled completion; seq guards against a
// squashed entry's ROB slot being reused before its completion cycle.
type ringEnt struct {
	idx int
	seq uint64
}

const ringSize = 1024

// New builds a core over a loaded memory image, booting at entry in
// kernel mode.
func New(cfg Config, m *mem.Memory, entry uint64) *Core {
	c := &Core{Cfg: cfg, IS: cfg.ISA, mode: isa.Kernel, fetchPC: entry}
	c.Bus = dev.NewBus(m)
	c.ram = newRAMLevel(m, cfg.MemLat)
	c.l2 = newCache(cfg.L2, c.ram)
	c.l1i = newCache(cfg.L1I, c.l2)
	c.l1d = newCache(cfg.L1D, c.l2)
	c.bp = newBranchPred(&cfg)
	c.Bus.Reader = (*dmaSnooper)(c)

	c.prf = make([]uint64, cfg.PhysRegs)
	c.prfReady = make([]bool, cfg.PhysRegs)
	c.prfTaint = make([]bool, cfg.PhysRegs)
	n := c.IS.NumRegs()
	for i := 0; i < n; i++ {
		c.retRAT[i] = i
		c.frontRAT[i] = i
		c.prfReady[i] = true
	}
	for p := n; p < cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, p)
	}
	c.rob = make([]robe, cfg.ROBSize)
	c.lq = make([]lsqEntry, cfg.LQSize)
	c.sq = make([]lsqEntry, cfg.SQSize)
	c.ring = make([][]ringEnt, ringSize)
	return c
}

// dmaSnooper implements dev.DMAReader over the cache hierarchy so the
// device observes cached (possibly fault-corrupted) data: the ESC path.
type dmaSnooper Core

func (d *dmaSnooper) DMARead(addr uint64) (byte, bool) {
	c := (*Core)(d)
	if b, t, hit := c.l1d.snoop(addr); hit {
		c.dmaTaint(t)
		return b, true
	}
	if b, t, hit := c.l2.snoop(addr); hit {
		c.dmaTaint(t)
		return b, true
	}
	b, ok := c.Bus.Mem.Byte(addr)
	if ok {
		c.dmaTaint(c.ram.taints[addr])
	}
	return b, ok
}

func (d *dmaSnooper) DMAReadNotify(uint64) {}

func (c *Core) dmaTaint(t taintMask) {
	if t != 0 {
		c.Taint.record(c.Cycle, FPMESC)
	}
}

// --- helpers ---

func (c *Core) freePhys(p int) {
	c.freeList = append(c.freeList, p)
}

func (c *Core) allocPhys() (int, bool) {
	if len(c.freeList) == 0 {
		return -1, false
	}
	p := c.freeList[len(c.freeList)-1]
	c.freeList = c.freeList[:len(c.freeList)-1]
	return p, true
}

func (c *Core) writePhys(p int, v uint64, tainted bool) {
	c.prf[p] = v & c.IS.Mask()
	c.prfReady[p] = true
	c.prfTaint[p] = tainted
}

// Step advances the machine one cycle. It returns false once halted.
func (c *Core) Step() bool {
	if c.Bus.Halted() {
		return false
	}
	c.commitStage()
	if c.Bus.Halted() {
		return false
	}
	c.completeStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.Cycle++
	return true
}

// Run executes until halt or the cycle bound, returning true on halt.
func (c *Core) Run(maxCycles uint64) bool {
	for c.Cycle < maxCycles {
		if !c.Step() {
			return true
		}
	}
	return c.Bus.Halted()
}

// --- fetch ---

func (c *Core) fetchStage() {
	if c.fetchStall || len(c.fq) >= 4*c.Cfg.FetchWidth {
		return
	}
	for i := 0; i < c.Cfg.FetchWidth; i++ {
		pc := c.fetchPC
		fe := fetchEntry{pc: pc, ready: c.Cycle + uint64(c.Cfg.FrontLatency)}
		if pc%4 != 0 || !c.Bus.Mem.Valid(pc, 4) || mem.IsMMIO(pc) {
			fe.fetchExc = true
			if pc%4 != 0 {
				fe.excCause = isa.CauseMisalignFetch
			} else {
				fe.excCause = isa.CauseFetchFault
			}
			c.fq = append(c.fq, fe)
			c.fetchStall = true
			return
		}
		val, taint, lat := c.l1i.read(pc, 4)
		fe.word = uint32(val)
		if lat > c.Cfg.L1I.HitLat {
			fe.ready += uint64(lat - c.Cfg.L1I.HitLat)
		}
		if taint != 0 {
			fe.fetchTaint = true
			tb := c.l1i.readTaintWord(pc &^ 3)
			wordMask := uint32(tb[0]) | uint32(tb[1])<<8 | uint32(tb[2])<<16 | uint32(tb[3])<<24
			opMask := isa.OperationMask(fe.word, c.IS)
			fe.fetchWI = wordMask&opMask != 0 || wordMask == 0xFFFFFFFF
		}
		in, ok := c.decode(pc, fe.word)
		fe.in, fe.ok = in, ok
		fe.npc = pc + 4
		if ok {
			switch {
			case in.Op == isa.JAL:
				fe.npc = (pc + uint64(in.Imm)) & c.IS.Mask()
				if in.Rd == isa.RegRA {
					c.bp.rasPush(pc + 4)
				}
			case in.Op == isa.JALR:
				if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
					fe.npc = c.bp.rasPop()
				} else if t, hit := c.bp.btbLookup(pc); hit {
					fe.npc = t
				}
			case in.Op.IsBranch():
				if c.bp.predictTaken(pc) {
					fe.npc = (pc + uint64(in.Imm)) & c.IS.Mask()
				}
			}
		}
		c.fq = append(c.fq, fe)
		c.fetchPC = fe.npc
		if fe.npc != pc+4 {
			break // redirected: next packet starts at the target
		}
		if lat > c.Cfg.L1I.HitLat {
			break // i-miss ends the fetch packet
		}
	}
}

// --- dispatch (rename + allocate) ---

func (c *Core) dispatchStage() {
	width := c.Cfg.IssueWidth
	for n := 0; n < width && len(c.fq) > 0; n++ {
		fe := c.fq[0]
		if fe.ready > c.Cycle || c.robCount == c.Cfg.ROBSize {
			return
		}
		idx := c.robTail
		e := &c.rob[idx]
		*e = robe{valid: true, seq: c.seq, pc: fe.pc, npc: fe.npc, mode: c.mode,
			archRd: -1, newPhys: -1, oldPhys: -1, src1: -1, src2: -1, lsq: -1}
		e.fetchTaint = fe.fetchTaint
		e.fetchWI = fe.fetchWI

		switch {
		case fe.fetchExc:
			e.hasExc, e.excCause, e.excVal = true, fe.excCause, fe.pc
		case !fe.ok:
			e.hasExc, e.excCause, e.excVal = true, isa.CauseIllegal, uint64(fe.word)
		default:
			in := fe.in
			e.in = in
			e.isLoad = in.Op.IsLoad()
			e.isStore = in.Op.IsStore()
			e.isCtl = in.Op.IsBranch() || in.Op.IsJump()
			e.serialize = in.Op == isa.ECALL || in.Op == isa.ERET ||
				in.Op == isa.CSRW || in.Op == isa.CSRR
			if in.Op.ReadsRs1() {
				e.src1 = c.frontRAT[in.Rs1]
			}
			if in.Op.ReadsRs2() {
				e.src2 = c.frontRAT[in.Rs2]
			}
			if in.Op.WritesRd() && in.Rd != isa.RegZero {
				p, ok := c.allocPhys()
				if !ok {
					e.valid = false
					return // no physical register: retry next cycle
				}
				e.archRd = in.Rd
				e.newPhys = p
				e.oldPhys = c.frontRAT[in.Rd]
				c.prfReady[p] = false
				c.frontRAT[in.Rd] = p
			}
			if e.isLoad {
				if c.lqN == c.Cfg.LQSize {
					c.undoRename(e)
					return
				}
				e.lsq = c.lqT
				le := &c.lq[c.lqT]
				*le = lsqEntry{valid: true, seq: e.seq, rob: idx, size: in.Op.MemBytes()}
				c.lqT = (c.lqT + 1) % c.Cfg.LQSize
				c.lqN++
			}
			if e.isStore {
				if c.sqN == c.Cfg.SQSize {
					c.undoRename(e)
					return
				}
				e.lsq = c.sqT
				se := &c.sq[c.sqT]
				*se = lsqEntry{valid: true, seq: e.seq, rob: idx, isStore: true, size: in.Op.MemBytes()}
				c.sqT = (c.sqT + 1) % c.Cfg.SQSize
				c.sqN++
			}
			if len(c.iq) < c.Cfg.IQSize {
				c.iq = append(c.iq, idx)
			} else {
				c.undoLSQ(e)
				c.undoRename(e)
				return
			}
		}

		c.seq++
		c.robTail = (c.robTail + 1) % c.Cfg.ROBSize
		c.robCount++
		c.fq = c.fq[1:]
	}
}

func (c *Core) undoRename(e *robe) {
	if e.newPhys >= 0 {
		c.frontRAT[e.archRd] = e.oldPhys
		c.freePhys(e.newPhys)
		e.newPhys = -1
	}
	e.valid = false
}

func (c *Core) undoLSQ(e *robe) {
	if e.isLoad && e.lsq >= 0 {
		c.lqT = (c.lqT - 1 + c.Cfg.LQSize) % c.Cfg.LQSize
		c.lq[c.lqT].valid = false
		c.lqN--
	}
	if e.isStore && e.lsq >= 0 {
		c.sqT = (c.sqT - 1 + c.Cfg.SQSize) % c.Cfg.SQSize
		c.sq[c.sqT].valid = false
		c.sqN--
	}
	e.lsq = -1
}

// --- issue & execute ---

func opLatency(cfg *Config, op isa.Op) int {
	switch op {
	case isa.MUL:
		return cfg.MulLat
	case isa.DIV, isa.DIVU, isa.REM, isa.REMU:
		return cfg.DivLat
	default:
		return 1
	}
}

func (c *Core) srcVal(p int) (uint64, bool) {
	if p < 0 {
		return 0, false
	}
	return c.prf[p], c.prfTaint[p]
}

func (c *Core) issueStage() {
	issued := 0
	memIssued := 0
	for qi := 0; qi < len(c.iq) && issued < c.Cfg.IssueWidth; qi++ {
		idx := c.iq[qi]
		e := &c.rob[idx]
		if !e.valid || e.issued {
			c.iq = append(c.iq[:qi], c.iq[qi+1:]...)
			qi--
			continue
		}
		if e.src1 >= 0 && !c.prfReady[e.src1] {
			continue
		}
		if e.src2 >= 0 && !c.prfReady[e.src2] {
			continue
		}
		if e.serialize {
			if idx != c.robHead {
				continue
			}
			c.executeSerialize(idx, e)
			issued++
			c.iq = append(c.iq[:qi], c.iq[qi+1:]...)
			qi--
			continue
		}
		if e.isLoad || e.isStore {
			if memIssued >= c.Cfg.MemPorts {
				continue
			}
			ok := c.executeMem(idx, e)
			if !ok {
				continue // blocked on older stores or MMIO ordering
			}
			memIssued++
			issued++
			c.iq = append(c.iq[:qi], c.iq[qi+1:]...)
			qi--
			continue
		}
		c.executeALU(idx, e)
		issued++
		c.iq = append(c.iq[:qi], c.iq[qi+1:]...)
		qi--
		if e.isCtl && c.resolveBranch(idx, e) {
			return // squash invalidated the queue
		}
	}
}

func (c *Core) schedule(idx int, lat int) {
	e := &c.rob[idx]
	e.issued = true
	e.inFlight = true
	e.doneCycle = c.Cycle + uint64(lat)
	c.ring[e.doneCycle%ringSize] = append(c.ring[e.doneCycle%ringSize], ringEnt{idx, e.seq})
}

// executeALU computes non-memory operations.
func (c *Core) executeALU(idx int, e *robe) {
	in := e.in
	a, t1 := c.srcVal(e.src1)
	b, t2 := c.srcVal(e.src2)
	e.tainted = e.tainted || t1 || t2
	sx := c.IS.SignExtend
	mask := c.IS.Mask()
	var r uint64
	switch in.Op {
	case isa.ADD:
		r = a + b
	case isa.SUB:
		r = a - b
	case isa.SLL:
		r = a << (b & uint64(c.IS.XLen()-1))
	case isa.SLT:
		r = bo(int64(sx(a)) < int64(sx(b)))
	case isa.SLTU:
		r = bo(a < b)
	case isa.XOR:
		r = a ^ b
	case isa.SRL:
		r = a >> (b & uint64(c.IS.XLen()-1))
	case isa.SRA:
		r = uint64(int64(sx(a)) >> (b & uint64(c.IS.XLen()-1)))
	case isa.OR:
		r = a | b
	case isa.AND:
		r = a & b
	case isa.MUL:
		r = a * b
	case isa.DIV:
		r = divS64(sx(a), sx(b))
	case isa.DIVU:
		r = divU64(a, b, mask)
	case isa.REM:
		r = remS64(sx(a), sx(b))
	case isa.REMU:
		r = remU64(a, b)
	case isa.ADDI:
		r = a + uint64(in.Imm)
	case isa.SLLI:
		r = a << uint64(in.Imm)
	case isa.SLTI:
		r = bo(int64(sx(a)) < in.Imm)
	case isa.SLTIU:
		r = bo(a < uint64(in.Imm)&mask)
	case isa.XORI:
		r = a ^ uint64(in.Imm)
	case isa.SRLI:
		r = a >> uint64(in.Imm)
	case isa.SRAI:
		r = uint64(int64(sx(a)) >> uint64(in.Imm))
	case isa.ORI:
		r = a | uint64(in.Imm)
	case isa.ANDI:
		r = a & uint64(in.Imm)
	case isa.LUI:
		r = uint64(in.Imm)
	case isa.JAL, isa.JALR:
		r = e.pc + 4
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		r = 0
	default:
		r = 0
	}
	e.result = r & mask

	// Control flow: compute the actual next PC.
	switch {
	case in.Op.IsBranch():
		if emuBranch(in.Op, sx(a), sx(b)) {
			e.actualNext = (e.pc + uint64(in.Imm)) & mask
		} else {
			e.actualNext = e.pc + 4
		}
		c.bp.updateTaken(e.pc, e.actualNext != e.pc+4)
	case in.Op == isa.JAL:
		e.actualNext = (e.pc + uint64(in.Imm)) & mask
	case in.Op == isa.JALR:
		e.actualNext = (a + uint64(in.Imm)) & mask
		c.bp.btbInsert(e.pc, e.actualNext)
	}

	c.schedule(idx, opLatency(&c.Cfg, in.Op))
}

// resolveBranch squashes on a mispredict; reports whether it squashed.
func (c *Core) resolveBranch(idx int, e *robe) bool {
	if e.actualNext == e.npc {
		return false
	}
	c.squashAfter(idx, e.actualNext)
	return true
}

// executeMem handles load/store issue; returns false when blocked.
func (c *Core) executeMem(idx int, e *robe) bool {
	in := e.in
	a, t1 := c.srcVal(e.src1)
	addr := (a + uint64(in.Imm)) & c.IS.Mask()
	size := in.Op.MemBytes()

	if e.isStore {
		se := &c.sq[e.lsq]
		d, t2 := c.srcVal(e.src2)
		se.addr, se.addrOK = addr, true
		se.data, se.dataOK = d, true
		se.dataSrcTaint = t2
		e.tainted = e.tainted || t1 || t2
		e.storeDataT = t2
		// Validity checks: raise at commit.
		if mem.IsMMIO(addr) {
			if e.mode != isa.Kernel {
				e.hasExc, e.excCause, e.excVal = true, isa.CausePrivilege, addr
			}
		} else if addr%uint64(size) != 0 {
			e.hasExc, e.excCause, e.excVal = true, isa.CauseMisalignStore, addr
		} else if !c.Bus.Mem.Valid(addr, size) {
			e.hasExc, e.excCause, e.excVal = true, isa.CauseStoreFault, addr
		}
		c.schedule(idx, 1)
		return true
	}

	// Load: record the address in the LQ (injectable state).
	le := &c.lq[e.lsq]
	if !le.addrOK {
		le.addr, le.addrOK = addr, true
	}
	eff := le.addr // possibly corrupted by an injected LQ address flip
	e.tainted = e.tainted || t1
	if le.addrTaint {
		e.lsqAddrT = true
	}

	if mem.IsMMIO(eff) {
		if e.mode != isa.Kernel {
			e.hasExc, e.excCause, e.excVal = true, isa.CausePrivilege, eff
			c.schedule(idx, 1)
			return true
		}
		// Device loads are performed non-speculatively at the head.
		if idx != c.robHead {
			return false
		}
		v, ok := c.Bus.Load(eff, size)
		if !ok {
			e.hasExc, e.excCause, e.excVal = true, isa.CauseLoadFault, eff
		}
		e.result = v
		c.schedule(idx, 2)
		return true
	}
	if eff%uint64(size) != 0 {
		e.hasExc, e.excCause, e.excVal = true, isa.CauseMisalignLoad, eff
		c.schedule(idx, 1)
		return true
	}
	if !c.Bus.Mem.Valid(eff, size) {
		e.hasExc, e.excCause, e.excVal = true, isa.CauseLoadFault, eff
		c.schedule(idx, 1)
		return true
	}

	// Memory ordering: all older stores must have known addresses; an
	// overlapping older store either forwards (exact match) or blocks.
	var fwd *lsqEntry
	for i, n := c.sqH, c.sqN; n > 0; i, n = (i+1)%c.Cfg.SQSize, n-1 {
		se := &c.sq[i]
		if !se.valid || se.seq >= e.seq {
			continue
		}
		if !se.addrOK {
			return false
		}
		if rangesOverlap(se.addr, se.size, eff, size) {
			if se.addr == eff && se.size >= size && se.dataOK {
				fwd = se
			} else {
				return false // partial overlap: wait for the store
			}
		}
	}

	var val uint64
	var lat int
	var tainted bool
	if fwd != nil {
		val = fwd.data
		lat = 1
		tainted = fwd.dataSrcTaint || fwd.dataTaint
	} else {
		v, tm, l := c.l1d.read(eff, size)
		val, lat = v, l
		tainted = tm != 0
	}
	if !in.Op.MemUnsigned() {
		shift := uint(64 - 8*size)
		val = uint64(int64(val<<shift)>>shift) & c.IS.Mask()
	}
	e.result = val
	e.tainted = e.tainted || tainted
	c.schedule(idx, lat)
	return true
}

func rangesOverlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// executeSerialize runs head-only instructions (CSR, ECALL, ERET).
func (c *Core) executeSerialize(idx int, e *robe) {
	switch e.in.Op {
	case isa.CSRR:
		if e.mode != isa.Kernel {
			e.hasExc, e.excCause = true, isa.CausePrivilege
		} else {
			e.result = c.csr[e.in.Imm] & c.IS.Mask()
		}
	case isa.CSRW:
		if e.mode != isa.Kernel {
			e.hasExc, e.excCause = true, isa.CausePrivilege
		}
		a, t := c.srcVal(e.src1)
		e.result = a
		e.tainted = e.tainted || t
	case isa.ERET:
		if e.mode != isa.Kernel {
			e.hasExc, e.excCause = true, isa.CausePrivilege
		}
	}
	c.schedule(idx, 1)
}

// --- completion / writeback ---

func (c *Core) completeStage() {
	bucket := c.ring[c.Cycle%ringSize]
	if len(bucket) == 0 {
		return
	}
	c.ring[c.Cycle%ringSize] = nil
	for _, re := range bucket {
		e := &c.rob[re.idx]
		if !e.valid || e.seq != re.seq || !e.inFlight || e.doneCycle != c.Cycle {
			continue // stale (squashed, possibly with the slot reused)
		}
		e.inFlight = false
		e.executed = true
		if e.newPhys >= 0 {
			c.writePhys(e.newPhys, e.result, e.tainted)
		}
	}
}

// --- commit ---

func (c *Core) commitStage() {
	for n := 0; n < c.Cfg.CommitWidth && c.robCount > 0; n++ {
		idx := c.robHead
		e := &c.rob[idx]
		if !e.valid {
			return
		}
		if e.hasExc {
			c.recordContactFor(e)
			c.raiseTrap(e)
			return
		}
		if !e.executed {
			return
		}

		// Architectural effects.
		switch {
		case e.isStore:
			se := &c.sq[e.lsq]
			addr, data := se.addr, se.data
			if se.addrTaint {
				e.lsqAddrT = true
			}
			if se.dataTaint {
				e.lsqDataT = true
			}
			tainted := se.dataSrcTaint || se.dataTaint
			if mem.IsMMIO(addr) {
				if e.mode != isa.Kernel {
					e.hasExc, e.excCause, e.excVal = true, isa.CausePrivilege, addr
					c.recordContactFor(e)
					c.raiseTrap(e)
					return
				}
				c.Bus.Store(addr, se.size, data)
				if c.Bus.Halted() {
					// The halting store still retires (the reference
					// model counts it).
					c.recordContactFor(e)
					c.Instret++
					if e.mode == isa.Kernel {
						c.KInstr++
					}
					if c.OnCommit != nil {
						c.OnCommit(e.pc, e.in, e.mode)
					}
					return
				}
			} else if addr%uint64(se.size) != 0 || !c.Bus.Mem.Valid(addr, se.size) {
				// The injected address corruption surfaced at commit.
				e.hasExc = true
				if addr%uint64(se.size) != 0 {
					e.excCause = isa.CauseMisalignStore
				} else {
					e.excCause = isa.CauseStoreFault
				}
				e.excVal = addr
				c.recordContactFor(e)
				c.raiseTrap(e)
				return
			} else {
				c.l1d.write(addr, se.size, data, tainted)
			}
			c.sqH = (c.sqH + 1) % c.Cfg.SQSize
			se.valid = false
			c.sqN--
			e.lsq = -1
		case e.isLoad:
			le := &c.lq[e.lsq]
			c.lqH = (c.lqH + 1) % c.Cfg.LQSize
			le.valid = false
			c.lqN--
			e.lsq = -1
		case e.in.Op == isa.CSRW:
			c.csr[e.in.Imm] = e.result
		}

		if e.archRd >= 0 {
			old := c.retRAT[e.archRd]
			c.retRAT[e.archRd] = e.newPhys
			if old != e.newPhys {
				c.freePhys(old)
			}
		}

		c.recordContactFor(e)
		c.Instret++
		if e.mode == isa.Kernel {
			c.KInstr++
		}
		if c.OnCommit != nil {
			c.OnCommit(e.pc, e.in, e.mode)
		}

		// Post-commit redirects for traps and ERET.
		switch e.in.Op {
		case isa.ECALL:
			e.hasExc, e.excCause, e.excVal = true, isa.CauseSyscall, 0
			c.raiseTrap(e)
			return
		case isa.ERET:
			c.mode = isa.User
			c.flushPipeline(c.csr[isa.CsrSEPC])
			return
		}

		c.robHead = (c.robHead + 1) % c.Cfg.ROBSize
		e.valid = false
		c.robCount--
	}
}

// recordContactFor translates an entry's taint flags into the first
// architectural contact, in paper FPM terms.
func (c *Core) recordContactFor(e *robe) {
	if !c.Taint.active || c.Taint.contact {
		return
	}
	switch {
	case e.fetchTaint && e.fetchWI:
		c.Taint.record(c.Cycle, FPMWI)
	case e.fetchTaint:
		c.Taint.record(c.Cycle, FPMWOI)
	case e.lsqAddrT:
		c.Taint.record(c.Cycle, FPMWOI)
	case e.lsqDataT:
		c.Taint.record(c.Cycle, FPMWD)
	case e.tainted:
		c.Taint.record(c.Cycle, FPMWD)
	}
}

// raiseTrap redirects to the kernel trap vector. A trap taken from
// kernel mode (including ECALL) is a double fault: the machine halts
// with a panic, matching the reference emulator.
func (c *Core) raiseTrap(e *robe) {
	if e.mode == isa.Kernel {
		c.Bus.Halt = dev.HaltPanic
		c.Bus.PanicCode = e.excCause
		return
	}
	c.csr[isa.CsrSEPC] = e.pc
	c.csr[isa.CsrSCAUSE] = e.excCause
	c.csr[isa.CsrSTVAL] = e.excVal
	c.mode = isa.Kernel
	c.flushPipeline(c.csr[isa.CsrTVEC])
}

// flushPipeline squashes everything and restarts fetch at pc.
func (c *Core) flushPipeline(pc uint64) {
	for c.robCount > 0 {
		t := (c.robTail - 1 + c.Cfg.ROBSize) % c.Cfg.ROBSize
		c.rollbackEntry(&c.rob[t])
		c.rob[t].valid = false
		c.robTail = t
		c.robCount--
	}
	c.iq = c.iq[:0]
	c.fq = c.fq[:0]
	c.fetchPC = pc
	c.fetchStall = false
	// ERET/trap entry consumed the head entry as well.
}

// squashAfter removes every entry younger than idx and redirects fetch.
func (c *Core) squashAfter(idx int, target uint64) {
	seq := c.rob[idx].seq
	for c.robCount > 0 {
		t := (c.robTail - 1 + c.Cfg.ROBSize) % c.Cfg.ROBSize
		if c.rob[t].seq <= seq && c.rob[t].valid {
			break
		}
		c.rollbackEntry(&c.rob[t])
		c.rob[t].valid = false
		c.robTail = t
		c.robCount--
	}
	// Drop squashed entries from the issue queue.
	kept := c.iq[:0]
	for _, qi := range c.iq {
		if c.rob[qi].valid && c.rob[qi].seq <= seq {
			kept = append(kept, qi)
		}
	}
	c.iq = kept
	c.fq = c.fq[:0]
	c.fetchPC = target
	c.fetchStall = false
}

// rollbackEntry undoes rename and queue allocation of a squashed entry.
func (c *Core) rollbackEntry(e *robe) {
	if !e.valid {
		return
	}
	if e.newPhys >= 0 {
		c.frontRAT[e.archRd] = e.oldPhys
		c.freePhys(e.newPhys)
	}
	if e.isLoad && e.lsq >= 0 {
		c.lqT = (c.lqT - 1 + c.Cfg.LQSize) % c.Cfg.LQSize
		c.lq[c.lqT].valid = false
		c.lqN--
	}
	if e.isStore && e.lsq >= 0 {
		c.sqT = (c.sqT - 1 + c.Cfg.SQSize) % c.Cfg.SQSize
		c.sq[c.sqT].valid = false
		c.sqN--
	}
	e.inFlight = false
}

// --- architectural inspection (for lockstep checking) ---

// ArchReg returns the committed architectural value of register r.
func (c *Core) ArchReg(r int) uint64 {
	if r == 0 {
		return 0
	}
	return c.prf[c.retRAT[r]]
}

// Mode returns the current privilege mode at retirement.
func (c *Core) Mode() isa.Mode { return c.mode }

// CSR returns a control register value.
func (c *Core) CSR(i int) uint64 { return c.csr[i] }

// FlushCaches writes all dirty lines back to RAM (test helper for
// comparing final memory images against the reference emulator).
func (c *Core) FlushCaches() {
	c.l1d.flushAll()
	c.l1i.flushAll()
	c.l2.flushAll()
}

// --- small helpers (duplicated from emu to keep packages decoupled) ---

func bo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func emuBranch(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	return false
}

func divS64(a, b uint64) uint64 {
	ia, ib := int64(a), int64(b)
	switch {
	case ib == 0:
		return ^uint64(0)
	case ia == -1<<63 && ib == -1:
		return a
	default:
		return uint64(ia / ib)
	}
}

func divU64(a, b, mask uint64) uint64 {
	if b == 0 {
		return mask
	}
	return a / b
}

func remS64(a, b uint64) uint64 {
	ia, ib := int64(a), int64(b)
	switch {
	case ib == 0:
		return a
	case ia == -1<<63 && ib == -1:
		return 0
	default:
		return uint64(ia % ib)
	}
}

func remU64(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

// String summarizes machine state (debug aid).
func (c *Core) String() string {
	return fmt.Sprintf("cycle=%d instret=%d pc=%#x rob=%d iq=%d lq=%d sq=%d mode=%v",
		c.Cycle, c.Instret, c.fetchPC, c.robCount, len(c.iq), c.lqN, c.sqN, c.mode)
}
