// Package micro implements the microarchitectural (GeFIN-analog) model:
// a cycle-driven out-of-order core with a real physical register file,
// load/store queues and a two-level writeback cache hierarchy, all of
// whose bits exist and can be flipped. It is the substrate for the
// paper's AVF and HVF measurements.
package micro

import (
	"fmt"
	"math/bits"

	"vulnstack/internal/isa"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	HitLat    int // access latency in cycles
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Lines returns the number of lines.
func (c CacheConfig) Lines() int { return c.SizeBytes / c.LineBytes }

// TagBits returns tag width assuming 32-bit physical addresses.
func (c CacheConfig) TagBits() int {
	return 32 - bits.TrailingZeros32(uint32(c.Sets())) - bits.TrailingZeros32(uint32(c.LineBytes))
}

// BitsPerLine counts injectable bits per line: tag + data + valid + dirty.
func (c CacheConfig) BitsPerLine() int { return c.TagBits() + 8*c.LineBytes + 2 }

// Bits counts the total injectable bits of the cache.
func (c CacheConfig) Bits() int { return c.Lines() * c.BitsPerLine() }

// Config describes one microarchitecture model.
type Config struct {
	Name string
	ISA  isa.ISA

	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	// FrontLatency is the fetch-to-dispatch depth in cycles (pipeline
	// front-end stages).
	FrontLatency int

	ROBSize  int
	IQSize   int
	LQSize   int
	SQSize   int
	PhysRegs int

	MemPorts int
	MulLat   int
	DivLat   int

	BTBSize int // entries, power of two
	BPSize  int // bimodal counters, power of two
	RASSize int

	L1I, L1D, L2 CacheConfig
	MemLat       int

	// NoDecodeCache disables the predecoded fetch cache (the per-PC
	// isa.Decode memo). The zero value keeps it enabled; the cache is
	// behaviour-transparent (keyed on the fetched word, so corrupted or
	// self-modified words re-decode) and exists purely for speed.
	NoDecodeCache bool
}

// The four study microarchitectures. Parameters follow the paper's
// Table II where given (L2 sizes 512K/1M/1M/2M, ROB 40/60/128/128) and
// public Arm documentation for the rest. A9/A15 implement VSA32 (the
// Armv7 stand-in), A57/A72 implement VSA64 (Armv8).

// ConfigA9 models a Cortex-A9-like 2-wide OoO core.
func ConfigA9() Config {
	return Config{
		Name: "A9", ISA: isa.VSA32,
		FetchWidth: 2, IssueWidth: 2, CommitWidth: 2, FrontLatency: 8,
		ROBSize: 40, IQSize: 20, LQSize: 8, SQSize: 8, PhysRegs: 56,
		MemPorts: 1, MulLat: 4, DivLat: 19,
		BTBSize: 512, BPSize: 1024, RASSize: 8,
		L1I:    CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 4, HitLat: 1},
		L1D:    CacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 4, HitLat: 2},
		L2:     CacheConfig{SizeBytes: 512 << 10, LineBytes: 32, Assoc: 8, HitLat: 8},
		MemLat: 60,
	}
}

// ConfigA15 models a Cortex-A15-like 3-wide OoO core.
func ConfigA15() Config {
	return Config{
		Name: "A15", ISA: isa.VSA32,
		FetchWidth: 3, IssueWidth: 3, CommitWidth: 3, FrontLatency: 12,
		ROBSize: 60, IQSize: 40, LQSize: 16, SQSize: 16, PhysRegs: 90,
		MemPorts: 1, MulLat: 4, DivLat: 12,
		BTBSize: 2048, BPSize: 4096, RASSize: 16,
		L1I:    CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, HitLat: 1},
		L1D:    CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, HitLat: 3},
		L2:     CacheConfig{SizeBytes: 1 << 20, LineBytes: 64, Assoc: 16, HitLat: 12},
		MemLat: 80,
	}
}

// ConfigA57 models a Cortex-A57-like 3-wide OoO core.
func ConfigA57() Config {
	return Config{
		Name: "A57", ISA: isa.VSA64,
		FetchWidth: 3, IssueWidth: 3, CommitWidth: 3, FrontLatency: 13,
		ROBSize: 128, IQSize: 44, LQSize: 16, SQSize: 16, PhysRegs: 128,
		MemPorts: 2, MulLat: 3, DivLat: 18,
		BTBSize: 2048, BPSize: 8192, RASSize: 16,
		L1I:    CacheConfig{SizeBytes: 48 << 10, LineBytes: 64, Assoc: 3, HitLat: 1},
		L1D:    CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, HitLat: 3},
		L2:     CacheConfig{SizeBytes: 1 << 20, LineBytes: 64, Assoc: 16, HitLat: 14},
		MemLat: 90,
	}
}

// ConfigA72 models a Cortex-A72-like 3-wide OoO core.
func ConfigA72() Config {
	return Config{
		Name: "A72", ISA: isa.VSA64,
		FetchWidth: 3, IssueWidth: 3, CommitWidth: 3, FrontLatency: 13,
		ROBSize: 128, IQSize: 64, LQSize: 16, SQSize: 16, PhysRegs: 128,
		MemPorts: 2, MulLat: 3, DivLat: 12,
		BTBSize: 4096, BPSize: 8192, RASSize: 32,
		L1I:    CacheConfig{SizeBytes: 48 << 10, LineBytes: 64, Assoc: 3, HitLat: 1},
		L1D:    CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, HitLat: 3},
		L2:     CacheConfig{SizeBytes: 2 << 20, LineBytes: 64, Assoc: 16, HitLat: 16},
		MemLat: 90,
	}
}

// Configs returns the four study microarchitectures in paper order.
func Configs() []Config {
	return []Config{ConfigA9(), ConfigA15(), ConfigA57(), ConfigA72()}
}

// ConfigByName looks up a study configuration.
func ConfigByName(name string) (Config, error) {
	for _, c := range Configs() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("micro: unknown config %q (have A9, A15, A57, A72)", name)
}

// Structure identifies an injectable hardware structure, matching the
// five the paper studies.
type Structure int

const (
	StructRF Structure = iota // integer physical register file
	StructLSQ
	StructL1I
	StructL1D
	StructL2
	NumStructures
)

var structNames = [...]string{"RF", "LSQ", "L1i", "L1d", "L2"}

func (s Structure) String() string { return structNames[s] }

// ParseStructure resolves a structure name.
func ParseStructure(name string) (Structure, error) {
	for i, n := range structNames {
		if n == name {
			return Structure(i), nil
		}
	}
	return 0, fmt.Errorf("micro: unknown structure %q", name)
}

// Bits returns the injectable bit count of structure s under cfg
// (the AVF weighting factor: larger structures carry more FIT weight).
func (cfg *Config) Bits(s Structure) int {
	x := cfg.ISA.XLen()
	switch s {
	case StructRF:
		return cfg.PhysRegs * x
	case StructLSQ:
		// Each entry holds an address and a data word.
		return (cfg.LQSize + cfg.SQSize) * 2 * x
	case StructL1I:
		return cfg.L1I.Bits()
	case StructL1D:
		return cfg.L1D.Bits()
	case StructL2:
		return cfg.L2.Bits()
	}
	return 0
}

// TotalBits sums the injectable bits of all five structures.
func (cfg *Config) TotalBits() int {
	t := 0
	for s := Structure(0); s < NumStructures; s++ {
		t += cfg.Bits(s)
	}
	return t
}
