package micro

import (
	"bytes"
	"slices"
)

// StateEqual reports whether two cores are bit-identical in every field
// that can influence future execution. It is the convergence test of
// the early-stop engine (internal/inject): a faulty core that is
// StateEqual to the golden snapshot taken at the same cycle — with RAM
// equality established separately via dirty-page comparison — must
// produce exactly the golden outcome, because Step is a deterministic
// function of this state.
//
// Deliberately excluded:
//   - RAM contents (Bus.Mem): the caller compares only the pages the
//     two runs dirtied differently, using mem dirty tracking.
//   - Taint bookkeeping (c.Taint): measurement state, not machine
//     state. Taint *in storage* is NOT excluded — prfTaint, ROB/LSQ
//     taint flags, cache taint bytes and RAM taint maps are all
//     compared, so equality implies no corrupted value is still live
//     anywhere. A contact already recorded before convergence keeps
//     its HVF/FPM outcome, exactly as in a run to completion.
//   - The decode memo and OnCommit hook: derived/observer state.
func (c *Core) StateEqual(o *Core) bool {
	// Cheap scalar state first: almost every non-converged boundary
	// exits here.
	if c.Cycle != o.Cycle || c.Instret != o.Instret || c.KInstr != o.KInstr ||
		c.seq != o.seq || c.mode != o.mode ||
		c.fetchPC != o.fetchPC || c.fetchStall != o.fetchStall {
		return false
	}
	if c.robHead != o.robHead || c.robTail != o.robTail || c.robCount != o.robCount ||
		c.lqH != o.lqH || c.lqT != o.lqT || c.lqN != o.lqN ||
		c.sqH != o.sqH || c.sqT != o.sqT || c.sqN != o.sqN {
		return false
	}
	if c.csr != o.csr || c.retRAT != o.retRAT || c.frontRAT != o.frontRAT {
		return false
	}
	if !slices.Equal(c.prf, o.prf) || !slices.Equal(c.prfReady, o.prfReady) ||
		!slices.Equal(c.prfTaint, o.prfTaint) ||
		// The free list is ordered state: allocation order shapes all
		// future renaming.
		!slices.Equal(c.freeList, o.freeList) {
		return false
	}
	// The full ROB array, stale slots included: completion-ring entries
	// guard against reuse by comparing the slot's seq, so a stale
	// slot's contents decide whether an in-flight completion lands.
	if !slices.Equal(c.rob, o.rob) || !slices.Equal(c.iq, o.iq) ||
		!slices.Equal(c.lq, o.lq) || !slices.Equal(c.sq, o.sq) ||
		!slices.Equal(c.fq, o.fq) {
		return false
	}
	for i := range c.ring {
		if !slices.Equal(c.ring[i], o.ring[i]) {
			return false
		}
	}
	if !c.bp.stateEqual(o.bp) {
		return false
	}
	if !c.l1i.stateEqual(o.l1i) || !c.l1d.stateEqual(o.l1d) || !c.l2.stateEqual(o.l2) {
		return false
	}
	if !taintsEqual(c.ram.taints, o.ram.taints) {
		return false
	}
	return c.Bus.StateEqual(o.Bus)
}

// RAMDirtyPages exposes the dirty-page list of the core's RAM (nil
// without tracking). The slice aliases tracking state; read-only.
func (c *Core) RAMDirtyPages() []uint32 { return c.Bus.Mem.DirtyPageList() }

func (bp *branchPred) stateEqual(o *branchPred) bool {
	return bp.rasTop == o.rasTop &&
		slices.Equal(bp.counters, o.counters) &&
		slices.Equal(bp.btbTag, o.btbTag) &&
		slices.Equal(bp.btbTgt, o.btbTgt) &&
		slices.Equal(bp.ras, o.ras)
}

// stateEqual compares two same-geometry cache levels: the LRU clock,
// every line's metadata, the full data backing, and the taint bytes
// (a nil taint slice is all-zero).
func (c *cache) stateEqual(o *cache) bool {
	if c.tick != o.tick {
		return false
	}
	for si := range c.sets {
		for wi := range c.sets[si] {
			a, b := &c.sets[si][wi], &o.sets[si][wi]
			if a.valid != b.valid || a.dirty != b.dirty || a.tag != b.tag || a.lru != b.lru {
				return false
			}
			if !taintSliceEqual(a.taint, b.taint) {
				return false
			}
		}
	}
	return bytes.Equal(c.backing, o.backing)
}

func taintSliceEqual(a, b []taintMask) bool {
	switch {
	case a == nil:
		a, b = b, a
		fallthrough
	case b == nil:
		for _, m := range a {
			if m != 0 {
				return false
			}
		}
		return true
	default:
		return slices.Equal(a, b)
	}
}

// taintsEqual compares two RAM taint maps, treating absent keys as
// zero (writeLine deletes cleared entries, but flip paths may leave
// explicit zeroes behind).
func taintsEqual(a, b map[uint64]taintMask) bool {
	//lint:ordered pure all-pairs comparison; no order-dependent effect
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	//lint:ordered pure all-pairs comparison; no order-dependent effect
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}
