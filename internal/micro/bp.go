package micro

// branchPred is a bimodal predictor with a direct-mapped BTB and a
// return address stack. Predictor state is not an injection target (the
// paper injects the five SRAM structures), but its behaviour shapes
// speculation depth — and therefore which wrong-path instructions read
// faulty state and get squashed.
type branchPred struct {
	counters []uint8 // 2-bit saturating
	btbTag   []uint64
	btbTgt   []uint64
	ras      []uint64
	rasTop   int
	btbMask  uint64
	bpMask   uint64
}

func newBranchPred(cfg *Config) *branchPred {
	return &branchPred{
		counters: make([]uint8, cfg.BPSize),
		btbTag:   make([]uint64, cfg.BTBSize),
		btbTgt:   make([]uint64, cfg.BTBSize),
		ras:      make([]uint64, cfg.RASSize),
		btbMask:  uint64(cfg.BTBSize - 1),
		bpMask:   uint64(cfg.BPSize - 1),
	}
}

func (bp *branchPred) predictTaken(pc uint64) bool {
	return bp.counters[(pc>>2)&bp.bpMask] >= 2
}

func (bp *branchPred) updateTaken(pc uint64, taken bool) {
	i := (pc >> 2) & bp.bpMask
	if taken {
		if bp.counters[i] < 3 {
			bp.counters[i]++
		}
	} else if bp.counters[i] > 0 {
		bp.counters[i]--
	}
}

func (bp *branchPred) btbLookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) & bp.btbMask
	if bp.btbTag[i] == pc {
		return bp.btbTgt[i], true
	}
	return 0, false
}

func (bp *branchPred) btbInsert(pc, target uint64) {
	i := (pc >> 2) & bp.btbMask
	bp.btbTag[i], bp.btbTgt[i] = pc, target
}

func (bp *branchPred) rasPush(ret uint64) {
	bp.rasTop = (bp.rasTop + 1) % len(bp.ras)
	bp.ras[bp.rasTop] = ret
}

func (bp *branchPred) rasPop() uint64 {
	v := bp.ras[bp.rasTop]
	bp.rasTop = (bp.rasTop - 1 + len(bp.ras)) % len(bp.ras)
	return v
}
