package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	r := &Report{ID: "T", Title: "demo"}
	tb := r.NewTable("numbers", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longername", "22222")
	out := r.String()
	lines := strings.Split(out, "\n")
	var header, rowA string
	for _, l := range lines {
		if strings.Contains(l, "name") && strings.Contains(l, "value") {
			header = l
		}
		if strings.HasPrefix(strings.TrimSpace(l), "a ") || strings.HasSuffix(l, " 1") {
			rowA = l
		}
	}
	if header == "" || rowA == "" {
		t.Fatalf("missing rows in\n%s", out)
	}
	// Right-aligned value column: "1" and "22222" end at the same column.
	if !strings.HasSuffix(rowA, "1") {
		t.Fatalf("row %q", rowA)
	}
	if len(rowA) != len(header) {
		t.Fatalf("misaligned: header %d chars, row %d", len(header), len(rowA))
	}
}

func TestNotesAndFormatters(t *testing.T) {
	r := &Report{ID: "X", Title: "t"}
	r.Notef("count %d", 7)
	if !strings.Contains(r.String(), "count 7") {
		t.Fatal("notes")
	}
	if Pct(0.1234) != "12.34%" {
		t.Fatalf("Pct: %s", Pct(0.1234))
	}
	if F(1.5) != "1.500" {
		t.Fatalf("F: %s", F(1.5))
	}
}

func TestBar(t *testing.T) {
	if Bar(0, 10) != ".........." {
		t.Fatal("empty bar")
	}
	if Bar(1, 10) != "##########" {
		t.Fatal("full bar")
	}
	if Bar(0.5, 10) != "#####....." {
		t.Fatalf("half bar %q", Bar(0.5, 10))
	}
	if Bar(-1, 4) != "...." || Bar(2, 4) != "####" {
		t.Fatal("clamping")
	}
}

func TestRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow("x", "y", "z") // more cells than headers
	out := tb.String()
	if !strings.Contains(out, "z") {
		t.Fatalf("ragged row dropped: %s", out)
	}
}
