// Package report renders experiment results as aligned ASCII tables —
// the textual equivalents of the paper's figures, designed so that the
// series the paper plots appear as labelled columns and rows.
package report

import (
	"fmt"
	"strings"
)

// Table is one titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Report is a titled collection of tables with explanatory notes.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []*Table
}

// Notef appends a formatted note line.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// NewTable adds and returns a fresh table.
func (r *Report) NewTable(title string, headers ...string) *Table {
	t := &Table{Title: title, Headers: headers}
	r.Tables = append(r.Tables, t)
	return t
}

// Pct formats a fraction as a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// F formats a float cell.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	rule := strings.Repeat("=", 72)
	fmt.Fprintf(&sb, "%s\n%s — %s\n%s\n", rule, r.ID, r.Title, rule)
	for _, t := range r.Tables {
		sb.WriteString("\n")
		sb.WriteString(t.String())
	}
	if len(r.Notes) > 0 {
		sb.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "  - %s\n", n)
		}
	}
	return sb.String()
}

// String renders one table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&sb, "  %-*s", width[i], c)
			} else {
				fmt.Fprintf(&sb, "  %*s", width[i], c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	seps := make([]string, cols)
	for i := range seps {
		seps[i] = strings.Repeat("-", width[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// Bar renders v (0..1) as a proportional bar of max n characters — a
// quick visual for figure-like comparisons in terminal output.
func Bar(v float64, n int) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	k := int(v*float64(n) + 0.5)
	return strings.Repeat("#", k) + strings.Repeat(".", n-k)
}
