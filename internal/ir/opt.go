package ir

// Optimize applies conservative scalar optimizations to a module, in
// place: block-local constant folding and copy propagation, followed by
// global dead-definition elimination. The study's default pipeline
// leaves modules unoptimized (like the -O0 baselines many injection
// studies use, and so that each measured IR instruction maps to emitted
// machine code); Optimize exists for the codegen-quality ablation and
// for users who want tighter binaries.
//
// The IR is not SSA — virtual registers are mutable — so both passes
// are deliberately local:
//
//   - Within one block, a vreg's value is known constant from an
//     OpConst/folded definition until its next redefinition.
//   - A definition is dead only if its vreg is never read anywhere in
//     the function (reads include all operand positions).
func Optimize(m *Module) (changed int) {
	for _, f := range m.Funcs {
		for {
			n := foldFunc(f) + eliminateDead(m, f)
			changed += n
			if n == 0 {
				break
			}
		}
	}
	return changed
}

// foldFunc performs block-local constant folding and copy propagation.
func foldFunc(f *Func) int {
	changed := 0
	for _, b := range f.Blocks {
		known := make(map[int]int64) // vreg -> constant value
		copies := make(map[int]int)  // vreg -> source vreg (still valid)

		invalidate := func(def int) {
			delete(known, def)
			delete(copies, def)
			// Any copy whose source was redefined is stale.
			//lint:ordered deletes every matching entry; the surviving set is order-independent
			for d, s := range copies {
				if s == def {
					delete(copies, d)
				}
			}
		}
		resolve := func(v int) int {
			if s, ok := copies[v]; ok {
				return s
			}
			return v
		}

		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Propagate copies into operand positions first.
			switch in.Op {
			case OpBin:
				in.A, in.B = resolve(in.A), resolve(in.B)
			case OpCopy, OpRet, OpCondBr:
				if in.A >= 0 {
					in.A = resolve(in.A)
				}
			case OpLoad:
				in.A = resolve(in.A)
			case OpStore:
				in.A, in.B = resolve(in.A), resolve(in.B)
			case OpCall:
				for k, a := range in.Args {
					in.Args[k] = resolve(a)
				}
			case OpSyscall:
				in.A = resolve(in.A)
				for k, a := range in.Args {
					in.Args[k] = resolve(a)
				}
			}

			switch in.Op {
			case OpConst:
				invalidate(in.Dst)
				known[in.Dst] = in.Imm
			case OpCopy:
				invalidate(in.Dst)
				if v, ok := known[in.A]; ok {
					// Copy of a constant becomes a constant.
					*in = Instr{Op: OpConst, Dst: in.Dst, Imm: v}
					known[in.Dst] = v
					changed++
				} else {
					copies[in.Dst] = in.A
				}
			case OpBin:
				a, okA := known[in.A]
				bv, okB := known[in.B]
				invalidate(in.Dst)
				if okA && okB {
					if v, ok := foldBin(in.Bin, a, bv); ok {
						*in = Instr{Op: OpConst, Dst: in.Dst, Imm: v}
						known[in.Dst] = v
						changed++
					}
				}
			default:
				if in.HasDst() {
					invalidate(in.Dst)
				}
			}
		}
	}
	return changed
}

// foldBin evaluates a binary op on 64-bit constants. Width-sensitive
// results are safe because the interpreter and codegen both re-wrap
// (folding happens in 64-bit, matching the interpreter for values that
// fit; ops whose folding would differ on 32-bit targets are skipped).
func foldBin(k BinKind, a, b int64) (int64, bool) {
	// Shifts and products can differ between widths; fold only the
	// width-agnostic cases and small values.
	fits32 := func(v int64) bool { return int64(int32(v)) == v }
	switch k {
	case Add, Sub, Mul:
		var v int64
		switch k {
		case Add:
			v = a + b
		case Sub:
			v = a - b
		default:
			v = a * b
		}
		if fits32(a) && fits32(b) && fits32(v) {
			return v, true
		}
		return 0, false
	case And:
		return a & b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case Eq:
		return b2i(a == b), true
	case Ne:
		return b2i(a != b), true
	case Lt:
		return b2i(a < b), true
	case Le:
		return b2i(a <= b), true
	case Gt:
		return b2i(a > b), true
	case Ge:
		return b2i(a >= b), true
	}
	return 0, false
}

// eliminateDead removes pure definitions of vregs that are never read
// anywhere in the function.
func eliminateDead(m *Module, f *Func) int {
	read := make([]bool, f.NumVReg)
	mark := func(v int) {
		if v >= 0 && v < len(read) {
			read[v] = true
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case OpBin:
				mark(in.A)
				mark(in.B)
			case OpCopy, OpLoad:
				mark(in.A)
			case OpStore:
				mark(in.A)
				mark(in.B)
			case OpCondBr, OpRet:
				mark(in.A)
			case OpCall:
				for _, a := range in.Args {
					mark(a)
				}
			case OpSyscall:
				mark(in.A)
				for _, a := range in.Args {
					mark(a)
				}
			}
		}
	}
	removed := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			dead := false
			switch in.Op {
			case OpConst, OpCopy, OpBin, OpGlobal, OpFrame:
				dead = in.HasDst() && !read[in.Dst]
			case OpCall:
				// Calls have side effects; only drop the unused result
				// binding, never the call.
				if in.HasDst() && !read[in.Dst] {
					in.Dst = -1
					removed++
				}
			}
			if dead {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	_ = m
	return removed
}
