package ir

import "testing"

// defuseModule defines four dynamic values with known liveness:
//
//	seq 0: v0 = 7      read by the add           -> used
//	seq 1: v1 = 9      overwritten before a read -> dead
//	seq 2: v1 = 3      read by the add           -> used
//	seq 3: v2 = v0+v1  returned (read by ret)    -> used
func defuseModule() *Module {
	f := &Func{Name: "main", NumVReg: 3, HasRet: true}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: 7},
		{Op: OpConst, Dst: 1, Imm: 9},
		{Op: OpConst, Dst: 1, Imm: 3},
		{Op: OpBin, Bin: Add, Dst: 2, A: 0, B: 1},
		{Op: OpRet, Dst: -1, A: 2},
	}}}
	return &Module{Funcs: []*Func{f}}
}

func TestTrackUseMarksOnlyReadDefs(t *testing.T) {
	m := defuseModule()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m, 64, 1<<16)
	ip.TrackUse = true
	if err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	if ip.ExitCode != 10 {
		t.Fatalf("exit %d, want 10", ip.ExitCode)
	}
	want := map[uint64]bool{0: true, 1: false, 2: true, 3: true}
	for seq, w := range want {
		if got := ip.DefUsed(seq); got != w {
			t.Errorf("DefUsed(%d) = %v, want %v", seq, got, w)
		}
	}
	// Sequences past the definition stream are never used.
	if ip.DefUsed(99) || ip.DefUsed(1 << 40) {
		t.Error("out-of-range sequence reported used")
	}
}

// TestDeadDefFlipIsInvisible is the soundness base of the llfi
// dead-definition filter: corrupting a never-read definition leaves
// the execution bit-identical.
func TestDeadDefFlipIsInvisible(t *testing.T) {
	m := defuseModule()
	ip := NewInterp(m, 64, 1<<16)
	ip.Hook = func(seq uint64, in *Instr, v int64) int64 {
		if seq == 1 { // the dead definition
			return v ^ (1 << 17)
		}
		return v
	}
	if err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	if ip.ExitCode != 10 {
		t.Fatalf("dead-def flip changed the result: exit %d, want 10", ip.ExitCode)
	}
}

// TestTrackUseAcrossCalls: argument values are marked used at the call
// site, and callee-local dead definitions stay dead.
func TestTrackUseAcrossCalls(t *testing.T) {
	callee := &Func{Name: "id", NumVReg: 2, NumArgs: 1, HasRet: true}
	callee.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 1, Imm: 42}, // seq 1: dead (never read)
		{Op: OpRet, Dst: -1, A: 0},
	}}}
	main := &Func{Name: "main", NumVReg: 2, HasRet: true}
	main.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: 5},                      // seq 0: used (call arg)
		{Op: OpCall, Sym: "id", Dst: 1, Args: []int{0}},    // seq 2: used (returned)
		{Op: OpRet, Dst: -1, A: 1},
	}}}
	m := &Module{Funcs: []*Func{main, callee}}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m, 64, 1<<16)
	ip.TrackUse = true
	if err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	if ip.ExitCode != 5 {
		t.Fatalf("exit %d, want 5", ip.ExitCode)
	}
	for seq, w := range map[uint64]bool{0: true, 1: false, 2: true} {
		if got := ip.DefUsed(seq); got != w {
			t.Errorf("DefUsed(%d) = %v, want %v", seq, got, w)
		}
	}
}
