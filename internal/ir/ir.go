// Package ir defines the MiniC compiler's intermediate representation: a
// typed-width, three-address, virtual-register IR organized in basic
// blocks. The IR serves two roles: it is the code generator's input, and
// it is the injection substrate for the software-level (SVF) fault
// injector, mirroring how LLFI injects at the LLVM IR level.
package ir

import (
	"fmt"
	"strings"
)

// BinKind enumerates binary operators. Comparison operators produce 0/1.
type BinKind int

const (
	Add BinKind = iota
	Sub
	Mul
	Div // signed, RISC edge semantics (x/0 = -1, MinInt/-1 = MinInt)
	Rem
	And
	Or
	Xor
	Shl
	LShr
	AShr
	Eq
	Ne
	Lt // signed
	Le
	Gt
	Ge
	LtU
	GeU
	NumBinKinds
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", LShr: "lshr", AShr: "ashr",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	LtU: "ltu", GeU: "geu",
}

func (k BinKind) String() string { return binNames[k] }

// IsCompare reports whether k produces a boolean (0/1) result.
func (k BinKind) IsCompare() bool { return k >= Eq }

// Opcode enumerates IR instruction kinds.
type Opcode int

const (
	OpConst   Opcode = iota // dst = Imm
	OpCopy                  // dst = A
	OpBin                   // dst = Bin(A, B)
	OpLoad                  // dst = mem[A] (Size bytes, zero/sign per Unsigned)
	OpStore                 // mem[A] = B (Size bytes)
	OpGlobal                // dst = address of Sym
	OpFrame                 // dst = address of frame slot Slot
	OpCall                  // dst = Sym(Args...)
	OpSyscall               // dst = syscall(A=num, Args...)
	OpRet                   // return A (or void if A < 0)
	OpBr                    // goto Target
	OpCondBr                // if A != 0 goto Target else Else
)

var opcodeNames = [...]string{
	OpConst: "const", OpCopy: "copy", OpBin: "bin", OpLoad: "load", OpStore: "store",
	OpGlobal: "global", OpFrame: "frame", OpCall: "call",
	OpSyscall: "syscall", OpRet: "ret", OpBr: "br", OpCondBr: "condbr",
}

func (o Opcode) String() string { return opcodeNames[o] }

// Instr is one IR instruction. Operand meaning depends on Op; unused
// register operands are -1.
type Instr struct {
	Op       Opcode
	Dst      int // destination vreg, -1 if none
	A, B     int // vreg operands (OpConst/OpRet: A may be -1)
	Bin      BinKind
	Imm      int64
	Size     int  // load/store width in bytes
	Unsigned bool // loads: zero-extend
	Sym      string
	Slot     int   // OpFrame slot index
	Args     []int // call/syscall argument vregs
	Target   int   // branch target block
	Else     int   // condbr fall-through block
}

// HasDst reports whether the instruction defines a value. Void calls
// have Dst == -1 even though OpCall can define one.
func (in *Instr) HasDst() bool { return in.Dst >= 0 }

// Def returns the vreg the instruction defines, or -1.
func (in *Instr) Def() int { return in.Dst }

// Uses returns the vregs the instruction reads, in operand order
// (A, B, Args). Dataflow analyses (and the static hardening-coverage
// verifier) iterate uses through here rather than re-deriving operand
// roles per opcode.
func (in *Instr) Uses() []int {
	var u []int
	switch in.Op {
	case OpConst, OpGlobal, OpFrame, OpBr:
		// no register uses
	case OpCopy, OpLoad, OpCondBr:
		u = append(u, in.A)
	case OpBin, OpStore:
		u = append(u, in.A, in.B)
	case OpRet:
		if in.A >= 0 {
			u = append(u, in.A)
		}
	case OpCall:
		u = append(u, in.Args...)
	case OpSyscall:
		u = append(u, in.A)
		u = append(u, in.Args...)
	}
	return u
}

// Block is a basic block: straight-line instructions ending in a
// terminator (ret/br/condbr).
type Block struct {
	Instrs []Instr
}

// FrameSlot describes stack-allocated storage (arrays and
// address-taken locals).
type FrameSlot struct {
	Name  string
	Size  int // bytes
	Align int
}

// Func is one IR function.
type Func struct {
	Name    string
	NumArgs int // args are vregs 0..NumArgs-1
	NumVReg int
	Blocks  []*Block
	Slots   []FrameSlot
	// HasRet records whether the function returns a value.
	HasRet bool
}

// Global is a module-level variable.
type Global struct {
	Name string
	Size int // bytes
	Init []byte
}

// Module is a complete IR program.
type Module struct {
	Funcs   []*Func
	Globals []*Global
	funcIdx map[string]int
}

// Lookup returns the function with the given name.
func (m *Module) Lookup(name string) (*Func, bool) {
	if m.funcIdx == nil {
		m.funcIdx = make(map[string]int, len(m.Funcs))
		for i, f := range m.Funcs {
			m.funcIdx[f.Name] = i
		}
	}
	i, ok := m.funcIdx[name]
	if !ok {
		return nil, false
	}
	return m.Funcs[i], true
}

// String renders the module in a readable assembly-like form.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s [%d]\n", g.Name, g.Size)
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&sb, "func %s(%d args) vregs=%d\n", f.Name, f.NumArgs, f.NumVReg)
		for _, s := range f.Slots {
			fmt.Fprintf(&sb, "  slot %s [%d]\n", s.Name, s.Size)
		}
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, " b%d:\n", bi)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "   %s\n", in.String())
			}
		}
	}
	return sb.String()
}

// String renders one instruction.
func (in Instr) String() string {
	v := func(r int) string { return fmt.Sprintf("%%%d", r) }
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %d", v(in.Dst), in.Imm)
	case OpCopy:
		return fmt.Sprintf("%s = copy %s", v(in.Dst), v(in.A))
	case OpBin:
		return fmt.Sprintf("%s = %s %s, %s", v(in.Dst), in.Bin, v(in.A), v(in.B))
	case OpLoad:
		u := ""
		if in.Unsigned {
			u = "u"
		}
		return fmt.Sprintf("%s = load%d%s [%s]", v(in.Dst), in.Size, u, v(in.A))
	case OpStore:
		return fmt.Sprintf("store%d [%s], %s", in.Size, v(in.A), v(in.B))
	case OpGlobal:
		return fmt.Sprintf("%s = global &%s", v(in.Dst), in.Sym)
	case OpFrame:
		return fmt.Sprintf("%s = frame #%d", v(in.Dst), in.Slot)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = v(a)
		}
		call := fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ", "))
		if in.HasDst() {
			return fmt.Sprintf("%s = %s", v(in.Dst), call)
		}
		return call
	case OpSyscall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = v(a)
		}
		return fmt.Sprintf("%s = syscall %s(%s)", v(in.Dst), v(in.A), strings.Join(args, ", "))
	case OpRet:
		if in.A < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret %s", v(in.A))
	case OpBr:
		return fmt.Sprintf("br b%d", in.Target)
	case OpCondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", v(in.A), in.Target, in.Else)
	}
	return "?"
}

// Verify checks structural invariants: every block ends in exactly one
// terminator, branch targets exist, vreg and slot indices are in range,
// and called functions exist with matching arity.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: func %s has no blocks", f.Name)
		}
		for bi, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				return fmt.Errorf("ir: %s b%d is empty", f.Name, bi)
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				last := ii == len(b.Instrs)-1
				term := in.Op == OpRet || in.Op == OpBr || in.Op == OpCondBr
				if term != last {
					return fmt.Errorf("ir: %s b%d i%d: terminator placement (%v)", f.Name, bi, ii, in.Op)
				}
				if err := m.verifyInstr(f, in); err != nil {
					return fmt.Errorf("ir: %s b%d i%d: %w", f.Name, bi, ii, err)
				}
			}
		}
	}
	return nil
}

func (m *Module) verifyInstr(f *Func, in *Instr) error {
	ckReg := func(r int, need bool) error {
		if need && (r < 0 || r >= f.NumVReg) {
			return fmt.Errorf("vreg %d out of range (%d)", r, f.NumVReg)
		}
		return nil
	}
	ckBlock := func(t int) error {
		if t < 0 || t >= len(f.Blocks) {
			return fmt.Errorf("block b%d out of range", t)
		}
		return nil
	}
	switch in.Op {
	case OpConst, OpGlobal:
		return ckReg(in.Dst, true)
	case OpCopy:
		return firstErr(ckReg(in.Dst, true), ckReg(in.A, true))
	case OpFrame:
		if in.Slot < 0 || in.Slot >= len(f.Slots) {
			return fmt.Errorf("slot %d out of range", in.Slot)
		}
		return ckReg(in.Dst, true)
	case OpBin:
		if in.Bin < 0 || in.Bin >= NumBinKinds {
			return fmt.Errorf("bad bin kind %d", in.Bin)
		}
		return firstErr(ckReg(in.Dst, true), ckReg(in.A, true), ckReg(in.B, true))
	case OpLoad:
		if !validSize(in.Size) {
			return fmt.Errorf("load size %d", in.Size)
		}
		return firstErr(ckReg(in.Dst, true), ckReg(in.A, true))
	case OpStore:
		if !validSize(in.Size) {
			return fmt.Errorf("store size %d", in.Size)
		}
		return firstErr(ckReg(in.A, true), ckReg(in.B, true))
	case OpCall:
		callee, ok := m.Lookup(in.Sym)
		if !ok {
			return fmt.Errorf("call to unknown func %q", in.Sym)
		}
		if len(in.Args) != callee.NumArgs {
			return fmt.Errorf("call %s: %d args, want %d", in.Sym, len(in.Args), callee.NumArgs)
		}
		if in.HasDst() && !callee.HasRet {
			return fmt.Errorf("call %s: uses result of void function", in.Sym)
		}
		for _, a := range in.Args {
			if err := ckReg(a, true); err != nil {
				return err
			}
		}
		return ckReg(in.Dst, in.HasDst())
	case OpSyscall:
		if len(in.Args) > 2 {
			return fmt.Errorf("syscall: at most 2 args")
		}
		for _, a := range in.Args {
			if err := ckReg(a, true); err != nil {
				return err
			}
		}
		return firstErr(ckReg(in.Dst, true), ckReg(in.A, true))
	case OpRet:
		if f.HasRet && in.A < 0 {
			return fmt.Errorf("ret without value in value-returning func")
		}
		return ckReg(in.A, in.A >= 0)
	case OpBr:
		return ckBlock(in.Target)
	case OpCondBr:
		return firstErr(ckReg(in.A, true), ckBlock(in.Target), ckBlock(in.Else))
	}
	return fmt.Errorf("unknown opcode %d", in.Op)
}

func validSize(n int) bool { return n == 1 || n == 2 || n == 4 || n == 8 }

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// NumInstrs returns the static instruction count of the module.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}
