package ir

import (
	"errors"
	"fmt"
)

// Interpreter errors classified as abnormal termination (the software-
// level equivalent of a Crash outcome).
var (
	ErrBadAddress    = errors.New("ir: memory access out of range")
	ErrMisaligned    = errors.New("ir: misaligned access")
	ErrStackOverflow = errors.New("ir: stack overflow")
	ErrWatchdog      = errors.New("ir: watchdog expired")
	ErrNoEntry       = errors.New("ir: entry function not found")
)

// guardTop mirrors the platform null guard: addresses below it fault.
const guardTop = 0x1000

// DefHook observes (and may modify) every defined value. seq counts
// value-defining dynamic instructions from 0; the returned value replaces
// v. This is the LLFI-style software fault injection point.
type DefHook func(seq uint64, in *Instr, v int64) int64

// Interp executes an IR module with a flat byte-addressable memory.
type Interp struct {
	M     *Module
	Width int // 32 or 64: the target word width

	Mem        []byte
	globalAddr map[string]int64
	heapEnd    int64
	sp         int64

	Out []byte

	Exited     bool
	ExitCode   int64
	Detected   bool
	DetectCode int64

	// Steps counts every executed IR instruction; DefSeq counts only
	// value-defining ones (the SVF injection space).
	Steps    uint64
	DefSeq   uint64
	MaxSteps uint64

	Hook DefHook

	// TrackUse enables golden-run def-use tracking: every dynamic
	// definition whose value is subsequently read has its bit set in
	// used. A definition whose bit stays clear is provably dead — its
	// value is never consumed before the holding virtual register is
	// overwritten or its frame returns — so a fault in it cannot alter
	// execution (the llfi early-stop filter). Set before Run.
	TrackUse bool
	used     []uint64

	// TrackSites records, for every dynamic definition, the global
	// static id of its defining instruction (functions, blocks,
	// instructions in module order — the enumeration the static
	// demanded-bits analysis indexes by). Golden runs enable it so
	// per-sequence faults map back to static sites. Set before Run.
	TrackSites bool
	sites      []int32
	siteBase   map[*Func][]int32

	mask uint64

	// Reusable-arena support (EnableReset/Reset): init holds the
	// pristine [0, heapEnd) image, dirtyBit/dirtyPages track pages
	// written by store so Reset restores only what a run touched.
	track      bool
	init       []byte
	dirtyBit   []uint64
	dirtyPages []int32
}

// Page granularity of the Reset dirty tracking.
const (
	pageShift = 12
	pageSize  = 1 << pageShift
)

// NewInterp prepares an interpreter with the given memory size (0
// selects 1 MiB). Globals are laid out from the bottom; the stack grows
// down from the top.
func NewInterp(m *Module, width int, memSize int) *Interp {
	if memSize == 0 {
		memSize = 1 << 20
	}
	ip := &Interp{
		M:        m,
		Width:    width,
		Mem:      make([]byte, memSize),
		MaxSteps: 1 << 32,
	}
	if width == 32 {
		ip.mask = 0xFFFFFFFF
	} else {
		ip.mask = ^uint64(0)
	}
	ip.globalAddr = make(map[string]int64, len(m.Globals))
	addr := int64(guardTop)
	for _, g := range m.Globals {
		addr = (addr + 7) &^ 7
		ip.globalAddr[g.Name] = addr
		copy(ip.Mem[addr:], g.Init)
		addr += int64(g.Size)
	}
	ip.heapEnd = (addr + 7) &^ 7
	ip.sp = int64(memSize)
	return ip
}

// EnableReset turns the interpreter into a reusable arena: memory
// writes are tracked at page granularity so Reset can restore the
// just-constructed state by touching only the pages a run dirtied,
// instead of reallocating (and re-zeroing) the whole memory.
func (ip *Interp) EnableReset() {
	if ip.track {
		return
	}
	ip.track = true
	ip.init = append([]byte(nil), ip.Mem[:ip.heapEnd]...)
	pages := (len(ip.Mem) + pageSize - 1) >> pageShift
	ip.dirtyBit = make([]uint64, (pages+63)/64)
}

func (ip *Interp) markPage(p int64) {
	if ip.dirtyBit[p>>6]&(1<<(p&63)) == 0 {
		ip.dirtyBit[p>>6] |= 1 << (p & 63)
		ip.dirtyPages = append(ip.dirtyPages, int32(p))
	}
}

// Reset restores the interpreter to its just-constructed state: global
// images back in place, dirtied stack/heap pages zeroed, counters and
// output cleared, Hook removed. Requires EnableReset.
func (ip *Interp) Reset() {
	for _, p := range ip.dirtyPages {
		ip.dirtyBit[p>>6] &^= 1 << (p & 63)
		lo := int64(p) << pageShift
		hi := lo + pageSize
		if hi > int64(len(ip.Mem)) {
			hi = int64(len(ip.Mem))
		}
		n := int64(0)
		if lo < int64(len(ip.init)) {
			n = int64(copy(ip.Mem[lo:hi], ip.init[lo:]))
		}
		zero := ip.Mem[lo+n : hi]
		for i := range zero {
			zero[i] = 0
		}
	}
	ip.dirtyPages = ip.dirtyPages[:0]
	ip.sp = int64(len(ip.Mem))
	ip.Out = ip.Out[:0]
	ip.Exited, ip.ExitCode = false, 0
	ip.Detected, ip.DetectCode = false, 0
	ip.Steps, ip.DefSeq = 0, 0
	ip.sites = ip.sites[:0]
	ip.Hook = nil
}

// DefUsed reports whether the value defined by dynamic definition seq
// was read at least once during the last TrackUse run. Out-of-range
// sequences report false (never defined, hence never read).
func (ip *Interp) DefUsed(seq uint64) bool {
	w := int(seq >> 6)
	return w < len(ip.used) && ip.used[w]&(1<<(seq&63)) != 0
}

// UsedDefs returns the def-use bitset of the last TrackUse run, indexed
// by dynamic definition sequence number. The slice aliases interpreter
// state; callers that outlive the interpreter should copy it.
func (ip *Interp) UsedDefs() []uint64 { return ip.used }

// DefSites returns the static-site tags of the last TrackSites run,
// indexed by dynamic definition sequence number. The slice aliases
// interpreter state; callers that outlive the interpreter should copy
// it.
func (ip *Interp) DefSites() []int32 { return ip.sites }

// bases returns the per-block global static-instruction id table of f,
// building the module-wide enumeration on first use.
func (ip *Interp) bases(f *Func) []int32 {
	if ip.siteBase == nil {
		ip.siteBase = make(map[*Func][]int32, len(ip.M.Funcs))
		id := int32(0)
		for _, mf := range ip.M.Funcs {
			bb := make([]int32, len(mf.Blocks))
			for bi, b := range mf.Blocks {
				bb[bi] = id
				id += int32(len(b.Instrs))
			}
			ip.siteBase[mf] = bb
		}
	}
	return ip.siteBase[f]
}

// markUse records that the definition currently held by virtual
// register r (tagged in tags) has been read. tags is nil when def-use
// tracking is off.
func (ip *Interp) markUse(tags []uint64, r int) {
	if tags == nil {
		return
	}
	if t := tags[r]; t != 0 {
		ip.used[(t-1)>>6] |= 1 << ((t - 1) & 63)
	}
}

// GlobalAddr returns the interpreter-assigned address of a global.
func (ip *Interp) GlobalAddr(name string) (int64, bool) {
	a, ok := ip.globalAddr[name]
	return a, ok
}

// wrap reduces a value to the target word width, sign-extended.
func (ip *Interp) wrap(v int64) int64 {
	if ip.Width == 32 {
		return int64(int32(uint32(uint64(v))))
	}
	return v
}

// Run executes the entry function (no arguments) to completion.
func (ip *Interp) Run(entry string) error {
	f, ok := ip.M.Lookup(entry)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoEntry, entry)
	}
	ret, err := ip.call(f, nil)
	if err != nil {
		return err
	}
	if !ip.Exited && !ip.Detected {
		// Falling off main is an implicit exit with main's return code.
		ip.Exited = true
		ip.ExitCode = ret
	}
	return nil
}

func (ip *Interp) call(f *Func, args []int64) (int64, error) {
	regs := make([]int64, f.NumVReg)
	copy(regs, args)

	// tags[r] is 1 + the dynamic definition sequence number of the value
	// currently in virtual register r, 0 when the value came from outside
	// this frame (arguments were already marked used at the call site).
	var tags []uint64
	if ip.TrackUse {
		tags = make([]uint64, f.NumVReg)
	}

	// Allocate frame slots on the descending stack.
	savedSP := ip.sp
	defer func() { ip.sp = savedSP }()
	slotAddr := make([]int64, len(f.Slots))
	for i := range f.Slots {
		s := &f.Slots[i]
		a := int64(8)
		if s.Align > 8 {
			a = int64(s.Align)
		}
		ip.sp = (ip.sp - int64(s.Size)) &^ (a - 1)
		slotAddr[i] = ip.sp
	}
	if ip.sp < ip.heapEnd {
		return 0, ErrStackOverflow
	}

	bi := 0
	ii := 0
	for {
		if ip.Steps >= ip.MaxSteps {
			return 0, ErrWatchdog
		}
		in := &f.Blocks[bi].Instrs[ii]
		ip.Steps++
		ii++
		var def int64
		hasDef := false

		switch in.Op {
		case OpConst:
			def, hasDef = ip.wrap(in.Imm), true
		case OpCopy:
			ip.markUse(tags, in.A)
			def, hasDef = regs[in.A], true
		case OpBin:
			ip.markUse(tags, in.A)
			ip.markUse(tags, in.B)
			def, hasDef = ip.binop(in.Bin, regs[in.A], regs[in.B]), true
		case OpGlobal:
			def, hasDef = ip.globalAddr[in.Sym], true
		case OpFrame:
			def, hasDef = slotAddr[in.Slot], true
		case OpLoad:
			ip.markUse(tags, in.A)
			v, err := ip.load(regs[in.A], in.Size, in.Unsigned)
			if err != nil {
				return 0, err
			}
			def, hasDef = v, true
		case OpStore:
			ip.markUse(tags, in.A)
			ip.markUse(tags, in.B)
			if err := ip.store(regs[in.A], in.Size, regs[in.B]); err != nil {
				return 0, err
			}
		case OpCall:
			callee, _ := ip.M.Lookup(in.Sym)
			cargs := make([]int64, len(in.Args))
			for i, a := range in.Args {
				ip.markUse(tags, a)
				cargs[i] = regs[a]
			}
			v, err := ip.call(callee, cargs)
			if err != nil {
				return 0, err
			}
			if ip.Exited || ip.Detected {
				return 0, nil
			}
			if in.HasDst() {
				def, hasDef = v, true
			}
		case OpSyscall:
			// Conservative: the kernel model may read any argument
			// register, so all of them count as used.
			ip.markUse(tags, in.A)
			for _, a := range in.Args {
				ip.markUse(tags, a)
			}
			v, err := ip.syscall(regs[in.A], in.Args, regs)
			if err != nil {
				return 0, err
			}
			if ip.Exited || ip.Detected {
				return 0, nil
			}
			def, hasDef = v, true
		case OpRet:
			if in.A >= 0 {
				ip.markUse(tags, in.A)
				return regs[in.A], nil
			}
			return 0, nil
		case OpBr:
			bi, ii = in.Target, 0
			continue
		case OpCondBr:
			ip.markUse(tags, in.A)
			if regs[in.A] != 0 {
				bi, ii = in.Target, 0
			} else {
				bi, ii = in.Else, 0
			}
			continue
		}

		if hasDef {
			if ip.Hook != nil {
				def = ip.wrap(ip.Hook(ip.DefSeq, in, def))
			}
			if ip.TrackSites {
				// ii was already advanced past this instruction.
				ip.sites = append(ip.sites, ip.bases(f)[bi]+int32(ii-1))
			}
			if tags != nil && in.HasDst() {
				// Definitions without a destination register need no tag:
				// their value is discarded, so they are dead by
				// construction (their used bit can never be set).
				tags[in.Dst] = ip.DefSeq + 1
				if w := int(ip.DefSeq >> 6); w >= len(ip.used) {
					ip.used = append(ip.used, make([]uint64, w+1-len(ip.used))...)
				}
			}
			ip.DefSeq++
			if in.HasDst() {
				regs[in.Dst] = def
			}
		}
	}
}

func (ip *Interp) binop(k BinKind, a, b int64) int64 {
	sh := uint64(b) & uint64(ip.Width-1)
	var v int64
	switch k {
	case Add:
		v = a + b
	case Sub:
		v = a - b
	case Mul:
		v = a * b
	case Div:
		switch {
		case b == 0:
			v = -1
		case a == -1<<63 && b == -1:
			v = a
		default:
			v = a / b
		}
	case Rem:
		switch {
		case b == 0:
			v = a
		case a == -1<<63 && b == -1:
			v = 0
		default:
			v = a % b
		}
	case And:
		v = a & b
	case Or:
		v = a | b
	case Xor:
		v = a ^ b
	case Shl:
		v = int64(uint64(a) << sh)
	case LShr:
		v = int64((uint64(a) & ip.mask) >> sh)
	case AShr:
		v = a >> sh
	case Eq:
		v = b2i(a == b)
	case Ne:
		v = b2i(a != b)
	case Lt:
		v = b2i(a < b)
	case Le:
		v = b2i(a <= b)
	case Gt:
		v = b2i(a > b)
	case Ge:
		v = b2i(a >= b)
	case LtU:
		v = b2i(uint64(a)&ip.mask < uint64(b)&ip.mask)
	case GeU:
		v = b2i(uint64(a)&ip.mask >= uint64(b)&ip.mask)
	}
	return ip.wrap(v)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (ip *Interp) checkAddr(addr int64, n int) error {
	a := int64(uint64(addr) & ip.mask)
	if a < guardTop || a+int64(n) > int64(len(ip.Mem)) || a+int64(n) < a {
		return fmt.Errorf("%w: %#x", ErrBadAddress, uint64(addr))
	}
	if a%int64(n) != 0 {
		return fmt.Errorf("%w: %#x size %d", ErrMisaligned, uint64(addr), n)
	}
	return nil
}

func (ip *Interp) load(addr int64, n int, unsigned bool) (int64, error) {
	if err := ip.checkAddr(addr, n); err != nil {
		return 0, err
	}
	a := uint64(addr) & ip.mask
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(ip.Mem[a+uint64(i)])
	}
	if !unsigned {
		shift := uint(64 - 8*n)
		return ip.wrap(int64(v<<shift) >> shift), nil
	}
	return ip.wrap(int64(v)), nil
}

func (ip *Interp) store(addr int64, n int, val int64) error {
	if err := ip.checkAddr(addr, n); err != nil {
		return err
	}
	a := uint64(addr) & ip.mask
	if ip.track {
		// Stores are size-aligned (checkAddr), so they never straddle a
		// page boundary.
		ip.markPage(int64(a) >> pageShift)
	}
	for i := 0; i < n; i++ {
		ip.Mem[a+uint64(i)] = byte(uint64(val) >> (8 * i))
	}
	return nil
}

// syscall mirrors the platform kernel ABI at the IR level. Note what is
// intentionally absent: no kernel instructions execute, and output bytes
// are copied out instantly — the software-level view has no ESC window
// and no kernel residency, exactly the blindness the paper ascribes to
// SVF tooling.
func (ip *Interp) syscall(num int64, argRegs []int, regs []int64) (int64, error) {
	arg := func(i int) int64 {
		if i < len(argRegs) {
			return regs[argRegs[i]]
		}
		return 0
	}
	return ip.syscallV(num, arg(0), arg(1))
}

// syscallV is the value-based core of syscall: no defined syscall reads
// more than two arguments (Verify enforces the arity), and missing
// argument registers read as 0.
func (ip *Interp) syscallV(num, a0, a1 int64) (int64, error) {
	switch num {
	case 1: // exit
		ip.Exited = true
		ip.ExitCode = a0
		return 0, nil
	case 2: // write(buf, len)
		buf := uint64(a0) & ip.mask
		n := a1
		if n < 0 || n > 1<<20 {
			return -1, nil
		}
		if int64(buf) < guardTop || int64(buf)+n > int64(len(ip.Mem)) {
			return 0, fmt.Errorf("%w: write(%#x, %d)", ErrBadAddress, buf, n)
		}
		ip.Out = append(ip.Out, ip.Mem[buf:int64(buf)+n]...)
		return n, nil
	case 3: // read
		return 0, nil
	case 4: // detect
		ip.Detected = true
		ip.DetectCode = a0
		return 0, nil
	case 5: // brk
		return ip.heapEnd, nil
	default:
		return -1, nil
	}
}
