package ir

// This file exports the interpreter's frame, memory, and kernel-ABI
// primitives for the compiled direct-threaded engine (internal/tb),
// which replays call()'s per-op semantics over flattened op arrays and
// must match them bit-exactly — including dirty-page tracking (Reset
// correctness), address-check errors, and syscall edge cases.

// SP returns the current stack pointer.
func (ip *Interp) SP() int64 { return ip.sp }

// SetSP sets the stack pointer (frame allocation/restoration).
func (ip *Interp) SetSP(v int64) { ip.sp = v }

// HeapEnd returns the top of the static data area; the stack
// overflows when it descends below it.
func (ip *Interp) HeapEnd() int64 { return ip.heapEnd }

// MemLoad performs a load with full interpreter semantics (address
// check, width wrap, sign extension).
func (ip *Interp) MemLoad(addr int64, n int, unsigned bool) (int64, error) {
	return ip.load(addr, n, unsigned)
}

// MemStore performs a store with full interpreter semantics (address
// check, Reset dirty-page tracking).
func (ip *Interp) MemStore(addr int64, n int, val int64) error {
	return ip.store(addr, n, val)
}

// SyscallV is the value-based kernel ABI: arguments past the ones a
// syscall reads are ignored, and absent arguments must be passed as 0
// (matching the register-indirect form, which reads missing argument
// registers as 0). The interpreter's own syscall dispatch delegates
// here.
func (ip *Interp) SyscallV(num, a0, a1 int64) (int64, error) {
	return ip.syscallV(num, a0, a1)
}
