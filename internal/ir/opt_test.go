package ir

import "testing"

func TestOptimizeFoldsConstants(t *testing.T) {
	f := &Func{Name: "main", NumVReg: 4, HasRet: true}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: 6},
		{Op: OpConst, Dst: 1, Imm: 7},
		{Op: OpBin, Bin: Mul, Dst: 2, A: 0, B: 1},
		{Op: OpCopy, Dst: 3, A: 2},
		{Op: OpRet, Dst: -1, A: 3},
	}}}
	m := &Module{Funcs: []*Func{f}}
	if Optimize(m) == 0 {
		t.Fatal("expected folds")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m, 64, 1<<16)
	ip.MaxSteps = 100
	if err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	if ip.ExitCode != 42 {
		t.Fatalf("optimized result %d", ip.ExitCode)
	}
	// The multiply and the consts feeding it should be gone or folded:
	// fewer instructions than before.
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	if n >= 5 {
		t.Fatalf("no shrink: %d instrs", n)
	}
}

func TestOptimizePreservesSideEffects(t *testing.T) {
	// A call with an unused result keeps its side effects.
	callee := &Func{Name: "eff", NumVReg: 2, HasRet: true}
	callee.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: 4}, // SysDetect num unused; just compute
		{Op: OpConst, Dst: 1, Imm: 1},
		{Op: OpRet, Dst: -1, A: 1},
	}}}
	f := &Func{Name: "main", NumVReg: 2, HasRet: true}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpCall, Dst: 0, Sym: "eff"},
		{Op: OpConst, Dst: 1, Imm: 0},
		{Op: OpRet, Dst: -1, A: 1},
	}}}
	m := &Module{Funcs: []*Func{callee, f}}
	Optimize(m)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	foundCall := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				foundCall = true
				if in.HasDst() {
					t.Fatal("unused call result should be unbound")
				}
			}
		}
	}
	if !foundCall {
		t.Fatal("call must survive dead-code elimination")
	}
}

func TestOptimizeDoesNotChangeBehaviour(t *testing.T) {
	// Redefinition across a loop boundary must not be folded away:
	// b0: %0=1; br b1
	// b1: %1 = %0+%0; %0 = %1; condbr (%1 < 8) b1 else b2
	// b2: ret %0        -> 1,2,4,8: returns 8
	f := &Func{Name: "main", NumVReg: 3, HasRet: true}
	f.Blocks = []*Block{
		{Instrs: []Instr{
			{Op: OpConst, Dst: 0, Imm: 1},
			{Op: OpBr, Dst: -1, Target: 1},
		}},
		{Instrs: []Instr{
			{Op: OpBin, Bin: Add, Dst: 1, A: 0, B: 0},
			{Op: OpCopy, Dst: 0, A: 1},
			{Op: OpConst, Dst: 2, Imm: 8},
			{Op: OpBin, Bin: Lt, Dst: 2, A: 1, B: 2},
			{Op: OpCondBr, Dst: -1, A: 2, Target: 1, Else: 2},
		}},
		{Instrs: []Instr{{Op: OpRet, Dst: -1, A: 0}}},
	}
	m := &Module{Funcs: []*Func{f}}
	run := func() int64 {
		ip := NewInterp(m, 64, 1<<16)
		ip.MaxSteps = 1000
		if err := ip.Run("main"); err != nil {
			t.Fatal(err)
		}
		return ip.ExitCode
	}
	before := run()
	Optimize(m)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if after := run(); after != before {
		t.Fatalf("optimization changed behaviour: %d -> %d", before, after)
	}
}
