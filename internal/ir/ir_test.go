package ir

import (
	"strings"
	"testing"
)

// tiny builds a module with one function: ret (a op b).
func tiny(op BinKind, a, b int64) *Module {
	f := &Func{Name: "main", NumVReg: 3, HasRet: true}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: a},
		{Op: OpConst, Dst: 1, Imm: b},
		{Op: OpBin, Bin: op, Dst: 2, A: 0, B: 1},
		{Op: OpRet, Dst: -1, A: 2},
	}}}
	return &Module{Funcs: []*Func{f}}
}

func evalBin(t *testing.T, op BinKind, a, b int64, width int) int64 {
	t.Helper()
	m := tiny(op, a, b)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m, width, 1<<16)
	ip.MaxSteps = 100
	if err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	return ip.ExitCode
}

func TestBinSemantics(t *testing.T) {
	cases := []struct {
		op      BinKind
		a, b    int64
		want64  int64
		want32  int64
	}{
		{Add, 1 << 40, 1, 1<<40 + 1, 1},
		{Sub, 0, 1, -1, -1},
		{Mul, 1 << 20, 1 << 20, 1 << 40, 0},
		{Div, -7, 2, -3, -3},
		{Div, 7, 0, -1, -1},
		{Rem, 7, 0, 7, 7},
		{Rem, -7, 2, -1, -1},
		{Shl, 1, 33, 1 << 33, 2}, // width-32 masks the shift to 1
		{LShr, -1, 60, 15, 0xFFFFFFF >> 24}, // width-32: (-1 as u32)>>28
		{AShr, -16, 2, -4, -4},
		{Eq, 5, 5, 1, 1},
		{Ne, 5, 5, 0, 0},
		{Lt, -1, 0, 1, 1},
		{Ge, -1, 0, 0, 0},
		{LtU, -1, 0, 0, 0},
		{GeU, -1, 0, 1, 1},
		{Xor, 0xF0, 0x0F, 0xFF, 0xFF},
	}
	for _, c := range cases {
		if got := evalBin(t, c.op, c.a, c.b, 64); got != c.want64 {
			t.Errorf("w64 %v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want64)
		}
	}
	// Width-32 spot checks.
	if got := evalBin(t, Add, 1<<40, 1, 32); got != 1 {
		t.Errorf("w32 add wrap: %d", got)
	}
	if got := evalBin(t, Shl, 1, 33, 32); got != 2 {
		t.Errorf("w32 shift mask: %d", got)
	}
	if got := evalBin(t, LShr, -1, 28, 32); got != 0xF {
		t.Errorf("w32 lshr: %#x", got)
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := map[string]*Module{
		"no blocks":      {Funcs: []*Func{{Name: "f"}}},
		"empty block":    {Funcs: []*Func{{Name: "f", Blocks: []*Block{{}}}}},
		"no terminator":  {Funcs: []*Func{{Name: "f", NumVReg: 1, Blocks: []*Block{{Instrs: []Instr{{Op: OpConst, Dst: 0}}}}}}},
		"mid terminator": {Funcs: []*Func{{Name: "f", NumVReg: 1, Blocks: []*Block{{Instrs: []Instr{{Op: OpRet, A: -1}, {Op: OpConst, Dst: 0}}}}}}},
		"bad vreg":       {Funcs: []*Func{{Name: "f", NumVReg: 1, Blocks: []*Block{{Instrs: []Instr{{Op: OpConst, Dst: 5}, {Op: OpRet, A: -1}}}}}}},
		"bad target":     {Funcs: []*Func{{Name: "f", Blocks: []*Block{{Instrs: []Instr{{Op: OpBr, Target: 7}}}}}}},
		"bad slot":       {Funcs: []*Func{{Name: "f", NumVReg: 1, Blocks: []*Block{{Instrs: []Instr{{Op: OpFrame, Dst: 0, Slot: 2}, {Op: OpRet, A: -1}}}}}}},
		"unknown callee": {Funcs: []*Func{{Name: "f", NumVReg: 1, Blocks: []*Block{{Instrs: []Instr{{Op: OpCall, Dst: -1, Sym: "ghost"}, {Op: OpRet, A: -1}}}}}}},
		"bad load size":  {Funcs: []*Func{{Name: "f", NumVReg: 2, Blocks: []*Block{{Instrs: []Instr{{Op: OpLoad, Dst: 0, A: 1, Size: 3}, {Op: OpRet, A: -1}}}}}}},
	}
	for name, m := range cases {
		if err := m.Verify(); err == nil {
			t.Errorf("%s: verifier accepted invalid module", name)
		}
	}
}

func TestInterpFaults(t *testing.T) {
	// Load from the null guard must error.
	f := &Func{Name: "main", NumVReg: 2, HasRet: true}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpConst, Dst: 0, Imm: 8},
		{Op: OpLoad, Dst: 1, A: 0, Size: 8},
		{Op: OpRet, A: 1},
	}}}
	m := &Module{Funcs: []*Func{f}}
	ip := NewInterp(m, 64, 1<<16)
	ip.MaxSteps = 100
	if err := ip.Run("main"); err == nil {
		t.Fatal("null access must fail")
	}
	// Misaligned access.
	f.Blocks[0].Instrs[0].Imm = 0x1001
	ip = NewInterp(m, 64, 1<<16)
	ip.MaxSteps = 100
	if err := ip.Run("main"); err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("misaligned access: %v", err)
	}
	// Missing entry.
	if err := NewInterp(m, 64, 1<<16).Run("nope"); err == nil {
		t.Fatal("missing entry must fail")
	}
}

func TestGlobalsLayoutAndString(t *testing.T) {
	m := &Module{
		Globals: []*Global{
			{Name: "a", Size: 5, Init: []byte{1, 2, 3}},
			{Name: "b", Size: 8},
		},
		Funcs: []*Func{{Name: "main", NumVReg: 1, HasRet: true, Blocks: []*Block{{Instrs: []Instr{
			{Op: OpGlobal, Dst: 0, Sym: "b"},
			{Op: OpRet, A: 0},
		}}}}},
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m, 64, 1<<16)
	a, _ := ip.GlobalAddr("a")
	b, _ := ip.GlobalAddr("b")
	if a < 0x1000 || b <= a || b%8 != 0 {
		t.Fatalf("layout: a=%#x b=%#x", a, b)
	}
	if ip.Mem[a] != 1 || ip.Mem[a+2] != 3 {
		t.Fatal("init bytes")
	}
	s := m.String()
	for _, want := range []string{"global a [5]", "func main", "ret %0", "%0 = global &b"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in\n%s", want, s)
		}
	}
	if m.NumInstrs() != 2 {
		t.Fatalf("NumInstrs %d", m.NumInstrs())
	}
}

func TestHookSeesEveryDefinition(t *testing.T) {
	m := tiny(Add, 2, 3)
	ip := NewInterp(m, 64, 1<<16)
	ip.MaxSteps = 100
	var seen []Opcode
	ip.Hook = func(seq uint64, in *Instr, v int64) int64 {
		seen = append(seen, in.Op)
		return v
	}
	if err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 { // two consts + one bin; ret defines nothing
		t.Fatalf("hook calls: %v", seen)
	}
	if ip.DefSeq != 3 {
		t.Fatalf("DefSeq %d", ip.DefSeq)
	}
}

func TestLookupCaches(t *testing.T) {
	m := tiny(Add, 1, 1)
	f1, ok1 := m.Lookup("main")
	f2, ok2 := m.Lookup("main")
	if !ok1 || !ok2 || f1 != f2 {
		t.Fatal("lookup")
	}
	if _, ok := m.Lookup("ghost"); ok {
		t.Fatal("ghost lookup")
	}
}
