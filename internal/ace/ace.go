// Package ace implements ACE (Architecturally Correct Execution)
// lifetime analysis — the analytical alternative to fault injection
// that the paper discusses (its reference [20]) and characterizes as
// pessimistic. A resource bit is counted ACE from each definition to
// its last use; everything after the last use until redefinition is
// un-ACE. Comparing the resulting upper bound with the injection-based
// PVF quantifies the pessimism (the repository's ACE ablation).
package ace

import (
	"fmt"

	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
)

// lifetime accumulates def-to-last-use ACE time for one resource.
type lifetime struct {
	def    uint64 // time of current definition
	use    uint64 // last use since def
	ace    uint64 // accumulated ACE time
	active bool
}

func (lt *lifetime) onDef(t uint64) {
	if lt.active && lt.use > lt.def {
		lt.ace += lt.use - lt.def
	}
	lt.def, lt.use, lt.active = t, t, true
}

func (lt *lifetime) onUse(t uint64) {
	if !lt.active {
		// Used before any tracked definition (e.g. initial state):
		// conservatively open a lifetime at t=0.
		lt.active = true
		lt.def, lt.use = 0, t
		return
	}
	lt.use = t
}

func (lt *lifetime) close() {
	if lt.active && lt.use > lt.def {
		lt.ace += lt.use - lt.def
	}
	lt.active = false
}

// Result summarizes an ACE analysis over one execution.
type Result struct {
	// DynInstr is the dynamic instruction count (the time unit).
	DynInstr uint64
	// RegACE is the ACE fraction of architectural register bits:
	// sum(def->last-use time) / (registers x time).
	RegACE float64
	// MemACE is the ACE fraction over the program's touched memory
	// words.
	MemACE float64
	// TouchedWords is the memory footprint in words.
	TouchedWords int
}

// Analyze runs the image to completion on the functional emulator,
// tracking register and memory-word lifetimes.
func Analyze(img *kernel.Image, maxInstr uint64) (*Result, error) {
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(img.ISA, bus, img.Entry)
	is := img.ISA

	regs := make([]lifetime, is.NumRegs())
	mem := make(map[uint64]*lifetime)

	if maxInstr == 0 {
		maxInstr = 1 << 30
	}
	for c.Instret < maxInstr {
		pc := c.PC
		w, ok := c.Bus.Mem.Word32(pc)
		if !ok {
			break
		}
		in, ok := isa.Decode(w, is)
		if !ok {
			break
		}
		t := c.Instret
		if in.Op.ReadsRs1() && in.Rs1 != 0 {
			regs[in.Rs1].onUse(t)
		}
		if in.Op.ReadsRs2() && in.Rs2 != 0 {
			regs[in.Rs2].onUse(t)
		}
		if in.Op.IsLoad() || in.Op.IsStore() {
			addr := (c.Reg(in.Rs1) + uint64(in.Imm)) & is.Mask()
			word := addr &^ uint64(is.WordBytes()-1)
			lt := mem[word]
			if lt == nil {
				lt = &lifetime{}
				mem[word] = lt
			}
			if in.Op.IsLoad() {
				lt.onUse(t)
			} else {
				lt.onDef(t)
			}
		}
		if in.Op.WritesRd() && in.Rd != 0 {
			regs[in.Rd].onDef(t)
		}
		if !c.Step() {
			break
		}
	}
	if !bus.Halted() {
		return nil, fmt.Errorf("ace: execution did not halt (instret=%d)", c.Instret)
	}

	total := c.Instret
	var regACE uint64
	for i := range regs {
		regs[i].close()
		regACE += regs[i].ace
	}
	var memACE uint64
	for _, lt := range mem {
		lt.close()
		memACE += lt.ace
	}
	res := &Result{DynInstr: total, TouchedWords: len(mem)}
	if total > 0 {
		res.RegACE = float64(regACE) / (float64(total) * float64(is.NumRegs()))
		if len(mem) > 0 {
			res.MemACE = float64(memACE) / (float64(total) * float64(len(mem)))
		}
	}
	return res, nil
}
