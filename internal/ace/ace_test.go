package ace

import (
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/minic"
	"vulnstack/internal/workload"
)

func build(t *testing.T, src string, is isa.ISA) *kernel.Image {
	t.Helper()
	m, err := minic.Compile(src, is.XLen())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Build(m, is)
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestLifetimeAccounting(t *testing.T) {
	var lt lifetime
	lt.onDef(10)
	lt.onUse(15)
	lt.onUse(20)
	lt.onDef(30) // closes [10,20]: 10 ACE
	lt.onUse(31)
	lt.close() // closes [30,31]: 1 ACE
	if lt.ace != 11 {
		t.Fatalf("ace = %d, want 11", lt.ace)
	}
	var dead lifetime
	dead.onDef(5)
	dead.onDef(9) // never used: 0 ACE
	dead.close()
	if dead.ace != 0 {
		t.Fatalf("dead value ace = %d", dead.ace)
	}
	var initial lifetime
	initial.onUse(7) // use before def: conservative [0,7]
	initial.close()
	if initial.ace != 7 {
		t.Fatalf("initial-state ace = %d", initial.ace)
	}
}

func TestAnalyzeBenchmarks(t *testing.T) {
	for _, bench := range []string{"sha", "crc32"} {
		spec, _ := workload.Get(bench)
		img := build(t, spec.Gen(3, 1), isa.VSA64)
		res, err := Analyze(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.DynInstr == 0 || res.TouchedWords == 0 {
			t.Fatalf("%s: empty analysis", bench)
		}
		if res.RegACE <= 0 || res.RegACE >= 1 {
			t.Fatalf("%s: register ACE %.3f out of range", bench, res.RegACE)
		}
		if res.MemACE < 0 || res.MemACE > 1 {
			t.Fatalf("%s: memory ACE %.3f out of range", bench, res.MemACE)
		}
		t.Logf("%s: reg ACE %.1f%%, mem ACE %.1f%% over %d words (%d instrs)",
			bench, 100*res.RegACE, 100*res.MemACE, res.TouchedWords, res.DynInstr)
	}
}

// TestACEIsPessimistic: the paper (Sec. II.A) notes ACE analysis
// overestimates vulnerability relative to fault injection. The ACE
// register bound must exceed the injection-measured failure rate of
// register-operand (WD) faults, because ACE counts every def-to-use
// interval as vulnerable even when the consuming computation masks the
// corruption.
func TestACEIsPessimistic(t *testing.T) {
	spec, _ := workload.Get("crc32")
	img := build(t, spec.Gen(3, 1), isa.VSA64)
	res, err := Analyze(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	// crc32 consumes nearly every defined value: ACE should be
	// substantial.
	if res.RegACE < 0.05 {
		t.Fatalf("suspiciously low register ACE %.3f", res.RegACE)
	}
}
