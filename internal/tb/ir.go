package tb

import (
	"fmt"

	"vulnstack/internal/ir"
)

// The soft-layer analogue of the superblock engine: an ir.Module is
// compiled once per campaign into flat per-function op arrays — branch
// targets resolved to op indices, call targets to function indices,
// global symbols to addresses, binop kinds and destination presence
// folded into opcodes — and faulty runs execute the compiled form with
// the single-bit-flip-at-sequence fault inlined as a compare, instead
// of the interpreter's per-definition hook closure. Golden runs (which
// need def-use and site tracking) stay on the plain interpreter.
//
// The compiled engine is specialized to the 64-bit word width (the only
// width LLFI-style injection supports), where the interpreter's wrap
// step is the identity.

// Compiled opcodes.
const (
	cConst = iota
	cCopy
	cBin
	cGlobal
	cFrame
	cLoad  // sign-extending, size in size
	cLoadU // zero-extending
	cStore
	cCall
	cSyscall
	cRet
	cBr
	cCondBr
)

// cop is one compiled IR instruction. imm carries the constant value
// (cConst), the resolved global address (cGlobal), the frame-slot index
// (cFrame), the callee function index (cCall), or the branch-target op
// index (cBr/cCondBr, with the else index in b).
type cop struct {
	code uint8
	bin  uint8
	size uint8
	dst  int32 // -1: no destination register
	a, b int32
	imm  int64
	args []int32
}

// cfunc is one compiled function.
type cfunc struct {
	numVReg int
	slots   []ir.FrameSlot
	ops     []cop
}

// Prog is a compiled module: immutable after CompileIR, shared
// read-only across worker goroutines.
type Prog struct {
	funcs []cfunc
	entry int
}

// CompileIR compiles m for the 64-bit width. ip supplies the global
// address layout (identical for every interpreter over the same module
// and memory size); it is not otherwise touched. An unresolvable
// symbol or a non-64-bit interpreter returns an error and the caller
// falls back to the plain interpreter.
func CompileIR(m *ir.Module, ip *ir.Interp) (*Prog, error) {
	if ip.Width != 64 {
		return nil, fmt.Errorf("tb: compiled IR engine supports only width 64, got %d", ip.Width)
	}
	fidx := make(map[string]int, len(m.Funcs))
	for i, f := range m.Funcs {
		fidx[f.Name] = i
	}
	entry, ok := fidx["_start"]
	if !ok {
		return nil, fmt.Errorf("tb: no _start in module")
	}
	p := &Prog{funcs: make([]cfunc, len(m.Funcs)), entry: entry}
	for i, f := range m.Funcs {
		cf, err := compileFunc(f, fidx, ip)
		if err != nil {
			return nil, err
		}
		p.funcs[i] = cf
	}
	return p, nil
}

func compileFunc(f *ir.Func, fidx map[string]int, ip *ir.Interp) (cfunc, error) {
	cf := cfunc{numVReg: f.NumVReg, slots: f.Slots}
	// Block starts in the flattened op array.
	starts := make([]int32, len(f.Blocks))
	n := 0
	for bi, b := range f.Blocks {
		starts[bi] = int32(n)
		n += len(b.Instrs)
	}
	cf.ops = make([]cop, 0, n)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			op := cop{dst: int32(in.Dst), a: int32(in.A), b: int32(in.B)}
			switch in.Op {
			case ir.OpConst:
				op.code, op.imm = cConst, in.Imm
			case ir.OpCopy:
				op.code = cCopy
			case ir.OpBin:
				op.code, op.bin = cBin, uint8(in.Bin)
			case ir.OpGlobal:
				addr, ok := ip.GlobalAddr(in.Sym)
				if !ok {
					return cfunc{}, fmt.Errorf("tb: unknown global %q", in.Sym)
				}
				op.code, op.imm = cGlobal, addr
			case ir.OpFrame:
				op.code, op.imm = cFrame, int64(in.Slot)
			case ir.OpLoad:
				op.code, op.size = cLoad, uint8(in.Size)
				if in.Unsigned {
					op.code = cLoadU
				}
			case ir.OpStore:
				op.code, op.size = cStore, uint8(in.Size)
			case ir.OpCall:
				ci, ok := fidx[in.Sym]
				if !ok {
					return cfunc{}, fmt.Errorf("tb: unknown callee %q", in.Sym)
				}
				op.code, op.imm = cCall, int64(ci)
				op.args = compileArgs(in.Args)
			case ir.OpSyscall:
				op.code = cSyscall
				op.args = compileArgs(in.Args)
			case ir.OpRet:
				op.code = cRet
			case ir.OpBr:
				op.code, op.imm = cBr, int64(starts[in.Target])
			case ir.OpCondBr:
				op.code = cCondBr
				op.imm, op.b = int64(starts[in.Target]), starts[in.Else]
			default:
				return cfunc{}, fmt.Errorf("tb: unhandled IR op %v", in.Op)
			}
			cf.ops = append(cf.ops, op)
		}
	}
	return cf, nil
}

func compileArgs(args []int) []int32 {
	if len(args) == 0 {
		return nil
	}
	out := make([]int32, len(args))
	for i, a := range args {
		out[i] = int32(a)
	}
	return out
}

// irRun is the per-run state of one compiled execution.
type irRun struct {
	p        *Prog
	ip       *ir.Interp
	faultSeq uint64
	faultBit int64 // XOR mask
	steps    uint64
	maxSteps uint64
	defSeq   uint64
}

// RunFault executes the compiled program on a ready (fresh or Reset)
// interpreter with a single-bit flip injected into dynamic definition
// faultSeq — the compiled equivalent of runOn's DefHook. Exit/output
// state lands in ip exactly as ip.Run would have left it.
func (p *Prog) RunFault(ip *ir.Interp, faultSeq uint64, faultBit uint) error {
	r := irRun{
		p:        p,
		ip:       ip,
		faultSeq: faultSeq,
		faultBit: int64(uint64(1) << faultBit),
		maxSteps: ip.MaxSteps,
	}
	ret, err := r.call(p.entry, nil)
	ip.Steps, ip.DefSeq = r.steps, r.defSeq
	if err != nil {
		return err
	}
	if !ip.Exited && !ip.Detected {
		ip.Exited = true
		ip.ExitCode = ret
	}
	return nil
}

func (r *irRun) call(fi int, args []int64) (int64, error) {
	f := &r.p.funcs[fi]
	regs := make([]int64, f.numVReg)
	copy(regs, args)
	ip := r.ip

	// Frame slots on the descending stack, interp.call layout exactly.
	savedSP := ip.SP()
	defer ip.SetSP(savedSP)
	var slotAddr []int64
	if len(f.slots) > 0 {
		slotAddr = make([]int64, len(f.slots))
		sp := savedSP
		for i := range f.slots {
			s := &f.slots[i]
			a := int64(8)
			if s.Align > 8 {
				a = int64(s.Align)
			}
			sp = (sp - int64(s.Size)) &^ (a - 1)
			slotAddr[i] = sp
		}
		ip.SetSP(sp)
	}
	if ip.SP() < ip.HeapEnd() {
		return 0, ir.ErrStackOverflow
	}

	ops := f.ops
	pc := 0
	for {
		if r.steps >= r.maxSteps {
			return 0, ir.ErrWatchdog
		}
		op := &ops[pc]
		r.steps++
		pc++
		var def int64

		switch op.code {
		case cConst:
			def = op.imm
		case cCopy:
			def = regs[op.a]
		case cBin:
			def = binop64(op.bin, regs[op.a], regs[op.b])
		case cGlobal:
			def = op.imm
		case cFrame:
			def = slotAddr[op.imm]
		case cLoad:
			v, err := ip.MemLoad(regs[op.a], int(op.size), false)
			if err != nil {
				return 0, err
			}
			def = v
		case cLoadU:
			v, err := ip.MemLoad(regs[op.a], int(op.size), true)
			if err != nil {
				return 0, err
			}
			def = v
		case cStore:
			if err := ip.MemStore(regs[op.a], int(op.size), regs[op.b]); err != nil {
				return 0, err
			}
			continue
		case cCall:
			var cargs []int64
			if len(op.args) > 0 {
				cargs = make([]int64, len(op.args))
				for i, a := range op.args {
					cargs[i] = regs[a]
				}
			}
			v, err := r.call(int(op.imm), cargs)
			if err != nil {
				return 0, err
			}
			if ip.Exited || ip.Detected {
				return 0, nil
			}
			if op.dst < 0 {
				continue
			}
			def = v
		case cSyscall:
			var a0, a1 int64
			if len(op.args) > 0 {
				a0 = regs[op.args[0]]
			}
			if len(op.args) > 1 {
				a1 = regs[op.args[1]]
			}
			v, err := ip.SyscallV(regs[op.a], a0, a1)
			if err != nil {
				return 0, err
			}
			// An exiting/detecting syscall returns before its definition
			// is sequenced (interp.call order).
			if ip.Exited || ip.Detected {
				return 0, nil
			}
			def = v
		case cRet:
			if op.a >= 0 {
				return regs[op.a], nil
			}
			return 0, nil
		case cBr:
			pc = int(op.imm)
			continue
		case cCondBr:
			if regs[op.a] != 0 {
				pc = int(op.imm)
			} else {
				pc = int(op.b)
			}
			continue
		}

		// Definition sequencing with the fault inlined: at width 64 the
		// interpreter's wrap of the hooked value is the identity.
		if r.defSeq == r.faultSeq {
			def ^= r.faultBit
		}
		r.defSeq++
		if op.dst >= 0 {
			regs[op.dst] = def
		}
	}
}

// binop64 is ir.Interp.binop specialized to Width 64 (wrap is the
// identity, the shift mask is 63, the unsigned-compare mask all-ones);
// kept bit-exact with the interpreter, which the equivalence gate
// asserts across every benchmark.
func binop64(k uint8, a, b int64) int64 {
	sh := uint64(b) & 63
	switch ir.BinKind(k) {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		switch {
		case b == 0:
			return -1
		case a == -1<<63 && b == -1:
			return a
		default:
			return a / b
		}
	case ir.Rem:
		switch {
		case b == 0:
			return a
		case a == -1<<63 && b == -1:
			return 0
		default:
			return a % b
		}
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return int64(uint64(a) << sh)
	case ir.LShr:
		return int64(uint64(a) >> sh)
	case ir.AShr:
		return a >> sh
	case ir.Eq:
		return b2i(a == b)
	case ir.Ne:
		return b2i(a != b)
	case ir.Lt:
		return b2i(a < b)
	case ir.Le:
		return b2i(a <= b)
	case ir.Gt:
		return b2i(a > b)
	case ir.Ge:
		return b2i(a >= b)
	case ir.LtU:
		return b2i(uint64(a) < uint64(b))
	case ir.GeU:
		return b2i(uint64(a) >= uint64(b))
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
