// Package tb is the translation-block execution plane: straight-line
// superblocks of guest code are discovered once, predecoded into flat
// buffers of resolved micro-ops, and executed block-at-a-time through a
// direct-threaded dispatch loop — removing the per-instruction fetch,
// decode-memo probe, and operand-extraction cost that dominates
// per-injection time at the arch and soft layers.
//
// Soundness under fault injection is the design constraint:
//
//   - Code corruption. Blocks are keyed by (entry PC, content version
//     of every covered 256-byte granule). mem.Memory bumps a
//     per-granule version on every content mutation — data stores,
//     injected bit flips, checkpoint restores — so a WI/WOI flip into
//     text or a self-modifying store forces a re-decode at the next
//     block lookup; a store issued from *inside* a block re-checks the
//     block's own granule versions before running the next op. A stale
//     predecoded op is therefore never executed.
//   - Fault landing. The engine stops at exact committed-instruction
//     boundaries (Run's limit clips the in-block op budget), so
//     register/state faults land mid-block exactly where the
//     step-by-step engine would have landed them.
//   - Precise traps. A potentially-trapping op materializes its own
//     architectural PC before faulting, so SEPC/STVAL are bit-exact;
//     a trapping op does not commit, matching emu.Exec.
package tb

import (
	"sync/atomic"

	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

// Micro-op handler indices. ALU ops whose destination is r0 are folded
// to uNOP at predecode (they have no architectural effect), so ALU
// handlers write their destination register unconditionally.
const (
	uNOP = iota
	uADD
	uSUB
	uSLL
	uSLT
	uSLTU
	uXOR
	uSRL
	uSRA
	uOR
	uAND
	uMUL
	uDIV
	uDIVU
	uREM
	uREMU
	uADDI
	uSLLI
	uSLTI
	uSLTIU
	uXORI
	uSRLI
	uSRAI
	uORI
	uANDI
	uLUI
	uLOAD  // sign-extending load, size in n
	uLOADU // zero-extending load, size in n
	uSTORE // size in n
	uBEQ
	uBNE
	uBLT
	uBGE
	uBLTU
	uBGEU
	uJAL
	uJALR
	uECALL
	uERET
	uCSRW
	uCSRR
)

// uop is one predecoded micro-op: operands pre-extracted, handler
// pre-selected. imm carries the sign-extended immediate (or the CSR
// index for uCSRW/uCSRR).
type uop struct {
	code uint8
	rd   uint8
	rs1  uint8
	rs2  uint8
	n    uint8 // memory access size in bytes
	imm  int64
}

// block is one cached superblock: the predecoded straight-line run
// from entry up to and including the first control-flow instruction
// (or a size/span/decode boundary). chunks/vers record the content
// version of every 256-byte granule the block was decoded from; a
// mismatch at lookup (or after an in-block store) invalidates the
// block.
type block struct {
	entry   uint64
	ops     []uop
	words   []uint32 // raw instruction words, kept only under Paranoid
	nchunks int
	chunks  [5]uint32
	vers    [5]uint32
}

const (
	// cacheBits sizes the direct-mapped block cache: 1<<cacheBits slots
	// index 4*2^cacheBits bytes of text without aliasing. 16 covers
	// 256 KiB — larger than any study image's text — so two hot blocks
	// never thrash one slot; the pointer array costs 512 KiB per worker.
	cacheBits = 16
	maxOps    = 256 // ops per block; with 4-byte ops a block spans at most 5 version granules
)

// Engine drives one emu.CPU block-at-a-time. It is single-goroutine,
// like the CPU itself; campaigns hold one engine per worker arena.
type Engine struct {
	cpu *emu.CPU
	m   *mem.Memory

	blocks []*block

	mask uint64 // ISA value mask
	xsh  uint64 // 64 - XLen: shift pair for sign extension
	shm  uint64 // XLen - 1: shift-amount mask for register shifts

	// Paranoid, when non-nil, makes the dispatch loop refetch every
	// op's instruction word from memory and compare it against the
	// predecoded copy, counting each check; executing a stale op panics.
	// A pure validation mode for the SMC-invalidation tests.
	Paranoid *atomic.Uint64
}

// New builds an engine over c, enabling per-granule content versioning
// on its memory. The CPU remains fully usable step-by-step; the engine
// only batches execution between architectural boundaries.
func New(c *emu.CPU) *Engine {
	m := c.Bus.Mem
	m.EnableCodeVersions()
	xlen := uint64(c.ISA.XLen())
	return &Engine{
		cpu:    c,
		m:      m,
		blocks: make([]*block, 1<<cacheBits),
		mask:   c.ISA.Mask(),
		xsh:    64 - xlen,
		shm:    xlen - 1,
	}
}

// CPU returns the engine's CPU.
func (e *Engine) CPU() *emu.CPU { return e.cpu }

// Run executes until halt or until the committed-instruction count
// reaches limit — an exact architectural boundary, so callers can land
// faults or compare convergence probes mid-block. Like emu.CPU.Run it
// returns true when the machine halted and false on limit expiry.
// A CPU with an OnCommit observer falls back to step-by-step execution
// (the observer contract is per-instruction).
func (e *Engine) Run(limit uint64) bool {
	c := e.cpu
	if c.OnCommit != nil {
		return c.Run(limit)
	}
	for c.Instret < limit {
		if c.Bus.Halted() {
			return true
		}
		b := e.lookup(c.PC)
		if b == nil {
			// Misaligned/unmapped/illegal entry: one step traps it.
			if !c.Step() {
				return true
			}
			continue
		}
		e.exec(b, limit)
	}
	return c.Bus.Halted()
}

// lookup returns a fresh block starting at pc, building and caching one
// on miss. nil means no block can start here (misaligned PC, fetch
// fault, or undecodable first word) and the caller must fall back to
// Step, which takes the architectural trap.
func (e *Engine) lookup(pc uint64) *block {
	if pc%4 != 0 {
		return nil
	}
	slot := (pc >> 2) & (1<<cacheBits - 1)
	if b := e.blocks[slot]; b != nil && b.entry == pc && e.fresh(b) {
		return b
	}
	b := e.build(pc)
	if b == nil {
		return nil
	}
	e.blocks[slot] = b
	return b
}

// fresh reports whether every granule the block was decoded from still
// has the content version captured at build time.
func (e *Engine) fresh(b *block) bool {
	for i := 0; i < b.nchunks; i++ {
		if e.m.ChunkVersion(b.chunks[i]) != b.vers[i] {
			return false
		}
	}
	return true
}

// addChunk registers the version granule covering pc, capturing its
// current content version. It reports false when the block already
// spans the maximum number of granules and pc starts another (the
// block ends before pc). Decode walks pc sequentially, so comparing
// against the last registered granule suffices.
func (b *block) addChunk(m *mem.Memory, pc uint64) bool {
	c := uint32(pc >> mem.VerShift)
	if b.nchunks > 0 && b.chunks[b.nchunks-1] == c {
		return true
	}
	if b.nchunks == len(b.chunks) {
		return false
	}
	b.chunks[b.nchunks] = c
	b.vers[b.nchunks] = m.ChunkVersion(c)
	b.nchunks++
	return true
}

// build predecodes the superblock starting at pc: sequential decode up
// to and including the first control-flow instruction, stopping early
// at a fetch fault, an undecodable word, the op cap, or the granule
// cap.
func (e *Engine) build(pc uint64) *block {
	b := &block{entry: pc}
	is := e.cpu.ISA
	for len(b.ops) < maxOps {
		if !b.addChunk(e.m, pc) {
			break
		}
		w, ok := e.m.Word32(pc)
		if !ok {
			break
		}
		in, ok := isa.Decode(w, is)
		if !ok {
			break
		}
		u, term := encode(in)
		b.ops = append(b.ops, u)
		if e.Paranoid != nil {
			b.words = append(b.words, w)
		}
		if term {
			break
		}
		pc += 4
	}
	if len(b.ops) == 0 {
		return nil
	}
	return b
}

// encode maps a decoded instruction to its micro-op, reporting whether
// it terminates the block (control flow or privilege transfer).
func encode(in isa.Instr) (uop, bool) {
	u := uop{rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2), imm: in.Imm}
	switch in.Op {
	case isa.ADD, isa.SUB, isa.SLL, isa.SLT, isa.SLTU, isa.XOR, isa.SRL,
		isa.SRA, isa.OR, isa.AND, isa.MUL, isa.DIV, isa.DIVU, isa.REM, isa.REMU:
		if in.Rd == 0 {
			return uop{code: uNOP}, false
		}
		u.code = uADD + uint8(in.Op-isa.ADD)
	case isa.ADDI, isa.SLLI, isa.SLTI, isa.SLTIU, isa.XORI, isa.SRLI,
		isa.SRAI, isa.ORI, isa.ANDI:
		if in.Rd == 0 {
			return uop{code: uNOP}, false
		}
		u.code = uADDI + uint8(in.Op-isa.ADDI)
	case isa.LUI:
		if in.Rd == 0 {
			return uop{code: uNOP}, false
		}
		u.code = uLUI
	case isa.LB, isa.LH, isa.LW, isa.LD, isa.LBU, isa.LHU, isa.LWU:
		u.code = uLOAD
		if in.Op.MemUnsigned() {
			u.code = uLOADU
		}
		u.n = uint8(in.Op.MemBytes())
	case isa.SB, isa.SH, isa.SW, isa.SD:
		u.code, u.n = uSTORE, uint8(in.Op.MemBytes())
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		u.code = uBEQ + uint8(in.Op-isa.BEQ)
		return u, true
	case isa.JAL:
		u.code = uJAL
		return u, true
	case isa.JALR:
		u.code = uJALR
		return u, true
	case isa.ECALL:
		u.code = uECALL
		return u, true
	case isa.ERET:
		u.code = uERET
		return u, true
	case isa.CSRW:
		u.code = uCSRW
	case isa.CSRR:
		u.code = uCSRR
	}
	return u, false
}

// flush commits n ops' worth of instruction counters in one batch. The
// privilege mode is constant within a block (any mode change terminates
// it), so the kernel-committed count batches too.
func (e *Engine) flush(kern bool, n int) {
	c := e.cpu
	c.Instret += uint64(n)
	if kern {
		c.KernelInstret += uint64(n)
	}
}

// exec runs b's ops from the top, committing at most limit-Instret of
// them. On return the CPU is at an exact architectural boundary:
// counters flushed, PC pointing at the next instruction (or the trap
// vector).
func (e *Engine) exec(b *block, limit uint64) {
	c := e.cpu
	n := len(b.ops)
	if budget := limit - c.Instret; uint64(n) > budget {
		n = int(budget)
	}
	ops := b.ops
	regs := &c.Regs
	mask, xsh, shm := e.mask, e.xsh, e.shm
	entry := b.entry
	kern := c.Mode == isa.Kernel

	for i := 0; i < n; i++ {
		u := &ops[i]
		if e.Paranoid != nil {
			e.check(b, i)
		}
		switch u.code {
		case uNOP:
		case uADD:
			regs[u.rd] = (regs[u.rs1] + regs[u.rs2]) & mask
		case uSUB:
			regs[u.rd] = (regs[u.rs1] - regs[u.rs2]) & mask
		case uSLL:
			regs[u.rd] = (regs[u.rs1] << (regs[u.rs2] & shm)) & mask
		case uSLT:
			regs[u.rd] = boolTo(int64(regs[u.rs1]<<xsh)>>xsh < int64(regs[u.rs2]<<xsh)>>xsh)
		case uSLTU:
			regs[u.rd] = boolTo(regs[u.rs1] < regs[u.rs2])
		case uXOR:
			regs[u.rd] = (regs[u.rs1] ^ regs[u.rs2]) & mask
		case uSRL:
			regs[u.rd] = (regs[u.rs1] >> (regs[u.rs2] & shm)) & mask
		case uSRA:
			regs[u.rd] = uint64(int64(regs[u.rs1]<<xsh)>>xsh>>(regs[u.rs2]&shm)) & mask
		case uOR:
			regs[u.rd] = (regs[u.rs1] | regs[u.rs2]) & mask
		case uAND:
			regs[u.rd] = (regs[u.rs1] & regs[u.rs2]) & mask
		case uMUL:
			regs[u.rd] = (regs[u.rs1] * regs[u.rs2]) & mask
		case uDIV:
			regs[u.rd] = emu.DivS(sx(regs[u.rs1], xsh), sx(regs[u.rs2], xsh)) & mask
		case uDIVU:
			regs[u.rd] = emu.DivU(regs[u.rs1], regs[u.rs2], mask) & mask
		case uREM:
			regs[u.rd] = emu.RemS(sx(regs[u.rs1], xsh), sx(regs[u.rs2], xsh)) & mask
		case uREMU:
			regs[u.rd] = emu.RemU(regs[u.rs1], regs[u.rs2]) & mask
		case uADDI:
			regs[u.rd] = (regs[u.rs1] + uint64(u.imm)) & mask
		case uSLLI:
			regs[u.rd] = (regs[u.rs1] << uint64(u.imm)) & mask
		case uSLTI:
			regs[u.rd] = boolTo(int64(regs[u.rs1]<<xsh)>>xsh < u.imm)
		case uSLTIU:
			regs[u.rd] = boolTo(regs[u.rs1] < uint64(u.imm)&mask)
		case uXORI:
			regs[u.rd] = (regs[u.rs1] ^ uint64(u.imm)) & mask
		case uSRLI:
			regs[u.rd] = (regs[u.rs1] >> uint64(u.imm)) & mask
		case uSRAI:
			regs[u.rd] = uint64(int64(regs[u.rs1]<<xsh)>>xsh>>uint64(u.imm)) & mask
		case uORI:
			regs[u.rd] = (regs[u.rs1] | uint64(u.imm)) & mask
		case uANDI:
			regs[u.rd] = (regs[u.rs1] & uint64(u.imm)) & mask
		case uLUI:
			regs[u.rd] = uint64(u.imm) & mask

		case uLOAD, uLOADU:
			addr := (regs[u.rs1] + uint64(u.imm)) & mask
			c.PC = entry + 4*uint64(i)
			v, ok := c.LoadMem(addr, int(u.n), u.code == uLOADU)
			if !ok {
				e.flush(kern, i)
				return
			}
			if u.rd != 0 {
				regs[u.rd] = v & mask
			}

		case uSTORE:
			addr := (regs[u.rs1] + uint64(u.imm)) & mask
			c.PC = entry + 4*uint64(i)
			if !c.StoreMem(addr, int(u.n), regs[u.rs2]) {
				e.flush(kern, i)
				return
			}
			// The store committed. It may have halted the machine (MMIO
			// halt ports) or overwritten this very block's code granules
			// (self-modifying store, exactly the decode-memo SMC case):
			// either way the remaining predecoded ops must not run.
			if c.Bus.Halted() || !e.fresh(b) {
				e.flush(kern, i+1)
				c.PC = entry + 4*uint64(i+1)
				return
			}

		case uBEQ, uBNE, uBLT, uBGE, uBLTU, uBGEU:
			pc := entry + 4*uint64(i)
			a := sx(regs[u.rs1], xsh)
			bv := sx(regs[u.rs2], xsh)
			var taken bool
			switch u.code {
			case uBEQ:
				taken = a == bv
			case uBNE:
				taken = a != bv
			case uBLT:
				taken = int64(a) < int64(bv)
			case uBGE:
				taken = int64(a) >= int64(bv)
			case uBLTU:
				taken = a < bv
			case uBGEU:
				taken = a >= bv
			}
			if taken {
				c.PC = (pc + uint64(u.imm)) & mask
			} else {
				c.PC = pc + 4
			}
			e.flush(kern, i+1)
			return

		case uJAL:
			pc := entry + 4*uint64(i)
			if u.rd != 0 {
				regs[u.rd] = (pc + 4) & mask
			}
			c.PC = (pc + uint64(u.imm)) & mask
			e.flush(kern, i+1)
			return

		case uJALR:
			pc := entry + 4*uint64(i)
			t := (regs[u.rs1] + uint64(u.imm)) & mask
			if u.rd != 0 {
				regs[u.rd] = (pc + 4) & mask
			}
			c.PC = t
			e.flush(kern, i+1)
			return

		case uECALL:
			// ECALL commits, then traps (emu.Exec order).
			c.PC = entry + 4*uint64(i)
			e.flush(kern, i+1)
			c.Trap(isa.CauseSyscall, 0)
			return

		case uERET:
			c.PC = entry + 4*uint64(i)
			if !kern {
				e.flush(kern, i)
				c.Trap(isa.CausePrivilege, 0)
				return
			}
			e.flush(kern, i+1)
			c.Mode = isa.User
			c.PC = c.CSR[isa.CsrSEPC]
			return

		case uCSRW:
			if !kern {
				c.PC = entry + 4*uint64(i)
				e.flush(kern, i)
				c.Trap(isa.CausePrivilege, 0)
				return
			}
			c.CSR[u.imm] = regs[u.rs1]

		case uCSRR:
			if !kern {
				c.PC = entry + 4*uint64(i)
				e.flush(kern, i)
				c.Trap(isa.CausePrivilege, 0)
				return
			}
			if u.rd != 0 {
				regs[u.rd] = c.CSR[u.imm] & mask
			}
		}
	}

	// Ran off the executed window (block end or op budget): the next
	// instruction is the straight-line successor.
	e.flush(kern, n)
	c.PC = entry + 4*uint64(n)
}

// check refetches op i's instruction word and panics if it no longer
// matches the predecoded copy — a stale block executing would be a
// soundness violation of the code-version invalidation contract.
func (e *Engine) check(b *block, i int) {
	e.Paranoid.Add(1)
	w, ok := e.m.Word32(b.entry + 4*uint64(i))
	if !ok || w != b.words[i] {
		panic("tb: stale predecoded op executed (code-version invalidation failed)")
	}
}

// sx sign-extends a masked value to 64 bits (xsh = 64 - XLen).
func sx(v, xsh uint64) uint64 { return uint64(int64(v<<xsh) >> xsh) }

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
