package tb

import (
	"testing"

	"vulnstack/internal/codegen"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/kernel"
	"vulnstack/internal/minic"
	"vulnstack/internal/workload"
)

func buildImage(b testing.TB, bench string) *kernel.Image {
	spec, err := workload.Get(bench)
	if err != nil {
		b.Fatal(err)
	}
	m, err := minic.Compile(spec.Gen(1, 1), 64)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := codegen.Build(m, isa.VSA64)
	if err != nil {
		b.Fatal(err)
	}
	img, err := kernel.BuildImage(prog, 1<<21)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

func BenchmarkGoldenStep(b *testing.B) {
	img := buildImage(b, "sha")
	for i := 0; i < b.N; i++ {
		bus := dev.NewBus(img.NewMemory())
		c := emu.New(img.ISA, bus, img.Entry)
		if !c.Run(1 << 30) {
			b.Fatal("did not halt")
		}
	}
}

func BenchmarkGoldenTB(b *testing.B) {
	img := buildImage(b, "sha")
	for i := 0; i < b.N; i++ {
		bus := dev.NewBus(img.NewMemory())
		c := emu.New(img.ISA, bus, img.Entry)
		if !New(c).Run(1 << 30) {
			b.Fatal("did not halt")
		}
	}
}
