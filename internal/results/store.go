// The persistent campaign store: per-injection records on disk as
// JSONL, one manifest JSON per campaign, keyed by the campaign's full
// identity (layer, target, config, structure/FPM, seed). Campaign
// length is manifest data, not key material: because fault sequences
// are pre-drawn from the seed, a stored n=1000 campaign is a strict
// prefix of the n=2000 campaign, so topping up appends only the missing
// records and the merged tally is bit-identical to a one-shot run.
package results

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// SchemaVersion is the on-disk record schema. Loads of a different
// version fail loudly rather than silently misaggregating.
const SchemaVersion = 1

// Key is the full identity of one stored campaign. Two runs with equal
// keys draw identical fault sequences, so their record sets are
// prefix-compatible for any n.
type Key struct {
	// Layer is the injector: "micro", "arch" or "soft".
	Layer string `json:"layer"`
	// Target identifies the program under injection, including its
	// build inputs and ISA (bench/seed/scale/harden/ISA).
	Target string `json:"target"`
	// Config is the microarchitecture name (micro layer only).
	Config string `json:"config,omitempty"`
	// Struct is the structure (micro) or FPM (arch) under injection.
	Struct string `json:"struct,omitempty"`
	// Seed drives the pre-drawn fault sequence.
	Seed int64 `json:"seed"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/%s/seed=%d", k.Layer, k.Target, k.Config, k.Struct, k.Seed)
}

// ID is the key's stable store filename stem.
func (k Key) ID() string {
	h := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(h[:8])
}

// Manifest describes one stored campaign.
type Manifest struct {
	Schema int `json:"schema"`
	Key    Key `json:"key"`
	// N is the number of records on disk (grows on top-up).
	N int `json:"n"`
}

// Store is a directory of campaign record files. It assumes a single
// writer process; concurrent goroutines within that process are safe.
type Store struct {
	dir string
	mu  sync.Mutex
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath(id string) string { return filepath.Join(s.dir, id+".json") }
func (s *Store) recordsPath(id string) string  { return filepath.Join(s.dir, id+".jsonl") }

// readManifest loads a manifest by id; ok=false when absent.
func (s *Store) readManifest(id string) (Manifest, bool, error) {
	data, err := os.ReadFile(s.manifestPath(id))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("results: manifest %s: %w", id, err)
	}
	if m.Schema != SchemaVersion {
		return Manifest{}, false, fmt.Errorf("results: manifest %s has schema %d, want %d", id, m.Schema, SchemaVersion)
	}
	return m, true, nil
}

func (s *Store) writeManifest(m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := s.manifestPath(m.Key.ID())
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Manifest returns the stored manifest for k; ok=false when the
// campaign has never been stored.
func (s *Store) Manifest(k Key) (Manifest, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok, err := s.readManifest(k.ID())
	if err != nil || !ok {
		return Manifest{}, ok, err
	}
	if m.Key != k {
		return Manifest{}, false, fmt.Errorf("results: id collision: %q vs %q", m.Key, k)
	}
	return m, true, nil
}

// Load returns the stored records for k in index order; ok=false when
// the campaign has never been stored.
func (s *Store) Load(k Key) ([]Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok, err := s.readManifest(k.ID())
	if err != nil || !ok {
		return nil, ok, err
	}
	if m.Key != k {
		return nil, false, fmt.Errorf("results: id collision: %q vs %q", m.Key, k)
	}
	recs, err := s.readRecords(k.ID(), m.N)
	if err != nil {
		return nil, false, err
	}
	return recs, true, nil
}

// LoadID loads a stored campaign by its id (the results CLI surface).
func (s *Store) LoadID(id string) (Manifest, []Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok, err := s.readManifest(id)
	if err != nil {
		return Manifest{}, nil, err
	}
	if !ok {
		return Manifest{}, nil, fmt.Errorf("results: no stored campaign %q", id)
	}
	recs, err := s.readRecords(id, m.N)
	return m, recs, err
}

// readRecords reads the first n records of a campaign file. The
// manifest is written after record appends, so trailing lines beyond N
// (a crashed append) are ignored; fewer lines than N is corruption.
func (s *Store) readRecords(id string, n int) ([]Record, error) {
	f, err := os.Open(s.recordsPath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs := make([]Record, 0, n)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() && len(recs) < n {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("results: %s record %d: %w", id, len(recs), err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(recs) < n {
		return nil, fmt.Errorf("results: %s has %d records, manifest says %d", id, len(recs), n)
	}
	return recs, nil
}

func appendRecords(path string, recs []Record) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return err
		}
		w.Write(data)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Save stores a fresh campaign, replacing any previous records for k.
func (s *Store) Save(k Key, recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := k.ID()
	tmp := s.recordsPath(id) + ".tmp"
	os.Remove(tmp)
	if err := appendRecords(tmp, recs); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.recordsPath(id)); err != nil {
		return err
	}
	return s.writeManifest(Manifest{Schema: SchemaVersion, Key: k, N: len(recs)})
}

// Append tops up a stored campaign with records continuing its
// pre-drawn fault sequence: recs[0].Index must equal the stored N. The
// manifest is updated last, so a crash mid-append leaves a loadable
// prefix.
func (s *Store) Append(k Key, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := k.ID()
	m, ok, err := s.readManifest(id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("results: append to unknown campaign %q", k)
	}
	if m.Key != k {
		return fmt.Errorf("results: id collision: %q vs %q", m.Key, k)
	}
	if recs[0].Index != m.N {
		return fmt.Errorf("results: non-contiguous append: have %d records, next starts at %d", m.N, recs[0].Index)
	}
	if err := appendRecords(s.recordsPath(id), recs); err != nil {
		return err
	}
	m.N += len(recs)
	return s.writeManifest(m)
}

// List returns every stored campaign manifest, sorted by key.
func (s *Store) List() ([]Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ms []Manifest
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		m, ok, err := s.readManifest(strings.TrimSuffix(name, ".json"))
		if err != nil || !ok {
			continue // tolerate foreign or half-written files in the dir
		}
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Key.String() < ms[j].Key.String() })
	return ms, nil
}
