// The persistent campaign store: per-injection records on disk as
// append-only columnar segments (see internal/colseg for the block wire
// format), one manifest JSON per campaign, keyed by the campaign's full
// identity (layer, target, config, structure/FPM, seed). Campaign
// length is manifest data, not key material: because fault sequences
// are pre-drawn from the seed, a stored n=1000 campaign is a strict
// prefix of the n=2000 campaign, so topping up appends only the missing
// records and the merged tally is bit-identical to a one-shot run.
//
// JSONL is retained as the interchange/debug format: stores written by
// earlier versions (or via SaveJSONL/ExportJSONL round trips) are
// migrated to columnar segments losslessly on first touch, and the
// manifest's Format field records which representation a campaign is
// currently in.
package results

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"vulnstack/internal/colseg"
)

// SchemaVersion is the on-disk record schema. v2 added the optional
// per-record stratum column; v3 adds the static-resolution provenance
// bitset. Older segments stay readable (absent columns read back as
// zero values). Loads of a newer or unknown version fail loudly rather
// than silently misaggregating.
const SchemaVersion = 3

// Storage formats a campaign's records may be in on disk. The columnar
// segment is the native format; JSONL is interchange/debug, kept
// readable (and migrated on first touch) for stores written before the
// columnar plane existed.
const (
	FormatJSONL    = "jsonl"
	FormatColumnar = "columnar"
)

// Record file extensions by format.
const (
	JSONLExt = ".jsonl"
	SegExt   = ".seg"
)

// Key is the full identity of one stored campaign. Two runs with equal
// keys draw identical fault sequences, so their record sets are
// prefix-compatible for any n.
type Key struct {
	// Layer is the injector: "micro", "arch" or "soft".
	Layer string `json:"layer"`
	// Target identifies the program under injection, including its
	// build inputs and ISA (bench/seed/scale/harden/ISA).
	Target string `json:"target"`
	// Config is the microarchitecture name (micro layer only).
	Config string `json:"config,omitempty"`
	// Struct is the structure (micro) or FPM (arch) under injection.
	Struct string `json:"struct,omitempty"`
	// Seed drives the pre-drawn fault sequence.
	Seed int64 `json:"seed"`
	// Mode distinguishes sampling regimes that draw different fault
	// sequences from the same (layer, target, config, struct, seed) —
	// e.g. a stratified campaign's plan parameters and partition
	// fingerprint. Empty for uniform campaigns, keeping pre-v2 IDs (and
	// their stored records) unchanged.
	Mode string `json:"mode,omitempty"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/%s/%s/%s/seed=%d", k.Layer, k.Target, k.Config, k.Struct, k.Seed)
	if k.Mode != "" {
		s += "/mode=" + k.Mode
	}
	return s
}

// ID is the key's stable store filename stem.
func (k Key) ID() string {
	h := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(h[:8])
}

// Manifest describes one stored campaign.
type Manifest struct {
	Schema int `json:"schema"`
	Key    Key `json:"key"`
	// N is the number of records on disk (grows on top-up).
	N int `json:"n"`
	// Format is the record file representation: FormatColumnar for
	// native segments, FormatJSONL (or empty, in manifests written
	// before the columnar plane) for the interchange format.
	Format string `json:"format,omitempty"`
}

// Store is a directory of campaign record files. It assumes a single
// writer process; concurrent goroutines within that process are safe.
type Store struct {
	dir string
	mu  sync.Mutex
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath(id string) string { return filepath.Join(s.dir, id+".json") }
func (s *Store) jsonlPath(id string) string    { return filepath.Join(s.dir, id+JSONLExt) }
func (s *Store) segPath(id string) string      { return filepath.Join(s.dir, id+SegExt) }

// readManifest loads a manifest by id; ok=false when absent. Manifests
// from before the columnar plane carry no format field and mean JSONL.
func (s *Store) readManifest(id string) (Manifest, bool, error) {
	data, err := os.ReadFile(s.manifestPath(id))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("results: manifest %s: %w", id, err)
	}
	if m.Schema < 1 || m.Schema > SchemaVersion {
		return Manifest{}, false, fmt.Errorf("results: manifest %s has schema %d, want 1..%d", id, m.Schema, SchemaVersion)
	}
	if m.Format == "" {
		m.Format = FormatJSONL
	}
	if m.Format != FormatJSONL && m.Format != FormatColumnar {
		return Manifest{}, false, fmt.Errorf("results: manifest %s has unknown format %q", id, m.Format)
	}
	return m, true, nil
}

func (s *Store) writeManifest(m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := s.manifestPath(m.Key.ID())
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Manifest returns the stored manifest for k; ok=false when the
// campaign has never been stored.
func (s *Store) Manifest(k Key) (Manifest, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifestFor(k)
}

func (s *Store) manifestFor(k Key) (Manifest, bool, error) {
	m, ok, err := s.readManifest(k.ID())
	if err != nil || !ok {
		return Manifest{}, ok, err
	}
	if m.Key != k {
		return Manifest{}, false, fmt.Errorf("results: id collision: %q vs %q", m.Key, k)
	}
	return m, true, nil
}

// migrate converts a legacy JSONL campaign to a columnar segment and
// returns the updated manifest. Lossless: the segment holds exactly the
// manifest-promised records (trailing crash-debris JSONL lines are
// dropped, as loads always dropped them). The segment is renamed into
// place before the manifest flips format, so a crash mid-migration
// leaves the campaign readable either way; the JSONL file is removed
// last, best-effort. Callers hold s.mu.
func (s *Store) migrate(id string, m Manifest) (Manifest, error) {
	recs, err := s.readJSONLRecords(id, m.N)
	if err != nil {
		return Manifest{}, err
	}
	tmp := s.segPath(id) + ".tmp"
	os.Remove(tmp)
	if err := os.WriteFile(tmp, encodeColumnar(recs), 0o644); err != nil {
		return Manifest{}, err
	}
	if err := os.Rename(tmp, s.segPath(id)); err != nil {
		return Manifest{}, err
	}
	m.Format = FormatColumnar
	if err := s.writeManifest(m); err != nil {
		return Manifest{}, err
	}
	os.Remove(s.jsonlPath(id))
	return m, nil
}

// native ensures the campaign is in columnar form, migrating legacy
// JSONL on first touch. Callers hold s.mu.
func (s *Store) native(id string, m Manifest) (Manifest, error) {
	if m.Format == FormatColumnar {
		return m, nil
	}
	return s.migrate(id, m)
}

// cursor opens a streaming cursor over the first n records of a
// columnar campaign. Callers hold s.mu; the returned cursor is used
// (and closed) outside it — safe because writers never rewrite served
// bytes, they only append past them.
func (s *Store) cursor(id string, n int, f Filter) (*Cursor, error) {
	file, err := os.Open(s.segPath(id))
	if err != nil {
		return nil, err
	}
	return newCursor(file, file, id, n, f), nil
}

// Load returns the stored records for k in index order; ok=false when
// the campaign has never been stored.
func (s *Store) Load(k Key) ([]Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok, err := s.manifestFor(k)
	if err != nil || !ok {
		return nil, ok, err
	}
	recs, err := s.loadRecords(k.ID(), m)
	if err != nil {
		return nil, false, err
	}
	return recs, true, nil
}

// LoadID loads a stored campaign by its id (the results CLI surface).
func (s *Store) LoadID(id string) (Manifest, []Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok, err := s.readManifest(id)
	if err != nil {
		return Manifest{}, nil, err
	}
	if !ok {
		return Manifest{}, nil, fmt.Errorf("results: no stored campaign %q", id)
	}
	recs, err := s.loadRecords(id, m)
	return m, recs, err
}

// loadRecords materializes a campaign's records, migrating legacy JSONL
// to columnar on first touch. Callers hold s.mu.
func (s *Store) loadRecords(id string, m Manifest) ([]Record, error) {
	m, err := s.native(id, m)
	if err != nil {
		return nil, err
	}
	c, err := s.cursor(id, m.N, Filter{})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Records()
}

// Cursor opens a streaming cursor over the stored records for k with
// the filter pushed down (only the columns the filter and the consumer
// read are ever decoded); ok=false when the campaign has never been
// stored. Legacy JSONL campaigns are migrated on first touch. The
// caller must Close the cursor.
func (s *Store) Cursor(k Key, f Filter) (*Cursor, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok, err := s.manifestFor(k)
	if err != nil || !ok {
		return nil, ok, err
	}
	m, err = s.native(k.ID(), m)
	if err != nil {
		return nil, false, err
	}
	c, err := s.cursor(k.ID(), m.N, f)
	if err != nil {
		return nil, false, err
	}
	return c, true, nil
}

// CursorID opens a streaming filtered cursor by campaign id (the
// results CLI surface). The caller must Close the cursor.
func (s *Store) CursorID(id string, f Filter) (Manifest, *Cursor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok, err := s.readManifest(id)
	if err != nil {
		return Manifest{}, nil, err
	}
	if !ok {
		return Manifest{}, nil, fmt.Errorf("results: no stored campaign %q", id)
	}
	m, err = s.native(id, m)
	if err != nil {
		return Manifest{}, nil, err
	}
	c, err := s.cursor(id, m.N, f)
	if err != nil {
		return Manifest{}, nil, err
	}
	return m, c, nil
}

// TallyPrefix aggregates the first n stored records of k through the
// streaming columnar path: o(n) memory, only the outcome, visibility
// and FPM columns decoded. The result is bit-identical to
// TallyOf(Load(k)[:n]).
func (s *Store) TallyPrefix(k Key, n int) (Tally, error) {
	s.mu.Lock()
	m, ok, err := s.manifestFor(k)
	if err == nil && !ok {
		err = fmt.Errorf("results: no stored campaign %q", k)
	}
	if err == nil && m.N < n {
		err = fmt.Errorf("results: campaign %q has %d records, want prefix %d", k, m.N, n)
	}
	var c *Cursor
	if err == nil {
		m, err = s.native(k.ID(), m)
	}
	if err == nil {
		c, err = s.cursor(k.ID(), n, Filter{})
	}
	s.mu.Unlock()
	if err != nil {
		return Tally{}, err
	}
	defer c.Close()
	return c.Tally()
}

// readJSONLRecords reads the first n records of a legacy JSONL campaign
// file. The manifest is written after record appends, so trailing lines
// beyond N (a crashed append) are ignored; fewer lines than N is
// corruption.
func (s *Store) readJSONLRecords(id string, n int) ([]Record, error) {
	f, err := os.Open(s.jsonlPath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadJSONL(f, n)
	if err != nil {
		return nil, fmt.Errorf("results: %s: %w", id, err)
	}
	if len(recs) < n {
		return nil, fmt.Errorf("results: %s has %d records, manifest says %d", id, len(recs), n)
	}
	return recs, nil
}

// segRowsOffset walks a segment's blocks and returns the byte offset
// just past the block that completes row n. Appends truncate to it
// first, so a crashed append's torn tail bytes can never corrupt the
// next append (the columnar analogue of JSONL's ignored trailing
// lines).
func segRowsOffset(data []byte, n int) (int, error) {
	off, rows := 0, 0
	for rows < n {
		blk, consumed, err := colseg.Parse(data[off:])
		if err != nil {
			return 0, err
		}
		off += consumed
		rows += blk.Rows()
	}
	if rows != n {
		return 0, fmt.Errorf("colseg: block boundary at %d rows overshoots %d", rows, n)
	}
	return off, nil
}

// appendSeg appends recs to a campaign segment as fresh blocks,
// truncating any torn tail from a crashed earlier append first.
func (s *Store) appendSeg(id string, haveRows int, recs []Record) error {
	path := s.segPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off, err := segRowsOffset(data, haveRows)
	if err != nil {
		return fmt.Errorf("results: %s: %w", id, err)
	}
	if off < len(data) {
		if err := os.Truncate(path, int64(off)); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeColumnar(recs)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Save stores a fresh campaign in the native columnar format, replacing
// any previous records for k.
func (s *Store) Save(k Key, recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := k.ID()
	tmp := s.segPath(id) + ".tmp"
	os.Remove(tmp)
	if err := os.WriteFile(tmp, encodeColumnar(recs), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.segPath(id)); err != nil {
		return err
	}
	if err := s.writeManifest(Manifest{Schema: SchemaVersion, Key: k, N: len(recs), Format: FormatColumnar}); err != nil {
		return err
	}
	os.Remove(s.jsonlPath(id)) // drop a stale interchange copy, best-effort
	return nil
}

// SaveJSONL stores a fresh campaign in the JSONL interchange format
// (the debug path; Save is the native one). It round-trips losslessly:
// the first columnar-path touch migrates it.
func (s *Store) SaveJSONL(k Key, recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := k.ID()
	tmp := s.jsonlPath(id) + ".tmp"
	os.Remove(tmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := WriteJSONL(f, recs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.jsonlPath(id)); err != nil {
		return err
	}
	if err := s.writeManifest(Manifest{Schema: SchemaVersion, Key: k, N: len(recs), Format: FormatJSONL}); err != nil {
		return err
	}
	os.Remove(s.segPath(id))
	return nil
}

// Append tops up a stored campaign with records continuing its
// pre-drawn fault sequence: recs[0].Index must equal the stored N. A
// legacy JSONL campaign is migrated to columnar first. The manifest is
// updated last, so a crash mid-append leaves a loadable prefix.
func (s *Store) Append(k Key, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := k.ID()
	m, ok, err := s.manifestFor(k)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("results: append to unknown campaign %q", k)
	}
	if recs[0].Index != m.N {
		return fmt.Errorf("results: non-contiguous append: have %d records, next starts at %d", m.N, recs[0].Index)
	}
	m, err = s.native(id, m)
	if err != nil {
		return err
	}
	if err := s.appendSeg(id, m.N, recs); err != nil {
		return err
	}
	m.N += len(recs)
	return s.writeManifest(m)
}

// ExportJSONL streams a stored campaign's records to w in the JSONL
// interchange format (the export half of the lossless converter; the
// campaign's on-disk format is untouched). Memory stays bounded by one
// block.
func (s *Store) ExportJSONL(id string, w io.Writer) error {
	_, c, err := s.CursorID(id, Filter{})
	if err != nil {
		return err
	}
	defer c.Close()
	bw := bufio.NewWriter(w)
	err = c.Each(func(r Record) error {
		data, err := json.Marshal(r)
		if err != nil {
			return err
		}
		bw.Write(data)
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// CompactStats reports what a Compact pass did.
type CompactStats struct {
	// Campaigns is the number of stored campaigns seen.
	Campaigns int
	// Migrated is how many legacy JSONL campaigns were converted.
	Migrated int
	// JSONLBytes / SegBytes are the record-file sizes before and after
	// for the migrated campaigns.
	JSONLBytes int64
	SegBytes   int64
}

// Compact migrates every legacy JSONL campaign in the store to the
// native columnar format (the `vulnstack results compact` verb).
func (s *Store) Compact() (CompactStats, error) {
	ms, err := s.List()
	if err != nil {
		return CompactStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var st CompactStats
	st.Campaigns = len(ms)
	for _, m := range ms {
		if m.Format != FormatJSONL {
			continue
		}
		id := m.Key.ID()
		before, err := os.Stat(s.jsonlPath(id))
		if err != nil {
			return st, err
		}
		if _, err := s.migrate(id, m); err != nil {
			return st, err
		}
		after, err := os.Stat(s.segPath(id))
		if err != nil {
			return st, err
		}
		st.Migrated++
		st.JSONLBytes += before.Size()
		st.SegBytes += after.Size()
	}
	return st, nil
}

// ChainExt is the file extension of persisted checkpoint chains. The
// store treats chains as opaque bytes keyed by their config/seed
// fingerprint (internal/ckpt encodes, decodes and digest-protects
// them); List() never confuses them with campaign manifests because it
// only reads *.json.
const ChainExt = ".ckpt"

func (s *Store) chainPath(fp string) string { return filepath.Join(s.dir, fp+ChainExt) }

// validChainFP guards the fingerprint-as-filename contract (hex from
// ckpt.Fingerprint) against path tricks in CLI-supplied values.
func validChainFP(fp string) bool {
	if fp == "" || len(fp) > 128 {
		return false
	}
	for _, c := range fp {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// SaveChain persists an encoded checkpoint chain under its fingerprint,
// atomically replacing any previous chain with the same identity.
func (s *Store) SaveChain(fp string, data []byte) error {
	if !validChainFP(fp) {
		return fmt.Errorf("results: invalid chain fingerprint %q", fp)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.chainPath(fp)
	tmp := path + ".tmp"
	os.Remove(tmp)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadChain returns the persisted chain bytes for fp; ok=false when no
// chain with that fingerprint is stored.
func (s *Store) LoadChain(fp string) ([]byte, bool, error) {
	if !validChainFP(fp) {
		return nil, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.chainPath(fp))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// ListChains returns the fingerprints of every persisted checkpoint
// chain in the store, sorted.
func (s *Store) ListChains() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var fps []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ChainExt) {
			continue
		}
		if fp := strings.TrimSuffix(name, ChainExt); validChainFP(fp) {
			fps = append(fps, fp)
		}
	}
	sort.Strings(fps)
	return fps, nil
}

// List returns every stored campaign manifest, sorted by key.
func (s *Store) List() ([]Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ms []Manifest
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		m, ok, err := s.readManifest(strings.TrimSuffix(name, ".json"))
		if err != nil || !ok {
			continue // tolerate foreign or half-written files in the dir
		}
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Key.String() < ms[j].Key.String() })
	return ms, nil
}
