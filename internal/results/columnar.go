// Columnar record plane: the binary per-column segment layout behind
// the persistent store, plus the streaming cursor that re-aggregates
// stored campaigns at memory-bandwidth speed. One Record column maps to
// one colseg column; blocks hold up to BlockRows records, so cursor
// memory is bounded by one block regardless of campaign size, and a
// consumer that only tallies outcomes never decodes the coordinate,
// entry or target columns at all (projection pushdown). JSONL remains
// the interchange/debug format — WriteJSONL/ReadJSONL are the lossless
// two-way converter the store's migration and export paths are built
// on.
package results

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"vulnstack/internal/colseg"
	"vulnstack/internal/micro"
)

// Record column ids in the columnar segment format. The set is fixed
// per block-format version (colseg.Version): every block carries every
// column, so readers never guess at absent fields.
const (
	colIndex   uint8 = iota // zigzag: first row absolute, then gap to previous row
	colLayer                // u8
	colTarget               // dict
	colCoord                // uvarint
	colEntry                // zigzag
	colBit                  // zigzag
	colSlot                 // zigzag
	colOutcome              // u8
	colVisible              // bits
	colFPM                  // u8
	colContact              // uvarint
	colLive                 // bits
	colEarly                // bits
	// colStratum (schema v2) is the stratified-campaign equivalence
	// class label. Blocks written before it existed omit it; readers
	// probe with Block.Has and substitute "" (uniform sampling), so
	// legacy segments stay readable without migration.
	colStratum // dict
	// colStatic (schema v3) marks records classified by the static
	// demanded-bits analysis without an injector run. Same legacy
	// story: absent in older blocks, probed with Block.Has, reads back
	// false.
	colStatic // bits
)

// BlockRows is the record batch size of one columnar block: large
// enough to amortize headers, small enough that a cursor's working set
// (one decoded block) stays far below the campaign it streams.
const BlockRows = 1 << 16

// appendColumnarBlock encodes recs (at most BlockRows of them per call
// at the store layer; any length is legal) as one framed block.
func appendColumnarBlock(dst []byte, recs []Record) []byte {
	n := len(recs)
	idx := make([]int64, n)
	layer := make([]uint8, n)
	target := make([]string, n)
	coord := make([]uint64, n)
	entry := make([]int64, n)
	bit := make([]int64, n)
	slot := make([]int64, n)
	outcome := make([]uint8, n)
	visible := make([]bool, n)
	fpm := make([]uint8, n)
	contact := make([]uint64, n)
	live := make([]bool, n)
	early := make([]bool, n)
	stratum := make([]string, n)
	static := make([]bool, n)
	prev := int64(0)
	for i, r := range recs {
		if i == 0 {
			idx[i] = int64(r.Index)
		} else {
			idx[i] = int64(r.Index) - prev - 1 // 0 for the contiguous common case
		}
		prev = int64(r.Index)
		layer[i] = uint8(r.Layer)
		target[i] = r.Target
		coord[i] = r.Coord
		entry[i] = int64(r.Entry)
		bit[i] = int64(r.Bit)
		slot[i] = int64(r.Slot)
		outcome[i] = uint8(r.Outcome)
		visible[i] = r.Visible
		fpm[i] = uint8(r.FPM)
		contact[i] = r.Contact
		live[i] = r.Live
		early[i] = r.EarlyStop
		stratum[i] = r.Stratum
		static[i] = r.StaticResolved
	}
	b := colseg.NewBuilder(n)
	b.Zigzag(colIndex, idx)
	b.U8(colLayer, layer)
	b.Dict(colTarget, target)
	b.Uvarint(colCoord, coord)
	b.Zigzag(colEntry, entry)
	b.Zigzag(colBit, bit)
	b.Zigzag(colSlot, slot)
	b.U8(colOutcome, outcome)
	b.Bits(colVisible, visible)
	b.U8(colFPM, fpm)
	b.Uvarint(colContact, contact)
	b.Bits(colLive, live)
	b.Bits(colEarly, early)
	b.Dict(colStratum, stratum)
	b.Bits(colStatic, static)
	return b.AppendTo(dst)
}

// encodeColumnar encodes recs as a sequence of BlockRows-sized blocks.
func encodeColumnar(recs []Record) []byte {
	var dst []byte
	for len(recs) > 0 {
		n := len(recs)
		if n > BlockRows {
			n = BlockRows
		}
		dst = appendColumnarBlock(dst, recs[:n])
		recs = recs[n:]
	}
	return dst
}

// blockRecords fully decodes a block back into records (the Load and
// export paths; aggregation never takes this route).
func blockRecords(b *colseg.Block, dst []Record) ([]Record, error) {
	idx, err := b.Zigzag(colIndex)
	if err != nil {
		return nil, err
	}
	layer, err := b.U8(colLayer)
	if err != nil {
		return nil, err
	}
	target, err := b.Dict(colTarget)
	if err != nil {
		return nil, err
	}
	coord, err := b.Uvarint(colCoord)
	if err != nil {
		return nil, err
	}
	entry, err := b.Zigzag(colEntry)
	if err != nil {
		return nil, err
	}
	bit, err := b.Zigzag(colBit)
	if err != nil {
		return nil, err
	}
	slot, err := b.Zigzag(colSlot)
	if err != nil {
		return nil, err
	}
	outcome, err := b.U8(colOutcome)
	if err != nil {
		return nil, err
	}
	visible, err := b.Bits(colVisible)
	if err != nil {
		return nil, err
	}
	fpm, err := b.U8(colFPM)
	if err != nil {
		return nil, err
	}
	contact, err := b.Uvarint(colContact)
	if err != nil {
		return nil, err
	}
	live, err := b.Bits(colLive)
	if err != nil {
		return nil, err
	}
	early, err := b.Bits(colEarly)
	if err != nil {
		return nil, err
	}
	// Legacy blocks (schema v1) predate the stratum column: absent means
	// uniform sampling, read back as "".
	var stratum []string
	if b.Has(colStratum) {
		if stratum, err = b.Dict(colStratum); err != nil {
			return nil, err
		}
	}
	// Pre-v3 blocks predate the static-resolution column: absent reads
	// back as false (no record was statically resolved).
	var static []bool
	if b.Has(colStatic) {
		if static, err = b.Bits(colStatic); err != nil {
			return nil, err
		}
	}
	prev := int64(0)
	for i := 0; i < b.Rows(); i++ {
		index := idx[i]
		if i > 0 {
			index += prev + 1
		}
		prev = index
		rec := Record{
			Index:     int(index),
			Layer:     Layer(layer[i]),
			Target:    target[i],
			Coord:     coord[i],
			Entry:     int(entry[i]),
			Bit:       int(bit[i]),
			Slot:      int(slot[i]),
			Outcome:   Outcome(outcome[i]),
			Visible:   visible[i],
			FPM:       micro.FPM(fpm[i]),
			Contact:   contact[i],
			Live:      live[i],
			EarlyStop: early[i],
		}
		if stratum != nil {
			rec.Stratum = stratum[i]
		}
		if static != nil {
			rec.StaticResolved = static[i]
		}
		dst = append(dst, rec)
	}
	return dst, nil
}

// Filter is a pushed-down record predicate: the cursor decodes only the
// columns a non-empty field needs, and aggregation counts only matching
// rows. The zero value matches every record.
type Filter struct {
	// Outcomes restricts to the listed outcome classes (empty: all).
	Outcomes []Outcome
	// FPMs restricts to the listed fault-propagation models (empty: all).
	FPMs []micro.FPM
	// Targets restricts to the listed targets — structure names at the
	// micro layer, FPM names or reg-uniform at the arch layer (empty:
	// all).
	Targets []string
	// BitRange, when true, restricts to BitLo <= Record.Bit <= BitHi.
	BitRange     bool
	BitLo, BitHi int
}

// Empty reports whether the filter matches everything.
func (f Filter) Empty() bool {
	return len(f.Outcomes) == 0 && len(f.FPMs) == 0 && len(f.Targets) == 0 && !f.BitRange
}

// Match is the reference (row-at-a-time) semantics of the filter. The
// columnar cursor must agree with it exactly; tests enforce that.
func (f Filter) Match(r Record) bool {
	if len(f.Outcomes) > 0 && !containsOutcome(f.Outcomes, r.Outcome) {
		return false
	}
	if len(f.FPMs) > 0 && !containsFPM(f.FPMs, r.FPM) {
		return false
	}
	if len(f.Targets) > 0 && !containsString(f.Targets, r.Target) {
		return false
	}
	if f.BitRange && (r.Bit < f.BitLo || r.Bit > f.BitHi) {
		return false
	}
	return true
}

func containsOutcome(s []Outcome, v Outcome) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsFPM(s []micro.FPM, v micro.FPM) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ParseOutcome inverts Outcome.String (the results CLI filter surface).
func ParseOutcome(name string) (Outcome, error) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		if strings.EqualFold(o.String(), name) {
			return o, nil
		}
	}
	return 0, fmt.Errorf("results: unknown outcome %q", name)
}

// ParseFPM inverts micro.FPM.String (the results CLI filter surface).
func ParseFPM(name string) (micro.FPM, error) {
	for m := micro.FPM(0); m < micro.NumFPM; m++ {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("results: unknown FPM %q", name)
}

// Cursor streams one stored campaign's columnar segment block by block.
// Memory stays bounded by one decoded block (o(campaign)); consumers
// either materialize records (Records) or aggregate in place (Tally),
// and the filter decides which columns ever get decoded.
type Cursor struct {
	rd     *colseg.Reader
	closer io.Closer
	// remaining is how many manifest-promised records are still unread.
	// Bytes past that point are a crashed append's torn tail and are
	// never parsed.
	remaining int
	filter    Filter
	id        string
}

// newCursor wraps a segment stream serving exactly n records.
func newCursor(r io.Reader, closer io.Closer, id string, n int, f Filter) *Cursor {
	return &Cursor{rd: colseg.NewReader(bufio.NewReaderSize(r, 1<<16)), closer: closer, id: id, remaining: n, filter: f}
}

// Close releases the underlying segment file.
func (c *Cursor) Close() error {
	if c.closer == nil {
		return nil
	}
	err := c.closer.Close()
	c.closer = nil
	return err
}

// next returns the next block and the number of its rows to serve
// (manifest-truncated), or ok=false at the end of the promised records.
// A segment that ends — cleanly or torn — before the manifest count is
// satisfied is corruption, mirroring the JSONL short-file check.
func (c *Cursor) next() (*colseg.Block, int, bool, error) {
	if c.remaining <= 0 {
		return nil, 0, false, nil
	}
	blk, err := c.rd.Next()
	if err == io.EOF || errors.Is(err, colseg.ErrTruncated) {
		return nil, 0, false, fmt.Errorf("results: %s segment ends %d records short of manifest", c.id, c.remaining)
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("results: %s: %w", c.id, err)
	}
	take := blk.Rows()
	if take > c.remaining {
		// Blocks never straddle the manifest count: appends are whole
		// blocks and the manifest is written after them. A larger block
		// here means the manifest and segment disagree.
		return nil, 0, false, fmt.Errorf("results: %s block of %d rows exceeds manifest remainder %d", c.id, take, c.remaining)
	}
	c.remaining -= take
	return blk, take, true, nil
}

// selection computes the filter's per-row match vector for one block,
// decoding only the columns the filter actually constrains. nil means
// every row matches.
func (c *Cursor) selection(blk *colseg.Block, take int) ([]bool, error) {
	if c.filter.Empty() {
		return nil, nil
	}
	var sel []bool
	and := func(match func(i int) bool) {
		if sel == nil {
			sel = make([]bool, take)
			for i := range sel {
				sel[i] = true
			}
		}
		for i := range sel {
			if sel[i] && !match(i) {
				sel[i] = false
			}
		}
	}
	if len(c.filter.Outcomes) > 0 {
		col, err := blk.U8(colOutcome)
		if err != nil {
			return nil, err
		}
		and(func(i int) bool { return containsOutcome(c.filter.Outcomes, Outcome(col[i])) })
	}
	if len(c.filter.FPMs) > 0 {
		col, err := blk.U8(colFPM)
		if err != nil {
			return nil, err
		}
		and(func(i int) bool { return containsFPM(c.filter.FPMs, micro.FPM(col[i])) })
	}
	if len(c.filter.Targets) > 0 {
		col, err := blk.Dict(colTarget)
		if err != nil {
			return nil, err
		}
		and(func(i int) bool { return containsString(c.filter.Targets, col[i]) })
	}
	if c.filter.BitRange {
		col, err := blk.Zigzag(colBit)
		if err != nil {
			return nil, err
		}
		and(func(i int) bool { return int(col[i]) >= c.filter.BitLo && int(col[i]) <= c.filter.BitHi })
	}
	return sel, nil
}

// Tally consumes the cursor into the record-stream aggregate, reading
// only the outcome, visibility and FPM columns (plus whatever the
// filter constrains) — the streaming re-aggregation path. The result is
// bit-identical to TallyOf over the same (filtered) records.
func (c *Cursor) Tally() (Tally, error) {
	var t Tally
	for {
		blk, take, ok, err := c.next()
		if err != nil {
			return Tally{}, err
		}
		if !ok {
			return t, nil
		}
		sel, err := c.selection(blk, take)
		if err != nil {
			return Tally{}, err
		}
		outcome, err := blk.U8(colOutcome)
		if err != nil {
			return Tally{}, err
		}
		visible, err := blk.Bits(colVisible)
		if err != nil {
			return Tally{}, err
		}
		fpm, err := blk.U8(colFPM)
		if err != nil {
			return Tally{}, err
		}
		for i := 0; i < take; i++ {
			if sel != nil && !sel[i] {
				continue
			}
			t.N++
			t.Outcomes[outcome[i]%uint8(NumOutcomes)]++
			if visible[i] {
				t.Visible++
				t.FPM[fpm[i]%uint8(micro.NumFPM)]++
			}
		}
	}
}

// Each streams matching records through fn one at a time, holding at
// most one decoded block in memory (the streaming show/export path).
func (c *Cursor) Each(fn func(Record) error) error {
	scratch := make([]Record, 0, BlockRows)
	for {
		blk, take, ok, err := c.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		scratch, err = blockRecords(blk, scratch[:0])
		if err != nil {
			return fmt.Errorf("results: %s: %w", c.id, err)
		}
		for _, r := range scratch[:take] {
			if !c.filter.Match(r) {
				continue
			}
			if err := fn(r); err != nil {
				return err
			}
		}
	}
}

// Records consumes the cursor into fully materialized records (filter
// applied). The bulk-load path; aggregation should use Tally instead.
func (c *Cursor) Records() ([]Record, error) {
	var out []Record
	err := c.Each(func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteJSONL writes records in the JSONL interchange/debug format, one
// JSON object per line — the inverse of ReadJSONL and the export half
// of the lossless JSONL<->columnar converter pair.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			return err
		}
		bw.Write(data)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadJSONL parses up to n JSONL records (n < 0: all). Blank lines are
// skipped; trailing lines beyond n are ignored (a crashed JSONL append
// leaves exactly those).
func ReadJSONL(r io.Reader, n int) ([]Record, error) {
	var recs []Record
	if n > 0 {
		recs = make([]Record, 0, n)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() && (n < 0 || len(recs) < n) {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("results: jsonl record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
