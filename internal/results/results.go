// Package results is the unified cross-layer fault-record plane: every
// injection, at every layer of the vulnerability stack, produces one
// layer-agnostic Record, and every aggregate the repo reports (AVF,
// HVF, PVF, SVF, FPM distributions, rPVF re-weighting) is a pure
// function of record streams. Records — not private counters — are the
// productive unit of fault-injection infrastructure: they enable
// post-hoc re-weighting, incremental confidence tightening (top-up
// resume), and the persistent campaign store (see store.go).
package results

import "vulnstack/internal/micro"

// Outcome is the end-to-end fault effect class shared by all layers.
type Outcome int

const (
	Masked Outcome = iota
	SDC
	Crash
	Detected
	NumOutcomes
)

var outcomeNames = [...]string{"Masked", "SDC", "Crash", "Detected"}

func (o Outcome) String() string { return outcomeNames[o] }

// Layer identifies which injector produced a record.
type Layer int

const (
	// LayerMicro is microarchitecture-level injection (AVF/HVF).
	LayerMicro Layer = iota
	// LayerArch is architecture-level injection (PVF).
	LayerArch
	// LayerSoft is software/IR-level injection (SVF).
	LayerSoft
	NumLayers
)

var layerNames = [...]string{"micro", "arch", "soft"}

func (l Layer) String() string { return layerNames[l] }

// Record is one injection: its fault coordinates and its classified
// effect. The coordinate fields are layer-specific but share slots:
//
//   - micro: Target = structure name, Coord = injection cycle,
//     Entry/Bit = storage coordinates; Visible/FPM/Contact are the HVF
//     measurement, Live is the at-injection liveness.
//   - arch: Target = FPM name (WD/WOI/WI), Coord = dynamic instruction
//     index, Bit/Slot select the corrupted field.
//   - soft: Coord = dynamic value-definition sequence number, Bit the
//     flipped result bit.
//
// Index is the record's position in the pre-drawn fault sequence of its
// campaign; because sequences are drawn deterministically from the
// seed, Index is stable across runs and record sets can be merged by
// simple concatenation (the top-up resume mechanism).
type Record struct {
	Index   int       `json:"i"`
	Layer   Layer     `json:"l,omitempty"`
	Target  string    `json:"t,omitempty"`
	Coord   uint64    `json:"c,omitempty"`
	Entry   int       `json:"e,omitempty"`
	Bit     int       `json:"b"`
	Slot    int       `json:"s,omitempty"`
	Outcome Outcome   `json:"o"`
	Visible bool      `json:"v,omitempty"`
	FPM     micro.FPM `json:"f,omitempty"`
	Contact uint64    `json:"cc,omitempty"`
	Live    bool      `json:"live,omitempty"`
	// EarlyStop marks a run classified by golden-state convergence at a
	// snapshot boundary (or a provably dead definition at the soft
	// layer) instead of running to completion. Pure provenance: the
	// outcome is provably the run-to-completion one, and tallies ignore
	// the flag. omitempty keeps old stores (schema v1) readable — absent
	// means false.
	EarlyStop bool `json:"es,omitempty"`
	// Stratum is the equivalence-class label of a stratified campaign's
	// record (empty for uniform sampling): provenance for the reweighted
	// estimators, letting stored campaigns be re-aggregated per stratum
	// without re-deriving the partition. Stored as a dictionary-encoded
	// column; segments written before schema v2 simply lack it and read
	// back empty.
	Stratum string `json:"st,omitempty"`
	// StaticResolved marks a record classified by the static
	// demanded-bits analysis alone: the flipped bit provably never
	// influences an observable output, so the outcome is Masked without
	// any injector run. Pure provenance like EarlyStop — tallies ignore
	// it, and the outcome is provably the run-to-completion one (the
	// soundness gate pins this across all benchmarks). Stored as a
	// schema-v3 bitset column; older segments lack it and read back
	// false.
	StaticResolved bool `json:"sr,omitempty"`
}

// Tally is the aggregate of a record stream. It is a comparable value:
// two campaigns agree iff their tallies are ==.
type Tally struct {
	N        int
	Outcomes [NumOutcomes]int
	FPM      [micro.NumFPM]int
	Visible  int
}

// Add accumulates one record (the streaming consumer: progress
// callbacks and re-aggregation both feed records through here).
func (t *Tally) Add(r Record) {
	t.N++
	t.Outcomes[r.Outcome]++
	if r.Visible {
		t.Visible++
		t.FPM[r.FPM]++
	}
}

// AddOutcome accumulates a bare outcome (a record with no visibility
// measurement — the arch and soft layers).
func (t *Tally) AddOutcome(o Outcome) {
	t.N++
	t.Outcomes[o]++
}

// TallyOf aggregates a record slice: the pure function from records to
// the tallies every estimator consumes.
func TallyOf(recs []Record) Tally {
	var t Tally
	for _, r := range recs {
		t.Add(r)
	}
	return t
}

// Frac returns the fraction of outcome o.
func (t Tally) Frac(o Outcome) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Outcomes[o]) / float64(t.N)
}

// Failures is the failure probability: SDC + Crash. Detected faults are
// excluded, following the paper's case-study accounting.
func (t Tally) Failures() float64 { return t.Frac(SDC) + t.Frac(Crash) }

// AVF is the architectural vulnerability factor (micro-layer tallies).
func (t Tally) AVF() float64 { return t.Failures() }

// PVF is the program vulnerability factor (arch-layer tallies).
func (t Tally) PVF() float64 { return t.Failures() }

// SVF is the software vulnerability factor (soft-layer tallies).
func (t Tally) SVF() float64 { return t.Failures() }

// HVF is the fraction of faults that reached architectural visibility.
func (t Tally) HVF() float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Visible) / float64(t.N)
}

// FPMShare returns the share of propagation model m among visible
// faults.
func (t Tally) FPMShare(m micro.FPM) float64 {
	if t.Visible == 0 {
		return 0
	}
	return float64(t.FPM[m]) / float64(t.Visible)
}
